GO ?= go

.PHONY: verify vet build test race bench perf

verify: vet build race bench ## full CI gate: vet + build + race tests + bench smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Append a perf-trajectory run to the current BENCH_<n>.json.
perf:
	$(GO) run ./cmd/mpeg2bench -perf -label $(or $(LABEL),local)
