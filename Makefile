GO ?= go

.PHONY: verify vet build test race bench perf fuzz faults stream compat

verify: vet build race bench stream compat ## full CI gate: vet + build + race tests + bench smoke + streaming race + compat shims

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Streaming pipeline under the race detector: chunk-boundary scans,
# backpressure, cancellation teardown, and the public Decode API.
stream:
	$(GO) test -race ./internal/stream/ .

# Deprecated-wrapper compatibility: vet the shims (deprecation-aware),
# build a client of the old entry points, and pin old-vs-new agreement.
compat:
	$(GO) vet .
	$(GO) build .
	$(GO) test -run 'TestDeprecatedCompat|Example' .

# Append a perf-trajectory run to the current BENCH_<n>.json.
perf:
	$(GO) run ./cmd/mpeg2bench -perf -label $(or $(LABEL),local)

# Short corpus-seeded fuzz runs over the scan and the resilient decoder.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFindStartCode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzResilientDecode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/decoder
	$(GO) test -run=NONE -fuzz=FuzzStreamScan -fuzztime=$(FUZZTIME) ./internal/stream

# Corruption sweep: PSNR vs loss rate under each resilience policy.
faults:
	$(GO) run ./cmd/mpeg2bench -faults
