GO ?= go

.PHONY: verify vet build test race bench perf fuzz faults

verify: vet build race bench ## full CI gate: vet + build + race tests + bench smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Append a perf-trajectory run to the current BENCH_<n>.json.
perf:
	$(GO) run ./cmd/mpeg2bench -perf -label $(or $(LABEL),local)

# Short corpus-seeded fuzz runs over the scan and the resilient decoder.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFindStartCode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzResilientDecode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/decoder

# Corruption sweep: PSNR vs loss rate under each resilience policy.
faults:
	$(GO) run ./cmd/mpeg2bench -faults
