GO ?= go

.PHONY: verify vet build test race bench perf fuzz faults stream compat trace sched kernels cross service vldsplit deadline apicheck

verify: vet build race bench stream compat trace sched kernels cross service vldsplit deadline apicheck ## full CI gate: vet + build + race tests + bench smoke + streaming race + compat shims + traced decode + scheduler gate + kernel matrix + cross-compile + service gate + split-decode gate + deadline gate + deprecated-API grep

vet:
	$(GO) vet ./...

# Kernel-dispatch gate: the tier-equivalence matrix (each equivalence
# test internally sweeps scalar/SWAR/asm against the scalar oracle), the
# same matrix under the race detector with the asm tier force-disabled
# (the race runtime cannot see into assembly, so race coverage comes from
# the pure-Go tiers), golden bit-exactness with every forced tier, and
# the per-kernel micro-benchmarks.
kernels:
	$(GO) test -run 'TierEquivalence|AsmEquivalence|Extremes|TestKernels|TestStoreBlock|TestPaddedLayoutGolden|TestAffinity|TestPickTask' ./internal/kernels/ ./internal/motion/ ./internal/dct/ ./internal/decoder/ ./internal/core/
	MPEG2_KERNELS=scalar $(GO) test -race -run 'TierEquivalence|AsmEquivalence|Golden|MatchesSequential' ./internal/kernels/ ./internal/motion/ ./internal/dct/ ./internal/decoder/ ./internal/core/
	MPEG2_KERNELS=swar $(GO) test -race -run 'TierEquivalence|AsmEquivalence|Golden|MatchesSequential' ./internal/kernels/ ./internal/motion/ ./internal/dct/ ./internal/decoder/ ./internal/core/
	$(GO) test -run=NONE -bench 'PredictBlock|AverageMB|StoreBlock|InverseTiers' -benchtime=10x ./internal/motion/ ./internal/dct/ ./internal/decoder/

# Cross-compile + per-arch vet gate: both SIMD targets must build and
# their assembly must pass vet's asmdecl checks even when developing on
# the other architecture.
cross:
	GOOS=linux GOARCH=amd64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=amd64 $(GO) vet ./internal/kernels/ ./internal/motion/ ./internal/dct/ ./internal/decoder/
	GOOS=linux GOARCH=arm64 $(GO) vet ./internal/kernels/ ./internal/motion/ ./internal/dct/ ./internal/decoder/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Streaming pipeline under the race detector: chunk-boundary scans,
# backpressure, cancellation teardown, and the public Decode API.
stream:
	$(GO) test -race ./internal/stream/ .

# Deprecated-wrapper compatibility: vet the shims (deprecation-aware),
# build a client of the old entry points, and pin old-vs-new agreement.
compat:
	$(GO) vet .
	$(GO) build .
	$(GO) test -run 'TestDeprecatedCompat|Example' .

# Observability gate: traced decodes under the race detector (bit
# exactness in every mode, event presence, exported Chrome JSON
# validated: well-formed, monotonic timestamps, balanced span counts),
# plus a real traced run through the CLI report path.
trace:
	$(GO) test -race -run 'TestTraced|TestChromeTrace|TestValidateChromeTrace|TestWithTrace|TestWithEventSink' ./internal/obs/ .
	$(GO) run ./cmd/mpeg2bench -timeline -trace /tmp/mpeg2par-trace.json > /dev/null

# Adaptive-scheduler gate: cost model, LPT packing and auto-tune policy
# units plus ordering-invariance under the race detector, and the
# LPT-vs-FIFO imbalance smoke (profiled costs replayed in the simulator).
sched:
	$(GO) test -race ./internal/sched/
	$(GO) test -race -run 'TestPack|TestModeAuto|TestSliceBytes|TestStreamingPacking|TestStreamingAutoTune|TestScanReaderSliceBytes|TestWithAutoTune|TestWithPacking' ./internal/core/ ./internal/stream/ .
	$(GO) test -run TestSchedCompareSmoke -v ./internal/bench/

# Multi-stream service gate: the 64-stream overload smoke (zero wedged
# streams, zero leaks, fairness, per-stream obs lanes validated as
# Chrome trace) and the overload-teardown suite under the race
# detector, plus a real load-harness run through the CLI.
service:
	$(GO) test -race -count=1 -run 'TestLoadSmoke|TestCancelMidDegradation|TestWatchdogWedgedStream|TestPauseLadderAndResume|TestAutoDegradeNoStarvationAtTopRung|TestServerCloseTeardown' ./internal/server/
	$(GO) test -race -count=1 -run 'TestServiceAPI|TestServiceForcedDegradation' .
	$(GO) run ./cmd/mpeg2load -streams 64 > /dev/null

# Intra-slice split-decode gate: indexed and speculative splits must be
# bit-exact with the sequential oracle in every mode and policy (clean,
# faulted, and poisoned-index streams) under the race detector, the
# public index API must round-trip, and the experiment must show the
# split actually parallelizes a one-slice-per-picture stream.
vldsplit:
	$(GO) test -race -count=1 -run 'TestSplitIndexedBitExact|TestSpeculativeSplitNoDivergence|TestPoisonedIndexFallsBack|TestSplitFaultedGolden|TestErrBadOption' ./internal/core/
	$(GO) test -race -count=1 -run 'TestWithIndexStreaming|TestWithSpeculativeSplitStreaming|TestErrBadOptionPublic' .
	$(GO) test -count=1 ./internal/vldsplit/
	$(GO) test -count=1 -run TestVLDSplitExperiment -v ./internal/bench/

# Deadline-aware dispatch gate: EDF ordering and slack-classification
# units, the cost-model cold-start regressions, the miss/shed
# disjointness and teardown-accounting tests, the assist and EDF
# bit-exactness goldens (all under the race detector), and the
# scaled-down fair-vs-EDF study smoke.
deadline:
	$(GO) test -race -count=1 -run 'TestParseDispatch|TestEDFActive|TestClassifySlack|TestSlackHist|TestPickEDFOrdering|TestQueueDelayEffectiveWorkers|TestAccountUndelivered|TestDemandFor|TestSlackShedDisjointFromMisses|TestUndeliveredMissesCountedOnCancel|TestEDFBitExactCleanAndFaulted|TestEDFNoStarvationAtTopRung|TestAssistOnTightSlack' ./internal/server/
	$(GO) test -race -count=1 -run 'TestCostModelColdStart|TestChooseReasonGatedOnCalibration' ./internal/sched/
	$(GO) test -race -count=1 -run 'TestAssistIndexedBitExact|TestAssistSpeculativeBitExact|TestAssistPoisonedIndexFallsBack|TestAssistFaultedGolden' ./internal/core/
	$(GO) test -count=1 -run TestDeadlineExperimentSmoke -v ./internal/bench/

# Deprecated-API grep gate: cmd/ and examples/ must stay on the
# streaming entry points (Decode/ScanReader); the deprecated wrappers
# exist for external compatibility only.
apicheck:
	@! grep -rn 'mpeg2par\.DecodeAll\|mpeg2par\.DecodeParallel\|mpeg2par\.Scan(' cmd/ examples/ \
		|| { echo 'apicheck: cmd/ and examples/ must use Decode/ScanReader, not deprecated wrappers' >&2; exit 1; }

# Append a perf-trajectory run to the current BENCH_<n>.json.
perf:
	$(GO) run ./cmd/mpeg2bench -perf -label $(or $(LABEL),local)

# Short corpus-seeded fuzz runs over the scan and the resilient decoder.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFindStartCode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzResilientDecode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzSpeculativeSplit -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/decoder
	$(GO) test -run=NONE -fuzz=FuzzStreamScan -fuzztime=$(FUZZTIME) ./internal/stream

# Corruption sweep: PSNR vs loss rate under each resilience policy.
faults:
	$(GO) run ./cmd/mpeg2bench -faults
