package mpeg2par

import (
	"bytes"
	"context"
	"io"
	"runtime"

	"mpeg2par/internal/core"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/stream"
)

// Source is where a decode reads its elementary stream from. Construct
// one with FromBytes or FromReader; the zero Source is invalid.
type Source struct {
	r io.Reader
}

// FromBytes sources a decode from an in-memory elementary stream.
func FromBytes(data []byte) Source {
	return Source{r: bytes.NewReader(data)}
}

// FromReader sources a decode from r. The stream is consumed
// incrementally: the pipeline holds only the scan-ahead window in
// memory (see WithMaxInFlight), so r may be a file, a socket, or any
// other reader far larger than memory.
func FromReader(r io.Reader) Source {
	return Source{r: r}
}

// FrameSink receives every decoded frame in display order, called from
// the display process. The frame is only valid during the call (it
// returns to the frame pool afterwards); Clone it to keep it.
type FrameSink func(*Frame)

// Option configures Decode.
type Option func(*decodeConfig)

type decodeConfig struct {
	opt  stream.Options
	sink func(TimelineEvent)
}

// WithMode selects the parallelization strategy (default
// ModeSliceImproved, the paper's best-scaling variant).
func WithMode(m Mode) Option {
	return func(c *decodeConfig) { c.opt.Mode = m }
}

// WithWorkers sets the number of worker processes. Zero or negative
// selects the documented default, the number of CPUs.
func WithWorkers(n int) Option {
	return func(c *decodeConfig) { c.opt.Workers = n }
}

// WithAutoTune lets the cost-model scheduler pick the parallelization
// strategy instead of WithMode: the first group of pictures' geometry
// (per-GOP and per-slice byte sizes from the scan) predicts how well
// the workload balances at each grain, and the policy resolves to
// sequential, GOP, or improved-slice decoding with a worker count at
// the efficiency knee — WithWorkers (or its CPU-count default) is the
// ceiling. As the stream plays, worker utilization is re-evaluated at
// every GOP boundary and surplus workers are parked. The decision and
// its outcome are reported in Stats.Auto; output is bit-identical to
// every fixed mode.
func WithAutoTune() Option {
	return func(c *decodeConfig) { c.opt.Mode = core.ModeAuto }
}

// WithPacking overrides the task-queue packing discipline (default
// PackLPT, longest-first by byte-size cost). seed feeds PackRandom and
// is ignored by the deterministic packings. Packing never changes
// decoded output, only the order workers receive tasks.
func WithPacking(p Packing, seed int64) Option {
	return func(c *decodeConfig) {
		c.opt.Packing = p
		c.opt.PackSeed = seed
	}
}

// WithAffinity overrides the row→worker task-steering discipline
// (default AffinityRow, adopted by the cache-locality study: each
// macroblock row is steered to the worker that handled the same row of
// the reference picture, so motion-compensation reference reads reuse
// that worker's cache). AffinityNone restores pure dynamic assignment.
// Affinity never changes decoded output, only which worker runs a task.
func WithAffinity(a Affinity) Option {
	return func(c *decodeConfig) { c.opt.Affinity = a }
}

// WithResilience selects the error-resilience policy (default
// FailFast). Every policy produces bit-identical output in all modes.
func WithResilience(p Resilience) Option {
	return func(c *decodeConfig) { c.opt.Resilience = p }
}

// WithFrameSink delivers decoded frames, in display order, to sink.
func WithFrameSink(sink FrameSink) Option {
	return func(c *decodeConfig) {
		if sink == nil {
			c.opt.Sink = nil
			return
		}
		c.opt.Sink = func(f *frame.Frame) { sink(f) }
	}
}

// WithMaxInFlight bounds the scan-ahead window: how many groups of
// pictures may be buffered or decoding at once before the scan process
// blocks. Smaller values cut peak memory (Stats.PeakInFlightBytes);
// larger values let the scan run further ahead. Zero (the default)
// selects 2×workers+2.
func WithMaxInFlight(n int) Option {
	return func(c *decodeConfig) { c.opt.MaxInFlight = n }
}

// WithChunkSize sets the read granularity over the source (default
// 64 KiB).
func WithChunkSize(n int) Option {
	return func(c *decodeConfig) { c.opt.ChunkSize = n }
}

// WithIndex supplies a split index (see BuildIndex): slices the index
// covers are fanned out across the worker pool as independent
// macroblock-row segments instead of decoding on one worker. Every
// segment's exit state is verified against the recorded entry state of
// the next; any mismatch — including a stale or corrupted index — falls
// back to sequential decode of that slice, so output stays bit-exact in
// every mode and policy. Split activity is reported in Stats.Split.
func WithIndex(idx *Index) Option {
	return func(c *decodeConfig) { c.opt.SplitIndex = idx }
}

// WithSpeculativeSplit enables speculative intra-slice splitting for
// slices with no index entry: the decoder guesses resynchronization
// points near macroblock-row boundaries, decodes the segments
// optimistically, and keeps the result only if every segment's entry
// state verifies exactly; otherwise the slice is re-decoded
// sequentially. Wrong guesses cost time, never correctness.
func WithSpeculativeSplit(on bool) Option {
	return func(c *decodeConfig) { c.opt.SpeculativeSplit = on }
}

// WithSplitParts overrides how many segments a split slice is divided
// into (default: the worker count, minimum two).
func WithSplitParts(n int) Option {
	return func(c *decodeConfig) { c.opt.SplitParts = n }
}

// WithTrace attaches a timeline recorder to the decode: every process —
// scan, workers, display — logs its scheduling events (task spans, queue
// and barrier waits, feed backpressure) into rec's per-lane ring
// buffers. After Decode returns, rec.Snapshot() yields the merged
// Timeline for Chrome-trace export or a load-balance Summary. Tracing
// never changes decoded output; with no recorder attached the event
// hooks cost a single pointer test each.
func WithTrace(rec *TraceRecorder) Option {
	return func(c *decodeConfig) { c.opt.Obs = rec }
}

// WithEventSink streams every recorded timeline event to fn as it
// happens, in addition to the ring buffers. fn is called from scan,
// worker, and display goroutines concurrently and must be fast and
// thread-safe. Implies tracing: if no recorder was attached with
// WithTrace, an internal one is created.
func WithEventSink(fn func(TimelineEvent)) Option {
	return func(c *decodeConfig) { c.sink = fn }
}

// Decode runs the streaming parallel decoder over src: an incremental
// scan process discovers groups of pictures chunk by chunk and feeds
// them to the worker pool as soon as they close, the configured mode's
// workers decode them, and the display process delivers frames in
// display order to the sink — all while the rest of the stream is still
// being read. Peak buffered-stream memory is bounded by the scan-ahead
// window, never by stream length.
//
// Cancelling ctx (or exceeding its deadline) tears the pipeline down —
// scan, workers, and display — without goroutine leaks or frame-pool
// loss, and Decode returns the context's error.
//
// The returned Stats are non-nil even alongside an error, carrying the
// teardown gauges (notably Stats.LeakedFrameBytes, always zero).
func Decode(ctx context.Context, src Source, opts ...Option) (*Stats, error) {
	cfg := decodeConfig{opt: stream.Options{Options: core.Options{
		Mode:    core.ModeSliceImproved,
		Workers: runtime.NumCPU(),
	}}}
	for _, o := range opts {
		o(&cfg)
	}
	// WithWorkers(0) and negatives mean "the default", not an error:
	// only a hand-built core.Options can still reject a worker count.
	if cfg.opt.Workers <= 0 {
		cfg.opt.Workers = runtime.NumCPU()
	}
	if cfg.sink != nil {
		if cfg.opt.Obs == nil {
			cfg.opt.Obs = obs.New(0)
		}
		cfg.opt.Obs.SetSink(cfg.sink)
	}
	return stream.Decode(ctx, src.r, cfg.opt)
}
