package mpeg2par_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"mpeg2par"
)

func apiStream(t testing.TB) *mpeg2par.Stream {
	t.Helper()
	res, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 12, GOPSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDecodeSourcesMatch: FromBytes and FromReader must both reproduce
// the sequential baseline bit-exactly in every mode.
func TestDecodeSourcesMatch(t *testing.T) {
	res := apiStream(t)
	want, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mpeg2par.Mode{
		mpeg2par.ModeSequential, mpeg2par.ModeGOP,
		mpeg2par.ModeSliceSimple, mpeg2par.ModeSliceImproved,
	} {
		for _, src := range []struct {
			name string
			s    mpeg2par.Source
		}{
			{"bytes", mpeg2par.FromBytes(res.Data)},
			{"reader", mpeg2par.FromReader(bytes.NewReader(res.Data))},
		} {
			var got []*mpeg2par.Frame
			st, err := mpeg2par.Decode(context.Background(), src.s,
				mpeg2par.WithMode(mode),
				mpeg2par.WithWorkers(3),
				mpeg2par.WithChunkSize(777),
				mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { got = append(got, f.Clone()) }),
			)
			if err != nil {
				t.Fatalf("%v %s: %v", mode, src.name, err)
			}
			if st.Displayed != len(want) || len(got) != len(want) {
				t.Fatalf("%v %s: displayed %d (sink %d), want %d", mode, src.name, st.Displayed, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%v %s: frame %d differs from sequential decode", mode, src.name, i)
				}
			}
		}
	}
}

// TestDecodeOptionWiring checks the functional options reach the
// pipeline: resilience, window, and worker settings show up in Stats.
func TestDecodeOptionWiring(t *testing.T) {
	res := apiStream(t)
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithMode(mpeg2par.ModeGOP),
		mpeg2par.WithWorkers(2),
		mpeg2par.WithResilience(mpeg2par.ConcealSlice),
		mpeg2par.WithMaxInFlight(1),
		mpeg2par.WithChunkSize(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != mpeg2par.ModeGOP || st.Workers != 2 {
		t.Fatalf("stats report mode %v workers %d", st.Mode, st.Workers)
	}
	if st.PeakInFlightBytes <= 0 || st.PeakInFlightBytes >= int64(len(res.Data)) {
		t.Fatalf("peak in-flight %d not bounded below stream length %d", st.PeakInFlightBytes, len(res.Data))
	}
	if st.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", st.LeakedFrameBytes)
	}
}

// finiteStats fails the test if any rate or gauge in st is non-finite —
// +Inf or NaN would break every JSON consumer of the stats.
func finiteStats(t *testing.T, name string, st *mpeg2par.Stats) {
	t.Helper()
	for _, g := range []struct {
		field string
		v     float64
	}{
		{"ScanRate", st.ScanRate},
		{"PicturesPerSecond", st.PicturesPerSecond()},
	} {
		if math.IsInf(g.v, 0) || math.IsNaN(g.v) {
			t.Fatalf("%s: %s = %v, want finite", name, g.field, g.v)
		}
	}
}

// TestDecodeOptionDefaults is the option-validation matrix: zero and
// negative values of every numeric option, and a nil sink, must select
// the documented defaults — not error out — and the resulting Stats
// must be truthful (Workers matches the per-worker breakdown) and
// finite in every mode.
func TestDecodeOptionDefaults(t *testing.T) {
	res := apiStream(t)
	cases := []struct {
		name string
		opts []mpeg2par.Option
	}{
		{"workers-zero", []mpeg2par.Option{mpeg2par.WithWorkers(0)}},
		{"workers-negative", []mpeg2par.Option{mpeg2par.WithWorkers(-3)}},
		{"chunk-zero", []mpeg2par.Option{mpeg2par.WithChunkSize(0)}},
		{"chunk-negative", []mpeg2par.Option{mpeg2par.WithChunkSize(-1)}},
		{"inflight-zero", []mpeg2par.Option{mpeg2par.WithMaxInFlight(0)}},
		{"inflight-negative", []mpeg2par.Option{mpeg2par.WithMaxInFlight(-8)}},
		{"nil-sink", []mpeg2par.Option{mpeg2par.WithFrameSink(nil)}},
		{"all-defaults", nil},
	}
	modes := []mpeg2par.Mode{
		mpeg2par.ModeSequential, mpeg2par.ModeGOP,
		mpeg2par.ModeSliceSimple, mpeg2par.ModeSliceImproved,
	}
	for _, tc := range cases {
		for _, mode := range modes {
			name := tc.name + "/" + mode.String()
			opts := append([]mpeg2par.Option{mpeg2par.WithMode(mode)}, tc.opts...)
			st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data), opts...)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if st.Workers < 1 {
				t.Fatalf("%s: Stats.Workers = %d", name, st.Workers)
			}
			if st.Workers != len(st.WorkerStats) {
				t.Fatalf("%s: Stats.Workers = %d but %d worker breakdowns",
					name, st.Workers, len(st.WorkerStats))
			}
			finiteStats(t, name, st)
		}
	}
}

// TestWithWorkersZeroUsesNumCPU is the regression test for
// WithWorkers(0): it used to flow unvalidated into the core and fail
// with "need at least one worker"; it must select the documented
// default instead.
func TestWithWorkersZeroUsesNumCPU(t *testing.T) {
	res := apiStream(t)
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithMode(mpeg2par.ModeGOP),
		mpeg2par.WithWorkers(0),
	)
	if err != nil {
		t.Fatalf("WithWorkers(0): %v", err)
	}
	if want := runtime.NumCPU(); st.Workers != want {
		t.Fatalf("WithWorkers(0): Stats.Workers = %d, want NumCPU = %d", st.Workers, want)
	}
}

// TestSequentialStatsWorkers is the regression test for the sequential
// worker-count gauge: ModeSequential runs on one worker regardless of
// the requested count, and Stats.Workers must say so — on both the
// streaming and the batch path.
func TestSequentialStatsWorkers(t *testing.T) {
	res := apiStream(t)

	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithMode(mpeg2par.ModeSequential),
		mpeg2par.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || len(st.WorkerStats) != 1 {
		t.Fatalf("streaming sequential: Stats.Workers = %d (%d breakdowns), want 1",
			st.Workers, len(st.WorkerStats))
	}

	st, err = mpeg2par.DecodeParallel(res.Data, mpeg2par.Options{
		Mode: mpeg2par.ModeSequential, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || len(st.WorkerStats) != 1 {
		t.Fatalf("batch sequential: Stats.Workers = %d (%d breakdowns), want 1",
			st.Workers, len(st.WorkerStats))
	}
}

// TestStatsMarshalJSON: a decode's Stats must always survive
// encoding/json (mpeg2bench serializes them), which +Inf or NaN gauges
// would break.
func TestStatsMarshalJSON(t *testing.T) {
	res := apiStream(t)
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
}

// TestWithTrace: a recorder attached to a decode yields a non-empty
// timeline whose Chrome-trace export is well-formed JSON, and tracing
// does not change what gets decoded.
func TestWithTrace(t *testing.T) {
	res := apiStream(t)
	rec := mpeg2par.NewTraceRecorder(0)
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(3),
		mpeg2par.WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	tl := rec.Snapshot()
	if len(tl.Events) == 0 {
		t.Fatal("traced decode recorded no events")
	}
	if tl.Mode != "slice-improved" || tl.Workers != st.Workers {
		t.Fatalf("timeline meta %q/%d, want slice-improved/%d", tl.Mode, tl.Workers, st.Workers)
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	sum := tl.Summary()
	if sum.Displayed != st.Displayed {
		t.Fatalf("summary displayed %d, stats displayed %d", sum.Displayed, st.Displayed)
	}
}

// TestWithEventSink: the streaming sink sees every recorded event.
func TestWithEventSink(t *testing.T) {
	res := apiStream(t)
	var mu sync.Mutex
	n := 0
	_, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithWorkers(2),
		mpeg2par.WithEventSink(func(mpeg2par.TimelineEvent) {
			mu.Lock()
			n++
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if n == 0 {
		t.Fatal("event sink never called")
	}
}

// TestDecodeCancel: a cancelled context surfaces context.Canceled with
// teardown-clean stats.
func TestDecodeCancel(t *testing.T) {
	res := apiStream(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(res.Data))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if st == nil || st.LeakedFrameBytes != 0 {
		t.Fatalf("teardown stats %+v", st)
	}
}

// TestDeprecatedCompat keeps the deprecated wrappers working and
// agreeing with their replacements (built by `make compat` alongside
// go vet's deprecation-aware analysis).
func TestDeprecatedCompat(t *testing.T) {
	res := apiStream(t)

	m1, err := mpeg2par.Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mpeg2par.ScanReader(bytes.NewReader(res.Data), 333)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TotalPictures != m2.TotalPictures || len(m1.GOPs) != len(m2.GOPs) || m1.Bytes != m2.Bytes {
		t.Fatalf("ScanReader map (%d pics, %d GOPs) differs from Scan (%d pics, %d GOPs)",
			m2.TotalPictures, len(m2.GOPs), m1.TotalPictures, len(m1.GOPs))
	}

	frames, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	identical := true
	st, err := mpeg2par.DecodeParallel(res.Data, mpeg2par.Options{
		Mode: mpeg2par.ModeGOP, Workers: 2,
		Sink: func(f *mpeg2par.Frame) {
			if i < len(frames) && !f.Equal(frames[i]) {
				identical = false
			}
			i++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Displayed != len(frames) || !identical {
		t.Fatalf("DecodeParallel displayed %d (identical=%v), want %d", st.Displayed, identical, len(frames))
	}
}

// TestWithAutoTune: the auto-tuned decode must match the sequential
// baseline bit-exactly and report its resolved decision in Stats.Auto.
func TestWithAutoTune(t *testing.T) {
	res := apiStream(t)
	want, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	var got []*mpeg2par.Frame
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithAutoTune(),
		mpeg2par.WithWorkers(3),
		mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { got = append(got, f.Clone()) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Auto == nil {
		t.Fatal("Stats.Auto not reported")
	}
	if st.Mode == mpeg2par.ModeAuto {
		t.Fatalf("Stats.Mode still ModeAuto, want the resolved mode")
	}
	if st.Auto.Workers < 1 || st.Auto.Workers > 3 {
		t.Fatalf("auto chose %d workers outside [1,3]", st.Auto.Workers)
	}
	if len(got) != len(want) {
		t.Fatalf("%d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("frame %d differs from sequential baseline", i)
		}
	}
}

// TestWithPacking: overriding the packing discipline never changes
// decoded output.
func TestWithPacking(t *testing.T) {
	res := apiStream(t)
	want, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, pk := range []struct {
		name string
		p    mpeg2par.Packing
		seed int64
	}{
		{"fifo", mpeg2par.PackFIFO, 0},
		{"reverse", mpeg2par.PackReverse, 0},
		{"random", mpeg2par.PackRandom, 17},
	} {
		var got []*mpeg2par.Frame
		_, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
			mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
			mpeg2par.WithWorkers(3),
			mpeg2par.WithPacking(pk.p, pk.seed),
			mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { got = append(got, f.Clone()) }),
		)
		if err != nil {
			t.Fatalf("%s: %v", pk.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d frames, want %d", pk.name, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: frame %d differs from sequential baseline", pk.name, i)
			}
		}
	}
}
