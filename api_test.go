package mpeg2par_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"mpeg2par"
)

func apiStream(t testing.TB) *mpeg2par.Stream {
	t.Helper()
	res, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 12, GOPSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDecodeSourcesMatch: FromBytes and FromReader must both reproduce
// the sequential baseline bit-exactly in every mode.
func TestDecodeSourcesMatch(t *testing.T) {
	res := apiStream(t)
	want, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mpeg2par.Mode{
		mpeg2par.ModeSequential, mpeg2par.ModeGOP,
		mpeg2par.ModeSliceSimple, mpeg2par.ModeSliceImproved,
	} {
		for _, src := range []struct {
			name string
			s    mpeg2par.Source
		}{
			{"bytes", mpeg2par.FromBytes(res.Data)},
			{"reader", mpeg2par.FromReader(bytes.NewReader(res.Data))},
		} {
			var got []*mpeg2par.Frame
			st, err := mpeg2par.Decode(context.Background(), src.s,
				mpeg2par.WithMode(mode),
				mpeg2par.WithWorkers(3),
				mpeg2par.WithChunkSize(777),
				mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { got = append(got, f.Clone()) }),
			)
			if err != nil {
				t.Fatalf("%v %s: %v", mode, src.name, err)
			}
			if st.Displayed != len(want) || len(got) != len(want) {
				t.Fatalf("%v %s: displayed %d (sink %d), want %d", mode, src.name, st.Displayed, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%v %s: frame %d differs from sequential decode", mode, src.name, i)
				}
			}
		}
	}
}

// TestDecodeOptionWiring checks the functional options reach the
// pipeline: resilience, window, and worker settings show up in Stats.
func TestDecodeOptionWiring(t *testing.T) {
	res := apiStream(t)
	st, err := mpeg2par.Decode(context.Background(), mpeg2par.FromBytes(res.Data),
		mpeg2par.WithMode(mpeg2par.ModeGOP),
		mpeg2par.WithWorkers(2),
		mpeg2par.WithResilience(mpeg2par.ConcealSlice),
		mpeg2par.WithMaxInFlight(1),
		mpeg2par.WithChunkSize(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != mpeg2par.ModeGOP || st.Workers != 2 {
		t.Fatalf("stats report mode %v workers %d", st.Mode, st.Workers)
	}
	if st.PeakInFlightBytes <= 0 || st.PeakInFlightBytes >= int64(len(res.Data)) {
		t.Fatalf("peak in-flight %d not bounded below stream length %d", st.PeakInFlightBytes, len(res.Data))
	}
	if st.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", st.LeakedFrameBytes)
	}
}

// TestDecodeCancel: a cancelled context surfaces context.Canceled with
// teardown-clean stats.
func TestDecodeCancel(t *testing.T) {
	res := apiStream(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(res.Data))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if st == nil || st.LeakedFrameBytes != 0 {
		t.Fatalf("teardown stats %+v", st)
	}
}

// TestDeprecatedCompat keeps the deprecated wrappers working and
// agreeing with their replacements (built by `make compat` alongside
// go vet's deprecation-aware analysis).
func TestDeprecatedCompat(t *testing.T) {
	res := apiStream(t)

	m1, err := mpeg2par.Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mpeg2par.ScanReader(bytes.NewReader(res.Data), 333)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TotalPictures != m2.TotalPictures || len(m1.GOPs) != len(m2.GOPs) || m1.Bytes != m2.Bytes {
		t.Fatalf("ScanReader map (%d pics, %d GOPs) differs from Scan (%d pics, %d GOPs)",
			m2.TotalPictures, len(m2.GOPs), m1.TotalPictures, len(m1.GOPs))
	}

	frames, err := mpeg2par.DecodeAll(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	identical := true
	st, err := mpeg2par.DecodeParallel(res.Data, mpeg2par.Options{
		Mode: mpeg2par.ModeGOP, Workers: 2,
		Sink: func(f *mpeg2par.Frame) {
			if i < len(frames) && !f.Equal(frames[i]) {
				identical = false
			}
			i++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Displayed != len(frames) || !identical {
		t.Fatalf("DecodeParallel displayed %d (identical=%v), want %d", st.Displayed, identical, len(frames))
	}
}
