// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (backed by internal/bench's experiment drivers), plus
// wall-clock benchmarks of the real decode engines. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the paper-shaped metric of their
// table/figure as a custom unit alongside the usual ns/op.
package mpeg2par_test

import (
	"io"
	"sync"
	"testing"

	"mpeg2par"
	"mpeg2par/internal/bench"
)

var (
	runnerOnce  sync.Once
	benchRunner *bench.Runner
)

// runner returns the shared experiment runner (streams and profiles are
// generated once and cached across benchmarks).
func runner() *bench.Runner {
	runnerOnce.Do(func() {
		benchRunner = bench.NewRunner(bench.SmallConfig())
	})
	return benchRunner
}

func BenchmarkTable1TestStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner().Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ScanRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Table2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		rate = rows[len(rows)-1].ScanPicsPerS
	}
	b.ReportMetric(rate, "scan-pics/s")
}

func BenchmarkTable34Throughput(b *testing.B) {
	var gop float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Table34(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		gop = rows[len(rows)-1].GOP
	}
	b.ReportMetric(gop, "gop-pics/s")
}

func BenchmarkFig5GOPSpeedup(b *testing.B) {
	var s14 float64
	for i := 0; i < b.N; i++ {
		series, err := runner().Fig5(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		s14 = series[0].Speedup[len(series[0].Speedup)-1]
	}
	b.ReportMetric(s14, "speedup@14")
}

func BenchmarkFig6LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner().Fig6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MemoryStall(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Fig7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "actual/ideal")
}

func BenchmarkFig8GOPMemory(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Fig8(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		peak = float64(rows[len(rows)-1].PeakFrames)
	}
	b.ReportMetric(peak, "peak-frames")
}

func BenchmarkFig9MemoryModel(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		cases, err := runner().Fig9(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		peak = float64(cases[len(cases)-1].Peak) / (1 << 20)
	}
	b.ReportMetric(peak, "peak-MB")
}

func BenchmarkFig11SliceSpeedups(b *testing.B) {
	var improved float64
	for i := 0; i < b.N; i++ {
		_, imp, err := runner().Fig11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		improved = imp[len(imp)-1].Speedup[13]
	}
	b.ReportMetric(improved, "improved-speedup@14")
}

func BenchmarkFig12SyncRatio(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := runner().Fig12(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		ratio = series[len(series)-1].Ratio[13]
	}
	b.ReportMetric(ratio, "sync/exec@14")
}

func BenchmarkFig13LineSize(b *testing.B) {
	var mr float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Fig13(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		mr = rows[len(rows)-1].MissRate
	}
	b.ReportMetric(mr*100, "missrate-%@256B")
}

func BenchmarkFig14WorkingSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner().Fig14(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15CapacityVsCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner().Fig15(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDashDSM(b *testing.B) {
	var s32 float64
	for i := 0; i < b.N; i++ {
		rows, err := runner().Dash(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		s32 = rows[len(rows)-1].SpeedupOver4
	}
	b.ReportMetric(s32, "speedup32/4")
}

// --- wall-clock engine benchmarks -------------------------------------------

func BenchmarkEncode352(b *testing.B) {
	cfg := mpeg2par.StreamConfig{Width: 352, Height: 240, Pictures: 13, GOPSize: 13, BitRate: 5_000_000}
	for i := 0; i < b.N; i++ {
		if _, err := mpeg2par.GenerateStream(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(13*b.N)/b.Elapsed().Seconds(), "pics/s")
}

func BenchmarkSequentialDecode352(b *testing.B) {
	s := testStream352(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpeg2par.DecodeAll(s.Data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(s.Pictures)*b.N)/b.Elapsed().Seconds(), "pics/s")
}

func BenchmarkParallelDecode(b *testing.B) {
	s := testStream352(b)
	for _, mode := range []mpeg2par.Mode{mpeg2par.ModeGOP, mpeg2par.ModeSliceSimple, mpeg2par.ModeSliceImproved} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mpeg2par.DecodeParallel(s.Data, mpeg2par.Options{Mode: mode, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(s.Pictures)*b.N)/b.Elapsed().Seconds(), "pics/s")
		})
	}
}

func BenchmarkScan(b *testing.B) {
	s := testStream352(b)
	b.SetBytes(int64(len(s.Data)))
	for i := 0; i < b.N; i++ {
		if _, err := mpeg2par.Scan(s.Data); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	s352Once sync.Once
	s352     *mpeg2par.Stream
	s352Err  error
)

func testStream352(b *testing.B) *mpeg2par.Stream {
	b.Helper()
	s352Once.Do(func() {
		s352, s352Err = mpeg2par.GenerateStream(mpeg2par.StreamConfig{
			Width: 352, Height: 240, Pictures: 26, GOPSize: 13, BitRate: 5_000_000,
		})
	})
	if s352Err != nil {
		b.Fatal(s352Err)
	}
	return s352
}
