// Command mpeg2bench regenerates the tables and figures of the paper's
// evaluation (Bilas, Fritts & Singh, IPPS 1997). Each experiment encodes
// its own test streams, profiles real decode costs, and replays them in
// the deterministic parallel simulator — see DESIGN.md for the full
// experiment index.
//
// Usage:
//
//	mpeg2bench                 # everything, at the default (small) scale
//	mpeg2bench -exp fig11      # one experiment
//	mpeg2bench -full           # all four paper resolutions incl. 1408x960
//	mpeg2bench -list           # experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpeg2par/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	full := flag.Bool("full", false, "use all four paper resolutions (1408x960 is slow)")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("maxworkers", 14, "largest worker count in sweeps")
	profileGOPs := flag.Int("profilegops", 2, "GOPs to encode+measure per configuration")
	jsonOut := flag.Bool("json", false, "emit structured JSON instead of tables")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}

	cfg := bench.SmallConfig()
	if *full {
		cfg = bench.Config{}
	}
	cfg.MaxWorkers = *workers
	cfg.ProfileGOPs = *profileGOPs
	r := bench.NewRunner(cfg)

	start := time.Now()
	var err error
	switch {
	case *jsonOut && *exp == "all":
		err = r.AllJSON(os.Stdout)
	case *jsonOut:
		err = r.RunJSON(*exp, os.Stdout)
	case *exp == "all":
		err = r.All(os.Stdout)
	default:
		err = r.Run(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
