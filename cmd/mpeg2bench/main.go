// Command mpeg2bench regenerates the tables and figures of the paper's
// evaluation (Bilas, Fritts & Singh, IPPS 1997). Each experiment encodes
// its own test streams, profiles real decode costs, and replays them in
// the deterministic parallel simulator — see DESIGN.md for the full
// experiment index.
//
// Usage:
//
//	mpeg2bench                 # everything, at the default (small) scale
//	mpeg2bench -exp fig11      # one experiment
//	mpeg2bench -full           # all four paper resolutions incl. 1408x960
//	mpeg2bench -list           # experiment ids
//	mpeg2bench -perf -json -label after   # append a perf run to BENCH_<n>.json
//	mpeg2bench -faults [-json]            # corruption sweep: PSNR vs loss rate
//	mpeg2bench -sched [-workers 4]        # FIFO-vs-LPT packing comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpeg2par/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	full := flag.Bool("full", false, "use all four paper resolutions (1408x960 is slow)")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("maxworkers", 14, "largest worker count in sweeps")
	profileGOPs := flag.Int("profilegops", 2, "GOPs to encode+measure per configuration")
	jsonOut := flag.Bool("json", false, "emit structured JSON instead of tables")
	perf := flag.Bool("perf", false, "run the perf-trajectory harness and append to a BENCH_<n>.json")
	repeat := flag.Int("repeat", 0, "with -perf/-sched: timed repetitions per point, median kept (0 = default 3)")
	sched := flag.Bool("sched", false, "run the packing comparison (FIFO vs LPT imbalance and throughput on a skewed stream)")
	faultsSweep := flag.Bool("faults", false, "run the corruption sweep (PSNR vs loss rate under each resilience policy)")
	faultSeed := flag.Int64("seed", 1, "with -faults: fault-injection seed")
	perfOut := flag.String("o", "", "perf output file (default: highest existing BENCH_<n>.json, else BENCH_1.json)")
	perfLabel := flag.String("label", "", "label recorded with the perf run")
	perfNew := flag.Bool("new", false, "with -perf: start the next-numbered BENCH_<n>.json instead of appending")
	traced := flag.Bool("timeline", false, "run a traced decode and report load balance + sync overhead from the event stream")
	traceOut := flag.String("trace", "", "with -timeline: also write Chrome trace JSON here (open in Perfetto)")
	traceMode := flag.String("mode", "slice-improved", "with -timeline: decode mode")
	traceWorkers := flag.Int("workers", 4, "with -timeline: worker count")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}
	if *perf {
		if err := runPerf(*perfOut, *perfLabel, *perfNew, *repeat); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "service" {
		if err := runService(*perfOut, *perfLabel, *traceWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "vldsplit" {
		if err := runVLDSplit(*perfOut, *perfLabel, *traceWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "deadline" {
		if err := runDeadline(*perfOut, *perfLabel); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sched {
		if err := runSched(*traceWorkers, *repeat, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faultsSweep {
		if err := runFaults(*faultSeed, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traced {
		if err := runTimeline(*traceMode, *traceWorkers, *traceOut, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.SmallConfig()
	if *full {
		cfg = bench.Config{}
	}
	cfg.MaxWorkers = *workers
	cfg.ProfileGOPs = *profileGOPs
	r := bench.NewRunner(cfg)

	start := time.Now()
	var err error
	switch {
	case *jsonOut && *exp == "all":
		err = r.AllJSON(os.Stdout)
	case *jsonOut:
		err = r.RunJSON(*exp, os.Stdout)
	case *exp == "all":
		err = r.All(os.Stdout)
	default:
		err = r.Run(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2bench: %v\n", err)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// runFaults executes the corruption sweep (internal/bench/faults.go):
// decode quality and ErrorStats under each resilience policy across a
// battery of injected faults, with a built-in determinism cross-check.
func runFaults(seed int64, jsonOut bool) error {
	res, err := bench.FaultSweep(bench.FaultConfig{Seed: seed})
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	res.RenderFaultTable(os.Stdout)
	return nil
}

// runTimeline decodes the reference stream with the event tracer
// attached and prints the derived load-balance / sync-overhead report
// (internal/bench/timeline.go); -trace additionally exports the raw
// timeline as Chrome trace JSON.
func runTimeline(mode string, workers int, traceOut string, jsonOut bool) error {
	res, err := bench.TimelineRun(bench.TimelineConfig{
		Mode: mode, Workers: workers, TraceOut: traceOut,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	res.WriteText(os.Stdout)
	if traceOut != "" {
		fmt.Printf("wrote %d timeline events to %s (open in Perfetto or chrome://tracing)\n",
			len(res.Timeline.Events), traceOut)
	}
	return nil
}

// runSched executes the packing comparison (internal/bench/sched.go):
// FIFO vs LPT task packing on a stream with skewed slice costs, plus the
// auto-tuned point, measured by imbalance factor and throughput.
func runSched(workers, repeat int, jsonOut bool) error {
	res, err := bench.SchedCompare(bench.SchedConfig{Workers: workers, Repeats: repeat})
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	res.WriteText(os.Stdout)
	return nil
}

// runPerf executes the perf-trajectory harness and appends the run to the
// selected BENCH_<n>.json (see internal/bench/perf.go for the schema).
func runPerf(out, label string, startNew bool, repeat int) error {
	if out == "" {
		out = pickBenchFile(startNew)
	}
	if label == "" {
		label = "run-" + time.Now().UTC().Format("20060102T150405Z")
	}
	run, err := bench.PerfTrajectory(bench.PerfConfig{Repeats: repeat}, label)
	if err != nil {
		return err
	}
	pf, err := bench.AppendPerfRun(out, run)
	if err != nil {
		return err
	}
	fmt.Printf("%s: run %q appended (%d runs total)\n", out, label, len(pf.Runs))
	fmt.Printf("  host: %s/%s, %d CPUs, GOMAXPROCS=%d, kernels %s (features: %s)\n",
		run.GOOS, run.GOARCH, run.NumCPU, run.GOMAXPROCS, run.KernelLevel, run.CPUFeatures)
	fmt.Printf("  sequential: %.0f pics/s (%.2f ms/picture)\n",
		run.SequentialPicsPerSec, run.SequentialMSPerPic)
	fmt.Printf("  workload: %d MBs (%d predicted, %d bidir), %d coded blocks, %d coefs\n",
		run.Work.MBs, run.Work.PredMBs, run.Work.BidirMBs, run.Work.CodedBlocks, run.Work.Coefs)
	if len(run.KernelBench) > 0 {
		fmt.Printf("  kernel ns/MB by tier:\n")
		byKernel := map[string][]bench.KernelBenchPoint{}
		var order []string
		for _, kp := range run.KernelBench {
			if _, ok := byKernel[kp.Kernel]; !ok {
				order = append(order, kp.Kernel)
			}
			byKernel[kp.Kernel] = append(byKernel[kp.Kernel], kp)
		}
		for _, k := range order {
			fmt.Printf("    %-13s", k)
			for _, kp := range byKernel[k] {
				fmt.Printf("  %s=%.0f", kp.Level, kp.NsPerMB)
			}
			fmt.Println()
		}
	}
	if run.ScalingNote != "" {
		fmt.Printf("  NOTE: %s\n", run.ScalingNote)
	}
	for _, pt := range run.Points {
		auto := ""
		if pt.Auto != "" {
			auto = "  -> " + pt.Auto
		}
		speedup := fmt.Sprintf("speedup %.2f", pt.Speedup)
		if run.GOMAXPROCS == 1 && pt.Workers > 1 {
			speedup = fmt.Sprintf("speedup %.2f [overhead-only: GOMAXPROCS=1]", pt.Speedup)
		}
		fmt.Printf("  %-15s w=%d  %8.0f pics/s  %s  (scan %.1fms busy %.1fms wait %.1fms)%s\n",
			pt.Mode, pt.Workers, pt.PicsPerSec, speedup, pt.ScanMS, pt.WorkerBusyMS, pt.WorkerWaitMS, auto)
	}
	return nil
}

// runService executes the multi-stream overload harness (internal/
// bench/service.go) and appends the measurement to the selected
// BENCH_<n>.json as a PerfRun with only the Service point set.
func runService(out, label string, workers int) error {
	if out == "" {
		out = pickBenchFile(false)
	}
	if label == "" {
		label = "service-" + time.Now().UTC().Format("20060102T150405Z")
	}
	res, err := bench.ServiceLoad(bench.ServiceConfig{Workers: workers, SinkDelay: 300 * time.Microsecond})
	if err != nil {
		return err
	}
	res.WriteText(os.Stdout)
	pf, err := bench.AppendPerfRun(out, bench.ServiceRun(label, &res.Point))
	if err != nil {
		return err
	}
	fmt.Printf("%s: service run %q appended (%d runs total)\n", out, label, len(pf.Runs))
	return nil
}

// runVLDSplit executes the intra-slice split-decode experiment
// (internal/bench/vldsplit.go) and appends the measurement to the
// selected BENCH_<n>.json as a PerfRun with only the VLDSplit point set.
func runVLDSplit(out, label string, workers int) error {
	if out == "" {
		out = pickBenchFile(false)
	}
	if label == "" {
		label = "vldsplit-" + time.Now().UTC().Format("20060102T150405Z")
	}
	res, err := bench.VLDSplit(bench.VLDSplitConfig{Workers: workers})
	if err != nil {
		return err
	}
	res.WriteText(os.Stdout)
	pf, err := bench.AppendPerfRun(out, bench.VLDSplitRun(label, &res.Point))
	if err != nil {
		return err
	}
	fmt.Printf("%s: vldsplit run %q appended (%d runs total)\n", out, label, len(pf.Runs))
	return nil
}

// runDeadline executes the EDF-vs-fair deadline study (internal/bench/
// deadline.go) and appends it to the selected BENCH_<n>.json as a
// PerfRun with only the Deadline point set. The recorded run enforces
// the tentpole's acceptance bar: the EDF arm must cut the miss rate at
// the heaviest load by at least 2x.
func runDeadline(out, label string) error {
	if out == "" {
		out = pickBenchFile(false)
	}
	if label == "" {
		label = "deadline-" + time.Now().UTC().Format("20060102T150405Z")
	}
	pt, err := bench.DeadlineStudy(bench.DeadlineConfig{RequireImprovement: 2.0})
	if pt != nil {
		pt.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	pf, err := bench.AppendPerfRun(out, bench.DeadlineRun(label, pt))
	if err != nil {
		return err
	}
	fmt.Printf("%s: deadline run %q appended (%d runs total)\n", out, label, len(pf.Runs))
	return nil
}

// pickBenchFile returns the BENCH_<n>.json to write: the highest-numbered
// existing file (this PR's trajectory), or the next free number when
// startNew is set or none exists yet.
func pickBenchFile(startNew bool) string {
	matches, _ := filepath.Glob("BENCH_*.json")
	max := 0
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	if max == 0 {
		return "BENCH_1.json"
	}
	if startNew {
		return fmt.Sprintf("BENCH_%d.json", max+1)
	}
	return fmt.Sprintf("BENCH_%d.json", max)
}
