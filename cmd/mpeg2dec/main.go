// Command mpeg2dec decodes an MPEG-2 video elementary stream with the
// sequential decoder or one of the paper's parallel decoders, reporting
// throughput, per-worker time breakdowns and memory usage. Output can be
// written as raw planar YUV 4:2:0 for inspection.
//
// Usage:
//
//	mpeg2dec -mode slice-improved -workers 4 -yuv out.yuv stream.m2v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpeg2par"
)

func main() {
	mode := flag.String("mode", "seq", "decoder: seq, gop, slice, slice-improved")
	workers := flag.Int("workers", 1, "worker processes for parallel modes")
	yuv := flag.String("yuv", "", "write decoded frames as planar YUV 4:2:0")
	conceal := flag.Bool("conceal", false, "conceal damaged slices instead of failing")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal("usage: mpeg2dec [flags] stream.m2v")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}

	var sinkFile *os.File
	if *yuv != "" {
		sinkFile, err = os.Create(*yuv)
		if err != nil {
			fatal("%v", err)
		}
		defer sinkFile.Close()
	}
	writeFrame := func(f *mpeg2par.Frame) {
		if sinkFile == nil {
			return
		}
		// Display-size planes, row by row.
		for y := 0; y < f.Height; y++ {
			sinkFile.Write(f.Y[y*f.CodedW : y*f.CodedW+f.Width])
		}
		for _, plane := range [][]uint8{f.Cb, f.Cr} {
			for y := 0; y < f.Height/2; y++ {
				sinkFile.Write(plane[y*f.CodedW/2 : y*f.CodedW/2+f.Width/2])
			}
		}
	}

	if *mode == "seq" {
		start := time.Now()
		d, err := mpeg2par.NewDecoder(data)
		if err != nil {
			fatal("%v", err)
		}
		d.Conceal = *conceal
		frames, err := d.All()
		if err != nil {
			fatal("decode: %v", err)
		}
		for _, f := range frames {
			writeFrame(f)
		}
		wall := time.Since(start)
		fmt.Printf("sequential: %d pictures in %v (%.1f pics/s)\n",
			len(frames), wall.Round(time.Millisecond), float64(len(frames))/wall.Seconds())
		if d.Concealed > 0 {
			fmt.Printf("concealed %d macroblocks\n", d.Concealed)
		}
		return
	}

	var m mpeg2par.Mode
	switch *mode {
	case "gop":
		m = mpeg2par.ModeGOP
	case "slice":
		m = mpeg2par.ModeSliceSimple
	case "slice-improved":
		m = mpeg2par.ModeSliceImproved
	default:
		fatal("unknown mode %q", *mode)
	}
	stats, err := mpeg2par.DecodeParallel(data, mpeg2par.Options{
		Mode:    m,
		Workers: *workers,
		Sink:    writeFrame,
		Conceal: *conceal,
	})
	if err != nil {
		fatal("decode: %v", err)
	}
	fmt.Printf("%s x%d: %d pictures in %v (%.1f pics/s), scan %.0f pics/s\n",
		*mode, *workers, stats.Pictures, stats.Wall.Round(time.Millisecond),
		stats.PicturesPerSecond(), stats.ScanRate)
	fmt.Printf("peak frame memory: %.2f MB\n", float64(stats.PeakFrameBytes)/(1<<20))
	if stats.Concealed > 0 {
		fmt.Printf("concealed %d macroblocks\n", stats.Concealed)
	}
	for i, ws := range stats.WorkerStats {
		fmt.Printf("  worker %2d: busy %-12v wait %-12v tasks %d\n",
			i, ws.Busy.Round(time.Microsecond), ws.Wait.Round(time.Microsecond), ws.Tasks)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpeg2dec: "+format+"\n", args...)
	os.Exit(1)
}
