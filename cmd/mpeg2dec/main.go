// Command mpeg2dec decodes an MPEG-2 video elementary stream with the
// sequential decoder or one of the paper's parallel decoders, reporting
// throughput, per-worker time breakdowns and memory usage. Output can be
// written as raw planar YUV 4:2:0 for inspection.
//
// A resilience policy turns damaged streams from hard errors into
// recovered decodes (identical in every mode), and -fault/-seed inject
// deterministic corruption for testing the policies end to end.
//
// Usage:
//
//	mpeg2dec -mode slice-improved -workers 4 -yuv out.yuv stream.m2v
//	mpeg2dec -resilience conceal-slice -fault gilbert:loss=0.01,pkt=188 stream.m2v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpeg2par"
)

func main() {
	mode := flag.String("mode", "seq", "decoder: seq, gop, slice, slice-improved")
	workers := flag.Int("workers", 1, "worker processes for parallel modes")
	yuv := flag.String("yuv", "", "write decoded frames as planar YUV 4:2:0")
	conceal := flag.Bool("conceal", false, "legacy alias for -resilience conceal-slice")
	resilience := flag.String("resilience", "failfast",
		"damage policy: failfast, conceal-slice, conceal-picture, drop-gop")
	fault := flag.String("fault", "", "inject a fault before decoding, e.g. bitflip:8 or gilbert:loss=0.02,pkt=188")
	seed := flag.Int64("seed", 1, "fault-injection seed (with -fault)")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal("usage: mpeg2dec [flags] stream.m2v")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}

	policy, err := mpeg2par.ParseResilience(*resilience)
	if err != nil {
		fatal("%v", err)
	}
	if *conceal && policy == mpeg2par.FailFast {
		policy = mpeg2par.ConcealSlice
	}

	if *fault != "" {
		sp, err := mpeg2par.ParseFaultSpec(*fault)
		if err != nil {
			fatal("%v", err)
		}
		var rep mpeg2par.FaultReport
		data, rep = sp.Apply(data, *seed)
		fmt.Printf("injected %s seed %d: %d events, %d bits flipped, %d bytes corrupted, %d bytes dropped (%d -> %d bytes)\n",
			rep.Spec, rep.Seed, rep.Events, rep.BitsFlipped, rep.BytesCorrupted, rep.BytesDropped, rep.InLen, rep.OutLen)
	}

	var sinkFile *os.File
	if *yuv != "" {
		sinkFile, err = os.Create(*yuv)
		if err != nil {
			fatal("%v", err)
		}
		defer sinkFile.Close()
	}
	writeFrame := func(f *mpeg2par.Frame) {
		if sinkFile == nil {
			return
		}
		// Display-size planes, row by row.
		for y := 0; y < f.Height; y++ {
			sinkFile.Write(f.Y[y*f.CodedW : y*f.CodedW+f.Width])
		}
		for _, plane := range [][]uint8{f.Cb, f.Cr} {
			for y := 0; y < f.Height/2; y++ {
				sinkFile.Write(plane[y*f.CodedW/2 : y*f.CodedW/2+f.Width/2])
			}
		}
	}

	// The plain sequential decoder handles only the failfast/conceal pair;
	// the policy ladder routes "seq" through the core's planned sequential
	// executor instead, which shares resilience with the parallel modes.
	if *mode == "seq" && policy == mpeg2par.FailFast {
		start := time.Now()
		d, err := mpeg2par.NewDecoder(data)
		if err != nil {
			fatal("%v", err)
		}
		frames, err := d.All()
		if err != nil {
			fatal("decode: %v", err)
		}
		for _, f := range frames {
			writeFrame(f)
		}
		wall := time.Since(start)
		fmt.Printf("sequential: %d pictures in %v (%.1f pics/s)\n",
			len(frames), wall.Round(time.Millisecond), float64(len(frames))/wall.Seconds())
		return
	}

	var m mpeg2par.Mode
	switch *mode {
	case "seq":
		m = mpeg2par.ModeSequential
	case "gop":
		m = mpeg2par.ModeGOP
	case "slice":
		m = mpeg2par.ModeSliceSimple
	case "slice-improved":
		m = mpeg2par.ModeSliceImproved
	default:
		fatal("unknown mode %q", *mode)
	}
	stats, err := mpeg2par.DecodeParallel(data, mpeg2par.Options{
		Mode:       m,
		Workers:    *workers,
		Sink:       writeFrame,
		Resilience: policy,
	})
	if err != nil {
		fatal("decode: %v", err)
	}
	fmt.Printf("%s x%d (%s): %d pictures in %v (%.1f pics/s), scan %.0f pics/s\n",
		*mode, *workers, policy, stats.Pictures, stats.Wall.Round(time.Millisecond),
		stats.PicturesPerSecond(), stats.ScanRate)
	fmt.Printf("peak frame memory: %.2f MB\n", float64(stats.PeakFrameBytes)/(1<<20))
	if stats.Errors.Any() {
		fmt.Printf("recovered damage: %s\n", stats.Errors)
	}
	if n := stats.Concealed + stats.Errors.ConcealedMBs; n > 0 {
		fmt.Printf("concealed %d macroblocks\n", n)
	}
	for i, ws := range stats.WorkerStats {
		fmt.Printf("  worker %2d: busy %-12v wait %-12v tasks %d\n",
			i, ws.Busy.Round(time.Microsecond), ws.Wait.Round(time.Microsecond), ws.Tasks)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpeg2dec: "+format+"\n", args...)
	os.Exit(1)
}
