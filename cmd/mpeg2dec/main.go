// Command mpeg2dec decodes an MPEG-2 video elementary stream with the
// sequential decoder or one of the paper's parallel decoders, reporting
// throughput, per-worker time breakdowns and memory usage. Output can be
// written as raw planar YUV 4:2:0 for inspection.
//
// Decoding streams through the context-first pipeline: the input —
// a file, or stdin when the argument is "-" — is read incrementally,
// groups of pictures are decoded as the scan discovers them, and peak
// buffered-stream memory stays bounded by the scan-ahead window
// (-inflight). -timeout aborts a stuck or oversized decode cleanly.
//
// A resilience policy turns damaged streams from hard errors into
// recovered decodes (identical in every mode), and -fault/-seed inject
// deterministic corruption for testing the policies end to end
// (fault injection materializes the stream in memory first).
//
// Usage:
//
//	mpeg2dec -mode slice-improved -workers 4 -yuv out.yuv stream.m2v
//	cat stream.m2v | mpeg2dec -mode gop -workers 4 -timeout 30s -
//	mpeg2dec -resilience conceal-slice -fault gilbert:loss=0.01,pkt=188 stream.m2v
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mpeg2par"
)

func main() {
	mode := flag.String("mode", "seq", "decoder: seq, gop, slice, slice-improved, auto")
	workers := flag.Int("workers", 1, "worker processes for parallel modes")
	yuv := flag.String("yuv", "", "write decoded frames as planar YUV 4:2:0")
	conceal := flag.Bool("conceal", false, "legacy alias for -resilience conceal-slice")
	resilience := flag.String("resilience", "failfast",
		"damage policy: failfast, conceal-slice, conceal-picture, drop-gop")
	fault := flag.String("fault", "", "inject a fault before decoding, e.g. bitflip:8 or gilbert:loss=0.02,pkt=188")
	seed := flag.Int64("seed", 1, "fault-injection seed (with -fault)")
	timeout := flag.Duration("timeout", 0, "abort the decode after this long (0 = no limit)")
	inflight := flag.Int("inflight", 0, "scan-ahead window in GOPs (0 = 2*workers+2)")
	trace := flag.String("trace", "", "record the worker timeline and write Chrome trace JSON (open in Perfetto)")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal("usage: mpeg2dec [flags] stream.m2v|-")
	}

	policy, err := mpeg2par.ParseResilience(*resilience)
	if err != nil {
		fatal("%v", err)
	}
	if *conceal && policy == mpeg2par.FailFast {
		policy = mpeg2par.ConcealSlice
	}

	// The source: a reader streamed incrementally, unless fault
	// injection needs the whole stream in memory first.
	var src mpeg2par.Source
	var in io.ReadCloser
	if *fault != "" {
		data, err := readAll(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		sp, err := mpeg2par.ParseFaultSpec(*fault)
		if err != nil {
			fatal("%v", err)
		}
		var rep mpeg2par.FaultReport
		data, rep = sp.Apply(data, *seed)
		fmt.Printf("injected %s seed %d: %d events, %d bits flipped, %d bytes corrupted, %d bytes dropped (%d -> %d bytes)\n",
			rep.Spec, rep.Seed, rep.Events, rep.BitsFlipped, rep.BytesCorrupted, rep.BytesDropped, rep.InLen, rep.OutLen)
		src = mpeg2par.FromBytes(data)
	} else if flag.Arg(0) == "-" {
		src = mpeg2par.FromReader(os.Stdin)
	} else {
		in, err = os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer in.Close()
		src = mpeg2par.FromReader(in)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sinkFile *os.File
	if *yuv != "" {
		sinkFile, err = os.Create(*yuv)
		if err != nil {
			fatal("%v", err)
		}
		defer sinkFile.Close()
	}
	writeFrame := func(f *mpeg2par.Frame) {
		if sinkFile == nil {
			return
		}
		// Display-size planes, row by row.
		for y := 0; y < f.Height; y++ {
			sinkFile.Write(f.Y[y*f.YStride : y*f.YStride+f.Width])
		}
		for _, plane := range [][]uint8{f.Cb, f.Cr} {
			for y := 0; y < f.Height/2; y++ {
				sinkFile.Write(plane[y*f.CStride : y*f.CStride+f.Width/2])
			}
		}
	}

	var m mpeg2par.Mode
	switch *mode {
	case "seq":
		m = mpeg2par.ModeSequential
	case "gop":
		m = mpeg2par.ModeGOP
	case "slice":
		m = mpeg2par.ModeSliceSimple
	case "slice-improved":
		m = mpeg2par.ModeSliceImproved
	case "auto":
		m = mpeg2par.ModeAuto
	default:
		fatal("unknown mode %q", *mode)
	}

	opts := []mpeg2par.Option{
		mpeg2par.WithMode(m),
		mpeg2par.WithWorkers(*workers),
		mpeg2par.WithResilience(policy),
		mpeg2par.WithFrameSink(writeFrame),
		mpeg2par.WithMaxInFlight(*inflight),
	}
	var rec *mpeg2par.TraceRecorder
	if *trace != "" {
		rec = mpeg2par.NewTraceRecorder(0)
		opts = append(opts, mpeg2par.WithTrace(rec))
	}

	stats, err := mpeg2par.Decode(ctx, src, opts...)
	if err != nil {
		if ctx.Err() != nil {
			fatal("decode aborted after %v: %v (displayed %d of %d pictures)",
				*timeout, err, stats.Displayed, stats.Pictures)
		}
		fatal("decode: %v", err)
	}
	if a := stats.Auto; a != nil {
		fmt.Printf("auto-tune: %s (reevals %d, final worker limit %d)\n",
			a.Reason, a.Reevals, a.FinalWorkerLimit)
	}
	fmt.Printf("%s x%d (%s): %d pictures in %v (%.1f pics/s), scan %.0f pics/s, kernels %s\n",
		stats.Mode, stats.Workers, policy, stats.Pictures, stats.Wall.Round(time.Millisecond),
		stats.PicturesPerSecond(), stats.ScanRate, stats.Kernels)
	fmt.Printf("peak frame memory: %.2f MB\n", float64(stats.PeakFrameBytes)/(1<<20))
	fmt.Printf("peak in-flight stream bytes: %.1f KB (scan lead %d pictures)\n",
		float64(stats.PeakInFlightBytes)/(1<<10), stats.ScanLeadPeak)
	if stats.Errors.Any() {
		fmt.Printf("recovered damage: %s\n", stats.Errors)
	}
	if n := stats.Concealed + stats.Errors.ConcealedMBs; n > 0 {
		fmt.Printf("concealed %d macroblocks\n", n)
	}
	for i, ws := range stats.WorkerStats {
		fmt.Printf("  worker %2d: busy %-12v wait %-12v tasks %d\n",
			i, ws.Busy.Round(time.Microsecond), ws.Wait.Round(time.Microsecond), ws.Tasks)
	}

	if rec != nil {
		tl := rec.Snapshot()
		out, err := os.Create(*trace)
		if err != nil {
			fatal("%v", err)
		}
		if err := tl.WriteChromeTrace(out); err != nil {
			out.Close()
			fatal("write trace: %v", err)
		}
		if err := out.Close(); err != nil {
			fatal("write trace: %v", err)
		}
		fmt.Printf("wrote %d timeline events to %s (open in Perfetto or chrome://tracing)\n",
			len(tl.Events), *trace)
		tl.Summary().WriteText(os.Stdout)
	}
}

func readAll(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpeg2dec: "+format+"\n", args...)
	os.Exit(1)
}
