// Command mpeg2gen generates MPEG-2 test streams of the paper's shape:
// a synthetic panning scene encoded at a chosen resolution, GOP size and
// bitrate, with closed GOPs and one slice per macroblock row.
//
// Usage:
//
//	mpeg2gen -size 352x240 -pictures 120 -gop 13 -rate 5000000 -o flow352.m2v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpeg2par"
)

func main() {
	size := flag.String("size", "352x240", "picture size WxH")
	pictures := flag.Int("pictures", 120, "number of pictures")
	gop := flag.Int("gop", 13, "pictures per GOP")
	rate := flag.Int("rate", 5_000_000, "target bitrate (bits/s), 0 = constant quality")
	fps := flag.Float64("fps", 30, "frame rate")
	out := flag.String("o", "out.m2v", "output file")
	quiet := flag.Bool("q", false, "suppress the summary")
	interlaced := flag.Bool("interlaced", false, "interlaced source and coding tools (field prediction/DCT)")
	nogop := flag.Bool("nogop", false, "omit GOP headers (sequence-layer grouping, MPEG-2 option)")
	rows := flag.Int("rows", 0, "macroblock rows per slice (0 = one row per slice; large values make few, tall slices)")
	idxOut := flag.String("index", "", "also build a split index of the generated stream and write it here (feeds WithIndex)")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*size), "%dx%d", &w, &h); err != nil {
		fatal("bad -size %q: %v", *size, err)
	}
	cfg := mpeg2par.StreamConfig{
		Width:                w,
		Height:               h,
		Pictures:             *pictures,
		GOPSize:              *gop,
		BitRate:              *rate,
		FrameRate:            *fps,
		RepeatSequenceHeader: true,
		Interlaced:           *interlaced,
		OmitGOPHeaders:       *nogop,
		RowsPerSlice:         *rows,
	}
	var stream *mpeg2par.Stream
	var err error
	if *interlaced {
		src := mpeg2par.NewInterlacedSynth(w, h)
		stream, err = mpeg2par.EncodeFrames(cfg, func(n int) *mpeg2par.Frame { return src.Frame(n) })
	} else {
		stream, err = mpeg2par.GenerateStream(cfg)
	}
	if err != nil {
		fatal("encode: %v", err)
	}
	if err := os.WriteFile(*out, stream.Data, 0o644); err != nil {
		fatal("write: %v", err)
	}
	if *idxOut != "" {
		idx, err := mpeg2par.BuildIndex(context.Background(), mpeg2par.FromBytes(stream.Data))
		if err != nil {
			fatal("index: %v", err)
		}
		raw, err := idx.MarshalBinary()
		if err != nil {
			fatal("index: %v", err)
		}
		if err := os.WriteFile(*idxOut, raw, 0o644); err != nil {
			fatal("write index: %v", err)
		}
		if !*quiet {
			fmt.Printf("%s: split index, %d slices, %d points, %d bytes\n",
				*idxOut, idx.Slices(), idx.Points(), len(raw))
		}
	}
	if !*quiet {
		var iBits, pBits, bBits, nI, nP, nB int
		for _, p := range stream.Pictures {
			switch p.Type {
			case 'I':
				iBits, nI = iBits+p.Bits, nI+1
			case 'P':
				pBits, nP = pBits+p.Bits, nP+1
			case 'B':
				bBits, nB = bBits+p.Bits, nB+1
			}
		}
		fmt.Printf("%s: %d pictures (%dI %dP %dB), %d GOPs, %.2f MB, %.2f Mb/s\n",
			*out, len(stream.Pictures), nI, nP, nB, len(stream.GOPs),
			float64(len(stream.Data))/(1<<20), stream.BitsPerSecond(*fps)/1e6)
		if nI > 0 && nB > 0 {
			fmt.Printf("avg bits/picture: I %d, P %d, B %d\n", iBits/nI, pBits/max(nP, 1), bBits/nB)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpeg2gen: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
