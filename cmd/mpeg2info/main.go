// Command mpeg2info prints the structure of an MPEG-2 video elementary
// stream as seen by the scan process: sequence parameters, GOPs, pictures
// and their slices — the structural index that task-parallel decoding is
// built on.
//
// Usage:
//
//	mpeg2info [-v] stream.m2v
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"mpeg2par"
	"mpeg2par/internal/vbv"
)

func main() {
	verbose := flag.Bool("v", false, "list every picture (and with -vv every slice)")
	veryVerbose := flag.Bool("vv", false, "list every slice")
	check := flag.Bool("check", false, "validate stream structure and VBV conformance")
	hist := flag.Bool("hist", false, "print per-GOP and per-picture byte-size histograms (the scheduler's cost-model input)")
	idxPath := flag.String("index", "", "split-index file to summarize against the stream (see mpeg2gen -index)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mpeg2info [-v|-vv] stream.m2v")
		os.Exit(1)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2info: %v\n", err)
		os.Exit(1)
	}
	m, err := mpeg2par.ScanReader(bytes.NewReader(data), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2info: %v\n", err)
		os.Exit(1)
	}
	seq := m.Seq
	fmt.Printf("sequence: %dx%d, %.6g fps, %.2f Mb/s nominal, profile/level %#x\n",
		seq.Width, seq.Height, frameRate(seq.FrameRate), float64(seq.BitRate)*400/1e6, seq.ProfileLevel)
	fmt.Printf("stream: %d bytes, %d GOPs, %d pictures, scanned at %.0f pics/s\n",
		len(data), len(m.GOPs), m.TotalPictures, m.ScanRate())
	if *check {
		if err := checkStream(data, m); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2info: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("check: stream structure and VBV conformance OK")
	}
	if *idxPath != "" {
		if err := summarizeIndex(*idxPath, data, m); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2info: %v\n", err)
			os.Exit(1)
		}
	}
	if *hist {
		var gopBytes, picBytes []int
		for g := range m.GOPs {
			gop := &m.GOPs[g]
			gopBytes = append(gopBytes, gop.End-gop.Offset)
			for pi := range gop.Pictures {
				p := &gop.Pictures[pi]
				picBytes = append(picBytes, p.End-p.Offset)
			}
		}
		printHist("GOP bytes", gopBytes)
		printHist("picture bytes", picBytes)
	}
	for g, gop := range m.GOPs {
		closed := "open"
		if gop.Closed {
			closed = "closed"
		}
		fmt.Printf("GOP %3d @%8d: %2d pictures, %s, first display %d\n",
			g, gop.Offset, len(gop.Pictures), closed, gop.FirstDisplay)
		if !*verbose && !*veryVerbose {
			continue
		}
		for pi, p := range gop.Pictures {
			fmt.Printf("  pic %2d @%8d: %s tref=%2d slices=%d bytes=%d\n",
				pi, p.Offset, p.Type, p.TemporalRef, len(p.Slices), p.End-p.Offset)
			if !*veryVerbose {
				continue
			}
			for _, s := range p.Slices {
				fmt.Printf("    slice row %2d @%8d (%d bytes)\n", s.Row, s.Offset, s.End-s.Offset)
			}
		}
	}
}

// summarizeIndex loads a split index and reports how much of this
// stream's slice population it covers: indexed slices fan out across
// the worker pool as independent macroblock-row segments.
func summarizeIndex(path string, data []byte, m *mpeg2par.StreamMap) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	idx := mpeg2par.NewIndex()
	if err := idx.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("index %s: %v", path, err)
	}
	slices, covered, points := 0, 0, 0
	for g := range m.GOPs {
		for pi := range m.GOPs[g].Pictures {
			for _, s := range m.GOPs[g].Pictures[pi].Slices {
				slices++
				if pts := idx.Lookup(data[s.Offset:s.End]); pts != nil {
					covered++
					points += len(pts)
				}
			}
		}
	}
	fmt.Printf("split index: %d indexed slices (%d points); this stream: %d of %d slices covered, %d usable split points\n",
		idx.Slices(), idx.Points(), covered, slices, points)
	return nil
}

// printHist renders a linear-bucket histogram of byte sizes — the raw
// material of the scheduler's cost model, and the first cut of the
// stream-bandwidth characterization.
func printHist(label string, sizes []int) {
	if len(sizes) == 0 {
		return
	}
	min, max := sizes[0], sizes[0]
	total := 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		total += s
	}
	fmt.Printf("%s: n=%d min=%d mean=%d max=%d (max/mean %.2fx)\n",
		label, len(sizes), min, total/len(sizes), max,
		float64(max)*float64(len(sizes))/float64(total))
	buckets := 8
	if len(sizes) < buckets {
		buckets = len(sizes)
	}
	width := (max - min + buckets) / buckets // ceil so max lands in the last bucket
	if width < 1 {
		width = 1
	}
	counts := make([]int, buckets)
	peak := 0
	for _, s := range sizes {
		b := (s - min) / width
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
		if counts[b] > peak {
			peak = counts[b]
		}
	}
	for b, c := range counts {
		bar := ""
		if peak > 0 {
			for i := 0; i < c*40/peak; i++ {
				bar += "#"
			}
		}
		fmt.Printf("  [%8d..%8d) %5d %s\n", min+b*width, min+(b+1)*width, c, bar)
	}
}

func frameRate(code int) float64 {
	rates := []float64{0, 23.976, 24, 25, 29.97, 30, 50, 59.94, 60}
	if code > 0 && code < len(rates) {
		return rates[code]
	}
	return 0
}

// checkStream validates structural invariants the parallel decoders rely
// on, plus VBV conformance at the header-declared rate.
func checkStream(data []byte, m *mpeg2par.StreamMap) error {
	var pictureBits []int
	for g := range m.GOPs {
		gop := &m.GOPs[g]
		seen := make(map[int]bool)
		for pi := range gop.Pictures {
			p := &gop.Pictures[pi]
			if seen[p.TemporalRef] {
				return fmt.Errorf("GOP %d: duplicate temporal reference %d", g, p.TemporalRef)
			}
			seen[p.TemporalRef] = true
			if p.TemporalRef < 0 || p.TemporalRef >= len(gop.Pictures) {
				return fmt.Errorf("GOP %d: temporal reference %d outside group", g, p.TemporalRef)
			}
			if len(p.Slices) == 0 {
				return fmt.Errorf("GOP %d picture %d: no slices", g, pi)
			}
			prevRow := -1
			for _, s := range p.Slices {
				if s.Row < prevRow {
					return fmt.Errorf("GOP %d picture %d: slice rows not ordered", g, pi)
				}
				prevRow = s.Row
			}
			pictureBits = append(pictureBits, (p.End-p.Offset)*8)
		}
	}
	// Every picture must decode (full macroblock coverage) — the cheap
	// proof is a sequential decode.
	d, err := mpeg2par.NewDecoder(data)
	if err != nil {
		return err
	}
	if _, err := d.All(); err != nil {
		return err
	}
	// VBV at the declared rate (skip for unconstrained/tiny rates).
	rate := float64(m.Seq.BitRate) * 400
	if rate > 100_000 {
		buf := m.Seq.VBVBufferSize * 16384
		if buf == 0 {
			buf = 1835008
		}
		res, err := vbv.Verify(vbv.Config{BitRate: rate, BufferBits: buf * 4, PictureHz: 30}, pictureBits)
		if err != nil {
			return err
		}
		if res.Underflows > 0 {
			return fmt.Errorf("VBV underflows %d times at declared %.2f Mb/s", res.Underflows, rate/1e6)
		}
	}
	return nil
}
