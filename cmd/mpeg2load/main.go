// Command mpeg2load drives the multi-stream decode service far past its
// pool capacity and reports how it held up: aggregate throughput, frame
// latency percentiles, within-class fairness, and the graceful-
// degradation ladder's activity (shed pictures, pauses, rejections).
// The run fails loudly if any stream wedges, starves, or leaks — the
// same invariants the service test gate asserts.
//
// Usage:
//
//	mpeg2load                          # 64 streams, 2 priority classes, NumCPU workers
//	mpeg2load -streams 128 -workers 2  # heavier overload
//	mpeg2load -sinkdelay 300us         # add per-frame delivery cost to force saturation
//	mpeg2load -dispatch edf            # earliest-deadline-first with slack actions
//	mpeg2load -dispatch fair -noslack  # PR 8 baseline (weighted fair, slack frozen)
//	mpeg2load -json                    # structured output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpeg2par/internal/bench"
	"mpeg2par/internal/server"
)

func main() {
	workers := flag.Int("workers", 0, "shared pool size (0 = NumCPU)")
	streams := flag.Int("streams", 64, "concurrent streams")
	classes := flag.Int("classes", 2, "priority classes (streams assigned round-robin)")
	pics := flag.Int("pics", 16, "pictures per stream")
	gop := flag.Int("gop", 4, "GOP size")
	width := flag.Int("width", 48, "stream width")
	height := flag.Int("height", 32, "stream height")
	deadline := flag.Duration("deadline", 250*time.Millisecond, "per-frame latency budget")
	inflight := flag.Int("inflight", 2, "per-stream scan-ahead bound (MaxInFlight)")
	sinkDelay := flag.Duration("sinkdelay", 300*time.Microsecond, "artificial per-frame delivery cost (keeps the pool saturated; 0 disables)")
	dispatch := flag.String("dispatch", "auto", "pool task ordering: auto, fair, or edf")
	noSlack := flag.Bool("noslack", false, "freeze per-frame slack actions (plan-time shed, split assist)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the table")
	flag.Parse()

	policy, err := server.ParseDispatch(*dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2load: %v\n", err)
		os.Exit(1)
	}

	res, err := bench.ServiceLoad(bench.ServiceConfig{
		Workers: *workers, Streams: *streams, PriorityClasses: *classes,
		Width: *width, Height: *height, Pictures: *pics, GOPSize: *gop,
		Deadline: *deadline, MaxInFlight: *inflight, SinkDelay: *sinkDelay,
		Dispatch: policy, DisableSlackActions: *noSlack,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpeg2load: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mpeg2load: %v\n", err)
			os.Exit(1)
		}
		return
	}
	res.WriteText(os.Stdout)
}
