// Command mpeg2psnr measures decoded quality: it decodes one or two
// streams and prints per-picture and average luma PSNR — against the
// deterministic synthetic source (the default, since generated test
// streams encode it) or between the two decodes.
//
// Usage:
//
//	mpeg2psnr stream.m2v                  # vs the synthetic source
//	mpeg2psnr -interlaced stream.m2v      # vs the interlaced source
//	mpeg2psnr a.m2v b.m2v                 # decode both, compare
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"mpeg2par"
)

func main() {
	interlaced := flag.Bool("interlaced", false, "compare against the interlaced synthetic source")
	quiet := flag.Bool("q", false, "print only the average")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fatal("usage: mpeg2psnr [-interlaced] stream.m2v [other.m2v]")
	}
	a := decode(flag.Arg(0))

	var ref func(n int) *mpeg2par.Frame
	if flag.NArg() == 2 {
		b := decode(flag.Arg(1))
		if len(b) != len(a) {
			fatal("picture counts differ: %d vs %d", len(a), len(b))
		}
		ref = func(n int) *mpeg2par.Frame { return b[n] }
	} else if *interlaced {
		src := mpeg2par.NewInterlacedSynth(a[0].Width, a[0].Height)
		ref = src.Frame
	} else {
		src := mpeg2par.NewSynth(a[0].Width, a[0].Height)
		ref = src.Frame
	}

	var sum float64
	finite := 0
	for i, f := range a {
		p := mpeg2par.PSNR(ref(i), f)
		if !*quiet {
			fmt.Printf("picture %3d (%c): %6.2f dB\n", i, f.PictureType, p)
		}
		if !math.IsInf(p, 1) {
			sum += p
			finite++
		}
	}
	if finite == 0 {
		fmt.Println("average: identical (infinite PSNR)")
		return
	}
	fmt.Printf("average: %.2f dB over %d pictures\n", sum/float64(finite), len(a))
}

func decode(path string) []*mpeg2par.Frame {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var frames []*mpeg2par.Frame
	_, err = mpeg2par.Decode(context.Background(), mpeg2par.FromReader(f),
		mpeg2par.WithMode(mpeg2par.ModeSequential),
		mpeg2par.WithWorkers(1),
		mpeg2par.WithFrameSink(func(fr *mpeg2par.Frame) { frames = append(frames, fr.Clone()) }),
	)
	if err != nil {
		fatal("decode %s: %v", path, err)
	}
	if len(frames) == 0 {
		fatal("%s: no pictures", path)
	}
	return frames
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpeg2psnr: "+format+"\n", args...)
	os.Exit(1)
}
