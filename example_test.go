package mpeg2par_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"mpeg2par"
)

// ExampleGenerateStream encodes a short test stream and reports its
// structure.
func ExampleGenerateStream() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 4, GOPSize: 4,
	})
	if err != nil {
		panic(err)
	}
	types := ""
	for _, p := range stream.Pictures {
		types += string(p.Type)
	}
	fmt.Println("decode-order picture types:", types)
	fmt.Println("GOPs:", len(stream.GOPs))
	// Output:
	// decode-order picture types: IPBB
	// GOPs: 1
}

// ExampleDecodeParallel decodes with the fine-grained parallel decoder
// and verifies it against the sequential decoder.
func ExampleDecodeParallel() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
	})
	if err != nil {
		panic(err)
	}
	want, err := mpeg2par.DecodeAll(stream.Data)
	if err != nil {
		panic(err)
	}
	identical := true
	i := 0
	stats, err := mpeg2par.DecodeParallel(stream.Data, mpeg2par.Options{
		Mode:    mpeg2par.ModeSliceImproved,
		Workers: 3,
		Sink: func(f *mpeg2par.Frame) {
			if !f.Equal(want[i]) {
				identical = false
			}
			i++
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pictures:", stats.Pictures)
	fmt.Println("bit-exact with sequential decode:", identical)
	// Output:
	// pictures: 8
	// bit-exact with sequential decode: true
}

// ExampleDecode is the streaming quick start: decode from any
// io.Reader under a context, receiving frames in display order while
// the stream is still being read.
func ExampleDecode() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
	})
	if err != nil {
		panic(err)
	}
	// Any io.Reader works as a source; a file or socket would stream in
	// bounded memory just the same.
	src := mpeg2par.FromReader(bytes.NewReader(stream.Data))

	inOrder := true
	next := 0
	stats, err := mpeg2par.Decode(context.Background(), src,
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(3),
		mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) {
			if f.DisplayIndex != next {
				inOrder = false
			}
			next++
		}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("frames displayed:", stats.Displayed)
	fmt.Println("in display order:", inOrder)
	// Output:
	// frames displayed: 8
	// in display order: true
}

// ExampleScan shows the structural index the scan process builds — the
// foundation of task-parallel decoding.
func ExampleScan() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
	})
	if err != nil {
		panic(err)
	}
	m, err := mpeg2par.Scan(stream.Data)
	if err != nil {
		panic(err)
	}
	fmt.Println("GOPs:", len(m.GOPs))
	fmt.Println("pictures:", m.TotalPictures)
	fmt.Println("slices per picture:", len(m.GOPs[0].Pictures[0].Slices))
	// Output:
	// GOPs: 2
	// pictures: 8
	// slices per picture: 4
}

// ExampleSimulateSlices replays measured slice costs under many simulated
// workers — how the paper's 16-processor results are reproduced on small
// hosts.
func ExampleSimulateSlices() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 13, GOPSize: 13,
	})
	if err != nil {
		panic(err)
	}
	pics, err := mpeg2par.ProfileSlices(stream.Data)
	if err != nil {
		panic(err)
	}
	one := mpeg2par.SimulateSlices(pics, 1, true)
	many := mpeg2par.SimulateSlices(pics, 4, true)
	fmt.Println("4 workers faster than 1:", many.Makespan < one.Makespan)
	// Output:
	// 4 workers faster than 1: true
}

// ExampleServer runs two prioritized streams through the multi-stream
// decode service sharing one worker pool.
func ExampleServer() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
	})
	if err != nil {
		panic(err)
	}
	srv := mpeg2par.NewServer(mpeg2par.ServerConfig{Workers: 2})
	defer srv.Close()

	var wg sync.WaitGroup
	delivered := make([]int, 2)
	for i := range delivered {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Decode(context.Background(), mpeg2par.FromBytes(stream.Data),
				mpeg2par.WithStreamPriority(i),
				mpeg2par.WithStreamSink(func(f *mpeg2par.Frame) { delivered[i]++ }),
			)
			if err != nil {
				panic(err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Println("stream 0 frames:", delivered[0])
	fmt.Println("stream 1 frames:", delivered[1])
	// Output:
	// stream 0 frames: 8
	// stream 1 frames: 8
}
