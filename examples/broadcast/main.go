// Broadcast receiver scenario: an interlaced MPEG-2 broadcast arrives
// over a lossy channel. The receiver decodes in parallel at the slice
// level (low memory, instant channel-change — the paper's argument for
// fine-grained tasks) and conceals the slices the channel corrupted.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mpeg2par"
)

func main() {
	ctx := context.Background()

	// An interlaced broadcast stream (field-coded, like real DTV).
	src := mpeg2par.NewInterlacedSynth(352, 240)
	stream, err := mpeg2par.EncodeFrames(mpeg2par.StreamConfig{
		Width: 352, Height: 240, Pictures: 26, GOPSize: 13,
		BitRate: 5_000_000, Interlaced: true,
	}, func(n int) *mpeg2par.Frame { return src.Frame(n) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast: %d interlaced pictures, %.2f Mb/s\n",
		len(stream.Pictures), stream.BitsPerSecond(30)/1e6)

	// Clean reception first.
	clean, _ := decode(ctx, stream.Data, mpeg2par.FailFast)
	fmt.Printf("clean reception:     avg PSNR %.2f dB\n", avgPSNR(src, clean))

	// Corrupt ~2% of the payload bursts (transmission errors).
	damaged := append([]byte(nil), stream.Data...)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < len(damaged)/2048; i++ {
		pos := 200 + rng.Intn(len(damaged)-260)
		for j := 0; j < 8; j++ {
			damaged[pos+j] = 0
		}
	}

	// Without concealment the decode dies at the first bad slice.
	if _, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(damaged),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(4),
	); err != nil {
		fmt.Printf("without concealment: decode fails (%v)\n", err)
	}

	// With concealment the receiver keeps displaying.
	frames, stats := decode(ctx, damaged, mpeg2par.ConcealSlice)
	fmt.Printf("with concealment:    avg PSNR %.2f dB, %d macroblocks patched, all %d pictures shown\n",
		avgPSNR(src, frames), stats.Errors.ConcealedMBs, stats.Displayed)
}

func decode(ctx context.Context, data []byte, pol mpeg2par.Resilience) ([]*mpeg2par.Frame, *mpeg2par.Stats) {
	var frames []*mpeg2par.Frame
	stats, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(4),
		mpeg2par.WithResilience(pol),
		mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { frames = append(frames, f.Clone()) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	return frames, stats
}

func avgPSNR(src *mpeg2par.InterlacedSynth, frames []*mpeg2par.Frame) float64 {
	var sum float64
	for i, f := range frames {
		sum += mpeg2par.PSNR(src.Frame(i), f)
	}
	return sum / float64(len(frames))
}
