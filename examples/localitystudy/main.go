// Locality study: reproduce the paper's §5.3 methodology on a small
// stream — trace the decoder's memory references, then sweep cache line
// sizes and cache sizes in the multiprocessor cache simulator to find the
// spatial locality and the working set.
package main

import (
	"fmt"
	"log"

	"mpeg2par"
)

func main() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 352, Height: 240, Pictures: 26, GOPSize: 13, BitRate: 5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Record the reference stream of an 8-processor GOP-mode decode.
	events, err := mpeg2par.TraceDecode(stream.Data, mpeg2par.ModeGOP, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d access extents\n\n", len(events))

	// Spatial locality (the paper's Figure 13): with a 1 MB cache the
	// read miss rate should halve as the line size doubles.
	fmt.Println("read miss rate vs line size (1MB fully associative, 8 procs):")
	for _, line := range []int{16, 32, 64, 128, 256} {
		st, err := mpeg2par.SimulateCache(events, mpeg2par.CacheConfig{
			Size: 1 << 20, LineSize: line, Assoc: 0, Procs: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4dB lines: %.5f\n", line, st.ReadMissRate())
	}

	// Temporal locality (Figures 14/15): the working set is the small
	// per-macroblock state, so the miss rate knees at a few tens of KB.
	fmt.Println("\nread miss rate vs cache size (64B lines, 2-way, 8 procs):")
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10, 1 << 20} {
		st, err := mpeg2par.SimulateCache(events, mpeg2par.CacheConfig{
			Size: size, LineSize: 64, Assoc: 2, Procs: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if st.Cold > 0 {
			ratio = float64(st.Capacity) / float64(st.Cold)
		}
		fmt.Printf("  %5dKB: miss rate %.5f   capacity/cold %.2f   sharing %d (true %d)\n",
			size>>10, st.ReadMissRate(), ratio, st.Sharing, st.TrueShr)
	}
	fmt.Println("\nconclusion (as in the paper): excellent spatial locality, a small")
	fmt.Println("working set, and negligible sharing — MPEG decode scales on SMPs.")
}
