// Quickstart: generate an MPEG-2 test stream, decode it with the
// fine-grained parallel decoder, and verify the output matches the
// sequential decoder bit for bit.
package main

import (
	"fmt"
	"log"

	"mpeg2par"
)

func main() {
	// 1. Generate a 352x240 test stream: 26 pictures, 13-picture closed
	//    GOPs, 5 Mb/s — the shape of the paper's test streams.
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width:    352,
		Height:   240,
		Pictures: 26,
		GOPSize:  13,
		BitRate:  5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d pictures into %d bytes (%.2f Mb/s)\n",
		len(stream.Pictures), len(stream.Data), stream.BitsPerSecond(30)/1e6)

	// 2. Decode sequentially — the reference result.
	want, err := mpeg2par.DecodeAll(stream.Data)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Decode with the improved slice-level parallel decoder.
	var got []*mpeg2par.Frame
	stats, err := mpeg2par.DecodeParallel(stream.Data, mpeg2par.Options{
		Mode:    mpeg2par.ModeSliceImproved,
		Workers: 4,
		Sink:    func(f *mpeg2par.Frame) { got = append(got, f.Clone()) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel decode: %.1f pictures/s with %d workers, peak frame memory %.2f MB\n",
		stats.PicturesPerSecond(), stats.Workers, float64(stats.PeakFrameBytes)/(1<<20))

	// 4. The parallel decoders are bit-exact with the sequential one.
	for i := range want {
		if !want[i].Equal(got[i]) {
			log.Fatalf("frame %d differs between sequential and parallel decode", i)
		}
	}
	fmt.Printf("all %d frames bit-exact with the sequential decoder\n", len(want))

	// 5. Quality sanity check against the original synthetic scene.
	src := mpeg2par.NewSynth(352, 240)
	fmt.Printf("first frame PSNR vs source: %.1f dB\n", mpeg2par.PSNR(src.Frame(0), want[0]))
}
