// Quickstart: generate an MPEG-2 test stream, decode it with the
// fine-grained parallel decoder, and verify the output matches the
// sequential decoder bit for bit.
package main

import (
	"context"
	"fmt"
	"log"

	"mpeg2par"
)

func main() {
	ctx := context.Background()

	// 1. Generate a 352x240 test stream: 26 pictures, 13-picture closed
	//    GOPs, 5 Mb/s — the shape of the paper's test streams.
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width:    352,
		Height:   240,
		Pictures: 26,
		GOPSize:  13,
		BitRate:  5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d pictures into %d bytes (%.2f Mb/s)\n",
		len(stream.Pictures), len(stream.Data), stream.BitsPerSecond(30)/1e6)

	// 2. Decode sequentially — the reference result.
	want := decode(ctx, stream.Data,
		mpeg2par.WithMode(mpeg2par.ModeSequential), mpeg2par.WithWorkers(1))

	// 3. Decode with the improved slice-level parallel decoder.
	var got []*mpeg2par.Frame
	stats, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(stream.Data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(4),
		mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { got = append(got, f.Clone()) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel decode: %.1f pictures/s with %d workers, peak frame memory %.2f MB\n",
		stats.PicturesPerSecond(), stats.Workers, float64(stats.PeakFrameBytes)/(1<<20))

	// 4. The parallel decoders are bit-exact with the sequential one.
	for i := range want {
		if !want[i].Equal(got[i]) {
			log.Fatalf("frame %d differs between sequential and parallel decode", i)
		}
	}
	fmt.Printf("all %d frames bit-exact with the sequential decoder\n", len(want))

	// 5. Intra-slice parallelism: slice modes get nothing from a stream
	//    coded with one tall slice per picture (VLD is sequential inside
	//    a slice). A split index breaks that wall: build it once, then
	//    indexed slices are fanned out across the workers as independent
	//    macroblock-row segments (still bit-exact — every segment's
	//    entry state is verified against the recorded one).
	tall, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width:        352,
		Height:       240,
		Pictures:     26,
		GOPSize:      13,
		BitRate:      5_000_000,
		RowsPerSlice: 240 / 16, // all 15 macroblock rows in one slice
	})
	if err != nil {
		log.Fatal(err)
	}
	tallWant := decode(ctx, tall.Data,
		mpeg2par.WithMode(mpeg2par.ModeSequential), mpeg2par.WithWorkers(1))
	idx, err := mpeg2par.BuildIndex(ctx, mpeg2par.FromBytes(tall.Data))
	if err != nil {
		log.Fatal(err)
	}
	var split []*mpeg2par.Frame
	sstats, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(tall.Data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(4),
		mpeg2par.WithIndex(idx),
		mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) { split = append(split, f.Clone()) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := range tallWant {
		if !tallWant[i].Equal(split[i]) {
			log.Fatalf("frame %d differs under the split index", i)
		}
	}
	fmt.Printf("split decode of a one-slice-per-picture stream: %d slices split into %d segments (%d verified), still bit-exact\n",
		sstats.Split.SlicesSplit, sstats.Split.SegmentsRun, sstats.Split.VerifyHits)

	// 6. Quality sanity check against the original synthetic scene.
	src := mpeg2par.NewSynth(352, 240)
	fmt.Printf("first frame PSNR vs source: %.1f dB\n", mpeg2par.PSNR(src.Frame(0), want[0]))
}

func decode(ctx context.Context, data []byte, opts ...mpeg2par.Option) []*mpeg2par.Frame {
	var frames []*mpeg2par.Frame
	opts = append(opts, mpeg2par.WithFrameSink(func(f *mpeg2par.Frame) {
		frames = append(frames, f.Clone())
	}))
	if _, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(data), opts...); err != nil {
		log.Fatal(err)
	}
	return frames
}
