// Scale study: how many processors does real-time decoding need at each
// resolution? This example reproduces the paper's headline question for a
// display rate of 30 pictures/second, using measured task costs replayed
// under 1..16 simulated workers — including the §7.2 distributed-memory
// (DASH-like) variant.
package main

import (
	"fmt"
	"log"

	"mpeg2par"
)

func main() {
	fmt.Println("workers needed for 30 pics/s, by resolution and strategy:")
	for _, res := range []struct{ w, h int }{{176, 120}, {352, 240}, {704, 480}} {
		// Enough GOPs that the coarse-grained decoder has tasks for every
		// worker in the sweep (a 2-GOP clip would cap its speedup at 2).
		stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
			Width: res.w, Height: res.h, Pictures: 104, GOPSize: 13, BitRate: 5_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		gops, err := mpeg2par.ProfileGOPs(stream.Data)
		if err != nil {
			log.Fatal(err)
		}
		pics, err := mpeg2par.ProfileSlices(stream.Data)
		if err != nil {
			log.Fatal(err)
		}
		need := func(rate func(p int) float64) string {
			for p := 1; p <= 16; p++ {
				if rate(p) >= 30 {
					return fmt.Sprintf("%d", p)
				}
			}
			return ">16"
		}
		n := float64(len(stream.Pictures))
		gopNeed := need(func(p int) float64 {
			return n / mpeg2par.SimulateGOP(gops, p).Makespan.Seconds()
		})
		sliceNeed := need(func(p int) float64 {
			return n / mpeg2par.SimulateSlices(pics, p, true).Makespan.Seconds()
		})
		one := n / mpeg2par.SimulateGOP(gops, 1).Makespan.Seconds()
		// A modern core decodes far beyond real time; to recover the
		// paper's 1997 story, also evaluate at the ~150 MHz R4400's
		// speed (roughly 1/200th of this host on this integer code).
		const r4400Slowdown = 200
		need97 := func(rate func(p int) float64) string {
			for p := 1; p <= 16; p++ {
				if rate(p)/r4400Slowdown >= 30 {
					return fmt.Sprintf("%d", p)
				}
			}
			return ">16"
		}
		gop97 := need97(func(p int) float64 {
			return n / mpeg2par.SimulateGOP(gops, p).Makespan.Seconds()
		})
		slice97 := need97(func(p int) float64 {
			return n / mpeg2par.SimulateSlices(pics, p, true).Makespan.Seconds()
		})
		fmt.Printf("  %4dx%-4d: %7.1f pics/s on one worker -> gop needs %s, improved slice needs %s\n",
			res.w, res.h, one, gopNeed, sliceNeed)
		fmt.Printf("             on 1997 hardware (~%dx slower): gop %s, improved slice %s workers\n",
			r4400Slowdown, gop97, slice97)
	}

	// Distributed shared memory (§7.2): the same sweep on a DASH-like
	// machine of 4-processor clusters, where remote misses inflate task
	// costs. Speedups flatten even though the queues stay busy.
	fmt.Println("\nimproved slice on a DASH-like DSM (speedup over one 4-processor cluster):")
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 704, Height: 480, Pictures: 26, GOPSize: 13, BitRate: 5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	pics, err := mpeg2par.ProfileSlices(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mpeg2par.DSMConfig{ClusterSize: 4, RemoteFactor: 0.3}
	base := mpeg2par.SimulateSlicesDSM(pics, 4, true, cfg).Makespan
	for _, p := range []int{8, 16, 32} {
		mk := mpeg2par.SimulateSlicesDSM(pics, p, true, cfg).Makespan
		fmt.Printf("  %2d procs: %.2fx (paper measured 1.8 / 3.4 / 5.2)\n", p, float64(base)/float64(mk))
	}
}
