// Video server scenario: a playback service must pick a decode strategy
// for each stream it serves. This example compares the paper's two
// parallelizations — coarse-grained GOP tasks vs fine-grained slice
// tasks — on the axes the paper evaluates: throughput at a given worker
// count, memory footprint, and random-access (seek) latency.
package main

import (
	"fmt"
	"log"
	"time"

	"mpeg2par"
)

// A small playback server: four cores per stream. (With the paper's 14
// workers, a short clip has fewer GOP tasks than workers and the GOP
// strategy starves — exactly the paper's observation that coarse tasks
// need long streams.)
const workers = 4

func main() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 352, Height: 240, Pictures: 104, GOPSize: 13, BitRate: 5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Profile real task costs once, then replay them in the deterministic
	// simulator at the server's worker count (this host may have fewer
	// cores than the target machine).
	gops, err := mpeg2par.ProfileGOPs(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	pics, err := mpeg2par.ProfileSlices(stream.Data)
	if err != nil {
		log.Fatal(err)
	}

	gopRes := mpeg2par.SimulateGOP(gops, workers)
	simpleRes := mpeg2par.SimulateSlices(pics, workers, false)
	improvedRes := mpeg2par.SimulateSlices(pics, workers, true)

	frameBytes := int64(352*240*3) / 2
	report := func(name string, r mpeg2par.SimResult, peakFrames int) {
		fmt.Printf("%-15s %8.1f pics/s   sync/exec %.2f   memory %5.1f MB\n",
			name,
			float64(len(stream.Pictures))/r.Makespan.Seconds(),
			r.SyncRatio(),
			float64(int64(peakFrames)*frameBytes)/(1<<20))
	}
	fmt.Printf("strategy comparison at %d workers:\n", workers)
	report("gop", gopRes, gopRes.PeakFrames)
	report("slice-simple", simpleRes, simpleRes.PeakFrames)
	report("slice-improved", improvedRes, improvedRes.PeakFrames)

	// Random access: the user seeks into the stream. With GOP tasks a
	// single worker must decode the whole target GOP before the sought
	// picture appears; with slice tasks every worker attacks the first
	// picture at once (§5.1 vs §5.2 of the paper).
	seekGOP := gops[len(gops)/2]
	gopLatency := seekGOP.Cost // one worker, whole GOP

	firstPic := pics[:1] // the I picture every seek target starts from
	sliceLatency := mpeg2par.SimulateSlices(firstPic, workers, true).Makespan

	fmt.Printf("\nseek-to-play latency (first picture on screen):\n")
	fmt.Printf("  gop:            %v (one worker decodes the whole GOP)\n", gopLatency.Round(time.Microsecond))
	fmt.Printf("  slice-improved: %v (%d workers share the first picture)\n", sliceLatency.Round(time.Microsecond), workers)
	fmt.Printf("  -> the slice decoder starts playback %.1fx sooner\n",
		float64(gopLatency)/float64(sliceLatency))

	// Recommendation mirrors the paper's conclusion: continuous playback
	// favors GOP tasks (least synchronization), interactive use favors
	// slice tasks (low memory, instant seeks).
}
