// Video server scenario: a playback service multiplexes many viewers
// onto one shared decode pool. This example drives the multi-stream
// service API through its regimes — an uncontended baseline, then a
// deliberate overload where admission control, per-stream budgets, and
// the graceful-degradation ladder keep every admitted viewer moving
// instead of letting the service collapse.
//
// Run with: go run ./examples/videoserver
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"mpeg2par"
)

const workers = 2

func main() {
	stream, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 24, GOPSize: 4, BitRate: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Regime 1: one viewer on an idle pool — the service must cost
	// nothing over a plain parallel decode: full fidelity, nothing shed.
	srv := mpeg2par.NewServer(mpeg2par.ServerConfig{Workers: workers})
	ss, err := srv.Decode(context.Background(), mpeg2par.FromBytes(stream.Data),
		mpeg2par.WithStreamResilience(mpeg2par.ConcealSlice))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single viewer: %d/%d frames, %d shed, p99 frame latency %v\n",
		ss.Stats.Displayed, len(stream.Pictures), ss.Stats.Shed.Total(), ss.LatencyP99().Round(time.Millisecond))
	srv.Close()

	// Regime 2: a burst of viewers several times over pool capacity, in
	// two service tiers. The monitor watches queue depth and deadline
	// misses and climbs the ladder: shed B pictures, then decode only
	// intra anchors (flooring resilience so damage stops killing
	// streams), then pause the free tier with bounded backoff — and only
	// as a last resort turn new viewers away.
	srv = mpeg2par.NewServer(mpeg2par.ServerConfig{Workers: workers})
	defer srv.Close()

	const viewers = 12
	type viewer struct {
		tier  string
		prio  int
		stats *mpeg2par.StreamStats
		err   error
	}
	vs := make([]viewer, viewers)
	var wg sync.WaitGroup
	for i := range vs {
		v := &vs[i]
		v.tier, v.prio = "free   ", 0
		if i%3 == 0 {
			v.tier, v.prio = "premium", 1
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.stats, v.err = srv.Decode(context.Background(), mpeg2par.FromBytes(stream.Data),
				mpeg2par.WithStreamPriority(v.prio),
				mpeg2par.WithStreamResilience(mpeg2par.ConcealSlice),
				mpeg2par.WithFrameDeadline(50*time.Millisecond),
				mpeg2par.WithStreamMaxInFlight(2),
				// A paced delivery path (e.g. network send) is what makes
				// overload real rather than a race through the bitstream.
				mpeg2par.WithStreamSink(func(f *mpeg2par.Frame) { time.Sleep(500 * time.Microsecond) }),
			)
		}()
	}
	wg.Wait()

	fmt.Printf("\noverload: %d viewers on %d workers\n", viewers, workers)
	for i, v := range vs {
		if v.err != nil {
			fmt.Printf("  viewer %2d %s rejected/failed: %v\n", i, v.tier, v.err)
			continue
		}
		st := v.stats.Stats
		fmt.Printf("  viewer %2d %s %2d/%d frames  shed %2d  misses %2d  paused %d  p99 %6v\n",
			i, v.tier, st.Displayed, st.Pictures, st.Shed.Total()+st.Shed.DegradedPictures,
			v.stats.DeadlineMisses, v.stats.Paused, v.stats.LatencyP99().Round(time.Millisecond))
	}
	m := srv.Metrics()
	fmt.Printf("\nservice: admitted %d  rejected %d  pauses %d  wedged %d  final rung %d\n",
		m.Admitted, m.Rejected, m.Pauses, m.Wedged, m.Rung)
	fmt.Println("\nevery admitted viewer finished: degradation trades fidelity for liveness,")
	fmt.Println("never dropping a stream the service accepted.")
}
