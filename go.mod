module mpeg2par

go 1.22
