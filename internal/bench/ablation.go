package bench

import (
	"fmt"
	"io"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/simsched"
)

// AblationRow compares the synchronization disciplines of the slice
// decoder at one worker count.
type AblationRow struct {
	Workers  int
	Simple   float64 // speedup over 1 worker
	Improved float64
	Max      float64 // slice-level dependency scheduling (no barriers)
}

// AblationSync quantifies what each synchronization refinement buys: the
// paper's simple version (barrier every picture), its improved version
// (barrier after references), and the "maximum concurrency" scheme the
// paper deemed too complex to build (§5.2) — slice-level dependencies
// only.
func (r *Runner) AblationSync(w io.Writer) ([]AblationRow, error) {
	res := r.localityRes()
	pics, err := r.SlicePics(res, 13)
	if err != nil {
		return nil, err
	}
	base := SimSlices(pics, 1, true).Makespan
	var rows []AblationRow
	var out [][]string
	for _, p := range []int{2, 4, 8, r.cfg.MaxWorkers, 2 * r.cfg.MaxWorkers} {
		row := AblationRow{
			Workers:  p,
			Simple:   float64(base) / float64(SimSlices(pics, p, false).Makespan),
			Improved: float64(base) / float64(SimSlices(pics, p, true).Makespan),
			Max:      float64(base) / float64(simsched.SimulateSlicesMax(pics, p, 1).Makespan),
		}
		rows = append(rows, row)
		out = append(out, []string{fmt.Sprintf("%d", p), f2(row.Simple), f2(row.Improved), f2(row.Max)})
	}
	table(w, fmt.Sprintf("Ablation: slice synchronization disciplines (%s, speedup)", res.Name()),
		[]string{"workers", "simple", "improved", "max-concurrency"}, out)
	return rows, nil
}

// AblationDSMRow compares DSM task-placement policies.
type AblationDSMRow struct {
	Workers     int
	Naive       float64 // speedup over the 4-processor cluster, no locality
	LocalQueues float64 // §7.2's per-cluster queues + stealing
}

// AblationDSM quantifies the paper's §7.2 proposal: per-processor task
// queues with GOPs placed round-robin in cluster memories and stealing
// for balance, versus the no-locality dynamic assignment.
func (r *Runner) AblationDSM(w io.Writer) ([]AblationDSMRow, error) {
	res := r.localityRes()
	tasks, err := r.GOPTasks(res, 13)
	if err != nil {
		return nil, err
	}
	cfg := simsched.DSMConfig{ClusterSize: 4, RemoteFactor: 0.3}
	naiveBase := simsched.SimulateGOPDSM(tasks, 4, cfg, 1.0).Makespan
	smartBase := simsched.SimulateGOPDSMQueues(tasks, 4, cfg).Makespan
	var rows []AblationDSMRow
	var out [][]string
	for _, p := range []int{8, 16, 32} {
		row := AblationDSMRow{
			Workers:     p,
			Naive:       float64(naiveBase) / float64(simsched.SimulateGOPDSM(tasks, p, cfg, 1.0).Makespan),
			LocalQueues: float64(smartBase) / float64(simsched.SimulateGOPDSMQueues(tasks, p, cfg).Makespan),
		}
		rows = append(rows, row)
		out = append(out, []string{fmt.Sprintf("%d", p), f2(row.Naive), f2(row.LocalQueues)})
	}
	table(w, fmt.Sprintf("Ablation: DSM GOP placement (%s, speedup over 4 procs)", res.Name()),
		[]string{"procs", "no locality", "local queues + stealing"}, out)
	return rows, nil
}

// AblationGranRow is one slice-granularity measurement.
type AblationGranRow struct {
	SlicesPerRow int
	Slices       int // per picture
	Simple14     float64
	Improved14   float64
}

// AblationGranularity sweeps the task granularity the paper's §4 weighs
// (slices vs macroblocks): splitting each macroblock row into more slices
// moves the simple version's ⌈slices/P⌉ knee out at the cost of per-task
// overhead, approaching macroblock-level scheduling in the limit.
func (r *Runner) AblationGranularity(w io.Writer) ([]AblationGranRow, error) {
	res := r.localityRes()
	var rows []AblationGranRow
	var out [][]string
	p := r.cfg.MaxWorkers
	for _, spr := range []int{1, 2, 4} {
		s, err := encoder.EncodeSequence(encoder.Config{
			Width: res.W, Height: res.H,
			Pictures: r.cfg.ProfileGOPs * 13, GOPSize: 13,
			BitRate: r.cfg.BitRate(res), FrameRate: 30,
			RepeatSequenceHeader: true, SlicesPerRow: spr,
		}, frame.NewSynth(res.W, res.H))
		if err != nil {
			return nil, err
		}
		pics, err := profileSlicePics(s.Data, r.cfg.StreamPictures)
		if err != nil {
			return nil, err
		}
		base := SimSlices(pics, 1, false).Makespan
		row := AblationGranRow{
			SlicesPerRow: spr,
			Slices:       len(pics[0].SliceCosts),
			Simple14:     float64(base) / float64(SimSlices(pics, p, false).Makespan),
			Improved14:   float64(base) / float64(SimSlices(pics, p, true).Makespan),
		}
		rows = append(rows, row)
		out = append(out, []string{fmt.Sprintf("%d", spr), fmt.Sprintf("%d", row.Slices),
			f2(row.Simple14), f2(row.Improved14)})
	}
	table(w, fmt.Sprintf("Ablation: slice granularity (%s, speedup at %d workers)", res.Name(), p),
		[]string{"slices/row", "slices/picture", "simple", "improved"}, out)
	return rows, nil
}
