package bench

import (
	"io"
	"testing"
)

func TestAblationSyncOrdering(t *testing.T) {
	rows, err := sharedRunner.AblationSync(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !(row.Simple <= row.Improved+0.01 && row.Improved <= row.Max+0.01) {
			t.Errorf("%d workers: ordering broken: simple %.2f improved %.2f max %.2f",
				row.Workers, row.Simple, row.Improved, row.Max)
		}
	}
	// At twice the paper's worker count, max-concurrency must scale far
	// past the improved version (the barriers are the remaining limiter).
	// The margin is deliberately loose: the simulator replays *profiled*
	// slice costs, and faster pixel kernels flatten the per-slice cost
	// spread (especially under the race detector's uneven instrumentation
	// overhead), which narrows improved's load-imbalance penalty without
	// touching the barrier gap this test is about.
	last := rows[len(rows)-1]
	if last.Max < last.Improved*1.25 {
		t.Errorf("at %d workers max-concurrency %.2f not clearly above improved %.2f",
			last.Workers, last.Max, last.Improved)
	}
}

func TestAblationDSMLocalityWins(t *testing.T) {
	rows, err := sharedRunner.AblationDSM(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.LocalQueues <= row.Naive {
			t.Errorf("%d procs: local queues %.2f not above naive %.2f",
				row.Workers, row.LocalQueues, row.Naive)
		}
	}
}

func TestAblationGranularity(t *testing.T) {
	rows, err := sharedRunner.AblationGranularity(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Finer slices must improve the simple version's 14-worker speedup
	// (the knee moves out as slices/picture grows past the worker count).
	if !(rows[0].Simple14 < rows[1].Simple14 && rows[1].Simple14 < rows[2].Simple14+0.3) {
		t.Errorf("simple speedup not improving with granularity: %.2f %.2f %.2f",
			rows[0].Simple14, rows[1].Simple14, rows[2].Simple14)
	}
	for _, r := range rows {
		if r.Improved14 < r.Simple14*0.95 {
			t.Errorf("spr=%d: improved %.2f below simple %.2f", r.SlicesPerRow, r.Improved14, r.Simple14)
		}
	}
}
