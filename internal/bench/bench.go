// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§5). Each experiment
// returns structured results and renders the same rows/series the paper
// reports; cmd/mpeg2bench and the repository-level benchmarks are thin
// wrappers around this package.
//
// Scale: the paper's streams are 1120 pictures long. Encoding and
// profiling that much video for every configuration is wasteful, so the
// runner profiles real per-task costs on a shorter stream (whole GOPs of
// the same shape) and tiles the measured costs out to the paper's stream
// length before simulating — GOP contents are statistically uniform, so
// tiling preserves the cost distribution. Wall-clock decode measurements
// (scan rate, pictures/second at one worker) always come from real runs.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/simsched"
)

// Resolution is one of the paper's four test picture sizes.
type Resolution struct {
	W, H int
}

// Name renders "352x240".
func (r Resolution) Name() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Slices returns the slices per picture (one per macroblock row).
func (r Resolution) Slices() int { return (r.H + 15) / 16 }

// FrameBytes returns the decoded 4:2:0 picture size.
func (r Resolution) FrameBytes() int64 {
	cw, ch := int64(frame.Coded(r.W)), int64(frame.Coded(r.H))
	return cw*ch + cw*ch/2
}

// The paper's test resolutions (Table 1).
var (
	Res176  = Resolution{176, 120}
	Res352  = Resolution{352, 240}
	Res704  = Resolution{704, 480}
	Res1408 = Resolution{1408, 960}
)

// GOPSizes are the paper's pictures-per-GOP values.
var GOPSizes = []int{4, 13, 16, 31}

// Config scales the experiment suite.
type Config struct {
	// Resolutions to sweep (default: the paper's four).
	Resolutions []Resolution
	// ProfileGOPs is how many GOPs to actually encode+decode per
	// configuration before tiling (default 2).
	ProfileGOPs int
	// StreamPictures is the stream length the simulations are scaled to
	// (default 1120, the paper's).
	StreamPictures int
	// MaxWorkers for worker sweeps (default 14, the paper's).
	MaxWorkers int
	// BitRate passed to the encoder (default: 5 Mb/s, 7 Mb/s for the
	// largest size, like the paper).
	BitRate func(Resolution) int
}

func (c Config) withDefaults() Config {
	if len(c.Resolutions) == 0 {
		c.Resolutions = []Resolution{Res176, Res352, Res704, Res1408}
	}
	if c.ProfileGOPs == 0 {
		c.ProfileGOPs = 2
	}
	if c.StreamPictures == 0 {
		c.StreamPictures = 1120
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 14
	}
	if c.BitRate == nil {
		c.BitRate = func(r Resolution) int {
			if r.W >= 1408 {
				return 7_000_000
			}
			return 5_000_000
		}
	}
	return c
}

// SmallConfig is a fast configuration for tests: the three smaller
// resolutions, short profile streams (the simulations are still scaled to
// the paper's 1120-picture stream length by tiling).
func SmallConfig() Config {
	return Config{
		Resolutions: []Resolution{Res176, Res352, Res704},
		ProfileGOPs: 2,
		MaxWorkers:  14,
	}
}

// localityRes picks the single resolution the locality study runs at
// (the paper presents one configuration): 352×240 when available.
func (r *Runner) localityRes() Resolution {
	for _, res := range r.cfg.Resolutions {
		if res == Res352 {
			return res
		}
	}
	return r.cfg.Resolutions[0]
}

// Runner caches generated streams and profiles across experiments.
type Runner struct {
	cfg Config

	mu       sync.Mutex
	streams  map[streamKey]*encoder.Result
	maps     map[streamKey]*core.StreamMap
	gopProf  map[streamKey][]simsched.GOPTask
	slcProf  map[streamKey][]simsched.SimPicture
	baseline map[streamKey]time.Duration // 1-worker decode time of profile stream
	traces   map[traceKey][]memtrace.Event
}

type streamKey struct {
	res Resolution
	gop int
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:      cfg.withDefaults(),
		streams:  make(map[streamKey]*encoder.Result),
		maps:     make(map[streamKey]*core.StreamMap),
		gopProf:  make(map[streamKey][]simsched.GOPTask),
		slcProf:  make(map[streamKey][]simsched.SimPicture),
		baseline: make(map[streamKey]time.Duration),
	}
}

// Stream returns (generating on first use) the profile stream for a
// resolution and GOP size.
func (r *Runner) Stream(res Resolution, gop int) (*encoder.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.streamLocked(res, gop)
}

func (r *Runner) streamLocked(res Resolution, gop int) (*encoder.Result, error) {
	key := streamKey{res, gop}
	if s, ok := r.streams[key]; ok {
		return s, nil
	}
	cfg := encoder.Config{
		Width:                res.W,
		Height:               res.H,
		Pictures:             r.cfg.ProfileGOPs * gop,
		GOPSize:              gop,
		BitRate:              r.cfg.BitRate(res),
		FrameRate:            30,
		RepeatSequenceHeader: true,
	}
	s, err := encoder.EncodeSequence(cfg, frame.NewSynth(res.W, res.H))
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s gop=%d: %w", res.Name(), gop, err)
	}
	r.streams[key] = s
	return s, nil
}

// Map returns the scan result for a stream.
func (r *Runner) Map(res Resolution, gop int) (*core.StreamMap, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := streamKey{res, gop}
	if m, ok := r.maps[key]; ok {
		return m, nil
	}
	s, err := r.streamLocked(res, gop)
	if err != nil {
		return nil, err
	}
	m, err := core.Scan(s.Data)
	if err != nil {
		return nil, err
	}
	r.maps[key] = m
	return m, nil
}

// GOPTasks returns measured GOP task costs tiled to the configured stream
// length.
func (r *Runner) GOPTasks(res Resolution, gop int) ([]simsched.GOPTask, error) {
	r.mu.Lock()
	key := streamKey{res, gop}
	if t, ok := r.gopProf[key]; ok {
		r.mu.Unlock()
		return t, nil
	}
	s, err := r.streamLocked(res, gop)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Profile twice and keep the per-task minimum: the first pass warms
	// code and data paths, and the minimum suppresses scheduler noise.
	// Profiling pins stream-order (FIFO) packing so the cold-cache cost of
	// each picture's first task lands on the same slice in every run —
	// the simulator assumes stream-order measurement.
	st, err := core.Decode(s.Data, core.Options{Mode: core.ModeGOP, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	st2, err := core.Decode(s.Data, core.Options{Mode: core.ModeGOP, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	m, err := r.Map(res, gop)
	if err != nil {
		return nil, err
	}
	measured := make([]simsched.GOPTask, len(st.GOPCosts))
	for i, c := range st.GOPCosts {
		cost := c.Cost
		if c2 := st2.GOPCosts[i].Cost; c2 < cost {
			cost = c2
		}
		measured[i] = simsched.GOPTask{Cost: cost, Pictures: len(m.GOPs[i].Pictures)}
	}
	tiled := tileGOPs(measured, (r.cfg.StreamPictures+gop-1)/gop)
	r.mu.Lock()
	r.gopProf[key] = tiled
	r.baseline[key] = st.Wall
	r.mu.Unlock()
	return tiled, nil
}

// SlicePics returns measured per-slice costs tiled to the configured
// stream length.
func (r *Runner) SlicePics(res Resolution, gop int) ([]simsched.SimPicture, error) {
	r.mu.Lock()
	key := streamKey{res, gop}
	if p, ok := r.slcProf[key]; ok {
		r.mu.Unlock()
		return p, nil
	}
	s, err := r.streamLocked(res, gop)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	tiled, err := profileSlicePics(s.Data, r.cfg.StreamPictures)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.slcProf[key] = tiled
	r.mu.Unlock()
	return tiled, nil
}

// profileSlicePics measures per-slice costs (two passes, per-task
// minimum: the first warms code and data paths) and tiles them out to the
// requested stream length.
func profileSlicePics(data []byte, pictures int) ([]simsched.SimPicture, error) {
	st, err := core.Decode(data, core.Options{Mode: core.ModeSliceImproved, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	st2, err := core.Decode(data, core.Options{Mode: core.ModeSliceImproved, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	measured := make([]simsched.SimPicture, len(st.SliceProf))
	for i, p := range st.SliceProf {
		costs := append([]time.Duration(nil), p.SliceCosts...)
		for j, c2 := range st2.SliceProf[i].SliceCosts {
			if c2 < costs[j] {
				costs[j] = c2
			}
		}
		measured[i] = simsched.SimPicture{Ref: p.Ref, Intra: p.Type == 'I', DisplayIdx: p.DisplayIdx, SliceCosts: costs}
	}
	return tileSlices(measured, pictures), nil
}

// tileGOPs repeats measured GOP costs out to n tasks.
func tileGOPs(measured []simsched.GOPTask, n int) []simsched.GOPTask {
	out := make([]simsched.GOPTask, n)
	for i := range out {
		out[i] = measured[i%len(measured)]
	}
	return out
}

// tileSlices repeats the measured per-picture profile block out to the
// requested stream length, shifting display indices so every copy of the
// block displays after the previous one.
func tileSlices(measured []simsched.SimPicture, pictures int) []simsched.SimPicture {
	block := len(measured)
	span := 0
	for _, p := range measured {
		if p.DisplayIdx+1 > span {
			span = p.DisplayIdx + 1
		}
	}
	out := make([]simsched.SimPicture, pictures)
	for k := range out {
		src := measured[k%block]
		p := src
		p.DisplayIdx = (k/block)*span + src.DisplayIdx
		out[k] = p
	}
	return out
}

// table writes an aligned text table.
func table(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(header)
	for _, row := range rows {
		printRow(row)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Thin aliases keeping experiment code terse.
var (
	Scan      = core.Scan
	SimGOP    = simsched.SimulateGOP
	SimSlices = simsched.SimulateSlices
)
