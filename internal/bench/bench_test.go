package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"mpeg2par/internal/simsched"
)

// sharedRunner caches streams/profiles across the test file.
var sharedRunner = NewRunner(SmallConfig())

func TestTable1(t *testing.T) {
	var sb strings.Builder
	rows, err := sharedRunner.Table1(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sharedRunner.cfg.Resolutions) {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Pixels != 176*120 || rows[0].Slices != 8 {
		t.Fatalf("176x120 row wrong: %+v", rows[0])
	}
	if rows[1].Slices != 15 {
		t.Fatalf("352x240 slices %d, want 15", rows[1].Slices)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("no output")
	}
}

func TestTable2ScanFasterThanRealTime(t *testing.T) {
	rows, err := sharedRunner.Table2(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// The paper's point: the scan is far faster than the 30 pics/s
		// display rate, so a dedicated scan process keeps ahead.
		if row.ScanPicsPerS < 100 {
			t.Errorf("%s: scan rate %.0f pics/s implausibly slow", row.Res.Name(), row.ScanPicsPerS)
		}
	}
}

func TestTable34Ordering(t *testing.T) {
	rows, err := sharedRunner.Table34(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// Table 4's shape: the simple slice version is clearly slowest;
		// GOP and improved slice are close (the paper has GOP ahead by
		// 10-30% thanks to 1997-era task-management overheads in its
		// slice implementation; our slice engine's per-task overhead is
		// ~1%, so the two come out within a ±25% band — see
		// EXPERIMENTS.md).
		if !(row.GOP >= row.Improved*0.75 && row.Improved >= row.Simple) {
			t.Errorf("%s: ordering broken: gop %.1f improved %.1f simple %.1f",
				row.Res.Name(), row.GOP, row.Improved, row.Simple)
		}
		if row.Simple >= row.Improved*0.97 {
			t.Errorf("%s: simple (%.1f) not clearly below improved (%.1f)",
				row.Res.Name(), row.Simple, row.Improved)
		}
		// Smaller pictures decode faster.
		if row.GOP <= 0 {
			t.Errorf("%s: zero throughput", row.Res.Name())
		}
	}
	if rows[0].GOP <= rows[1].GOP {
		t.Errorf("176x120 (%.1f pics/s) should beat 352x240 (%.1f)", rows[0].GOP, rows[1].GOP)
	}
}

func TestFig5NearLinear(t *testing.T) {
	series, err := sharedRunner.Fig5(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(sharedRunner.cfg.Resolutions)*len(GOPSizes) {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Speedup[0] < 0.99 || s.Speedup[0] > 1.01 {
			t.Errorf("%s: speedup(1) = %.2f", s.Label, s.Speedup[0])
		}
		// Near-linear at 8 workers (tolerate task-granularity tails).
		i8 := 7
		if s.Speedup[i8] < 5.5 {
			t.Errorf("%s: speedup(8) = %.2f, want near-linear", s.Label, s.Speedup[i8])
		}
		// Monotone non-decreasing within rounding.
		for i := 1; i < len(s.Speedup); i++ {
			if s.Speedup[i] < s.Speedup[i-1]*0.98 {
				t.Errorf("%s: speedup drops at %d workers", s.Label, s.Workers[i])
			}
		}
	}
}

func TestFig6ImbalanceGrowsWithGOPSize(t *testing.T) {
	rows, err := sharedRunner.Fig6(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// For each resolution, relative imbalance with GOP=31 (few, large
	// tasks) must exceed GOP=4 (many small tasks).
	byRes := map[string]map[int]Fig6Row{}
	for _, row := range rows {
		if byRes[row.Res.Name()] == nil {
			byRes[row.Res.Name()] = map[int]Fig6Row{}
		}
		byRes[row.Res.Name()][row.GOP] = row
	}
	for name, m := range byRes {
		rel := func(r Fig6Row) float64 { return float64(r.Max-r.Min) / float64(r.Avg) }
		if rel(m[31]) <= rel(m[4]) {
			t.Errorf("%s: imbalance gop31 %.3f <= gop4 %.3f", name, rel(m[31]), rel(m[4]))
		}
	}
}

func TestFig7StallShare(t *testing.T) {
	rows, err := sharedRunner.Fig7(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// The paper measured 10-30% of time in memory stalls; our model
		// should land in a plausible band (loose: 0-60%).
		if row.Ratio < 1.0 || row.Ratio > 1.6 {
			t.Errorf("%s/%d: actual/ideal %.2f out of band", row.Res.Name(), row.Workers, row.Ratio)
		}
	}
}

func TestFig8MemoryGrowth(t *testing.T) {
	rows, err := sharedRunner.Fig8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	get := func(resName string, gop, workers int) Fig8Row {
		for _, row := range rows {
			if row.Res.Name() == resName && row.GOP == gop && row.Workers == workers {
				return row
			}
		}
		t.Fatalf("missing row %s/%d/%d", resName, gop, workers)
		return Fig8Row{}
	}
	// Growth with workers.
	if a, b := get("352x240", 13, 1), get("352x240", 13, 14); b.PeakFrames < 2*a.PeakFrames {
		t.Errorf("peak frames %d (14w) vs %d (1w): growth with workers missing", b.PeakFrames, a.PeakFrames)
	}
	// Growth with GOP size.
	if a, b := get("352x240", 4, 14), get("352x240", 31, 14); b.PeakFrames < 2*a.PeakFrames {
		t.Errorf("peak frames %d (gop31) vs %d (gop4): growth with GOP size missing", b.PeakFrames, a.PeakFrames)
	}
}

func TestFig9CasesOrdered(t *testing.T) {
	cases, err := sharedRunner.Fig9(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("%d cases", len(cases))
	}
	// The big-GOP many-worker case needs the most memory.
	if !(cases[2].Peak > cases[0].Peak) {
		t.Errorf("case peaks not ordered: %d vs %d", cases[2].Peak, cases[0].Peak)
	}
	for _, c := range cases {
		if len(c.Series) == 0 {
			t.Errorf("%s: empty series", c.Label)
		}
	}
}

func TestFig11KneesAndImprovement(t *testing.T) {
	simple, improved, err := sharedRunner.Fig11(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(series []SpeedupSeries, prefix string) SpeedupSeries {
		for _, s := range series {
			if strings.HasPrefix(s.Label, prefix) {
				return s
			}
		}
		t.Fatalf("%s series missing", prefix)
		return SpeedupSeries{}
	}
	// 176x120 has 8 slices: from 8 workers up every picture is one issue
	// round, so the simple version's speedup is *exactly* flat — the
	// paper's knee in its purest, measurement-noise-free form.
	s176 := pick(simple, "176x120")
	if s176.Speedup[13] != s176.Speedup[7] {
		t.Errorf("176x120 simple should plateau exactly: speedup(8)=%.3f speedup(14)=%.3f",
			s176.Speedup[7], s176.Speedup[13])
	}
	// The improved version keeps gaining past the knee.
	i176 := pick(improved, "176x120")
	if i176.Speedup[13] <= s176.Speedup[13]*1.15 {
		t.Errorf("176x120: improved %.2f not clearly above simple %.2f at 14 workers",
			i176.Speedup[13], s176.Speedup[13])
	}
	s352, i352 := pick(simple, "352x240"), pick(improved, "352x240")
	if i352.Speedup[13] <= s352.Speedup[13]*1.05 {
		t.Errorf("352x240: improved %.2f not above simple %.2f at 14 workers",
			i352.Speedup[13], s352.Speedup[13])
	}
	// 352x240 (15 slices) stays in two issue rounds from 8 to 14 workers:
	// only slice-cost variance gives the simple version anything. The
	// exact uniform-cost stair-step is asserted in internal/simsched.
	if gain := s352.Speedup[13] / s352.Speedup[7]; gain > 1.4 {
		t.Errorf("352x240 simple gained %.2fx from 8\u219214 workers; expected near-plateau", gain)
	}
}

func TestFig12SyncRatio(t *testing.T) {
	series, err := sharedRunner.Fig12(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(series); i += 2 {
		simple, improved := series[i], series[i+1]
		// At 14 workers the improved variant must wait less.
		if improved.Ratio[13] >= simple.Ratio[13] {
			t.Errorf("%s: improved ratio %.2f >= simple %.2f",
				improved.Label, improved.Ratio[13], simple.Ratio[13])
		}
		// Sync ratio generally grows with workers for the simple variant.
		if simple.Ratio[13] <= simple.Ratio[1] {
			t.Errorf("%s: simple sync ratio did not grow with workers", simple.Label)
		}
	}
}

func TestFig13SpatialLocality(t *testing.T) {
	rows, err := sharedRunner.Fig13(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Per resolution: miss rate must fall near-halving with each line
	// doubling (paper: "the miss rate halves whenever the line size
	// doubles").
	byRes := map[string][]Fig13Row{}
	for _, row := range rows {
		byRes[row.Res.Name()] = append(byRes[row.Res.Name()], row)
	}
	for name, rs := range byRes {
		for i := 1; i < len(rs); i++ {
			ratio := rs[i-1].MissRate / rs[i].MissRate
			if ratio < 1.5 || ratio > 2.6 {
				t.Errorf("%s: line %d→%d miss ratio %.2f, want ~2",
					name, rs[i-1].LineSize, rs[i].LineSize, ratio)
			}
		}
	}
}

func TestFig14WorkingSetSmall(t *testing.T) {
	rows, err := sharedRunner.Fig14(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// With associativity, the miss rate at 32KB should be close to the
	// 1MB miss rate (the working set fits), while 4KB should be clearly
	// worse.
	pick := func(mode, res string, assoc, size int) (Fig14Row, bool) {
		for _, row := range rows {
			if row.Mode == mode && row.Res.Name() == res && row.Assoc == assoc && row.Size == size {
				return row, true
			}
		}
		return Fig14Row{}, false
	}
	for _, mode := range []string{"gop", "slice"} {
		small, ok1 := pick(mode, "352x240", 0, 4<<10)
		mid, ok2 := pick(mode, "352x240", 0, 32<<10)
		big, ok3 := pick(mode, "352x240", 2, 32<<10)
		direct, ok4 := pick(mode, "352x240", 1, 32<<10)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			t.Fatalf("%s: rows missing", mode)
		}
		// The dramatic drop by 16-32K (the paper's working-set knee).
		if small.MissRate < mid.MissRate*2 {
			t.Errorf("%s: 4KB miss rate %.4f not clearly above 32KB %.4f", mode, small.MissRate, mid.MissRate)
		}
		// "As long as the caches have some associativity": 2-way at 32K is
		// at least as good as direct-mapped.
		if big.MissRate > direct.MissRate*1.05 {
			t.Errorf("%s: 2-way 32K (%.4f) worse than direct-mapped (%.4f)", mode, big.MissRate, direct.MissRate)
		}
	}
}

func TestFig15CapacityVsCold(t *testing.T) {
	rows, err := sharedRunner.Fig15(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity/cold falls with cache size and is small once the cache
	// covers the reference working set (the 1MB point, like the paper's
	// Challenge L2).
	byMode := map[string]map[int]float64{}
	for _, row := range rows {
		if byMode[row.Mode] == nil {
			byMode[row.Mode] = map[int]float64{}
		}
		byMode[row.Mode][row.Size] = row.Ratio
	}
	for mode, m := range byMode {
		if m[1<<20] > 0.5 {
			t.Errorf("%s: capacity/cold %.2f at 1MB should be small", mode, m[1<<20])
		}
		if m[4<<10] <= m[1<<20] {
			t.Errorf("%s: ratio should fall with cache size (4K %.2f vs 1M %.2f)", mode, m[4<<10], m[1<<20])
		}
	}
}

func TestDashShape(t *testing.T) {
	rows, err := sharedRunner.Dash(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		// Within 40% of the paper's numbers and preserving order.
		lo, hi := row.PaperReference*0.6, row.PaperReference*1.4
		if row.SpeedupOver4 < lo || row.SpeedupOver4 > hi {
			t.Errorf("%d procs: model %.2f vs paper %.2f (band %.2f-%.2f)",
				row.Workers, row.SpeedupOver4, row.PaperReference, lo, hi)
		}
	}
	if !(rows[0].SpeedupOver4 < rows[1].SpeedupOver4 && rows[1].SpeedupOver4 < rows[2].SpeedupOver4) {
		t.Error("DASH speedups not increasing")
	}
}

func TestTiling(t *testing.T) {
	measured := []simsched.SimPicture{
		{Ref: true, DisplayIdx: 0, SliceCosts: []time.Duration{1, 2}},
		{Ref: false, DisplayIdx: 1, SliceCosts: []time.Duration{3}},
	}
	tiled := tileSlices(measured, 5)
	if len(tiled) != 5 {
		t.Fatalf("len %d", len(tiled))
	}
	wantDisp := []int{0, 1, 2, 3, 4}
	for i, p := range tiled {
		if p.DisplayIdx != wantDisp[i] {
			t.Fatalf("tile %d display %d, want %d", i, p.DisplayIdx, wantDisp[i])
		}
	}
	if !tiled[2].Ref || tiled[3].Ref {
		t.Fatal("tiled kinds wrong")
	}

	g := tileGOPs([]simsched.GOPTask{{Cost: 5, Pictures: 4}}, 3)
	if len(g) != 3 || g[2].Cost != 5 {
		t.Fatal("gop tiling wrong")
	}
}

func TestRunnerDispatch(t *testing.T) {
	if err := sharedRunner.Run("nope", io.Discard); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if err := sharedRunner.Run("table1", io.Discard); err != nil {
		t.Fatal(err)
	}
	names := Names()
	if len(names) != len(Experiments) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Experiments))
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := sharedRunner.RunJSON("table2", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ScanPicsPerS") {
		t.Fatalf("JSON output missing fields: %s", sb.String())
	}
	if err := sharedRunner.RunJSON("nope", io.Discard); err == nil {
		t.Fatal("unknown id must fail")
	}
	// Every table-mode experiment id has a JSON counterpart.
	for id := range Experiments {
		if _, ok := ResultsJSON[id]; !ok {
			t.Errorf("experiment %s missing from ResultsJSON", id)
		}
	}
}
