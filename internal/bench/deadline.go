package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/sched"
	"mpeg2par/internal/server"
)

// The deadline study: the same overloaded fleet, once under PR 8's
// weighted-fair dispatch with slack actions frozen (the baseline arm)
// and once under EDF with the slack predictor live (plan-time shedding
// of already-doomed frames, split assist for deadline-tight indexed
// ones). The claim under test is the tentpole's: at the heaviest load
// the EDF arm's deadline-miss rate is at least half cut — not because
// EDF conjures capacity, but because shedding a frame the cost model
// already knows will miss is cheaper than decoding it late, and the
// freed time keeps the survivors on budget. Surviving frames must stay
// bit-exact against a sequential oracle: the study decodes every frame
// checksum and compares streams that shed nothing.

// DeadlineConfig shapes the study. The zero value is usable.
type DeadlineConfig struct {
	Workers int   // pool size (default 4)
	Loads   []int // concurrent-stream counts, ascending (default 16, 32, 64)

	// Per-stream synthetic source (defaults 160x128, 32 pictures, GOP 4
	// — IBBP with the encoder's default M=3, so shedding has B pictures
	// to take).
	Width, Height, Pictures, GOPSize int

	// Deadline is the per-frame budget. Zero derives one from the
	// calibration decode: 8x the measured per-picture cost — tight
	// enough that the heaviest load misses under fair dispatch, loose
	// enough that the lightest mostly holds, on any host speed.
	Deadline    time.Duration
	MaxInFlight int // scan-ahead bound per stream (default 2)

	// Overcommit sizes the paced arrival rate: streams are paced so that
	// at the heaviest load their aggregate demand is Overcommit x the
	// measured decode capacity (default 1.4 — a sustained overload no
	// amount of scheduling can serve in full, which is exactly when
	// shedding doomed frames is supposed to pay). Lighter loads scale
	// down proportionally. Pacing makes the study a steady-state
	// real-time workload rather than a batch drain where every early
	// frame is doomed in both arms.
	Overcommit float64

	// Repeats runs every cell this many times and keeps the
	// median-miss-rate repeat (default 3). A time-sliced host makes any
	// single overload run noisy; the median is the honest middle, not
	// the luckiest draw.
	Repeats int

	// RequireImprovement, when > 0, fails the study unless the
	// fair/EDF miss-rate ratio at the heaviest load reaches it (the
	// recorded BENCH run asserts 2.0; the CI smoke passes 0).
	RequireImprovement float64
}

func (c DeadlineConfig) withDefaults() DeadlineConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if len(c.Loads) == 0 {
		c.Loads = []int{16, 32, 64}
	}
	if c.Width <= 0 {
		c.Width = 160
	}
	if c.Height <= 0 {
		c.Height = 128
	}
	if c.Pictures <= 0 {
		c.Pictures = 32
	}
	if c.GOPSize <= 0 {
		c.GOPSize = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.Overcommit <= 0 {
		c.Overcommit = 2.0
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// DeadlineCell is one (load, dispatch arm) measurement.
type DeadlineCell struct {
	Streams  int    `json:"streams"`
	Dispatch string `json:"dispatch"` // "fair" (slack frozen) or "edf"

	WallMS     float64 `json:"wall_ms"`
	Frames     int     `json:"frames"` // fed = streams x pictures
	Misses     int64   `json:"deadline_misses"`
	MissRate   float64 `json:"miss_rate"`
	SlackSheds int64   `json:"slack_sheds"`
	Assists    int64   `json:"assists"`
	ShedB      int     `json:"shed_b_pictures"`
	ShedRef    int     `json:"shed_ref_pictures"`
	MaxRung    int     `json:"max_rung"`
	P50MS      float64 `json:"latency_p50_ms"`
	P99MS      float64 `json:"latency_p99_ms"`

	// OracleStreams counts streams that shed nothing and were verified
	// frame-for-frame bit-exact against the sequential oracle.
	OracleStreams int `json:"oracle_streams"`
}

// DeadlinePoint is the whole study, recorded under PerfRun.Deadline.
type DeadlinePoint struct {
	Workers    int            `json:"workers"`
	DeadlineMS float64        `json:"deadline_ms"`
	PerPicMS   float64        `json:"per_pic_cost_ms"` // calibration measurement
	PicRate    float64        `json:"pic_rate"`        // paced per-stream pics/s
	Cells      []DeadlineCell `json:"cells"`

	// MissImprovement is fair miss rate / EDF miss rate at the heaviest
	// load (+Inf rendered as a large number when EDF misses nothing).
	MissImprovement float64 `json:"miss_improvement"`

	Note string `json:"note,omitempty"`
}

// frameHash folds the valid bytes of one frame (strides excluded, like
// frame.Equal) into a 64-bit FNV-1a checksum.
func frameHash(f *frame.Frame) uint64 {
	h := fnv.New64a()
	plane := func(p []uint8, stride, w, rows int) {
		for y := 0; y < rows; y++ {
			h.Write(p[y*stride : y*stride+w])
		}
	}
	plane(f.Y, f.YStride, f.CodedW, f.CodedH)
	plane(f.Cb, f.CStride, f.CodedW/2, f.CodedH/2)
	plane(f.Cr, f.CStride, f.CodedW/2, f.CodedH/2)
	return h.Sum64()
}

// DeadlineStudy runs the fair-vs-EDF miss-rate comparison.
func DeadlineStudy(cfg DeadlineConfig) (*DeadlinePoint, error) {
	cfg = cfg.withDefaults()
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width: cfg.Width, Height: cfg.Height, Pictures: cfg.Pictures,
		GOPSize: cfg.GOPSize, RepeatSequenceHeader: true,
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: deadline stream: %w", err)
	}

	// Sequential oracle: per-frame checksums every surviving stream must
	// reproduce, and the per-picture cost the auto-deadline derives from.
	var oracle []uint64
	t0 := time.Now()
	if _, err := core.Decode(enc.Data, core.Options{
		Mode: core.ModeGOP, Workers: 1, Resilience: core.ConcealSlice,
		Sink: func(f *frame.Frame) { oracle = append(oracle, frameHash(f)) },
	}); err != nil {
		return nil, fmt.Errorf("bench: deadline oracle: %w", err)
	}
	perPic := time.Since(t0) / time.Duration(cfg.Pictures)
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 8 * perPic
		if deadline < 5*time.Millisecond {
			deadline = 5 * time.Millisecond
		}
	}

	// Paced arrivals: at the heaviest load the fleet demands Overcommit x
	// the host's measured capacity. Workers beyond GOMAXPROCS time-slice
	// rather than add capacity, so the effective pool is the smaller of
	// the two.
	effWorkers := cfg.Workers
	if p := runtime.GOMAXPROCS(0); p < effWorkers {
		effWorkers = p
	}
	capacity := float64(effWorkers) / perPic.Seconds() // pics/s
	maxLoad := cfg.Loads[len(cfg.Loads)-1]
	rate := cfg.Overcommit * capacity / float64(maxLoad)

	pt := &DeadlinePoint{
		Workers:    cfg.Workers,
		DeadlineMS: ms(deadline),
		PerPicMS:   ms(perPic),
		PicRate:    rate,
	}
	if runtime.GOMAXPROCS(0) == 1 {
		pt.Note = "GOMAXPROCS=1: workers time-slice one CPU; the EDF arm's gains come from slack shedding reducing total work, not from parallel speedup"
	}

	arms := []struct {
		name    string
		policy  server.DispatchPolicy
		noSlack bool
	}{
		{"fair", server.DispatchFair, true},
		{"edf", server.DispatchEDF, false},
	}
	for _, load := range cfg.Loads {
		for _, arm := range arms {
			reps := make([]*DeadlineCell, 0, cfg.Repeats)
			for r := 0; r < cfg.Repeats; r++ {
				// Settle between runs: a cell must not pay the previous
				// cell's garbage.
				runtime.GC()
				cell, err := deadlineCell(cfg, enc.Data, oracle, deadline, rate, load, arm.policy, arm.noSlack)
				if err != nil {
					return nil, fmt.Errorf("bench: deadline %s x%d: %w", arm.name, load, err)
				}
				reps = append(reps, cell)
			}
			sort.Slice(reps, func(i, j int) bool { return reps[i].MissRate < reps[j].MissRate })
			cell := reps[len(reps)/2]
			cell.Dispatch = arm.name
			pt.Cells = append(pt.Cells, *cell)
		}
	}

	// The headline ratio, at the heaviest load.
	n := len(pt.Cells)
	fair, edf := pt.Cells[n-2], pt.Cells[n-1]
	switch {
	case edf.Misses == 0 && fair.Misses == 0:
		pt.MissImprovement = 1
	case edf.Misses == 0:
		pt.MissImprovement = float64(fair.Misses) // no misses left to divide by
	default:
		pt.MissImprovement = fair.MissRate / edf.MissRate
	}
	if cfg.RequireImprovement > 0 && pt.MissImprovement < cfg.RequireImprovement {
		return pt, fmt.Errorf("bench: deadline study: miss improvement %.2fx at %d streams (fair %.3f vs edf %.3f), want >= %.1fx",
			pt.MissImprovement, fair.Streams, fair.MissRate, edf.MissRate, cfg.RequireImprovement)
	}
	return pt, nil
}

// deadlineCell runs one fleet: `load` identical deadline-bearing
// streams against a fresh server with a freshly calibrated cost model
// (identical starting conditions for both arms), collecting miss,
// shed, and latency figures plus the bit-exactness verdict.
func deadlineCell(cfg DeadlineConfig, data []byte, oracle []uint64, deadline time.Duration, rate float64, load int, policy server.DispatchPolicy, noSlack bool) (*DeadlineCell, error) {
	// Calibrate a fresh model exactly as the study's oracle decode did —
	// the arms must not inherit each other's (load-inflated)
	// observations.
	model := &sched.CostModel{}
	if _, err := core.Decode(data, core.Options{
		Mode: core.ModeGOP, Workers: 1, Resilience: core.ConcealSlice, Cost: model,
	}); err != nil {
		return nil, err
	}
	if !model.Calibrated() {
		return nil, fmt.Errorf("cost model still cold after calibration decode")
	}

	srv := server.NewServer(server.Config{
		Workers: cfg.Workers, MaxStreams: load, QueueDepth: load,
		DefaultDemand:       0.01, // overload on purpose: admit everyone
		Tick:                5 * time.Millisecond,
		PauseBase:           10 * time.Millisecond,
		Dispatch:            policy,
		DisableSlackActions: noSlack,
		Cost:                model,
	})
	defer srv.Close()

	maxRung := 0
	stopRung := make(chan struct{})
	rungDone := make(chan struct{})
	go func() {
		defer close(rungDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopRung:
				return
			case <-tick.C:
				if r := srv.Rung(); r > maxRung {
					maxRung = r
				}
			}
		}
	}()

	type result struct {
		ss     *server.StreamStats
		hashes []uint64
		err    error
	}
	start := make(chan struct{})
	results := make(chan result, load)
	for i := 0; i < load; i++ {
		go func() {
			<-start
			var hashes []uint64
			ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
				Resilience: core.ConcealSlice, Deadline: deadline,
				MaxInFlight: cfg.MaxInFlight, PicRate: rate,
				Sink: func(f *frame.Frame) { hashes = append(hashes, frameHash(f)) },
			})
			results <- result{ss, hashes, err}
		}()
	}
	t0 := time.Now()
	close(start)

	cell := &DeadlineCell{Streams: load, Frames: load * cfg.Pictures}
	var lats []time.Duration
	for i := 0; i < load; i++ {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		st := r.ss.Stats
		if st.Displayed != st.Pictures {
			return nil, fmt.Errorf("stream %d displayed %d of %d pictures", r.ss.ID, st.Displayed, st.Pictures)
		}
		if st.LeakedFrameBytes != 0 {
			return nil, fmt.Errorf("stream %d leaked %d frame bytes", r.ss.ID, st.LeakedFrameBytes)
		}
		cell.ShedB += st.Shed.BPictures
		cell.ShedRef += st.Shed.RefPictures
		lats = append(lats, r.ss.Latencies...)
		// Bit-exactness: a stream that shed nothing must reproduce the
		// oracle frame for frame (the input is clean, so the degraded
		// resilience floor cannot change pixels either).
		if st.Shed.Total() == 0 {
			if len(r.hashes) != len(oracle) {
				return nil, fmt.Errorf("stream %d delivered %d frames, oracle has %d", r.ss.ID, len(r.hashes), len(oracle))
			}
			for j, h := range r.hashes {
				if h != oracle[j] {
					return nil, fmt.Errorf("stream %d frame %d diverged from the sequential oracle under %v dispatch", r.ss.ID, j, policy)
				}
			}
			cell.OracleStreams++
		}
	}
	wall := time.Since(t0)
	close(stopRung)
	<-rungDone
	m := srv.Metrics()
	if err := srv.Close(); err != nil {
		return nil, err
	}

	cell.WallMS = ms(wall)
	cell.Misses = m.Misses
	cell.MissRate = float64(m.Misses) / float64(cell.Frames)
	cell.SlackSheds = m.SlackSheds
	cell.Assists = m.Assists
	cell.MaxRung = maxRung
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cell.P50MS = ms(lats[int(0.50*float64(len(lats)-1))])
		cell.P99MS = ms(lats[int(0.99*float64(len(lats)-1))])
	}
	return cell, nil
}

// WriteText renders the study as the BENCH figure table.
func (pt *DeadlinePoint) WriteText(w io.Writer) {
	fmt.Fprintf(w, "deadline study: fair vs edf on %d workers, %.1fms frame budget (per-pic cost %.2fms, paced %.0f pics/s per stream)\n",
		pt.Workers, pt.DeadlineMS, pt.PerPicMS, pt.PicRate)
	if pt.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", pt.Note)
	}
	fmt.Fprintf(w, "  %8s %5s %7s %7s %8s %6s %7s %6s %5s %9s %9s %7s\n",
		"streams", "arm", "frames", "misses", "missrate", "shed", "slackshd", "assist", "rung", "p50 ms", "p99 ms", "oracle")
	for _, c := range pt.Cells {
		fmt.Fprintf(w, "  %8d %5s %7d %7d %8.3f %6d %7d %6d %5d %9.2f %9.2f %7d\n",
			c.Streams, c.Dispatch, c.Frames, c.Misses, c.MissRate,
			c.ShedB+c.ShedRef, c.SlackSheds, c.Assists, c.MaxRung, c.P50MS, c.P99MS, c.OracleStreams)
	}
	fmt.Fprintf(w, "  miss improvement at %d streams: %.2fx (fair/edf)\n",
		pt.Cells[len(pt.Cells)-1].Streams, pt.MissImprovement)
}

// WriteJSON emits the study as indented JSON.
func (pt *DeadlinePoint) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pt)
}

// DeadlineRun wraps the study in a host-stamped PerfRun for
// BENCH_<n>.json.
func DeadlineRun(label string, pt *DeadlinePoint) *PerfRun {
	return &PerfRun{
		Label:       label,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: kernels.CPUFeatures(),
		KernelLevel: kernels.Describe(),
		ScalingNote: pt.Note,
		Deadline:    pt,
	}
}
