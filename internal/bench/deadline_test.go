package bench

import (
	"io"
	"testing"
)

// TestDeadlineExperimentSmoke runs a scaled-down deadline study: both
// arms complete, every stream delivers every frame (the cell errors
// otherwise), the frozen-slack fair arm takes no slack action, and
// streams that shed nothing verify bit-exact against the oracle. The
// miss-rate ratio itself is not gated here — it needs the full
// overloaded configuration and a quiet host; the recorded BENCH run
// asserts it.
func TestDeadlineExperimentSmoke(t *testing.T) {
	pt, err := DeadlineStudy(DeadlineConfig{
		Workers: 2, Loads: []int{6},
		Width: 96, Height: 64, Pictures: 16,
		Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt.WriteText(io.Discard)
	if len(pt.Cells) != 2 {
		t.Fatalf("%d cells, want fair+edf", len(pt.Cells))
	}
	for _, c := range pt.Cells {
		if c.Frames != 6*16 {
			t.Fatalf("%s arm fed %d frames, want %d", c.Dispatch, c.Frames, 6*16)
		}
		if c.Dispatch == "fair" && (c.SlackSheds != 0 || c.Assists != 0) {
			t.Fatalf("fair arm took slack actions while frozen: %+v", c)
		}
		if c.OracleStreams == 0 && c.SlackSheds+int64(c.ShedB+c.ShedRef) == 0 {
			t.Fatalf("%s arm shed nothing yet no stream verified against the oracle", c.Dispatch)
		}
	}
	if pt.MissImprovement <= 0 {
		t.Fatalf("miss improvement %v, want positive", pt.MissImprovement)
	}
}
