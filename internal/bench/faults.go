package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mpeg2par/internal/core"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
)

// This file is the corruption-sweep harness behind `mpeg2bench -faults`:
// it encodes one reference stream, injects a deterministic battery of
// faults (including a Gilbert-Elliott loss-rate curve), decodes each
// corrupted copy under every resilience policy, and reports output
// quality (mean PSNR against the clean decode) next to the decoder's own
// ErrorStats. Every damaged point is decoded twice — sequentially and
// slice-parallel — and the sweep fails outright if the two disagree, so
// the determinism contract is re-checked on exactly the streams the
// quality numbers come from.

// FaultSchema identifies the -faults JSON layout.
const FaultSchema = "mpeg2par-faults/1"

// FaultConfig describes the sweep workload.
type FaultConfig struct {
	Width, Height int   // picture size (default 176x120)
	GOPSize       int   // pictures per GOP (default 8)
	Pictures      int   // stream length (default 2 GOPs)
	Workers       int   // workers for the parallel leg (default 4)
	Seed          int64 // fault-injection seed (default 1)
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Width == 0 {
		c.Width, c.Height = 176, 120
	}
	if c.GOPSize == 0 {
		c.GOPSize = 8
	}
	if c.Pictures == 0 {
		c.Pictures = 2 * c.GOPSize
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultPoint is one (corruption, policy) cell of the sweep.
type FaultPoint struct {
	Spec     string          `json:"spec"`
	Seed     int64           `json:"seed"`
	LossRate float64         `json:"loss_rate,omitempty"` // gilbert curve points only
	Policy   string          `json:"policy"`
	OK       bool            `json:"ok"`
	Err      string          `json:"err,omitempty"`
	Frames   int             `json:"frames"`
	MeanPSNR float64         `json:"mean_psnr_db"`
	Errors   core.ErrorStats `json:"errors"`
	Injected faults.Report   `json:"injected"`
}

// FaultSweepResult is the full -faults output.
type FaultSweepResult struct {
	Schema   string       `json:"schema"`
	Config   FaultConfig  `json:"config"`
	Clean    int          `json:"clean_frames"` // frames in the undamaged stream
	CleanOK  bool         `json:"clean_failfast_identical"`
	Points   []FaultPoint `json:"points"`
	sweepRef []*frame.Frame
}

// psnrCap stands in for +Inf when a frame is bit-identical to the clean
// reference, keeping means and JSON finite.
const psnrCap = 99.0

// sweepSpecs is the representative corruption battery (one point per
// policy each); the Gilbert-Elliott curve below adds the loss-rate axis.
var sweepSpecs = []string{
	"bitflip:8",
	"burst:count=2,len=24",
	"dropslice:3",
	"droppic:1",
	"truncate:0.8",
}

// sweepLossRates is the Gilbert-Elliott packet-loss curve.
var sweepLossRates = []float64{0.002, 0.005, 0.01, 0.02, 0.05}

var sweepPolicies = []core.Resilience{core.ConcealSlice, core.ConcealPicture, core.DropGOP}

// FaultSweep runs the corruption sweep and returns its structured result.
func FaultSweep(cfg FaultConfig) (*FaultSweepResult, error) {
	cfg = cfg.withDefaults()
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: cfg.Width, Height: cfg.Height,
		Pictures: cfg.Pictures, GOPSize: cfg.GOPSize,
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: encoding sweep stream: %w", err)
	}

	// Clean reference: the plain sequential decoder.
	d, err := decoder.New(res.Data)
	if err != nil {
		return nil, err
	}
	ref, err := d.All()
	if err != nil {
		return nil, fmt.Errorf("bench: clean reference decode: %w", err)
	}

	out := &FaultSweepResult{Schema: FaultSchema, Config: cfg, Clean: len(ref), sweepRef: ref}

	// Baseline: FailFast on the undamaged stream must be bit-identical to
	// the sequential decoder in every mode. Anything else is a regression
	// the quality numbers would silently absorb.
	for _, mode := range []core.Mode{core.ModeSequential, core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved} {
		got, _, err := decodeCollect(res.Data, mode, cfg.Workers, core.FailFast)
		if err != nil {
			return nil, fmt.Errorf("bench: clean FailFast %v decode: %w", mode, err)
		}
		if len(got) != len(ref) {
			return nil, fmt.Errorf("bench: clean FailFast %v displayed %d frames, sequential decoder %d", mode, len(got), len(ref))
		}
		for i := range ref {
			if !got[i].Equal(ref[i]) {
				return nil, fmt.Errorf("bench: clean FailFast %v frame %d differs from the sequential decoder", mode, i)
			}
		}
	}
	out.CleanOK = true

	runSpec := func(sp faults.Spec, lossRate float64) error {
		mut, rep := sp.Apply(res.Data, cfg.Seed)
		for _, policy := range sweepPolicies {
			pt, err := out.runPoint(mut, cfg, policy)
			if err != nil {
				return err
			}
			pt.Spec = sp.String()
			pt.Seed = cfg.Seed
			pt.LossRate = lossRate
			pt.Injected = rep
			out.Points = append(out.Points, pt)
		}
		return nil
	}

	for _, spec := range sweepSpecs {
		sp, err := faults.Parse(spec)
		if err != nil {
			return nil, err
		}
		if err := runSpec(sp, 0); err != nil {
			return nil, err
		}
	}
	for _, loss := range sweepLossRates {
		sp := faults.Spec{Kind: faults.PacketLoss, Rate: loss, Burst: 3, Len: 64}
		if err := runSpec(sp, loss); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runPoint decodes one corrupted stream under one policy, sequentially
// and slice-parallel, verifies the two agree bit-exactly, and scores the
// output against the clean reference.
func (r *FaultSweepResult) runPoint(mut []byte, cfg FaultConfig, policy core.Resilience) (FaultPoint, error) {
	pt := FaultPoint{Policy: policy.String()}
	seq, seqSt, seqErr := decodeCollect(mut, core.ModeSequential, 1, policy)
	par, parSt, parErr := decodeCollect(mut, core.ModeSliceImproved, cfg.Workers, policy)
	if (seqErr != nil) != (parErr != nil) {
		return pt, fmt.Errorf("bench: %v determinism violation: sequential err=%v, parallel err=%v", policy, seqErr, parErr)
	}
	if seqErr != nil {
		pt.Err = seqErr.Error()
		return pt, nil
	}
	if seqSt.Errors != parSt.Errors {
		return pt, fmt.Errorf("bench: %v determinism violation: stats %+v vs %+v", policy, seqSt.Errors, parSt.Errors)
	}
	if len(seq) != len(par) {
		return pt, fmt.Errorf("bench: %v determinism violation: %d vs %d frames", policy, len(seq), len(par))
	}
	for i := range seq {
		if !seq[i].Equal(par[i]) {
			return pt, fmt.Errorf("bench: %v determinism violation: frame %d differs between modes", policy, i)
		}
	}
	pt.OK = true
	pt.Frames = len(seq)
	pt.Errors = seqSt.Errors
	pt.MeanPSNR = meanPSNR(r.sweepRef, seq)
	return pt, nil
}

// decodeCollect decodes data under (mode, workers, policy) and returns
// deep copies of the displayed frames.
func decodeCollect(data []byte, mode core.Mode, workers int, policy core.Resilience) ([]*frame.Frame, *core.Stats, error) {
	var frames []*frame.Frame
	st, err := core.Decode(data, core.Options{
		Mode: mode, Workers: workers, Resilience: policy,
		Sink: func(f *frame.Frame) { frames = append(frames, f.Clone()) },
	})
	if err != nil {
		return nil, nil, err
	}
	return frames, st, nil
}

// meanPSNR scores got against the clean reference by display position
// (up to the shorter run — DropGOP output is legitimately shorter, and
// the temporal shift it causes is part of the distortion being measured).
// Bit-identical frames (+Inf) are capped at psnrCap.
func meanPSNR(ref, got []*frame.Frame) float64 {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		p := frame.PSNR(ref[i], got[i])
		if math.IsInf(p, 1) || p > psnrCap {
			p = psnrCap
		}
		sum += p
	}
	return sum / float64(n)
}

// RenderFaultTable prints the sweep as a text table.
func (r *FaultSweepResult) RenderFaultTable(w io.Writer) {
	fmt.Fprintf(w, "Corruption sweep: %dx%d, %d pictures (GOP %d), seed %d, clean stream decodes %d frames\n",
		r.Config.Width, r.Config.Height, r.Config.Pictures, r.Config.GOPSize, r.Config.Seed, r.Clean)
	fmt.Fprintf(w, "clean FailFast baseline bit-identical across modes: %v\n\n", r.CleanOK)
	fmt.Fprintf(w, "%-34s %-16s %-6s %7s %9s  %s\n",
		"fault", "policy", "ok", "frames", "PSNR(dB)", "damaged/resync/concealMB/dropPic/dropGOP")
	for _, pt := range r.Points {
		status := "yes"
		if !pt.OK {
			status = "error"
		}
		psnr := fmt.Sprintf("%9.2f", pt.MeanPSNR)
		if !pt.OK {
			psnr = fmt.Sprintf("%9s", "-")
		}
		fmt.Fprintf(w, "%-34s %-16s %-6s %7d %s  %d/%d/%d/%d/%d\n",
			pt.Spec, pt.Policy, status, pt.Frames, psnr,
			pt.Errors.DamagedSlices, pt.Errors.Resyncs, pt.Errors.ConcealedMBs,
			pt.Errors.DroppedPictures, pt.Errors.DroppedGOPs)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "PSNR vs loss rate (gilbert, burst=3, pkt=64):")
	fmt.Fprintf(w, "%-10s", "loss")
	for _, p := range sweepPolicies {
		fmt.Fprintf(w, " %15s", p)
	}
	fmt.Fprintln(w)
	for _, loss := range sweepLossRates {
		fmt.Fprintf(w, "%-10.3f", loss)
		for _, p := range sweepPolicies {
			val := "-"
			for _, pt := range r.Points {
				if pt.LossRate == loss && pt.Policy == p.String() {
					if pt.OK {
						val = fmt.Sprintf("%.2f", pt.MeanPSNR)
					} else {
						val = "error"
					}
				}
			}
			fmt.Fprintf(w, " %15s", val)
		}
		fmt.Fprintln(w)
	}
}

// WriteJSON emits the sweep result as indented JSON.
func (r *FaultSweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
