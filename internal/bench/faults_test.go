package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFaultSweepSmoke runs the corruption sweep on a small workload: it
// must complete, pass its own clean-baseline identity check, and produce
// at least one point where a policy recovered from real damage.
func TestFaultSweepSmoke(t *testing.T) {
	res, err := FaultSweep(FaultConfig{Width: 96, Height: 64, GOPSize: 4, Pictures: 8, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanOK {
		t.Fatal("clean FailFast baseline not marked identical")
	}
	wantPoints := (len(sweepSpecs) + len(sweepLossRates)) * len(sweepPolicies)
	if len(res.Points) != wantPoints {
		t.Fatalf("%d points, want %d", len(res.Points), wantPoints)
	}
	recovered := false
	for _, pt := range res.Points {
		if pt.OK && pt.Errors.Any() {
			recovered = true
			if pt.MeanPSNR <= 0 || pt.MeanPSNR > psnrCap {
				t.Fatalf("point %s/%s: implausible PSNR %.2f", pt.Spec, pt.Policy, pt.MeanPSNR)
			}
		}
	}
	if !recovered {
		t.Fatal("no point recovered from damage; the sweep exercised nothing")
	}

	// Both renderings must work: the table mentions the loss curve, the
	// JSON round-trips with the schema tag.
	var tbl bytes.Buffer
	res.RenderFaultTable(&tbl)
	if !strings.Contains(tbl.String(), "PSNR vs loss rate") {
		t.Fatal("table missing the loss-rate section")
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back FaultSweepResult
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != FaultSchema || len(back.Points) != len(res.Points) {
		t.Fatalf("JSON round trip lost data: schema %q, %d points", back.Schema, len(back.Points))
	}
}
