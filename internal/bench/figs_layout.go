package bench

import (
	"fmt"
	"io"

	"mpeg2par/internal/cachesim"
	"mpeg2par/internal/core"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
)

// LocalityRow is one variant sample of the layout/affinity locality
// study (the cachesim A/B behind the adopted frame layout and task
// steering — see DESIGN.md "Kernel dispatch & memory layout").
type LocalityRow struct {
	Study    string  `json:"study"`   // "layout" or "affinity"
	Variant  string  `json:"variant"` // dense/padded, round-robin/row
	Adopted  bool    `json:"adopted"`
	Res      string  `json:"res"`
	CacheKB  int     `json:"cache_kb"`
	Assoc    int     `json:"assoc"` // 0 = fully associative
	MissRate float64 `json:"read_miss_rate"`
	Conflict int64   `json:"conflict_misses"`
	Sharing  int64   `json:"sharing_misses"`
	Cold     int64   `json:"cold_misses"`
}

// localityTrace records a slice-mode reconstruction trace under an
// explicit frame layout and task→processor assignment. Traces are not
// cached across calls: the Runner's trace cache is keyed without layout
// or assignment, and the study's whole point is varying them.
func (r *Runner) localityTrace(res Resolution, procs int, padded bool, aff core.Affinity) ([]memtrace.Event, error) {
	s, err := r.Stream(res, 13)
	if err != nil {
		return nil, err
	}
	defer func(v bool) { frame.PadStrides = v }(frame.PadStrides)
	frame.PadStrides = padded
	rec := memtrace.NewRecorder()
	if err := core.TraceDecodeAssign(s.Data, core.ModeSliceSimple, procs, aff, rec); err != nil {
		return nil, err
	}
	return rec.Events(), nil
}

func simulate(evs []memtrace.Event, size, assoc, procs int) (cachesim.Stats, error) {
	sim, err := cachesim.New(cachesim.Config{Size: size, LineSize: 64, Assoc: assoc, Procs: procs})
	if err != nil {
		return cachesim.Stats{}, err
	}
	if err := sim.Run(evs); err != nil {
		return cachesim.Stats{}, err
	}
	return sim.Stats(), nil
}

// LocalityStudy runs the two cachesim A/B comparisons behind the
// adopted memory-layout decisions:
//
//   - Layout: a 512-pixel-wide stream (rows alias power-of-two cache
//     sets) decoded under the dense and the row-padded frame layout,
//     simulated on low-associativity caches where set conflicts show.
//     The padded layout is the adopted variant for 512-multiple widths;
//     dense stays adopted elsewhere (the study's non-aliasing control
//     resolution shows padding buys nothing there).
//   - Affinity: the locality-study resolution decoded with tasks
//     assigned round-robin (the paper's dynamic assignment) versus
//     steered by row, on per-processor caches large enough to hold a
//     row band between pictures. Row steering is the adopted variant:
//     the processor that wrote a reference row is the one that re-reads
//     it for motion compensation, converting sharing/cold misses into
//     hits.
func (r *Runner) LocalityStudy(w io.Writer) ([]LocalityRow, error) {
	var rows []LocalityRow
	var out [][]string
	add := func(row LocalityRow) {
		rows = append(rows, row)
		mark := ""
		if row.Adopted {
			mark = " *"
		}
		aName := fmt.Sprintf("%d-way", row.Assoc)
		if row.Assoc == 0 {
			aName = "full"
		}
		out = append(out, []string{row.Study, row.Variant + mark, row.Res,
			fmt.Sprintf("%dK", row.CacheKB), aName,
			fmt.Sprintf("%.5f", row.MissRate),
			fmt.Sprintf("%d", row.Conflict), fmt.Sprintf("%d", row.Sharing),
			fmt.Sprintf("%d", row.Cold)})
	}

	// Part 1: frame layout, on the width class the padding rule targets.
	aliasRes := Resolution{512, 192}
	const layoutProcs = 4
	for _, variant := range []struct {
		name    string
		padded  bool
		adopted bool
	}{{"dense", false, false}, {"padded", true, true}} {
		evs, err := r.localityTrace(aliasRes, layoutProcs, variant.padded, core.AffinityNone)
		if err != nil {
			return nil, err
		}
		for _, g := range []struct{ size, assoc int }{{32 << 10, 1}, {32 << 10, 2}} {
			st, err := simulate(evs, g.size, g.assoc, layoutProcs)
			if err != nil {
				return nil, err
			}
			add(LocalityRow{Study: "layout", Variant: variant.name, Adopted: variant.adopted,
				Res: aliasRes.Name(), CacheKB: g.size >> 10, Assoc: g.assoc,
				MissRate: st.ReadMissRate(), Conflict: st.Conflict, Sharing: st.Sharing, Cold: st.Cold})
		}
	}
	// Control: at the paper resolutions (non-512-multiple strides) the
	// rule leaves rows dense; show padding would not have helped there.
	ctrlRes := r.localityRes()
	for _, variant := range []struct {
		name    string
		padded  bool
		adopted bool
	}{{"dense", false, true}, {"padded", true, false}} {
		// Forcing the pad rule on a non-multiple width is a no-op, so
		// simulate the dense trace both times and let the table show the
		// identical rates (stride is unchanged by PadStrides there).
		evs, err := r.localityTrace(ctrlRes, layoutProcs, variant.padded, core.AffinityNone)
		if err != nil {
			return nil, err
		}
		st, err := simulate(evs, 32<<10, 1, layoutProcs)
		if err != nil {
			return nil, err
		}
		add(LocalityRow{Study: "layout-ctrl", Variant: variant.name, Adopted: variant.adopted,
			Res: ctrlRes.Name(), CacheKB: 32, Assoc: 1,
			MissRate: st.ReadMissRate(), Conflict: st.Conflict, Sharing: st.Sharing, Cold: st.Cold})
	}

	// Part 2: slice→worker assignment at the locality resolution.
	const affProcs = 8
	for _, variant := range []struct {
		name    string
		aff     core.Affinity
		adopted bool
	}{{"round-robin", core.AffinityNone, false}, {"row", core.AffinityRow, true}} {
		evs, err := r.localityTrace(ctrlRes, affProcs, true, variant.aff)
		if err != nil {
			return nil, err
		}
		for _, size := range []int{256 << 10, 1 << 20} {
			st, err := simulate(evs, size, 2, affProcs)
			if err != nil {
				return nil, err
			}
			add(LocalityRow{Study: "affinity", Variant: variant.name, Adopted: variant.adopted,
				Res: ctrlRes.Name(), CacheKB: size >> 10, Assoc: 2,
				MissRate: st.ReadMissRate(), Conflict: st.Conflict, Sharing: st.Sharing, Cold: st.Cold})
		}
	}

	table(w, "Locality study: frame layout and task steering (* = adopted variant)",
		[]string{"Study", "Variant", "Resolution", "Cache", "Assoc", "Read miss rate", "Conflict", "Sharing", "Cold"}, out)
	return rows, nil
}
