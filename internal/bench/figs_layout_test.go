package bench

import (
	"io"
	"testing"
)

// TestLocalityStudyAdoptedWins pins the decisions the study justifies:
// each adopted variant's simulated read miss rate is no worse than its
// rejected counterpart at every shared cache geometry, and the adopted
// row steering strictly reduces misses.
func TestLocalityStudyAdoptedWins(t *testing.T) {
	rows, err := sharedRunner.LocalityStudy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		study   string
		cacheKB int
		assoc   int
	}
	adopted := map[key]LocalityRow{}
	rejected := map[key]LocalityRow{}
	for _, row := range rows {
		k := key{row.Study, row.CacheKB, row.Assoc}
		if row.Adopted {
			adopted[k] = row
		} else {
			rejected[k] = row
		}
	}
	if len(adopted) == 0 || len(adopted) != len(rejected) {
		t.Fatalf("unpaired study rows: %d adopted, %d rejected", len(adopted), len(rejected))
	}
	for k, a := range adopted {
		r, ok := rejected[k]
		if !ok {
			t.Fatalf("%+v: no rejected counterpart", k)
		}
		if a.MissRate > r.MissRate {
			t.Errorf("%+v: adopted %q misses more than rejected %q (%.5f > %.5f)",
				k, a.Variant, r.Variant, a.MissRate, r.MissRate)
		}
		if k.study == "affinity" && a.MissRate >= r.MissRate {
			t.Errorf("%+v: row steering did not strictly reduce the miss rate (%.5f vs %.5f)",
				k, a.MissRate, r.MissRate)
		}
		if k.study == "layout" && a.Conflict >= r.Conflict {
			t.Errorf("%+v: padded layout did not reduce conflict misses (%d vs %d)",
				k, a.Conflict, r.Conflict)
		}
	}
}
