package bench

import (
	"fmt"
	"io"

	"mpeg2par/internal/cachesim"
	"mpeg2par/internal/core"
	"mpeg2par/internal/memtrace"
)

// cacheGeom keys one simulated cache configuration.
type cacheGeom struct {
	size  int
	line  int
	assoc int // 0 = fully associative
}

// traceFor returns (recording on first use) the reconstruction reference
// trace of a decode, with tasks assigned to processors round-robin by the
// deterministic trace generator (core.TraceDecode).
func (r *Runner) traceFor(res Resolution, mode core.Mode, procs int) ([]memtrace.Event, error) {
	r.mu.Lock()
	if r.traces == nil {
		r.traces = make(map[traceKey][]memtrace.Event)
	}
	key := traceKey{res, mode, procs}
	if t, ok := r.traces[key]; ok {
		r.mu.Unlock()
		return t, nil
	}
	r.mu.Unlock()
	s, err := r.Stream(res, 13)
	if err != nil {
		return nil, err
	}
	rec := memtrace.NewRecorder()
	if err := core.TraceDecode(s.Data, mode, procs, rec); err != nil {
		return nil, err
	}
	evs := rec.Events()
	r.mu.Lock()
	r.traces[key] = evs
	r.mu.Unlock()
	return evs, nil
}

type traceKey struct {
	res   Resolution
	mode  core.Mode
	procs int
}

// traceCache simulates one cache geometry over the GOP-mode trace.
func (r *Runner) traceCache(res Resolution, procs int, g cacheGeom) (cachesim.Stats, error) {
	evs, err := r.traceFor(res, core.ModeGOP, procs)
	if err != nil {
		return cachesim.Stats{}, err
	}
	sim, err := cachesim.New(cachesim.Config{Size: g.size, LineSize: g.line, Assoc: g.assoc, Procs: procs})
	if err != nil {
		return cachesim.Stats{}, err
	}
	if err := sim.Run(evs); err != nil {
		return cachesim.Stats{}, err
	}
	return sim.Stats(), nil
}

// Fig13Row is one read-miss-rate-vs-line-size sample.
type Fig13Row struct {
	Res      Resolution
	LineSize int
	MissRate float64
}

// Fig13 regenerates the spatial-locality study: read miss rate vs line
// size for an 8-processor execution with 1 MB fully-associative caches —
// the rate should roughly halve per line-size doubling.
func (r *Runner) Fig13(w io.Writer) ([]Fig13Row, error) {
	var rows []Fig13Row
	var out [][]string
	procs := 8
	for _, res := range []Resolution{r.localityRes()} {
		evs, err := r.traceFor(res, core.ModeGOP, procs)
		if err != nil {
			return nil, err
		}
		for _, line := range []int{16, 32, 64, 128, 256} {
			sim, err := cachesim.New(cachesim.Config{Size: 1 << 20, LineSize: line, Assoc: 0, Procs: procs})
			if err != nil {
				return nil, err
			}
			if err := sim.Run(evs); err != nil {
				return nil, err
			}
			st := sim.Stats()
			row := Fig13Row{Res: res, LineSize: line, MissRate: st.ReadMissRate()}
			rows = append(rows, row)
			out = append(out, []string{res.Name(), fmt.Sprintf("%d", line), fmt.Sprintf("%.5f", row.MissRate)})
		}
	}
	table(w, "Figure 13: read miss rate vs cache line size (1MB fully assoc, 8 procs)",
		[]string{"Resolution", "Line bytes", "Read miss rate"}, out)
	return rows, nil
}

// Fig14Row is one miss-rate-vs-cache-size sample.
type Fig14Row struct {
	Res      Resolution
	Mode     string // "gop" (1 proc) or "slice" (8 procs)
	Size     int
	Assoc    int
	MissRate float64
	Stats    cachesim.Stats
}

var fig14Sizes = []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20}

// Fig14 regenerates the working-set study: miss rate vs per-processor
// cache size with 64-byte lines, for the GOP version (one worker) and the
// simple slice version (eight workers), at 1/2/full associativity.
func (r *Runner) Fig14(w io.Writer) ([]Fig14Row, error) {
	var rows []Fig14Row
	var out [][]string
	type variant struct {
		name  string
		mode  core.Mode
		procs int
	}
	for _, v := range []variant{{"gop", core.ModeGOP, 1}, {"slice", core.ModeSliceSimple, 8}} {
		for _, res := range []Resolution{r.localityRes()} {
			evs, err := r.traceFor(res, v.mode, v.procs)
			if err != nil {
				return nil, err
			}
			for _, assoc := range []int{1, 2, 0} {
				for _, size := range fig14Sizes {
					sim, err := cachesim.New(cachesim.Config{Size: size, LineSize: 64, Assoc: assoc, Procs: v.procs})
					if err != nil {
						return nil, err
					}
					if err := sim.Run(evs); err != nil {
						return nil, err
					}
					st := sim.Stats()
					row := Fig14Row{Res: res, Mode: v.name, Size: size, Assoc: assoc, MissRate: st.ReadMissRate(), Stats: st}
					rows = append(rows, row)
					aName := fmt.Sprintf("%d-way", assoc)
					if assoc == 0 {
						aName = "full"
					}
					out = append(out, []string{v.name, res.Name(), aName,
						fmt.Sprintf("%dK", size>>10), fmt.Sprintf("%.5f", row.MissRate)})
				}
			}
		}
	}
	table(w, "Figure 14: read miss rate vs cache size (64B lines)",
		[]string{"Version", "Resolution", "Assoc", "Size", "Read miss rate"}, out)
	return rows, nil
}

// Fig15Row is one capacity/cold miss ratio sample.
type Fig15Row struct {
	Res   Resolution
	Mode  string
	Size  int
	Ratio float64
}

// Fig15 regenerates the capacity-vs-cold study: beyond the working set,
// capacity misses become a small fraction of cold misses.
func (r *Runner) Fig15(w io.Writer) ([]Fig15Row, error) {
	rows14, err := r.Fig14(io.Discard)
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	var out [][]string
	for _, r14 := range rows14 {
		if r14.Assoc != 0 { // the paper plots the fully-associative case
			continue
		}
		ratio := 0.0
		if r14.Stats.Cold > 0 {
			ratio = float64(r14.Stats.Capacity) / float64(r14.Stats.Cold)
		}
		row := Fig15Row{Res: r14.Res, Mode: r14.Mode, Size: r14.Size, Ratio: ratio}
		rows = append(rows, row)
		out = append(out, []string{r14.Mode, r14.Res.Name(), fmt.Sprintf("%dK", r14.Size>>10), f2(ratio)})
	}
	table(w, "Figure 15: read capacity/cold miss ratio vs cache size (fully assoc)",
		[]string{"Version", "Resolution", "Size", "capacity/cold"}, out)
	return rows, nil
}
