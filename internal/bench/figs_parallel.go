package bench

import (
	"fmt"
	"io"
	"time"

	"mpeg2par/internal/memmodel"
	"mpeg2par/internal/simsched"
)

// SpeedupSeries is one speedup-vs-workers curve.
type SpeedupSeries struct {
	Label    string
	Workers  []int
	Speedup  []float64
	Makespan []time.Duration
}

func workerSweep(max int) []int {
	var ws []int
	for p := 1; p <= max; p++ {
		ws = append(ws, p)
	}
	return ws
}

// Fig5 regenerates the GOP-version speedup curves (near-linear for all
// picture sizes and GOP sizes).
func (r *Runner) Fig5(w io.Writer) ([]SpeedupSeries, error) {
	var series []SpeedupSeries
	workers := workerSweep(r.cfg.MaxWorkers)
	for _, res := range r.cfg.Resolutions {
		for _, gop := range GOPSizes {
			tasks, err := r.GOPTasks(res, gop)
			if err != nil {
				return nil, err
			}
			base := SimGOP(tasks, 1).Makespan
			s := SpeedupSeries{Label: fmt.Sprintf("%s gop=%d", res.Name(), gop), Workers: workers}
			for _, p := range workers {
				mk := SimGOP(tasks, p).Makespan
				s.Speedup = append(s.Speedup, float64(base)/float64(mk))
				s.Makespan = append(s.Makespan, mk)
			}
			series = append(series, s)
		}
	}
	printSpeedups(w, "Figure 5: GOP-version speedup vs workers", series)
	return series, nil
}

func printSpeedups(w io.Writer, title string, series []SpeedupSeries) {
	if len(series) == 0 {
		return
	}
	header := []string{"workers"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	var rows [][]string
	for i, p := range series[0].Workers {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range series {
			row = append(row, f2(s.Speedup[i]))
		}
		rows = append(rows, row)
	}
	table(w, title, header, rows)
}

// Fig6Row is one load-imbalance measurement: min/max/avg worker compute
// time for a GOP size.
type Fig6Row struct {
	Res           Resolution
	GOP           int
	Min, Max, Avg time.Duration
}

// Fig6 regenerates the load-imbalance study: with small GOPs all workers
// compute equally; with large GOPs the discrete task granularity shows.
func (r *Runner) Fig6(w io.Writer) ([]Fig6Row, error) {
	var rows []Fig6Row
	var out [][]string
	p := r.cfg.MaxWorkers
	for _, res := range r.cfg.Resolutions {
		for _, gop := range GOPSizes {
			tasks, err := r.GOPTasks(res, gop)
			if err != nil {
				return nil, err
			}
			res2 := SimGOP(tasks, p)
			row := Fig6Row{Res: res, GOP: gop, Min: res2.MinBusy(), Max: res2.MaxBusy(), Avg: res2.AvgBusy()}
			rows = append(rows, row)
			out = append(out, []string{
				res.Name(), fmt.Sprintf("%d", gop),
				fmt.Sprintf("%.3fs", row.Min.Seconds()),
				fmt.Sprintf("%.3fs", row.Avg.Seconds()),
				fmt.Sprintf("%.3fs", row.Max.Seconds()),
				f2(float64(row.Max-row.Min) / float64(row.Avg)),
			})
		}
	}
	table(w, fmt.Sprintf("Figure 6: worker compute-time balance at %d workers", p),
		[]string{"Resolution", "GOP size", "min", "avg", "max", "(max-min)/avg"}, out)
	return rows, nil
}

// Fig7Row is one ideal-vs-actual time estimate. Ideal time follows the
// pixie model (every instruction one cycle); actual adds memory stalls
// from the simulated cache's miss counts.
type Fig7Row struct {
	Res     Resolution
	Workers int
	Ratio   float64 // actual / ideal
}

// Cycle-model constants: era-typical three instructions per memory
// reference, and a ~100-cycle read-miss penalty (a memory access on the
// 150 MHz Challenge costs on the order of a microsecond; write stalls are
// assumed hidden by write buffers, as in the cache model).
const (
	instrPerRef      = 3.0
	missPenaltyCycle = 100.0
)

// Fig7 estimates the memory-stall overhead of the GOP decoder: actual =
// ideal + misses × penalty, with miss counts from the cache simulator at
// the era cache geometry (1 MB, 2-way, 64 B lines).
func (r *Runner) Fig7(w io.Writer) ([]Fig7Row, error) {
	var rows []Fig7Row
	var out [][]string
	for _, res := range []Resolution{r.localityRes()} {
		for _, p := range []int{1, 4, 8, r.cfg.MaxWorkers} {
			st, err := r.traceCache(res, p, cacheGeom{size: 1 << 20, line: 64, assoc: 2})
			if err != nil {
				return nil, err
			}
			refs := float64(st.Reads + st.Writes)
			misses := float64(st.ReadMisses)
			ideal := refs * instrPerRef
			actual := ideal + misses*missPenaltyCycle
			row := Fig7Row{Res: res, Workers: p, Ratio: actual / ideal}
			rows = append(rows, row)
			out = append(out, []string{res.Name(), fmt.Sprintf("%d", p), f2(row.Ratio),
				fmt.Sprintf("%.1f%%", 100*(row.Ratio-1))})
		}
	}
	table(w, "Figure 7: actual/ideal time (memory stall overhead)",
		[]string{"Resolution", "Workers", "actual/ideal", "stall share"}, out)
	return rows, nil
}

// Fig8Row is one memory high-watermark of the GOP decoder.
type Fig8Row struct {
	Res        Resolution
	GOP        int
	Workers    int
	PeakFrames int
	PeakBytes  int64
}

// Fig8 regenerates the GOP decoder's memory requirements: linear growth
// with workers and GOP size.
func (r *Runner) Fig8(w io.Writer) ([]Fig8Row, error) {
	var rows []Fig8Row
	var out [][]string
	for _, res := range r.cfg.Resolutions {
		for _, gop := range GOPSizes {
			tasks, err := r.GOPTasks(res, gop)
			if err != nil {
				return nil, err
			}
			for _, p := range []int{1, 4, 8, r.cfg.MaxWorkers} {
				sim := SimGOP(tasks, p)
				row := Fig8Row{
					Res: res, GOP: gop, Workers: p,
					PeakFrames: sim.PeakFrames,
					PeakBytes:  int64(sim.PeakFrames) * res.FrameBytes(),
				}
				rows = append(rows, row)
				out = append(out, []string{
					res.Name(), fmt.Sprintf("%d", gop), fmt.Sprintf("%d", p),
					fmt.Sprintf("%d", row.PeakFrames),
					fmt.Sprintf("%.1fMB", float64(row.PeakBytes)/(1<<20)),
				})
			}
		}
	}
	table(w, "Figure 8: GOP-version peak frame memory",
		[]string{"Resolution", "GOP size", "Workers", "Peak frames", "Peak bytes"}, out)
	return rows, nil
}

// Fig9Case is one analytical memory-model scenario.
type Fig9Case struct {
	Label    string
	Peak     int64
	Feasible bool
	Series   []memmodel.Point
}

// Fig9 evaluates the analytical model for the paper's three cases,
// including the infeasible 1408×960 / 31 pictures / 11 workers run
// against the Challenge's 500 MB budget.
// The model runs at era-calibrated rates: this host decodes two orders of
// magnitude faster than the 150 MHz R4400, which would make the 30 pic/s
// display the only bottleneck and pile every decoded frame at the display
// queue — a different phenomenon from the paper's. Scaling the decode
// rate (and using the paper's measured scan rate) restores the balance of
// forces the model is about.
func (r *Runner) Fig9(w io.Writer) ([]Fig9Case, error) {
	const budget = 500 << 20
	const eraSlowdown = 200       // ≈ this host vs 150 MHz R4400 on this code
	const eraScanPicsPerSec = 200 // Table 2's measured scan rate
	mk := func(res Resolution, gop, workers int) (memmodel.Params, error) {
		tasks, err := r.GOPTasks(res, gop)
		if err != nil {
			return memmodel.Params{}, err
		}
		var avg time.Duration
		for _, t := range tasks {
			avg += t.Cost
		}
		avg /= time.Duration(len(tasks))
		if avg <= 0 { // coarse timers can measure zero; keep the rate positive
			avg = time.Nanosecond
		}
		m, err := r.Map(res, gop)
		if err != nil {
			return memmodel.Params{}, err
		}
		s, err := r.Stream(res, gop)
		if err != nil {
			return memmodel.Params{}, err
		}
		return memmodel.Params{
			Workers:           workers,
			GOPs:              len(tasks),
			PicturesPerGOP:    gop,
			FrameBytes:        res.FrameBytes(),
			BytesPerGOP:       int64(len(s.Data)) / int64(len(m.GOPs)),
			ScanGOPsPerSec:    eraScanPicsPerSec / float64(gop),
			DecodeGOPsPerSec:  safeRate(1.0/eraSlowdown, avg),
			DisplayPicsPerSec: 30,
		}, nil
	}
	cases := []struct {
		res     Resolution
		gop     int
		workers int
	}{
		{r.cfg.Resolutions[0], 13, 4},
		{r.cfg.Resolutions[len(r.cfg.Resolutions)-1], 13, 4},
		{r.cfg.Resolutions[len(r.cfg.Resolutions)-1], 31, 11},
	}
	var out [][]string
	var results []Fig9Case
	for _, c := range cases {
		params, err := mk(c.res, c.gop, c.workers)
		if err != nil {
			return nil, err
		}
		peak, err := params.Peak()
		if err != nil {
			return nil, err
		}
		series, err := params.Series(24)
		if err != nil {
			return nil, err
		}
		fc := Fig9Case{
			Label:    fmt.Sprintf("%s gop=%d workers=%d", c.res.Name(), c.gop, c.workers),
			Peak:     peak,
			Feasible: peak <= budget,
			Series:   series,
		}
		results = append(results, fc)
		out = append(out, []string{fc.Label, fmt.Sprintf("%.1fMB", float64(peak)/(1<<20)),
			fmt.Sprintf("%v", fc.Feasible)})
	}
	table(w, "Figure 9: predicted memory requirements (budget 500MB)",
		[]string{"Case", "Peak mem(x)", "fits"}, out)
	return results, nil
}

// Fig11 regenerates the slice-version speedups: the simple variant's
// knees at ceil(slices/P) steps, and the improved variant's recovery.
func (r *Runner) Fig11(w io.Writer) (simple, improved []SpeedupSeries, err error) {
	workers := workerSweep(r.cfg.MaxWorkers)
	for _, res := range r.cfg.Resolutions {
		pics, err := r.SlicePics(res, 13)
		if err != nil {
			return nil, nil, err
		}
		for _, variant := range []bool{false, true} {
			base := SimSlices(pics, 1, variant).Makespan
			name := "simple"
			if variant {
				name = "improved"
			}
			s := SpeedupSeries{Label: fmt.Sprintf("%s %s", res.Name(), name), Workers: workers}
			for _, p := range workers {
				mk := SimSlices(pics, p, variant).Makespan
				s.Speedup = append(s.Speedup, float64(base)/float64(mk))
				s.Makespan = append(s.Makespan, mk)
			}
			if variant {
				improved = append(improved, s)
			} else {
				simple = append(simple, s)
			}
		}
	}
	printSpeedups(w, "Figure 11: slice-version speedups (simple)", simple)
	printSpeedups(w, "Figure 11: slice-version speedups (improved)", improved)
	return simple, improved, nil
}

// Fig12Series is the sync/exec ratio curve of one variant.
type Fig12Series struct {
	Label   string
	Workers []int
	Ratio   []float64
}

// Fig12 regenerates the synchronization-overhead study.
func (r *Runner) Fig12(w io.Writer) ([]Fig12Series, error) {
	var series []Fig12Series
	workers := workerSweep(r.cfg.MaxWorkers)
	for _, res := range r.cfg.Resolutions {
		pics, err := r.SlicePics(res, 13)
		if err != nil {
			return nil, err
		}
		for _, variant := range []bool{false, true} {
			name := "simple"
			if variant {
				name = "improved"
			}
			s := Fig12Series{Label: fmt.Sprintf("%s %s", res.Name(), name), Workers: workers}
			for _, p := range workers {
				s.Ratio = append(s.Ratio, SimSlices(pics, p, variant).SyncRatio())
			}
			series = append(series, s)
		}
	}
	header := []string{"workers"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	var rows [][]string
	for i, p := range workers {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range series {
			row = append(row, f2(s.Ratio[i]))
		}
		rows = append(rows, row)
	}
	table(w, "Figure 12: avg sync-time/exec-time per worker", header, rows)
	return series, nil
}

// DashRow compares DSM scaling against the paper's §7.2 DASH numbers.
type DashRow struct {
	Workers        int
	SpeedupOver4   float64
	PaperReference float64
}

// Dash reproduces the §7.2 distributed-shared-memory observations:
// improved-slice speedups over one 4-processor cluster of 1.8/3.4/5.2 at
// 8/16/32 processors, limited by remote-miss latency.
func (r *Runner) Dash(w io.Writer) ([]DashRow, error) {
	res := r.cfg.Resolutions[len(r.cfg.Resolutions)-1]
	for _, cand := range r.cfg.Resolutions {
		if cand == Res704 {
			res = cand // the paper quotes 704×480
		}
	}
	pics, err := r.SlicePics(res, 13)
	if err != nil {
		return nil, err
	}
	cfg := simsched.DSMConfig{ClusterSize: 4, RemoteFactor: 0.3}
	base := simsched.SimulateSlicesDSM(pics, 4, true, cfg).Makespan
	paper := map[int]float64{8: 1.8, 16: 3.4, 32: 5.2}
	var rows []DashRow
	var out [][]string
	for _, p := range []int{8, 16, 32} {
		mk := simsched.SimulateSlicesDSM(pics, p, true, cfg).Makespan
		row := DashRow{Workers: p, SpeedupOver4: float64(base) / float64(mk), PaperReference: paper[p]}
		rows = append(rows, row)
		out = append(out, []string{fmt.Sprintf("%d", p), f2(row.SpeedupOver4), f2(row.PaperReference)})
	}
	table(w, fmt.Sprintf("§7.2 DASH model (%s, improved slice, speedup over 4 procs)", res.Name()),
		[]string{"procs", "model", "paper"}, out)
	return rows, nil
}
