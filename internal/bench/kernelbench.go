package bench

import (
	"time"

	"mpeg2par/internal/dct"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/motion"
)

// KernelBenchPoint is one (kernel, tier) microbenchmark sample.
type KernelBenchPoint struct {
	Kernel string `json:"kernel"`
	Level  string `json:"level"`
	// NsPerMB is nanoseconds per macroblock-equivalent of work: one
	// 16×16 luma prediction/average for the motion kernels, six 8×8
	// blocks (a 4:2:0 macroblock) for the IDCT.
	NsPerMB float64 `json:"ns_per_mb"`
}

// kernelLevels returns the tiers the host can actually run, lowest
// first.
func kernelLevels() []kernels.Level {
	out := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		out = append(out, kernels.LevelASM)
	}
	return out
}

// timeIt measures fn's steady-state cost by doubling iteration counts
// until the timed region exceeds ~1ms, then returns ns per call.
func timeIt(fn func()) float64 {
	fn() // warm up
	for n := 64; ; n *= 2 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		d := time.Since(t0)
		if d >= time.Millisecond || n >= 1<<20 {
			return float64(d.Nanoseconds()) / float64(n)
		}
	}
}

// KernelBench measures every dispatched reconstruction kernel at every
// supported tier through the public entry points, restoring the active
// tier afterwards. The results feed PerfRun.KernelBench: per-kernel
// ns/MB deltas between scalar, SWAR, and asm.
func KernelBench() []KernelBenchPoint {
	prev := kernels.Active()
	defer kernels.Set(prev)

	const stride = 736 // a padded 704-wide plane row
	ref := make([]uint8, stride*64)
	for i := range ref {
		ref[i] = uint8(i*7 + i>>8)
	}
	var pred, a, b motion.MBPred
	for i := range a.Y {
		a.Y[i], b.Y[i] = uint8(i), uint8(255-i)
	}
	var blk [64]int32
	for i := range blk {
		blk[i] = int32((i*97)%4096 - 2048)
	}

	kernelsUnderTest := []struct {
		name string
		fn   func()
	}{
		{"predict_copy", func() { motion.PredictBlock(pred.Y[:], 16, ref, stride, 704, 64, 8, 8, 0, 0, 16, 16) }},
		{"predict_h", func() { motion.PredictBlock(pred.Y[:], 16, ref, stride, 704, 64, 8, 8, 1, 0, 16, 16) }},
		{"predict_v", func() { motion.PredictBlock(pred.Y[:], 16, ref, stride, 704, 64, 8, 8, 0, 1, 16, 16) }},
		{"predict_hv", func() { motion.PredictBlock(pred.Y[:], 16, ref, stride, 704, 64, 8, 8, 1, 1, 16, 16) }},
		{"average_mb", func() { motion.AverageMB(&pred, &a, &b) }},
		{"idct", func() {
			for i := 0; i < 6; i++ {
				t := blk
				dct.Inverse(&t)
			}
		}},
	}

	var out []KernelBenchPoint
	for _, lvl := range kernelLevels() {
		kernels.Set(lvl)
		for _, k := range kernelsUnderTest {
			out = append(out, KernelBenchPoint{Kernel: k.name, Level: lvl.String(), NsPerMB: timeIt(k.fn)})
		}
	}
	return out
}
