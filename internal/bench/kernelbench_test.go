package bench

import (
	"testing"

	"mpeg2par/internal/kernels"
)

// TestKernelBenchShape pins the microbenchmark family's structure: every
// kernel appears at every supported tier with a positive ns/MB, and the
// active kernel level is restored afterwards.
func TestKernelBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timed microbenchmarks")
	}
	before := kernels.Active()
	pts := KernelBench()
	if after := kernels.Active(); after != before {
		t.Fatalf("KernelBench left level %v, was %v", after, before)
	}
	wantKernels := []string{"predict_copy", "predict_h", "predict_v", "predict_hv", "average_mb", "idct"}
	tiers := len(kernelLevels())
	if len(pts) != len(wantKernels)*tiers {
		t.Fatalf("%d points, want %d kernels x %d tiers", len(pts), len(wantKernels), tiers)
	}
	seen := map[string]int{}
	for _, p := range pts {
		if p.NsPerMB <= 0 {
			t.Errorf("%s/%s: non-positive ns/MB %f", p.Kernel, p.Level, p.NsPerMB)
		}
		seen[p.Kernel]++
	}
	for _, k := range wantKernels {
		if seen[k] != tiers {
			t.Errorf("kernel %s sampled %d times, want %d", k, seen[k], tiers)
		}
	}
}
