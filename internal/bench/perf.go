package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
)

// This file is the benchmark-regression harness: PerfTrajectory measures
// the real decode engines (not the deterministic simulator) on one
// reference workload and emits a structured record. Successive PRs append
// their runs to BENCH_<n>.json via `mpeg2bench -perf`, so the repository
// carries its own performance trajectory and a kernel regression shows up
// as a drop between adjacent runs of the same schema.

// PerfSchema identifies the BENCH_*.json layout.
const PerfSchema = "mpeg2par-perf/1"

// PerfConfig describes the reference workload of a perf run.
type PerfConfig struct {
	Width, Height int   // picture size (default 352x240, the paper's SIF)
	GOPSize       int   // pictures per GOP (default 13)
	Pictures      int   // stream length (default 3 GOPs)
	BitRate       int   // encoder bit rate (default 5 Mb/s)
	Workers       []int // worker counts swept per mode (default 1,2,4,8)
	// Repeats is the number of timed repetitions per point; one untimed
	// warm-up runs first and the median repetition is kept (default 3).
	// Median-of-N keeps single-shot outliers — a GC pause, a cold page —
	// from corrupting the trajectory.
	Repeats int
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.Width == 0 {
		c.Width, c.Height = 352, 240
	}
	if c.GOPSize == 0 {
		c.GOPSize = 13
	}
	if c.Pictures == 0 {
		c.Pictures = 3 * c.GOPSize
	}
	if c.BitRate == 0 {
		c.BitRate = 5_000_000
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// PerfPoint is one (mode, workers) measurement of the parallel engine.
type PerfPoint struct {
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`

	PicsPerSec float64 `json:"pics_per_sec"`
	// Speedup is relative to the sequential decoder of the same run.
	Speedup float64 `json:"speedup_vs_sequential"`

	// Per-stage time breakdown (milliseconds, median repetition).
	WallMS       float64 `json:"wall_ms"`
	ScanMS       float64 `json:"scan_ms"`
	WorkerBusyMS float64 `json:"worker_busy_ms"` // summed over workers
	WorkerWaitMS float64 `json:"worker_wait_ms"` // summed over workers

	// Auto records the scheduler's resolved choice of a ModeAuto point
	// ("gop x4"); empty for fixed modes.
	Auto string `json:"auto_choice,omitempty"`
}

// PerfRun is one complete harness execution.
type PerfRun struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler parallelism the run actually had —
	// worker goroutines beyond it time-slice one OS thread, so parallel
	// speedups are not meaningful when it is 1 (see ScalingNote).
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUFeatures lists the vector extensions detected at init
	// ("avx2", "neon", "none"); KernelLevel is the dispatch tier the run
	// decoded with, e.g. "asm(avx2)" (see internal/kernels).
	CPUFeatures string `json:"cpu_features"`
	KernelLevel string `json:"kernel_level"`
	// ScalingNote, when non-empty, flags that the multi-worker points of
	// this run measure scheduling overhead only, not parallel speedup
	// (GOMAXPROCS==1 hosts). Readers of the trajectory must not compare
	// Speedup across runs with different notes.
	ScalingNote string `json:"scaling_note,omitempty"`

	Stream struct {
		Width    int `json:"width"`
		Height   int `json:"height"`
		GOPSize  int `json:"gop_size"`
		Pictures int `json:"pictures"`
		Bytes    int `json:"bytes"`
	} `json:"stream"`

	// Sequential decoder (the P=1 oracle): the trajectory headline.
	SequentialPicsPerSec float64 `json:"sequential_pics_per_sec"`
	SequentialMSPerPic   float64 `json:"sequential_ms_per_picture"`

	// Work is the reconstruction workload of the reference stream (from
	// decoder.WorkStats), so later runs can normalize pics/s by how many
	// macroblocks were motion-compensated or bidirectionally averaged —
	// kernel PRs shift the per-MB cost, not the mix. A pointer so that
	// rewriting a BENCH file leaves pre-schema runs without the field.
	Work *PerfWork `json:"work,omitempty"`

	// KernelBench is the per-kernel microbenchmark family: nanoseconds
	// per macroblock-equivalent of work for each reconstruction kernel at
	// every kernel tier the host supports (scalar / swar / asm). Deltas
	// between tiers isolate kernel regressions from scheduler changes. A
	// pointer so pre-schema runs keep no empty field.
	KernelBench []KernelBenchPoint `json:"kernel_bench,omitempty"`

	// Service is the multi-stream load-harness measurement (mpeg2bench
	// -exp service / mpeg2load): a fleet point rather than a mode
	// trajectory, so runs carrying it usually leave Points empty.
	Service *ServicePoint `json:"service,omitempty"`

	// VLDSplit is the intra-slice split-decode measurement (mpeg2bench
	// -exp vldsplit): profiled segment costs replayed in the simulator,
	// plus the verify/fallback counters. Runs carrying it leave Points
	// empty, like Service.
	VLDSplit *VLDSplitPoint `json:"vldsplit,omitempty"`

	// Deadline is the EDF-vs-fair miss-rate study (mpeg2bench -exp
	// deadline): per-load cells for both dispatch arms plus the headline
	// fair/EDF miss-rate ratio at the heaviest load. Runs carrying it
	// leave Points empty, like Service.
	Deadline *DeadlinePoint `json:"deadline,omitempty"`

	Points []PerfPoint `json:"points"`
}

// PerfWork is the decoded-workload block of a PerfRun.
type PerfWork struct {
	MBs         int `json:"mbs"`
	IntraBlocks int `json:"intra_blocks"`
	CodedBlocks int `json:"coded_blocks"`
	Coefs       int `json:"coefs"`
	PredMBs     int `json:"pred_mbs"`
	BidirMBs    int `json:"bidir_mbs"`
}

// PerfFile is the on-disk BENCH_<n>.json document.
type PerfFile struct {
	Schema string    `json:"schema"`
	Runs   []PerfRun `json:"runs"`
}

// PerfTrajectory encodes the reference stream and measures the sequential
// decoder plus every mode x workers point of the parallel engine.
func PerfTrajectory(cfg PerfConfig, label string) (*PerfRun, error) {
	cfg = cfg.withDefaults()
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width:     cfg.Width,
		Height:    cfg.Height,
		Pictures:  cfg.Pictures,
		GOPSize:   cfg.GOPSize,
		BitRate:   cfg.BitRate,
		FrameRate: 30,
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: perf stream: %w", err)
	}

	run := &PerfRun{
		Label:       label,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: kernels.CPUFeatures(),
		KernelLevel: kernels.Describe(),
	}
	if run.GOMAXPROCS == 1 {
		run.ScalingNote = "GOMAXPROCS=1: multi-worker points measure scheduling overhead, not parallel speedup"
	}
	run.Stream.Width = cfg.Width
	run.Stream.Height = cfg.Height
	run.Stream.GOPSize = cfg.GOPSize
	run.Stream.Pictures = cfg.Pictures
	run.Stream.Bytes = len(enc.Data)

	// Sequential baseline: median of Repeats full-stream decodes (plus
	// one untimed warm-up pass for code and allocator warmth).
	_, work, err := decodeSequential(enc.Data)
	if err != nil {
		return nil, err
	}
	run.Work = &PerfWork{
		MBs:         work.MBs,
		IntraBlocks: work.IntraBlocks,
		CodedBlocks: work.CodedBlocks,
		Coefs:       work.Coefs,
		PredMBs:     work.PredMBs,
		BidirMBs:    work.BidirMBs,
	}
	times := make([]time.Duration, 0, cfg.Repeats)
	for i := 0; i < cfg.Repeats; i++ {
		d, _, err := decodeSequential(enc.Data)
		if err != nil {
			return nil, err
		}
		times = append(times, d)
	}
	med := medianDuration(times)
	run.SequentialPicsPerSec = safeRate(float64(cfg.Pictures), med)
	run.SequentialMSPerPic = safeDiv(med.Seconds()*1e3, float64(cfg.Pictures))

	run.KernelBench = KernelBench()

	for _, mode := range []core.Mode{core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved, core.ModeAuto} {
		for _, w := range cfg.Workers {
			// One untimed warm-up, then the median-of-Repeats run.
			if _, err := core.Decode(enc.Data, core.Options{Mode: mode, Workers: w}); err != nil {
				return nil, fmt.Errorf("bench: perf %s workers=%d: %w", mode, w, err)
			}
			stats := make([]*core.Stats, 0, cfg.Repeats)
			for i := 0; i < cfg.Repeats; i++ {
				st, err := core.Decode(enc.Data, core.Options{Mode: mode, Workers: w})
				if err != nil {
					return nil, fmt.Errorf("bench: perf %s workers=%d: %w", mode, w, err)
				}
				stats = append(stats, st)
			}
			sort.Slice(stats, func(i, j int) bool { return stats[i].Wall < stats[j].Wall })
			st := stats[(len(stats)-1)/2]
			pt := PerfPoint{
				Mode:       mode.String(),
				Workers:    w,
				PicsPerSec: st.PicturesPerSecond(),
				Speedup:    safeDiv(st.PicturesPerSecond(), run.SequentialPicsPerSec),
				WallMS:     ms(st.Wall),
				ScanMS:     ms(st.ScanTime),
			}
			if st.Auto != nil {
				pt.Auto = fmt.Sprintf("%s x%d", st.Mode, st.Workers)
			}
			for _, ws := range st.WorkerStats {
				pt.WorkerBusyMS += ms(ws.Busy)
				pt.WorkerWaitMS += ms(ws.Wait)
			}
			run.Points = append(run.Points, pt)
		}
	}
	return run, nil
}

// medianDuration returns the median (lower middle for even counts).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

func decodeSequential(data []byte) (time.Duration, decoder.WorkStats, error) {
	t0 := time.Now()
	d, err := decoder.New(data)
	if err != nil {
		return 0, decoder.WorkStats{}, err
	}
	if _, err := d.All(); err != nil {
		return 0, decoder.WorkStats{}, err
	}
	return time.Since(t0), d.Work, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// AppendPerfRun loads path (if it exists), appends run, and writes the
// file back. A schema mismatch is an error rather than a silent rewrite.
func AppendPerfRun(path string, run *PerfRun) (*PerfFile, error) {
	pf := &PerfFile{Schema: PerfSchema}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, pf); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
		}
		if pf.Schema != PerfSchema {
			return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, pf.Schema, PerfSchema)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	pf.Runs = append(pf.Runs, *run)
	out, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	return pf, nil
}
