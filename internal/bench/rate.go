package bench

import "time"

// safeRate returns n per second of d, or 0 when d is not positive.
// Every rate written into a JSON report must pass through here (or an
// equivalent guard): a zero-duration measurement would otherwise yield
// +Inf or NaN, which encoding/json refuses to marshal and which no
// downstream table can render.
func safeRate(n float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return n / d.Seconds()
}

// safeDiv returns n/d, or 0 when d is zero (same rationale as safeRate
// for dimensionless ratios such as speedups).
func safeDiv(n, d float64) float64 {
	if d == 0 {
		return 0
	}
	return n / d
}
