package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Experiments maps experiment ids to their drivers. Every table and
// figure of the paper's evaluation appears here (DESIGN.md's index).
var Experiments = map[string]func(*Runner, io.Writer) error{
	"table1":        func(r *Runner, w io.Writer) error { _, err := r.Table1(w); return err },
	"table2":        func(r *Runner, w io.Writer) error { _, err := r.Table2(w); return err },
	"table3":        func(r *Runner, w io.Writer) error { _, err := r.Table34(w); return err },
	"table4":        func(r *Runner, w io.Writer) error { _, err := r.Table34(w); return err },
	"fig5":          func(r *Runner, w io.Writer) error { _, err := r.Fig5(w); return err },
	"fig6":          func(r *Runner, w io.Writer) error { _, err := r.Fig6(w); return err },
	"fig7":          func(r *Runner, w io.Writer) error { _, err := r.Fig7(w); return err },
	"fig8":          func(r *Runner, w io.Writer) error { _, err := r.Fig8(w); return err },
	"fig9":          func(r *Runner, w io.Writer) error { _, err := r.Fig9(w); return err },
	"fig11":         func(r *Runner, w io.Writer) error { _, _, err := r.Fig11(w); return err },
	"fig12":         func(r *Runner, w io.Writer) error { _, err := r.Fig12(w); return err },
	"fig13":         func(r *Runner, w io.Writer) error { _, err := r.Fig13(w); return err },
	"fig14":         func(r *Runner, w io.Writer) error { _, err := r.Fig14(w); return err },
	"fig15":         func(r *Runner, w io.Writer) error { _, err := r.Fig15(w); return err },
	"locality":      func(r *Runner, w io.Writer) error { _, err := r.LocalityStudy(w); return err },
	"dash":          func(r *Runner, w io.Writer) error { _, err := r.Dash(w); return err },
	"ablation-sync": func(r *Runner, w io.Writer) error { _, err := r.AblationSync(w); return err },
	"ablation-dsm":  func(r *Runner, w io.Writer) error { _, err := r.AblationDSM(w); return err },
	"ablation-granularity": func(r *Runner, w io.Writer) error {
		_, err := r.AblationGranularity(w)
		return err
	},
}

// order lists experiments in the paper's presentation order.
var order = []string{
	"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig11", "fig12", "table4", "fig13", "fig14", "fig15", "locality", "dash",
	"ablation-sync", "ablation-dsm", "ablation-granularity",
}

// Names returns the known experiment ids, ordered.
func Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range order {
		if !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range Experiments {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Run executes one experiment by id.
func (r *Runner) Run(id string, w io.Writer) error {
	fn, ok := Experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Names())
	}
	return fn(r, w)
}

// All runs every experiment in presentation order, skipping the table4
// alias of table3.
func (r *Runner) All(w io.Writer) error {
	seen := map[string]bool{"table4": true} // same driver as table3
	for _, id := range order {
		if seen[id] {
			continue
		}
		seen[id] = true
		if err := r.Run(id, w); err != nil {
			return fmt.Errorf("bench: %s: %w", id, err)
		}
	}
	return nil
}

// ResultsJSON maps experiment ids to drivers returning their structured
// results, for machine-readable output.
var ResultsJSON = map[string]func(*Runner) (any, error){
	"table1": func(r *Runner) (any, error) { return r.Table1(io.Discard) },
	"table2": func(r *Runner) (any, error) { return r.Table2(io.Discard) },
	"table3": func(r *Runner) (any, error) { return r.Table34(io.Discard) },
	"table4": func(r *Runner) (any, error) { return r.Table34(io.Discard) },
	"fig5":   func(r *Runner) (any, error) { return r.Fig5(io.Discard) },
	"fig6":   func(r *Runner) (any, error) { return r.Fig6(io.Discard) },
	"fig7":   func(r *Runner) (any, error) { return r.Fig7(io.Discard) },
	"fig8":   func(r *Runner) (any, error) { return r.Fig8(io.Discard) },
	"fig9":   func(r *Runner) (any, error) { return r.Fig9(io.Discard) },
	"fig11": func(r *Runner) (any, error) {
		simple, improved, err := r.Fig11(io.Discard)
		return map[string]any{"simple": simple, "improved": improved}, err
	},
	"fig12":         func(r *Runner) (any, error) { return r.Fig12(io.Discard) },
	"fig13":         func(r *Runner) (any, error) { return r.Fig13(io.Discard) },
	"fig14":         func(r *Runner) (any, error) { return r.Fig14(io.Discard) },
	"fig15":         func(r *Runner) (any, error) { return r.Fig15(io.Discard) },
	"locality":      func(r *Runner) (any, error) { return r.LocalityStudy(io.Discard) },
	"dash":          func(r *Runner) (any, error) { return r.Dash(io.Discard) },
	"ablation-sync": func(r *Runner) (any, error) { return r.AblationSync(io.Discard) },
	"ablation-dsm":  func(r *Runner) (any, error) { return r.AblationDSM(io.Discard) },
	"ablation-granularity": func(r *Runner) (any, error) {
		return r.AblationGranularity(io.Discard)
	},
}

// RunJSON executes one experiment and writes its structured result as
// JSON.
func (r *Runner) RunJSON(id string, w io.Writer) error {
	fn, ok := ResultsJSON[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Names())
	}
	res, err := fn(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": id, "results": res})
}

// AllJSON runs every experiment, emitting one JSON document.
func (r *Runner) AllJSON(w io.Writer) error {
	out := map[string]any{}
	for _, id := range Names() {
		if id == "table4" {
			continue // alias of table3
		}
		res, err := ResultsJSON[id](r)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", id, err)
		}
		out[id] = res
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
