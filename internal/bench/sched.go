package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/simsched"
)

// SchedCompare measures what the cost-model scheduler's packing buys on a
// stream with a skewed cost distribution. Per-task costs are profiled
// from the real single-worker decode and replayed in the deterministic
// simulator under P workers with the task queue packed in stream order
// (FIFO) versus longest-first by byte size (LPT) — byte order, not
// measured-cost order, because bytes are the proxy the real scheduler
// packs by. A live traced decode of every variant runs alongside and its
// Timeline.Summary figures are reported too; on a single-CPU host those
// only measure time-slicing, so the simulated columns are the
// authoritative ones (the same reason the paper used TangoLite beside its
// SGI Challenge).

// SchedConfig describes the packing-comparison workload.
type SchedConfig struct {
	Width, Height int // picture size (default 704x480, the paper's mid resolution)
	GOPSize       int // pictures per GOP (default 6, so GOPs outnumber workers)
	Pictures      int // stream length (default 6 GOPs)
	Workers       int // worker count (default 4)
	Repeats       int // timed repetitions of the live decodes, median kept (default 3)
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.Width == 0 {
		c.Width, c.Height = 704, 480
	}
	if c.GOPSize == 0 {
		c.GOPSize = 6
	}
	if c.Pictures == 0 {
		c.Pictures = 6 * c.GOPSize
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// SchedPoint is one (mode, packing) comparison row.
type SchedPoint struct {
	Mode    string `json:"mode"`
	Packing string `json:"packing"`
	Workers int    `json:"workers"`

	// Simulated execution of the profiled task costs (authoritative on a
	// single-CPU host).
	SimPicsPerSec float64 `json:"sim_pics_per_sec"`
	SimMakespanMS float64 `json:"sim_makespan_ms"`
	SimImbalance  float64 `json:"sim_imbalance"`

	// Live traced decode (median of Repeats), from Timeline.Summary.
	PicsPerSec      float64 `json:"pics_per_sec"`
	WallMS          float64 `json:"wall_ms"`
	ImbalanceFactor float64 `json:"imbalance_factor"`
	SyncOverhead    float64 `json:"sync_overhead"`

	// Auto records ModeAuto's resolved choice; empty for fixed modes.
	Auto string `json:"auto_choice,omitempty"`
}

// SchedResult is one complete packing comparison.
type SchedResult struct {
	Stream struct {
		Width    int `json:"width"`
		Height   int `json:"height"`
		GOPSize  int `json:"gop_size"`
		Pictures int `json:"pictures"`
		Bytes    int `json:"bytes"`
	} `json:"stream"`
	// SliceSkew and GOPSkew are max/mean task bytes — how lopsided the
	// queue is that packing has to balance. CostSkew is max/mean of the
	// profiled (real) per-GOP decode costs.
	SliceSkew float64      `json:"slice_skew"`
	GOPSkew   float64      `json:"gop_skew"`
	CostSkew  float64      `json:"cost_skew"`
	Points    []SchedPoint `json:"points"`
}

// skewSource wraps the reference scene and overlays frame-varying random
// noise on a bottom band whose height grows over the stream: noise that
// moves with n defeats both intra prediction and motion compensation, so
// a noisy macroblock row costs several times a clean one to decode, and
// the per-picture (and per-GOP) decode cost ramps up several-fold from
// the first GOP to the last. Ramping the band height rather than the
// noise amplitude matters: amplitude saturates the VLD long before it
// moves the reconstruction cost, while extra noisy rows scale the real
// work linearly. The result is the adversarial queue for FIFO packing —
// the heavy tasks sit at the end of stream order, so a worker starts them
// last and straggles — and exactly the one LPT exists to fix.
type skewSource struct {
	src      *frame.Synth
	pictures int // stream length, for the band-height ramp
}

func (s *skewSource) Frame(n int) *frame.Frame {
	f := s.src.Frame(n)
	// Band ramp: the first picture is clean, the last is ~90% noise.
	bandFrac := 0.9 * float64(n) / float64(s.pictures-1)
	start := int(float64(f.Height) * (1 - bandFrac))
	for y := start; y < f.CodedH; y++ {
		row := f.Y[y*f.YStride : y*f.YStride+f.CodedW]
		for x := range row {
			h := (uint64(y)*0x9E3779B97F4A7C15 + uint64(x)*0xBF58476D1CE4E5B9 + uint64(n)*0x94D049BB133111EB)
			h ^= h >> 29
			h *= 0xD6E8FEB86659FD93
			h ^= h >> 32
			row[x] = uint8(h)
		}
	}
	return f
}

// SchedCompare encodes the skewed stream, profiles its real task costs,
// and compares FIFO against LPT packing in the simulator and in live
// traced decodes, plus a ModeAuto row.
func SchedCompare(cfg SchedConfig) (*SchedResult, error) {
	cfg = cfg.withDefaults()
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width:     cfg.Width,
		Height:    cfg.Height,
		Pictures:  cfg.Pictures,
		GOPSize:   cfg.GOPSize,
		BitRate:   12_000_000,
		FrameRate: 30,
	}, &skewSource{src: frame.NewSynth(cfg.Width, cfg.Height), pictures: cfg.Pictures})
	if err != nil {
		return nil, fmt.Errorf("bench: sched stream: %w", err)
	}
	m, err := core.Scan(enc.Data)
	if err != nil {
		return nil, fmt.Errorf("bench: sched scan: %w", err)
	}

	res := &SchedResult{}
	res.Stream.Width = cfg.Width
	res.Stream.Height = cfg.Height
	res.Stream.GOPSize = cfg.GOPSize
	res.Stream.Pictures = cfg.Pictures
	res.Stream.Bytes = len(enc.Data)

	// Task byte sizes — what the scheduler packs by.
	gopBytes := make([]int64, len(m.GOPs))
	var sliceBytes [][]int64 // per picture in decode order
	for g := range m.GOPs {
		gopBytes[g] = int64(m.GOPs[g].End - m.GOPs[g].Offset)
		for pi := range m.GOPs[g].Pictures {
			pr := &m.GOPs[g].Pictures[pi]
			sb := make([]int64, len(pr.Slices))
			for si := range pr.Slices {
				sb[si] = int64(pr.Slices[si].Bytes)
			}
			sliceBytes = append(sliceBytes, sb)
		}
	}
	res.GOPSkew = skewOf(gopBytes)
	var flat []int64
	for _, sb := range sliceBytes {
		flat = append(flat, sb...)
	}
	res.SliceSkew = skewOf(flat)

	// Profile real task costs at one worker (two passes, per-task min —
	// same discipline as the figure experiments).
	gopTasks, err := profileGOPTasks(enc.Data, m)
	if err != nil {
		return nil, err
	}
	costs := make([]int64, len(gopTasks))
	for i, t := range gopTasks {
		costs[i] = int64(t.Cost)
	}
	res.CostSkew = skewOf(costs)
	slicePics, err := profileSlicePics(enc.Data, cfg.Pictures)
	if err != nil {
		return nil, err
	}

	type variant struct {
		mode    core.Mode
		packing core.Packing
	}
	variants := []variant{
		{core.ModeGOP, core.PackFIFO},
		{core.ModeGOP, core.PackLPT},
		{core.ModeSliceImproved, core.PackFIFO},
		{core.ModeSliceImproved, core.PackLPT},
		{core.ModeAuto, core.PackLPT},
	}

	// Simulated executions: pack by bytes, replay measured costs.
	simulate := func(mode core.Mode, packing core.Packing, workers int) simsched.Result {
		lpt := packing == core.PackLPT
		if mode == core.ModeGOP {
			return simsched.SimulateGOP(orderGOPs(gopTasks, gopBytes, lpt), workers)
		}
		return simsched.SimulateSlices(orderSlices(slicePics, sliceBytes, lpt), workers, true)
	}

	type rep struct {
		st  *core.Stats
		sum *obs.Summary
	}
	reps := make([][]rep, len(variants))
	// Live rounds are interleaved across variants (one warm-up round,
	// then the timed rounds) so slow drift — CPU frequency ramping, cache
	// warmth — biases every variant equally instead of whichever ran
	// first.
	for round := 0; round <= cfg.Repeats; round++ {
		for vi, v := range variants {
			opt := core.Options{Mode: v.mode, Workers: cfg.Workers, Packing: v.packing}
			if round > 0 {
				opt.Obs = obs.New(0)
			}
			st, err := core.Decode(enc.Data, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: sched %s/%s: %w", v.mode, v.packing, err)
			}
			if round > 0 {
				reps[vi] = append(reps[vi], rep{st, opt.Obs.Snapshot().Summary()})
			}
		}
	}
	for vi, v := range variants {
		rs := reps[vi]
		sort.Slice(rs, func(i, j int) bool { return rs[i].st.Wall < rs[j].st.Wall })
		r := rs[(len(rs)-1)/2]
		pt := SchedPoint{
			Mode:            v.mode.String(),
			Packing:         v.packing.String(),
			Workers:         cfg.Workers,
			PicsPerSec:      r.st.PicturesPerSecond(),
			WallMS:          ms(r.st.Wall),
			ImbalanceFactor: r.sum.ImbalanceFactor,
			SyncOverhead:    r.sum.SyncOverhead,
		}
		simMode, simWorkers := v.mode, cfg.Workers
		if r.st.Auto != nil {
			pt.Auto = fmt.Sprintf("%s x%d", r.st.Mode, r.st.Workers)
			simMode, simWorkers = r.st.Mode, r.st.Workers
		}
		if simMode == core.ModeGOP || simMode == core.ModeSliceImproved {
			sr := simulate(simMode, v.packing, simWorkers)
			pt.SimMakespanMS = ms(sr.Makespan)
			pt.SimPicsPerSec = safeRate(float64(cfg.Pictures), sr.Makespan)
			if avg := sr.AvgBusy(); avg > 0 {
				pt.SimImbalance = float64(sr.MaxBusy()) / float64(avg)
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// profileGOPTasks measures per-GOP decode costs at one worker (two
// passes, per-task minimum, stream-order packing — the discipline the
// simulator assumes).
func profileGOPTasks(data []byte, m *core.StreamMap) ([]simsched.GOPTask, error) {
	st, err := core.Decode(data, core.Options{Mode: core.ModeGOP, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	st2, err := core.Decode(data, core.Options{Mode: core.ModeGOP, Workers: 1, Profile: true, Packing: core.PackFIFO})
	if err != nil {
		return nil, err
	}
	tasks := make([]simsched.GOPTask, len(st.GOPCosts))
	for i, c := range st.GOPCosts {
		cost := c.Cost
		if c2 := st2.GOPCosts[i].Cost; c2 < cost {
			cost = c2
		}
		tasks[i] = simsched.GOPTask{Cost: cost, Pictures: len(m.GOPs[i].Pictures)}
	}
	return tasks, nil
}

// orderGOPs returns tasks in stream order or longest-first by byte size.
func orderGOPs(tasks []simsched.GOPTask, bytes []int64, lpt bool) []simsched.GOPTask {
	out := append([]simsched.GOPTask(nil), tasks...)
	if !lpt {
		return out
	}
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return bytes[idx[a]] > bytes[idx[b]] })
	for i, j := range idx {
		out[i] = tasks[j]
	}
	return out
}

// orderSlices reorders each picture's slice costs longest-first by byte
// size (or returns the stream-order profile unchanged).
func orderSlices(pics []simsched.SimPicture, sliceBytes [][]int64, lpt bool) []simsched.SimPicture {
	if !lpt {
		return pics
	}
	out := append([]simsched.SimPicture(nil), pics...)
	for k := range out {
		sb := sliceBytes[k%len(sliceBytes)]
		idx := make([]int, len(out[k].SliceCosts))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return sb[idx[a]] > sb[idx[b]] })
		costs := make([]time.Duration, len(idx))
		for i, j := range idx {
			costs[i] = out[k].SliceCosts[j]
		}
		out[k].SliceCosts = costs
	}
	return out
}

// skewOf returns max/mean of vs (0 for an empty or all-zero input).
func skewOf(vs []int64) float64 {
	var max, sum int64
	for _, v := range vs {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(vs)) / float64(sum)
}

// WriteText renders the comparison for a terminal.
func (r *SchedResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "packing comparison: %dx%d, %d pictures, %d-picture GOPs, %d bytes\n",
		r.Stream.Width, r.Stream.Height, r.Stream.Pictures, r.Stream.GOPSize, r.Stream.Bytes)
	fmt.Fprintf(w, "  skew (max/mean): GOP bytes %.2fx, slice bytes %.2fx, profiled GOP cost %.2fx\n",
		r.GOPSkew, r.SliceSkew, r.CostSkew)
	fmt.Fprintf(w, "  %-15s %-7s %3s  %s  %s\n",
		"mode", "packing", "w", "| sim pics/s  makespan  imbalance", "| live pics/s  imbalance   sync")
	for _, pt := range r.Points {
		auto := ""
		if pt.Auto != "" {
			auto = "  -> " + pt.Auto
		}
		fmt.Fprintf(w, "  %-15s %-7s %3d  | %10.1f %8.1fms %9.3f  | %11.1f %10.3f %5.1f%%%s\n",
			pt.Mode, pt.Packing, pt.Workers,
			pt.SimPicsPerSec, pt.SimMakespanMS, pt.SimImbalance,
			pt.PicsPerSec, pt.ImbalanceFactor, 100*pt.SyncOverhead, auto)
	}
}

// WriteJSON emits the structured comparison.
func (r *SchedResult) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(r)
}
