package bench

import "testing"

// TestSchedCompareSmoke runs the packing comparison on a small skewed
// stream and checks the property the adaptive scheduler is built on: in
// the deterministic replay of profiled costs, LPT packing never loses to
// FIFO on GOP-queue makespan or load imbalance (the live columns are
// reported, not asserted — on a single-CPU host they only measure
// time-slicing).
func TestSchedCompareSmoke(t *testing.T) {
	res, err := SchedCompare(SchedConfig{
		Width: 352, Height: 240, GOPSize: 4, Pictures: 24, Workers: 4, Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GOPSkew <= 1 || res.SliceSkew <= 1 {
		t.Fatalf("skew not measured: gop %.2f, slice %.2f", res.GOPSkew, res.SliceSkew)
	}
	pts := map[string]SchedPoint{}
	for _, pt := range res.Points {
		pts[pt.Mode+"/"+pt.Packing] = pt
		if pt.PicsPerSec <= 0 || pt.WallMS <= 0 {
			t.Fatalf("%s/%s: live decode not measured: %+v", pt.Mode, pt.Packing, pt)
		}
	}
	fifo, ok := pts["gop/fifo"]
	if !ok {
		t.Fatal("missing gop/fifo point")
	}
	lpt, ok := pts["gop/lpt"]
	if !ok {
		t.Fatal("missing gop/lpt point")
	}
	if fifo.SimMakespanMS <= 0 || lpt.SimMakespanMS <= 0 {
		t.Fatalf("simulated makespans not measured: fifo %.2f, lpt %.2f",
			fifo.SimMakespanMS, lpt.SimMakespanMS)
	}
	// Small slack absorbs profiling jitter; on the ramped stream LPT's
	// real margin is far larger.
	if lpt.SimMakespanMS > fifo.SimMakespanMS*1.05 {
		t.Fatalf("LPT simulated makespan %.2fms worse than FIFO %.2fms",
			lpt.SimMakespanMS, fifo.SimMakespanMS)
	}
	if lpt.SimImbalance > fifo.SimImbalance*1.05 {
		t.Fatalf("LPT simulated imbalance %.3f worse than FIFO %.3f",
			lpt.SimImbalance, fifo.SimImbalance)
	}
	auto, ok := pts["auto/lpt"]
	if !ok {
		t.Fatal("missing auto point")
	}
	if auto.Auto == "" {
		t.Fatal("auto point did not record its resolved choice")
	}
	t.Logf("gop: fifo %.1fms/%.3f vs lpt %.1fms/%.3f (simulated makespan/imbalance); auto -> %s",
		fifo.SimMakespanMS, fifo.SimImbalance, lpt.SimMakespanMS, lpt.SimImbalance, auto.Auto)
}
