package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/server"
)

// ServiceConfig shapes the multi-stream load harness: N identical
// synthetic streams pushed through one decode service at once,
// deliberately past pool capacity.
type ServiceConfig struct {
	Workers         int // pool size (default runtime.NumCPU())
	Streams         int // concurrent streams (default 64)
	PriorityClasses int // streams assigned round-robin to classes 0..n-1 (default 2)

	// Per-stream synthetic source (defaults 48x32, 16 pictures, GOP 4 —
	// small enough that a 64-stream sweep stays in CI budget).
	Width, Height, Pictures, GOPSize int

	Deadline    time.Duration // per-frame budget (default 250ms)
	MaxInFlight int           // scan-ahead bound per stream (default 2)

	// SinkDelay is an artificial per-frame delivery cost. Zero is fine on
	// slow hosts; on fast ones a small delay keeps the pool saturated so
	// the run actually exercises the overload machinery.
	SinkDelay time.Duration

	// Dispatch selects the pool's task ordering (auto / fair / edf); the
	// zero value is DispatchAuto.
	Dispatch server.DispatchPolicy
	// DisableSlackActions freezes the per-frame slack actions (the
	// baseline arm of the deadline comparison).
	DisableSlackActions bool
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Streams <= 0 {
		c.Streams = 64
	}
	if c.PriorityClasses <= 0 {
		c.PriorityClasses = 2
	}
	if c.Width <= 0 {
		c.Width = 48
	}
	if c.Height <= 0 {
		c.Height = 32
	}
	if c.Pictures <= 0 {
		c.Pictures = 16
	}
	if c.GOPSize <= 0 {
		c.GOPSize = 4
	}
	if c.Deadline <= 0 {
		c.Deadline = 250 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	return c
}

// ServicePoint is one service-load measurement, recorded under
// PerfRun.Service in BENCH_<n>.json.
type ServicePoint struct {
	Workers         int    `json:"workers"`
	Streams         int    `json:"streams"`
	PriorityClasses int    `json:"priority_classes"`
	Dispatch        string `json:"dispatch,omitempty"`

	WallMS              float64 `json:"wall_ms"`
	AggregatePicsPerSec float64 `json:"aggregate_pics_per_sec"`
	LatencyP50MS        float64 `json:"frame_latency_p50_ms"`
	LatencyP99MS        float64 `json:"frame_latency_p99_ms"`

	// FairnessRatio is max/min per-stream throughput within a priority
	// class, worst class kept (1.0 = perfectly even service).
	FairnessRatio float64 `json:"fairness_max_min_ratio"`

	ShedBPictures    int   `json:"shed_b_pictures"`
	ShedRefPictures  int   `json:"shed_ref_pictures"`
	DegradedPictures int   `json:"degraded_pictures"`
	DeadlineMisses   int64 `json:"deadline_misses"`
	SlackSheds       int64 `json:"slack_sheds"`
	Assists          int64 `json:"assists"`
	Rejected         int64 `json:"rejected"`
	Pauses           int64 `json:"pauses"`
	Wedged           int64 `json:"wedged"`
	MaxRung          int   `json:"max_rung"`
}

// ServiceStreamLine is one stream's line in the per-stream report.
type ServiceStreamLine struct {
	ID         int     `json:"id"`
	Priority   int     `json:"priority"`
	PicsPerSec float64 `json:"pics_per_sec"`
	P50MS      float64 `json:"latency_p50_ms"`
	P99MS      float64 `json:"latency_p99_ms"`
	Misses     int     `json:"deadline_misses"`
	Shed       int     `json:"shed_pictures"`
	Paused     int     `json:"paused"`
}

// ServiceResult is the full load-harness outcome.
type ServiceResult struct {
	Point      ServicePoint        `json:"point"`
	PerStream  []ServiceStreamLine `json:"per_stream"`
	TraceNote  string              `json:"trace_note"`
	lastErrors []error
}

// ServiceLoad runs the multi-stream overload harness against the real
// service: every stream must complete (no wedges, no leaks), and the
// per-stream obs lanes must carry each stream's admission record and
// export to a valid Chrome trace — the same invariants the `make
// service` gate asserts under the race detector.
func ServiceLoad(cfg ServiceConfig) (*ServiceResult, error) {
	cfg = cfg.withDefaults()
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width: cfg.Width, Height: cfg.Height, Pictures: cfg.Pictures,
		GOPSize: cfg.GOPSize, RepeatSequenceHeader: true,
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: service stream: %w", err)
	}

	tr := obs.New(0)
	srv := server.NewServer(server.Config{
		Workers: cfg.Workers, MaxStreams: cfg.Streams, QueueDepth: cfg.Streams,
		DefaultDemand:       0.01, // overload on purpose: admit everyone
		Tick:                5 * time.Millisecond,
		PauseBase:           10 * time.Millisecond,
		Dispatch:            cfg.Dispatch,
		DisableSlackActions: cfg.DisableSlackActions,
		Obs:                 tr,
	})

	// The ladder is only visible between ticks; sample its high-water
	// mark while the load runs.
	maxRung := 0
	stopRung := make(chan struct{})
	var rungWG sync.WaitGroup
	rungWG.Add(1)
	go func() {
		defer rungWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopRung:
				return
			case <-tick.C:
				if r := srv.Rung(); r > maxRung {
					maxRung = r
				}
			}
		}
	}()

	type result struct {
		ss  *server.StreamStats
		err error
	}
	start := make(chan struct{})
	results := make(chan result, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		prio := i % cfg.PriorityClasses
		go func(prio int) {
			<-start
			var sink func(*frame.Frame)
			if cfg.SinkDelay > 0 {
				sink = func(*frame.Frame) { time.Sleep(cfg.SinkDelay) }
			}
			ss, err := srv.Decode(context.Background(), bytes.NewReader(enc.Data), server.StreamConfig{
				Priority: prio, Resilience: core.ConcealSlice,
				Deadline: cfg.Deadline, MaxInFlight: cfg.MaxInFlight, Sink: sink,
			})
			results <- result{ss, err}
		}(prio)
	}
	t0 := time.Now()
	close(start)

	res := &ServiceResult{}
	var all []*server.StreamStats
	var allLats []time.Duration
	totalPics := 0
	for i := 0; i < cfg.Streams; i++ {
		r := <-results
		if r.err != nil {
			res.lastErrors = append(res.lastErrors, r.err)
			continue
		}
		all = append(all, r.ss)
		totalPics += r.ss.Stats.Displayed
		allLats = append(allLats, r.ss.Latencies...)
	}
	wall := time.Since(t0)
	close(stopRung)
	rungWG.Wait()
	m := srv.Metrics()
	srv.Close()

	if len(res.lastErrors) > 0 {
		return nil, fmt.Errorf("bench: %d of %d streams failed under load, first: %w",
			len(res.lastErrors), cfg.Streams, res.lastErrors[0])
	}
	for _, ss := range all {
		if ss.Stats.Displayed != ss.Stats.Pictures {
			return nil, fmt.Errorf("bench: stream %d displayed %d of %d pictures", ss.ID, ss.Stats.Displayed, ss.Stats.Pictures)
		}
		if ss.Stats.LeakedFrameBytes != 0 {
			return nil, fmt.Errorf("bench: stream %d leaked %d frame bytes", ss.ID, ss.Stats.LeakedFrameBytes)
		}
	}

	// Per-stream report and per-class fairness.
	classTP := map[int][]float64{}
	pt := ServicePoint{
		Workers: cfg.Workers, Streams: cfg.Streams, PriorityClasses: cfg.PriorityClasses,
		Dispatch:            cfg.Dispatch.String(),
		WallMS:              ms(wall),
		AggregatePicsPerSec: safeRate(float64(totalPics), wall),
		DeadlineMisses:      m.Misses,
		SlackSheds:          m.SlackSheds,
		Assists:             m.Assists,
		Rejected:            m.Rejected,
		Pauses:              m.Pauses,
		Wedged:              m.Wedged,
		MaxRung:             maxRung,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	for _, ss := range all {
		st := ss.Stats
		tp := safeRate(float64(st.Displayed), st.Wall)
		classTP[ss.Priority] = append(classTP[ss.Priority], tp)
		pt.ShedBPictures += st.Shed.BPictures
		pt.ShedRefPictures += st.Shed.RefPictures
		pt.DegradedPictures += st.Shed.DegradedPictures
		res.PerStream = append(res.PerStream, ServiceStreamLine{
			ID: ss.ID, Priority: ss.Priority, PicsPerSec: tp,
			P50MS: ms(ss.LatencyP50()), P99MS: ms(ss.LatencyP99()),
			Misses: ss.DeadlineMisses, Shed: st.Shed.Total() + st.Shed.DegradedPictures,
			Paused: ss.Paused,
		})
	}
	for _, tps := range classTP {
		lo, hi := tps[0], tps[0]
		for _, tp := range tps {
			if tp < lo {
				lo = tp
			}
			if tp > hi {
				hi = tp
			}
		}
		if lo > 0 && hi/lo > pt.FairnessRatio {
			pt.FairnessRatio = hi / lo
		}
	}
	if len(allLats) > 0 {
		sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
		pt.LatencyP50MS = ms(allLats[int(0.50*float64(len(allLats)-1))])
		pt.LatencyP99MS = ms(allLats[int(0.99*float64(len(allLats)-1))])
	}
	res.Point = pt

	// Trace gate: every admitted stream must have its admission event on
	// its own lane, and the export must be a valid Chrome trace.
	tl := tr.Snapshot()
	admits := map[int]bool{}
	for _, e := range tl.Events {
		if id, ok := obs.StreamOf(e.Lane); ok && e.Kind == obs.KindAdmit {
			admits[id] = true
		}
	}
	for _, ss := range all {
		if !admits[ss.ID] {
			return nil, fmt.Errorf("bench: stream %d admitted but has no KindAdmit event on its lane", ss.ID)
		}
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		return nil, err
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		return nil, fmt.Errorf("bench: service trace invalid: %w", err)
	}
	res.TraceNote = fmt.Sprintf("%d events across %d stream lanes, trace valid, %d dropped",
		len(tl.Events), len(admits), tl.Dropped)
	return res, nil
}

// WriteText renders the load report.
func (r *ServiceResult) WriteText(w io.Writer) {
	pt := r.Point
	fmt.Fprintf(w, "service load: %d streams x %d-class priorities on %d workers (%s dispatch)\n",
		pt.Streams, pt.PriorityClasses, pt.Workers, pt.Dispatch)
	fmt.Fprintf(w, "  wall %.1fms   aggregate %.0f pics/s   frame latency p50 %.2fms p99 %.2fms\n",
		pt.WallMS, pt.AggregatePicsPerSec, pt.LatencyP50MS, pt.LatencyP99MS)
	fmt.Fprintf(w, "  fairness max/min within class %.2f   max rung %d\n", pt.FairnessRatio, pt.MaxRung)
	fmt.Fprintf(w, "  shed: %d B, %d ref, %d degraded (%d by slack)   misses %d   assists %d   rejected %d   pauses %d   wedged %d\n",
		pt.ShedBPictures, pt.ShedRefPictures, pt.DegradedPictures, pt.SlackSheds,
		pt.DeadlineMisses, pt.Assists, pt.Rejected, pt.Pauses, pt.Wedged)
	fmt.Fprintf(w, "  obs: %s\n", r.TraceNote)
	if len(r.PerStream) == 0 {
		return
	}
	fmt.Fprintf(w, "  %4s %4s %10s %9s %9s %6s %5s %6s\n",
		"id", "prio", "pics/s", "p50 ms", "p99 ms", "miss", "shed", "paused")
	for _, ln := range r.PerStream {
		fmt.Fprintf(w, "  %4d %4d %10.1f %9.2f %9.2f %6d %5d %6d\n",
			ln.ID, ln.Priority, ln.PicsPerSec, ln.P50MS, ln.P99MS, ln.Misses, ln.Shed, ln.Paused)
	}
}

// WriteJSON emits the result as indented JSON.
func (r *ServiceResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ServiceRun wraps a ServicePoint in a host-stamped PerfRun for
// BENCH_<n>.json (the service harness measures a fleet, not the
// mode-by-mode trajectory, so the usual Points stay empty).
func ServiceRun(label string, pt *ServicePoint) *PerfRun {
	return &PerfRun{
		Label:       label,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: kernels.CPUFeatures(),
		KernelLevel: kernels.Describe(),
		Service:     pt,
	}
}
