package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestServiceLoadSmoke runs a scaled-down overload through the harness:
// every stream completes, the ladder counters are coherent, and both
// report encodings render.
func TestServiceLoadSmoke(t *testing.T) {
	res, err := ServiceLoad(ServiceConfig{
		Workers: 1, Streams: 8, Pictures: 8,
		SinkDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Point
	if pt.Streams != 8 || len(res.PerStream) != 8 {
		t.Fatalf("point %+v, %d per-stream lines", pt, len(res.PerStream))
	}
	if pt.Wedged != 0 || pt.Rejected != 0 {
		t.Fatalf("smoke run wedged %d / rejected %d streams", pt.Wedged, pt.Rejected)
	}
	if pt.AggregatePicsPerSec <= 0 || pt.FairnessRatio < 1 {
		t.Fatalf("degenerate measurement: %+v", pt)
	}
	if pt.LatencyP99MS < pt.LatencyP50MS {
		t.Fatalf("p99 %.2fms below p50 %.2fms", pt.LatencyP99MS, pt.LatencyP50MS)
	}

	var text bytes.Buffer
	res.WriteText(&text)
	if !strings.Contains(text.String(), "service load: 8 streams") {
		t.Fatalf("text report:\n%s", text.String())
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back ServiceResult
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Point.Streams != 8 {
		t.Fatalf("JSON round-trip lost the point: %+v", back.Point)
	}

	run := ServiceRun("test", &pt)
	if run.Service == nil || run.Service.Streams != 8 || run.Label != "test" {
		t.Fatalf("ServiceRun %+v", run)
	}
}
