package bench

import (
	"fmt"
	"io"
)

// Table1Row describes one test-stream family (the paper's Table 1).
type Table1Row struct {
	Res          Resolution
	GOPSizes     []int
	Pixels       int   // luminance pixels per picture ("picture size")
	FrameBytes   int64 // decoded 4:2:0 bytes
	AvgCodedBits int   // measured coded bits per picture at the default rate
	Slices       int
}

// Table1 regenerates the test-stream inventory.
func (r *Runner) Table1(w io.Writer) ([]Table1Row, error) {
	var rows []Table1Row
	var out [][]string
	for _, res := range r.cfg.Resolutions {
		s, err := r.Stream(res, 13)
		if err != nil {
			return nil, err
		}
		bits := 0
		for _, p := range s.Pictures {
			bits += p.Bits
		}
		bits /= len(s.Pictures)
		row := Table1Row{
			Res:          res,
			GOPSizes:     GOPSizes,
			Pixels:       res.W * res.H,
			FrameBytes:   res.FrameBytes(),
			AvgCodedBits: bits,
			Slices:       res.Slices(),
		}
		rows = append(rows, row)
		out = append(out, []string{
			res.Name(),
			"4,13,16,31",
			fmt.Sprintf("%.1fK", float64(row.Pixels)/1000),
			fmt.Sprintf("%d", row.Slices),
			fmt.Sprintf("%.1fKb", float64(row.AvgCodedBits)/1000),
		})
	}
	table(w, "Table 1: test streams", []string{"Resolution", "GOP sizes", "Picture size", "Slices", "Coded bits/pic"}, out)
	return rows, nil
}

// Table2Row is one scan-rate measurement (the paper's Table 2).
type Table2Row struct {
	Res          Resolution
	FileBytes    int
	Pictures     int
	ScanPicsPerS float64
}

// Table2 measures the scan process's rate over real streams.
func (r *Runner) Table2(w io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	var out [][]string
	for _, res := range r.cfg.Resolutions {
		m, err := r.Map(res, 13)
		if err != nil {
			return nil, err
		}
		// Re-scan a few times for a stable rate on small inputs.
		s, err := r.Stream(res, 13)
		if err != nil {
			return nil, err
		}
		best := m.ScanRate()
		for i := 0; i < 5; i++ {
			m2, err := Scan(s.Data)
			if err != nil {
				return nil, err
			}
			if rate := m2.ScanRate(); rate > best {
				best = rate
			}
		}
		row := Table2Row{Res: res, FileBytes: len(s.Data), Pictures: m.TotalPictures, ScanPicsPerS: best}
		rows = append(rows, row)
		out = append(out, []string{
			res.Name(),
			fmt.Sprintf("%.2fMB", float64(row.FileBytes)/(1<<20)),
			fmt.Sprintf("%d", row.Pictures),
			fmt.Sprintf("%.0f", row.ScanPicsPerS),
		})
	}
	table(w, "Table 2: scan process rate", []string{"Resolution", "File size", "Pictures", "Scan rate (pics/s)"}, out)
	return rows, nil
}

// Table34Row is one decoder-variant throughput measurement.
type Table34Row struct {
	Res      Resolution
	GOP      float64 // pictures/second, GOP version
	Simple   float64
	Improved float64
}

// Table34 regenerates Tables 3 and 4: maximum pictures per second decoded
// by each variant with MaxWorkers workers (simulated from measured task
// costs).
func (r *Runner) Table34(w io.Writer) ([]Table34Row, error) {
	var rows []Table34Row
	var out [][]string
	pics := float64(r.cfg.StreamPictures)
	for _, res := range r.cfg.Resolutions {
		gt, err := r.GOPTasks(res, 13)
		if err != nil {
			return nil, err
		}
		sp, err := r.SlicePics(res, 13)
		if err != nil {
			return nil, err
		}
		p := r.cfg.MaxWorkers
		row := Table34Row{
			Res:      res,
			GOP:      safeRate(pics, SimGOP(gt, p).Makespan),
			Simple:   safeRate(pics, SimSlices(sp, p, false).Makespan),
			Improved: safeRate(pics, SimSlices(sp, p, true).Makespan),
		}
		rows = append(rows, row)
		out = append(out, []string{res.Name(), f1(row.Simple), f1(row.Improved), f1(row.GOP)})
	}
	table(w, fmt.Sprintf("Tables 3+4: max pictures/sec at %d workers", r.cfg.MaxWorkers),
		[]string{"Resolution", "Simple slice", "Improved slice", "GOP"}, out)
	return rows, nil
}
