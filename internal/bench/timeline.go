package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
)

// TimelineRun decodes one reference stream with the event tracer
// attached and reports the derived load-balance and synchronization
// figures — the live-measurement counterpart of the simulator's
// Figures 5–7 (utilization, imbalance, sync overhead).

// TimelineConfig describes a traced decode.
type TimelineConfig struct {
	Width, Height int    // picture size (default 352x240)
	GOPSize       int    // pictures per GOP (default 13)
	Pictures      int    // stream length (default 3 GOPs)
	Mode          string // "gop", "slice-simple", "slice-improved", "sequential" (default slice-improved)
	Workers       int    // default 4
	TraceOut      string // optional: write Chrome trace JSON here
}

func (c TimelineConfig) withDefaults() TimelineConfig {
	if c.Width == 0 {
		c.Width, c.Height = 352, 240
	}
	if c.GOPSize == 0 {
		c.GOPSize = 13
	}
	if c.Pictures == 0 {
		c.Pictures = 3 * c.GOPSize
	}
	if c.Mode == "" {
		c.Mode = "slice-improved"
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	return c
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "gop":
		return core.ModeGOP, nil
	case "slice", "slice-simple":
		return core.ModeSliceSimple, nil
	case "slice-improved":
		return core.ModeSliceImproved, nil
	case "seq", "sequential":
		return core.ModeSequential, nil
	case "auto":
		return core.ModeAuto, nil
	}
	return 0, fmt.Errorf("bench: unknown mode %q", s)
}

// TimelineResult is one traced decode: the raw timeline, its derived
// summary, and the decode stats it must stay consistent with.
type TimelineResult struct {
	Summary  *obs.Summary  `json:"summary"`
	Stats    *core.Stats   `json:"stats"`
	Timeline *obs.Timeline `json:"-"`
}

// TimelineRun encodes the reference stream, decodes it with tracing
// enabled, and derives the report. When cfg.TraceOut is set the raw
// timeline is also exported as Chrome trace JSON (Perfetto-loadable),
// validated before the file is kept.
func TimelineRun(cfg TimelineConfig) (*TimelineResult, error) {
	cfg = cfg.withDefaults()
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width:     cfg.Width,
		Height:    cfg.Height,
		Pictures:  cfg.Pictures,
		GOPSize:   cfg.GOPSize,
		BitRate:   5_000_000,
		FrameRate: 30,
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: timeline stream: %w", err)
	}
	mode, err := parseMode(cfg.Mode)
	if err != nil {
		return nil, err
	}
	rec := obs.New(0)
	st, err := core.Decode(enc.Data, core.Options{
		Mode:    mode,
		Workers: cfg.Workers,
		Obs:     rec,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: timeline decode: %w", err)
	}
	tl := rec.Snapshot()
	res := &TimelineResult{Summary: tl.Summary(), Stats: st, Timeline: tl}
	if cfg.TraceOut != "" {
		f, err := os.Create(cfg.TraceOut)
		if err != nil {
			return nil, err
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("bench: write trace: %w", err)
		}
	}
	return res, nil
}

// WriteText renders the report for a terminal.
func (r *TimelineResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "traced decode: %d pictures in %v (%.0f pics/s)\n",
		r.Stats.Pictures, r.Stats.Wall, r.Stats.PicturesPerSecond())
	r.Summary.WriteText(w)
}

// WriteJSON emits the structured report.
func (r *TimelineResult) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(r)
}
