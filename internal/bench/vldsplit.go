package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/simsched"
)

// This file is the intra-slice split-decode experiment: a stream coded
// with one tall slice per picture has no slice-level parallelism at
// all — the improved slice decoder degenerates to sequential. With a
// split index the decoder fans each slice out as macroblock-row
// segments, restoring the parallelism the bitstream geometry removed.
// The experiment profiles real per-task costs on a one-worker run
// (unsplit vs indexed-split) and replays them in the deterministic
// simulator, so the speedup is meaningful on any host.

// VLDSplitConfig parameterizes the split-decode experiment.
type VLDSplitConfig struct {
	Width, Height int // picture size (default 352x240)
	GOPSize       int // pictures per GOP (default 13)
	Pictures      int // stream length (default 2 GOPs)
	BitRate       int // encoder bit rate (default 5 Mb/s)
	Workers       int // simulated worker count (default 4)
	Parts         int // segments per split slice (default = Workers)
}

func (c VLDSplitConfig) withDefaults() VLDSplitConfig {
	if c.Width == 0 {
		c.Width, c.Height = 352, 240
	}
	if c.GOPSize == 0 {
		c.GOPSize = 13
	}
	if c.Pictures == 0 {
		c.Pictures = 2 * c.GOPSize
	}
	if c.BitRate == 0 {
		c.BitRate = 5_000_000
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Parts == 0 {
		c.Parts = c.Workers
	}
	return c
}

// VLDSplitPoint is the structured result, recorded in BENCH_<n>.json.
type VLDSplitPoint struct {
	Width    int `json:"width"`
	Height   int `json:"height"`
	Pictures int `json:"pictures"`
	Workers  int `json:"workers"`
	Parts    int `json:"parts"`

	// The split index built over the stream.
	IndexSlices int `json:"index_slices"`
	IndexPoints int `json:"index_points"`
	IndexBytes  int `json:"index_bytes"`

	// Simulated makespans of the profiled costs at Workers workers:
	// unsplit (one tall slice per picture — no parallelism to find) vs
	// indexed split (each slice fanned into Parts segments).
	UnsplitMakespanMS float64 `json:"unsplit_makespan_ms"`
	SplitMakespanMS   float64 `json:"split_makespan_ms"`
	// Speedup is unsplit/split — the parallelism the index recovered.
	Speedup float64 `json:"split_speedup"`

	// Split-decode counters from the indexed profile run.
	SlicesSplit  int `json:"slices_split"`
	SegmentsRun  int `json:"segments_run"`
	VerifyHits   int `json:"verify_hits"`
	VerifyMisses int `json:"verify_misses"`
	Fallbacks    int `json:"fallbacks"`

	// Speculative pass (no index): guessed resync points either verify
	// or fall back; both outcomes are bit-exact by construction.
	SpecSegments     int `json:"spec_segments"`
	SpecVerifyHits   int `json:"spec_verify_hits"`
	SpecVerifyMisses int `json:"spec_verify_misses"`
	SpecFallbacks    int `json:"spec_fallbacks"`

	// BitExact reports that the indexed split decode reproduced the
	// sequential decoder's frames exactly.
	BitExact bool `json:"bit_exact"`
}

// VLDSplitResult carries the point plus its rendering.
type VLDSplitResult struct {
	Point VLDSplitPoint `json:"vldsplit"`
}

// VLDSplit runs the split-decode experiment.
func VLDSplit(cfg VLDSplitConfig) (*VLDSplitResult, error) {
	cfg = cfg.withDefaults()
	rows := (cfg.Height + 15) / 16
	enc, err := encoder.EncodeSequence(encoder.Config{
		Width:        cfg.Width,
		Height:       cfg.Height,
		Pictures:     cfg.Pictures,
		GOPSize:      cfg.GOPSize,
		BitRate:      cfg.BitRate,
		FrameRate:    30,
		RowsPerSlice: rows, // one slice per picture: zero slice-level parallelism
	}, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		return nil, fmt.Errorf("bench: vldsplit stream: %w", err)
	}
	m, err := core.Scan(enc.Data)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndexScanned(enc.Data, m)
	if err != nil {
		return nil, err
	}
	raw, err := ix.MarshalBinary()
	if err != nil {
		return nil, err
	}
	pt := VLDSplitPoint{
		Width: cfg.Width, Height: cfg.Height, Pictures: cfg.Pictures,
		Workers: cfg.Workers, Parts: cfg.Parts,
		IndexSlices: ix.Slices(), IndexPoints: ix.Points(), IndexBytes: len(raw),
	}

	// Sequential oracle frames, for the bit-exactness record.
	var want []*frame.Frame
	if _, err := core.Decode(enc.Data, core.Options{
		Mode: core.ModeSequential, Workers: 1,
		Sink: func(f *frame.Frame) { want = append(want, f.Clone()) },
	}); err != nil {
		return nil, err
	}

	// Profile unsplit and indexed-split costs with one worker (two
	// passes, per-task minimum — see profileSlicePics) and replay them
	// in the simulator at the configured worker count.
	unsplit, _, err := profileSplit(enc.Data, core.Options{
		Mode: core.ModeSliceImproved, Workers: 1, Profile: true, Packing: core.PackFIFO,
	})
	if err != nil {
		return nil, err
	}
	split, sst, err := profileSplit(enc.Data, core.Options{
		Mode: core.ModeSliceImproved, Workers: 1, Profile: true, Packing: core.PackFIFO,
		SplitIndex: ix, SplitParts: cfg.Parts,
	})
	if err != nil {
		return nil, err
	}
	simU := simsched.SimulateSlices(unsplit, cfg.Workers, true)
	simS := simsched.SimulateSlices(split, cfg.Workers, true)
	pt.UnsplitMakespanMS = ms(simU.Makespan)
	pt.SplitMakespanMS = ms(simS.Makespan)
	pt.Speedup = safeDiv(float64(simU.Makespan), float64(simS.Makespan))
	pt.SlicesSplit = sst.SlicesSplit
	pt.SegmentsRun = sst.SegmentsRun
	pt.VerifyHits = sst.VerifyHits
	pt.VerifyMisses = sst.VerifyMisses
	pt.Fallbacks = sst.Fallbacks

	// Bit-exactness of an indexed split decode at the simulated worker
	// count against the sequential oracle.
	var got []*frame.Frame
	if _, err := core.Decode(enc.Data, core.Options{
		Mode: core.ModeSliceImproved, Workers: cfg.Workers,
		SplitIndex: ix, SplitParts: cfg.Parts,
		Sink: func(f *frame.Frame) { got = append(got, f.Clone()) },
	}); err != nil {
		return nil, err
	}
	pt.BitExact = len(got) == len(want)
	for i := range want {
		if !pt.BitExact || !want[i].Equal(got[i]) {
			pt.BitExact = false
			break
		}
	}

	// Speculative pass: no index, guessed resync points. Counters only —
	// the verify rule makes both outcomes bit-exact.
	spec, err := core.Decode(enc.Data, core.Options{
		Mode: core.ModeSliceImproved, Workers: cfg.Workers,
		SpeculativeSplit: true, SplitParts: cfg.Parts,
	})
	if err != nil {
		return nil, err
	}
	pt.SpecSegments = spec.Split.SegmentsRun
	pt.SpecVerifyHits = spec.Split.VerifyHits
	pt.SpecVerifyMisses = spec.Split.VerifyMisses
	pt.SpecFallbacks = spec.Split.Fallbacks

	return &VLDSplitResult{Point: pt}, nil
}

// profileSplit measures per-task costs under opt (two passes, per-task
// minimum) and returns the simulator pictures plus the second pass's
// split counters.
func profileSplit(data []byte, opt core.Options) ([]simsched.SimPicture, core.SplitStats, error) {
	st, err := core.Decode(data, opt)
	if err != nil {
		return nil, core.SplitStats{}, err
	}
	st2, err := core.Decode(data, opt)
	if err != nil {
		return nil, core.SplitStats{}, err
	}
	pics := make([]simsched.SimPicture, len(st.SliceProf))
	for i, p := range st.SliceProf {
		costs := append([]time.Duration(nil), p.SliceCosts...)
		for j, c2 := range st2.SliceProf[i].SliceCosts {
			if j < len(costs) && c2 < costs[j] {
				costs[j] = c2
			}
		}
		pics[i] = simsched.SimPicture{Ref: p.Ref, Intra: p.Type == 'I', DisplayIdx: p.DisplayIdx, SliceCosts: costs}
	}
	return pics, st2.Split, nil
}

// WriteText renders the experiment result.
func (r *VLDSplitResult) WriteText(w io.Writer) {
	p := &r.Point
	fmt.Fprintf(w, "== intra-slice split decode (%dx%d, %d pictures, one slice per picture) ==\n",
		p.Width, p.Height, p.Pictures)
	fmt.Fprintf(w, "index: %d slices, %d points, %d bytes\n",
		p.IndexSlices, p.IndexPoints, p.IndexBytes)
	fmt.Fprintf(w, "simulated at %d workers: unsplit %.2f ms, split(%d) %.2f ms -> speedup %.2fx\n",
		p.Workers, p.UnsplitMakespanMS, p.Parts, p.SplitMakespanMS, p.Speedup)
	fmt.Fprintf(w, "indexed run: %d slices split, %d segments, %d/%d verified, %d fallbacks, bit-exact=%v\n",
		p.SlicesSplit, p.SegmentsRun, p.VerifyHits, p.VerifyHits+p.VerifyMisses, p.Fallbacks, p.BitExact)
	fmt.Fprintf(w, "speculative run: %d segments, %d hits, %d misses, %d fallbacks (bit-exact either way)\n",
		p.SpecSegments, p.SpecVerifyHits, p.SpecVerifyMisses, p.SpecFallbacks)
}

// VLDSplitRun wraps the point as a PerfRun for BENCH_<n>.json.
func VLDSplitRun(label string, pt *VLDSplitPoint) *PerfRun {
	return &PerfRun{
		Label:       label,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: kernels.CPUFeatures(),
		KernelLevel: kernels.Describe(),
		VLDSplit:    pt,
	}
}
