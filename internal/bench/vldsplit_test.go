package bench

import (
	"io"
	"testing"
)

// TestVLDSplitExperiment is the acceptance gate for intra-slice
// splitting: on a one-slice-per-picture stream the indexed split decode
// must simulate at >=1.5x over the unsplit decode at 4 workers, verify
// every segment chain, and reproduce the sequential frames bit-exactly.
func TestVLDSplitExperiment(t *testing.T) {
	res, err := VLDSplit(VLDSplitConfig{Pictures: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res.WriteText(io.Discard)
	p := &res.Point
	if !p.BitExact {
		t.Fatal("indexed split decode is not bit-exact with the sequential oracle")
	}
	if p.SlicesSplit == 0 || p.SegmentsRun == 0 {
		t.Fatalf("experiment split nothing: %+v", p)
	}
	if p.VerifyMisses != 0 || p.Fallbacks != 0 {
		t.Fatalf("exact index failed verification: %+v", p)
	}
	if p.Speedup < 1.5 {
		t.Fatalf("simulated split speedup %.2fx at %d workers, want >= 1.5x", p.Speedup, p.Workers)
	}
	// Speculation accounting is conservation: every speculative slice
	// either verified or fell back.
	if p.SpecVerifyHits+p.SpecVerifyMisses == 0 && p.SpecSegments > 0 {
		t.Fatalf("speculative segments ran but nothing was verified or refuted: %+v", p)
	}
}
