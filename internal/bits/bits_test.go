package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterBasic(t *testing.T) {
	var w Writer
	w.Put(0b101, 3)
	w.Put(0b01, 2)
	w.Put(0b110, 3)
	got := w.Bytes()
	want := []byte{0b10101110}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %08b want %08b", got, want)
	}
	if w.BitsWritten() != 8 {
		t.Fatalf("BitsWritten = %d, want 8", w.BitsWritten())
	}
}

func TestWriterAlign(t *testing.T) {
	var w Writer
	w.Put(0b1, 1)
	w.Align()
	w.Put(0xAB, 8)
	got := w.Bytes()
	want := []byte{0x80, 0xAB}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
	// Align when already aligned must be a no-op.
	w.Align()
	if w.Len() != 2 {
		t.Fatalf("Len after redundant Align = %d, want 2", w.Len())
	}
}

func TestWriterStartCode(t *testing.T) {
	var w Writer
	w.Put(0b11, 2)
	w.StartCode(0xB3)
	got := w.Bytes()
	want := []byte{0xC0, 0x00, 0x00, 0x01, 0xB3}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func TestWriterPut64(t *testing.T) {
	var w Writer
	w.Put64(0x0123456789ABCDEF, 64)
	got := w.Bytes()
	want := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func TestWriterZeroWidth(t *testing.T) {
	var w Writer
	w.Put(0xFFFF, 0)
	w.Put(1, 1)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0x80}) {
		t.Fatalf("got %x", got)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.Put(0xFF, 8)
	w.Reset()
	if w.Len() != 0 || w.BitsWritten() != 0 {
		t.Fatal("Reset did not clear state")
	}
	w.Put(0x0F, 4)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xF0}) {
		t.Fatalf("got %x", got)
	}
}

func TestReaderBasic(t *testing.T) {
	r := NewReader([]byte{0b10101110, 0xAB})
	if got := r.Read(3); got != 0b101 {
		t.Fatalf("Read(3) = %b", got)
	}
	if got := r.Peek(5); got != 0b01110 {
		t.Fatalf("Peek(5) = %05b", got)
	}
	if got := r.Read(5); got != 0b01110 {
		t.Fatalf("Read(5) = %05b", got)
	}
	if got := r.Read(8); got != 0xAB {
		t.Fatalf("Read(8) = %x", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected err: %v", r.Err())
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{0xFF})
	r.Read(8)
	if r.Err() != nil {
		t.Fatal("err too early")
	}
	if got := r.Read(4); got != 0 {
		t.Fatalf("underflow read = %x, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("expected sticky underflow error")
	}
	// Error stays sticky.
	r.Read(8)
	if r.Err() == nil {
		t.Fatal("error lost")
	}
}

func TestReaderPeekPastEnd(t *testing.T) {
	r := NewReader([]byte{0x80})
	r.Read(7)
	if got := r.Peek(16); got != 0 {
		t.Fatalf("Peek past end = %x, want 0 bits beyond buffer", got)
	}
	if r.Err() != nil {
		t.Fatal("Peek must not set error")
	}
}

func TestReaderSeekAlign(t *testing.T) {
	r := NewReader([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	r.Read(3)
	r.AlignByte()
	if r.BitPos() != 8 {
		t.Fatalf("pos = %d", r.BitPos())
	}
	if got := r.Read(8); got != 0xAD {
		t.Fatalf("got %x", got)
	}
	r.SeekBit(0)
	if got := r.Read(8); got != 0xDE {
		t.Fatalf("got %x", got)
	}
	r.SeekBit(99)
	if r.Err() == nil {
		t.Fatal("expected seek error")
	}
}

func TestReaderRead64(t *testing.T) {
	data := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF}
	r := NewReader(data)
	if got := r.Read64(64); got != 0x0123456789ABCDEF {
		t.Fatalf("got %x", got)
	}
}

func TestFindStartCode(t *testing.T) {
	cases := []struct {
		data []byte
		from int
		want int
	}{
		{[]byte{0, 0, 1, 0xB3}, 0, 0},
		{[]byte{0xFF, 0, 0, 1, 0xB3}, 0, 1},
		{[]byte{0, 0, 0, 1, 0xB3}, 0, 1},
		{[]byte{0, 1, 1, 0, 0, 1, 0x42}, 0, 3},
		{[]byte{0, 0, 1}, 0, -1}, // no code byte
		{[]byte{0, 0, 2, 0, 0, 1, 7}, 0, 3},
		{[]byte{0, 0, 1, 0xB3, 0, 0, 1, 0x00}, 1, 4},
		{nil, 0, -1},
		{[]byte{0, 0, 1, 5}, -3, 0},
	}
	for i, c := range cases {
		if got := FindStartCode(c.data, c.from); got != c.want {
			t.Errorf("case %d: FindStartCode(%v, %d) = %d, want %d", i, c.data, c.from, got, c.want)
		}
	}
}

func TestFindStartCodeExhaustiveSmall(t *testing.T) {
	// Brute-force oracle over all 4-byte buffers drawn from {0,1,2}.
	oracle := func(d []byte, from int) int {
		for i := from; i+3 < len(d); i++ {
			if d[i] == 0 && d[i+1] == 0 && d[i+2] == 1 {
				return i
			}
		}
		return -1
	}
	vals := []byte{0, 1, 2}
	d := make([]byte, 6)
	var rec func(k int)
	rec = func(k int) {
		if k == len(d) {
			if got, want := FindStartCode(d, 0), oracle(d, 0); got != want {
				t.Fatalf("FindStartCode(%v) = %d, want %d", d, got, want)
			}
			return
		}
		for _, v := range vals {
			d[k] = v
			rec(k + 1)
		}
	}
	rec(0)
}

func TestNextStartCode(t *testing.T) {
	data := []byte{0xAA, 0x00, 0x00, 0x01, 0xB8, 0xFF, 0x00, 0x00, 0x01, 0x00}
	r := NewReader(data)
	code, err := r.NextStartCode()
	if err != nil || code != 0xB8 {
		t.Fatalf("code=%x err=%v", code, err)
	}
	// Position should be at the prefix, so ReadStartCode consumes it.
	code, err = r.ReadStartCode()
	if err != nil || code != 0xB8 {
		t.Fatalf("ReadStartCode=%x err=%v", code, err)
	}
	code, err = r.NextStartCode()
	if err != nil || code != 0x00 {
		t.Fatalf("second code=%x err=%v", code, err)
	}
	r.Skip(32)
	if _, err := r.NextStartCode(); err == nil {
		t.Fatal("expected error at end of stream")
	}
}

func TestReadStartCodeBad(t *testing.T) {
	r := NewReader([]byte{0x12, 0x34, 0x56, 0x78})
	if _, err := r.ReadStartCode(); err == nil {
		t.Fatal("expected prefix error")
	}
}

// TestRoundTripQuick checks Writer→Reader round-trips for random field
// sequences, the core invariant everything above the bit layer depends on.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		widths := make([]uint, n)
		vals := make([]uint32, n)
		var w Writer
		for i := range widths {
			widths[i] = uint(1 + rng.Intn(32))
			vals[i] = rng.Uint32() & widthMask32(widths[i])
			w.Put(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range widths {
			if got := r.Read(widths[i]); got != vals[i] {
				t.Logf("seed %d field %d: got %x want %x", seed, i, got, vals[i])
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPeekMatchesRead verifies Peek is a pure prefix of Read at random
// positions and widths.
func TestPeekMatchesRead(t *testing.T) {
	f := func(data []byte, pos uint16, width uint8) bool {
		if len(data) == 0 {
			return true
		}
		n := uint(width%32) + 1
		p := int64(pos) % (int64(len(data)) * 8)
		r1 := NewReader(data)
		r1.SeekBit(p)
		r2 := NewReader(data)
		r2.SeekBit(p)
		return r1.Peek(n) == r2.Read(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderHighBitWidths(t *testing.T) {
	// A full 32-bit read crossing byte boundaries at every phase.
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE, 0xBA, 0xBE}
	for phase := uint(0); phase < 8; phase++ {
		r := NewReader(data)
		r.Skip(phase)
		got := r.Read(32)
		r2 := NewReader(data)
		r2.Skip(phase)
		var want uint32
		for i := 0; i < 32; i++ {
			want = want<<1 | r2.Read(1)
		}
		if got != want {
			t.Fatalf("phase %d: got %08x want %08x", phase, got, want)
		}
	}
}

func BenchmarkWriterPut(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		w.Put(uint32(i), uint(i%17)+1)
	}
}

func BenchmarkReaderRead(b *testing.B) {
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := NewReader(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 64 {
			r.SeekBit(0)
		}
		r.Read(uint(i%17) + 1)
	}
}

func BenchmarkFindStartCode(b *testing.B) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	copy(data[len(data)-4:], []byte{0, 0, 1, 0xB3})
	run := func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if FindStartCode(data, 0) < 0 {
				b.Fatal("missed")
			}
		}
	}
	b.Run("swar", run)
	// The byte-at-a-time reference scan (skips by the distance the failed
	// third byte allows, like the seed decoder's scan).
	b.Run("skip3", func(b *testing.B) {
		prev := ScalarScan
		ScalarScan = true
		defer func() { ScalarScan = prev }()
		run(b)
	})
	// A truly naive scan checking every position — the lower bound the
	// word-at-a-time kernel is measured against.
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			found := -1
			for j := 0; j+3 < len(data); j++ {
				if data[j] == 0 && data[j+1] == 0 && data[j+2] == 1 {
					found = j
					break
				}
			}
			if found < 0 {
				b.Fatal("missed")
			}
		}
	})
}

// TestFindStartCodeSWARvsScalar compares the word-at-a-time scan against
// the byte-at-a-time reference on structured buffers: prefixes planted at
// every offset relative to the 8-byte word grid (including straddling a
// word boundary), trailing partial words, and every `from` offset.
func TestFindStartCodeSWARvsScalar(t *testing.T) {
	check := func(data []byte) {
		t.Helper()
		for from := -1; from <= len(data); from++ {
			got := FindStartCode(data, from)
			want := findStartCodeScalar(data, max(from, 0))
			if got != want {
				t.Fatalf("FindStartCode(%v, %d) = %d, scalar reference = %d", data, from, got, want)
			}
		}
	}
	// A prefix at every possible word phase, with varying tail lengths.
	for phase := 0; phase < 11; phase++ {
		for tail := 0; tail < 10; tail++ {
			data := make([]byte, phase+3+tail)
			for i := range data {
				data[i] = byte(0x40 + i)
			}
			copy(data[phase:], []byte{0, 0, 1})
			check(data)
		}
	}
	// Runs of zeros around word boundaries (000001 inside 00...0 runs).
	check([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xB3})
	check([]byte{0xFF, 0, 0, 0, 0, 0, 0, 1, 0xB3, 0, 0, 1, 0x42})
	check(nil)
	check([]byte{0, 0, 1})
}

// peekRef is the pre-accumulator byte-gather Peek, kept as the semantic
// reference: up to 5 bytes, zero-filled past the end of the buffer.
func peekRef(data []byte, pos int64, n uint) uint32 {
	if n == 0 {
		return 0
	}
	byteIdx := int(pos >> 3)
	bitOff := uint(pos & 7)
	var acc uint64
	for i := 0; i < 5; i++ {
		var b byte
		if byteIdx+i < len(data) {
			b = data[byteIdx+i]
		}
		acc = acc<<8 | uint64(b)
	}
	acc <<= 24 + bitOff
	return uint32(acc >> (64 - n))
}

// TestPeekExhaustiveTail checks every (position, width) pair over a small
// buffer against the reference gather — in particular every read that
// straddles the last 8 bytes, where the single-load fast path must hand
// over to the zero-filled tail gather.
func TestPeekExhaustiveTail(t *testing.T) {
	data := make([]byte, 19)
	for i := range data {
		data[i] = byte(0x9E*i + 0x37)
	}
	for pos := int64(0); pos <= int64(len(data))*8; pos++ {
		for n := uint(0); n <= 32; n++ {
			r := NewReader(data)
			r.SeekBit(pos)
			if got, want := r.Peek(n), peekRef(data, pos, n); got != want {
				t.Fatalf("Peek(%d) at bit %d = %0*b, want %0*b", n, pos, n, got, n, want)
			}
			if r.Err() != nil {
				t.Fatalf("Peek(%d) at bit %d set error %v", n, pos, r.Err())
			}
		}
	}
}

// TestPeekCacheInvalidation stresses the accumulator across interleaved
// Read/Skip/SeekBit, including backward seeks into and out of the cached
// window.
func TestPeekCacheInvalidation(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i*193 + 11)
	}
	r := NewReader(data)
	pos := int64(0)
	step := []int64{1, 7, 8, 13, 31, -5, 64, -63, 17, 3}
	for i := 0; i < 4000; i++ {
		pos += step[i%len(step)]
		if pos < 0 {
			pos = 0
		}
		if pos > int64(len(data))*8 {
			pos = 0
		}
		r.SeekBit(pos)
		n := uint(i%33) % 33
		if got, want := r.Peek(n), peekRef(data, pos, n); got != want {
			t.Fatalf("step %d: Peek(%d) at bit %d = %x, want %x", i, n, pos, got, want)
		}
		// Consume a little so the cache is exercised by Read too.
		adv := uint(i % 9)
		if got, want := r.Read(adv), peekRef(data, pos, adv); got != want {
			t.Fatalf("step %d: Read(%d) at bit %d = %x, want %x", i, adv, pos, got, want)
		}
		pos += int64(adv)
	}
}

func TestReaderReset(t *testing.T) {
	a := []byte{0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89, 0xAB}
	b := []byte{0x12, 0x34}
	r := NewReader(a)
	if got := r.Read(16); got != 0xABCD {
		t.Fatalf("Read(16) = %04x", got)
	}
	r.Read64(64) // run past the end: sticky error set
	if r.Err() == nil {
		t.Fatal("expected underflow")
	}
	r.Reset(b)
	if r.Err() != nil || r.BitPos() != 0 {
		t.Fatalf("Reset left err=%v pos=%d", r.Err(), r.BitPos())
	}
	// The stale accumulator (loaded from a) must not serve reads from b.
	if got := r.Read(16); got != 0x1234 {
		t.Fatalf("after Reset Read(16) = %04x, want 1234", got)
	}
}

func BenchmarkReaderPeek(b *testing.B) {
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := NewReader(data)
	var sink uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 64 {
			r.SeekBit(0)
		}
		sink += r.Peek(17) // a DCT-table-width probe
		r.Skip(uint(i%11) + 1)
	}
	_ = sink
}
