package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
	mathbits "math/bits"
)

// ErrUnderflow is reported when a read runs past the end of the buffer.
var ErrUnderflow = errors.New("bits: read past end of stream")

// Reader consumes bits MSB-first from a byte slice.
//
// Reads past the end of the buffer set a sticky error (checked with Err) and
// return zeros, so straight-line parsing code can defer its error check to a
// syntactically convenient point. This mirrors how hardened bitstream
// decoders avoid a check per field without risking an out-of-range panic.
type Reader struct {
	data []byte
	pos  int64 // bit position
	err  error

	// Cached accumulator: acc holds the accBits bits of the stream
	// starting at bit accBase, left-justified. Peek serves from it with a
	// shift instead of re-gathering bytes; it stays valid across Read,
	// Skip and SeekBit because the underlying data never changes.
	// accBits == 0 marks the cache empty (the zero Reader is valid).
	acc     uint64
	accBase int64
	accBits int64
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset repoints the Reader at data with position and error cleared,
// allowing a Reader value to be reused without allocation.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.err = nil
	r.accBits = 0
}

// Err returns the sticky error, if any read has gone past the end.
func (r *Reader) Err() error { return r.err }

// BitPos returns the current position in bits from the start of the buffer.
func (r *Reader) BitPos() int64 { return r.pos }

// BytePos returns the current position in whole bytes (rounded down).
func (r *Reader) BytePos() int64 { return r.pos >> 3 }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int64 { return int64(len(r.data))*8 - r.pos }

// SeekBit moves the read position to absolute bit offset p.
func (r *Reader) SeekBit(p int64) {
	if p < 0 || p > int64(len(r.data))*8 {
		r.err = fmt.Errorf("bits: seek to %d out of range: %w", p, ErrUnderflow)
		return
	}
	r.pos = p
}

// Read consumes and returns the next n bits (n in [0,32]), MSB first.
func (r *Reader) Read(n uint) uint32 {
	v := r.Peek(n)
	r.pos += int64(n)
	if r.pos > int64(len(r.data))*8 {
		r.pos = int64(len(r.data)) * 8
		if r.err == nil {
			r.err = ErrUnderflow
		}
	}
	return v
}

// Read64 consumes and returns the next n bits (n in [0,64]), MSB first.
func (r *Reader) Read64(n uint) uint64 {
	if n > 32 {
		hi := uint64(r.Read(n - 32))
		return hi<<32 | uint64(r.Read(32))
	}
	return uint64(r.Read(n))
}

// ReadBit consumes a single bit.
func (r *Reader) ReadBit() bool { return r.Read(1) != 0 }

// Peek returns the next n bits (n in [0,32]) without consuming them.
// Bits past the end of the buffer read as zero (and do not set the error;
// only consuming them via Read does).
func (r *Reader) Peek(n uint) uint32 {
	// Fast path: the cached accumulator covers [pos, pos+n).
	if off := r.pos - r.accBase; off >= 0 && off+int64(n) <= r.accBits && n <= 32 {
		return uint32(r.acc << uint64(off) >> (64 - n))
	}
	return r.peekRefill(n)
}

// peekRefill reloads the accumulator (a single 8-byte big-endian load when
// at least 8 bytes remain, a zero-padded byte gather near the buffer end)
// and answers the Peek from it.
func (r *Reader) peekRefill(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if n > 32 {
		panic("bits: Peek width > 32")
	}
	byteIdx := int(r.pos >> 3)
	bitOff := uint(r.pos & 7)
	if byteIdx+8 <= len(r.data) {
		r.acc = binary.BigEndian.Uint64(r.data[byteIdx:])
		r.accBase = int64(byteIdx) * 8
		r.accBits = 64
		return uint32(r.acc << bitOff >> (64 - n))
	}
	// Tail: gather the remaining bytes, zero-filled past the end. The
	// cache records only the real bits, so reads running past the end
	// keep taking this path (and keep their zero-fill semantics).
	var acc uint64
	for i := 0; i < 8; i++ {
		var b byte
		if byteIdx+i < len(r.data) {
			b = r.data[byteIdx+i]
		}
		acc = acc<<8 | uint64(b)
	}
	r.acc = acc
	r.accBase = int64(byteIdx) * 8
	r.accBits = int64(len(r.data)-byteIdx) * 8
	if r.accBits < 0 {
		r.accBits = 0
	}
	return uint32(acc << bitOff >> (64 - n))
}

// Skip consumes n bits.
func (r *Reader) Skip(n uint) {
	r.pos += int64(n)
	if r.pos > int64(len(r.data))*8 {
		r.pos = int64(len(r.data)) * 8
		if r.err == nil {
			r.err = ErrUnderflow
		}
	}
}

// ByteAligned reports whether the position is at a byte boundary.
func (r *Reader) ByteAligned() bool { return r.pos&7 == 0 }

// AlignByte advances to the next byte boundary (no-op if already aligned).
func (r *Reader) AlignByte() {
	r.pos = (r.pos + 7) &^ 7
	if r.pos > int64(len(r.data))*8 {
		r.pos = int64(len(r.data)) * 8
	}
}

// NextStartCode aligns to a byte boundary and advances until the reader is
// positioned at the first byte of a 0x000001 startcode prefix. It returns
// the startcode value (the byte following the prefix) without consuming the
// code, or an error if no startcode remains.
func (r *Reader) NextStartCode() (byte, error) {
	r.AlignByte()
	i := int(r.pos >> 3)
	j := FindStartCode(r.data, i)
	if j < 0 {
		r.pos = int64(len(r.data)) * 8
		return 0, ErrUnderflow
	}
	r.pos = int64(j) * 8
	return r.data[j+3], nil
}

// ReadStartCode consumes a byte-aligned startcode and returns its code byte.
// It fails if the next 24 bits are not the 0x000001 prefix.
func (r *Reader) ReadStartCode() (byte, error) {
	r.AlignByte()
	if r.Remaining() < 32 {
		r.err = ErrUnderflow
		return 0, r.err
	}
	if prefix := r.Read(24); prefix != 0x000001 {
		err := fmt.Errorf("bits: expected startcode prefix at byte %d, got %06x", r.BytePos()-3, prefix)
		if r.err == nil {
			r.err = err
		}
		return 0, err
	}
	return byte(r.Read(8)), nil
}

// ScalarScan forces the byte-at-a-time reference scan in place of the
// word-at-a-time SWAR scan. The equivalence and fuzz tests flip it; it
// stays false in production.
var ScalarScan = false

// FindStartCode returns the byte index of the first startcode prefix
// (0x00 0x00 0x01) at or after index from, or -1 if none. The index points
// at the first 0x00 byte; the code byte is at index+3.
//
// The fast path walks the buffer a uint64 at a time using the SWAR
// zero-byte detector (v-0x01…01) &^ v & 0x80…80: a word with no zero byte
// cannot contain the start of a prefix, so compressed payload (where zero
// bytes are rare) is skipped at close to memory bandwidth — the property
// the scan process's throughput rests on.
func FindStartCode(data []byte, from int) int {
	if from < 0 {
		from = 0
	}
	if ScalarScan {
		return findStartCodeScalar(data, from)
	}
	const (
		lo = 0x0101010101010101
		hi = 0x8080808080808080
	)
	i, n := from, len(data)
	// 32-byte strides: the four per-word zero-byte masks are ORed so the
	// common all-payload case costs one test per 32 bytes. A stride with
	// no zero byte cannot contain the start of a prefix (a straddling
	// prefix would need its zeros inside the stride).
	for i+32 <= n {
		d := data[i : i+32 : i+32]
		v0 := binary.LittleEndian.Uint64(d)
		v1 := binary.LittleEndian.Uint64(d[8:16])
		v2 := binary.LittleEndian.Uint64(d[16:24])
		v3 := binary.LittleEndian.Uint64(d[24:32])
		z0 := (v0 - lo) &^ v0 & hi
		z1 := (v1 - lo) &^ v1 & hi
		z2 := (v2 - lo) &^ v2 & hi
		z3 := (v3 - lo) &^ v3 & hi
		if z0|z1|z2|z3 == 0 {
			i += 32
			continue
		}
		// A prefix can only start at a zero byte, and the detector never
		// misses one (its false positives — a 0x01 just above a zero lane,
		// from borrow ripple — merely add a candidate the verification
		// rejects). Walk the flagged positions in ascending order.
		for w, zw := range [4]uint64{z0, z1, z2, z3} {
			for ; zw != 0; zw &= zw - 1 {
				j := i + w*8 + mathbits.TrailingZeros64(zw)>>3
				if j+3 < n && data[j] == 0 && data[j+1] == 0 && data[j+2] == 1 {
					return j
				}
			}
		}
		i += 32
	}
	return findStartCodeScalar(data, i)
}

// findStartCodeScalar is the byte-at-a-time reference: the classic
// two-zero scan that looks at every position where data[i+2] could
// complete a prefix, stepping on mismatches by the distance the failed
// byte tells us is safe.
func findStartCodeScalar(data []byte, from int) int {
	for i := from; i+3 < len(data); {
		if data[i+2] > 1 {
			i += 3
			continue
		}
		if data[i+2] == 1 {
			if data[i] == 0 && data[i+1] == 0 {
				return i
			}
			i += 3
			continue
		}
		i++
	}
	return -1
}
