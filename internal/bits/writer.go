// Package bits implements MSB-first bit-level I/O over byte buffers and
// MPEG startcode scanning.
//
// MPEG-2 video bitstreams are a sequence of big-endian bit fields. All
// syntactic landmarks the parallel decoder relies on (sequence, GOP, picture
// and slice boundaries) are marked with byte-aligned startcodes
// (0x00 0x00 0x01 <code>), which is what makes random access — and therefore
// task-level parallelism — possible without decoding.
package bits

// Writer accumulates bits MSB-first into a growing byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator, top `n` bits valid
	n    uint   // number of valid bits in cur (always < 8 after flush)
	bits int64  // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Put writes the low n bits of v, MSB first. n must be in [0,32].
func (w *Writer) Put(v uint32, n uint) {
	if n > 32 {
		panic("bits: Put width > 32")
	}
	w.bits += int64(n)
	v &= widthMask32(n)
	// Accumulate into cur (holds < 8 bits between calls, so max 40 bits fits in 64).
	w.cur = w.cur<<n | uint64(v)
	w.n += n
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
}

// Put64 writes the low n bits of v, MSB first. n must be in [0,64].
func (w *Writer) Put64(v uint64, n uint) {
	if n > 32 {
		w.Put(uint32(v>>32), n-32)
		n = 32
	}
	w.Put(uint32(v), n)
}

// PutBit writes a single bit.
func (w *Writer) PutBit(b bool) {
	if b {
		w.Put(1, 1)
	} else {
		w.Put(0, 1)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if w.n != 0 {
		w.Put(0, 8-w.n)
	}
}

// AlignOnes pads with one bits to the next byte boundary (used before some
// MPEG startcodes when stuffing is required to be '1' padding is not; MPEG-2
// uses zero stuffing, this exists for tests).
func (w *Writer) AlignOnes() {
	for w.n != 0 {
		w.Put(1, 1)
	}
}

// StartCode byte-aligns the stream and writes the 32-bit startcode
// 0x000001<code>.
func (w *Writer) StartCode(code byte) {
	w.Align()
	w.Put(0x000001, 24)
	w.Put(uint32(code), 8)
}

// Len returns the number of whole bytes flushed so far (excluding any
// partial byte still in the accumulator).
func (w *Writer) Len() int { return len(w.buf) }

// BitsWritten returns the total number of bits written, including bits not
// yet flushed to a whole byte.
func (w *Writer) BitsWritten() int64 { return w.bits }

// Bytes byte-aligns the stream and returns the underlying buffer.
// The returned slice is owned by the Writer until Reset is called.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reset truncates the writer to empty, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.n = 0
	w.bits = 0
}

func widthMask32(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return 1<<n - 1
}
