// Package cachesim simulates per-processor caches with write-invalidate
// coherence over the decoder's memory-reference trace, classifying misses
// as cold, capacity, conflict or sharing — the TangoLite-substitute behind
// the paper's locality study (Figures 13–15).
package cachesim

import (
	"fmt"

	"mpeg2par/internal/memtrace"
)

// Config describes the simulated memory system: one cache per processor,
// kept coherent by write-invalidation.
type Config struct {
	Size     int // per-processor cache size in bytes
	LineSize int // cache line size in bytes (power of two)
	Assoc    int // ways per set; 0 means fully associative
	Procs    int // number of processors (and caches)

	// WriteAllocate installs lines on write misses. The default (false)
	// matches the paper's read-oriented TangoLite methodology: writes are
	// counted and invalidate other caches, but do not allocate locally —
	// write latency is assumed hidden by write buffers, and a later read
	// of self-written data is a (cold) read miss.
	WriteAllocate bool
}

func (c Config) validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Size%c.LineSize != 0 {
		return fmt.Errorf("cachesim: bad geometry %d/%d", c.Size, c.LineSize)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineSize)
	}
	lines := c.Size / c.LineSize
	if c.Assoc < 0 || (c.Assoc > 0 && lines%c.Assoc != 0) {
		return fmt.Errorf("cachesim: associativity %d does not divide %d lines", c.Assoc, lines)
	}
	if c.Procs < 1 {
		return fmt.Errorf("cachesim: need at least one processor")
	}
	return nil
}

// Stats accumulates reference and miss counts. References are counted at
// 4-byte word granularity, the era-typical load/store width, so miss
// rates are per memory reference like the paper's.
type Stats struct {
	Reads, Writes           int64
	ReadMisses, WriteMisses int64

	// Read-miss classification.
	Cold     int64 // first touch of the line by this processor
	Sharing  int64 // line was invalidated by another processor's write
	TrueShr  int64 // sharing misses where the read overlaps the written bytes
	Capacity int64 // would also miss in a fully-associative cache
	Conflict int64 // hits fully-associative, misses set-associative
}

// ReadMissRate returns read misses per read reference.
func (s Stats) ReadMissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

// MissRate returns total misses per reference.
func (s Stats) MissRate() float64 {
	t := s.Reads + s.Writes
	if t == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(t)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadMisses += o.ReadMisses
	s.WriteMisses += o.WriteMisses
	s.Cold += o.Cold
	s.Sharing += o.Sharing
	s.TrueShr += o.TrueShr
	s.Capacity += o.Capacity
	s.Conflict += o.Conflict
}

// lru is one set: a bounded LRU of line tags.
type lru struct {
	ways int
	m    map[uint64]*node
	head *node // most recent
	tail *node // least recent
}

type node struct {
	tag        uint64
	prev, next *node
}

func newLRU(ways int) *lru { return &lru{ways: ways, m: make(map[uint64]*node, ways)} }

func (l *lru) touch(n *node) {
	if l.head == n {
		return
	}
	// unlink
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if l.tail == n {
		l.tail = n.prev
	}
	// push front
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// access looks up tag, inserting on miss (evicting LRU if full). It
// returns hit and the evicted tag (valid only when evicted is true).
func (l *lru) access(tag uint64) (hit bool, evictedTag uint64, evicted bool) {
	if n, ok := l.m[tag]; ok {
		l.touch(n)
		return true, 0, false
	}
	var n *node
	if len(l.m) >= l.ways {
		n = l.tail
		delete(l.m, n.tag)
		evictedTag, evicted = n.tag, true
		n.tag = tag
	} else {
		n = &node{tag: tag}
	}
	l.m[tag] = n
	l.touch(n)
	return false, evictedTag, evicted
}

// remove drops tag if present (invalidation).
func (l *lru) remove(tag uint64) bool {
	n, ok := l.m[tag]
	if !ok {
		return false
	}
	delete(l.m, tag)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	return true
}

// procCache is one processor's cache plus classification state.
type procCache struct {
	sets   []*lru
	shadow *lru // fully-associative same-capacity shadow (nil if main is FA)
	seen   map[uint64]bool
	inval  map[uint64]invalInfo // lines invalidated away by another processor
}

type invalInfo struct {
	addr uint64
	size int32
}

// Simulator runs a trace through the configured memory system.
type Simulator struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	procs     []*procCache
	stats     []Stats
	// sharers tracks which processors currently cache each line.
	sharers map[uint64]uint64 // line -> bitmask of procs (procs <= 64)
}

// New builds a simulator for the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Procs > 64 {
		return nil, fmt.Errorf("cachesim: at most 64 processors")
	}
	lines := cfg.Size / cfg.LineSize
	ways := cfg.Assoc
	if ways == 0 || ways > lines {
		ways = lines
	}
	nsets := lines / ways
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	s := &Simulator{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
		procs:     make([]*procCache, cfg.Procs),
		stats:     make([]Stats, cfg.Procs),
		sharers:   make(map[uint64]uint64),
	}
	for p := range s.procs {
		pc := &procCache{
			sets:  make([]*lru, nsets),
			seen:  make(map[uint64]bool),
			inval: make(map[uint64]invalInfo),
		}
		for i := range pc.sets {
			pc.sets[i] = newLRU(ways)
		}
		if nsets > 1 {
			pc.shadow = newLRU(lines)
		}
		s.procs[p] = pc
	}
	return s, nil
}

// Run feeds trace events through the memory system.
func (s *Simulator) Run(events []memtrace.Event) error {
	for _, e := range events {
		if int(e.Proc) < 0 || int(e.Proc) >= s.cfg.Procs {
			return fmt.Errorf("cachesim: event for processor %d outside %d-processor system", e.Proc, s.cfg.Procs)
		}
		s.extent(int(e.Proc), e.Addr, int(e.Size), e.Write)
	}
	return nil
}

// extent splits a contiguous access into per-line word references.
func (s *Simulator) extent(p int, addr uint64, size int, write bool) {
	end := addr + uint64(size)
	for a := addr; a < end; {
		lineEnd := (a>>s.lineShift + 1) << s.lineShift
		if lineEnd > end {
			lineEnd = end
		}
		words := int64((lineEnd - a + 3) / 4)
		s.accessLine(p, a>>s.lineShift, words, write, a, int32(lineEnd-a))
		a = lineEnd
	}
}

func (s *Simulator) accessLine(p int, line uint64, words int64, write bool, addr uint64, size int32) {
	pc := s.procs[p]
	st := &s.stats[p]
	if write {
		st.Writes += words
	} else {
		st.Reads += words
	}
	set := pc.sets[line&s.setMask]
	if write && !s.cfg.WriteAllocate {
		// Write-no-allocate: look up without installing.
		if _, present := set.m[line]; !present {
			st.WriteMisses++
		}
	} else {
		hit, _, _ := set.access(line)
		shadowHit := hit
		if pc.shadow != nil {
			shadowHit, _, _ = pc.shadow.access(line)
		}
		if !hit {
			if write {
				st.WriteMisses++
			} else {
				st.ReadMisses++
				switch {
				case !pc.seen[line]:
					st.Cold++
				case s.classifySharing(pc, line, addr, size, st):
					// counted inside
				case !shadowHit:
					st.Capacity++
				default:
					st.Conflict++
				}
			}
			pc.seen[line] = true
			delete(pc.inval, line)
			s.sharers[line] |= 1 << uint(p)
		}
	}
	if write {
		// Invalidate all other copies.
		mask := s.sharers[line]
		for q := 0; mask != 0; q++ {
			bit := uint64(1) << uint(q)
			if q != p && mask&bit != 0 {
				if s.procs[q].sets[line&s.setMask].remove(line) {
					s.procs[q].inval[line] = invalInfo{addr: addr, size: size}
				}
				if s.procs[q].shadow != nil {
					s.procs[q].shadow.remove(line)
				}
			}
			mask &^= bit
		}
		if s.cfg.WriteAllocate {
			s.sharers[line] = 1 << uint(p)
		} else {
			// The writer does not keep a copy; its own set entry (if the
			// line was previously read) stays valid locally.
			s.sharers[line] &= 1 << uint(p)
		}
	}
}

// classifySharing checks whether the read miss was caused by an
// invalidation, counting it if so.
func (s *Simulator) classifySharing(pc *procCache, line uint64, addr uint64, size int32, st *Stats) bool {
	info, ok := pc.inval[line]
	if !ok {
		return false
	}
	st.Sharing++
	// True sharing: the bytes now read overlap the bytes that were
	// written by the invalidating store.
	if addr < info.addr+uint64(info.size) && info.addr < addr+uint64(size) {
		st.TrueShr++
	}
	return true
}

// Stats returns the aggregate over all processors.
func (s *Simulator) Stats() Stats {
	var total Stats
	for p := range s.stats {
		total.Add(s.stats[p])
	}
	return total
}

// ProcStats returns one processor's counters.
func (s *Simulator) ProcStats(p int) Stats { return s.stats[p] }
