package cachesim

import (
	"testing"

	"mpeg2par/internal/memtrace"
)

func ev(proc int, addr uint64, size int, write bool) memtrace.Event {
	return memtrace.Event{Proc: int32(proc), Addr: addr, Size: int32(size), Write: write}
}

func run(t *testing.T, cfg Config, events []memtrace.Event) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(events); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 64, Procs: 1},
		{Size: 100, LineSize: 64, Procs: 1},
		{Size: 128, LineSize: 48, Procs: 1},
		{Size: 1024, LineSize: 64, Assoc: 3, Procs: 1},
		{Size: 1024, LineSize: 64, Procs: 0},
		{Size: 1024, LineSize: 64, Procs: 65},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, c)
		}
	}
}

func TestColdThenHit(t *testing.T) {
	s := run(t, Config{Size: 1024, LineSize: 64, Assoc: 0, Procs: 1}, []memtrace.Event{
		ev(0, 0, 64, false),
		ev(0, 0, 64, false),
	})
	st := s.Stats()
	if st.Reads != 32 { // 2 × 16 word references
		t.Fatalf("reads %d", st.Reads)
	}
	if st.ReadMisses != 1 || st.Cold != 1 {
		t.Fatalf("misses %d cold %d", st.ReadMisses, st.Cold)
	}
}

func TestSpatialLocalityLineSize(t *testing.T) {
	// Streaming reads: miss rate must halve when the line size doubles
	// (Figure 13's property).
	stream := []memtrace.Event{}
	for a := uint64(0); a < 1<<16; a += 16 {
		stream = append(stream, ev(0, a, 16, false))
	}
	var prev float64
	for i, line := range []int{16, 32, 64, 128, 256} {
		s := run(t, Config{Size: 1 << 20, LineSize: line, Assoc: 0, Procs: 1}, stream)
		mr := s.Stats().ReadMissRate()
		if i > 0 {
			ratio := prev / mr
			if ratio < 1.9 || ratio > 2.1 {
				t.Fatalf("line %d: miss rate %f, prev/mr = %f, want ~2", line, mr, ratio)
			}
		}
		prev = mr
	}
}

func TestCapacityMisses(t *testing.T) {
	// Working set of 128 lines cycled through a 64-line FA cache: every
	// access misses, classified capacity after the cold pass.
	var evs []memtrace.Event
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 128; i++ {
			evs = append(evs, ev(0, i*64, 4, false))
		}
	}
	s := run(t, Config{Size: 64 * 64, LineSize: 64, Assoc: 0, Procs: 1}, evs)
	st := s.Stats()
	if st.Cold != 128 {
		t.Fatalf("cold %d, want 128", st.Cold)
	}
	if st.Capacity != 256 || st.Conflict != 0 {
		t.Fatalf("capacity %d conflict %d, want 256/0", st.Capacity, st.Conflict)
	}
}

func TestConflictMisses(t *testing.T) {
	// Two lines mapping to the same set of a direct-mapped cache,
	// alternating: conflict misses (they fit in the FA shadow).
	cfg := Config{Size: 1024, LineSize: 64, Assoc: 1, Procs: 1} // 16 sets
	var evs []memtrace.Event
	for i := 0; i < 10; i++ {
		evs = append(evs, ev(0, 0, 4, false), ev(0, 1024, 4, false)) // same set 0
	}
	s := run(t, cfg, evs)
	st := s.Stats()
	if st.Cold != 2 {
		t.Fatalf("cold %d", st.Cold)
	}
	if st.Conflict != 18 || st.Capacity != 0 {
		t.Fatalf("conflict %d capacity %d, want 18/0", st.Conflict, st.Capacity)
	}
	// The same pattern in a 2-way cache has no conflicts.
	s2 := run(t, Config{Size: 1024, LineSize: 64, Assoc: 2, Procs: 1}, evs)
	if st2 := s2.Stats(); st2.ReadMisses != 2 {
		t.Fatalf("2-way misses %d, want 2", st2.ReadMisses)
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way set: touch A, B, A, then C evicts B (LRU), so B misses next.
	cfg := Config{Size: 2 * 64, LineSize: 64, Assoc: 2, Procs: 1} // one set
	a, b, c := uint64(0), uint64(64), uint64(128)
	s := run(t, cfg, []memtrace.Event{
		ev(0, a, 4, false), ev(0, b, 4, false), ev(0, a, 4, false),
		ev(0, c, 4, false), // evicts b
		ev(0, a, 4, false), // hit
		ev(0, b, 4, false), // miss (capacity: FA shadow is the same size here)
	})
	st := s.Stats()
	if st.ReadMisses != 4 {
		t.Fatalf("misses %d, want 4", st.ReadMisses)
	}
}

func TestSharingMisses(t *testing.T) {
	cfg := Config{Size: 1024, LineSize: 64, Assoc: 0, Procs: 2}
	s := run(t, cfg, []memtrace.Event{
		ev(0, 0, 64, false), // P0 cold
		ev(1, 0, 64, false), // P1 cold
		ev(1, 0, 8, true),   // P1 writes bytes 0..8 → invalidates P0
		ev(0, 0, 8, false),  // P0 true-sharing miss (overlap)
		ev(1, 32, 8, true),  // P1 writes bytes 32..40 → invalidates P0 again
		ev(0, 0, 8, false),  // P0 false-sharing miss (no overlap)
	})
	st := s.ProcStats(0)
	if st.Sharing != 2 {
		t.Fatalf("sharing misses %d, want 2", st.Sharing)
	}
	if st.TrueShr != 1 {
		t.Fatalf("true sharing %d, want 1", st.TrueShr)
	}
}

func TestWriteMissesCounted(t *testing.T) {
	// Default (write-no-allocate): writes never install, so both miss.
	s := run(t, Config{Size: 1024, LineSize: 64, Assoc: 0, Procs: 1}, []memtrace.Event{
		ev(0, 0, 64, true),
		ev(0, 0, 64, true),
	})
	st := s.Stats()
	if st.Writes != 32 || st.WriteMisses != 2 {
		t.Fatalf("no-allocate: writes %d misses %d", st.Writes, st.WriteMisses)
	}
	// With write-allocate the second write hits.
	s = run(t, Config{Size: 1024, LineSize: 64, Assoc: 0, Procs: 1, WriteAllocate: true}, []memtrace.Event{
		ev(0, 0, 64, true),
		ev(0, 0, 64, true),
	})
	st = s.Stats()
	if st.WriteMisses != 1 {
		t.Fatalf("write-allocate: misses %d, want 1", st.WriteMisses)
	}
	if st.MissRate() <= 0 {
		t.Fatal("miss rate zero")
	}
}

func TestWriteNoAllocateMakesRereadCold(t *testing.T) {
	// The methodology behind the locality figures: data written then read
	// back is a *cold* read miss because writes do not install lines.
	s := run(t, Config{Size: 1 << 20, LineSize: 64, Assoc: 0, Procs: 1}, []memtrace.Event{
		ev(0, 0, 64, true),
		ev(0, 0, 64, false),
		ev(0, 0, 64, false),
	})
	st := s.Stats()
	if st.ReadMisses != 1 || st.Cold != 1 {
		t.Fatalf("misses %d cold %d, want 1/1", st.ReadMisses, st.Cold)
	}
}

func TestExtentSplitsAcrossLines(t *testing.T) {
	// A 16-byte access straddling a line boundary touches two lines.
	s := run(t, Config{Size: 1024, LineSize: 64, Assoc: 0, Procs: 1}, []memtrace.Event{
		ev(0, 56, 16, false),
	})
	st := s.Stats()
	if st.ReadMisses != 2 {
		t.Fatalf("misses %d, want 2 (straddle)", st.ReadMisses)
	}
	if st.Reads != 4 { // 8 bytes in each line = 2+2 words
		t.Fatalf("reads %d, want 4", st.Reads)
	}
}

func TestBadProcessorRejected(t *testing.T) {
	s, err := New(Config{Size: 1024, LineSize: 64, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run([]memtrace.Event{ev(3, 0, 4, false)}); err == nil {
		t.Fatal("out-of-range processor must fail")
	}
}

func TestInvalidationRemovesFromShadow(t *testing.T) {
	// After invalidation, the re-read must be a sharing miss, not a
	// shadow-classified conflict.
	cfg := Config{Size: 256, LineSize: 64, Assoc: 1, Procs: 2}
	s := run(t, cfg, []memtrace.Event{
		ev(0, 0, 4, false),
		ev(1, 0, 4, true),
		ev(0, 0, 4, false),
	})
	st := s.ProcStats(0)
	if st.Sharing != 1 || st.Conflict != 0 {
		t.Fatalf("sharing %d conflict %d", st.Sharing, st.Conflict)
	}
}
