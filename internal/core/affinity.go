package core

import "fmt"

// Affinity selects how slice/row-group tasks are matched to workers by
// the task queue. Like Packing, every affinity produces bit-identical
// output — tasks of one picture write disjoint pixels — so the choice is
// purely a locality decision.
//
// AffinityRow is the variant the cache-locality study adopted (see
// DESIGN.md): a worker prefers tasks whose macroblock row r satisfies
// r mod workers == worker index. Because motion compensation of row r
// reads roughly row r of the reference picture, the worker that wrote a
// reference row is the one that later reads it back, turning the
// cross-picture reference traffic into per-processor cache reuse. The
// preference is work-conserving: a worker with no matching task takes
// the head task instead of idling, so the schedule can never be worse
// than the unconstrained queue by more than the preference scan.
type Affinity int

const (
	// AffinityRow steers tasks to workers by row modulo worker count
	// (the default, adopted by the locality study).
	AffinityRow Affinity = iota
	// AffinityNone hands tasks out in pure queue order, matching the
	// paper's no-locality dynamic assignment.
	AffinityNone
)

func (a Affinity) String() string {
	switch a {
	case AffinityRow:
		return "row"
	case AffinityNone:
		return "none"
	}
	return fmt.Sprintf("Affinity(%d)", int(a))
}

// taskRow returns the macroblock row of picture task ti, or -1 when the
// task has no meaningful row (whole-picture substitutes, empty groups).
// Slice-mode tasks are individual slices; resilient-plan tasks are row
// groups, keyed by their first slice's row; segments of a split slice
// are keyed by the row their entry point starts on.
func taskRow(p *picState, ti int) int {
	if p.tasks != nil {
		if ti < 0 || ti >= len(p.tasks) {
			return -1
		}
		t := p.tasks[ti]
		if t.join != nil {
			if t.seg == 0 {
				return t.join.sr.Row
			}
			if mbw := p.params.MBWidth; mbw > 0 {
				return (t.join.pts[t.seg-1].State.PrevAddr + 1) / mbw
			}
			return -1
		}
		ti = t.base
	}
	if p.groups != nil {
		if ti < 0 || ti >= len(p.groups) || len(p.groups[ti]) == 0 {
			return -1
		}
		return p.rng.Slices[p.groups[ti][0]].Row
	}
	if p.rng == nil || ti < 0 || ti >= len(p.rng.Slices) {
		return -1
	}
	return p.rng.Slices[ti].Row
}
