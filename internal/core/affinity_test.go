package core

import (
	"sync"
	"testing"

	"mpeg2par/internal/memtrace"
)

// TestAffinityInvariance pins that task steering never changes output:
// AffinityNone (the paper's dynamic assignment) must reproduce the
// sequential decode exactly, like the default AffinityRow, which every
// other test exercises.
func TestAffinityInvariance(t *testing.T) {
	res := testStream(t, 96, 64, 13, 13)
	want := sequentialFrames(t, res.Data)
	for _, aff := range []Affinity{AffinityRow, AffinityNone} {
		for _, mode := range []Mode{ModeSliceSimple, ModeSliceImproved} {
			var sink collectSink
			_, err := Decode(res.Data, Options{Mode: mode, Workers: 3, Affinity: aff, Sink: sink.add})
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, aff, err)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("%v/%v: %d frames, want %d", mode, aff, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("%v/%v: frame %d differs from sequential decode", mode, aff, i)
				}
			}
		}
	}
}

// affinityTestPic builds a picState with one slice per row, rows 0..n-1
// in stream order.
func affinityTestPic(n int) *picState {
	pr := &PictureRange{}
	for r := 0; r < n; r++ {
		pr.Slices = append(pr.Slices, SliceRange{Row: r})
	}
	return &picState{rng: pr, nTasks: n, remaining: n}
}

// TestPickTaskSteering checks the queue-level steering directly: with
// row affinity a worker receives rows ≡ its index (mod workers) while
// any remain, then falls back to whatever is left (work conservation),
// and every task is handed out exactly once.
func TestPickTaskSteering(t *testing.T) {
	const rows, workers = 8, 2
	q := &sliceQueue{workers: workers, affinity: AffinityRow}
	q.cond = sync.NewCond(&q.mu)
	p := affinityTestPic(rows)

	take := func(wi int) int {
		q.mu.Lock()
		defer q.mu.Unlock()
		ti := q.pickTask(p, wi)
		p.nextSlice++
		return p.rng.Slices[ti].Row
	}

	// Worker 1 drains its own residue class first...
	for _, want := range []int{1, 3, 5, 7} {
		if got := take(1); got != want {
			t.Fatalf("worker 1: got row %d, want %d", got, want)
		}
	}
	// ...then falls back to worker 0's rows rather than idling.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[take(1)] = true
	}
	for _, want := range []int{0, 2, 4, 6} {
		if !seen[want] {
			t.Fatalf("fallback never handed out row %d (got %v)", want, seen)
		}
	}
	if p.nextSlice != rows {
		t.Fatalf("handed out %d tasks, want %d", p.nextSlice, rows)
	}

	// AffinityNone must preserve pure queue order.
	q2 := &sliceQueue{workers: workers, affinity: AffinityNone}
	q2.cond = sync.NewCond(&q2.mu)
	p2 := affinityTestPic(rows)
	for want := 0; want < rows; want++ {
		q2.mu.Lock()
		ti := q2.pickTask(p2, 1)
		p2.nextSlice++
		q2.mu.Unlock()
		if p2.rng.Slices[ti].Row != want {
			t.Fatalf("AffinityNone: got row %d, want %d", p2.rng.Slices[ti].Row, want)
		}
	}
}

// TestPickTaskSteeringGroups checks steering over resilient-plan row
// groups: the group's row is its first slice's row.
func TestPickTaskSteeringGroups(t *testing.T) {
	pr := &PictureRange{Slices: []SliceRange{{Row: 0}, {Row: 1}, {Row: 1}, {Row: 2}}}
	p := &picState{rng: pr, groups: [][]int{{0}, {1, 2}, {3}}, nTasks: 3, remaining: 3}
	q := &sliceQueue{workers: 3, affinity: AffinityRow}
	q.cond = sync.NewCond(&q.mu)

	q.mu.Lock()
	gi := q.pickTask(p, 2) // worker 2 should get the row-2 group
	q.mu.Unlock()
	if want := 2; gi != want {
		t.Fatalf("worker 2: got group %d, want %d", gi, want)
	}
	if r := taskRow(p, gi); r != 2 {
		t.Fatalf("group %d row = %d, want 2", gi, r)
	}

	// Substitute pictures (nil group) have no row: steering must not
	// panic and must fall back to the head task.
	sub := &picState{rng: pr, groups: [][]int{nil}, nTasks: 1, remaining: 1}
	q.mu.Lock()
	gi = q.pickTask(sub, 1)
	q.mu.Unlock()
	if gi != 0 {
		t.Fatalf("substitute: got task %d, want 0", gi)
	}
	if r := taskRow(sub, 0); r != -1 {
		t.Fatalf("substitute row = %d, want -1", r)
	}
}

// TestTraceDecodeAssign pins that the two trace labelings cover the
// same reference stream — the same access sequence by kind and extent,
// with different processor labels. Addresses are not compared: private
// per-worker scratch buffers legitimately move when a task runs on a
// different processor.
func TestTraceDecodeAssign(t *testing.T) {
	// 80 rows high → 5 slices per picture: with 4 processors the
	// round-robin labeling shifts by one row each picture, so it cannot
	// coincide with the row labeling.
	res := testStream(t, 96, 80, 5, 5)
	run := func(aff Affinity) []memtrace.Event {
		rec := memtrace.NewRecorder()
		if err := TraceDecodeAssign(res.Data, ModeSliceSimple, 4, aff, rec); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	rr := run(AffinityNone)
	row := run(AffinityRow)
	if len(rr) != len(row) {
		t.Fatalf("event counts differ: %d round-robin vs %d row-affinity", len(rr), len(row))
	}
	differ := false
	for i := range rr {
		if rr[i].Size != row[i].Size || rr[i].Write != row[i].Write {
			t.Fatalf("event %d access differs between labelings", i)
		}
		if rr[i].Proc != row[i].Proc {
			differ = true
		}
	}
	if !differ {
		t.Fatal("labelings identical: row affinity never relabeled a task")
	}
}
