package core

import (
	"fmt"
	"sync"
	"time"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
)

// The assist path: deadline-tight rescue decoding for session tasks.
//
// A session always executes at GOP grain — one task decodes a whole
// group of pictures on one worker, which is the right steady-state
// grain for N streams on one pool. But when the service's slack
// predictor sees a frame that will *just* miss its deadline on one
// worker, and the pool has idle workers to spare, finer grain inside
// this one task buys the latency back: indexed tall slices fan out as
// parallel row segments through the split-decode verify-or-fallback
// chain (internal/core/split.go), which is bit-exact by construction —
// a failed verification re-decodes the slice sequentially, so assist
// can cost time but never pixels or error fate.

// decodeAssistPic is decodePlanPic with intra-slice fan-out: every
// slice that the split source (index or speculation) can cut into two
// or more row segments is decoded by up to `parts` goroutines; the
// rest decode inline exactly as the plain path would. Coverage, damage
// accounting, and concealment are identical to decodePlanPic — the
// goldens assert bit-equality under every policy.
func decodeAssistPic(seq *mpeg2.SequenceHeader, pics []*picState, idx, wi int, opt Options, scr *sliceScratch, parts int, sst *SplitStats) (decoder.WorkStats, ErrorStats, error) {
	p := pics[idx]
	f := p.frame
	var work decoder.WorkStats
	var es ErrorStats
	if p.fate == fateSubstitute {
		var src *frame.Frame
		if p.subFrom >= 0 {
			src = pics[p.subFrom].frame
		}
		if !f.CopyPixelsFrom(src) {
			f.Fill(128)
		}
		return work, es, nil
	}
	refs := decoder.Refs{}
	if p.fwd >= 0 {
		refs.Fwd = pics[p.fwd].frame
	}
	if p.bwd >= 0 {
		refs.Bwd = pics[p.bwd].frame
	}
	total := p.params.MBWidth * p.params.MBHeight
	covered := make([]bool, total)
	nCovered := 0
	last := len(p.rng.Slices) - 1
	optSplit := opt
	optSplit.SplitParts = parts
	for _, group := range p.groups {
		for _, si := range group {
			sr := p.rng.Slices[si]
			bound := p.sliceBound(si)
			var w decoder.WorkStats
			var addrs []int
			var err error
			if j := newSplitJoin(p.data, &p.params, si, sr, bound, optSplit, &scr.mbs); j != nil {
				w, addrs, err = runSegmentsAssist(seq, p, j, refs, f, wi, opt, scr, sst, parts)
			} else {
				w, addrs, err = decodeSliceRange(p.data, seq, &p.hdr, &p.params, sr, bound, refs, f, wi, opt.Tracer, scr)
			}
			work.Add(w)
			if err != nil {
				if opt.Resilience == FailFast {
					return work, es, err
				}
				es.DamagedSlices++
				if si != last {
					es.Resyncs++
				}
				continue
			}
			for _, a := range addrs {
				if a >= 0 && a < total && !covered[a] {
					covered[a] = true
					nCovered++
				}
			}
		}
	}
	if nCovered != total {
		if opt.Resilience == FailFast {
			return work, es, fmt.Errorf("core: picture at display %d covered %d of %d macroblocks", p.displayIdx, nCovered, total)
		}
		var ref *frame.Frame
		if p.fwd >= 0 {
			ref = pics[p.fwd].frame
		} else if p.bwd >= 0 {
			ref = pics[p.bwd].frame
		}
		mbw := p.params.MBWidth
		for a := 0; a < total; a++ {
			if !covered[a] {
				decoder.ConcealMB(f, ref, a%mbw, a/mbw)
				es.ConcealedMBs++
			}
		}
	}
	return work, es, nil
}

// runSegmentsAssist executes every segment of one split slice across up
// to `parts` goroutines (segment 0 inline on the caller, reusing its
// scratch) and returns the join's verdict: on a verify hit the
// concatenated parallel coverage, on a miss the sequential fallback's
// result — in both cases indistinguishable from a whole-slice decode.
// Work and split stats from every segment are summed; the returned
// error is only ever the fallback's, matching decodeSliceRange's
// contract at the call site.
func runSegmentsAssist(seq *mpeg2.SequenceHeader, p *picState, j *splitJoin, refs decoder.Refs, dst *frame.Frame, wi int, opt Options, scr *sliceScratch, sst *SplitStats, parts int) (decoder.WorkStats, []int, error) {
	nSeg := len(j.res)
	type segOut struct {
		work  decoder.WorkStats
		addrs []int
		err   error
		join  bool
		sst   SplitStats
	}
	outs := make([]segOut, nSeg)
	run := func(seg, lane int, s *sliceScratch, o *segOut) {
		t0 := time.Now()
		w, addrs, err := runSegment(seq, &p.hdr, &p.params, p.data, refs, dst, j, seg, lane, opt, opt.Tracer, s, &o.sst)
		o.work, o.addrs, o.err = w, addrs, err
		// Only the join call (last segment to finish) returns a result;
		// the others park theirs inside the join state.
		o.join = addrs != nil || err != nil
		opt.Obs.Record(obs.KindSegment, lane, t0, time.Since(t0), p.gop, p.displayIdx, seg)
	}
	if parts > nSeg {
		parts = nSeg
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parts-1)
	for seg := 1; seg < nSeg; seg++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(seg int) {
			defer wg.Done()
			defer func() { <-sem }()
			var s sliceScratch
			run(seg, wi, &s, &outs[seg])
		}(seg)
	}
	run(0, wi, scr, &outs[0])
	wg.Wait()
	var work decoder.WorkStats
	var addrs []int
	var err error
	for k := range outs {
		work.Add(outs[k].work)
		sst.Add(outs[k].sst)
		if outs[k].join {
			addrs, err = outs[k].addrs, outs[k].err
		}
	}
	return work, addrs, err
}
