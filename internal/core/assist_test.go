package core

import (
	"testing"

	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/vldsplit"
)

// assistDecode drives a Session the way the service's pool drives an
// assist-granted task: every unit is fed, marked SetAssist(parts), and
// run on one caller goroutine (the fan-out happens inside Run, exactly
// as when a pool worker executes the task with idle peers).
func assistDecode(t testing.TB, data []byte, opt Options, parts int) (*Stats, []*frame.Frame, error) {
	t.Helper()
	m, err := ScanLenient(data)
	if err != nil {
		t.Fatal(err)
	}
	var sink collectSink
	opt.Sink = sink.add
	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	for gi := range m.GOPs {
		u := Unit{G: gi, Data: data, Range: m.GOPs[gi], Seq: m.Seq}
		tk, ferr := sess.Feed(u)
		if ferr != nil {
			runErr = ferr
			break
		}
		if tk == nil {
			continue
		}
		tk.SetAssist(parts)
		if rerr := sess.Run(tk, 0); rerr != nil {
			runErr = rerr
			break
		}
	}
	st, ferr := sess.Finish(runErr)
	if runErr == nil {
		runErr = ferr
	}
	return st, sink.frames, runErr
}

// TestAssistIndexedBitExact is the assist contract: a task fanned out
// across parallel row segments by the dispatch-time assist grant
// reproduces the sequential oracle bit for bit, on an exact index every
// segment chain verifies, and nothing is accounted as damage.
func TestAssistIndexedBitExact(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	ix := buildIndex(t, res.Data)

	for _, parts := range []int{2, 3} {
		for _, policy := range []Resilience{FailFast, ConcealSlice} {
			st, frames, err := assistDecode(t, res.Data, Options{
				Workers: 2, Resilience: policy, SplitIndex: ix,
			}, parts)
			if err != nil {
				t.Fatalf("parts=%d %v: %v", parts, policy, err)
			}
			if st.Split.SlicesSplit == 0 {
				t.Fatalf("parts=%d %v: assist split no slices on a tall-slice stream", parts, policy)
			}
			if st.Split.VerifyMisses != 0 || st.Split.Fallbacks != 0 {
				t.Fatalf("parts=%d %v: exact index missed verification: %+v", parts, policy, st.Split)
			}
			if st.Errors.Any() {
				t.Fatalf("parts=%d %v: clean stream accounted damage: %+v", parts, policy, st.Errors)
			}
			if len(frames) != len(want) {
				t.Fatalf("parts=%d %v: %d frames, want %d", parts, policy, len(frames), len(want))
			}
			for i := range want {
				if !frames[i].Equal(want[i]) {
					t.Fatalf("parts=%d %v: frame %d differs from sequential", parts, policy, i)
				}
			}
		}
	}
}

// TestAssistSpeculativeBitExact: assist with guessed split points (no
// index) must also never diverge — a wrong guess costs a fallback,
// never wrong pixels.
func TestAssistSpeculativeBitExact(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	st, frames, err := assistDecode(t, res.Data, Options{
		Workers: 2, Resilience: ConcealSlice, SpeculativeSplit: true,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors.Any() {
		t.Fatalf("clean stream accounted damage under speculative assist: %+v", st.Errors)
	}
	if len(frames) != len(want) {
		t.Fatalf("%d frames, want %d", len(frames), len(want))
	}
	for i := range want {
		if !frames[i].Equal(want[i]) {
			t.Fatalf("frame %d differs from sequential under speculative assist", i)
		}
	}
}

// TestAssistPoisonedIndexFallsBack: an assist-granted task given wrong
// split points must fail verification and re-decode sequentially —
// identical output, only time lost.
func TestAssistPoisonedIndexFallsBack(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	ix := buildIndex(t, res.Data)

	poisoned := vldsplit.NewIndex()
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range m.GOPs {
		for pi := range m.GOPs[gi].Pictures {
			for _, sr := range m.GOPs[gi].Pictures[pi].Slices {
				sd := res.Data[sr.Offset:sr.End]
				pts := ix.Lookup(sd)
				if pts == nil {
					continue
				}
				bad := append([]vldsplit.Point(nil), pts...)
				for i := range bad {
					bad[i].BitOff += 7 // valid range, wrong position
				}
				if err := poisoned.Add(sd, bad); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if poisoned.Slices() == 0 {
		t.Fatal("built no poisoned entries")
	}

	st, frames, err := assistDecode(t, res.Data, Options{
		Workers: 2, SplitIndex: poisoned,
	}, 3)
	if err != nil {
		t.Fatalf("poisoned index broke a FailFast assist decode: %v", err)
	}
	if st.Split.Fallbacks == 0 {
		t.Fatalf("poisoned index produced no fallbacks: %+v", st.Split)
	}
	if st.Split.VerifyHits != 0 {
		t.Fatalf("poisoned points verified: %+v", st.Split)
	}
	for i := range want {
		if !frames[i].Equal(want[i]) {
			t.Fatalf("frame %d differs under poisoned assist", i)
		}
	}
}

// TestAssistFaultedGolden: assist on damaged streams must agree with
// the sequential non-split reference — frames and ErrorStats — under
// every conceal policy. Damage changes slice bytes, so the
// content-keyed index stops matching damaged slices; intact ones still
// split.
func TestAssistFaultedGolden(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	ix := buildIndex(t, res.Data)
	sp, err := faults.Parse("burst:count=2,len=24")
	if err != nil {
		t.Fatal(err)
	}
	anyDamage := false
	for seed := int64(1); seed <= 3; seed++ {
		mut, _ := sp.Apply(res.Data, seed)
		for _, policy := range []Resilience{ConcealSlice, ConcealPicture} {
			want, wantSt, refErr := decodeResilientRun(t, mut, ModeSequential, 1, policy)
			if wantSt != nil && wantSt.Errors.Any() {
				anyDamage = true
			}
			st, frames, err := assistDecode(t, mut, Options{
				Workers: 2, Resilience: policy, SplitIndex: ix,
			}, 3)
			if (err != nil) != (refErr != nil) {
				t.Fatalf("seed %d %v: assist err=%v, sequential err=%v", seed, policy, err, refErr)
			}
			if err != nil {
				continue
			}
			if st.Errors != wantSt.Errors {
				t.Fatalf("seed %d %v: assist errors %+v, sequential %+v", seed, policy, st.Errors, wantSt.Errors)
			}
			if len(frames) != len(want) {
				t.Fatalf("seed %d %v: %d frames, want %d", seed, policy, len(frames), len(want))
			}
			for i := range want {
				if !frames[i].Equal(want[i]) {
					t.Fatalf("seed %d %v: frame %d differs from sequential", seed, policy, i)
				}
			}
		}
	}
	if !anyDamage {
		t.Fatal("no fault actually damaged the stream; raise the burst size")
	}
}
