package core

import (
	"mpeg2par/internal/sched"
)

// AutoDecision records how a ModeAuto run resolved: the concrete mode
// and worker count the policy picked from the stream's geometry, and —
// on the streaming path — what the online tuner did afterwards.
type AutoDecision struct {
	Mode    Mode
	Workers int
	// Reason is the policy's one-line justification (predicted speedup
	// and the geometry it came from).
	Reason string

	// Streaming-only: how many GOP-boundary re-evaluations ran and the
	// active-worker limit in force when the pipeline finished. Zero /
	// equal to Workers on the batch paths (no online tuning there).
	Reevals          int
	FinalWorkerLimit int
}

// maxSliceDetail caps how many pictures of per-slice cost detail feed
// the mode policy. The policy normalizes by predicted speedup, so a
// prefix sample is representative; the cap keeps auto resolution O(1)
// in stream length.
const maxSliceDetail = 64

// autoGeometry flattens scanned groups into the policy's cost view.
func autoGeometry(gops []GOPRange) sched.Geometry {
	var g sched.Geometry
	g.GOPs = len(gops)
	g.GOPBytes = gopCosts(gops)
	for i := range gops {
		g.TotalBytes += g.GOPBytes[i]
		for pi := range gops[i].Pictures {
			pr := &gops[i].Pictures[pi]
			g.Pictures++
			if len(g.SliceBytes) < maxSliceDetail {
				g.SliceBytes = append(g.SliceBytes, sliceCosts(pr.Slices))
			}
		}
	}
	return g
}

// modeOfHint maps the policy's verdict onto a concrete decode mode.
// HintSlice selects the improved slice variant — the paper's
// best-scaling discipline and the one the policy's per-picture makespan
// bound is pessimistic for.
func modeOfHint(h sched.ModeHint) Mode {
	switch h {
	case sched.HintGOP:
		return ModeGOP
	case sched.HintSlice:
		return ModeSliceImproved
	}
	return ModeSequential
}

// projectGeometry replicates a single-group geometry n times: the
// streaming path's forecast of the stream from its first group, sized
// to what the scan-ahead window can hold in flight. Multi-group
// geometries pass through unchanged.
func projectGeometry(g sched.Geometry, n int) sched.Geometry {
	if n < 2 || g.GOPs != 1 {
		return g
	}
	out := g
	out.GOPs = n
	out.Pictures = g.Pictures * n
	out.TotalBytes = g.TotalBytes * int64(n)
	out.GOPBytes = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out.GOPBytes = append(out.GOPBytes, g.GOPBytes...)
	}
	// The per-slice detail stays the first group's sample; the policy
	// normalizes by speedup, so a representative prefix suffices.
	return out
}

// resolveAuto replaces ModeAuto in opt with the policy's concrete mode
// and worker count for the scanned workload, and returns the decision
// record for Stats.
func resolveAuto(gops []GOPRange, opt Options) (Options, *AutoDecision) {
	c := sched.Choose(autoGeometry(gops), opt.Workers, opt.Cost)
	opt.Mode = modeOfHint(c.Mode)
	opt.Workers = c.Workers
	return opt, &AutoDecision{
		Mode:             opt.Mode,
		Workers:          c.Workers,
		Reason:           c.Reason,
		FinalWorkerLimit: c.Workers,
	}
}
