package core

import (
	"errors"
	"fmt"
	"time"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/sched"
	"mpeg2par/internal/vldsplit"
)

// ErrBadOption is the sentinel every option-validation failure wraps:
// errors.Is(err, ErrBadOption) distinguishes a misconfigured decode from
// stream damage, and the wrapping message names the offending option.
var ErrBadOption = errors.New("invalid option")

// badOption reports an option-validation failure, naming the option.
func badOption(format string, args ...any) error {
	return fmt.Errorf("core: %w: %s", ErrBadOption, fmt.Sprintf(format, args...))
}

// Mode selects the parallelization strategy.
type Mode int

// The decoder variants the paper evaluates.
const (
	// ModeGOP is the coarse-grained decoder: one task per group of
	// pictures (§5.1).
	ModeGOP Mode = iota
	// ModeSliceSimple is the fine-grained decoder with a barrier after
	// every picture (§5.2, "simple slice version").
	ModeSliceSimple
	// ModeSliceImproved synchronizes only at the end of reference (I/P)
	// pictures, letting B pictures and the next reference overlap (§5.2,
	// "improved slice version").
	ModeSliceImproved
	// ModeSequential decodes on a single worker from the same scanned
	// plan as the parallel modes. It is the reference the error-resilience
	// golden tests compare every parallel mode against: for a given stream
	// and policy all four modes produce bit-identical frames.
	ModeSequential
	// ModeAuto lets the scheduler pick: the cost-model policy
	// (internal/sched) predicts how well the workload balances at GOP and
	// slice grain and resolves to sequential, GOP, or improved-slice mode
	// with a worker count at the efficiency knee. Stats.Auto records the
	// decision; Options.Workers becomes the worker-count ceiling.
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeGOP:
		return "gop"
	case ModeSliceSimple:
		return "slice-simple"
	case ModeSliceImproved:
		return "slice-improved"
	case ModeSequential:
		return "sequential"
	case ModeAuto:
		return "auto"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures a parallel decode.
type Options struct {
	Mode    Mode
	Workers int // number of worker processes (paper's P); >= 1

	// Sink receives every frame in display order, from the display
	// process. The frame is only valid during the call (it returns to
	// the pool afterwards). Nil discards output.
	Sink func(*frame.Frame)

	// Tracer, when non-nil, receives the reconstruction memory-reference
	// stream tagged with worker ids.
	Tracer memtrace.Tracer

	// Profile, when true, records per-task costs (single-worker runs are
	// the meaningful profile source for the deterministic simulator).
	Profile bool

	// Conceal makes damaged slices non-fatal: their macroblocks are
	// filled by zero-vector temporal concealment and decoding continues.
	//
	// Deprecated shim kept for the legacy per-mode paths; new code should
	// select a Resilience policy instead, which additionally guarantees
	// bit-identical output across all scheduling modes.
	Conceal bool

	// Resilience selects the error-resilience ladder (FailFast default).
	// Any policy above FailFast routes the decode through the shared-plan
	// executor, where all scheduling modes produce bit-identical frames
	// and identical ErrorStats for the same damaged stream.
	Resilience Resilience

	// MaxInFlight bounds the streaming pipeline's scan-ahead window: how
	// many GOP units may be buffered or decoding at once before the scan
	// process blocks (backpressure). Zero selects 2×Workers+2. The batch
	// paths ignore it.
	MaxInFlight int

	// Obs, when non-nil, receives structured scheduling events from every
	// process of the decode — task spans, queue and barrier waits, scan,
	// feed, and display events — for timeline export and load-balance
	// reports. Nil (the default) keeps the scheduling paths event-free:
	// each hook is a single pointer test.
	Obs *obs.Tracer

	// Affinity selects row→worker task steering in the slice queues (see
	// Affinity). The zero value AffinityRow — adopted by the locality
	// study — steers each row to the worker that handled that row of the
	// reference picture; AffinityNone restores the paper's pure dynamic
	// assignment. Output is bit-identical either way.
	Affinity Affinity

	// Packing selects the task-queue order (see Packing); the default is
	// longest-processing-time-first by byte-size cost. Output is
	// bit-identical under every packing.
	Packing Packing
	// PackSeed seeds PackRandom (ordering-invariance property tests).
	PackSeed int64

	// Cost, when non-nil, is fed one (compressed bytes, wall duration)
	// observation per completed task, calibrating byte-size cost
	// estimates into absolute time across runs. Shared across decodes;
	// ModeAuto uses it to phrase its decision in predicted wall time.
	Cost *sched.CostModel

	// SplitIndex, when non-nil, supplies exact intra-slice split points
	// (see internal/vldsplit): slices spanning two or more macroblock
	// rows whose content the index knows are fanned out as parallel
	// row-segments in the slice-grain modes. Output stays bit-exact —
	// the join verifies every segment chain and falls back to a
	// sequential re-decode on any mismatch, so even a poisoned index
	// only costs time.
	SplitIndex *vldsplit.Index

	// SpeculativeSplit enables guessed split points for tall slices the
	// index does not cover (or when no index is given): resync
	// candidates are found by trial-parsing near even payload fractions
	// and verified at the join exactly like indexed points. A wrong
	// guess costs a sequential fallback, never wrong pixels.
	SpeculativeSplit bool

	// SplitParts overrides how many segments a split slice targets
	// (0 selects max(Workers, 2)). Profiling runs set it to capture
	// per-segment costs on a single worker.
	SplitParts int
}

// EffectiveWorkers returns the worker count a decode in this mode
// actually uses: ModeSequential always runs on one worker regardless of
// Options.Workers. Stats.Workers reports this value, so the gauge is
// truthful in every mode.
func (o Options) EffectiveWorkers() int {
	if o.Mode == ModeSequential {
		return 1
	}
	return o.Workers
}

// EffectiveMaxInFlight resolves the scan-ahead window for the streaming
// pipeline.
func (o Options) EffectiveMaxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	w := o.Workers
	if w < 1 {
		w = 1
	}
	return 2*w + 2
}

// WorkerStats describes one worker process's time breakdown.
type WorkerStats struct {
	Busy  time.Duration // decoding
	Wait  time.Duration // blocked on the task queue / picture barrier
	Tasks int
}

// TaskCost is a profiled task duration.
type TaskCost struct {
	Cost time.Duration
	Work decoder.WorkStats
}

// PicProfile is the per-picture slice cost profile used by the simulator.
type PicProfile struct {
	Ref        bool // reference (I or P) picture
	Type       byte
	SliceCosts []time.Duration
	HeaderCost time.Duration // per-picture overhead (header parse, open)
	DisplayIdx int
}

// Stats reports a parallel decode run.
type Stats struct {
	Mode      Mode
	Workers   int
	Pictures  int
	Displayed int
	// Kernels is the reconstruction kernel tier the decode ran with,
	// with hardware context when vectorized: "asm(avx2)", "swar",
	// "scalar" (see internal/kernels).
	Kernels  string
	Wall     time.Duration // decode wall time (excluding scan)
	ScanTime time.Duration
	ScanRate float64 // pictures/second in the scan process

	WorkerStats []WorkerStats
	Work        decoder.WorkStats

	// Concealed counts macroblocks recovered by error concealment.
	Concealed int

	// Errors accounts the damage a resilient decode recovered from; for a
	// given stream and policy it is identical across all scheduling modes.
	Errors ErrorStats

	// Shed accounts pictures sacrificed by the multi-stream service's
	// graceful-degradation ladder (load shedding and degraded-resilience
	// recoveries). Always zero on the single-stream paths, and strictly
	// disjoint from Errors: a shed picture is never also counted as a
	// decode error.
	Shed ShedStats

	// Split accounts the intra-slice split decoder (zero unless
	// Options.SplitIndex or Options.SpeculativeSplit was set and tall
	// slices were found). Disjoint from Errors and Shed: a verify miss
	// is a failed speculation, not stream damage.
	Split SplitStats

	// Auto records a ModeAuto run's scheduling decision (nil for fixed
	// modes). Stats.Mode and Stats.Workers report the resolved values.
	Auto *AutoDecision

	// PeakFrameBytes is the high watermark of decoded-picture memory —
	// the quantity Figures 8 and 9 study.
	PeakFrameBytes int64
	// FramesAllocated is the cumulative number of distinct frame buffers.
	FramesAllocated int64

	// Streaming-pipeline gauges (zero on the batch paths).

	// PeakInFlightBytes is the high watermark of buffered bitstream
	// bytes: the scan window plus GOP task buffers not yet decoded. It is
	// bounded by the scan-ahead window (Options.MaxInFlight) and the GOP
	// size, never by stream length — the paper's §5 memory claim, made
	// measurable.
	PeakInFlightBytes int64
	// ScanLeadPeak is the peak of pictures scanned minus pictures
	// displayed: how far the scan process ran ahead of the display
	// process.
	ScanLeadPeak int
	// LeakedFrameBytes counts frame-pool bytes unaccounted for at
	// pipeline teardown. It is zero on every clean or cancelled run; the
	// cancellation tests assert it.
	LeakedFrameBytes int64

	// Profiles (only with Options.Profile).
	GOPCosts  []TaskCost
	SliceProf []PicProfile
}

// PicturesPerSecond returns decoded pictures per wall second.
func (s *Stats) PicturesPerSecond() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Pictures) / s.Wall.Seconds()
}

// Decode runs the parallel decoder over a complete elementary stream.
func Decode(data []byte, opt Options) (*Stats, error) {
	if opt.Workers < 1 {
		return nil, badOption("Workers=%d (need at least one worker)", opt.Workers)
	}
	scanFn := Scan
	if opt.Resilience != FailFast {
		scanFn = ScanLenient
	}
	scanStart := time.Now()
	m, err := scanFn(data)
	if err != nil {
		return nil, err
	}
	opt.Obs.Record(obs.KindScan, obs.LaneScan, scanStart, m.ScanTime, -1, -1, -1)
	return DecodeScanned(data, m, opt)
}

// DecodeScanned runs the parallel decoder over a pre-scanned stream
// (callers sweeping worker counts scan once).
func DecodeScanned(data []byte, m *StreamMap, opt Options) (*Stats, error) {
	if opt.Workers < 1 {
		return nil, badOption("Workers=%d (need at least one worker)", opt.Workers)
	}
	if opt.SplitParts < 0 {
		return nil, badOption("SplitParts=%d (must be >= 0)", opt.SplitParts)
	}
	var auto *AutoDecision
	if opt.Mode == ModeAuto {
		opt, auto = resolveAuto(m.GOPs, opt)
	}
	st := &Stats{
		Mode:     opt.Mode,
		Workers:  opt.EffectiveWorkers(),
		Kernels:  kernels.Describe(),
		ScanTime: m.ScanTime,
		ScanRate: m.ScanRate(),
		Auto:     auto,
	}
	opt.Obs.SetMeta(opt.Mode.String(), st.Workers)
	var err error
	switch {
	case opt.Mode == ModeSequential || opt.Resilience != FailFast:
		// The resilient shared-plan executor; also the FailFast sequential
		// baseline. The legacy per-mode paths below stay byte-for-byte
		// untouched, keeping FailFast parallel decode at zero overhead.
		err = decodeResilient(data, m, opt, st)
	case opt.Mode == ModeGOP:
		err = decodeGOPMode(data, m, opt, st)
	case opt.Mode == ModeSliceSimple || opt.Mode == ModeSliceImproved:
		err = decodeSliceMode(data, m, opt, st)
	default:
		err = badOption("Mode=%d (unknown mode)", int(opt.Mode))
	}
	if err != nil {
		return nil, err
	}
	return st, nil
}
