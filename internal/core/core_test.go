package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// encodeStream builds a test stream once per geometry.
var streamCache sync.Map

type streamKey struct {
	w, h, pics, gop int
}

func testStream(t testing.TB, w, h, pics, gop int) *encoder.Result {
	t.Helper()
	key := streamKey{w, h, pics, gop}
	if v, ok := streamCache.Load(key); ok {
		return v.(*encoder.Result)
	}
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: w, Height: h, Pictures: pics, GOPSize: gop,
		RepeatSequenceHeader: true,
	}, frame.NewSynth(w, h))
	if err != nil {
		t.Fatal(err)
	}
	streamCache.Store(key, res)
	return res
}

func sequentialFrames(t testing.TB, data []byte) []*frame.Frame {
	t.Helper()
	d, err := decoder.New(data)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestScanStructure(t *testing.T) {
	res := testStream(t, 80, 48, 12, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GOPs) != 3 {
		t.Fatalf("scanned %d GOPs, want 3", len(m.GOPs))
	}
	if m.TotalPictures != 12 {
		t.Fatalf("scanned %d pictures, want 12", m.TotalPictures)
	}
	for g, gop := range m.GOPs {
		if len(gop.Pictures) != 4 {
			t.Fatalf("GOP %d has %d pictures", g, len(gop.Pictures))
		}
		if gop.FirstDisplay != g*4 {
			t.Fatalf("GOP %d firstDisplay %d", g, gop.FirstDisplay)
		}
		if !gop.Closed {
			t.Fatalf("GOP %d not closed", g)
		}
		for pi, p := range gop.Pictures {
			if len(p.Slices) != 3 { // 48 px = 3 macroblock rows
				t.Fatalf("GOP %d picture %d has %d slices, want 3", g, pi, len(p.Slices))
			}
			for si, s := range p.Slices {
				if s.Row != si {
					t.Fatalf("slice row %d at position %d", s.Row, si)
				}
				if s.End <= s.Offset {
					t.Fatalf("empty slice range %+v", s)
				}
			}
		}
		// Decode-order types: I P B B.
		want := "IPBB"
		for pi, p := range gop.Pictures {
			if got := "?IPB"[int(p.Type)]; got != want[pi] {
				t.Fatalf("GOP %d picture %d type %c, want %c", g, pi, got, want[pi])
			}
		}
	}
	if m.ScanRate() <= 0 {
		t.Fatal("scan rate not measured")
	}
}

func TestScanErrors(t *testing.T) {
	if _, err := Scan([]byte{0, 0, 1, 0xB3}); err == nil {
		t.Fatal("truncated sequence header must fail")
	}
	if _, err := Scan([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("no startcodes must fail")
	}
	// Slice before any picture.
	if _, err := Scan([]byte{0, 0, 1, 0x01, 0x12, 0x34}); err == nil {
		t.Fatal("orphan slice must fail")
	}
}

// collectSink gathers deep copies of displayed frames.
type collectSink struct {
	mu     sync.Mutex
	frames []*frame.Frame
}

func (c *collectSink) add(f *frame.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f.Clone())
	c.mu.Unlock()
}

func TestParallelMatchesSequential(t *testing.T) {
	res := testStream(t, 96, 64, 13, 13)
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		for _, workers := range []int{1, 2, 3, 7} {
			var sink collectSink
			st, err := Decode(res.Data, Options{Mode: mode, Workers: workers, Sink: sink.add})
			if err != nil {
				t.Fatalf("%v/%d: %v", mode, workers, err)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("%v/%d: %d frames, want %d", mode, workers, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("%v/%d: frame %d differs from sequential decode", mode, workers, i)
				}
				if sink.frames[i].PictureType != want[i].PictureType {
					t.Fatalf("%v/%d: frame %d type %c vs %c", mode, workers,
						i, sink.frames[i].PictureType, want[i].PictureType)
				}
			}
			if st.Displayed != len(want) {
				t.Fatalf("%v/%d: displayed %d", mode, workers, st.Displayed)
			}
		}
	}
}

func TestParallelMultiGOP(t *testing.T) {
	res := testStream(t, 80, 48, 16, 4)
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		var sink collectSink
		_, err := Decode(res.Data, Options{Mode: mode, Workers: 4, Sink: sink.add})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range want {
			if !sink.frames[i].Equal(want[i]) {
				t.Fatalf("%v: frame %d differs", mode, i)
			}
		}
	}
}

func TestWorkerStatsAccounting(t *testing.T) {
	res := testStream(t, 96, 64, 13, 13)
	st, err := Decode(res.Data, Options{Mode: ModeSliceImproved, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.WorkerStats) != 3 {
		t.Fatalf("%d worker stats", len(st.WorkerStats))
	}
	totalTasks := 0
	for _, ws := range st.WorkerStats {
		totalTasks += ws.Tasks
	}
	if totalTasks != 13*4 { // 64px high → 4 slices per picture
		t.Fatalf("%d slice tasks, want %d", totalTasks, 13*4)
	}
	if st.Work.MBs != 13*6*4 {
		t.Fatalf("Work.MBs = %d", st.Work.MBs)
	}
}

func TestFrameMemoryBounded(t *testing.T) {
	// Slice-mode live frame memory stays at a handful of pictures no
	// matter the GOP size, and with in-order execution (which is what a
	// single-CPU host gives the goroutine engine) the GOP mode needs only
	// its reference window too. The worker-count-dependent growth of the
	// GOP mode under real concurrency is reproduced by the deterministic
	// simulator (see internal/simsched), not this wall-clock engine.
	res := testStream(t, 96, 64, 24, 4)
	frameBytes := int64(frame.New(96, 64).Bytes())
	// The live set is the reference window plus the pipeline window the
	// queue's flow control admits (workers+4 pictures) — never the GOP
	// size, which is the paper's claim.
	bound := func(workers int) int64 { return int64(workers+4+4) * frameBytes }
	for _, mode := range []Mode{ModeSliceSimple, ModeSliceImproved} {
		for _, workers := range []int{1, 6} {
			st, err := Decode(res.Data, Options{Mode: mode, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if st.PeakFrameBytes > bound(workers) {
				t.Errorf("%v/%d: peak %d bytes > %d", mode, workers, st.PeakFrameBytes, bound(workers))
			}
		}
	}
	// Larger GOPs must not increase the slice decoder's footprint: a
	// single 31-picture GOP stays within the same worker-scaled bound.
	res31 := testStream(t, 96, 64, 31, 31)
	st31, err := Decode(res31.Data, Options{Mode: ModeSliceImproved, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st31.PeakFrameBytes > bound(6) {
		t.Errorf("slice peak grows with GOP size: %d bytes > %d", st31.PeakFrameBytes, bound(6))
	}
}

func TestProfileCollection(t *testing.T) {
	res := testStream(t, 96, 64, 13, 13)
	st, err := Decode(res.Data, Options{Mode: ModeGOP, Workers: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.GOPCosts) != 1 || st.GOPCosts[0].Cost <= 0 {
		t.Fatalf("GOP profile missing: %+v", st.GOPCosts)
	}
	st2, err := Decode(res.Data, Options{Mode: ModeSliceImproved, Workers: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.SliceProf) != 13 {
		t.Fatalf("%d picture profiles", len(st2.SliceProf))
	}
	refs := 0
	for _, p := range st2.SliceProf {
		if len(p.SliceCosts) != 4 {
			t.Fatalf("picture has %d slice costs", len(p.SliceCosts))
		}
		for _, c := range p.SliceCosts {
			if c <= 0 {
				t.Fatal("unmeasured slice cost")
			}
		}
		if p.Ref {
			refs++
		}
	}
	if refs != 5 { // I + 4 P in a 13-picture M=3 GOP
		t.Fatalf("%d reference pictures profiled, want 5", refs)
	}
}

func TestDecodeErrors(t *testing.T) {
	res := testStream(t, 80, 48, 4, 4)
	if _, err := Decode(res.Data, Options{Mode: ModeGOP, Workers: 0}); err == nil {
		t.Fatal("zero workers must fail")
	}
	if _, err := Decode(nil, Options{Mode: ModeGOP, Workers: 1}); err == nil {
		t.Fatal("empty stream must fail")
	}
	// Corrupt a slice body: the run must fail, not hang.
	mut := append([]byte(nil), res.Data...)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	sl := m.GOPs[0].Pictures[0].Slices[1]
	for i := sl.Offset + 5; i < sl.End && i < sl.Offset+12; i++ {
		mut[i] = 0xFF
	}
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		if _, err := Decode(mut, Options{Mode: mode, Workers: 3}); err == nil {
			t.Fatalf("%v: corrupted slice must fail", mode)
		}
	}
}

func TestConcealedParallelDecode(t *testing.T) {
	// A damaged slice must not kill the parallel decode when concealment
	// is enabled — every mode recovers and reports what it patched.
	res := testStream(t, 96, 64, 8, 8)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), res.Data...)
	sl := m.GOPs[0].Pictures[1].Slices[1] // a P-picture slice
	for i := sl.Offset + 6; i < sl.Offset+14 && i < sl.End; i++ {
		mut[i] = 0
	}
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		// Without concealment: error.
		if _, err := Decode(mut, Options{Mode: mode, Workers: 2}); err == nil {
			t.Fatalf("%v: corruption must fail without concealment", mode)
		}
		// With concealment: full output.
		var sink collectSink
		st, err := Decode(mut, Options{Mode: mode, Workers: 2, Conceal: true, Sink: sink.add})
		if err != nil {
			t.Fatalf("%v: concealed decode failed: %v", mode, err)
		}
		if st.Displayed != 8 || len(sink.frames) != 8 {
			t.Fatalf("%v: displayed %d", mode, st.Displayed)
		}
		if st.Concealed == 0 {
			t.Fatalf("%v: nothing concealed", mode)
		}
	}
}

func TestParallelDecodeWithoutGOPHeaders(t *testing.T) {
	// MPEG-2 makes the GOP layer optional (the paper's footnote 9): the
	// scan process must synthesize groups from the repeated sequence
	// headers and every parallel mode must still decode correctly.
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 80, Height: 48, Pictures: 12, GOPSize: 4, OmitGOPHeaders: true,
	}, frame.NewSynth(80, 48))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GOPs) != 3 {
		t.Fatalf("scan synthesized %d groups, want 3", len(m.GOPs))
	}
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		var sink collectSink
		if _, err := Decode(res.Data, Options{Mode: mode, Workers: 3, Sink: sink.add}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(sink.frames) != len(want) {
			t.Fatalf("%v: %d frames", mode, len(sink.frames))
		}
		for i := range want {
			if !sink.frames[i].Equal(want[i]) {
				t.Fatalf("%v: frame %d differs", mode, i)
			}
		}
	}
}

func TestParallelEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := testStream(t, 80, 48, 8, 8)
	want := sequentialFrames(t, res.Data)
	f := func(modeRaw, workersRaw uint8) bool {
		mode := Mode(modeRaw % 3)
		workers := int(workersRaw%8) + 1
		var sink collectSink
		_, err := Decode(res.Data, Options{Mode: mode, Workers: workers, Sink: sink.add})
		if err != nil {
			t.Logf("%v/%d: %v", mode, workers, err)
			return false
		}
		if len(sink.frames) != len(want) {
			return false
		}
		for i := range want {
			if !sink.frames[i].Equal(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeGOP4Workers(b *testing.B) {
	res := testStream(b, 176, 120, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(res.Data, Options{Mode: ModeGOP, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSliceImproved4Workers(b *testing.B) {
	res := testStream(b, 176, 120, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(res.Data, Options{Mode: ModeSliceImproved, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcurrentIndependentDecodes(t *testing.T) {
	// Several parallel decodes of different streams at once must not
	// interfere (a video server decodes many channels in one process).
	resA := testStream(t, 96, 64, 8, 4)
	resB := testStream(t, 80, 48, 12, 4)
	wantA := sequentialFrames(t, resA.Data)
	wantB := sequentialFrames(t, resB.Data)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			var sink collectSink
			if _, err := Decode(resA.Data, Options{Mode: ModeSliceImproved, Workers: 2, Sink: sink.add}); err != nil {
				errs <- err
				return
			}
			for i := range wantA {
				if !sink.frames[i].Equal(wantA[i]) {
					errs <- fmt.Errorf("stream A frame %d differs", i)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			var sink collectSink
			if _, err := Decode(resB.Data, Options{Mode: ModeGOP, Workers: 2, Sink: sink.add}); err != nil {
				errs <- err
				return
			}
			for i := range wantB {
				if !sink.frames[i].Equal(wantB[i]) {
					errs <- fmt.Errorf("stream B frame %d differs", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelGoldenWorkerSweep is the bit-exactness acceptance sweep for
// the optimized decode kernels: every parallel mode at workers 1, 2, 4
// and 8 must match the sequential decoder frame-for-frame on a SIF-sized
// multi-GOP stream (the perf harness's reference geometry, scaled down in
// picture count to stay test-speed).
func TestParallelGoldenWorkerSweep(t *testing.T) {
	res := testStream(t, 352, 240, 26, 13)
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		for _, workers := range []int{1, 2, 4, 8} {
			var sink collectSink
			_, err := Decode(res.Data, Options{Mode: mode, Workers: workers, Sink: sink.add})
			if err != nil {
				t.Fatalf("%v/%d: %v", mode, workers, err)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("%v/%d: %d frames, want %d", mode, workers, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("%v/%d: frame %d differs from sequential decode", mode, workers, i)
				}
			}
		}
	}
}

// TestConcealPoolCrossGOPSafety pins the conceal/pool interaction: when a
// damaged slice deep in the stream is concealed, recycled frame buffers
// (which by then carry pixels from earlier GOPs) must not leak stale
// content into the output. The sequential decoder allocates every frame
// fresh, so byte-exact agreement with it proves the pooled paths are
// clean across GOP boundaries.
func TestConcealPoolCrossGOPSafety(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), res.Data...)
	// Damage P-picture slices in the first and the last GOP so concealment
	// runs both before and after the pool starts recycling buffers.
	for _, g := range []int{0, 2} {
		sl := m.GOPs[g].Pictures[1].Slices[1]
		for i := sl.Offset + 6; i < sl.Offset+14 && i < sl.End; i++ {
			mut[i] = 0
		}
	}

	d, err := decoder.New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d.Conceal = true
	want, err := d.All()
	if err != nil {
		t.Fatalf("sequential concealed decode: %v", err)
	}
	if d.Concealed == 0 {
		t.Fatal("corruption did not trigger concealment")
	}

	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		for _, workers := range []int{1, 2, 4} {
			var sink collectSink
			st, err := Decode(mut, Options{Mode: mode, Workers: workers, Conceal: true, Sink: sink.add})
			if err != nil {
				t.Fatalf("%v/%d: %v", mode, workers, err)
			}
			if st.Concealed == 0 {
				t.Fatalf("%v/%d: nothing concealed", mode, workers)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("%v/%d: %d frames, want %d", mode, workers, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("%v/%d: concealed frame %d differs from sequential decode", mode, workers, i)
				}
			}
		}
	}
}
