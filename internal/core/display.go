package core

import (
	"fmt"
	"sync"
	"time"

	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
)

// displayProc is the display process: decoded pictures arrive in
// completion order and wait in the reorder buffer until their display
// turn, then go to the sink and back to the frame pool. (Dithering is
// omitted, as in the paper's measurements.)
//
// The reorder buffer drains synchronously inside push: on a single-CPU
// host a dedicated goroutine would starve during decode bursts and
// overstate the queue depth, while the paper's dedicated display
// processor drains continuously. The memory behaviour — out-of-order GOP
// completions pile up until the in-order GOP finishes — is preserved
// exactly.
type displayProc struct {
	mu        sync.Mutex
	pending   map[int]*frame.Frame
	next      int
	pool      *frame.Pool
	sink      func(*frame.Frame)
	obs       *obs.Tracer
	lane      int // obs lane of delivery events (a stream lane in the service)
	displayed int
	err       error
}

func newDisplay(pool *frame.Pool, sink func(*frame.Frame), tr *obs.Tracer) *displayProc {
	return &displayProc{pending: make(map[int]*frame.Frame), pool: pool, sink: sink, obs: tr, lane: obs.LaneDisplay}
}

// push hands one decoded picture (with its absolute display index) to the
// display process and drains everything that is now in order.
func (d *displayProc) push(f *frame.Frame, idx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if idx < d.next || d.pending[idx] != nil {
		if d.err == nil {
			d.err = fmt.Errorf("core: duplicate display index %d", idx)
		}
		return
	}
	d.pending[idx] = f
	for {
		g, ok := d.pending[d.next]
		if !ok {
			return
		}
		delete(d.pending, d.next)
		g.DisplayIndex = d.next
		if d.sink != nil {
			d.sink(g)
		}
		if d.obs != nil {
			d.obs.Record(obs.KindDisplay, d.lane, time.Now(), 0, -1, d.next, -1)
		}
		if g.Release() {
			d.pool.Put(g)
		}
		d.displayed++
		d.next++
	}
}

// count returns the number of pictures displayed so far (the streaming
// pipeline's scan-lead gauge samples it).
func (d *displayProc) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.displayed
}

// abandon drops the undisplayed pictures still waiting in the reorder
// buffer (cancelled-pipeline teardown; the frames themselves are
// reclaimed by the executor's pool sweep).
func (d *displayProc) abandon() {
	d.mu.Lock()
	d.pending = make(map[int]*frame.Frame)
	d.mu.Unlock()
}

// finish checks that every picture was displayed.
func (d *displayProc) finish() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.displayed, d.err
	}
	if len(d.pending) != 0 {
		return d.displayed, fmt.Errorf("core: %d pictures never displayed (gap at %d)", len(d.pending), d.next)
	}
	return d.displayed, nil
}

// firstErr latches the first error reported by any process.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (e *firstErr) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *firstErr) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
