package core

import (
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// FuzzScan drives the scan process over arbitrary bytes: it must never
// panic, and any successful scan must be internally consistent. Run long
// with: go test -fuzz=FuzzScan ./internal/core
func FuzzScan(f *testing.F) {
	res, err := encoder.EncodeSequence(encoder.Config{Width: 48, Height: 32, Pictures: 2, GOPSize: 2},
		frame.NewSynth(48, 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Data)
	f.Add([]byte{0, 0, 1, 0x00, 0, 0, 1, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Scan(data)
		if err != nil {
			return
		}
		for _, g := range m.GOPs {
			if g.End < g.Offset {
				t.Fatalf("GOP range inverted: %+v", g)
			}
			for _, p := range g.Pictures {
				if p.End < p.Offset {
					t.Fatalf("picture range inverted: %+v", p)
				}
				for _, sl := range p.Slices {
					if sl.End < sl.Offset || sl.Offset < p.Offset || sl.End > p.End {
						t.Fatalf("slice range outside picture: %+v in %+v", sl, p)
					}
				}
			}
		}
	})
}
