package core

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// FuzzScan drives the scan process over arbitrary bytes: it must never
// panic, and any successful scan must be internally consistent. Run long
// with: go test -fuzz=FuzzScan ./internal/core
// FuzzFindStartCode compares the SWAR word-at-a-time startcode scan the
// scan process rides on against a naive byte-scan reference, over random
// buffers and every scan offset — including prefixes straddling 8-byte
// word boundaries and trailing partial words. Run long with:
// go test -fuzz=FuzzFindStartCode ./internal/core
func FuzzFindStartCode(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0xB3}, 0)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 1, 0x42}, 0) // straddles words 0 and 1
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xAF}, 3)                // zero run across the boundary
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 1}, 0)                   // prefix in a trailing partial word, no code byte
	f.Fuzz(func(t *testing.T, data []byte, from int) {
		naive := func(d []byte, i int) int {
			if i < 0 {
				i = 0
			}
			for ; i+3 < len(d); i++ {
				if d[i] == 0 && d[i+1] == 0 && d[i+2] == 1 {
					return i
				}
			}
			return -1
		}
		if got, want := bits.FindStartCode(data, from), naive(data, from); got != want {
			t.Fatalf("FindStartCode(%v, %d) = %d, naive reference = %d", data, from, got, want)
		}
	})
}

// FuzzResilientDecode is the differential fuzzer for the determinism
// contract: whatever bytes arrive, each resilience policy must either
// fail in both the sequential and the improved-slice parallel mode, or
// succeed in both with bit-identical frames and identical ErrorStats.
// Run long with: go test -fuzz=FuzzResilientDecode ./internal/core
func FuzzResilientDecode(f *testing.F) {
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 48, Height: 32, Pictures: 4, GOPSize: 2, RepeatSequenceHeader: true,
	}, frame.NewSynth(48, 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Data)
	trunc := res.Data[:len(res.Data)*3/4]
	f.Add(append([]byte(nil), trunc...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32<<10 {
			return
		}
		for _, policy := range []Resilience{ConcealSlice, ConcealPicture, DropGOP} {
			var seqSink collectSink
			seqSt, seqErr := Decode(data, Options{Mode: ModeSequential, Workers: 1, Resilience: policy, Sink: seqSink.add})
			var parSink collectSink
			parSt, parErr := Decode(data, Options{Mode: ModeSliceImproved, Workers: 2, Resilience: policy, Sink: parSink.add})
			if (seqErr != nil) != (parErr != nil) {
				t.Fatalf("%v: sequential err=%v, parallel err=%v", policy, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if seqSt.Errors != parSt.Errors {
				t.Fatalf("%v: stats diverge: %+v vs %+v", policy, seqSt.Errors, parSt.Errors)
			}
			if len(seqSink.frames) != len(parSink.frames) {
				t.Fatalf("%v: %d vs %d frames", policy, len(seqSink.frames), len(parSink.frames))
			}
			for i := range seqSink.frames {
				if !seqSink.frames[i].Equal(parSink.frames[i]) {
					t.Fatalf("%v: frame %d diverges between modes", policy, i)
				}
			}
		}
	})
}

func FuzzScan(f *testing.F) {
	res, err := encoder.EncodeSequence(encoder.Config{Width: 48, Height: 32, Pictures: 2, GOPSize: 2},
		frame.NewSynth(48, 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Data)
	f.Add([]byte{0, 0, 1, 0x00, 0, 0, 1, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Scan(data)
		if err != nil {
			return
		}
		for _, g := range m.GOPs {
			if g.End < g.Offset {
				t.Fatalf("GOP range inverted: %+v", g)
			}
			for _, p := range g.Pictures {
				if p.End < p.Offset {
					t.Fatalf("picture range inverted: %+v", p)
				}
				for _, sl := range p.Slices {
					if sl.End < sl.Offset || sl.Offset < p.Offset || sl.End > p.End {
						t.Fatalf("slice range outside picture: %+v in %+v", sl, p)
					}
				}
			}
		}
	})
}
