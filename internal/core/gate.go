package core

import "sync"

// workerGate parks workers above the online tuner's active-worker
// limit. Workers are spawned at the auto policy's chosen count; when
// the tuner lowers the limit, the highest-indexed workers block at the
// gate instead of contending for tasks — the streaming equivalent of
// shrinking the pool, without tearing goroutines down. Raising the
// limit (or closing the gate at end of stream) wakes them. A nil gate
// is open.
type workerGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	limit  int
	closed bool
}

func newWorkerGate(limit int) *workerGate {
	g := &workerGate{limit: limit}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter blocks while worker wi is outside the active limit. Parked
// time is deliberately not reported anywhere: a parked worker is idle
// by decision, and counting it as waiting would feed the tuner its own
// output.
func (g *workerGate) enter(wi int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for !g.closed && wi >= g.limit {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// setLimit publishes a new active-worker limit, waking parked workers
// that fall inside it.
func (g *workerGate) setLimit(n int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.limit = n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// close opens the gate permanently so every worker can drain the queue
// and exit. Call before joining the workers.
func (g *workerGate) close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}
