package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	rtrace "runtime/trace"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
)

// decodeGOPMode runs the coarse-grained decoder: the scan result feeds a
// task queue of whole GOPs; each worker decodes its GOP start to finish
// and ships pictures to the display process.
func decodeGOPMode(data []byte, m *StreamMap, opt Options, st *Stats) error {
	pool := frame.NewPool(m.Seq.Width, m.Seq.Height)
	if opt.Conceal {
		// Concealed pictures may ship partially synthesized pixels; scrub
		// recycled buffers so no stale content leaks across GOPs.
		pool.SetScrub(true)
	}
	disp := newDisplay(pool, opt.Sink, opt.Obs)

	// Queue the groups in packed order (LPT by byte size unless
	// overridden): big groups start first, small ones level the tail.
	tasks := make(chan int, len(m.GOPs))
	order := packOrder(gopCosts(m.GOPs), opt.Packing, opt.PackSeed)
	for g := range m.GOPs {
		if order != nil {
			g = order[g]
		}
		tasks <- g
	}
	close(tasks)

	var errs firstErr
	st.WorkerStats = make([]WorkerStats, opt.Workers)
	if opt.Profile {
		st.GOPCosts = make([]TaskCost, len(m.GOPs))
	}
	var workMu sync.Mutex

	wallStart := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			obs.Do(opt.Mode.String(), wi, func() { gopWorkerLoop(data, m, pool, opt, wi, disp, tasks, &errs, st, &workMu) })
		}(wi)
	}
	wg.Wait()
	displayed, dispErr := disp.finish()
	st.Wall = time.Since(wallStart)

	if err := errs.get(); err != nil {
		return err
	}
	if dispErr != nil {
		return dispErr
	}
	st.Pictures = m.TotalPictures
	st.Displayed = displayed
	ps := pool.Stats()
	st.PeakFrameBytes = ps.PeakBytes
	st.FramesAllocated = ps.AllocBytes
	if displayed != m.TotalPictures {
		return fmt.Errorf("core: displayed %d of %d pictures", displayed, m.TotalPictures)
	}
	return nil
}

// gopWorkerLoop is one coarse-grained worker's task loop (the body of
// decodeGOPMode's goroutines, hoisted so it runs under pprof labels).
func gopWorkerLoop(data []byte, m *StreamMap, pool *frame.Pool, opt Options, wi int, disp *displayProc, tasks <-chan int, errs *firstErr, st *Stats, workMu *sync.Mutex) {
	ws := &st.WorkerStats[wi]
	for {
		t0 := time.Now()
		g, ok := <-tasks
		wait := time.Since(t0)
		ws.Wait += wait
		opt.Obs.Record(obs.KindWait, wi, t0, wait, -1, -1, -1)
		if !ok {
			return
		}
		if errs.get() != nil {
			continue // drain remaining tasks after a failure
		}
		t1 := time.Now()
		reg := rtrace.StartRegion(context.Background(), "mpeg2par.gopTask")
		work, concealed, err := decodeOneGOP(data, m, g, pool, opt, wi, disp)
		reg.End()
		cost := time.Since(t1)
		ws.Busy += cost
		ws.Tasks++
		opt.Obs.Record(obs.KindTask, wi, t1, cost, g, -1, -1)
		opt.Cost.Observe(int64(m.GOPs[g].End-m.GOPs[g].Offset), cost)
		if err != nil {
			errs.set(fmt.Errorf("core: GOP %d at byte %d: %w", g, m.GOPs[g].Offset, err))
			continue
		}
		workMu.Lock()
		st.Work.Add(work)
		st.Concealed += concealed
		if opt.Profile {
			st.GOPCosts[g] = TaskCost{Cost: cost, Work: work}
		}
		workMu.Unlock()
	}
}

// decodeOneGOP decodes GOP g completely (the unit of work of one task).
func decodeOneGOP(data []byte, m *StreamMap, g int, pool *frame.Pool, opt Options, wi int, disp *displayProc) (decoder.WorkStats, int, error) {
	gop := &m.GOPs[g]
	seq := m.Seq // copy: workers must not share mutable header state
	pd := decoder.PictureDecoder{
		Seq:     &seq,
		Tracer:  opt.Tracer,
		Proc:    wi,
		Conceal: opt.Conceal,
		Alloc: func() *frame.Frame {
			f := pool.Get()
			f.Retain(1) // the display process's reference
			return f
		},
		OnRelease: func(f *frame.Frame) {
			if f.Release() {
				pool.Put(f)
			}
		},
	}
	r := bits.NewReader(data[:gop.End])
	r.SeekBit(int64(gop.Offset) * 8)

	pi := 0
	for {
		code, err := r.NextStartCode()
		if err != nil {
			break
		}
		r.Skip(32)
		switch {
		case code == mpeg2.PictureStartCode:
			if pi >= len(gop.Pictures) {
				return pd.Work, pd.Concealed, fmt.Errorf("picture at byte %d: more pictures than the %d scanned", int(r.BytePos())-4, len(gop.Pictures))
			}
			pi++
			out, err := pd.DecodePicture(r)
			if err != nil {
				return pd.Work, pd.Concealed, err
			}
			for _, f := range out {
				disp.push(f, gop.FirstDisplay+f.TemporalRef)
			}
		case code == mpeg2.SequenceHeaderCode:
			if _, err := mpeg2.ParseSequenceHeader(r); err != nil {
				return pd.Work, pd.Concealed, err
			}
		case code == mpeg2.GroupStartCode:
			if _, err := mpeg2.ParseGOPHeader(r); err != nil {
				return pd.Work, pd.Concealed, err
			}
		default:
			// extension/user data: skip
		}
	}
	if pi != len(gop.Pictures) {
		return pd.Work, pd.Concealed, fmt.Errorf("decoded %d of %d scanned pictures", pi, len(gop.Pictures))
	}
	if f := pd.Flush(); f != nil {
		disp.push(f, gop.FirstDisplay+f.TemporalRef)
	}
	pd.Reset() // release reference retains
	return pd.Work, pd.Concealed, nil
}
