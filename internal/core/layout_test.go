package core

import (
	"testing"

	"mpeg2par/internal/frame"
)

// TestPaddedLayoutGolden decodes a 512-wide stream — the width class
// whose luma rows the adopted layout pads — under both layouts and pins
// that every mode produces pixels identical to the dense sequential
// decode. This is the end-to-end proof that no reconstruction path
// still assumes stride == CodedW.
func TestPaddedLayoutGolden(t *testing.T) {
	res := testStream(t, 512, 48, 5, 5)

	defer func(v bool) { frame.PadStrides = v }(frame.PadStrides)
	frame.PadStrides = false
	want := sequentialFrames(t, res.Data)

	for _, pad := range []bool{false, true} {
		frame.PadStrides = pad
		if probe := frame.New(512, 48); (probe.YStride != probe.CodedW) != pad {
			t.Fatalf("PadStrides=%v: unexpected stride %d", pad, probe.YStride)
		}
		for _, mode := range []Mode{ModeSequential, ModeGOP, ModeSliceImproved} {
			var sink collectSink
			if _, err := Decode(res.Data, Options{Mode: mode, Workers: 2, Sink: sink.add}); err != nil {
				t.Fatalf("pad=%v %v: %v", pad, mode, err)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("pad=%v %v: %d frames, want %d", pad, mode, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("pad=%v %v: frame %d differs from dense sequential decode", pad, mode, i)
				}
			}
		}
	}
}
