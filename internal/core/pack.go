package core

import (
	"fmt"
	"math/rand"

	"mpeg2par/internal/sched"
)

// Packing selects the order tasks are handed to the worker pool. Every
// packing produces bit-identical output — tasks of one queue either
// write disjoint pixels (slices of different macroblock rows, whole
// GOPs) or are serialized by the queue's barrier discipline — so the
// order is purely a load-balance decision; the ordering-invariance
// tests pin the property.
type Packing int

const (
	// PackLPT hands tasks out longest-first by predicted (byte-size)
	// cost — classic longest-processing-time-first list scheduling, the
	// default. Big tasks start early so small ones can level the tail.
	PackLPT Packing = iota
	// PackFIFO preserves stream order (the pre-scheduler behavior).
	PackFIFO
	// PackReverse hands tasks out in reverse stream order (adversarial
	// order for the invariance tests).
	PackReverse
	// PackRandom shuffles tasks with the seed in Options.PackSeed
	// (property-test order).
	PackRandom
)

func (p Packing) String() string {
	switch p {
	case PackLPT:
		return "lpt"
	case PackFIFO:
		return "fifo"
	case PackReverse:
		return "reverse"
	case PackRandom:
		return "random"
	}
	return fmt.Sprintf("Packing(%d)", int(p))
}

// packOrder returns the order to hand out len(costs) tasks under the
// given packing. The identity order comes back as nil (callers treat
// nil as FIFO and skip the indirection).
func packOrder(costs []int64, packing Packing, seed int64) []int {
	n := len(costs)
	if n < 2 {
		return nil
	}
	switch packing {
	case PackLPT:
		return sched.LPT(costs)
	case PackReverse:
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i
		}
		return order
	case PackRandom:
		return rand.New(rand.NewSource(seed)).Perm(n)
	}
	return nil // PackFIFO and anything unknown: stream order
}

// gopCosts returns the per-GOP byte-size cost vector of a scan.
func gopCosts(gops []GOPRange) []int64 {
	costs := make([]int64, len(gops))
	for i := range gops {
		costs[i] = int64(gops[i].End - gops[i].Offset)
	}
	return costs
}

// groupCost totals the byte sizes of one row-group's slices.
func groupCost(slices []SliceRange, group []int) int64 {
	var c int64
	for _, si := range group {
		c += int64(slices[si].Bytes)
	}
	return c
}

// sliceCosts returns the per-slice byte-size cost vector of a picture.
func sliceCosts(slices []SliceRange) []int64 {
	costs := make([]int64, len(slices))
	for i := range slices {
		costs[i] = int64(slices[i].Bytes)
	}
	return costs
}
