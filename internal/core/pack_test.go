package core

import (
	"reflect"
	"testing"

	"mpeg2par/internal/faults"
)

// packings exercised by the invariance tests: every discipline the
// scheduler can emit, including two random shuffles.
var testPackings = []struct {
	name    string
	packing Packing
	seed    int64
}{
	{"fifo", PackFIFO, 0},
	{"lpt", PackLPT, 0},
	{"reverse", PackReverse, 0},
	{"random-1", PackRandom, 1},
	{"random-99", PackRandom, 99},
}

func TestPackOrderProperties(t *testing.T) {
	costs := []int64{5, 7, 5, 7, 5}
	if got := packOrder(costs, PackFIFO, 0); got != nil {
		t.Fatalf("FIFO order = %v, want nil (identity)", got)
	}
	if got := packOrder([]int64{42}, PackLPT, 0); got != nil {
		t.Fatalf("single-task order = %v, want nil", got)
	}
	if got, want := packOrder(costs, PackLPT, 0), []int{1, 3, 0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LPT order = %v, want %v (descending, ties in stream order)", got, want)
	}
	if got, want := packOrder(costs[:4], PackReverse, 0), []int{3, 2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("reverse order = %v, want %v", got, want)
	}
	r1 := packOrder(costs, PackRandom, 7)
	r2 := packOrder(costs, PackRandom, 7)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("random order not deterministic per seed: %v vs %v", r1, r2)
	}
	seen := make([]bool, len(costs))
	for _, i := range r1 {
		if i < 0 || i >= len(costs) || seen[i] {
			t.Fatalf("random order %v is not a permutation", r1)
		}
		seen[i] = true
	}
}

// TestPackingMatchesSequential is the ordering-invariance contract on a
// clean stream: whatever order the scheduler hands tasks out in — stream
// order, longest-first, reversed, or seeded shuffles — every mode must
// reproduce the sequential oracle bit-exactly.
func TestPackingMatchesSequential(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		for _, pk := range testPackings {
			for _, workers := range []int{1, 3} {
				var sink collectSink
				_, err := Decode(res.Data, Options{
					Mode: mode, Workers: workers, Sink: sink.add,
					Packing: pk.packing, PackSeed: pk.seed,
				})
				if err != nil {
					t.Fatalf("%v/%s/%d: %v", mode, pk.name, workers, err)
				}
				if len(sink.frames) != len(want) {
					t.Fatalf("%v/%s/%d: %d frames, want %d", mode, pk.name, workers, len(sink.frames), len(want))
				}
				for i := range want {
					if !sink.frames[i].Equal(want[i]) {
						t.Fatalf("%v/%s/%d: frame %d differs from sequential decode",
							mode, pk.name, workers, i)
					}
				}
			}
		}
	}
}

// TestPackingResilientGolden extends the invariance contract to damaged
// streams: packing must not change which slices are damaged, how they
// are concealed, or the error accounting — same-row slices stay
// serialized inside one row-group task regardless of group order.
func TestPackingResilientGolden(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	for _, spec := range []string{"burst:count=2,len=24", "dropslice:3"} {
		sp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		mut, _ := sp.Apply(res.Data, 2)
		for _, policy := range []Resilience{ConcealSlice, DropGOP} {
			want, wantSt, refErr := decodeResilientRun(t, mut, ModeSequential, 1, policy)
			for _, mode := range []Mode{ModeGOP, ModeSliceImproved} {
				for _, pk := range testPackings {
					var sink collectSink
					st, err := Decode(mut, Options{
						Mode: mode, Workers: 3, Resilience: policy, Sink: sink.add,
						Packing: pk.packing, PackSeed: pk.seed,
					})
					if refErr != nil {
						// Damage the policy cannot absorb: every packing
						// must fail exactly where sequential fails.
						if err == nil {
							t.Fatalf("%s/%v %v/%s: decoded cleanly where sequential failed (%v)",
								spec, policy, mode, pk.name, refErr)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%s/%v %v/%s: %v", spec, policy, mode, pk.name, err)
					}
					if st.Errors != wantSt.Errors {
						t.Fatalf("%s/%v %v/%s: error stats %+v, sequential %+v",
							spec, policy, mode, pk.name, st.Errors, wantSt.Errors)
					}
					if len(sink.frames) != len(want) {
						t.Fatalf("%s/%v %v/%s: %d frames, want %d",
							spec, policy, mode, pk.name, len(sink.frames), len(want))
					}
					for i := range want {
						if !sink.frames[i].Equal(want[i]) {
							t.Fatalf("%s/%v %v/%s: frame %d differs from sequential",
								spec, policy, mode, pk.name, i)
						}
					}
				}
			}
		}
	}
}

// TestModeAutoBatch checks the auto-tuned batch decode: bit-exact against
// the sequential oracle, with the resolved decision reported in
// Stats.Auto.
func TestModeAutoBatch(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	want := sequentialFrames(t, res.Data)
	for _, workers := range []int{1, 2, 4} {
		var sink collectSink
		st, err := Decode(res.Data, Options{Mode: ModeAuto, Workers: workers, Sink: sink.add})
		if err != nil {
			t.Fatalf("auto/%d: %v", workers, err)
		}
		if st.Auto == nil {
			t.Fatalf("auto/%d: Stats.Auto not reported", workers)
		}
		if st.Mode == ModeAuto {
			t.Fatalf("auto/%d: Stats.Mode still ModeAuto, want the resolved mode", workers)
		}
		if st.Auto.Mode != st.Mode {
			t.Fatalf("auto/%d: decision mode %v vs resolved %v", workers, st.Auto.Mode, st.Mode)
		}
		if st.Auto.Workers < 1 || st.Auto.Workers > workers {
			t.Fatalf("auto/%d: chose %d workers outside [1,%d]", workers, st.Auto.Workers, workers)
		}
		if st.Auto.Reason == "" {
			t.Fatalf("auto/%d: empty decision reason", workers)
		}
		if len(sink.frames) != len(want) {
			t.Fatalf("auto/%d: %d frames, want %d", workers, len(sink.frames), len(want))
		}
		for i := range want {
			if !sink.frames[i].Equal(want[i]) {
				t.Fatalf("auto/%d: frame %d differs from sequential decode", workers, i)
			}
		}
	}
}

// TestSliceBytesInvariant pins the scan-side cost input: every scanned
// slice's Bytes equals its End-Offset span (the invariant that survives
// offset rebasing on the streaming path).
func TestSliceBytesInvariant(t *testing.T) {
	res := testStream(t, 80, 48, 12, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for g := range m.GOPs {
		for pi := range m.GOPs[g].Pictures {
			for si, s := range m.GOPs[g].Pictures[pi].Slices {
				if s.Bytes != s.End-s.Offset {
					t.Fatalf("GOP %d pic %d slice %d: Bytes=%d, End-Offset=%d",
						g, pi, si, s.Bytes, s.End-s.Offset)
				}
				if s.Bytes <= 0 {
					t.Fatalf("GOP %d pic %d slice %d: non-positive Bytes %d", g, pi, si, s.Bytes)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no slices checked")
	}
}
