package core

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// picFate is the plan's verdict on one picture.
type picFate int

const (
	// fateDecode reconstructs the picture from its bitstream slices
	// (concealing whatever the damaged slices leave uncovered).
	fateDecode picFate = iota
	// fateSubstitute never touches the bitstream: the picture's frame is a
	// copy of the nearest preceding reference (mid-grey when none exists).
	fateSubstitute
)

// planGOP is one group of pictures kept by the plan.
type planGOP struct {
	g     int // index into StreamMap.GOPs
	first int // plan index of the GOP's first picture
	n     int
}

// plan is the resolved decode schedule of a resilient run. Every policy
// decision — which pictures decode, which are substituted from what,
// which GOPs are dropped, and which display slot each output occupies —
// is made here, once, before any worker starts. That is what makes the
// determinism contract hold: the scheduling modes merely execute the
// same plan in different orders, and the plan leaves no decision to
// execution order.
type plan struct {
	pics []*picState
	gops []planGOP
	// pre holds the plan-time error accounting (dropped pictures and
	// GOPs); slice-level damage is discovered during execution.
	pre ErrorStats
	// shed holds the plan-time degradation accounting: pictures
	// sacrificed by load shedding or recovered only because the service
	// degraded the stream's resilience policy. Kept apart from pre so
	// deliberate degradation never masquerades as (or double-counts
	// with) decode errors.
	shed ShedStats
}

// planBuilder grows a plan one group of pictures at a time. The batch
// path feeds it every GOP of a finished scan; the streaming path feeds
// it each GOP as the incremental scanner closes it — the decisions are
// identical because nothing in the planning of a GOP looks ahead.
type planBuilder struct {
	seq     *mpeg2.SequenceHeader
	policy  Resilience
	packing Packing
	seed    int64
	pl      plan

	// Intra-slice split configuration (setSplit): when on, every planned
	// single-slice row group whose slice spans multiple rows is expanded
	// into segment tasks. scratch recycles the speculative probe buffer
	// across planned pictures (addGOP runs on one goroutine).
	splitOn  bool
	splitOpt Options
	scratch  []mpeg2.MB

	displayBase int
	lastRef     int // most recent reference picture, across GOPs (a
	// scheduling barrier for the improved slice mode, not a data
	// dependency: prediction references never cross GOP boundaries here).

	// Degradation inputs (the multi-stream service sets them between
	// addGOP calls; the batch paths leave them zero). shed selects load
	// shedding for subsequently planned groups; degraded bumps the
	// effective resilience policy to at least ConcealPicture so damage
	// that would fail the stream under its requested policy is
	// substituted instead (and accounted as degradation, not as error).
	shed     ShedLevel
	degraded bool
}

func newPlanBuilder(seq *mpeg2.SequenceHeader, policy Resilience, packing Packing, seed int64) *planBuilder {
	return &planBuilder{seq: seq, policy: policy, packing: packing, seed: seed, lastRef: -1}
}

// setSplit arms intra-slice task splitting for subsequently planned
// groups (no-op unless opt configures a split source and a slice-grain
// mode — the sequential and GOP executors iterate row groups whole, so
// splitting would only waste plan-time probing there).
func (b *planBuilder) setSplit(opt Options) {
	if splitEligible(opt) {
		b.splitOn = true
		b.splitOpt = opt
	}
}

// buildPlan resolves a lenient (or strict) scan into a decode plan under
// the given resilience policy. FailFast and ConcealSlice treat
// picture-level damage as a hard error; ConcealPicture substitutes such
// pictures; DropGOP additionally removes groups with no decodable intra
// anchor.
func buildPlan(data []byte, m *StreamMap, opt Options) (*plan, error) {
	b := newPlanBuilder(&m.Seq, opt.Resilience, opt.Packing, opt.PackSeed)
	b.setSplit(opt)
	for g := range m.GOPs {
		if _, err := b.addGOP(data, g, &m.GOPs[g]); err != nil {
			return nil, err
		}
	}
	return &b.pl, nil
}

// addGOP plans one group of pictures. data holds the bytes the group's
// offsets index into — the whole stream on the batch path, the group's
// own copied buffer on the streaming path (each planned picture keeps a
// reference to it). It returns the pictures appended to the plan, nil
// when the policy dropped the group.
func (b *planBuilder) addGOP(data []byte, g int, gop *GOPRange) ([]*picState, error) {
	policy := b.policy
	degradedRun := false
	if b.degraded && policy < ConcealPicture {
		// The overload ladder's resilience floor: keep the stream alive
		// through damage its requested policy would have failed on.
		policy = ConcealPicture
		degradedRun = true
	}
	pl := &b.pl
	n := len(gop.Pictures)
	if n == 0 {
		return nil, nil
	}

	// Pass 1: parse every picture header that survived the scan.
	cands := make([]*picState, n)
	for pi := range gop.Pictures {
		pr := &gop.Pictures[pi]
		ps := &picState{rng: pr, data: data, gop: g, fwd: -1, bwd: -1, lastRef: -1, subFrom: -1}
		if pr.Damaged {
			if policy <= ConcealSlice {
				return nil, fmt.Errorf("core: GOP %d: picture %d at byte %d: unreadable picture header", g, pi, pr.Offset)
			}
		} else {
			ps.typeKnown = true
			r := bits.NewReader(data[:pr.End])
			r.SeekBit(int64(pr.Offset+4) * 8)
			hdr, err := mpeg2.ParsePictureHeader(r)
			if err != nil {
				if policy <= ConcealSlice {
					return nil, fmt.Errorf("core: GOP %d: picture %d at byte %d: %w", g, pi, pr.Offset, err)
				}
				// The scan's cheap two-byte prefix still identified the
				// type and temporal reference; keep them so the
				// substitute can slide the reference window correctly.
				ps.hdr.Type = pr.Type
				ps.hdr.TemporalReference = pr.TemporalRef
			} else {
				ps.hdr = hdr
				ps.headerOK = true
			}
		}
		if policy == FailFast && len(pr.Slices) == 0 {
			return nil, fmt.Errorf("core: GOP %d: picture %d at byte %d has no slices", g, pi, pr.Offset)
		}
		cands[pi] = ps
	}

	// DropGOP: without a decodable intra picture there is nothing to
	// anchor the group's predictions on; substituting every picture
	// from a stale reference would only smear garbage forward.
	if policy >= DropGOP {
		anchor := false
		for _, ps := range cands {
			if ps.headerOK && ps.hdr.Type == vlc.CodingI && len(ps.rng.Slices) > 0 {
				anchor = true
				break
			}
		}
		if !anchor {
			pl.pre.DroppedGOPs++
			pl.pre.DroppedPictures += n
			return nil, nil
		}
	}

	// Pass 2: display slots. Trustworthy headers claim their temporal
	// reference; everything else — damaged headers, out-of-range or
	// colliding references — fills the leftover slots in decode order.
	// The result is a permutation of [0,n), so the display process
	// never sees a gap or a duplicate no matter how mangled the
	// temporal references are.
	claimed := make([]int, n)
	slotOf := make([]int, n)
	for i := range claimed {
		claimed[i], slotOf[i] = -1, -1
	}
	for pi, ps := range cands {
		if !ps.headerOK {
			continue
		}
		t := ps.hdr.TemporalReference
		if t >= 0 && t < n && claimed[t] < 0 {
			claimed[t], slotOf[pi] = pi, t
		} else if policy == FailFast {
			return nil, fmt.Errorf("core: GOP %d: picture %d at byte %d: temporal reference %d out of range or duplicate", g, pi, ps.rng.Offset, t)
		}
	}
	next := 0
	for pi := range cands {
		if slotOf[pi] >= 0 {
			continue
		}
		for claimed[next] >= 0 {
			next++
		}
		claimed[next], slotOf[pi] = pi, next
	}

	// Pass 3: resolve references and fates in decode order. The
	// reference window resets at every GOP boundary — the price of
	// keeping GOP tasks independent (the coarse-grained mode decodes
	// them in any order), paid identically by every mode.
	first := len(pl.pics)
	refOld, refNew := -1, -1
	for pi, ps := range cands {
		ps.displayIdx = b.displayBase + slotOf[pi]
		ps.lastRef = b.lastRef
		ps.isRef = ps.typeKnown && ps.hdr.Type != vlc.CodingB
		ps.params = decoder.PictureParams(b.seq, &ps.hdr)

		switch {
		case !ps.headerOK:
			ps.fate = fateSubstitute
		case ps.hdr.Type == vlc.CodingP && refNew < 0,
			ps.hdr.Type == vlc.CodingB && (refOld < 0 || refNew < 0):
			if policy <= ConcealSlice {
				return nil, fmt.Errorf("core: GOP %d: picture %d at byte %d: %s picture without reference", g, pi, ps.rng.Offset, ps.hdr.Type)
			}
			ps.fate = fateSubstitute
		default:
			ps.fate = fateDecode
			switch ps.hdr.Type {
			case vlc.CodingP:
				ps.fwd = refNew
			case vlc.CodingB:
				ps.fwd, ps.bwd = refOld, refNew
			}
		}

		// Load shedding: convert decodable pictures the ladder sacrifices
		// into substitutions. B pictures go first (references never read
		// them, so the survivors stay bit-identical); ShedRef adds P
		// pictures, leaving only intra anchors decoding.
		if ps.fate == fateDecode && b.shed != ShedNone && ps.headerOK {
			switch {
			case ps.hdr.Type == vlc.CodingB && b.shed >= ShedB:
				ps.shedBy = ShedB
			case ps.hdr.Type == vlc.CodingP && b.shed >= ShedRef:
				ps.shedBy = ShedRef
			}
			if ps.shedBy != ShedNone {
				ps.fate = fateSubstitute
				ps.fwd, ps.bwd = -1, -1
			}
		}

		if ps.fate == fateSubstitute {
			ps.subFrom = refNew
			ps.nTasks = 1
			switch {
			case ps.shedBy == ShedB:
				pl.shed.BPictures++
			case ps.shedBy == ShedRef:
				pl.shed.RefPictures++
			case degradedRun:
				// Only recoverable because the ladder degraded the policy:
				// under the stream's own policy this damage would have
				// failed the decode, so it is degradation, not an error
				// drop — the two never double-count.
				pl.shed.DegradedPictures++
			default:
				pl.pre.DroppedPictures++
			}
		} else {
			ps.groups = buildRowGroups(ps.rng.Slices)
			if len(ps.groups) == 0 {
				// A picture whose every slice was destroyed still owns a
				// display slot: one empty task, then full concealment.
				ps.groups = [][]int{nil}
			}
			ps.nTasks = len(ps.groups)
			// Pack the row-group tasks for the slice queue. The key is
			// the plan index, identical on the batch and streaming paths,
			// so a seeded packing is reproducible across both.
			costs := make([]int64, len(ps.groups))
			for gi, grp := range ps.groups {
				costs[gi] = groupCost(ps.rng.Slices, grp)
			}
			ps.order = packOrder(costs, b.packing, b.seed+int64(len(pl.pics)))
			ps.bounds = sliceSpanBounds(ps.rng.Slices, &ps.params)
			if b.splitOn {
				// Only a row group holding a single slice can split: a
				// multi-slice group exists because same-row slices must
				// serialize, which a segment fan-out would break.
				buildSplitTasks(ps, data, b.splitOpt, b.seed+int64(len(pl.pics)),
					len(ps.groups), func(gi int) int {
						if len(ps.groups[gi]) == 1 {
							return ps.groups[gi][0]
						}
						return -1
					}, &b.scratch)
			}
		}
		ps.remaining = ps.nTasks

		// holds are the frames this picture reads (prediction
		// references or substitution source); each is retained on the
		// holder's behalf and released when the holder completes.
		idx := len(pl.pics)
		for _, ri := range []int{ps.fwd, ps.bwd, ps.subFrom} {
			if ri < 0 || contains(ps.holds, ri) {
				continue
			}
			ps.holds = append(ps.holds, ri)
			pl.pics[ri].deps++
		}
		pl.pics = append(pl.pics, ps)
		if ps.isRef {
			refOld, refNew = refNew, idx
			b.lastRef = idx
		}
	}
	pl.gops = append(pl.gops, planGOP{g: g, first: first, n: n})
	b.displayBase += n
	return pl.pics[first:], nil
}

// buildRowGroups partitions a picture's slices into per-starting-row
// task groups, preserving scan order within each group. Slices starting
// on different rows write disjoint pixels (each is bounded by the next
// claimed row, see sliceSpanBounds), so groups may run on any workers in
// any order; slices *within* a row could overlap when the stream is
// corrupted, so they execute serially inside one task. On a clean
// one-slice-per-row stream this degenerates to one slice per task —
// the exact parallel grain of the non-resilient decoder.
func buildRowGroups(slices []SliceRange) [][]int {
	var groups [][]int
	byRow := make(map[int]int)
	for si := range slices {
		if gi, ok := byRow[slices[si].Row]; ok {
			groups[gi] = append(groups[gi], si)
		} else {
			byRow[slices[si].Row] = len(groups)
			groups = append(groups, []int{si})
		}
	}
	return groups
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
