package core

import "fmt"

// Resilience selects how much damage a decode survives. The ladder is
// cumulative: each tier keeps every recovery of the tiers below it and
// adds one more containment level, trading fidelity for availability.
//
// The contract across the ladder is determinism: for the same (possibly
// corrupted) stream and the same policy, every scheduling mode —
// sequential, GOP-parallel, and both slice-parallel variants — produces
// bit-identical frames and identical ErrorStats. All resilient decodes
// therefore run off one shared plan built from the lenient scan, and
// slices that share a macroblock row are serialized into a single task
// so corrupted row collisions cannot race.
type Resilience int

const (
	// FailFast aborts the decode on the first damage (the default, and
	// the zero-overhead path: clean streams decode through exactly the
	// same code as before the resilience ladder existed).
	FailFast Resilience = iota
	// ConcealSlice makes damaged slices non-fatal: decode resynchronizes
	// at the next slice startcode and the lost macroblocks are filled by
	// zero-vector temporal concealment. Picture-level damage (an
	// unreadable picture header, a missing reference) still fails.
	ConcealSlice
	// ConcealPicture additionally survives picture-level damage: a
	// picture that cannot be decoded at all is substituted by a repeat
	// of the nearest preceding reference frame (mid-grey when none
	// exists) and counted as dropped.
	ConcealPicture
	// DropGOP additionally drops a group of pictures outright when it
	// contains no decodable intra picture to anchor on — substituting an
	// entire GOP from a stale reference would only smear garbage.
	DropGOP
)

func (r Resilience) String() string {
	switch r {
	case FailFast:
		return "failfast"
	case ConcealSlice:
		return "conceal-slice"
	case ConcealPicture:
		return "conceal-picture"
	case DropGOP:
		return "drop-gop"
	}
	return fmt.Sprintf("Resilience(%d)", int(r))
}

// ParseResilience reads a policy name as printed by String.
func ParseResilience(s string) (Resilience, error) {
	switch s {
	case "failfast", "fail-fast", "":
		return FailFast, nil
	case "conceal-slice", "conceal", "slice":
		return ConcealSlice, nil
	case "conceal-picture", "picture":
		return ConcealPicture, nil
	case "drop-gop", "gop":
		return DropGOP, nil
	}
	return FailFast, fmt.Errorf("core: unknown resilience policy %q (failfast, conceal-slice, conceal-picture, drop-gop)", s)
}

// ErrorStats accounts for everything a resilient decode had to recover
// from. For a given stream and policy the stats are identical across all
// scheduling modes (every counter is derived from the shared plan or
// from deterministic per-slice decode outcomes, never from scheduling).
type ErrorStats struct {
	// DamagedSlices counts scanned slices whose parse or reconstruction
	// failed.
	DamagedSlices int `json:"damaged_slices"`
	// Resyncs counts damaged slices after which decode recovered to a
	// later slice startcode within the same picture.
	Resyncs int `json:"resyncs"`
	// ConcealedMBs counts macroblocks filled by temporal concealment.
	ConcealedMBs int `json:"concealed_mbs"`
	// DroppedPictures counts pictures never decoded from the bitstream:
	// substituted by a reference repeat (ConcealPicture) or lost with
	// their GOP (DropGOP).
	DroppedPictures int `json:"dropped_pictures"`
	// DroppedGOPs counts groups of pictures removed entirely.
	DroppedGOPs int `json:"dropped_gops"`
}

// Add accumulates o into e.
func (e *ErrorStats) Add(o ErrorStats) {
	e.DamagedSlices += o.DamagedSlices
	e.Resyncs += o.Resyncs
	e.ConcealedMBs += o.ConcealedMBs
	e.DroppedPictures += o.DroppedPictures
	e.DroppedGOPs += o.DroppedGOPs
}

// Any reports whether any damage was recovered from.
func (e ErrorStats) Any() bool { return e != ErrorStats{} }

func (e ErrorStats) String() string {
	return fmt.Sprintf("damaged slices %d, resyncs %d, concealed MBs %d, dropped pictures %d, dropped GOPs %d",
		e.DamagedSlices, e.Resyncs, e.ConcealedMBs, e.DroppedPictures, e.DroppedGOPs)
}
