package core

import (
	"strings"
	"testing"

	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
)

// resilientModes are the scheduling variants that must agree bit-exactly
// under every resilience policy; ModeSequential is the reference.
var resilientModes = []struct {
	mode    Mode
	workers []int
}{
	{ModeGOP, []int{1, 3}},
	{ModeSliceSimple, []int{1, 3}},
	{ModeSliceImproved, []int{1, 3}},
}

// decodeResilientRun decodes data under one (mode, workers, policy) and
// returns the displayed frames plus stats (nil stats on error).
func decodeResilientRun(t *testing.T, data []byte, mode Mode, workers int, policy Resilience) ([]*frame.Frame, *Stats, error) {
	t.Helper()
	var sink collectSink
	st, err := Decode(data, Options{Mode: mode, Workers: workers, Resilience: policy, Sink: sink.add})
	if err != nil {
		return nil, nil, err
	}
	return sink.frames, st, nil
}

// TestResilientGolden is the determinism contract: a fixed fault seed and
// policy must yield bit-identical frames and identical ErrorStats across
// sequential, GOP-parallel, and both slice-parallel modes — or fail in
// all of them.
func TestResilientGolden(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	specs := []string{
		"bitflip:6",
		"burst:count=2,len=24",
		"dropslice:3",
		"droppic:1",
		"truncate:0.8",
		"gilbert:loss=0.05,burst=3,pkt=64",
	}
	anyDamage := false
	for _, spec := range specs {
		sp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			mut, _ := sp.Apply(res.Data, seed)
			for _, policy := range []Resilience{ConcealSlice, ConcealPicture, DropGOP} {
				want, wantSt, refErr := decodeResilientRun(t, mut, ModeSequential, 1, policy)
				if wantSt != nil && wantSt.Errors.Any() {
					anyDamage = true
				}
				for _, mv := range resilientModes {
					for _, w := range mv.workers {
						got, gotSt, err := decodeResilientRun(t, mut, mv.mode, w, policy)
						if (err != nil) != (refErr != nil) {
							t.Fatalf("%s seed %d %v: %v/%d err=%v, sequential err=%v",
								spec, seed, policy, mv.mode, w, err, refErr)
						}
						if refErr != nil {
							continue
						}
						if gotSt.Errors != wantSt.Errors {
							t.Fatalf("%s seed %d %v: %v/%d stats %+v, sequential %+v",
								spec, seed, policy, mv.mode, w, gotSt.Errors, wantSt.Errors)
						}
						if len(got) != len(want) {
							t.Fatalf("%s seed %d %v: %v/%d displayed %d frames, sequential %d",
								spec, seed, policy, mv.mode, w, len(got), len(want))
						}
						for i := range want {
							if !got[i].Equal(want[i]) {
								t.Fatalf("%s seed %d %v: %v/%d frame %d differs from sequential",
									spec, seed, policy, mv.mode, w, i)
							}
						}
					}
				}
			}
		}
	}
	if !anyDamage {
		t.Fatal("no corruption produced recoverable damage; the golden test exercised nothing")
	}
}

// TestResilientCleanStream pins the no-damage behaviour: every policy and
// mode must decode an undamaged stream bit-identically to the sequential
// reference decoder, with zero error stats — concealment must cost
// nothing in fidelity when there is nothing to conceal.
func TestResilientCleanStream(t *testing.T) {
	res := testStream(t, 96, 64, 12, 4)
	want := sequentialFrames(t, res.Data)
	policies := []Resilience{FailFast, ConcealSlice, ConcealPicture, DropGOP}
	for _, policy := range policies {
		modes := []struct {
			mode    Mode
			workers int
		}{
			{ModeSequential, 1}, {ModeGOP, 3}, {ModeSliceSimple, 3}, {ModeSliceImproved, 3},
		}
		for _, mv := range modes {
			got, st, err := decodeResilientRun(t, res.Data, mv.mode, mv.workers, policy)
			if err != nil {
				t.Fatalf("%v/%v: %v", policy, mv.mode, err)
			}
			if st.Errors.Any() {
				t.Fatalf("%v/%v: clean stream reported damage: %+v", policy, mv.mode, st.Errors)
			}
			if len(got) != len(want) {
				t.Fatalf("%v/%v: %d frames, want %d", policy, mv.mode, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%v/%v: frame %d differs from the sequential decoder", policy, mv.mode, i)
				}
			}
		}
	}
}

// TestDropGOPRemovesAnchorlessGroup destroys the I picture of the middle
// GOP: DropGOP must excise the whole group (shorter but clean output)
// while ConcealPicture substitutes through it, identically in all modes.
func TestDropGOPRemovesAnchorlessGroup(t *testing.T) {
	res := testStream(t, 80, 48, 12, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GOPs) != 3 {
		t.Fatalf("scanned %d GOPs, want 3", len(m.GOPs))
	}
	mut := append([]byte(nil), res.Data...)
	// Overwrite the I picture's startcode type byte with a reserved code:
	// the picture vanishes and its slices become orphans.
	mut[m.GOPs[1].Pictures[0].Offset+3] = 0xFF

	want, wantSt, err := decodeResilientRun(t, mut, ModeSequential, 1, DropGOP)
	if err != nil {
		t.Fatal(err)
	}
	// The destroyed I picture vanishes from the scan entirely (its
	// startcode is gone), so the dropped group contributes its 3
	// surviving scanned pictures to the count.
	if wantSt.Errors.DroppedGOPs != 1 || wantSt.Errors.DroppedPictures != 3 {
		t.Fatalf("stats %+v, want 1 dropped GOP / 3 dropped pictures", wantSt.Errors)
	}
	if len(want) != 8 {
		t.Fatalf("displayed %d frames, want 8 after dropping one 4-picture GOP", len(want))
	}
	for _, mv := range resilientModes {
		for _, w := range mv.workers {
			got, gotSt, err := decodeResilientRun(t, mut, mv.mode, w, DropGOP)
			if err != nil {
				t.Fatalf("%v/%d: %v", mv.mode, w, err)
			}
			if gotSt.Errors != wantSt.Errors {
				t.Fatalf("%v/%d: stats %+v, sequential %+v", mv.mode, w, gotSt.Errors, wantSt.Errors)
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%v/%d: frame %d differs", mv.mode, w, i)
				}
			}
		}
	}

	// ConcealPicture keeps the damaged GOP, substituting every picture.
	sub, subSt, err := decodeResilientRun(t, mut, ModeSequential, 1, ConcealPicture)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 11 {
		t.Fatalf("ConcealPicture displayed %d frames, want 11 (the destroyed picture is invisible to the scan)", len(sub))
	}
	if subSt.Errors.DroppedPictures == 0 || subSt.Errors.DroppedGOPs != 0 {
		t.Fatalf("ConcealPicture stats %+v", subSt.Errors)
	}
}

// TestResilienceLadderOrdering checks the tier semantics on a stream with
// picture-level damage: ConcealSlice must refuse what ConcealPicture
// survives, and FailFast must refuse what ConcealSlice survives.
func TestResilienceLadderOrdering(t *testing.T) {
	res := testStream(t, 80, 48, 8, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}

	// Picture-level damage: unreadable picture header (bad coding type).
	pic := append([]byte(nil), res.Data...)
	pr := &m.GOPs[1].Pictures[1]
	pic[pr.Offset+4], pic[pr.Offset+5] = 0xFF, 0xFF
	if _, _, err := decodeResilientRun(t, pic, ModeSequential, 1, ConcealSlice); err == nil {
		t.Fatal("ConcealSlice accepted picture-level damage")
	}
	if _, st, err := decodeResilientRun(t, pic, ModeSequential, 1, ConcealPicture); err != nil || st.Errors.DroppedPictures == 0 {
		t.Fatalf("ConcealPicture: err=%v stats=%+v", err, st)
	}

	// Slice-level damage: corrupt one slice body.
	sl := append([]byte(nil), res.Data...)
	sr := pr.Slices[1]
	for i := sr.Offset + 6; i < sr.End && i < sr.Offset+14; i++ {
		sl[i] ^= 0xA5
	}
	if _, _, err := decodeResilientRun(t, sl, ModeSequential, 1, FailFast); err == nil {
		t.Fatal("FailFast accepted slice-level damage")
	}
	if _, st, err := decodeResilientRun(t, sl, ModeSequential, 1, ConcealSlice); err != nil {
		t.Fatalf("ConcealSlice rejected slice-level damage: %v", err)
	} else if !st.Errors.Any() {
		t.Fatalf("ConcealSlice reported no damage: %+v", st.Errors)
	}
}

// TestFailFastErrorContext pins the satellite fix: decode errors out of
// the GOP worker carry the GOP index and stream byte offset.
func TestFailFastErrorContext(t *testing.T) {
	res := testStream(t, 80, 48, 8, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), res.Data...)
	// Truncate mid-GOP 1 so the legacy GOP worker fails.
	mut = mut[:m.GOPs[1].Pictures[1].Offset+6]
	_, derr := Decode(mut, Options{Mode: ModeGOP, Workers: 2})
	if derr == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if !strings.Contains(derr.Error(), "core: GOP") || !strings.Contains(derr.Error(), "at byte") {
		t.Fatalf("error lacks GOP/byte context: %v", derr)
	}
}

// TestParseResilienceRoundTrip covers the policy name round trip.
func TestParseResilienceRoundTrip(t *testing.T) {
	for _, p := range []Resilience{FailFast, ConcealSlice, ConcealPicture, DropGOP} {
		got, err := ParseResilience(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseResilience("never-heard-of-it"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
