package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	rtrace "runtime/trace"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
)

// decodeResilient executes a planned decode. ModeSequential always runs
// here (it is the single-worker reference the golden tests compare the
// parallel modes against); the other modes arrive once a resilience
// policy above FailFast is selected. All variants execute the same plan
// (see buildPlan) — they differ only in what runs concurrently, never in
// what gets decoded, substituted, or concealed.
func decodeResilient(data []byte, m *StreamMap, opt Options, st *Stats) error {
	pl, err := buildPlan(data, m, opt)
	if err != nil {
		return err
	}
	st.Errors.Add(pl.pre)
	switch opt.Mode {
	case ModeSequential:
		return decodeResilientSeq(m, pl, opt, st)
	case ModeGOP:
		return decodeResilientGOP(m, pl, opt, st)
	case ModeSliceSimple, ModeSliceImproved:
		return decodeResilientSlice(m, pl, opt, st)
	}
	return fmt.Errorf("core: unknown mode %d", int(opt.Mode))
}

// newPlanFrame allocates and tags the output frame of one planned
// picture, storing it in the picState. Retains: 1 for the display
// process plus one per holder (pictures that predict from, or substitute
// from, this frame).
func newPlanFrame(pool *frame.Pool, p *picState) *frame.Frame {
	f := pool.Get()
	f.Retain(1 + p.deps)
	f.PictureType = "?IPB"[int(p.hdr.Type)]
	f.TemporalRef = p.hdr.TemporalReference
	p.frame = f
	return f
}

// decodePlanPic decodes or substitutes one planned picture into its
// frame (the single-worker-per-picture executor shared by the sequential
// and GOP-grain modes, batch and streaming). pics is the planned picture
// list — for streaming callers, a snapshot long enough to cover this
// picture's references. The frames of the references and substitution
// source must be complete.
func decodePlanPic(seq *mpeg2.SequenceHeader, pics []*picState, idx, wi int, opt Options, scr *sliceScratch) (decoder.WorkStats, ErrorStats, error) {
	p := pics[idx]
	f := p.frame
	var work decoder.WorkStats
	var es ErrorStats
	if p.fate == fateSubstitute {
		var src *frame.Frame
		if p.subFrom >= 0 {
			src = pics[p.subFrom].frame
		}
		if !f.CopyPixelsFrom(src) {
			f.Fill(128)
		}
		return work, es, nil
	}
	refs := decoder.Refs{}
	if p.fwd >= 0 {
		refs.Fwd = pics[p.fwd].frame
	}
	if p.bwd >= 0 {
		refs.Bwd = pics[p.bwd].frame
	}
	total := p.params.MBWidth * p.params.MBHeight
	covered := make([]bool, total)
	nCovered := 0
	last := len(p.rng.Slices) - 1
	for _, group := range p.groups {
		for _, si := range group {
			w, addrs, err := decodeSliceRange(p.data, seq, &p.hdr, &p.params, p.rng.Slices[si], p.sliceBound(si), refs, f, wi, opt.Tracer, scr)
			work.Add(w)
			if err != nil {
				if opt.Resilience == FailFast {
					return work, es, err
				}
				es.DamagedSlices++
				if si != last {
					es.Resyncs++
				}
				continue
			}
			for _, a := range addrs {
				if a >= 0 && a < total && !covered[a] {
					covered[a] = true
					nCovered++
				}
			}
		}
	}
	if nCovered != total {
		if opt.Resilience == FailFast {
			return work, es, fmt.Errorf("core: picture at display %d covered %d of %d macroblocks", p.displayIdx, nCovered, total)
		}
		var ref *frame.Frame
		if p.fwd >= 0 {
			ref = pics[p.fwd].frame
		} else if p.bwd >= 0 {
			ref = pics[p.bwd].frame
		}
		mbw := p.params.MBWidth
		for a := 0; a < total; a++ {
			if !covered[a] {
				decoder.ConcealMB(f, ref, a%mbw, a/mbw)
				es.ConcealedMBs++
			}
		}
	}
	return work, es, nil
}

// finishPlan is the shared epilogue: drain the display process and fill
// the run's bookkeeping.
func finishPlan(pl *plan, pool *frame.Pool, disp *displayProc, st *Stats, wallStart time.Time) error {
	displayed, dispErr := disp.finish()
	st.Wall = time.Since(wallStart)
	if dispErr != nil {
		return dispErr
	}
	st.Pictures = len(pl.pics)
	st.Displayed = displayed
	ps := pool.Stats()
	st.PeakFrameBytes = ps.PeakBytes
	st.FramesAllocated = ps.AllocBytes
	if displayed != len(pl.pics) {
		return fmt.Errorf("core: displayed %d of %d pictures", displayed, len(pl.pics))
	}
	return nil
}

// decodeResilientSeq executes the plan on one worker in decode order —
// the baseline every parallel mode must match bit-exactly.
func decodeResilientSeq(m *StreamMap, pl *plan, opt Options, st *Stats) error {
	pool := frame.NewPool(m.Seq.Width, m.Seq.Height)
	if opt.Resilience != FailFast {
		pool.SetScrub(true)
	}
	disp := newDisplay(pool, opt.Sink, opt.Obs)
	st.WorkerStats = make([]WorkerStats, 1)
	ws := &st.WorkerStats[0]
	var scr sliceScratch

	wallStart := time.Now()
	var seqErr error
	obs.Do(opt.Mode.String(), 0, func() {
		for idx, p := range pl.pics {
			newPlanFrame(pool, p)
			t0 := time.Now()
			reg := rtrace.StartRegion(context.Background(), "mpeg2par.picTask")
			work, es, err := decodePlanPic(&m.Seq, pl.pics, idx, 0, opt, &scr)
			reg.End()
			cost := time.Since(t0)
			ws.Busy += cost
			ws.Tasks++
			opt.Obs.Record(obs.KindTask, 0, t0, cost, p.gop, p.displayIdx, -1)
			st.Work.Add(work)
			st.Errors.Add(es)
			if err != nil {
				st.Wall = time.Since(wallStart)
				seqErr = fmt.Errorf("core: GOP %d at byte %d: %w", p.gop, m.GOPs[p.gop].Offset, err)
				return
			}
			for _, ri := range p.holds {
				if pl.pics[ri].frame.Release() {
					pool.Put(pl.pics[ri].frame)
				}
			}
			disp.push(p.frame, p.displayIdx)
		}
	})
	if seqErr != nil {
		return seqErr
	}
	return finishPlan(pl, pool, disp, st, wallStart)
}

// decodeResilientGOP executes the plan at the paper's coarse grain: one
// task per kept GOP. The plan's per-GOP reference reset is what makes
// each task self-contained.
func decodeResilientGOP(m *StreamMap, pl *plan, opt Options, st *Stats) error {
	pool := frame.NewPool(m.Seq.Width, m.Seq.Height)
	pool.SetScrub(true) // concealed/substituted pixels must never leak stale content
	disp := newDisplay(pool, opt.Sink, opt.Obs)

	// Packed order over the kept groups (LPT by byte size by default).
	costs := make([]int64, len(pl.gops))
	for i, pg := range pl.gops {
		costs[i] = int64(m.GOPs[pg.g].End - m.GOPs[pg.g].Offset)
	}
	tasks := make(chan int, len(pl.gops))
	order := packOrder(costs, opt.Packing, opt.PackSeed)
	for gi := range pl.gops {
		if order != nil {
			gi = order[gi]
		}
		tasks <- gi
	}
	close(tasks)

	var errs firstErr
	st.WorkerStats = make([]WorkerStats, opt.Workers)
	var workMu sync.Mutex

	wallStart := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			obs.Do(opt.Mode.String(), wi, func() {
				ws := &st.WorkerStats[wi]
				var scr sliceScratch
				for {
					t0 := time.Now()
					gi, ok := <-tasks
					wait := time.Since(t0)
					ws.Wait += wait
					opt.Obs.Record(obs.KindWait, wi, t0, wait, -1, -1, -1)
					if !ok {
						return
					}
					if errs.get() != nil {
						continue // drain remaining tasks after a failure
					}
					pg := pl.gops[gi]
					t1 := time.Now()
					reg := rtrace.StartRegion(context.Background(), "mpeg2par.gopTask")
					var work decoder.WorkStats
					var es ErrorStats
					failed := false
					// Workers touch only their own GOP's picStates (plus the
					// frames within it), so no locking is needed on the plan.
					for idx := pg.first; idx < pg.first+pg.n; idx++ {
						p := pl.pics[idx]
						newPlanFrame(pool, p)
						w, e, err := decodePlanPic(&m.Seq, pl.pics, idx, wi, opt, &scr)
						work.Add(w)
						es.Add(e)
						if err != nil {
							errs.set(fmt.Errorf("core: GOP %d at byte %d: %w", pg.g, m.GOPs[pg.g].Offset, err))
							failed = true
							break
						}
						for _, ri := range p.holds {
							if pl.pics[ri].frame.Release() {
								pool.Put(pl.pics[ri].frame)
							}
						}
						disp.push(p.frame, p.displayIdx)
					}
					reg.End()
					cost := time.Since(t1)
					ws.Busy += cost
					ws.Tasks++
					opt.Obs.Record(obs.KindTask, wi, t1, cost, pg.g, -1, -1)
					opt.Cost.Observe(int64(m.GOPs[pg.g].End-m.GOPs[pg.g].Offset), cost)
					if failed {
						continue
					}
					workMu.Lock()
					st.Work.Add(work)
					st.Errors.Add(es)
					workMu.Unlock()
				}
			})
		}(wi)
	}
	wg.Wait()
	if err := errs.get(); err != nil {
		st.Wall = time.Since(wallStart)
		return err
	}
	return finishPlan(pl, pool, disp, st, wallStart)
}

// decodeResilientSlice executes the plan at the fine grain through the
// same 2-D task queue as the legacy slice modes; a task is one
// macroblock-row group (or the single substitution step of a dropped
// picture), so same-row slices of a corrupted stream can never race.
func decodeResilientSlice(m *StreamMap, pl *plan, opt Options, st *Stats) error {
	pool := frame.NewPool(m.Seq.Width, m.Seq.Height)
	pool.SetScrub(true)
	disp := newDisplay(pool, opt.Sink, opt.Obs)

	pics := pl.pics
	q := &sliceQueue{
		pics:     pics,
		improved: opt.Mode == ModeSliceImproved,
		pool:     pool,
		depth:    opt.Workers + 4,
		closed:   true, // batch: the full plan is known up front
		obs:      opt.Obs,
		workers:  opt.Workers,
		affinity: opt.Affinity,
	}
	q.cond = sync.NewCond(&q.mu)

	var errs firstErr
	st.WorkerStats = make([]WorkerStats, opt.Workers)
	var workMu sync.Mutex

	wallStart := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			obs.Do(opt.Mode.String(), wi, func() {
				ws := &st.WorkerStats[wi]
				var scr sliceScratch
				var taskAddrs []int
				for {
					p, ti, wait, ok := q.take(wi)
					ws.Wait += wait
					if !ok {
						return
					}
					t0 := time.Now()
					reg := rtrace.StartRegion(context.Background(), "mpeg2par.sliceTask")
					var work decoder.WorkStats
					var es ErrorStats
					var sst SplitStats
					taskAddrs = taskAddrs[:0]
					err := runPlanSliceTask(&m.Seq, pics, p, ti, wi, opt, &scr, &work, &es, &sst, &taskAddrs)
					reg.End()
					cost := time.Since(t0)
					ws.Busy += cost
					ws.Tasks++
					kind := obs.KindTask
					if _, j, _ := p.taskAt(ti); j != nil {
						kind = obs.KindSegment
					}
					opt.Obs.Record(kind, wi, t0, cost, p.gop, p.displayIdx, ti)
					if p.fate == fateDecode {
						opt.Cost.Observe(taskBytes(p, ti), cost)
					}
					if err != nil { // only possible under FailFast (never batch)
						errs.set(err)
						q.fail()
						return
					}
					if q.finish(p, taskAddrs) {
						if p.fate == fateDecode {
							if miss := q.missing(p); len(miss) > 0 {
								concealMBs(pics, p, miss)
								es.ConcealedMBs += len(miss)
							}
						}
						q.completePic(p)
						for _, ri := range p.holds {
							if pics[ri].frame.Release() {
								pool.Put(pics[ri].frame)
							}
						}
						disp.push(p.frame, p.displayIdx)
					}
					workMu.Lock()
					st.Work.Add(work)
					st.Errors.Add(es)
					st.Split.Add(sst)
					workMu.Unlock()
				}
			})
		}(wi)
	}
	wg.Wait()
	if err := errs.get(); err != nil {
		st.Wall = time.Since(wallStart)
		return err
	}
	return finishPlan(pl, pool, disp, st, wallStart)
}

// runPlanSliceTask executes task ti of planned picture p: the single
// substitution step of a dropped picture, one macroblock-row group of
// slices, or one segment of a split slice. Damage is tallied into es and
// split activity into sst; reconstructed macroblock addresses are
// appended to taskAddrs. Shared by the batch and streaming slice
// executors; a non-nil error is only possible under FailFast (the
// streaming path runs that policy through the plan executor too).
func runPlanSliceTask(seq *mpeg2.SequenceHeader, pics []*picState, p *picState, ti, wi int, opt Options, scr *sliceScratch, work *decoder.WorkStats, es *ErrorStats, sst *SplitStats, taskAddrs *[]int) error {
	if p.fate == fateSubstitute {
		var src *frame.Frame
		if p.subFrom >= 0 {
			src = pics[p.subFrom].frame
		}
		if !p.frame.CopyPixelsFrom(src) {
			p.frame.Fill(128)
		}
		return nil
	}
	refs := picRefs(pics, p)
	last := len(p.rng.Slices) - 1
	gi, j, seg := p.taskAt(ti)
	if j != nil {
		// A segment of a split slice. Only the join's (fallback) error is
		// authoritative — a failed segment alone proves nothing about the
		// slice, so per-segment errors stay inside the join state.
		w, addrs, err := runSegment(seq, &p.hdr, &p.params, p.data, refs, p.frame, j, seg, wi, opt, opt.Tracer, scr, sst)
		work.Add(w)
		if err != nil {
			if opt.Resilience == FailFast {
				return err
			}
			es.DamagedSlices++
			if j.si != last {
				es.Resyncs++
			}
			return nil
		}
		*taskAddrs = append(*taskAddrs, addrs...)
		return nil
	}
	for _, si := range p.groups[gi] {
		w, addrs, err := decodeSliceRange(p.data, seq, &p.hdr, &p.params, p.rng.Slices[si], p.sliceBound(si), refs, p.frame, wi, opt.Tracer, scr)
		work.Add(w)
		if err != nil {
			if opt.Resilience == FailFast {
				return err
			}
			es.DamagedSlices++
			if si != last {
				es.Resyncs++
			}
			continue
		}
		*taskAddrs = append(*taskAddrs, addrs...)
	}
	return nil
}
