// Package core implements the paper's parallel MPEG-2 decoder: a scan
// process that indexes the stream by startcodes, a pool of worker
// processes consuming either GOP-level tasks (coarse grain) or slice-level
// tasks from a 2-D picture/slice queue (fine grain, in simple and improved
// variants), and a display process that reorders decoded pictures into
// display order.
package core

import (
	"fmt"
	"time"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// SliceRange locates one slice's bytes within the stream.
type SliceRange struct {
	Row    int
	Offset int // byte offset of the slice startcode
	End    int // byte offset one past the slice data
	// Bytes is the slice's compressed size (End-Offset). Variable-length
	// decode time is proportional to bits consumed, so this is the
	// scheduler's per-slice cost estimate. It is invariant under offset
	// rebasing, so batch and streaming consumers see the same value.
	Bytes int
}

// PictureRange locates one picture and its slices.
type PictureRange struct {
	Offset      int // byte offset of the picture startcode
	End         int
	Type        vlc.PictureCoding
	TemporalRef int
	Slices      []SliceRange
	// Damaged marks a picture whose header prefix was unreadable at scan
	// time (bad coding type or truncation). Only the lenient scan
	// produces damaged pictures; the strict scan fails instead.
	Damaged bool
}

// ScanDamage counts structural corruption the lenient scan tolerated.
type ScanDamage struct {
	DamagedPictures int // unreadable picture-header prefixes
	BadHeaders      int // sequence/GOP headers that failed to parse
	OrphanSlices    int // slices outside any picture
}

// Any reports whether the scan saw structural damage.
func (d ScanDamage) Any() bool {
	return d.DamagedPictures != 0 || d.BadHeaders != 0 || d.OrphanSlices != 0
}

// GOPRange locates one group of pictures. The range starts at the
// repeated sequence header if one precedes the GOP header.
type GOPRange struct {
	Offset       int
	End          int
	FirstDisplay int // display index of the GOP's first picture
	Closed       bool
	Pictures     []PictureRange
}

// StreamMap is the product of the scan process: the structural index that
// makes task-level parallel decode possible without decoding.
type StreamMap struct {
	Seq           mpeg2.SequenceHeader
	GOPs          []GOPRange
	TotalPictures int
	ScanTime      time.Duration
	Bytes         int
	// Damage is populated by ScanLenient; the strict Scan leaves it zero
	// (it fails on the conditions Damage would count).
	Damage ScanDamage
}

// ScanRate returns the scan throughput in pictures per second.
func (m *StreamMap) ScanRate() float64 {
	if m.ScanTime <= 0 {
		return 0
	}
	return float64(m.TotalPictures) / m.ScanTime.Seconds()
}

// scanHeaderSpan bounds how many bytes past a startcode a header parse
// may examine. MPEG-2 sequence and GOP headers (including quantizer
// matrices and the sequence extension) fit in well under this span; the
// bound exists so the batch and streaming scanners see the identical
// byte window on arbitrarily corrupted input, where an unbounded parse
// could otherwise chase a fake matrix flag across the whole stream.
const scanHeaderSpan = 512

// ScanAheadBytes is how far past a startcode the incremental scanner
// must have buffered before the startcode can be processed with results
// identical to the batch scan (header span plus the 4-byte code itself).
const ScanAheadBytes = scanHeaderSpan + 4

// Scan indexes the stream: it finds every startcode, parses the sequence
// header and the cheap picture-header prefix (temporal reference and
// type), and groups pictures and slices into GOPs. This is exactly the
// work the paper's dedicated scan process performs. Structural damage is
// a hard error; see ScanLenient for the error-resilient variant.
func Scan(data []byte) (*StreamMap, error) { return scan(data, false) }

// ScanLenient indexes a possibly damaged stream. Unparseable repeated
// sequence headers and GOP headers are skipped, unreadable picture
// headers produce Damaged picture ranges (so the resilience ladder can
// substitute them), and orphan slices are dropped — all tallied in the
// returned map's Damage field. It still fails when no sequence header or
// no pictures survive: then there is nothing to decode at any policy.
func ScanLenient(data []byte) (*StreamMap, error) { return scan(data, true) }

func scan(data []byte, lenient bool) (*StreamMap, error) {
	start := time.Now()
	s := NewScanState(lenient)
	pos := 0
	for {
		i := bits.FindStartCode(data, pos)
		if i < 0 {
			break
		}
		if err := s.Step(data, 0, i); err != nil {
			return nil, err
		}
		pos = i + 4
	}
	m, err := s.Finish(len(data))
	if err != nil {
		return nil, err
	}
	m.ScanTime = time.Since(start)
	return m, nil
}

// ScanState is the scan process as an incremental state machine: the
// batch Scan drives it over a fully materialized buffer, the streaming
// scanner (internal/stream) drives it over a sliding window of an
// io.Reader, and both produce the identical StreamMap for the same
// bytes. Startcodes must be fed strictly in stream order.
type ScanState struct {
	m       *StreamMap
	lenient bool
	seqSeen bool

	curGOP           *GOPRange
	curPic           *PictureRange
	pendingSeqOffset int // offset of a seq header not yet claimed by a GOP
	display          int // running display index assigned to closed GOPs

	// OnGOP, when non-nil, is called each time a group of pictures
	// closes, with its index and range (absolute stream offsets). The
	// streaming pipeline copies the group's bytes out of its window here;
	// returning an error aborts the scan.
	OnGOP func(g int, gr *GOPRange) error
}

// NewScanState returns a scan state machine (lenient or strict, matching
// ScanLenient and Scan).
func NewScanState(lenient bool) *ScanState {
	return &ScanState{
		m:                &StreamMap{},
		lenient:          lenient,
		pendingSeqOffset: -1,
	}
}

// Pictures returns the number of pictures scanned so far (closed GOPs
// only — the count the streaming pipeline's scan-lead gauge tracks).
func (s *ScanState) Pictures() int { return s.m.TotalPictures }

// Seq returns the sequence header currently in force. Valid inside an
// OnGOP callback (a group closes under the header that opened it).
func (s *ScanState) Seq() *mpeg2.SequenceHeader { return &s.m.Seq }

// KeepFrom returns the lowest absolute offset the state machine may
// still need bytes from: the start of the open group of pictures (its
// bytes are copied out when it closes) or of an unclaimed sequence
// header. Offsets below it may be released from a sliding window.
func (s *ScanState) KeepFrom(searchFrom int) int {
	keep := searchFrom
	if s.curGOP != nil && s.curGOP.Offset < keep {
		keep = s.curGOP.Offset
	}
	if s.pendingSeqOffset >= 0 && s.pendingSeqOffset < keep {
		keep = s.pendingSeqOffset
	}
	return keep
}

func (s *ScanState) closePic(end int) {
	if s.curPic == nil {
		return
	}
	s.curPic.End = end
	if n := len(s.curPic.Slices); n > 0 {
		s.curPic.Slices[n-1].End = end
		s.curPic.Slices[n-1].Bytes = end - s.curPic.Slices[n-1].Offset
	}
	s.curGOP.Pictures = append(s.curGOP.Pictures, *s.curPic)
	s.curPic = nil
}

func (s *ScanState) closeGOP(end int) error {
	s.closePic(end)
	if s.curGOP == nil {
		return nil
	}
	s.curGOP.End = end
	s.curGOP.FirstDisplay = s.display
	s.display += len(s.curGOP.Pictures)
	g := len(s.m.GOPs)
	s.m.GOPs = append(s.m.GOPs, *s.curGOP)
	s.m.TotalPictures += len(s.curGOP.Pictures)
	s.curGOP = nil
	if s.OnGOP != nil {
		return s.OnGOP(g, &s.m.GOPs[g])
	}
	return nil
}

// headerReader returns a bit reader over the header payload following the
// startcode at absolute offset pos, bounded to scanHeaderSpan bytes.
func headerReader(view []byte, base, pos int) *bits.Reader {
	lo := pos - base
	hi := lo + scanHeaderSpan
	if hi > len(view) {
		hi = len(view)
	}
	return bits.NewReader(view[lo:hi])
}

// Step processes the startcode whose first zero byte sits at absolute
// stream offset i. view holds the stream bytes [base, base+len(view));
// it must cover the startcode and — unless the stream ends inside it —
// at least ScanAheadBytes beyond it, so header parses behave exactly as
// in the batch scan.
func (s *ScanState) Step(view []byte, base, i int) error {
	end := base + len(view)
	code := view[i-base+3]
	pos := i + 4
	switch {
	case code == mpeg2.SequenceHeaderCode:
		if err := s.closeGOP(i); err != nil {
			return err
		}
		r := headerReader(view, base, pos)
		seq, err := mpeg2.ParseSequenceHeader(r)
		if err != nil {
			if !s.lenient {
				return fmt.Errorf("core: scan: %w", err)
			}
			// Damaged repeated header: keep decoding with the last
			// good geometry.
			s.m.Damage.BadHeaders++
			s.pendingSeqOffset = -1
			return nil
		}
		if s.seqSeen && (seq.Width != s.m.Seq.Width || seq.Height != s.m.Seq.Height) {
			if !s.lenient {
				return fmt.Errorf("core: scan: sequence size changes mid-stream")
			}
			// A mid-stream size change on a damaged stream is almost
			// certainly a corrupted repeat header, not a real switch.
			s.m.Damage.BadHeaders++
			s.pendingSeqOffset = -1
			return nil
		}
		s.m.Seq = seq
		s.seqSeen = true
		s.pendingSeqOffset = i
	case code == mpeg2.GroupStartCode:
		if err := s.closeGOP(i); err != nil {
			return err
		}
		off := i
		if s.pendingSeqOffset >= 0 {
			off = s.pendingSeqOffset
		}
		r := headerReader(view, base, pos)
		gh, err := mpeg2.ParseGOPHeader(r)
		if err != nil {
			if !s.lenient {
				return fmt.Errorf("core: scan: %w", err)
			}
			// Unreadable GOP header: the group boundary (the
			// startcode) is still trustworthy, only its payload is
			// not. Synthesize a closed group.
			s.m.Damage.BadHeaders++
			gh.Closed = true
		}
		s.curGOP = &GOPRange{Offset: off, FirstDisplay: -1, Closed: gh.Closed}
		s.pendingSeqOffset = -1
	case code == mpeg2.PictureStartCode:
		if s.curGOP == nil {
			// GOP headers are optional in MPEG-2: synthesize one.
			off := i
			if s.pendingSeqOffset >= 0 {
				off = s.pendingSeqOffset
			}
			s.curGOP = &GOPRange{Offset: off, FirstDisplay: -1, Closed: true}
			s.pendingSeqOffset = -1
		}
		s.closePic(i)
		if i+5 >= end {
			if !s.lenient {
				return fmt.Errorf("core: scan: truncated picture header at %d", i)
			}
			s.m.Damage.DamagedPictures++
			s.curPic = &PictureRange{Offset: i, Damaged: true}
			return nil
		}
		// temporal_reference: 10 bits; picture_coding_type: 3 bits.
		b0, b1 := int(view[i-base+4]), int(view[i-base+5])
		tref := b0<<2 | b1>>6
		ptype := vlc.PictureCoding(b1 >> 3 & 7)
		if ptype < vlc.CodingI || ptype > vlc.CodingB {
			if !s.lenient {
				return fmt.Errorf("core: scan: bad picture type %d at %d", int(ptype), i)
			}
			s.m.Damage.DamagedPictures++
			s.curPic = &PictureRange{Offset: i, Damaged: true}
			return nil
		}
		s.curPic = &PictureRange{Offset: i, Type: ptype, TemporalRef: tref}
	case code >= mpeg2.SliceStartMin && code <= mpeg2.SliceStartMax:
		if s.curPic == nil {
			if !s.lenient {
				return fmt.Errorf("core: scan: slice startcode outside picture at %d", i)
			}
			// Slices with no owning picture (the picture startcode
			// itself was destroyed) cannot be placed; drop them.
			s.m.Damage.OrphanSlices++
			return nil
		}
		if n := len(s.curPic.Slices); n > 0 {
			s.curPic.Slices[n-1].End = i
			s.curPic.Slices[n-1].Bytes = i - s.curPic.Slices[n-1].Offset
		}
		s.curPic.Slices = append(s.curPic.Slices, SliceRange{Row: int(code) - 1, Offset: i})
	case code == mpeg2.SequenceEndCode:
		return s.closeGOP(i)
	default:
		// Extension/user data: belongs to the current unit; nothing
		// to index.
	}
	return nil
}

// Finish closes the trailing group at the given total stream length and
// returns the completed map. The caller stamps ScanTime.
func (s *ScanState) Finish(total int) (*StreamMap, error) {
	if err := s.closeGOP(total); err != nil {
		return nil, err
	}
	m := s.m
	m.Bytes = total
	if !s.seqSeen {
		return nil, fmt.Errorf("core: scan: no sequence header")
	}
	if m.TotalPictures == 0 {
		return nil, fmt.Errorf("core: scan: no pictures")
	}
	return m, nil
}

// DisplayIndex returns the absolute display position of picture p of GOP g.
func (m *StreamMap) DisplayIndex(g int, p *PictureRange) int {
	return m.GOPs[g].FirstDisplay + p.TemporalRef
}
