// Package core implements the paper's parallel MPEG-2 decoder: a scan
// process that indexes the stream by startcodes, a pool of worker
// processes consuming either GOP-level tasks (coarse grain) or slice-level
// tasks from a 2-D picture/slice queue (fine grain, in simple and improved
// variants), and a display process that reorders decoded pictures into
// display order.
package core

import (
	"fmt"
	"time"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// SliceRange locates one slice's bytes within the stream.
type SliceRange struct {
	Row    int
	Offset int // byte offset of the slice startcode
	End    int // byte offset one past the slice data
}

// PictureRange locates one picture and its slices.
type PictureRange struct {
	Offset      int // byte offset of the picture startcode
	End         int
	Type        vlc.PictureCoding
	TemporalRef int
	Slices      []SliceRange
	// Damaged marks a picture whose header prefix was unreadable at scan
	// time (bad coding type or truncation). Only the lenient scan
	// produces damaged pictures; the strict scan fails instead.
	Damaged bool
}

// ScanDamage counts structural corruption the lenient scan tolerated.
type ScanDamage struct {
	DamagedPictures int // unreadable picture-header prefixes
	BadHeaders      int // sequence/GOP headers that failed to parse
	OrphanSlices    int // slices outside any picture
}

// Any reports whether the scan saw structural damage.
func (d ScanDamage) Any() bool {
	return d.DamagedPictures != 0 || d.BadHeaders != 0 || d.OrphanSlices != 0
}

// GOPRange locates one group of pictures. The range starts at the
// repeated sequence header if one precedes the GOP header.
type GOPRange struct {
	Offset       int
	End          int
	FirstDisplay int // display index of the GOP's first picture
	Closed       bool
	Pictures     []PictureRange
}

// StreamMap is the product of the scan process: the structural index that
// makes task-level parallel decode possible without decoding.
type StreamMap struct {
	Seq           mpeg2.SequenceHeader
	GOPs          []GOPRange
	TotalPictures int
	ScanTime      time.Duration
	Bytes         int
	// Damage is populated by ScanLenient; the strict Scan leaves it zero
	// (it fails on the conditions Damage would count).
	Damage ScanDamage
}

// ScanRate returns the scan throughput in pictures per second.
func (m *StreamMap) ScanRate() float64 {
	if m.ScanTime <= 0 {
		return 0
	}
	return float64(m.TotalPictures) / m.ScanTime.Seconds()
}

// Scan indexes the stream: it finds every startcode, parses the sequence
// header and the cheap picture-header prefix (temporal reference and
// type), and groups pictures and slices into GOPs. This is exactly the
// work the paper's dedicated scan process performs. Structural damage is
// a hard error; see ScanLenient for the error-resilient variant.
func Scan(data []byte) (*StreamMap, error) { return scan(data, false) }

// ScanLenient indexes a possibly damaged stream. Unparseable repeated
// sequence headers and GOP headers are skipped, unreadable picture
// headers produce Damaged picture ranges (so the resilience ladder can
// substitute them), and orphan slices are dropped — all tallied in the
// returned map's Damage field. It still fails when no sequence header or
// no pictures survive: then there is nothing to decode at any policy.
func ScanLenient(data []byte) (*StreamMap, error) { return scan(data, true) }

func scan(data []byte, lenient bool) (*StreamMap, error) {
	start := time.Now()
	m := &StreamMap{Bytes: len(data)}
	seqSeen := false

	var curGOP *GOPRange
	var curPic *PictureRange
	pendingSeqOffset := -1 // offset of a seq header not yet claimed by a GOP

	closePic := func(end int) {
		if curPic == nil {
			return
		}
		curPic.End = end
		if n := len(curPic.Slices); n > 0 {
			curPic.Slices[n-1].End = end
		}
		curGOP.Pictures = append(curGOP.Pictures, *curPic)
		curPic = nil
	}
	closeGOP := func(end int) {
		closePic(end)
		if curGOP == nil {
			return
		}
		curGOP.End = end
		m.GOPs = append(m.GOPs, *curGOP)
		m.TotalPictures += len(curGOP.Pictures)
		curGOP = nil
	}

	pos := 0
	for {
		i := bits.FindStartCode(data, pos)
		if i < 0 {
			break
		}
		code := data[i+3]
		pos = i + 4
		switch {
		case code == mpeg2.SequenceHeaderCode:
			closeGOP(i)
			r := bits.NewReader(data[pos:])
			seq, err := mpeg2.ParseSequenceHeader(r)
			if err != nil {
				if !lenient {
					return nil, fmt.Errorf("core: scan: %w", err)
				}
				// Damaged repeated header: keep decoding with the last
				// good geometry.
				m.Damage.BadHeaders++
				pendingSeqOffset = -1
				continue
			}
			if seqSeen && (seq.Width != m.Seq.Width || seq.Height != m.Seq.Height) {
				if !lenient {
					return nil, fmt.Errorf("core: scan: sequence size changes mid-stream")
				}
				// A mid-stream size change on a damaged stream is almost
				// certainly a corrupted repeat header, not a real switch.
				m.Damage.BadHeaders++
				pendingSeqOffset = -1
				continue
			}
			m.Seq = seq
			seqSeen = true
			pendingSeqOffset = i
		case code == mpeg2.GroupStartCode:
			closeGOP(i)
			off := i
			if pendingSeqOffset >= 0 {
				off = pendingSeqOffset
			}
			r := bits.NewReader(data[pos:])
			gh, err := mpeg2.ParseGOPHeader(r)
			if err != nil {
				if !lenient {
					return nil, fmt.Errorf("core: scan: %w", err)
				}
				// Unreadable GOP header: the group boundary (the
				// startcode) is still trustworthy, only its payload is
				// not. Synthesize a closed group.
				m.Damage.BadHeaders++
				gh.Closed = true
			}
			curGOP = &GOPRange{Offset: off, FirstDisplay: -1, Closed: gh.Closed}
			pendingSeqOffset = -1
		case code == mpeg2.PictureStartCode:
			if curGOP == nil {
				// GOP headers are optional in MPEG-2: synthesize one.
				off := i
				if pendingSeqOffset >= 0 {
					off = pendingSeqOffset
				}
				curGOP = &GOPRange{Offset: off, FirstDisplay: -1, Closed: true}
				pendingSeqOffset = -1
			}
			closePic(i)
			if i+5 >= len(data) {
				if !lenient {
					return nil, fmt.Errorf("core: scan: truncated picture header at %d", i)
				}
				m.Damage.DamagedPictures++
				curPic = &PictureRange{Offset: i, Damaged: true}
				continue
			}
			// temporal_reference: 10 bits; picture_coding_type: 3 bits.
			b0, b1 := int(data[i+4]), int(data[i+5])
			tref := b0<<2 | b1>>6
			ptype := vlc.PictureCoding(b1 >> 3 & 7)
			if ptype < vlc.CodingI || ptype > vlc.CodingB {
				if !lenient {
					return nil, fmt.Errorf("core: scan: bad picture type %d at %d", int(ptype), i)
				}
				m.Damage.DamagedPictures++
				curPic = &PictureRange{Offset: i, Damaged: true}
				continue
			}
			curPic = &PictureRange{Offset: i, Type: ptype, TemporalRef: tref}
		case code >= mpeg2.SliceStartMin && code <= mpeg2.SliceStartMax:
			if curPic == nil {
				if !lenient {
					return nil, fmt.Errorf("core: scan: slice startcode outside picture at %d", i)
				}
				// Slices with no owning picture (the picture startcode
				// itself was destroyed) cannot be placed; drop them.
				m.Damage.OrphanSlices++
				continue
			}
			if n := len(curPic.Slices); n > 0 {
				curPic.Slices[n-1].End = i
			}
			curPic.Slices = append(curPic.Slices, SliceRange{Row: int(code) - 1, Offset: i})
		case code == mpeg2.SequenceEndCode:
			closeGOP(i)
		default:
			// Extension/user data: belongs to the current unit; nothing
			// to index.
		}
	}
	closeGOP(len(data))

	if !seqSeen {
		return nil, fmt.Errorf("core: scan: no sequence header")
	}
	// Assign display indices: each GOP's pictures display contiguously.
	display := 0
	for g := range m.GOPs {
		m.GOPs[g].FirstDisplay = display
		display += len(m.GOPs[g].Pictures)
	}
	if m.TotalPictures == 0 {
		return nil, fmt.Errorf("core: scan: no pictures")
	}
	m.ScanTime = time.Since(start)
	return m, nil
}

// DisplayIndex returns the absolute display position of picture p of GOP g.
func (m *StreamMap) DisplayIndex(g int, p *PictureRange) int {
	return m.GOPs[g].FirstDisplay + p.TemporalRef
}
