package core

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/mpeg2"
)

// TestScanSkipsUserDataAndExtensions: foreign units between pictures must
// not confuse the structural index.
func TestScanSkipsUserDataAndExtensions(t *testing.T) {
	res := testStream(t, 80, 48, 4, 4)
	// Inject a user_data unit right after the GOP header.
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	insertAt := m.GOPs[0].Pictures[0].Offset
	var w bits.Writer
	w.StartCode(mpeg2.UserDataStartCode)
	for i := 0; i < 16; i++ {
		w.Put(uint32('A'+i), 8)
	}
	userData := w.Bytes()
	mut := append([]byte(nil), res.Data[:insertAt]...)
	mut = append(mut, userData...)
	mut = append(mut, res.Data[insertAt:]...)

	m2, err := Scan(mut)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TotalPictures != m.TotalPictures || len(m2.GOPs) != len(m.GOPs) {
		t.Fatalf("user data changed structure: %d pics, %d GOPs", m2.TotalPictures, len(m2.GOPs))
	}
	// And the stream still decodes identically in every mode.
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeGOP, ModeSliceSimple, ModeSliceImproved} {
		var sink collectSink
		if _, err := Decode(mut, Options{Mode: mode, Workers: 2, Sink: sink.add}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range want {
			if !sink.frames[i].Equal(want[i]) {
				t.Fatalf("%v: frame %d differs with user data present", mode, i)
			}
		}
	}
}

// TestScanFalseStartcodesInPayload: VLC payloads are startcode-free by
// construction (that's the point of startcode emulation prevention in
// MPEG); verify our encoder's output really contains no stray prefixes
// inside slice bodies.
func TestScanNoStartcodeEmulation(t *testing.T) {
	res := testStream(t, 96, 64, 8, 8)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, gop := range m.GOPs {
		for _, p := range gop.Pictures {
			for _, s := range p.Slices {
				// Within a slice body (after its 4-byte startcode) no
				// 0x000001 prefix may occur except at the very end.
				body := res.Data[s.Offset+4 : s.End]
				if i := bits.FindStartCode(body, 0); i >= 0 {
					t.Fatalf("startcode emulation inside slice at row %d offset %d", s.Row, i)
				}
			}
		}
	}
}

// TestDisplayIndexMapping: scanned display indices are a permutation of
// 0..N-1 (what the display process relies on).
func TestDisplayIndexMapping(t *testing.T) {
	res := testStream(t, 80, 48, 12, 4)
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for g := range m.GOPs {
		for pi := range m.GOPs[g].Pictures {
			idx := m.DisplayIndex(g, &m.GOPs[g].Pictures[pi])
			if seen[idx] {
				t.Fatalf("duplicate display index %d", idx)
			}
			seen[idx] = true
		}
	}
	for i := 0; i < m.TotalPictures; i++ {
		if !seen[i] {
			t.Fatalf("display index %d missing", i)
		}
	}
}
