package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rtrace "runtime/trace"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
)

// Session is one stream's decode state inside a multi-stream service:
// the same scan→plan→decode→display pipeline as StreamExecutor, except
// the session owns no workers. The service's scan goroutine Feeds it
// scanned groups of pictures and receives back coarse-grained tasks;
// the service's *shared* worker pool executes them through Run. That
// inversion — tasks pulled by external workers instead of pushed to
// per-decode goroutines — is what lets N streams multiplex onto one
// pool.
//
// Concurrency contract: Feed and Finish are called from a single
// goroutine (the stream's feeder); Run may be called concurrently from
// any number of pool workers, one call per task; SetShed and
// SetDegraded may be called from any goroutine and apply to units
// planned after the call. Tasks of one session may run concurrently
// and in any order — each task is one group of pictures, and the
// plan's per-GOP reference reset makes groups independent.
type Session struct {
	opt  Options
	lane int // obs lane for this stream's display + service events

	seq     mpeg2.SequenceHeader
	pb      *planBuilder
	pool    *frame.Pool
	disp    *displayProc
	st      *Stats
	started bool

	wallStart time.Time

	shed     atomic.Int32 // ShedLevel for subsequently planned units
	degraded atomic.Bool  // resilience floor for subsequently planned units

	errs   firstErr
	workMu sync.Mutex
}

// SessionTask is one schedulable unit of a session: decode (or
// substitute) every picture of one planned group. The service's pool
// workers execute it via Session.Run.
type SessionTask struct {
	s     *Session
	pics  []*picState // plan-prefix snapshot covering the group
	first int         // plan index of the group's first picture
	n     int
	g     int   // group index, for error messages and obs coordinates
	off   int   // absolute stream offset, for error messages
	bytes int64 // compressed size, the cost model's estimate input

	displayBase int   // first display index the group occupies
	shed        int   // pictures of this group substituted by shedding
	shedIdx     []int // display indices of the substituted pictures

	// assist, when > 1, grants the task that many-way intra-picture
	// fan-out: Run expands indexed tall slices through the split-decode
	// chain (verify-or-fallback, so pixels and error fate never change)
	// instead of decoding them on one worker. Set by the service's
	// dispatcher for deadline-tight tasks when idle workers exist.
	assist int

	// policy is the effective resilience the unit was planned under
	// (the stream's requested policy, floored at ConcealPicture while
	// degraded). Run decodes under it so execution-time damage handling
	// matches the plan's promises.
	policy Resilience
}

// GOP returns the task's group index in stream order.
func (t *SessionTask) GOP() int { return t.g }

// Pictures returns how many pictures the task will complete.
func (t *SessionTask) Pictures() int { return t.n }

// Bytes returns the group's compressed size (the scheduling cost
// estimate).
func (t *SessionTask) Bytes() int64 { return t.bytes }

// DisplayBase returns the first display index the task's pictures
// occupy; the task covers [DisplayBase, DisplayBase+Pictures()).
func (t *SessionTask) DisplayBase() int { return t.displayBase }

// ShedPictures returns how many of the task's pictures were sacrificed
// to load shedding at plan time.
func (t *SessionTask) ShedPictures() int { return t.shed }

// ShedDisplays returns the display indices of the task's shed
// (substituted) pictures — the service's miss accounting excludes them,
// keeping Stats.Shed disjoint from deadline misses. The slice is owned
// by the task; callers must not mutate it.
func (t *SessionTask) ShedDisplays() []int { return t.shedIdx }

// SetAssist grants the task n-way intra-picture fan-out: while it runs,
// indexed tall slices are decoded as up to n parallel row segments
// through the split-decode verify-or-fallback chain, spending otherwise
// idle workers to pull a deadline-tight frame back under budget. Output
// is unchanged by construction (a failed verify re-decodes
// sequentially). Takes effect only when the session was built with
// Options.SplitIndex or SpeculativeSplit; n < 2 disables. Call before
// handing the task to Run.
func (t *SessionTask) SetAssist(n int) { t.assist = n }

// Assist returns the granted fan-out width (0 or 1 means none).
func (t *SessionTask) Assist() int { return t.assist }

// NewSession prepares a session. opt.Workers is the shared pool size
// (reported in Stats); opt.Resilience is the stream's requested policy
// — the degradation ladder may raise its effective value per unit via
// SetDegraded. opt.Mode is ignored: a service session always executes
// at GOP grain (the paper's continuous-playback recommendation), and
// Stats.Mode reports ModeGOP.
func NewSession(opt Options) (*Session, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("core: need at least one worker")
	}
	opt.Mode = ModeGOP
	return &Session{
		opt:  opt,
		lane: obs.LaneDisplay,
		st:   &Stats{Mode: ModeGOP, Workers: opt.Workers, Kernels: kernels.Describe()},
	}, nil
}

// SetLane routes the session's display and shed events to an obs lane
// (a per-stream lane from obs.StreamLane). Call before the first Feed.
func (s *Session) SetLane(lane int) { s.lane = lane }

// SetShed selects the load-shedding level applied to units planned by
// subsequent Feed calls. Already-planned units are unaffected — shed
// decisions are plan-time, so the determinism contract holds per unit.
func (s *Session) SetShed(l ShedLevel) { s.shed.Store(int32(l)) }

// ShedLevel returns the currently applied shedding level.
func (s *Session) ShedLevel() ShedLevel { return ShedLevel(s.shed.Load()) }

// SetDegraded raises (on) or restores (off) the stream's effective
// resilience floor to ConcealPicture for units planned by subsequent
// Feed calls, keeping a damaged stream alive through faults its
// requested policy would have failed on. Recoveries made only because
// of the floor are accounted in Stats.Shed.DegradedPictures, never in
// Stats.Errors.
func (s *Session) SetDegraded(on bool) { s.degraded.Store(on) }

// Abort latches err (if non-nil) as the session's failure: queued tasks
// become no-ops and Finish tears the pipeline down. Safe from any
// goroutine.
func (s *Session) Abort(err error) { s.errs.set(err) }

// Err returns the first latched failure, nil while healthy.
func (s *Session) Err() error { return s.errs.get() }

// Displayed returns how many pictures have been delivered so far (the
// service's watchdog samples it as the progress gauge).
func (s *Session) Displayed() int {
	if s.disp == nil {
		return 0
	}
	return s.disp.count()
}

// Planned returns how many pictures have been planned so far.
func (s *Session) Planned() int {
	if s.pb == nil {
		return 0
	}
	return len(s.pb.pl.pics)
}

func (s *Session) start(u *Unit) {
	s.started = true
	s.wallStart = time.Now()
	s.seq = u.Seq
	s.pb = newPlanBuilder(&s.seq, s.opt.Resilience, s.opt.Packing, s.opt.PackSeed)
	s.pool = frame.NewPool(s.seq.Width, s.seq.Height)
	// Scrub always: shed substitutions ship synthesized content even on
	// clean streams, and recycled buffers must never leak stale pixels.
	s.pool.SetScrub(true)
	s.disp = newDisplay(s.pool, s.opt.Sink, s.opt.Obs)
	s.disp.lane = s.lane
}

// Feed plans one scanned group of pictures under the session's current
// shed level and resilience floor, and returns the task the shared pool
// should execute — nil (with nil error) when the group planned empty
// (no pictures, or dropped whole by the policy). Feed never blocks; the
// service's per-stream token gate provides the backpressure.
func (s *Session) Feed(u Unit) (*SessionTask, error) {
	return s.FeedShed(u, ShedNone)
}

// FeedShed is Feed with a per-unit shedding floor: the unit is planned
// at whichever is higher of the session-wide level (SetShed, the
// ladder's global knob) and floor. The service's slack predictor uses
// it to sacrifice a single already-doomed frame's B pictures before the
// ladder escalates every stream.
func (s *Session) FeedShed(u Unit, floor ShedLevel) (*SessionTask, error) {
	if err := s.errs.get(); err != nil {
		return nil, err
	}
	if !s.started {
		s.start(&u)
	}
	lvl := ShedLevel(s.shed.Load())
	if floor > lvl {
		lvl = floor
	}
	s.pb.shed = lvl
	s.pb.degraded = s.degraded.Load()
	policy := s.opt.Resilience
	if s.pb.degraded && policy < ConcealPicture {
		policy = ConcealPicture
	}
	preShed := s.pb.pl.shed
	first := len(s.pb.pl.pics)
	displayBase := s.pb.displayBase
	ps, err := s.pb.addGOP(u.Data, u.G, &u.Range)
	if err != nil {
		s.errs.set(err)
		return nil, err
	}
	shedNow := s.pb.pl.shed.Total() - preShed.Total()
	var shedIdx []int
	if shedNow > 0 {
		now := time.Now()
		for _, p := range ps {
			if p.shedBy != ShedNone {
				shedIdx = append(shedIdx, p.displayIdx)
				if s.opt.Obs != nil {
					s.opt.Obs.Record(obs.KindShed, s.lane, now, 0, u.G, p.displayIdx, int(p.shedBy))
				}
			}
		}
	}
	if len(ps) == 0 {
		return nil, nil
	}
	end := first + len(ps)
	return &SessionTask{
		s:           s,
		pics:        s.pb.pl.pics[:end:end],
		first:       first,
		n:           len(ps),
		g:           u.G,
		off:         u.Base + u.Range.Offset,
		bytes:       int64(len(u.Data)),
		displayBase: displayBase,
		shed:        shedNow,
		shedIdx:     shedIdx,
		policy:      policy,
	}, nil
}

// Run executes one task on pool worker wi: decode or substitute every
// picture of the group, releasing reference holds and pushing each
// completed frame to the display process (which drains in display order
// into the sink). If the session has already failed, Run returns the
// latched error without decoding — the drain path that keeps teardown
// prompt. A decode error is latched and returned.
func (s *Session) Run(t *SessionTask, wi int) error {
	if err := s.errs.get(); err != nil {
		return err
	}
	t1 := time.Now()
	reg := rtrace.StartRegion(context.Background(), "mpeg2par.sessionTask")
	defer reg.End()
	var work decoder.WorkStats
	var es ErrorStats
	var split SplitStats
	var scr sliceScratch
	opt := s.opt
	opt.Resilience = t.policy
	assist := 0
	if t.assist > 1 && (opt.SplitIndex != nil || opt.SpeculativeSplit) {
		assist = t.assist
	}
	for idx := t.first; idx < t.first+t.n; idx++ {
		p := t.pics[idx]
		newPlanFrame(s.pool, p)
		var w decoder.WorkStats
		var pes ErrorStats
		var err error
		if assist > 1 {
			w, pes, err = decodeAssistPic(&s.seq, t.pics, idx, wi, opt, &scr, assist, &split)
		} else {
			w, pes, err = decodePlanPic(&s.seq, t.pics, idx, wi, opt, &scr)
		}
		work.Add(w)
		es.Add(pes)
		if err != nil {
			err = fmt.Errorf("core: GOP %d at byte %d: %w", t.g, t.off, err)
			s.errs.set(err)
			s.noteTask(t, wi, t1, work, es, split)
			return err
		}
		for _, ri := range p.holds {
			if t.pics[ri].frame.Release() {
				s.pool.Put(t.pics[ri].frame)
			}
		}
		s.disp.push(p.frame, p.displayIdx)
	}
	s.noteTask(t, wi, t1, work, es, split)
	s.opt.Cost.Observe(t.bytes, time.Since(t1))
	return nil
}

func (s *Session) noteTask(t *SessionTask, wi int, t1 time.Time, work decoder.WorkStats, es ErrorStats, split SplitStats) {
	cost := time.Since(t1)
	s.opt.Obs.Record(obs.KindTask, wi, t1, cost, t.g, -1, -1)
	s.workMu.Lock()
	s.st.Work.Add(work)
	s.st.Errors.Add(es)
	s.st.Split.Add(split)
	s.workMu.Unlock()
}

// Finish completes the session once every issued task has returned from
// Run (the service drains its pool first — Finish does not join
// workers). cause is the stream-side verdict: nil on a clean end of
// stream, the context's error on cancellation. Any failure — cause or a
// latched decode error — switches Finish into teardown: the reorder
// buffer is abandoned and every planned frame forcibly reclaimed, so a
// cancelled stream holds no picture memory. Stats are returned in both
// cases; LeakedFrameBytes reports pool bytes still unaccounted (always
// zero — the teardown tests assert it).
func (s *Session) Finish(cause error) (*Stats, error) {
	s.errs.set(cause)
	st := s.st
	err := s.errs.get()
	if !s.started {
		return st, err
	}
	st.Wall = time.Since(s.wallStart)
	st.Errors.Add(s.pb.pl.pre)
	st.Shed.Add(s.pb.pl.shed)
	st.Pictures = len(s.pb.pl.pics)
	if err != nil {
		s.disp.abandon()
		for _, p := range s.pb.pl.pics {
			if p.frame != nil {
				s.pool.Reclaim(p.frame)
			}
		}
		ps := s.pool.Stats()
		st.PeakFrameBytes = ps.PeakBytes
		st.FramesAllocated = ps.AllocBytes
		st.LeakedFrameBytes = ps.InUseBytes
		return st, err
	}
	displayed, dispErr := s.disp.finish()
	st.Displayed = displayed
	ps := s.pool.Stats()
	st.PeakFrameBytes = ps.PeakBytes
	st.FramesAllocated = ps.AllocBytes
	st.LeakedFrameBytes = ps.InUseBytes
	if dispErr != nil {
		return st, dispErr
	}
	if displayed != st.Pictures {
		return st, fmt.Errorf("core: displayed %d of %d pictures", displayed, st.Pictures)
	}
	return st, nil
}
