package core

import "fmt"

// ShedLevel is the degradation ladder's per-stream decode reduction:
// how much of each newly planned group of pictures is sacrificed to
// keep an overloaded service live. Shedding reuses the resilience
// plan's substitution machinery (fateSubstitute), so a shed picture
// still occupies its display slot — the viewer sees a freeze frame of
// the nearest preceding reference — and every picture that is NOT shed
// decodes bit-identically to the unshed stream.
type ShedLevel int32

const (
	// ShedNone decodes every picture.
	ShedNone ShedLevel = iota
	// ShedB substitutes non-reference (B) pictures. References never
	// predict from B pictures, so the surviving I/P pictures are
	// bit-identical to a full decode.
	ShedB
	// ShedRef additionally substitutes P pictures: only intra pictures
	// decode. The substituted P frames freeze the preceding anchor, so
	// anything predicting from them is substituted too — intra pictures
	// stay bit-identical.
	ShedRef
)

func (l ShedLevel) String() string {
	switch l {
	case ShedNone:
		return "none"
	case ShedB:
		return "shed-b"
	case ShedRef:
		return "shed-ref"
	}
	return fmt.Sprintf("ShedLevel(%d)", int32(l))
}

// ShedStats accounts the pictures a decode service sacrificed to
// overload — deliberately, by policy. They are kept strictly apart from
// ErrorStats: a shed picture is not damage, and the satellite invariant
// is that the two never double-count (a picture is either shed or
// dropped-by-damage, never both).
type ShedStats struct {
	// BPictures counts non-reference pictures substituted under ShedB
	// (or higher).
	BPictures int `json:"b_pictures"`
	// RefPictures counts P pictures substituted under ShedRef.
	RefPictures int `json:"ref_pictures"`
	// DegradedPictures counts pictures recovered by a resilience policy
	// the ladder forced above the stream's requested one (a damaged
	// picture that would have failed the stream under its own policy but
	// was substituted under the degraded conceal-picture floor).
	DegradedPictures int `json:"degraded_pictures"`
}

// Add accumulates o into s.
func (s *ShedStats) Add(o ShedStats) {
	s.BPictures += o.BPictures
	s.RefPictures += o.RefPictures
	s.DegradedPictures += o.DegradedPictures
}

// Total returns every picture substituted by shedding (not counting
// degraded-policy recoveries, which still decode or substitute for
// damage reasons).
func (s ShedStats) Total() int { return s.BPictures + s.RefPictures }

// Any reports whether the ladder sacrificed anything.
func (s ShedStats) Any() bool { return s != ShedStats{} }

func (s ShedStats) String() string {
	return fmt.Sprintf("shed B %d, shed refs %d, degraded-policy recoveries %d",
		s.BPictures, s.RefPictures, s.DegradedPictures)
}
