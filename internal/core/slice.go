package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	rtrace "runtime/trace"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/vlc"
)

// picState is one picture in the 2-D task queue (first level: pictures in
// decode order; second level: that picture's slices).
type picState struct {
	rng *PictureRange
	// data holds the bytes rng's offsets index into: the whole stream on
	// the batch paths, the picture's own GOP buffer on the streaming path.
	data       []byte
	hdr        mpeg2.PictureHeader
	params     mpeg2.PictureParams
	displayIdx int

	fwd, bwd int // decode-order indices of reference pictures, -1 if none
	lastRef  int // most recent reference picture before this one, -1
	isRef    bool
	deps     int32 // number of later pictures that reference this one

	frame     *frame.Frame
	nextSlice int // next task to hand out
	// order, when non-nil, maps handout position to task index — the
	// scheduler's packing of this picture's tasks (LPT by default). Nil
	// means stream order. Tasks of one picture touch disjoint pixels
	// (distinct macroblock rows, or row groups), so any order is safe.
	order     []int
	nTasks    int // tasks this picture issues (slices, row groups, or one substitute)
	remaining int // tasks not yet completed
	// tasks, when non-nil, is the expanded task table of a picture with
	// at least one split slice: queue indices resolve through it to an
	// underlying slice/group or to one segment of a split slice.
	tasks []segTask
	// bounds holds the per-slice inclusive macroblock address bound
	// (sliceSpanBounds): the span a slice may legally cover before the
	// next slice's first row, which keeps concurrent slices disjoint.
	bounds   []int
	covered  []bool // macroblocks actually reconstructed
	nCovered int
	complete bool

	// Resilient-plan fields (see plan.go); unused by the legacy paths.
	gop       int     // index into StreamMap.GOPs
	typeKnown bool    // the coding type survived the scan
	headerOK  bool    // the full picture header parsed
	fate      picFate // decode from the bitstream or substitute
	subFrom   int     // substitution source (plan index), -1 for grey
	// shedBy, when non-zero, records that this picture's substitution
	// was load shedding (deliberate degradation), not damage.
	shedBy  ShedLevel
	holds   []int   // plan indices of frames read by this picture (released on completion)
	groups  [][]int // slice indices per macroblock-row task group
	damaged int     // slices whose parse/reconstruction failed
	resyncs int     // damaged slices recovered by a later startcode

	// unit, on the streaming path, is the in-flight GOP buffer this
	// picture decodes from; retired when its last picture completes.
	unit *unitState
}

// sliceQueue is the shared 2-D task queue plus the synchronization the
// two slice variants differ in. The batch paths construct it closed over
// the full picture list; the streaming path appends pictures as the scan
// discovers them and closes the queue at end of stream.
type sliceQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pics     []*picState
	pool     *frame.Pool
	issueIdx int // first picture whose slices are not fully handed out
	improved bool
	// depth bounds how far the pipeline may run ahead of the oldest
	// incomplete picture. Without it a single straggling slice lets the
	// improved variant buffer an unbounded number of decoded pictures —
	// flow control the paper's fixed-speed processors never needed.
	depth  int
	failed bool
	closed bool // no more pictures will be appended

	// workers and affinity configure row→worker task steering (see
	// Affinity). With affinity on, take prefers handing worker wi a task
	// whose row ≡ wi (mod workers), falling back to the head task so no
	// worker ever idles while work exists.
	workers  int
	affinity Affinity

	// obs, when non-nil, receives a queue-wait or barrier-wait event for
	// every blocked take (classified by what the worker was blocked on).
	obs *obs.Tracer
}

// append adds pictures to the tail of the queue (streaming path: the
// scan process feeding tasks as it discovers them).
func (q *sliceQueue) append(ps []*picState) {
	q.mu.Lock()
	q.pics = append(q.pics, ps...)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// snapshot returns the current picture list. Streaming workers resolve
// absolute reference indices through it: elements below len(pics) are
// fully initialized before append publishes them, and a reallocated
// backing array never invalidates a previously returned snapshot.
func (q *sliceQueue) snapshot() []*picState {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pics
}

// close marks the queue complete: workers drain what remains and exit.
func (q *sliceQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// open reports whether the picture at issueIdx may start issuing slices.
func (q *sliceQueue) open(i int) bool {
	p := q.pics[i]
	if q.depth > 0 && i >= q.depth && !q.pics[i-q.depth].complete {
		return false // pipeline-depth flow control
	}
	if q.improved {
		// Improved version: wait only for the last reference picture.
		return p.lastRef < 0 || q.pics[p.lastRef].complete
	}
	// Simple version: barrier after every picture.
	return i == 0 || q.pics[i-1].complete
}

// take blocks until a slice task is available (returning picture and
// slice index) or the queue is exhausted/failed (ok=false). The caller
// receives the time spent waiting; wi identifies the taking worker for
// the wait events take records (a block on a not-yet-open picture is a
// barrier wait, a block on an empty queue is starvation).
func (q *sliceQueue) take(wi int) (p *picState, slice int, wait time.Duration, ok bool) {
	t0 := time.Now()
	barrier := false
	record := func(w time.Duration) {
		if q.obs != nil {
			kind := obs.KindWait
			if barrier {
				kind = obs.KindBarrier
			}
			q.obs.Record(kind, wi, t0, w, -1, -1, -1)
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.failed {
			wait = time.Since(t0)
			record(wait)
			return nil, 0, wait, false
		}
		// Skip over fully-issued pictures.
		for q.issueIdx < len(q.pics) && q.pics[q.issueIdx].nextSlice >= q.pics[q.issueIdx].nTasks {
			q.issueIdx++
		}
		if q.issueIdx >= len(q.pics) {
			if q.closed {
				wait = time.Since(t0)
				record(wait)
				return nil, 0, wait, false
			}
			q.cond.Wait() // more pictures may still be appended
			continue
		}
		if q.open(q.issueIdx) {
			p = q.pics[q.issueIdx]
			if p.frame == nil {
				// Lazy allocation keeps live frames to the in-flight
				// pictures plus references — the memory property the
				// slice approach exists for. Retains: 1 for display plus
				// one per picture that will reference this one.
				p.frame = q.pool.Get()
				p.frame.Retain(1 + p.deps)
				p.frame.PictureType = "?IPB"[int(p.hdr.Type)]
				p.frame.TemporalRef = p.hdr.TemporalReference
			}
			slice = q.pickTask(p, wi)
			p.nextSlice++
			wait = time.Since(t0)
			record(wait)
			return p, slice, wait, true
		}
		// A task exists but its picture is gated on the barrier
		// discipline (or pipeline depth): synchronization, not starvation.
		barrier = true
		q.cond.Wait()
	}
}

// pickTask chooses which of p's unissued tasks worker wi receives (the
// caller holds q.mu and advances p.nextSlice). Without affinity this is
// the packed head task. With row affinity the remaining tasks are
// scanned for one whose row ≡ wi (mod workers); a match is swapped to
// the head position so every task is still handed out exactly once, and
// a miss degrades to the head task (work conservation). The scan is
// O(tasks-per-picture) per take — a few dozen rows — and runs only on
// multi-worker affinity queues.
func (q *sliceQueue) pickTask(p *picState, wi int) int {
	head := p.nextSlice
	taskAt := func(pos int) int {
		if p.order != nil {
			return p.order[pos]
		}
		return pos
	}
	if q.affinity == AffinityRow && q.workers > 1 {
		for pos := head; pos < p.nTasks; pos++ {
			r := taskRow(p, taskAt(pos))
			if r >= 0 && r%q.workers == wi {
				if pos != head {
					if p.order == nil {
						// Materialize the identity order so positions
						// can swap.
						p.order = make([]int, p.nTasks)
						for i := range p.order {
							p.order[i] = i
						}
					}
					p.order[head], p.order[pos] = p.order[pos], p.order[head]
				}
				break
			}
		}
	}
	return taskAt(head)
}

func (q *sliceQueue) fail() {
	q.mu.Lock()
	q.failed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// finish records one completed task of p (and which macroblocks it
// reconstructed) and reports whether it was the picture's last. The
// picture is NOT yet marked complete: the finishing worker still owns the
// frame for completion work (concealing missing macroblocks) and must
// call completePic afterwards — publishing completeness first would let
// dependent pictures read the frame while concealment writes it.
func (q *sliceQueue) finish(p *picState, addrs []int) bool {
	q.mu.Lock()
	if p.covered == nil {
		p.covered = make([]bool, p.params.MBWidth*p.params.MBHeight)
	}
	for _, a := range addrs {
		if a >= 0 && a < len(p.covered) && !p.covered[a] {
			p.covered[a] = true
			p.nCovered++
		}
	}
	p.remaining--
	done := p.remaining == 0
	q.mu.Unlock()
	return done
}

// completePic publishes p as complete, waking pictures that wait on it.
// Call only after finish returned true and all completion-time writes to
// the frame are done.
func (q *sliceQueue) completePic(p *picState) {
	q.mu.Lock()
	p.complete = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// missing returns the addresses of macroblocks never reconstructed (call
// only after the picture completed).
func (q *sliceQueue) missing(p *picState) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := p.params.MBWidth * p.params.MBHeight
	if p.nCovered == total {
		return nil
	}
	var out []int
	for a := 0; a < total; a++ {
		if p.covered == nil || !p.covered[a] {
			out = append(out, a)
		}
	}
	return out
}

// buildPicStates flattens the scanned stream into decode-order pictures
// with resolved reference indices, parsing each picture header (the scan
// process's job in the paper's design). Each picture's slice tasks are
// packed per opt.Packing (LPT by byte size unless overridden).
func buildPicStates(data []byte, m *StreamMap, opt Options) ([]*picState, error) {
	var pics []*picState
	var splitScratch []mpeg2.MB
	refOld, refNew := -1, -1
	lastRef := -1 // most recent reference picture across the whole stream:
	// the improved version synchronizes at the end of every I/P picture
	// even across GOP boundaries, exactly like the paper's scheme.
	for g := range m.GOPs {
		gop := &m.GOPs[g]
		if gop.Closed {
			refOld, refNew = -1, -1
		}
		for pi := range gop.Pictures {
			pr := &gop.Pictures[pi]
			r := bits.NewReader(data[:pr.End])
			r.SeekBit(int64(pr.Offset+4) * 8)
			hdr, err := mpeg2.ParsePictureHeader(r)
			if err != nil {
				return nil, fmt.Errorf("core: picture %d of GOP %d: %w", pi, g, err)
			}
			if len(pr.Slices) == 0 {
				return nil, fmt.Errorf("core: picture %d of GOP %d has no slices", pi, g)
			}
			ps := &picState{
				rng:        pr,
				data:       data,
				hdr:        hdr,
				displayIdx: gop.FirstDisplay + pr.TemporalRef,
				fwd:        -1,
				bwd:        -1,
				lastRef:    lastRef,
				isRef:      hdr.Type != vlc.CodingB,
				nTasks:     len(pr.Slices),
				remaining:  len(pr.Slices),
				subFrom:    -1,
			}
			ps.order = packOrder(sliceCosts(pr.Slices), opt.Packing, opt.PackSeed+int64(len(pics)))
			ps.params = decoder.PictureParams(&m.Seq, &ps.hdr)
			ps.bounds = sliceSpanBounds(pr.Slices, &ps.params)
			if splitEligible(opt) {
				// Legacy-path base tasks are individual slices, so every
				// slice is a split candidate.
				buildSplitTasks(ps, data, opt, opt.PackSeed+int64(len(pics)),
					len(pr.Slices), func(b int) int { return b }, &splitScratch)
			}
			switch hdr.Type {
			case vlc.CodingP:
				if refNew < 0 {
					return nil, fmt.Errorf("core: P picture without reference")
				}
				ps.fwd = refNew
			case vlc.CodingB:
				if refOld < 0 || refNew < 0 {
					return nil, fmt.Errorf("core: B picture without two references")
				}
				ps.fwd, ps.bwd = refOld, refNew
			}
			idx := len(pics)
			pics = append(pics, ps)
			for _, ri := range []int{ps.fwd, ps.bwd} {
				if ri >= 0 {
					pics[ri].deps++
				}
			}
			if ps.isRef {
				refOld, refNew = refNew, idx
				lastRef = idx
			}
		}
	}
	return pics, nil
}

// decodeSliceMode runs the fine-grained decoder (simple or improved).
func decodeSliceMode(data []byte, m *StreamMap, opt Options, st *Stats) error {
	pics, err := buildPicStates(data, m, opt)
	if err != nil {
		return err
	}
	pool := frame.NewPool(m.Seq.Width, m.Seq.Height)
	if opt.Conceal {
		// Same stale-pixel defense as the GOP mode: see decodeGOPMode.
		pool.SetScrub(true)
	}
	disp := newDisplay(pool, opt.Sink, opt.Obs)

	q := &sliceQueue{
		pics:     pics,
		improved: opt.Mode == ModeSliceImproved,
		pool:     pool,
		depth:    opt.Workers + 4,
		closed:   true, // batch: the full picture list is known up front
		obs:      opt.Obs,
		workers:  opt.Workers,
		affinity: opt.Affinity,
	}
	q.cond = sync.NewCond(&q.mu)

	var errs firstErr
	st.WorkerStats = make([]WorkerStats, opt.Workers)
	if opt.Profile {
		st.SliceProf = make([]PicProfile, len(pics))
		for i, p := range pics {
			st.SliceProf[i] = PicProfile{
				Ref:        p.isRef,
				Type:       "?IPB"[int(p.hdr.Type)],
				SliceCosts: make([]time.Duration, p.nTasks),
				DisplayIdx: p.displayIdx,
			}
		}
	}
	var workMu sync.Mutex

	release := func(f *frame.Frame) {
		if f.Release() {
			pool.Put(f)
		}
	}

	wallStart := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			obs.Do(opt.Mode.String(), wi, func() {
				ws := &st.WorkerStats[wi]
				var scr sliceScratch
				for {
					p, ti, wait, ok := q.take(wi)
					ws.Wait += wait
					if !ok {
						return
					}
					t0 := time.Now()
					reg := rtrace.StartRegion(context.Background(), "mpeg2par.sliceTask")
					var work decoder.WorkStats
					var addrs []int
					var err error
					var sst SplitStats
					kind := obs.KindTask
					if si, j, seg := p.taskAt(ti); j != nil {
						kind = obs.KindSegment
						work, addrs, err = runSegment(&m.Seq, &p.hdr, &p.params, p.data,
							picRefs(pics, p), p.frame, j, seg, wi, opt, opt.Tracer, &scr, &sst)
					} else {
						work, addrs, err = decodeOneSlice(m, pics, p, si, wi, opt, &scr)
					}
					reg.End()
					cost := time.Since(t0)
					ws.Busy += cost
					ws.Tasks++
					opt.Obs.Record(kind, wi, t0, cost, -1, p.displayIdx, ti)
					opt.Cost.Observe(taskBytes(p, ti), cost)
					if err != nil && !opt.Conceal {
						errs.set(err)
						q.fail()
						return
					}
					workMu.Lock()
					st.Work.Add(work)
					st.Split.Add(sst)
					if opt.Profile {
						st.SliceProf[pindex(pics, p)].SliceCosts[ti] = cost
					}
					workMu.Unlock()
					if q.finish(p, addrs) {
						// Picture complete: conceal anything the damaged
						// slices left unwritten (before publishing completeness,
						// so dependents never read a half-concealed reference),
						// release the frames it referenced, and ship it to the
						// display process.
						if miss := q.missing(p); len(miss) > 0 {
							if !opt.Conceal {
								errs.set(fmt.Errorf("core: picture at display %d covered %d of %d macroblocks",
									p.displayIdx, p.params.MBWidth*p.params.MBHeight-len(miss),
									p.params.MBWidth*p.params.MBHeight))
								q.fail()
								return
							}
							concealMBs(pics, p, miss)
							workMu.Lock()
							st.Concealed += len(miss)
							workMu.Unlock()
						}
						q.completePic(p)
						for _, ri := range []int{p.fwd, p.bwd} {
							if ri >= 0 {
								release(pics[ri].frame)
							}
						}
						disp.push(p.frame, p.displayIdx)
					}
				}
			})
		}(wi)
	}
	wg.Wait()
	displayed, dispErr := disp.finish()
	st.Wall = time.Since(wallStart)

	if err := errs.get(); err != nil {
		return err
	}
	if dispErr != nil {
		return dispErr
	}
	st.Pictures = len(pics)
	st.Displayed = displayed
	ps := pool.Stats()
	st.PeakFrameBytes = ps.PeakBytes
	st.FramesAllocated = ps.AllocBytes
	if displayed != len(pics) {
		return fmt.Errorf("core: displayed %d of %d pictures", displayed, len(pics))
	}
	return nil
}

// concealMBs fills the listed macroblock addresses of p's frame by
// temporal concealment.
func concealMBs(pics []*picState, p *picState, addrs []int) {
	var ref *frame.Frame
	if p.fwd >= 0 {
		ref = pics[p.fwd].frame
	} else if p.bwd >= 0 {
		ref = pics[p.bwd].frame
	}
	mbw := p.params.MBWidth
	for _, a := range addrs {
		decoder.ConcealMB(p.frame, ref, a%mbw, a/mbw)
	}
}

func pindex(pics []*picState, p *picState) int {
	// Pictures are few; displayIdx is unique but not decode-ordered, so
	// search by identity.
	for i := range pics {
		if pics[i] == p {
			return i
		}
	}
	return -1
}

// sliceScratch is one worker's reusable decode state: a bit reader, a
// macroblock buffer and a coverage address list, recycled across every
// slice the worker decodes so the steady-state loop is allocation-free.
type sliceScratch struct {
	r     bits.Reader
	mbs   []mpeg2.MB
	addrs []int
}

// decodeOneSlice parses and reconstructs a single slice — the unit of
// work of the fine-grained decoder. It returns the addresses of the
// macroblocks it reconstructed, for picture-coverage accounting. The
// returned slice aliases scr.addrs and is valid until the worker's next
// call.
func decodeOneSlice(m *StreamMap, pics []*picState, p *picState, si, wi int, opt Options, scr *sliceScratch) (decoder.WorkStats, []int, error) {
	return decodeSliceRange(p.data, &m.Seq, &p.hdr, &p.params, p.rng.Slices[si],
		p.sliceBound(si), picRefs(pics, p), p.frame, wi, opt.Tracer, scr)
}

// picRefs resolves a picture's prediction reference frames.
func picRefs(pics []*picState, p *picState) decoder.Refs {
	refs := decoder.Refs{}
	if p.fwd >= 0 {
		refs.Fwd = pics[p.fwd].frame
	}
	if p.bwd >= 0 {
		refs.Bwd = pics[p.bwd].frame
	}
	return refs
}

// decodeSliceRange parses and reconstructs the slice at sr into dst,
// reading only the bytes the scan attributed to it — a corrupted slice
// can therefore never run past its startcode-delimited range, which is
// what makes mid-slice resync deterministic. maxAddr is the inclusive
// macroblock address bound of the slice's span (sliceSpanBounds), so a
// corrupted slice can also never write pixels another concurrently
// decoding slice owns. The returned addresses alias scr.addrs and are
// valid until the next call with the same scr.
func decodeSliceRange(data []byte, seq *mpeg2.SequenceHeader, hdr *mpeg2.PictureHeader, params *mpeg2.PictureParams, sr SliceRange, maxAddr int, refs decoder.Refs, dst *frame.Frame, wi int, tr memtrace.Tracer, scr *sliceScratch) (decoder.WorkStats, []int, error) {
	scr.r.Reset(data[:sr.End])
	scr.r.SeekBit(int64(sr.Offset) * 8)
	code, err := scr.r.ReadStartCode()
	if err != nil {
		return decoder.WorkStats{}, nil, err
	}
	ds, err := mpeg2.DecodeSliceBounded(&scr.r, params, int(code)-1, maxAddr, scr.mbs)
	scr.mbs = ds.MBs // keep the grown buffer for the next slice
	if err != nil {
		return decoder.WorkStats{}, nil, fmt.Errorf("core: slice row %d: %w", int(code)-1, err)
	}
	work, err := decoder.ReconSlice(seq, hdr, refs, dst, &ds, wi, tr)
	if err != nil {
		return work, nil, err
	}
	scr.addrs = scr.addrs[:0]
	for i := range ds.MBs {
		scr.addrs = append(scr.addrs, ds.MBs[i].Addr)
	}
	return work, scr.addrs, nil
}
