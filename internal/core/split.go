package core

import (
	"fmt"
	"sync"
	"time"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/vldsplit"
)

// SplitStats accounts the intra-slice split decoder: how many tall
// slices were fanned out as row-segments, how the verify rule judged
// them, and how many fell back to a sequential re-decode. Disjoint from
// ErrorStats and ShedStats — a verify miss is a failed speculation, not
// stream damage, and costs only time.
type SplitStats struct {
	// SlicesSplit counts slices decoded as parallel segments (whether or
	// not the split verified).
	SlicesSplit int
	// SegmentsRun counts segment tasks executed (including the segments
	// of splits that later failed verification).
	SegmentsRun int
	// VerifyHits counts splits whose segment chain verified exactly —
	// the parallel result was adopted bit-for-bit.
	VerifyHits int
	// VerifyMisses counts splits rejected by the verify rule (wrong
	// speculation or a poisoned index).
	VerifyMisses int
	// Fallbacks counts sequential whole-slice re-decodes after a miss.
	Fallbacks int
}

// Add accumulates o into s.
func (s *SplitStats) Add(o SplitStats) {
	s.SlicesSplit += o.SlicesSplit
	s.SegmentsRun += o.SegmentsRun
	s.VerifyHits += o.VerifyHits
	s.VerifyMisses += o.VerifyMisses
	s.Fallbacks += o.Fallbacks
}

// Any reports whether any split activity was recorded.
func (s SplitStats) Any() bool {
	return s != SplitStats{}
}

// segTask is one entry of a picture's expanded task table. A picture
// whose slices all decode whole has a nil task table and the queue's
// task indices address slices (legacy path) or row groups (plan path)
// directly; once any slice splits, every task is routed through the
// table: base names the underlying slice/group, and join/seg identify a
// segment of a split slice (join == nil for unsplit tasks).
type segTask struct {
	base int
	join *splitJoin
	seg  int
}

// segRes is one segment's outcome, parked until the join.
type segRes struct {
	err     error
	exitBit int64
	exit    mpeg2.SplitState
	atEnd   bool
	addrs   []int
}

// splitJoin is the shared state of one split slice: the split points,
// each segment's result, and the join counter. The last segment to
// finish verifies the chain and either adopts the parallel result or
// re-decodes the slice sequentially (the fallback is authoritative for
// pixels and errors, so a wrong guess or poisoned index can never
// change output).
type splitJoin struct {
	si       int        // slice index within the picture (resync accounting)
	sr       SliceRange // the slice's scanned byte range
	maxAddr  int        // inclusive macroblock address bound of the slice span
	pts      []vldsplit.Point
	spec     bool    // points are unverified guesses, not an exact index
	segBytes []int64 // per-segment byte-size cost estimates

	mu   sync.Mutex
	res  []segRes // len(pts)+1 entries
	done int
}

// sliceSpanBounds returns, per slice, the inclusive macroblock address
// bound of its span: from its own row up to the last row before the
// next row any other slice of the picture claims (picture end for the
// highest row). MPEG-2's general slice structure lets one slice span
// many rows, so the per-slice decode bound cannot be the slice's own
// row; bounding each slice at the next claimed row keeps concurrently
// decoded slices writing disjoint pixels even on corrupt streams —
// the invariant every parallel slice schedule relies on.
func sliceSpanBounds(slices []SliceRange, params *mpeg2.PictureParams) []int {
	mbw, mbh := params.MBWidth, params.MBHeight
	bounds := make([]int, len(slices))
	picEnd := mbw*mbh - 1
	for i := range bounds {
		bound := picEnd
		row := slices[i].Row
		for j := range slices {
			if r := slices[j].Row; r > row && r*mbw-1 < bound {
				bound = r*mbw - 1
			}
		}
		bounds[i] = bound
	}
	return bounds
}

// sliceBound returns the decode bound of slice si, defaulting to the
// picture end for pictures planned without bounds (substitutes).
func (p *picState) sliceBound(si int) int {
	if si < len(p.bounds) {
		return p.bounds[si]
	}
	return p.params.MBWidth*p.params.MBHeight - 1
}

// taskAt resolves queue task index ti: the underlying slice/group index
// and, for a segment of a split slice, its join state.
func (p *picState) taskAt(ti int) (base int, j *splitJoin, seg int) {
	if p.tasks == nil {
		return ti, nil, 0
	}
	t := p.tasks[ti]
	return t.base, t.join, t.seg
}

// taskBytes returns the byte-size cost estimate of queue task ti — the
// scheduler's packing key and the cost model's per-task observation.
func taskBytes(p *picState, ti int) int64 {
	base, j, seg := p.taskAt(ti)
	if j != nil {
		return j.segBytes[seg]
	}
	if p.groups != nil {
		return groupCost(p.rng.Slices, p.groups[base])
	}
	return int64(p.rng.Slices[base].Bytes)
}

// splitEligible reports whether this decode should attempt intra-slice
// splits at all: a split source must be configured and the schedule must
// be one that issues slice-grain tasks.
func splitEligible(opt Options) bool {
	if opt.SplitIndex == nil && !opt.SpeculativeSplit {
		return false
	}
	return opt.Mode == ModeSliceSimple || opt.Mode == ModeSliceImproved
}

// splitParts resolves how many segments a split slice targets.
func splitParts(opt Options) int {
	if opt.SplitParts > 0 {
		return opt.SplitParts
	}
	if opt.Workers > 2 {
		return opt.Workers
	}
	return 2
}

// newSplitJoin decides whether the slice at sr splits and builds the
// join state: exact split points from the index when its content is
// known there, else (with speculation enabled) guessed resync points.
// Returns nil when the slice spans fewer than two rows or no usable
// points exist. scratch recycles the probe's macroblock buffer.
func newSplitJoin(data []byte, params *mpeg2.PictureParams, si int, sr SliceRange, bound int, opt Options, scratch *[]mpeg2.MB) *splitJoin {
	mbw := params.MBWidth
	if mbw <= 0 || sr.Row < 0 || bound < 0 {
		return nil
	}
	spanRows := bound/mbw - sr.Row + 1
	if spanRows < 2 {
		return nil
	}
	parts := splitParts(opt)
	if parts > spanRows {
		parts = spanRows
	}
	sliceBytes := data[sr.Offset:sr.End]
	var pts []vldsplit.Point
	spec := false
	if opt.SplitIndex != nil {
		pts = vldsplit.SelectPoints(opt.SplitIndex.Lookup(sliceBytes), parts)
	}
	if len(pts) == 0 && opt.SpeculativeSplit {
		pts, *scratch = vldsplit.GuessPoints(sliceBytes, params, sr.Row, bound, parts, *scratch)
		spec = true
	}
	if len(pts) == 0 {
		return nil
	}
	j := &splitJoin{
		si: si, sr: sr, maxAddr: bound, pts: pts, spec: spec,
		res: make([]segRes, len(pts)+1),
	}
	j.segBytes = make([]int64, len(pts)+1)
	totalBits := int64(sr.Bytes) * 8
	prev := int64(0)
	for k := range j.segBytes {
		end := totalBits
		if k < len(pts) {
			end = pts[k].BitOff
		}
		b := (end - prev) / 8
		if b < 1 {
			b = 1
		}
		j.segBytes[k] = b
		prev = end
	}
	return j
}

// buildSplitTasks expands a picture's base tasks (slices on the legacy
// path, row groups on the plan path) into a segment task table, splitting
// every eligible tall slice. nBase is the base task count; baseSlice
// maps a base task to its single slice index, or -1 when the task is
// not a splittable single slice. Returns false (leaving the picture's
// task fields untouched) when nothing split.
func buildSplitTasks(p *picState, data []byte, opt Options, seed int64, nBase int, baseSlice func(int) int, scratch *[]mpeg2.MB) bool {
	var tasks []segTask
	var costs []int64
	split := false
	for b := 0; b < nBase; b++ {
		si := baseSlice(b)
		if si >= 0 {
			if j := newSplitJoin(data, &p.params, si, p.rng.Slices[si], p.sliceBound(si), opt, scratch); j != nil {
				for seg := range j.res {
					tasks = append(tasks, segTask{base: b, join: j, seg: seg})
					costs = append(costs, j.segBytes[seg])
				}
				split = true
				continue
			}
		}
		tasks = append(tasks, segTask{base: b})
		costs = append(costs, taskBytes(p, b))
	}
	if !split {
		return false
	}
	p.tasks = tasks
	p.nTasks = len(tasks)
	p.remaining = len(tasks)
	p.order = packOrder(costs, opt.Packing, seed)
	return true
}

// runSegment executes one segment of a split slice and, when it is the
// last of its join to finish, verifies the segment chain: every segment
// must have stopped exactly at the next split point with exactly the
// recorded predictive state, and the last must have consumed the slice
// to its end. On a hit the concatenated per-segment coverage is adopted
// (the decode is bit-exact with a sequential decode by construction: the
// verified states make each segment parse the same bits under the same
// predictors). On a miss the slice is re-decoded sequentially — that
// result is authoritative for pixels and errors, so segment attempts
// never leak into output. Returned addrs alias scr.addrs (join calls
// only); the returned error is only ever the fallback's.
func runSegment(seq *mpeg2.SequenceHeader, hdr *mpeg2.PictureHeader, params *mpeg2.PictureParams, data []byte, refs decoder.Refs, dst *frame.Frame, j *splitJoin, seg, wi int, opt Options, tr memtrace.Tracer, scr *sliceScratch, sst *SplitStats) (decoder.WorkStats, []int, error) {
	sst.SegmentsRun++
	sr := j.sr
	nSeg := len(j.res)
	startBit := int64(sr.Offset) * 8

	segMax := j.maxAddr
	var endBit int64
	if seg < nSeg-1 {
		if m := j.pts[seg].State.PrevAddr; m < segMax {
			segMax = m
		}
		endBit = startBit + j.pts[seg].BitOff
	}

	var ds mpeg2.DecodedSlice
	var end mpeg2.SegmentEnd
	var err error
	scr.r.Reset(data[:sr.End])
	if seg == 0 {
		scr.r.SeekBit(startBit)
		var code byte
		if code, err = scr.r.ReadStartCode(); err == nil {
			ds, end, err = mpeg2.DecodeSliceHead(&scr.r, params, int(code)-1, segMax, endBit, nil, scr.mbs)
			scr.mbs = ds.MBs
		}
	} else {
		entry := j.pts[seg-1]
		scr.r.SeekBit(startBit + entry.BitOff)
		ds, end, err = mpeg2.DecodeSliceSegment(&scr.r, params, entry.State, segMax, endBit, scr.mbs)
		scr.mbs = ds.MBs
	}
	var work decoder.WorkStats
	if err == nil {
		work, err = decoder.ReconSlice(seq, hdr, refs, dst, &ds, wi, tr)
	}

	res := segRes{err: err, exitBit: end.BitOff, exit: end.State, atEnd: end.AtEnd}
	if err == nil {
		res.addrs = make([]int, len(ds.MBs))
		for i := range ds.MBs {
			res.addrs[i] = ds.MBs[i].Addr
		}
	}
	j.mu.Lock()
	j.res[seg] = res
	j.done++
	last := j.done == nSeg
	j.mu.Unlock()
	if !last {
		return work, nil, nil
	}

	// Join. The verify rule: segment k must stop exactly at split point
	// k's bit offset (not at a premature end of slice) with predictive
	// state exactly equal to the recorded entry state of segment k+1;
	// the final segment must reach the slice's real end.
	sst.SlicesSplit++
	ok := true
	for k := 0; k < nSeg && ok; k++ {
		r := &j.res[k]
		switch {
		case r.err != nil:
			ok = false
		case k < nSeg-1:
			ok = !r.atEnd && r.exitBit == startBit+j.pts[k].BitOff && r.exit == j.pts[k].State
		default:
			ok = r.atEnd
		}
	}
	t0 := time.Now()
	if ok {
		sst.VerifyHits++
		opt.Obs.Record(obs.KindVerify, wi, t0, 0, -1, -1, 1)
		scr.addrs = scr.addrs[:0]
		for k := range j.res {
			scr.addrs = append(scr.addrs, j.res[k].addrs...)
		}
		return work, scr.addrs, nil
	}
	sst.VerifyMisses++
	sst.Fallbacks++
	opt.Obs.Record(obs.KindVerify, wi, t0, 0, -1, -1, 0)
	w2, addrs, err := decodeSliceRange(data, seq, hdr, params, sr, j.maxAddr, refs, dst, wi, tr, scr)
	work.Add(w2)
	return work, addrs, err
}

// BuildIndexScanned walks a scanned stream and records exact split
// points for every slice spanning two or more macroblock rows — the
// encode-time (or indexing-pass) side of the intra-slice split channel.
// Slices that fail to parse are skipped: an index is an accelerator, not
// a validator.
func BuildIndexScanned(data []byte, m *StreamMap) (*vldsplit.Index, error) {
	ix := vldsplit.NewIndex()
	var scratch []mpeg2.MB
	for g := range m.GOPs {
		gop := &m.GOPs[g]
		for pi := range gop.Pictures {
			pr := &gop.Pictures[pi]
			if pr.Damaged || len(pr.Slices) == 0 {
				continue
			}
			r := bits.NewReader(data[:pr.End])
			r.SeekBit(int64(pr.Offset+4) * 8)
			hdr, err := mpeg2.ParsePictureHeader(r)
			if err != nil {
				continue
			}
			params := decoder.PictureParams(&m.Seq, &hdr)
			if params.MBWidth <= 0 || params.MBHeight <= 0 {
				continue
			}
			bounds := sliceSpanBounds(pr.Slices, &params)
			for si := range pr.Slices {
				sr := pr.Slices[si]
				if sr.Row < 0 || bounds[si]/params.MBWidth-sr.Row+1 < 2 {
					continue
				}
				pts, scr, err := vldsplit.BuildSlice(data[sr.Offset:sr.End], &params, sr.Row, bounds[si], scratch)
				scratch = scr
				if err != nil || len(pts) == 0 {
					continue
				}
				if err := ix.Add(data[sr.Offset:sr.End], pts); err != nil {
					return nil, fmt.Errorf("core: indexing GOP %d picture %d slice %d: %w", g, pi, si, err)
				}
			}
		}
	}
	return ix, nil
}
