package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/vldsplit"
)

// tallStream encodes a stream whose every picture is one slice spanning
// all macroblock rows — the geometry with zero slice-level parallelism
// that intra-slice splitting exists for.
func tallStream(t testing.TB, w, h, pics, gop int) *encoder.Result {
	t.Helper()
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: w, Height: h, Pictures: pics, GOPSize: gop,
		RepeatSequenceHeader: true,
		RowsPerSlice:         (h + 15) / 16,
	}, frame.NewSynth(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func buildIndex(t testing.TB, data []byte) *vldsplit.Index {
	t.Helper()
	m, err := Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexScanned(data, m)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Slices() == 0 {
		t.Fatal("index covered no slices on a tall-slice stream")
	}
	return ix
}

// TestSplitIndexedBitExact is the tentpole contract: with an exact split
// index, every slice mode, worker count and policy reproduces the
// sequential oracle's frames bit for bit — and on a clean stream every
// segment chain verifies, so no slice ever falls back.
func TestSplitIndexedBitExact(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	ix := buildIndex(t, res.Data)

	for _, mode := range []Mode{ModeSliceSimple, ModeSliceImproved} {
		for _, workers := range []int{1, 3} {
			for _, policy := range []Resilience{FailFast, ConcealSlice} {
				var sink collectSink
				st, err := Decode(res.Data, Options{
					Mode: mode, Workers: workers, Resilience: policy,
					SplitIndex: ix, SplitParts: 3, Sink: sink.add,
				})
				if err != nil {
					t.Fatalf("%v/%d %v: %v", mode, workers, policy, err)
				}
				if st.Split.SlicesSplit == 0 {
					t.Fatalf("%v/%d %v: no slices split on tall-slice stream", mode, workers, policy)
				}
				if st.Split.VerifyMisses != 0 || st.Split.Fallbacks != 0 {
					t.Fatalf("%v/%d %v: exact index missed verification: %+v", mode, workers, policy, st.Split)
				}
				if len(sink.frames) != len(want) {
					t.Fatalf("%v/%d %v: %d frames, want %d", mode, workers, policy, len(sink.frames), len(want))
				}
				for i := range want {
					if !sink.frames[i].Equal(want[i]) {
						t.Fatalf("%v/%d %v: frame %d differs from sequential", mode, workers, policy, i)
					}
				}
			}
		}
	}
}

// TestSpeculativeSplitNoDivergence is the speculation contract: with no
// index the decoder may guess resync points, but whatever it guesses —
// verified or not — the output is the sequential oracle's, and FailFast
// still succeeds on a clean stream.
func TestSpeculativeSplitNoDivergence(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	for _, mode := range []Mode{ModeSliceSimple, ModeSliceImproved} {
		for _, policy := range []Resilience{FailFast, ConcealSlice} {
			var sink collectSink
			st, err := Decode(res.Data, Options{
				Mode: mode, Workers: 3, Resilience: policy,
				SpeculativeSplit: true, SplitParts: 3, Sink: sink.add,
			})
			if err != nil {
				t.Fatalf("%v %v: %v", mode, policy, err)
			}
			if policy == FailFast && st.Errors.Any() {
				t.Fatalf("%v: clean stream reported damage under speculation: %+v", mode, st.Errors)
			}
			if len(sink.frames) != len(want) {
				t.Fatalf("%v %v: %d frames, want %d", mode, policy, len(sink.frames), len(want))
			}
			for i := range want {
				if !sink.frames[i].Equal(want[i]) {
					t.Fatalf("%v %v: frame %d differs from sequential", mode, policy, i)
				}
			}
		}
	}
}

// TestPoisonedIndexFallsBack: an index whose points are structurally
// valid but wrong (offsets shifted) must never change the output — every
// poisoned slice fails verification and is re-decoded sequentially, even
// under FailFast.
func TestPoisonedIndexFallsBack(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	want := sequentialFrames(t, res.Data)
	ix := buildIndex(t, res.Data)

	poisoned := vldsplit.NewIndex()
	m, err := Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range m.GOPs {
		for pi := range m.GOPs[gi].Pictures {
			for _, sr := range m.GOPs[gi].Pictures[pi].Slices {
				sd := res.Data[sr.Offset:sr.End]
				pts := ix.Lookup(sd)
				if pts == nil {
					continue
				}
				bad := append([]vldsplit.Point(nil), pts...)
				for i := range bad {
					bad[i].BitOff += 7 // valid range, wrong position
				}
				if err := poisoned.Add(sd, bad); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if poisoned.Slices() == 0 {
		t.Fatal("built no poisoned entries")
	}

	var sink collectSink
	st, err := Decode(res.Data, Options{
		Mode: ModeSliceImproved, Workers: 3,
		SplitIndex: poisoned, SplitParts: 3, Sink: sink.add,
	})
	if err != nil {
		t.Fatalf("poisoned index broke a FailFast decode: %v", err)
	}
	if st.Split.Fallbacks == 0 {
		t.Fatalf("poisoned index produced no fallbacks: %+v", st.Split)
	}
	if st.Split.VerifyHits != 0 {
		t.Fatalf("poisoned points verified: %+v", st.Split)
	}
	for i := range want {
		if !sink.frames[i].Equal(want[i]) {
			t.Fatalf("frame %d differs under poisoned index", i)
		}
	}
}

// TestSplitFaultedGolden extends the determinism contract to split
// decoding on damaged tall-slice streams: for a fixed fault, indexed and
// speculative split decodes must agree bit-exactly — frames and
// ErrorStats — with the sequential non-split reference under every
// policy. (Damage changes slice bytes, so the content-keyed index simply
// stops matching damaged slices; intact ones still split.)
func TestSplitFaultedGolden(t *testing.T) {
	res := tallStream(t, 96, 64, 8, 4)
	ix := buildIndex(t, res.Data)
	specs := []string{"bitflip:4", "burst:count=2,len=24", "truncate:0.8"}
	anyDamage := false
	for _, spec := range specs {
		sp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			mut, _ := sp.Apply(res.Data, seed)
			for _, policy := range []Resilience{ConcealSlice, ConcealPicture, DropGOP} {
				want, wantSt, refErr := decodeResilientRun(t, mut, ModeSequential, 1, policy)
				if wantSt != nil && wantSt.Errors.Any() {
					anyDamage = true
				}
				for _, opts := range []Options{
					{SplitIndex: ix, SplitParts: 3},
					{SpeculativeSplit: true, SplitParts: 3},
				} {
					opts.Mode = ModeSliceImproved
					opts.Workers = 3
					opts.Resilience = policy
					var sink collectSink
					opts.Sink = sink.add
					st, err := Decode(mut, opts)
					if (err != nil) != (refErr != nil) {
						t.Fatalf("%s seed %d %v: split err=%v, sequential err=%v", spec, seed, policy, err, refErr)
					}
					if refErr != nil {
						continue
					}
					if st.Errors != wantSt.Errors {
						t.Fatalf("%s seed %d %v: split stats %+v, sequential %+v", spec, seed, policy, st.Errors, wantSt.Errors)
					}
					if len(sink.frames) != len(want) {
						t.Fatalf("%s seed %d %v: %d frames, want %d", spec, seed, policy, len(sink.frames), len(want))
					}
					for i := range want {
						if !sink.frames[i].Equal(want[i]) {
							t.Fatalf("%s seed %d %v: frame %d differs", spec, seed, policy, i)
						}
					}
				}
			}
		}
	}
	if !anyDamage {
		t.Fatal("no corruption produced recoverable damage; the golden test exercised nothing")
	}
}

// FuzzSpeculativeSplit is the differential fuzzer of the speculation
// contract: for arbitrary bytes, a speculative-split parallel decode
// must agree with the sequential non-split decode — same error fate,
// same ErrorStats, same frames — under every policy. Any divergence is
// a verify-rule hole.
func FuzzSpeculativeSplit(f *testing.F) {
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 48, Height: 32, Pictures: 4, GOPSize: 2,
		RepeatSequenceHeader: true, RowsPerSlice: 2,
	}, frame.NewSynth(48, 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Data)
	f.Add(append([]byte(nil), res.Data[:len(res.Data)*3/4]...))
	mut := append([]byte(nil), res.Data...)
	for i := 150; i < len(mut); i += 97 {
		mut[i] ^= 0x40
	}
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32<<10 {
			return
		}
		for _, policy := range []Resilience{FailFast, ConcealSlice, DropGOP} {
			// The non-split baseline: sequential for the resilient
			// policies (their cross-mode equality is already pinned by
			// FuzzResilientDecode); the same mode for FailFast, which
			// isolates exactly what speculation changed.
			base := Options{Mode: ModeSequential, Workers: 1, Resilience: policy}
			if policy == FailFast {
				base = Options{Mode: ModeSliceImproved, Workers: 2}
			}
			var seqSink collectSink
			base.Sink = seqSink.add
			seqSt, seqErr := Decode(data, base)
			var spSink collectSink
			spSt, spErr := Decode(data, Options{
				Mode: ModeSliceImproved, Workers: 2, Resilience: policy,
				SpeculativeSplit: true, SplitParts: 2, Sink: spSink.add,
			})
			if (seqErr != nil) != (spErr != nil) {
				t.Fatalf("%v: sequential err=%v, speculative err=%v", policy, seqErr, spErr)
			}
			if seqErr != nil {
				continue
			}
			if seqSt.Errors != spSt.Errors {
				t.Fatalf("%v: stats diverge: %+v vs %+v", policy, seqSt.Errors, spSt.Errors)
			}
			if len(seqSink.frames) != len(spSink.frames) {
				t.Fatalf("%v: %d vs %d frames", policy, len(seqSink.frames), len(spSink.frames))
			}
			for i := range seqSink.frames {
				if !seqSink.frames[i].Equal(spSink.frames[i]) {
					t.Fatalf("%v: frame %d diverges under speculation", policy, i)
				}
			}
		}
	})
}

// TestErrBadOption pins the unified option-validation surface: every
// rejected configuration wraps ErrBadOption and names the option.
func TestErrBadOption(t *testing.T) {
	res := testStream(t, 80, 48, 4, 4)
	cases := []struct {
		name string
		opt  Options
		want string // substring naming the offending option
	}{
		{"zero workers", Options{Mode: ModeSliceImproved}, "Workers"},
		{"negative workers", Options{Mode: ModeSliceImproved, Workers: -2}, "Workers"},
		{"unknown mode", Options{Mode: Mode(99), Workers: 1}, "Mode"},
		{"negative parts", Options{Mode: ModeSliceImproved, Workers: 1, SplitParts: -1}, "SplitParts"},
	}
	for _, tc := range cases {
		_, err := Decode(res.Data, tc.opt)
		if !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: Decode err %v, want ErrBadOption", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: message %q does not name %s", tc.name, err, tc.want)
		}
		if _, err := NewStreamExecutor(context.Background(), tc.opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: NewStreamExecutor err %v, want ErrBadOption", tc.name, err)
		}
	}
	if _, err := NewStreamExecutor(context.Background(), Options{Mode: ModeSliceImproved, Workers: 1, Profile: true}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("streaming Profile err %v, want ErrBadOption", err)
	}
	if _, err := Decode(res.Data, Options{Mode: ModeSliceImproved, Workers: 1}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}
