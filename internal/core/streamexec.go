package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rtrace "runtime/trace"

	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/sched"
	"mpeg2par/internal/vlc"
)

// Unit is one group of pictures handed from the streaming scanner to the
// executor: an owned copy of the group's bytes (so the scan window can
// slide on) with the scanned range rebased to that copy.
type Unit struct {
	G    int    // group index, in stream order
	Base int    // absolute stream offset of Data[0]
	Data []byte // the group's bytes, owned by the unit
	// Range is the group's scanned structure with every offset rebased
	// into Data (Range.Offset is 0 when the group starts the buffer).
	Range GOPRange
	// Seq is the sequence header in force when the group closed. The
	// scan rejects (strict) or ignores (lenient) mid-stream geometry
	// changes, so every unit of a stream carries the same header.
	Seq mpeg2.SequenceHeader
}

// ShedSavings returns the compressed bytes a shed level would avoid
// decoding from this unit: the B pictures' bytes for ShedB, B plus P
// bytes for ShedRef (substitution itself costs ~nothing). The service's
// slack predictor converts it through the cost model into the time a
// per-frame shed would buy back for an already-doomed unit.
func (u *Unit) ShedSavings(l ShedLevel) int64 {
	if l == ShedNone {
		return 0
	}
	var b int64
	for i := range u.Range.Pictures {
		p := &u.Range.Pictures[i]
		if p.Type == vlc.CodingB || (l >= ShedRef && p.Type == vlc.CodingP) {
			b += int64(p.End - p.Offset)
		}
	}
	return b
}

// unitState tracks one in-flight unit: its buffered bytes stay charged
// against the pipeline gauge, and its scan-ahead window slot stays
// occupied, until the last picture decoded from it completes.
type unitState struct {
	exec      *StreamExecutor
	bytes     int64
	remaining int32 // pictures (or whole-group tasks) not yet completed
}

// retire records one completed picture; the last one releases the
// unit's bytes and its window slot, unblocking the scan process.
func (u *unitState) retire() {
	if atomic.AddInt32(&u.remaining, -1) != 0 {
		return
	}
	e := u.exec
	e.mu.Lock()
	e.unitBytes -= u.bytes
	e.mu.Unlock()
	<-e.sem
}

// gopTask is one coarse-grained streaming task: decode every picture of
// a planned group. pics is a plan-prefix snapshot long enough to cover
// the group's pictures and everything they reference.
type gopTask struct {
	pics  []*picState
	first int // plan index of the group's first picture
	n     int
	g     int
	off   int // absolute stream offset, for error messages
	unit  *unitState
}

// StreamExecutor runs the decode side of the streaming pipeline: the
// scanner Feeds it groups of pictures as they are discovered, workers
// decode them under the batch executors' exact plan semantics, and the
// display process delivers frames in display order as soon as they are
// ready — all long before the stream has been fully read.
//
// Feed and Finish must be called from a single goroutine (the scan
// process); the workers it starts are internal. Every mode and policy
// produces output bit-identical to the batch path because both sides
// execute plans grown by the same planBuilder over the same scan.
type StreamExecutor struct {
	ctx context.Context
	opt Options
	st  *Stats

	workers int
	// sem is the scan-ahead window: one slot per in-flight unit. Feed
	// blocks acquiring a slot — the backpressure that bounds buffered
	// bitstream bytes by the window, never by stream length.
	sem chan struct{}

	seq       mpeg2.SequenceHeader
	pb        *planBuilder
	pool      *frame.Pool
	disp      *displayProc
	started   bool
	wallStart time.Time

	gopTasks chan gopTask // ModeGOP / ModeSequential intake
	q        *sliceQueue  // slice-mode intake

	// Online auto-tuning (ModeAuto only). The tuner collects busy/wait
	// from the workers; Feed re-evaluates it at every GOP boundary and
	// the gate parks workers above the resulting limit.
	tuner *sched.Tuner
	gate  *workerGate

	mu        sync.Mutex
	winBytes  int64 // scanner window bytes (AdjustBuffered)
	unitBytes int64 // live unit bytes
	peakBytes int64
	leadPeak  int

	errs     firstErr
	fail     chan struct{} // closed when the first error latches
	failOnce sync.Once
	workMu   sync.Mutex
	wg       sync.WaitGroup
}

// setErr latches the first error and wakes a Feed blocked on the
// window semaphore — without it, a worker failing with units still in
// flight would leave the scan process waiting on slots that will never
// free.
func (e *StreamExecutor) setErr(err error) {
	if err == nil {
		return
	}
	e.errs.set(err)
	e.failOnce.Do(func() { close(e.fail) })
}

// NewStreamExecutor prepares a streaming executor. Workers start lazily
// at the first Feed (the frame geometry arrives with the first unit).
// ModeSequential runs on one worker regardless of Options.Workers,
// preserving the batch sequential baseline's decode order.
func NewStreamExecutor(ctx context.Context, opt Options) (*StreamExecutor, error) {
	if opt.Workers < 1 {
		return nil, badOption("Workers=%d (need at least one worker)", opt.Workers)
	}
	if opt.SplitParts < 0 {
		return nil, badOption("SplitParts=%d (must be >= 0)", opt.SplitParts)
	}
	w := opt.Workers
	if opt.Mode == ModeSequential {
		w = 1
	}
	switch opt.Mode {
	case ModeGOP, ModeSliceSimple, ModeSliceImproved, ModeSequential:
	case ModeAuto:
		// Resolved at the first Feed, when the first group's geometry is
		// known; Options.Workers is the ceiling the policy chooses under.
	default:
		return nil, badOption("Mode=%d (unknown mode)", int(opt.Mode))
	}
	if opt.Profile {
		return nil, badOption("Profile requires the batch decoder")
	}
	return &StreamExecutor{
		ctx:     ctx,
		opt:     opt,
		workers: w,
		sem:     make(chan struct{}, opt.EffectiveMaxInFlight()),
		fail:    make(chan struct{}),
		st:      &Stats{Mode: opt.Mode, Workers: w, Kernels: kernels.Describe()},
	}, nil
}

// start spins up the executor once the first unit has arrived. For
// ModeAuto the first group's geometry, projected across the scan-ahead
// window, resolves the mode and worker count here; the mode is fixed
// for the rest of the stream (only the worker limit adapts online).
func (e *StreamExecutor) start(u *Unit) {
	e.started = true
	e.wallStart = time.Now()
	if e.opt.Mode == ModeAuto {
		e.resolveAuto(u)
	}
	e.pb = newPlanBuilder(&e.seq, e.opt.Resilience, e.opt.Packing, e.opt.PackSeed)
	e.pb.setSplit(e.opt)
	e.pool = frame.NewPool(e.seq.Width, e.seq.Height)
	if e.opt.Resilience != FailFast {
		e.pool.SetScrub(true)
	}
	e.disp = newDisplay(e.pool, e.opt.Sink, e.opt.Obs)
	e.st.WorkerStats = make([]WorkerStats, e.workers)
	e.opt.Obs.SetMeta(e.opt.Mode.String(), e.workers)
	switch e.opt.Mode {
	case ModeSliceSimple, ModeSliceImproved:
		e.q = &sliceQueue{
			improved: e.opt.Mode == ModeSliceImproved,
			pool:     e.pool,
			depth:    e.opt.Workers + 4,
			obs:      e.opt.Obs,
			workers:  e.opt.Workers,
			affinity: e.opt.Affinity,
		}
		e.q.cond = sync.NewCond(&e.q.mu)
		for wi := 0; wi < e.workers; wi++ {
			e.wg.Add(1)
			go e.sliceWorker(wi)
		}
	default:
		// Each queued task holds a window slot, so the channel never
		// blocks a send at this capacity.
		e.gopTasks = make(chan gopTask, cap(e.sem))
		for wi := 0; wi < e.workers; wi++ {
			e.wg.Add(1)
			go e.gopWorker(wi)
		}
	}
}

// resolveAuto picks the mode and worker count for an auto-tuned
// pipeline from the first group's geometry, projected across the
// scan-ahead window (a single group in isolation would always look
// like a slice-grain workload). The chosen worker count becomes the
// online tuner's ceiling; the gate parks workers it tunes away.
func (e *StreamExecutor) resolveAuto(u *Unit) {
	g := projectGeometry(autoGeometry([]GOPRange{u.Range}), e.opt.EffectiveMaxInFlight())
	c := sched.Choose(g, e.opt.Workers, e.opt.Cost)
	e.opt.Mode = modeOfHint(c.Mode)
	e.opt.Workers = c.Workers
	e.workers = c.Workers
	if e.opt.Mode == ModeSequential {
		e.workers = 1
	}
	e.st.Mode = e.opt.Mode
	e.st.Workers = e.workers
	e.st.Auto = &AutoDecision{
		Mode:             e.opt.Mode,
		Workers:          e.workers,
		Reason:           c.Reason + " (projected from first group)",
		FinalWorkerLimit: e.workers,
	}
	if e.workers > 1 {
		e.tuner = sched.NewTuner(e.workers, e.workers)
		e.gate = newWorkerGate(e.workers)
	}
}

// Feed hands one scanned group of pictures to the workers. It blocks
// while the scan-ahead window is full (backpressure against the scan
// process) and returns early with the context's error on cancellation,
// or with the first worker error once one is latched.
func (e *StreamExecutor) Feed(u Unit) error {
	if err := e.errs.get(); err != nil {
		return err
	}
	feedStart := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-e.ctx.Done():
		return e.ctx.Err()
	case <-e.fail:
		return e.errs.get()
	}
	e.opt.Obs.Record(obs.KindFeed, obs.LaneScan, feedStart, time.Since(feedStart), u.G, -1, -1)
	if !e.started {
		e.seq = u.Seq
		e.start(&u)
	}
	us := &unitState{exec: e, bytes: int64(len(u.Data))}
	e.mu.Lock()
	e.unitBytes += us.bytes
	if t := e.unitBytes + e.winBytes; t > e.peakBytes {
		e.peakBytes = t
	}
	e.mu.Unlock()

	first := len(e.pb.pl.pics)
	ps, err := e.pb.addGOP(u.Data, u.G, &u.Range)
	if err != nil {
		e.setErr(err)
		return err
	}
	if e.tuner != nil {
		// GOP boundary: close the utilization window and move the
		// active-worker limit at most one step. Feed is the single scan
		// goroutine, as Reevaluate requires.
		if lim, changed := e.tuner.Reevaluate(); changed {
			e.gate.setLimit(lim)
			e.st.Auto.FinalWorkerLimit = lim
		}
		e.st.Auto.Reevals++
	}
	if len(ps) == 0 {
		// Empty or policy-dropped group: nothing will decode from the
		// unit, release it immediately.
		us.remaining = 1
		us.retire()
		return nil
	}
	switch e.opt.Mode {
	case ModeSliceSimple, ModeSliceImproved:
		us.remaining = int32(len(ps))
		for _, p := range ps {
			p.unit = us
		}
		e.q.append(ps)
	default:
		us.remaining = 1
		end := first + len(ps)
		e.gopTasks <- gopTask{
			pics:  e.pb.pl.pics[:end:end],
			first: first,
			n:     len(ps),
			g:     u.G,
			off:   u.Base + u.Range.Offset,
			unit:  us,
		}
	}
	return nil
}

// AdjustBuffered charges (or releases) scanner window bytes against the
// pipeline's in-flight gauge.
func (e *StreamExecutor) AdjustBuffered(delta int64) {
	e.mu.Lock()
	e.winBytes += delta
	if t := e.unitBytes + e.winBytes; t > e.peakBytes {
		e.peakBytes = t
	}
	e.mu.Unlock()
}

// NoteScanned samples the scan-lead gauge: how far the scan process has
// run ahead of the display process, in pictures.
func (e *StreamExecutor) NoteScanned(pictures int) {
	displayed := 0
	if e.disp != nil {
		displayed = e.disp.count()
	}
	lead := pictures - displayed
	e.mu.Lock()
	if lead > e.leadPeak {
		e.leadPeak = lead
	}
	e.mu.Unlock()
}

func (e *StreamExecutor) fillGauges() {
	e.mu.Lock()
	e.st.PeakInFlightBytes = e.peakBytes
	e.st.ScanLeadPeak = e.leadPeak
	e.mu.Unlock()
}

// Finish closes the intake, joins the workers, and completes the run.
// scanErr is the scan side's verdict (nil on a clean end of stream, the
// context's error on cancellation); any error — from either side —
// switches Finish into teardown: the reorder buffer is abandoned and
// every planned frame is forcibly reclaimed, so a cancelled pipeline
// holds no picture memory. Stats are returned in both cases;
// LeakedFrameBytes reports pool bytes still unaccounted afterwards
// (always zero — the cancellation tests assert it).
func (e *StreamExecutor) Finish(scanErr error) (*Stats, error) {
	// Latch the scan side's verdict so workers drain queued tasks
	// instead of decoding them after a cancellation.
	e.setErr(scanErr)
	if e.started {
		if e.q != nil {
			if scanErr != nil {
				e.q.fail()
			}
			e.q.close()
		} else {
			close(e.gopTasks)
		}
		e.gate.close() // wake parked workers so they can drain and exit
		e.wg.Wait()
	}
	if e.tuner != nil {
		e.st.Auto.FinalWorkerLimit = e.tuner.Limit()
	}
	st := e.st
	err := e.errs.get()
	if err == nil {
		err = scanErr
	}
	if e.started {
		st.Wall = time.Since(e.wallStart)
		st.Errors.Add(e.pb.pl.pre)
		st.Pictures = len(e.pb.pl.pics)
	}
	defer e.fillGauges()
	if err != nil {
		if e.started {
			e.disp.abandon()
			for _, p := range e.pb.pl.pics {
				if p.frame != nil {
					e.pool.Reclaim(p.frame)
				}
			}
			ps := e.pool.Stats()
			st.PeakFrameBytes = ps.PeakBytes
			st.FramesAllocated = ps.AllocBytes
			st.LeakedFrameBytes = ps.InUseBytes
		}
		return st, err
	}
	if !e.started {
		return st, nil
	}
	displayed, dispErr := e.disp.finish()
	st.Displayed = displayed
	ps := e.pool.Stats()
	st.PeakFrameBytes = ps.PeakBytes
	st.FramesAllocated = ps.AllocBytes
	st.LeakedFrameBytes = ps.InUseBytes
	if dispErr != nil {
		return st, dispErr
	}
	if displayed != st.Pictures {
		return st, fmt.Errorf("core: displayed %d of %d pictures", displayed, st.Pictures)
	}
	return st, nil
}

// gopWorker is the streaming coarse-grained worker: one task decodes a
// whole group of pictures, exactly as in decodeResilientGOP (and, with
// one worker, in the same order as decodeResilientSeq).
func (e *StreamExecutor) gopWorker(wi int) {
	defer e.wg.Done()
	obs.Do(e.opt.Mode.String(), wi, func() {
		ws := &e.st.WorkerStats[wi]
		var scr sliceScratch
		for {
			e.gate.enter(wi)
			t0 := time.Now()
			t, ok := <-e.gopTasks
			wait := time.Since(t0)
			ws.Wait += wait
			e.tuner.NoteWait(wait)
			e.opt.Obs.Record(obs.KindWait, wi, t0, wait, -1, -1, -1)
			if !ok {
				return
			}
			if e.errs.get() == nil {
				e.runGOPTask(&t, wi, ws, &scr)
			}
			t.unit.retire()
		}
	})
}

func (e *StreamExecutor) runGOPTask(t *gopTask, wi int, ws *WorkerStats, scr *sliceScratch) {
	t1 := time.Now()
	reg := rtrace.StartRegion(context.Background(), "mpeg2par.gopTask")
	defer reg.End()
	var work decoder.WorkStats
	var es ErrorStats
	for idx := t.first; idx < t.first+t.n; idx++ {
		p := t.pics[idx]
		newPlanFrame(e.pool, p)
		w, pes, err := decodePlanPic(&e.seq, t.pics, idx, wi, e.opt, scr)
		work.Add(w)
		es.Add(pes)
		if err != nil {
			e.setErr(fmt.Errorf("core: GOP %d at byte %d: %w", t.g, t.off, err))
			cost := time.Since(t1)
			ws.Busy += cost
			ws.Tasks++
			e.opt.Obs.Record(obs.KindTask, wi, t1, cost, t.g, -1, -1)
			return
		}
		for _, ri := range p.holds {
			if t.pics[ri].frame.Release() {
				e.pool.Put(t.pics[ri].frame)
			}
		}
		e.disp.push(p.frame, p.displayIdx)
	}
	cost := time.Since(t1)
	ws.Busy += cost
	ws.Tasks++
	e.tuner.NoteTask(cost)
	e.opt.Obs.Record(obs.KindTask, wi, t1, cost, t.g, -1, -1)
	e.opt.Cost.Observe(t.unit.bytes, cost)
	e.workMu.Lock()
	e.st.Work.Add(work)
	e.st.Errors.Add(es)
	e.workMu.Unlock()
}

// sliceWorker is the streaming fine-grained worker: the same 2-D task
// queue as decodeResilientSlice, except the queue grows while the scan
// runs, and each completed picture retires its share of the unit that
// carried its bytes.
func (e *StreamExecutor) sliceWorker(wi int) {
	defer e.wg.Done()
	obs.Do(e.opt.Mode.String(), wi, func() {
		ws := &e.st.WorkerStats[wi]
		var scr sliceScratch
		var taskAddrs []int
		for {
			e.gate.enter(wi)
			p, ti, wait, ok := e.q.take(wi)
			ws.Wait += wait
			e.tuner.NoteWait(wait)
			if !ok {
				return
			}
			pics := e.q.snapshot()
			t0 := time.Now()
			reg := rtrace.StartRegion(context.Background(), "mpeg2par.sliceTask")
			var work decoder.WorkStats
			var es ErrorStats
			var sst SplitStats
			taskAddrs = taskAddrs[:0]
			err := runPlanSliceTask(&e.seq, pics, p, ti, wi, e.opt, &scr, &work, &es, &sst, &taskAddrs)
			reg.End()
			cost := time.Since(t0)
			ws.Busy += cost
			ws.Tasks++
			e.tuner.NoteTask(cost)
			kind := obs.KindTask
			if _, j, _ := p.taskAt(ti); j != nil {
				kind = obs.KindSegment
			}
			e.opt.Obs.Record(kind, wi, t0, cost, p.gop, p.displayIdx, ti)
			if p.fate == fateDecode {
				e.opt.Cost.Observe(taskBytes(p, ti), cost)
			}
			if err != nil { // only possible under FailFast
				e.setErr(err)
				e.q.fail()
				return
			}
			if e.q.finish(p, taskAddrs) {
				if p.fate == fateDecode {
					if miss := e.q.missing(p); len(miss) > 0 {
						if e.opt.Resilience == FailFast {
							total := p.params.MBWidth * p.params.MBHeight
							e.setErr(fmt.Errorf("core: picture at display %d covered %d of %d macroblocks",
								p.displayIdx, total-len(miss), total))
							e.q.fail()
							return
						}
						concealMBs(pics, p, miss)
						es.ConcealedMBs += len(miss)
					}
				}
				e.q.completePic(p)
				for _, ri := range p.holds {
					if pics[ri].frame.Release() {
						e.pool.Put(pics[ri].frame)
					}
				}
				e.disp.push(p.frame, p.displayIdx)
				p.unit.retire()
			}
			e.workMu.Lock()
			e.st.Work.Add(work)
			e.st.Errors.Add(es)
			e.st.Split.Add(sst)
			e.workMu.Unlock()
		}
	})
}
