package core

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/mpeg2"
)

// TraceDecode decodes the stream once, sequentially and deterministically,
// emitting the reconstruction memory-reference trace as if `procs`
// processors had executed it: tasks (slices or GOPs, per mode) are
// assigned to processors round-robin, the same no-locality dynamic
// assignment the paper's decoders use. Frames are freshly allocated, so
// picture buffers occupy new addresses like the paper's dynamically
// allocated buffers.
//
// A deterministic label assignment (rather than the goroutine engine's
// worker ids) is essential on small hosts: with one CPU a single worker
// goroutine would otherwise execute — and label — every task.
func TraceDecode(data []byte, mode Mode, procs int, tr memtrace.Tracer) error {
	return TraceDecodeAssign(data, mode, procs, AffinityNone, tr)
}

// TraceDecodeAssign is TraceDecode with an explicit task→processor
// assignment discipline for the slice modes: AffinityNone labels tasks
// round-robin (the paper's dynamic assignment, and what TraceDecode
// emits), AffinityRow labels each slice with row mod procs — the
// deterministic steady state of the row-affinity queue, where the
// work-conserving fallback never fires because the simulator has no
// timing skew. GOP mode ignores the discipline (each GOP is already one
// processor's task). The locality study A/Bs the two labelings under
// cachesim.
func TraceDecodeAssign(data []byte, mode Mode, procs int, aff Affinity, tr memtrace.Tracer) error {
	if procs < 1 {
		return fmt.Errorf("core: need at least one processor")
	}
	m, err := Scan(data)
	if err != nil {
		return err
	}
	if mode == ModeGOP {
		return traceGOPs(data, m, procs, tr)
	}
	return traceSlices(data, m, procs, aff, tr)
}

// traceInput emits the VLD's sequential read of a coded byte range — the
// read-once streaming component of the reference stream.
func traceInput(tr memtrace.Tracer, data []byte, proc, off, end int) {
	base := tr.Base(&data[0], len(data))
	const chunk = 256
	for a := off; a < end; a += chunk {
		n := end - a
		if n > chunk {
			n = chunk
		}
		tr.Access(proc, base+uint64(a), n, false)
	}
}

func traceGOPs(data []byte, m *StreamMap, procs int, tr memtrace.Tracer) error {
	for g := range m.GOPs {
		gop := &m.GOPs[g]
		proc := g % procs
		seq := m.Seq
		pd := decoder.PictureDecoder{Seq: &seq, Tracer: tr, Proc: proc}
		r := bits.NewReader(data[:gop.End])
		r.SeekBit(int64(gop.Offset) * 8)
		pi := 0
		for {
			code, err := r.NextStartCode()
			if err != nil {
				break
			}
			r.Skip(32)
			if code == mpeg2.PictureStartCode {
				if pi < len(gop.Pictures) {
					pr := &gop.Pictures[pi]
					traceInput(tr, data, proc, pr.Offset, pr.End)
				}
				pi++
				if _, err := pd.DecodePicture(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func traceSlices(data []byte, m *StreamMap, procs int, aff Affinity, tr memtrace.Tracer) error {
	pics, err := buildPicStates(data, m, Options{Packing: PackFIFO})
	if err != nil {
		return err
	}
	opt := Options{Tracer: tr}
	task := 0
	var scr sliceScratch
	for _, p := range pics {
		p.frame = frame.New(m.Seq.Width, m.Seq.Height)
		for si := range p.rng.Slices {
			proc := task % procs
			if aff == AffinityRow {
				proc = p.rng.Slices[si].Row % procs
			}
			sr := p.rng.Slices[si]
			traceInput(tr, data, proc, sr.Offset, sr.End)
			if _, _, err := decodeOneSlice(m, pics, p, si, proc, opt, &scr); err != nil {
				return err
			}
			task++
		}
	}
	return nil
}

// VisitMacroblocks walks every macroblock of the stream at the syntax
// level — no pixel reconstruction — calling fn for each decoded
// macroblock in decode order. Useful for stream inspection and tests.
func VisitMacroblocks(data []byte, m *StreamMap, fn func(mb *mpeg2.MB)) error {
	pics, err := buildPicStates(data, m, Options{Packing: PackFIFO})
	if err != nil {
		return err
	}
	for _, p := range pics {
		for _, sr := range p.rng.Slices {
			r := bits.NewReader(data[:sr.End])
			r.SeekBit(int64(sr.Offset) * 8)
			code, err := r.ReadStartCode()
			if err != nil {
				return err
			}
			ds, err := mpeg2.DecodeSlice(r, &p.params, int(code)-1)
			if err != nil {
				return err
			}
			for i := range ds.MBs {
				fn(&ds.MBs[i])
			}
		}
	}
	return nil
}
