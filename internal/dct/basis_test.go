package dct

import (
	"math"
	"testing"
)

// TestBasisVectors runs every unit impulse through the fast IDCT and
// compares against the double-precision reference — full coverage of the
// transform's 64 basis functions.
func TestBasisVectors(t *testing.T) {
	for k := 0; k < 64; k++ {
		for _, amp := range []int32{1, 16, 255, -255, 1024, -1024} {
			var fast, ref [64]int32
			fast[k], ref[k] = amp, amp
			Inverse(&fast)
			InverseRef(&ref)
			for i := range ref {
				r := ref[i]
				if r > 255 {
					r = 255
				}
				if r < -256 {
					r = -256
				}
				d := fast[i] - r
				if d < 0 {
					d = -d
				}
				if d > 1 {
					t.Fatalf("basis %d amp %d pixel %d: fast %d ref %d", k, amp, i, fast[i], r)
				}
			}
		}
	}
}

// TestParseval: the DCT is orthonormal, so energy is preserved by the
// reference transform (within rounding).
func TestParseval(t *testing.T) {
	var b [64]int32
	for i := range b {
		b[i] = int32((i*37)%256 - 128)
	}
	var spatial float64
	for _, v := range b {
		spatial += float64(v) * float64(v)
	}
	ForwardRef(&b)
	var freq float64
	for _, v := range b {
		freq += float64(v) * float64(v)
	}
	if ratio := freq / spatial; math.Abs(ratio-1) > 0.01 {
		t.Fatalf("energy ratio %f, want ~1", ratio)
	}
}

// TestForwardRefNyquist: the alternating checkerboard maps to the highest
// frequency coefficient.
func TestForwardRefNyquist(t *testing.T) {
	var b [64]int32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := int32(100)
			if (x+y)%2 == 1 {
				v = -100
			}
			b[y*8+x] = v
		}
	}
	ForwardRef(&b)
	// Highest-magnitude coefficient must be (7,7).
	maxIdx, maxAbs := 0, int32(0)
	for i, v := range b {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxIdx, maxAbs = i, v
		}
	}
	if maxIdx != 63 {
		t.Fatalf("checkerboard peaked at coefficient %d, want 63", maxIdx)
	}
}
