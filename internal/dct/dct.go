// Package dct implements the 8×8 forward and inverse discrete cosine
// transforms used by MPEG video coding.
//
// Two inverse transforms are provided: InverseRef, a double-precision
// separable reference implementation, and Inverse, the classic 32-bit
// integer fast IDCT (Wang's algorithm, as used by the MPEG Software
// Simulation Group decoder the paper parallelized). The fast IDCT meets
// IEEE Std 1180-1990 style accuracy bounds against the reference, which the
// tests verify.
package dct

import "math"

// cosTab[u][x] = c(u)/2 * cos((2x+1)uπ/16), the separable DCT basis.
var cosTab [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			cosTab[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// ForwardRef computes the forward DCT of the 8×8 spatial block in raster
// order using double precision, rounding to nearest integer.
func ForwardRef(block *[64]int32) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += float64(block[y*8+x]) * cosTab[u][x]
			}
			tmp[y*8+u] = s
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTab[v][y]
			}
			block[v*8+u] = int32(math.RoundToEven(s))
		}
	}
}

// InverseRef computes the inverse DCT in double precision, rounding to
// nearest integer, without saturation.
func InverseRef(block *[64]int32) {
	var tmp [64]float64
	// Rows: spatial index x from frequency index u.
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += float64(block[v*8+u]) * cosTab[u][x]
			}
			tmp[v*8+x] = s
		}
	}
	// Columns.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += tmp[v*8+x] * cosTab[v][y]
			}
			block[y*8+x] = int32(math.RoundToEven(s))
		}
	}
}

// Fixed-point constants: Wk = 2048*sqrt(2)*cos(kπ/16), rounded.
const (
	w1 = 2841
	w2 = 2676
	w3 = 2408
	w5 = 1609
	w6 = 1108
	w7 = 565
)

// Inverse computes the inverse DCT in place using Wang's fast integer
// algorithm with 11 fractional bits in the row pass and results clamped to
// [-256, 255], matching the MSSG reference decoder's idct.
func Inverse(block *[64]int32) {
	if asmIDCT {
		idctAsm(block)
		return
	}
	for i := 0; i < 8; i++ {
		idctRow(block[i*8 : i*8+8 : i*8+8])
	}
	for i := 0; i < 8; i++ {
		idctCol(block, i)
	}
}

// InverseSparse computes the same transform as Inverse but exploits the
// sparsity contract from quant.InverseSparse: rowMask bit r clear means
// frequency row r is entirely zero (set bits may still be zero rows), and
// dcOnly means every AC coefficient is zero. Zero rows are skipped in the
// row pass — idctRow would only rewrite their zeros — and the two
// overwhelmingly common shapes take short-circuits that are bit-identical
// to the full transform:
//
//   - dcOnly: every output is clamp9(((dc<<3)<<8 + 8192) >> 14), the value
//     the row DC shortcut followed by a one-live-input column pass yields.
//   - rowMask == 1 (only row 0 live): one row transform, then each column
//     reduces to the same single-input column form, a per-column fill.
//
// A rowMask with extra bits set degrades to the general path, never to a
// wrong answer.
func InverseSparse(block *[64]int32, rowMask uint8, dcOnly bool) {
	if dcOnly {
		v := clamp9((block[0]<<3<<8 + 8192) >> 14)
		for i := range block {
			block[i] = v
		}
		return
	}
	if rowMask == 1 {
		idctRow(block[0:8:8])
		for c := 0; c < 8; c++ {
			v := clamp9((block[c]<<8 + 8192) >> 14)
			block[c] = v
			block[8+c] = v
			block[16+c] = v
			block[24+c] = v
			block[32+c] = v
			block[40+c] = v
			block[48+c] = v
			block[56+c] = v
		}
		return
	}
	if asmIDCT {
		// The vectorized kernel transforms all rows; the skipped rows are
		// all-zero, for which the row pass is a zero-writing identity, so
		// the result is bit-identical.
		idctAsm(block)
		return
	}
	for i := 0; i < 8; i++ {
		if rowMask&(1<<uint(i)) != 0 {
			idctRow(block[i*8 : i*8+8 : i*8+8])
		}
	}
	for i := 0; i < 8; i++ {
		idctCol(block, i)
	}
}

func idctRow(b []int32) {
	x1 := b[4] << 11
	x2 := b[6]
	x3 := b[2]
	x4 := b[1]
	x5 := b[7]
	x6 := b[5]
	x7 := b[3]
	if x1|x2|x3|x4|x5|x6|x7 == 0 {
		// DC-only row shortcut (very common after quantization).
		dc := b[0] << 3
		for i := range b {
			b[i] = dc
		}
		return
	}
	x0 := b[0]<<11 + 128 // +128 rounds the final >>8

	// First stage.
	x8 := w7 * (x4 + x5)
	x4 = x8 + (w1-w7)*x4
	x5 = x8 - (w1+w7)*x5
	x8 = w3 * (x6 + x7)
	x6 = x8 - (w3-w5)*x6
	x7 = x8 - (w3+w5)*x7

	// Second stage.
	x8 = x0 + x1
	x0 -= x1
	x1 = w6 * (x3 + x2)
	x2 = x1 - (w2+w6)*x2
	x3 = x1 + (w2-w6)*x3
	x1 = x4 + x6
	x4 -= x6
	x6 = x5 + x7
	x5 -= x7

	// Third stage.
	x7 = x8 + x3
	x8 -= x3
	x3 = x0 + x2
	x0 -= x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	// Fourth stage.
	b[0] = (x7 + x1) >> 8
	b[1] = (x3 + x2) >> 8
	b[2] = (x0 + x4) >> 8
	b[3] = (x8 + x6) >> 8
	b[4] = (x8 - x6) >> 8
	b[5] = (x0 - x4) >> 8
	b[6] = (x3 - x2) >> 8
	b[7] = (x7 - x1) >> 8
}

func idctCol(b *[64]int32, c int) {
	x1 := b[8*4+c] << 8
	x2 := b[8*6+c]
	x3 := b[8*2+c]
	x4 := b[8*1+c]
	x5 := b[8*7+c]
	x6 := b[8*5+c]
	x7 := b[8*3+c]
	x0 := b[c]<<8 + 8192

	x8 := w7*(x4+x5) + 4
	x4 = (x8 + (w1-w7)*x4) >> 3
	x5 = (x8 - (w1+w7)*x5) >> 3
	x8 = w3*(x6+x7) + 4
	x6 = (x8 - (w3-w5)*x6) >> 3
	x7 = (x8 - (w3+w5)*x7) >> 3

	x8 = x0 + x1
	x0 -= x1
	x1 = w6*(x3+x2) + 4
	x2 = (x1 - (w2+w6)*x2) >> 3
	x3 = (x1 + (w2-w6)*x3) >> 3
	x1 = x4 + x6
	x4 -= x6
	x6 = x5 + x7
	x5 -= x7

	x7 = x8 + x3
	x8 -= x3
	x3 = x0 + x2
	x0 -= x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	b[8*0+c] = clamp9(int32((x7 + x1) >> 14))
	b[8*1+c] = clamp9(int32((x3 + x2) >> 14))
	b[8*2+c] = clamp9(int32((x0 + x4) >> 14))
	b[8*3+c] = clamp9(int32((x8 + x6) >> 14))
	b[8*4+c] = clamp9(int32((x8 - x6) >> 14))
	b[8*5+c] = clamp9(int32((x0 - x4) >> 14))
	b[8*6+c] = clamp9(int32((x3 - x2) >> 14))
	b[8*7+c] = clamp9(int32((x7 - x1) >> 14))
}

// clamp9 saturates to the 9-bit signed range [-256, 255] required of IDCT
// output by ISO/IEC 13818-2 §7.4.3.
func clamp9(v int32) int32 {
	if v < -256 {
		return -256
	}
	if v > 255 {
		return 255
	}
	return v
}
