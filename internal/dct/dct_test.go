package dct

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardInverseRefIdentity(t *testing.T) {
	// InverseRef(ForwardRef(x)) == x exactly for in-range pixel data: the
	// transform pair is orthonormal and rounding error is < 0.5.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var b, orig [64]int32
		for i := range b {
			b[i] = int32(rng.Intn(256) - 128)
			orig[i] = b[i]
		}
		ForwardRef(&b)
		InverseRef(&b)
		for i := range b {
			if d := b[i] - orig[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, orig[i], b[i])
			}
		}
	}
}

func TestDCOnly(t *testing.T) {
	var b [64]int32
	b[0] = 240 // DC coefficient
	Inverse(&b)
	// All outputs must equal round(240/8) = 30.
	for i, v := range b {
		if v != 30 {
			t.Fatalf("idx %d = %d, want 30", i, v)
		}
	}
}

func TestDCOnlyMatchesRef(t *testing.T) {
	for _, dc := range []int32{-2048, -255, -8, 0, 8, 255, 2047} {
		var fast, ref [64]int32
		fast[0], ref[0] = dc, dc
		Inverse(&fast)
		InverseRef(&ref)
		for i := range ref {
			r := ref[i]
			if r > 255 {
				r = 255
			}
			if r < -256 {
				r = -256
			}
			if d := fast[i] - r; d < -1 || d > 1 {
				t.Fatalf("dc=%d idx %d: fast %d ref %d", dc, i, fast[i], r)
			}
		}
	}
}

// TestIEEE1180Accuracy runs an IEEE Std 1180-1990 style accuracy test of
// the fast integer IDCT against the double-precision reference:
// 10000 random blocks, per-pixel error <= 1, mean error and mean square
// error within the standard's thresholds.
func TestIEEE1180Accuracy(t *testing.T) {
	for _, rng := range []struct {
		name     string
		lo, hi   int32
		trials   int
		seedBase int64
	}{
		{"L256", -256, 255, 10000, 7},
		{"L5", -5, 5, 10000, 11},
		{"L300", -300, 300, 10000, 13},
	} {
		t.Run(rng.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(rng.seedBase))
			var sumErr, sumSq [64]float64
			maxErr := int32(0)
			for trial := 0; trial < rng.trials; trial++ {
				var spatial [64]int32
				for i := range spatial {
					spatial[i] = rng.lo + int32(r.Intn(int(rng.hi-rng.lo+1)))
				}
				// Forward-transform with the reference to get coefficients,
				// then saturate to the legal coefficient range.
				coef := spatial
				ForwardRef(&coef)
				for i := range coef {
					if coef[i] > 2047 {
						coef[i] = 2047
					}
					if coef[i] < -2048 {
						coef[i] = -2048
					}
				}
				fast := coef
				ref := coef
				Inverse(&fast)
				InverseRef(&ref)
				for i := range ref {
					// Clamp the reference like §7.4.3 requires.
					if ref[i] > 255 {
						ref[i] = 255
					}
					if ref[i] < -256 {
						ref[i] = -256
					}
					e := fast[i] - ref[i]
					if e < 0 {
						e = -e
					}
					if e > maxErr {
						maxErr = e
					}
					sumErr[i] += float64(fast[i] - ref[i])
					sumSq[i] += float64(e) * float64(e)
				}
			}
			if maxErr > 1 {
				t.Errorf("peak error %d > 1", maxErr)
			}
			n := float64(rng.trials)
			var omse float64
			for i := range sumSq {
				if me := math.Abs(sumErr[i]) / n; me > 0.015 {
					t.Errorf("pixel %d mean error %.4f > 0.015", i, me)
				}
				if mse := sumSq[i] / n; mse > 0.06 {
					t.Errorf("pixel %d MSE %.4f > 0.06", i, mse)
				}
				omse += sumSq[i] / n
			}
			if omse/64 > 0.02 {
				t.Errorf("overall MSE %.4f > 0.02", omse/64)
			}
		})
	}
}

func TestInverseAllZero(t *testing.T) {
	var b [64]int32
	Inverse(&b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("idx %d = %d, want 0", i, v)
		}
	}
}

func TestInverseSaturates(t *testing.T) {
	// A block of max-magnitude coefficients must stay within [-256, 255].
	var b [64]int32
	for i := range b {
		if i%2 == 0 {
			b[i] = 2047
		} else {
			b[i] = -2048
		}
	}
	Inverse(&b)
	for i, v := range b {
		if v < -256 || v > 255 {
			t.Fatalf("idx %d = %d outside 9-bit range", i, v)
		}
	}
}

func TestForwardRefDC(t *testing.T) {
	// A flat block transforms to a single DC coefficient = 8*value.
	var b [64]int32
	for i := range b {
		b[i] = 100
	}
	ForwardRef(&b)
	if b[0] != 800 {
		t.Fatalf("DC = %d, want 800", b[0])
	}
	for i := 1; i < 64; i++ {
		if b[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, b[i])
		}
	}
}

func TestForwardRefLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, sum [64]int32
	for i := range a {
		a[i] = int32(rng.Intn(100) - 50)
		b[i] = int32(rng.Intn(100) - 50)
		sum[i] = a[i] + b[i]
	}
	ForwardRef(&a)
	ForwardRef(&b)
	ForwardRef(&sum)
	for i := range sum {
		if d := sum[i] - a[i] - b[i]; d < -2 || d > 2 {
			t.Fatalf("linearity violated at %d: %d vs %d+%d", i, sum[i], a[i], b[i])
		}
	}
}

func BenchmarkInverse(b *testing.B) {
	var blk [64]int32
	rng := rand.New(rand.NewSource(3))
	for i := range blk {
		blk[i] = int32(rng.Intn(512) - 256)
	}
	b.ReportMetric(1, "blocks/op")
	for i := 0; i < b.N; i++ {
		tmp := blk
		Inverse(&tmp)
	}
}

func BenchmarkInverseSparse(b *testing.B) {
	// Typical post-quantization block: DC plus a couple of low-freq terms.
	var blk [64]int32
	blk[0], blk[1], blk[8] = 200, -14, 9
	for i := 0; i < b.N; i++ {
		tmp := blk
		Inverse(&tmp)
	}
}

func BenchmarkForwardRef(b *testing.B) {
	var blk [64]int32
	rng := rand.New(rand.NewSource(4))
	for i := range blk {
		blk[i] = int32(rng.Intn(256) - 128)
	}
	for i := 0; i < b.N; i++ {
		tmp := blk
		ForwardRef(&tmp)
	}
}

// trueRowMask returns the exact row-liveness mask of a coefficient block.
func trueRowMask(b *[64]int32) uint8 {
	var m uint8
	for i, v := range b {
		if v != 0 {
			m |= 1 << uint(i>>3)
		}
	}
	return m
}

// sparseBlock builds a random block whose nonzero coefficients are confined
// to the rows of mask (each live row gets at least one nonzero).
func sparseBlock(rng *rand.Rand, mask uint8) [64]int32 {
	var b [64]int32
	for r := 0; r < 8; r++ {
		if mask&(1<<uint(r)) == 0 {
			continue
		}
		n := 1 + rng.Intn(8)
		for k := 0; k < n; k++ {
			c := rng.Intn(8)
			v := int32(rng.Intn(4095) - 2047)
			if v == 0 {
				v = 1
			}
			b[r*8+c] = v
		}
	}
	return b
}

// TestInverseSparseMatchesDense drives InverseSparse across every row-mask
// shape — including the dcOnly and rowMask==1 short-circuits — and demands
// byte-identical output to the dense Inverse.
func TestInverseSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for mask := 0; mask < 256; mask++ {
		for trial := 0; trial < 20; trial++ {
			b := sparseBlock(rng, uint8(mask))
			dense := b
			Inverse(&dense)

			sparse := b
			rm := trueRowMask(&b)
			dcOnly := rm&^1 == 0 && b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] == 0
			InverseSparse(&sparse, rm, dcOnly)
			if sparse != dense {
				t.Fatalf("mask %02x trial %d: sparse != dense\nin:     %v\nsparse: %v\ndense:  %v",
					mask, trial, b, sparse, dense)
			}
		}
	}
}

// TestInverseSparseConservativeMask verifies the contract that extra set
// bits in rowMask (a superset of the live rows) never change the output.
func TestInverseSparseConservativeMask(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		b := sparseBlock(rng, uint8(rng.Intn(256)))
		dense := b
		Inverse(&dense)

		sparse := b
		super := trueRowMask(&b) | uint8(rng.Intn(256))
		InverseSparse(&sparse, super, false)
		if sparse != dense {
			t.Fatalf("trial %d: superset mask changed output", trial)
		}
	}
}

// TestInverseSparseDCOnly pins the DC short-circuit to the dense transform
// over the full DC range, including saturating values.
func TestInverseSparseDCOnly(t *testing.T) {
	for dc := int32(-2048); dc <= 2047; dc++ {
		var dense, sparse [64]int32
		dense[0], sparse[0] = dc, dc
		Inverse(&dense)
		InverseSparse(&sparse, 1, true)
		if sparse != dense {
			t.Fatalf("dc %d: sparse %d != dense %d", dc, sparse[0], dense[0])
		}
	}
}

func benchIDCT(b *testing.B, mask uint8, dcOnly bool) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([][64]int32, 64)
	for i := range blocks {
		blocks[i] = sparseBlock(rng, mask)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&63]
		InverseSparse(&blk, mask, dcOnly)
	}
}

func BenchmarkIDCTSparse(b *testing.B) {
	b.Run("dc-only", func(b *testing.B) { benchIDCT(b, 1, true) })
	b.Run("row0", func(b *testing.B) { benchIDCT(b, 1, false) })
	b.Run("rows0-1", func(b *testing.B) { benchIDCT(b, 3, false) })
}

func BenchmarkIDCTDense(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([][64]int32, 64)
	for i := range blocks {
		blocks[i] = sparseBlock(rng, 0xFF)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&63]
		Inverse(&blk)
	}
}
