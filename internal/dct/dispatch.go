package dct

import "mpeg2par/internal/kernels"

// asmIDCT routes the inverse transform through the vectorized kernel in
// idct_amd64.s at dispatch level LevelASM. Only amd64 carries an IDCT
// kernel: the Go arm64 assembler exposes no signed vector shifts, which
// the fixed-point rounding needs, so arm64's asm tier covers motion and
// store kernels only and the IDCT stays on the scalar path there.
var asmIDCT = false

func init() {
	kernels.Register(func(l kernels.Level) {
		asmIDCT = haveIDCTAsm && l == kernels.LevelASM
	})
}
