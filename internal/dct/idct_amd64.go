package dct

// haveIDCTAsm reports that this architecture carries the vectorized IDCT
// (AVX2; the dispatch layer only selects LevelASM after runtime CPU
// detection).
const haveIDCTAsm = true

// idctAsm computes the same transform as Inverse — Wang's fast integer
// IDCT with 11 fractional row bits and clamp9 column outputs — with each
// pass vectorized across the block's eight rows/columns. It is bit-exact
// with the scalar code for any coefficient input: the scalar row DC
// shortcut it omits is an identity ((x<<11+128)>>8 == x<<3), not an
// approximation.
//
//go:noescape
func idctAsm(blk *[64]int32)
