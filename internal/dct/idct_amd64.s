// AVX2 inverse DCT: Wang's fast integer algorithm with both passes
// vectorized eight-wide. Each pass runs the scalar recurrence once with
// dword lanes standing in for the eight rows (then columns); an 8×8
// dword transpose before each pass moves the block into lane-parallel
// form, and the column pass writes the final row-major layout directly.
//
// Bit-exactness with the scalar code holds lane-for-lane: VPMULLD wraps
// like Go int32 multiplication, VPSRAD matches Go's arithmetic >>, and
// the omitted row-pass DC shortcut is an identity, not an approximation.

#include "textflag.h"

DATA idctk<>+0(SB)/4, $565     // w7
DATA idctk<>+4(SB)/4, $565
DATA idctk<>+8(SB)/4, $565
DATA idctk<>+12(SB)/4, $565
DATA idctk<>+16(SB)/4, $565
DATA idctk<>+20(SB)/4, $565
DATA idctk<>+24(SB)/4, $565
DATA idctk<>+28(SB)/4, $565
DATA idctk<>+32(SB)/4, $2276   // w1-w7
DATA idctk<>+36(SB)/4, $2276
DATA idctk<>+40(SB)/4, $2276
DATA idctk<>+44(SB)/4, $2276
DATA idctk<>+48(SB)/4, $2276
DATA idctk<>+52(SB)/4, $2276
DATA idctk<>+56(SB)/4, $2276
DATA idctk<>+60(SB)/4, $2276
DATA idctk<>+64(SB)/4, $3406   // w1+w7
DATA idctk<>+68(SB)/4, $3406
DATA idctk<>+72(SB)/4, $3406
DATA idctk<>+76(SB)/4, $3406
DATA idctk<>+80(SB)/4, $3406
DATA idctk<>+84(SB)/4, $3406
DATA idctk<>+88(SB)/4, $3406
DATA idctk<>+92(SB)/4, $3406
DATA idctk<>+96(SB)/4, $2408   // w3
DATA idctk<>+100(SB)/4, $2408
DATA idctk<>+104(SB)/4, $2408
DATA idctk<>+108(SB)/4, $2408
DATA idctk<>+112(SB)/4, $2408
DATA idctk<>+116(SB)/4, $2408
DATA idctk<>+120(SB)/4, $2408
DATA idctk<>+124(SB)/4, $2408
DATA idctk<>+128(SB)/4, $799   // w3-w5
DATA idctk<>+132(SB)/4, $799
DATA idctk<>+136(SB)/4, $799
DATA idctk<>+140(SB)/4, $799
DATA idctk<>+144(SB)/4, $799
DATA idctk<>+148(SB)/4, $799
DATA idctk<>+152(SB)/4, $799
DATA idctk<>+156(SB)/4, $799
DATA idctk<>+160(SB)/4, $4017  // w3+w5
DATA idctk<>+164(SB)/4, $4017
DATA idctk<>+168(SB)/4, $4017
DATA idctk<>+172(SB)/4, $4017
DATA idctk<>+176(SB)/4, $4017
DATA idctk<>+180(SB)/4, $4017
DATA idctk<>+184(SB)/4, $4017
DATA idctk<>+188(SB)/4, $4017
DATA idctk<>+192(SB)/4, $1108  // w6
DATA idctk<>+196(SB)/4, $1108
DATA idctk<>+200(SB)/4, $1108
DATA idctk<>+204(SB)/4, $1108
DATA idctk<>+208(SB)/4, $1108
DATA idctk<>+212(SB)/4, $1108
DATA idctk<>+216(SB)/4, $1108
DATA idctk<>+220(SB)/4, $1108
DATA idctk<>+224(SB)/4, $3784  // w2+w6
DATA idctk<>+228(SB)/4, $3784
DATA idctk<>+232(SB)/4, $3784
DATA idctk<>+236(SB)/4, $3784
DATA idctk<>+240(SB)/4, $3784
DATA idctk<>+244(SB)/4, $3784
DATA idctk<>+248(SB)/4, $3784
DATA idctk<>+252(SB)/4, $3784
DATA idctk<>+256(SB)/4, $1568  // w2-w6
DATA idctk<>+260(SB)/4, $1568
DATA idctk<>+264(SB)/4, $1568
DATA idctk<>+268(SB)/4, $1568
DATA idctk<>+272(SB)/4, $1568
DATA idctk<>+276(SB)/4, $1568
DATA idctk<>+280(SB)/4, $1568
DATA idctk<>+284(SB)/4, $1568
DATA idctk<>+288(SB)/4, $181   // butterfly scale
DATA idctk<>+292(SB)/4, $181
DATA idctk<>+296(SB)/4, $181
DATA idctk<>+300(SB)/4, $181
DATA idctk<>+304(SB)/4, $181
DATA idctk<>+308(SB)/4, $181
DATA idctk<>+312(SB)/4, $181
DATA idctk<>+316(SB)/4, $181
DATA idctk<>+320(SB)/4, $128   // rounding biases
DATA idctk<>+324(SB)/4, $128
DATA idctk<>+328(SB)/4, $128
DATA idctk<>+332(SB)/4, $128
DATA idctk<>+336(SB)/4, $128
DATA idctk<>+340(SB)/4, $128
DATA idctk<>+344(SB)/4, $128
DATA idctk<>+348(SB)/4, $128
DATA idctk<>+352(SB)/4, $4
DATA idctk<>+356(SB)/4, $4
DATA idctk<>+360(SB)/4, $4
DATA idctk<>+364(SB)/4, $4
DATA idctk<>+368(SB)/4, $4
DATA idctk<>+372(SB)/4, $4
DATA idctk<>+376(SB)/4, $4
DATA idctk<>+380(SB)/4, $4
DATA idctk<>+384(SB)/4, $8192
DATA idctk<>+388(SB)/4, $8192
DATA idctk<>+392(SB)/4, $8192
DATA idctk<>+396(SB)/4, $8192
DATA idctk<>+400(SB)/4, $8192
DATA idctk<>+404(SB)/4, $8192
DATA idctk<>+408(SB)/4, $8192
DATA idctk<>+412(SB)/4, $8192
DATA idctk<>+416(SB)/4, $255   // clamp9 bounds
DATA idctk<>+420(SB)/4, $255
DATA idctk<>+424(SB)/4, $255
DATA idctk<>+428(SB)/4, $255
DATA idctk<>+432(SB)/4, $255
DATA idctk<>+436(SB)/4, $255
DATA idctk<>+440(SB)/4, $255
DATA idctk<>+444(SB)/4, $255
DATA idctk<>+448(SB)/4, $-256
DATA idctk<>+452(SB)/4, $-256
DATA idctk<>+456(SB)/4, $-256
DATA idctk<>+460(SB)/4, $-256
DATA idctk<>+464(SB)/4, $-256
DATA idctk<>+468(SB)/4, $-256
DATA idctk<>+472(SB)/4, $-256
DATA idctk<>+476(SB)/4, $-256
GLOBL idctk<>(SB), RODATA|NOPTR, $480

#define W7 idctk<>+0(SB)
#define W1M7 idctk<>+32(SB)
#define W1P7 idctk<>+64(SB)
#define W3 idctk<>+96(SB)
#define W3M5 idctk<>+128(SB)
#define W3P5 idctk<>+160(SB)
#define W6 idctk<>+192(SB)
#define W2P6 idctk<>+224(SB)
#define W2M6 idctk<>+256(SB)
#define C181 idctk<>+288(SB)
#define B128 idctk<>+320(SB)
#define B4 idctk<>+352(SB)
#define B8192 idctk<>+384(SB)
#define CMAX idctk<>+416(SB)
#define CMIN idctk<>+448(SB)

// TRANSPOSE8: Y0-Y7 hold rows; afterwards Y8-Y15 hold columns
// (Y8+k lane r = old Yr lane k).
#define TRANSPOSE8 \
	VPUNPCKLDQ  Y1, Y0, Y8    \
	VPUNPCKHDQ  Y1, Y0, Y9    \
	VPUNPCKLDQ  Y3, Y2, Y10   \
	VPUNPCKHDQ  Y3, Y2, Y11   \
	VPUNPCKLDQ  Y5, Y4, Y12   \
	VPUNPCKHDQ  Y5, Y4, Y13   \
	VPUNPCKLDQ  Y7, Y6, Y14   \
	VPUNPCKHDQ  Y7, Y6, Y15   \
	VPUNPCKLQDQ Y10, Y8, Y0   \
	VPUNPCKHQDQ Y10, Y8, Y1   \
	VPUNPCKLQDQ Y11, Y9, Y2   \
	VPUNPCKHQDQ Y11, Y9, Y3   \
	VPUNPCKLQDQ Y14, Y12, Y4  \
	VPUNPCKHQDQ Y14, Y12, Y5  \
	VPUNPCKLQDQ Y15, Y13, Y6  \
	VPUNPCKHQDQ Y15, Y13, Y7  \
	VPERM2I128  $0x20, Y4, Y0, Y8  \
	VPERM2I128  $0x31, Y4, Y0, Y12 \
	VPERM2I128  $0x20, Y5, Y1, Y9  \
	VPERM2I128  $0x31, Y5, Y1, Y13 \
	VPERM2I128  $0x20, Y6, Y2, Y10 \
	VPERM2I128  $0x31, Y6, Y2, Y14 \
	VPERM2I128  $0x20, Y7, Y3, Y11 \
	VPERM2I128  $0x31, Y7, Y3, Y15

// func idctAsm(blk *[64]int32)
TEXT ·idctAsm(SB), NOSPLIT, $0-8
	MOVQ blk+0(FP), SI

	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VMOVDQU 128(SI), Y4
	VMOVDQU 160(SI), Y5
	VMOVDQU 192(SI), Y6
	VMOVDQU 224(SI), Y7

	TRANSPOSE8

	// ---- Row pass (lanes = rows). Inputs: coefficient k in Y8+k.
	// First stage: x4=C1(Y9) x5=C7(Y15) x6=C5(Y13) x7=C3(Y11).
	VPADDD  Y15, Y9, Y0
	VPMULLD W7, Y0, Y0     // x8 = w7*(x4+x5)
	VPMULLD W1M7, Y9, Y1
	VPADDD  Y1, Y0, Y1     // x4 = x8 + (w1-w7)*x4
	VPMULLD W1P7, Y15, Y2
	VPSUBD  Y2, Y0, Y2     // x5 = x8 - (w1+w7)*x5
	VPADDD  Y11, Y13, Y0
	VPMULLD W3, Y0, Y0     // x8 = w3*(x6+x7)
	VPMULLD W3M5, Y13, Y3
	VPSUBD  Y3, Y0, Y3     // x6 = x8 - (w3-w5)*x6
	VPMULLD W3P5, Y11, Y4
	VPSUBD  Y4, Y0, Y4     // x7 = x8 - (w3+w5)*x7

	// Second stage: x0=C0<<11+128, x1=C4<<11, x2=C6(Y14), x3=C2(Y10).
	VPSLLD  $11, Y8, Y5
	VPADDD  B128, Y5, Y5   // x0
	VPSLLD  $11, Y12, Y6   // x1
	VPADDD  Y6, Y5, Y7     // x8 = x0+x1
	VPSUBD  Y6, Y5, Y5     // x0 -= x1
	VPADDD  Y14, Y10, Y6
	VPMULLD W6, Y6, Y6     // x1 = w6*(x3+x2)
	VPMULLD W2P6, Y14, Y8
	VPSUBD  Y8, Y6, Y8     // x2 = x1 - (w2+w6)*x2
	VPMULLD W2M6, Y10, Y9
	VPADDD  Y9, Y6, Y9     // x3 = x1 + (w2-w6)*x3
	VPADDD  Y3, Y1, Y6     // x1 = x4+x6
	VPSUBD  Y3, Y1, Y1     // x4 -= x6
	VPADDD  Y4, Y2, Y3     // x6 = x5+x7
	VPSUBD  Y4, Y2, Y2     // x5 -= x7

	// Third stage. Live: x8=Y7 x0=Y5 x2=Y8 x3=Y9 x1=Y6 x4=Y1 x6=Y3 x5=Y2.
	VPADDD  Y9, Y7, Y4     // x7 = x8+x3
	VPSUBD  Y9, Y7, Y7     // x8 -= x3
	VPADDD  Y8, Y5, Y9     // x3 = x0+x2
	VPSUBD  Y8, Y5, Y5     // x0 -= x2
	VPADDD  Y2, Y1, Y8
	VPMULLD C181, Y8, Y8
	VPADDD  B128, Y8, Y8
	VPSRAD  $8, Y8, Y8     // x2 = (181*(x4+x5)+128)>>8
	VPSUBD  Y2, Y1, Y1
	VPMULLD C181, Y1, Y1
	VPADDD  B128, Y1, Y1
	VPSRAD  $8, Y1, Y1     // x4 = (181*(x4-x5)+128)>>8

	// Outputs. Live: x7=Y4 x1=Y6 x3=Y9 x2=Y8 x0=Y5 x4=Y1 x8=Y7 x6=Y3.
	VPADDD  Y6, Y4, Y0
	VPSRAD  $8, Y0, Y0     // O0 = (x7+x1)>>8
	VPSUBD  Y6, Y4, Y2
	VPSRAD  $8, Y2, Y2     // O7 (parked in Y2)
	VPADDD  Y1, Y5, Y10
	VPSRAD  $8, Y10, Y10   // O2
	VPSUBD  Y1, Y5, Y11
	VPSRAD  $8, Y11, Y11   // O5
	VPADDD  Y8, Y9, Y1
	VPSRAD  $8, Y1, Y1     // O1 = (x3+x2)>>8
	VPSUBD  Y8, Y9, Y5
	VPSRAD  $8, Y5, Y5     // O6 (parked in Y5)
	VPADDD  Y3, Y7, Y8
	VPSRAD  $8, Y8, Y8     // O3 = (x8+x6)>>8
	VPSUBD  Y3, Y7, Y9
	VPSRAD  $8, Y9, Y9     // O4
	VMOVDQA Y2, Y7         // O7
	VMOVDQA Y5, Y6         // O6
	VMOVDQA Y10, Y2        // O2
	VMOVDQA Y8, Y3         // O3
	VMOVDQA Y9, Y4         // O4
	VMOVDQA Y11, Y5        // O5

	TRANSPOSE8

	// ---- Column pass (lanes = columns). Inputs: row j in Y8+j.
	// First stage: x4=D1(Y9) x5=D7(Y15) x6=D5(Y13) x7=D3(Y11).
	VPADDD  Y15, Y9, Y0
	VPMULLD W7, Y0, Y0
	VPADDD  B4, Y0, Y0     // x8 = w7*(x4+x5) + 4
	VPMULLD W1M7, Y9, Y1
	VPADDD  Y1, Y0, Y1
	VPSRAD  $3, Y1, Y1     // x4 = (x8 + (w1-w7)*x4)>>3
	VPMULLD W1P7, Y15, Y2
	VPSUBD  Y2, Y0, Y2
	VPSRAD  $3, Y2, Y2     // x5 = (x8 - (w1+w7)*x5)>>3
	VPADDD  Y11, Y13, Y0
	VPMULLD W3, Y0, Y0
	VPADDD  B4, Y0, Y0     // x8 = w3*(x6+x7) + 4
	VPMULLD W3M5, Y13, Y3
	VPSUBD  Y3, Y0, Y3
	VPSRAD  $3, Y3, Y3     // x6 = (x8 - (w3-w5)*x6)>>3
	VPMULLD W3P5, Y11, Y4
	VPSUBD  Y4, Y0, Y4
	VPSRAD  $3, Y4, Y4     // x7 = (x8 - (w3+w5)*x7)>>3

	// Second stage: x0=D0<<8+8192, x1=D4<<8, x2=D6(Y14), x3=D2(Y10).
	VPSLLD  $8, Y8, Y5
	VPADDD  B8192, Y5, Y5  // x0
	VPSLLD  $8, Y12, Y6    // x1
	VPADDD  Y6, Y5, Y7     // x8 = x0+x1
	VPSUBD  Y6, Y5, Y5     // x0 -= x1
	VPADDD  Y14, Y10, Y6
	VPMULLD W6, Y6, Y6
	VPADDD  B4, Y6, Y6     // x1 = w6*(x3+x2) + 4
	VPMULLD W2P6, Y14, Y8
	VPSUBD  Y8, Y6, Y8
	VPSRAD  $3, Y8, Y8     // x2 = (x1 - (w2+w6)*x2)>>3
	VPMULLD W2M6, Y10, Y9
	VPADDD  Y9, Y6, Y9
	VPSRAD  $3, Y9, Y9     // x3 = (x1 + (w2-w6)*x3)>>3
	VPADDD  Y3, Y1, Y6     // x1 = x4+x6
	VPSUBD  Y3, Y1, Y1     // x4 -= x6
	VPADDD  Y4, Y2, Y3     // x6 = x5+x7
	VPSUBD  Y4, Y2, Y2     // x5 -= x7

	// Third stage (identical to row pass).
	VPADDD  Y9, Y7, Y4     // x7 = x8+x3
	VPSUBD  Y9, Y7, Y7     // x8 -= x3
	VPADDD  Y8, Y5, Y9     // x3 = x0+x2
	VPSUBD  Y8, Y5, Y5     // x0 -= x2
	VPADDD  Y2, Y1, Y8
	VPMULLD C181, Y8, Y8
	VPADDD  B128, Y8, Y8
	VPSRAD  $8, Y8, Y8     // x2
	VPSUBD  Y2, Y1, Y1
	VPMULLD C181, Y1, Y1
	VPADDD  B128, Y1, Y1
	VPSRAD  $8, Y1, Y1     // x4

	// Outputs with clamp9. Live: x7=Y4 x1=Y6 x3=Y9 x2=Y8 x0=Y5 x4=Y1
	// x8=Y7 x6=Y3.
	VPADDD  Y6, Y4, Y0
	VPSRAD  $14, Y0, Y0    // E0 = (x7+x1)>>14
	VPSUBD  Y6, Y4, Y2
	VPSRAD  $14, Y2, Y2    // E7
	VPADDD  Y1, Y5, Y10
	VPSRAD  $14, Y10, Y10  // E2
	VPSUBD  Y1, Y5, Y11
	VPSRAD  $14, Y11, Y11  // E5
	VPADDD  Y8, Y9, Y1
	VPSRAD  $14, Y1, Y1    // E1
	VPSUBD  Y8, Y9, Y5
	VPSRAD  $14, Y5, Y5    // E6
	VPADDD  Y3, Y7, Y8
	VPSRAD  $14, Y8, Y8    // E3
	VPSUBD  Y3, Y7, Y9
	VPSRAD  $14, Y9, Y9    // E4
	VMOVDQA Y2, Y7
	VMOVDQA Y5, Y6
	VMOVDQA Y10, Y2
	VMOVDQA Y8, Y3
	VMOVDQA Y9, Y4
	VMOVDQA Y11, Y5

	VPMINSD CMAX, Y0, Y0
	VPMAXSD CMIN, Y0, Y0
	VPMINSD CMAX, Y1, Y1
	VPMAXSD CMIN, Y1, Y1
	VPMINSD CMAX, Y2, Y2
	VPMAXSD CMIN, Y2, Y2
	VPMINSD CMAX, Y3, Y3
	VPMAXSD CMIN, Y3, Y3
	VPMINSD CMAX, Y4, Y4
	VPMAXSD CMIN, Y4, Y4
	VPMINSD CMAX, Y5, Y5
	VPMAXSD CMIN, Y5, Y5
	VPMINSD CMAX, Y6, Y6
	VPMAXSD CMIN, Y6, Y6
	VPMINSD CMAX, Y7, Y7
	VPMAXSD CMIN, Y7, Y7

	VMOVDQU Y0, (SI)
	VMOVDQU Y1, 32(SI)
	VMOVDQU Y2, 64(SI)
	VMOVDQU Y3, 96(SI)
	VMOVDQU Y4, 128(SI)
	VMOVDQU Y5, 160(SI)
	VMOVDQU Y6, 192(SI)
	VMOVDQU Y7, 224(SI)
	VZEROUPPER
	RET
