package dct

import (
	"testing"

	"mpeg2par/internal/kernels"
)

type idctRNG uint64

func (p *idctRNG) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = idctRNG(x)
	return x
}

// scalarInverse is the scalar transform regardless of dispatch level.
func scalarInverse(block *[64]int32) {
	for i := 0; i < 8; i++ {
		idctRow(block[i*8 : i*8+8 : i*8+8])
	}
	for i := 0; i < 8; i++ {
		idctCol(block, i)
	}
}

// TestInverseAsmEquivalence checks the vectorized IDCT bit-exactly
// against the scalar transform across random dense blocks, sparse
// blocks, and the structured corners (DC-only, single-coefficient,
// extreme-amplitude).
func TestInverseAsmEquivalence(t *testing.T) {
	if !haveIDCTAsm || kernels.Supported() != kernels.LevelASM {
		t.Skipf("asm tier not supported on this host (%s)", kernels.CPUFeatures())
	}
	prev := kernels.Active()
	t.Cleanup(func() { kernels.Set(prev) })
	kernels.Set(kernels.LevelASM)
	if !asmIDCT {
		t.Fatal("asmIDCT not enabled at LevelASM")
	}

	rng := idctRNG(0x243f6a8885a308d3)
	check := func(name string, blk *[64]int32) {
		t.Helper()
		want := *blk
		scalarInverse(&want)
		got := *blk
		idctAsm(&got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: block[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
	}

	// Dense random blocks over the dequantized coefficient range.
	for trial := 0; trial < 200; trial++ {
		var blk [64]int32
		for i := range blk {
			blk[i] = int32(rng.next()%4096) - 2048
		}
		check("dense", &blk)
	}

	// Sparse blocks: realistic post-quantization shapes.
	for trial := 0; trial < 200; trial++ {
		var blk [64]int32
		nz := int(rng.next()%10) + 1
		for k := 0; k < nz; k++ {
			blk[rng.next()%64] = int32(rng.next()%512) - 256
		}
		check("sparse", &blk)
	}

	// Single coefficient at maximum amplitude, every position.
	for pos := 0; pos < 64; pos++ {
		for _, v := range []int32{-2048, 2047, -1, 1} {
			var blk [64]int32
			blk[pos] = v
			check("single", &blk)
		}
	}

	// All-zero and all-extreme.
	var zero [64]int32
	check("zero", &zero)
	var extreme [64]int32
	for i := range extreme {
		extreme[i] = 2047
		if i%2 == 1 {
			extreme[i] = -2048
		}
	}
	check("extreme", &extreme)
}

// TestInverseSparseAsmEquivalence drives the public sparse entry point at
// every kernel level and compares against the dense scalar oracle.
func TestInverseSparseAsmEquivalence(t *testing.T) {
	prev := kernels.Active()
	t.Cleanup(func() { kernels.Set(prev) })
	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	}

	rng := idctRNG(0x452821e638d01377)
	for trial := 0; trial < 100; trial++ {
		var blk [64]int32
		rows := uint8(rng.next())
		for r := 0; r < 8; r++ {
			if rows&(1<<r) == 0 {
				continue
			}
			for c := 0; c < 8; c++ {
				if rng.next()%3 == 0 {
					blk[r*8+c] = int32(rng.next()%512) - 256
				}
			}
		}
		var rowMask uint8
		dcOnly := true
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				if blk[r*8+c] != 0 {
					rowMask |= 1 << r
					if r != 0 || c != 0 {
						dcOnly = false
					}
				}
			}
		}
		if blk[0] == 0 {
			dcOnly = false
		}

		want := blk
		scalarInverse(&want)

		for _, tier := range tiers {
			kernels.Set(tier)
			got := blk
			InverseSparse(&got, rowMask, dcOnly)
			if got != want {
				t.Fatalf("tier=%v trial=%d rowMask=%08b dcOnly=%v: sparse IDCT mismatch", tier, trial, rowMask, dcOnly)
			}
		}
	}
}

// BenchmarkInverseTiers measures the full IDCT per kernel tier on a dense
// block.
func BenchmarkInverseTiers(b *testing.B) {
	prev := kernels.Active()
	b.Cleanup(func() { kernels.Set(prev) })
	rng := idctRNG(99)
	var src [64]int32
	for i := range src {
		src[i] = int32(rng.next()%4096) - 2048
	}
	tiers := []kernels.Level{kernels.LevelScalar}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	}
	for _, tier := range tiers {
		kernels.Set(tier)
		b.Run(tier.String(), func(b *testing.B) {
			b.SetBytes(256)
			for i := 0; i < b.N; i++ {
				blk := src
				Inverse(&blk)
			}
		})
	}
}
