//go:build !amd64

package dct

// haveIDCTAsm is false without the AVX2 kernel; the dispatch layer never
// routes here, so the stub is unreachable.
const haveIDCTAsm = false

func idctAsm(blk *[64]int32) {
	panic("dct: no assembly IDCT on this architecture")
}
