package decoder

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// buildBenchSlice encodes one full-width intra slice (22 macroblocks with
// a mix of DC-only, sparse and denser blocks) and returns the headers and
// the encoded bytes, positioned for DecodeSliceInto after ReadStartCode.
func buildBenchSlice(tb testing.TB) (mpeg2.SequenceHeader, mpeg2.PictureHeader, []byte) {
	tb.Helper()
	seq := mpeg2.SequenceHeader{Width: 352, Height: 240}
	seq.Normalize()
	ph := mpeg2.PictureHeader{
		Type:              vlc.CodingI,
		FCode:             [2][2]int{{15, 15}, {15, 15}},
		FramePredFrameDCT: true,
	}
	params := PictureParams(&seq, &ph)

	mbs := make([]mpeg2.MB, params.MBWidth)
	for c := range mbs {
		mb := &mbs[c]
		mb.Addr = c
		mb.QScaleCode = 8
		mb.Type = vlc.MBType{Intra: true}
		for b := 0; b < 6; b++ {
			mb.Blocks[b][0] = int32(120 + c + b)
			switch c % 3 {
			case 1: // sparse AC
				mb.Blocks[b][1] = 5
				mb.Blocks[b][8] = -3
			case 2: // denser AC
				for i := 1; i < 16; i++ {
					mb.Blocks[b][i] = int32(1 + i%4)
				}
			}
		}
	}
	var w bits.Writer
	if err := mpeg2.EncodeSlice(&w, &params, 0, 8, mbs); err != nil {
		tb.Fatalf("encode slice: %v", err)
	}
	w.StartCode(mpeg2.SequenceEndCode)
	return seq, ph, w.Bytes()
}

// TestSliceDecodeSteadyStateAllocFree pins the tentpole property: once a
// worker's scratch has warmed up, decoding and reconstructing a slice
// performs zero heap allocations.
func TestSliceDecodeSteadyStateAllocFree(t *testing.T) {
	seq, ph, data := buildBenchSlice(t)
	params := PictureParams(&seq, &ph)
	dst := frame.New(seq.Width, seq.Height)

	var r bits.Reader
	var mbScratch []mpeg2.MB
	decodeOnce := func() {
		r.Reset(data)
		if _, err := r.ReadStartCode(); err != nil {
			t.Fatal(err)
		}
		ds, err := mpeg2.DecodeSliceInto(&r, &params, 0, mbScratch)
		mbScratch = ds.MBs
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if _, err := ReconSlice(&seq, &ph, Refs{}, dst, &ds, 0, nil); err != nil {
			t.Fatalf("recon: %v", err)
		}
	}
	decodeOnce() // warm-up grows the MB buffer

	if allocs := testing.AllocsPerRun(50, decodeOnce); allocs != 0 {
		t.Fatalf("steady-state slice decode allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkReconSlice measures the decode+reconstruct cost of one intra
// slice with warmed per-worker scratch — the inner loop every parallel
// mode multiplies.
func BenchmarkReconSlice(b *testing.B) {
	seq, ph, data := buildBenchSlice(b)
	params := PictureParams(&seq, &ph)
	dst := frame.New(seq.Width, seq.Height)

	var r bits.Reader
	var mbScratch []mpeg2.MB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		if _, err := r.ReadStartCode(); err != nil {
			b.Fatal(err)
		}
		ds, err := mpeg2.DecodeSliceInto(&r, &params, 0, mbScratch)
		mbScratch = ds.MBs
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReconSlice(&seq, &ph, Refs{}, dst, &ds, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
