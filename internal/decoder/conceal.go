package decoder

import (
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
)

// ConcealMB fills the macroblock at (mbx, mby) of dst when its coded data
// was lost: from the co-located macroblock of ref when a reference is
// available (zero-vector temporal concealment, the classic slice-loss
// strategy), or with mid-grey otherwise.
func ConcealMB(dst, ref *frame.Frame, mbx, mby int) {
	if ref != nil && ref.CodedW == dst.CodedW && ref.CodedH == dst.CodedH {
		for y := 0; y < 16; y++ {
			dOff := (mby*16+y)*dst.YStride + mbx*16
			sOff := (mby*16+y)*ref.YStride + mbx*16
			copy(dst.Y[dOff:dOff+16], ref.Y[sOff:sOff+16])
		}
		for y := 0; y < 8; y++ {
			dOff := (mby*8+y)*dst.CStride + mbx*8
			sOff := (mby*8+y)*ref.CStride + mbx*8
			copy(dst.Cb[dOff:dOff+8], ref.Cb[sOff:sOff+8])
			copy(dst.Cr[dOff:dOff+8], ref.Cr[sOff:sOff+8])
		}
		return
	}
	for y := 0; y < 16; y++ {
		off := (mby*16+y)*dst.YStride + mbx*16
		for x := 0; x < 16; x++ {
			dst.Y[off+x] = 128
		}
	}
	for y := 0; y < 8; y++ {
		off := (mby*8+y)*dst.CStride + mbx*8
		for x := 0; x < 8; x++ {
			dst.Cb[off+x] = 128
			dst.Cr[off+x] = 128
		}
	}
}

// coverage tracks which macroblocks of a picture were reconstructed, so
// losses can be concealed at macroblock granularity.
type coverage struct {
	mbw  int
	done []bool
	n    int
}

func newCoverage(mbw, mbh int) *coverage {
	return &coverage{mbw: mbw, done: make([]bool, mbw*mbh)}
}

func (c *coverage) markSlice(ds *mpeg2.DecodedSlice) {
	for i := range ds.MBs {
		addr := ds.MBs[i].Addr
		if addr >= 0 && addr < len(c.done) && !c.done[addr] {
			c.done[addr] = true
			c.n++
		}
	}
}

// concealMissing fills every unreconstructed macroblock and returns how
// many were concealed. For B pictures the forward (past) reference is
// the concealment source; for I pictures, whichever reference exists.
func (c *coverage) concealMissing(dst *frame.Frame, refs Refs) int {
	ref := refs.Fwd
	if ref == nil {
		ref = refs.Bwd
	}
	concealed := 0
	for addr, ok := range c.done {
		if ok {
			continue
		}
		ConcealMB(dst, ref, addr%c.mbw, addr/c.mbw)
		concealed++
	}
	return concealed
}
