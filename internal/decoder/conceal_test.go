package decoder

import (
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// corruptSlice flips bytes inside the body of the given slice of the
// given picture (indices in scan order: we locate slices via startcodes).
func corruptSlice(t *testing.T, data []byte, pictureIdx, sliceIdx int) []byte {
	t.Helper()
	mut := append([]byte(nil), data...)
	pics, slices := -1, -1
	for i := 0; i+4 < len(mut); i++ {
		if mut[i] != 0 || mut[i+1] != 0 || mut[i+2] != 1 {
			continue
		}
		code := mut[i+3]
		if code == 0x00 {
			pics++
			slices = -1
		}
		if code >= 0x01 && code <= 0xAF && pics == pictureIdx {
			slices++
			if slices == sliceIdx {
				// Zeroing slice bytes makes the VLD either hit an invalid
				// code or see a premature end-of-slice marker — both the
				// "damaged slice" cases concealment must handle.
				for j := i + 6; j < i+14 && j < len(mut); j++ {
					mut[j] = 0x00
				}
				return mut
			}
		}
	}
	t.Fatalf("slice %d of picture %d not found", sliceIdx, pictureIdx)
	return nil
}

func TestConcealCorruptSlice(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 96, Height: 64, Pictures: 7, GOPSize: 7})
	// Corrupt a middle slice of the P picture (decode order index 1).
	mut := corruptSlice(t, res.Data, 1, 2)

	// Without concealment: hard error.
	d, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.All(); err == nil {
		t.Fatal("corruption must fail without concealment")
	}

	// With concealment: the stream decodes fully.
	d2, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d2.Conceal = true
	frames, err := d2.All()
	if err != nil {
		t.Fatalf("concealed decode failed: %v", err)
	}
	if len(frames) != 7 {
		t.Fatalf("decoded %d frames, want 7", len(frames))
	}
	if d2.Concealed == 0 {
		t.Fatal("no macroblocks reported concealed")
	}
	// Quality: concealed output should still resemble the source (the
	// concealed row comes from the previous picture of a slow pan).
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		if p := frame.PSNR(src.Frame(i), f); p < 15 {
			t.Errorf("frame %d PSNR %.1f dB — concealment destroyed the picture", i, p)
		}
	}
}

func TestConcealFirstIntraWithoutReference(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 4, GOPSize: 4})
	// Corrupt a slice of the very first I picture: no reference exists,
	// so concealment falls back to grey and decode still completes.
	mut := corruptSlice(t, res.Data, 0, 1)
	d, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d.Conceal = true
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	if d.Concealed == 0 {
		t.Fatal("nothing concealed")
	}
}

func TestConcealMBGreyFallback(t *testing.T) {
	dst := frame.New(32, 32)
	ConcealMB(dst, nil, 1, 1)
	if dst.Y[17*dst.CodedW+17] != 128 || dst.Cb[9*dst.CodedW/2+9] != 128 {
		t.Fatal("grey fallback not applied")
	}
	// Mismatched reference geometry also falls back to grey.
	ConcealMB(dst, frame.New(64, 64), 0, 0)
	if dst.Y[0] != 128 {
		t.Fatal("geometry mismatch should fall back to grey")
	}
}

func TestConcealMBCopiesReference(t *testing.T) {
	ref := frame.New(32, 32)
	for i := range ref.Y {
		ref.Y[i] = 77
	}
	dst := frame.New(32, 32)
	ConcealMB(dst, ref, 1, 0)
	if dst.Y[16] != 77 || dst.Y[0] != 0 {
		t.Fatalf("copy wrong: %d %d", dst.Y[16], dst.Y[0])
	}
}
