package decoder

import (
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// corruptSlice flips bytes inside the body of the given slice of the
// given picture (indices in scan order: we locate slices via startcodes).
func corruptSlice(t *testing.T, data []byte, pictureIdx, sliceIdx int) []byte {
	t.Helper()
	mut := append([]byte(nil), data...)
	pics, slices := -1, -1
	for i := 0; i+4 < len(mut); i++ {
		if mut[i] != 0 || mut[i+1] != 0 || mut[i+2] != 1 {
			continue
		}
		code := mut[i+3]
		if code == 0x00 {
			pics++
			slices = -1
		}
		if code >= 0x01 && code <= 0xAF && pics == pictureIdx {
			slices++
			if slices == sliceIdx {
				// Zeroing slice bytes makes the VLD either hit an invalid
				// code or see a premature end-of-slice marker — both the
				// "damaged slice" cases concealment must handle.
				for j := i + 6; j < i+14 && j < len(mut); j++ {
					mut[j] = 0x00
				}
				return mut
			}
		}
	}
	t.Fatalf("slice %d of picture %d not found", sliceIdx, pictureIdx)
	return nil
}

func TestConcealCorruptSlice(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 96, Height: 64, Pictures: 7, GOPSize: 7})
	// Corrupt a middle slice of the P picture (decode order index 1).
	mut := corruptSlice(t, res.Data, 1, 2)

	// Without concealment: hard error.
	d, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.All(); err == nil {
		t.Fatal("corruption must fail without concealment")
	}

	// With concealment: the stream decodes fully.
	d2, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d2.Conceal = true
	frames, err := d2.All()
	if err != nil {
		t.Fatalf("concealed decode failed: %v", err)
	}
	if len(frames) != 7 {
		t.Fatalf("decoded %d frames, want 7", len(frames))
	}
	if d2.Concealed == 0 {
		t.Fatal("no macroblocks reported concealed")
	}
	// Quality: concealed output should still resemble the source (the
	// concealed row comes from the previous picture of a slow pan).
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		if p := frame.PSNR(src.Frame(i), f); p < 15 {
			t.Errorf("frame %d PSNR %.1f dB — concealment destroyed the picture", i, p)
		}
	}
}

func TestConcealFirstIntraWithoutReference(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 4, GOPSize: 4})
	// Corrupt a slice of the very first I picture: no reference exists,
	// so concealment falls back to grey and decode still completes.
	mut := corruptSlice(t, res.Data, 0, 1)
	d, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d.Conceal = true
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	if d.Concealed == 0 {
		t.Fatal("nothing concealed")
	}
}

// removeSlice physically excises the bytes of the given slice (scan
// order) of the given picture — startcode through the next startcode —
// modelling packet loss rather than corruption.
func removeSlice(t *testing.T, data []byte, pictureIdx, sliceIdx int) []byte {
	t.Helper()
	find := func(from int) int {
		for i := from; i+3 < len(data); i++ {
			if data[i] == 0 && data[i+1] == 0 && data[i+2] == 1 {
				return i
			}
		}
		return -1
	}
	pics, slices := -1, -1
	for i := find(0); i >= 0; i = find(i + 4) {
		code := data[i+3]
		if code == 0x00 {
			pics++
			slices = -1
		}
		if code >= 0x01 && code <= 0xAF && pics == pictureIdx {
			slices++
			if slices == sliceIdx {
				end := find(i + 4)
				if end < 0 {
					end = len(data)
				}
				out := append([]byte(nil), data[:i]...)
				return append(out, data[end:]...)
			}
		}
	}
	t.Fatalf("slice %d of picture %d not found", sliceIdx, pictureIdx)
	return nil
}

// TestConcealFirstSliceDropped pins coverage tracking when the FIRST
// slice of a picture is lost outright: the picture opens with no row-0
// data, coverage must notice the leading hole, and concealment fills it
// from the reference.
func TestConcealFirstSliceDropped(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 96, Height: 64, Pictures: 7, GOPSize: 7})
	mut := removeSlice(t, res.Data, 1, 0) // P picture, first slice

	// Without concealment the hole is a hard error.
	d, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.All(); err == nil {
		t.Fatal("missing first slice must fail without concealment")
	}

	d2, err := New(mut)
	if err != nil {
		t.Fatal(err)
	}
	d2.Conceal = true
	frames, err := d2.All()
	if err != nil {
		t.Fatalf("concealed decode failed: %v", err)
	}
	if len(frames) != 7 {
		t.Fatalf("decoded %d frames, want 7", len(frames))
	}
	// The first macroblock row is 96/16 = 6 macroblocks; at least those
	// must have been concealed.
	if d2.Concealed < 6 {
		t.Fatalf("concealed %d macroblocks, want at least the 6 of row 0", d2.Concealed)
	}
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		if p := frame.PSNR(src.Frame(i), f); p < 15 {
			t.Errorf("frame %d PSNR %.1f dB after first-slice loss", i, p)
		}
	}
}

func TestConcealMBGreyFallback(t *testing.T) {
	dst := frame.New(32, 32)
	ConcealMB(dst, nil, 1, 1)
	if dst.Y[17*dst.CodedW+17] != 128 || dst.Cb[9*dst.CodedW/2+9] != 128 {
		t.Fatal("grey fallback not applied")
	}
	// Mismatched reference geometry also falls back to grey — in every
	// mismatch direction, and without consulting the reference's pixels.
	for _, ref := range []*frame.Frame{
		frame.New(64, 64), // both dimensions differ
		frame.New(64, 32), // width only
		frame.New(32, 64), // height only
	} {
		for i := range ref.Y {
			ref.Y[i] = 201 // sentinel: must never leak into dst
		}
		dst := frame.New(32, 32)
		ConcealMB(dst, ref, 0, 0)
		if dst.Y[0] != 128 || dst.Y[15*dst.CodedW+15] != 128 {
			t.Fatalf("ref %dx%d: mismatch should fall back to grey", ref.CodedW, ref.CodedH)
		}
		if dst.Cb[0] != 128 || dst.Cr[7*dst.CodedW/2+7] != 128 {
			t.Fatalf("ref %dx%d: chroma not grey", ref.CodedW, ref.CodedH)
		}
	}
}

func TestConcealMBCopiesReference(t *testing.T) {
	ref := frame.New(32, 32)
	for i := range ref.Y {
		ref.Y[i] = 77
	}
	dst := frame.New(32, 32)
	ConcealMB(dst, ref, 1, 0)
	if dst.Y[16] != 77 || dst.Y[0] != 0 {
		t.Fatalf("copy wrong: %d %d", dst.Y[16], dst.Y[0])
	}
}
