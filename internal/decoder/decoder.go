package decoder

import (
	"errors"
	"fmt"
	"io"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// Decoder decodes an MPEG-2 video elementary stream sequentially,
// returning frames in display order. It is the correctness oracle the
// parallel implementations are tested against, and the P=1 baseline of
// the speedup measurements.
type Decoder struct {
	r   *bits.Reader
	Seq mpeg2.SequenceHeader

	// Tracer, when non-nil, receives the reconstruction reference stream.
	Tracer memtrace.Tracer
	// Proc is the processor id reported to the tracer.
	Proc int
	// Conceal makes slice errors non-fatal: damaged slices are skipped
	// and their macroblocks concealed from the reference picture.
	Conceal bool

	refOld, refNew *frame.Frame // reference frames in decode order
	held           *frame.Frame // reference awaiting display
	out            []*frame.Frame
	displayIdx     int
	done           bool
	mbScratch      []mpeg2.MB // macroblock buffer recycled across slices

	// Work accumulates reconstruction work counters across the stream.
	Work WorkStats
	// Pictures counts decoded pictures.
	Pictures int
	// Concealed counts macroblocks recovered by concealment.
	Concealed int
}

// New parses up to and including the first sequence header and returns a
// ready decoder.
func New(data []byte) (*Decoder, error) {
	d := &Decoder{r: bits.NewReader(data)}
	for {
		code, err := d.r.NextStartCode()
		if err != nil {
			return nil, fmt.Errorf("decoder: no sequence header: %w", err)
		}
		d.r.Skip(32)
		if code == mpeg2.SequenceHeaderCode {
			seq, err := mpeg2.ParseSequenceHeader(d.r)
			if err != nil {
				return nil, err
			}
			d.Seq = seq
			return d, nil
		}
	}
}

// Next returns the next frame in display order, or io.EOF after the last.
func (d *Decoder) Next() (*frame.Frame, error) {
	for len(d.out) == 0 {
		if d.done {
			return nil, io.EOF
		}
		if err := d.step(); err != nil {
			return nil, err
		}
	}
	f := d.out[0]
	d.out = d.out[1:]
	f.DisplayIndex = d.displayIdx
	d.displayIdx++
	return f, nil
}

// All decodes the remaining stream and returns every frame in display
// order.
func (d *Decoder) All() ([]*frame.Frame, error) {
	var fs []*frame.Frame
	for {
		f, err := d.Next()
		if errors.Is(err, io.EOF) {
			return fs, nil
		}
		if err != nil {
			return fs, err
		}
		fs = append(fs, f)
	}
}

// step advances past one syntactic unit (picture, header, or end).
func (d *Decoder) step() error {
	code, err := d.r.NextStartCode()
	if err != nil {
		// Stream ended without a sequence_end_code: flush anyway.
		d.flush()
		d.done = true
		return nil
	}
	d.r.Skip(32)
	switch {
	case code == mpeg2.SequenceHeaderCode:
		seq, err := mpeg2.ParseSequenceHeader(d.r)
		if err != nil {
			return err
		}
		if seq.Width != d.Seq.Width || seq.Height != d.Seq.Height {
			return fmt.Errorf("decoder: mid-stream size change %dx%d -> %dx%d",
				d.Seq.Width, d.Seq.Height, seq.Width, seq.Height)
		}
		d.Seq = seq
	case code == mpeg2.GroupStartCode:
		if _, err := mpeg2.ParseGOPHeader(d.r); err != nil {
			return err
		}
	case code == mpeg2.PictureStartCode:
		return d.decodePicture()
	case code == mpeg2.SequenceEndCode:
		d.flush()
		d.done = true
	case code == mpeg2.UserDataStartCode || code == mpeg2.ExtensionStartCode:
		// Skipped; NextStartCode will pass over the payload.
	}
	return nil
}

func (d *Decoder) flush() {
	if d.held != nil {
		d.out = append(d.out, d.held)
		d.held = nil
	}
}

func (d *Decoder) decodePicture() error {
	ph, err := mpeg2.ParsePictureHeader(d.r)
	if err != nil {
		return err
	}
	dst := frame.New(d.Seq.Width, d.Seq.Height)
	dst.PictureType = "?IPB"[int(ph.Type)]
	dst.TemporalRef = ph.TemporalReference

	refs := Refs{}
	switch ph.Type {
	case vlc.CodingP:
		refs.Fwd = d.refNew
	case vlc.CodingB:
		refs.Fwd, refs.Bwd = d.refOld, d.refNew
	}

	params := PictureParams(&d.Seq, &ph)
	cov := newCoverage(params.MBWidth, params.MBHeight)
	for {
		code, err := d.r.NextStartCode()
		if err != nil {
			break // picture data ends with the stream
		}
		if code < mpeg2.SliceStartMin || code > mpeg2.SliceStartMax {
			break
		}
		d.r.Skip(32)
		ds, err := mpeg2.DecodeSliceInto(d.r, &params, int(code)-1, d.mbScratch)
		d.mbScratch = ds.MBs // keep the grown buffer for the next slice
		if err == nil {
			var w WorkStats
			w, err = ReconSlice(&d.Seq, &ph, refs, dst, &ds, d.Proc, d.Tracer)
			d.Work.Add(w)
			if err == nil {
				cov.markSlice(&ds)
			}
		}
		if err != nil {
			if !d.Conceal {
				return err
			}
			// Skip the damaged slice; NextStartCode resynchronizes.
		}
	}
	if cov.n < params.MBWidth*params.MBHeight {
		if !d.Conceal {
			return fmt.Errorf("decoder: %s picture %d covered %d of %d macroblocks",
				ph.Type, ph.TemporalReference, cov.n, params.MBWidth*params.MBHeight)
		}
		d.Concealed += cov.concealMissing(dst, refs)
	}
	d.Pictures++

	if ph.Type == vlc.CodingB {
		d.out = append(d.out, dst)
		return nil
	}
	// New reference picture: the previously held reference is now safe to
	// display, and the reference window slides.
	d.flush()
	d.held = dst
	d.refOld, d.refNew = d.refNew, dst
	return nil
}
