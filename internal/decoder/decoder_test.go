package decoder

import (
	"errors"
	"io"
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
)

func testStream(t *testing.T, cfg encoder.Config) *encoder.Result {
	t.Helper()
	res, err := encoder.EncodeSequence(cfg, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewRejectsGarbage(t *testing.T) {
	if _, err := New([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("empty must fail")
	}
}

func TestNextAfterEOF(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 1, GOPSize: 1})
	d, err := New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF must be sticky, got %v", err)
	}
}

func TestDisplayIndexSequential(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 8, GOPSize: 4})
	d, err := New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		if f.DisplayIndex != i {
			t.Fatalf("frame %d has DisplayIndex %d", i, f.DisplayIndex)
		}
	}
	if d.Pictures != 8 {
		t.Fatalf("Pictures = %d", d.Pictures)
	}
	if d.Work.MBs != 8*4*3 {
		t.Fatalf("Work.MBs = %d, want %d", d.Work.MBs, 8*4*3)
	}
}

func TestWorkStatsPopulated(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 96, Height: 64, Pictures: 4, GOPSize: 4})
	d, err := New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.All(); err != nil {
		t.Fatal(err)
	}
	w := d.Work
	if w.IntraBlocks == 0 || w.Coefs == 0 {
		t.Fatalf("intra work not counted: %+v", w)
	}
	if w.PredMBs == 0 {
		t.Fatalf("prediction work not counted: %+v", w)
	}
}

func TestCorruptedStreamsNeverPanic(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 96, Height: 64, Pictures: 7, GOPSize: 7})
	data := res.Data
	// Flip bytes at many positions; decode must return (error or short
	// output), never panic or loop forever.
	for pos := 20; pos < len(data); pos += 37 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x5A
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic decoding corruption at byte %d: %v", pos, r)
				}
			}()
			d, err := New(mut)
			if err != nil {
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := d.Next(); err != nil {
					return
				}
			}
		}()
	}
}

func TestTruncatedStreamsNeverPanic(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 4, GOPSize: 4})
	for cut := 0; cut < len(res.Data); cut += 11 {
		d, err := New(res.Data[:cut])
		if err != nil {
			continue
		}
		for {
			if _, err := d.Next(); err != nil {
				break
			}
		}
	}
}

func TestTracerReceivesReferences(t *testing.T) {
	res := testStream(t, encoder.Config{Width: 64, Height: 48, Pictures: 4, GOPSize: 4})
	d, err := New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	rec := memtrace.NewRecorder()
	d.Tracer = rec
	d.Proc = 3
	if _, err := d.All(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	var reads, writes int
	for _, e := range evs {
		if e.Proc != 3 {
			t.Fatalf("event proc %d, want 3", e.Proc)
		}
		if e.Write {
			writes++
		} else {
			reads++
		}
	}
	if writes == 0 || reads == 0 {
		t.Fatalf("reads=%d writes=%d — both expected", reads, writes)
	}
	// Frame-plane write volume: every macroblock writes 16*16 luma +
	// 2*8*8 chroma bytes; 4 pictures of 12 MBs. (Scratch-buffer writes
	// are additional trace events at small synthetic addresses.)
	wantFrameWrites := 4 * 12 * (256 + 128)
	var gotWrite int
	for _, e := range evs {
		if e.Write {
			gotWrite += int(e.Size)
		}
	}
	if gotWrite < wantFrameWrites {
		t.Fatalf("write bytes %d < frame-plane minimum %d", gotWrite, wantFrameWrites)
	}
}

func TestDecodeMatchesEncoderReconstruction(t *testing.T) {
	// The decoder must agree with the encoder's local reconstruction:
	// decode twice and compare bit-exactness across runs (determinism),
	// and P-picture drift must be bounded by quantization error only —
	// tested indirectly via PSNR stability across a long GOP.
	cfg := encoder.Config{Width: 96, Height: 64, Pictures: 31, GOPSize: 31, QScaleI: 6, QScaleP: 8, QScaleB: 10}
	res := testStream(t, cfg)
	d1, _ := New(res.Data)
	f1, err := d1.All()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := New(res.Data)
	f2, err := d2.All()
	if err != nil {
		t.Fatal(err)
	}
	src := frame.NewSynth(96, 64)
	var first, last float64
	for i := range f1 {
		if !f1[i].Equal(f2[i]) {
			t.Fatalf("decode not deterministic at frame %d", i)
		}
		p := frame.PSNR(src.Frame(i), f1[i])
		if i == 0 {
			first = p
		}
		last = p
	}
	// No unbounded drift across the GOP: the final P-chain picture is
	// within a few dB of the first.
	if last < first-9 {
		t.Fatalf("drift: first %.1f dB, last %.1f dB", first, last)
	}
}
