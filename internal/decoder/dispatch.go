package decoder

import "mpeg2par/internal/kernels"

// asmStore routes the clamped block stores through the architecture
// kernels in store_*.s. It is driven by the kernel dispatch level:
// LevelASM enables it (where this architecture has store kernels),
// LevelScalar additionally forces the branchy per-pixel loops so the
// three tiers are independently testable.
var asmStore = false

func init() {
	kernels.Register(func(l kernels.Level) {
		asmStore = haveStoreAsm && l == kernels.LevelASM
		scalarStore = l == kernels.LevelScalar
	})
}
