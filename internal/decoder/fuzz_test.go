package decoder

import (
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

// FuzzDecode drives the sequential decoder (with and without concealment)
// over mutated streams: it must never panic or hang, only return errors.
// The seed corpus contains real encoded streams so mutations explore deep
// syntax paths. Run long with: go test -fuzz=FuzzDecode ./internal/decoder
func FuzzDecode(f *testing.F) {
	for _, cfg := range []encoder.Config{
		{Width: 48, Height: 32, Pictures: 4, GOPSize: 4},
		{Width: 48, Height: 32, Pictures: 4, GOPSize: 4, Interlaced: true},
		{Width: 32, Height: 32, Pictures: 2, GOPSize: 2, IntraVLCFormat: true, AlternateScan: true},
	} {
		res, err := encoder.EncodeSequence(cfg, frame.NewSynth(cfg.Width, cfg.Height))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(res.Data)
	}
	f.Add([]byte{0, 0, 1, 0xB3, 0x02, 0x00, 0x20, 0x14, 0xFF, 0xFF, 0xE0, 0xA0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		for _, conceal := range []bool{false, true} {
			d, err := New(data)
			if err != nil {
				continue
			}
			d.Conceal = conceal
			for i := 0; i < 64; i++ {
				if _, err := d.Next(); err != nil {
					break
				}
			}
		}
	})
}
