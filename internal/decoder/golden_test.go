package decoder

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// TestGoldenHandcraftedStream builds a one-picture stream from the syntax
// primitives directly — a 16×16 I picture whose single macroblock has a
// known flat DC — and checks the decoder produces the exact pixel values
// the standard's arithmetic dictates.
func TestGoldenHandcraftedStream(t *testing.T) {
	var w bits.Writer
	seq := mpeg2.SequenceHeader{Width: 16, Height: 16}
	seq.Write(&w)
	(&mpeg2.GOPHeader{Closed: true}).Write(&w)
	ph := mpeg2.PictureHeader{
		Type:              vlc.CodingI,
		PictureStructure:  mpeg2.FramePicture,
		FramePredFrameDCT: true,
		ProgressiveFrame:  true,
		FCode:             [2][2]int{{15, 15}, {15, 15}},
	}
	ph.Write(&w)

	params := PictureParams(&seq, &ph)
	mb := mpeg2.MB{Addr: 0, QScaleCode: 2, Type: vlc.MBType{Intra: true}}
	// Quantized DC 200 with intra_dc_precision 0 dequantizes to
	// 200*8 = 1600; the IDCT of a DC-only block is 1600/8 = 200 flat.
	for b := 0; b < 6; b++ {
		mb.Blocks[b][0] = 200
	}
	if err := mpeg2.EncodeSlice(&w, &params, 0, 2, []mpeg2.MB{mb}); err != nil {
		t.Fatal(err)
	}
	w.StartCode(mpeg2.SequenceEndCode)

	d, err := New(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("%d frames", len(frames))
	}
	f := frames[0]
	for i, v := range f.Y {
		if v != 200 {
			t.Fatalf("Y[%d] = %d, want 200", i, v)
		}
	}
	for i := range f.Cb {
		if f.Cb[i] != 200 || f.Cr[i] != 200 {
			t.Fatalf("chroma[%d] = %d/%d, want 200", i, f.Cb[i], f.Cr[i])
		}
	}
}

// TestGoldenPPictureZeroResidual: a P picture whose only macroblock is
// skipped... cannot be (first MB can't skip), so it carries a zero vector
// and no residual: the output must equal the reference exactly.
func TestGoldenPPictureZeroResidual(t *testing.T) {
	var w bits.Writer
	seq := mpeg2.SequenceHeader{Width: 16, Height: 16}
	seq.Write(&w)
	(&mpeg2.GOPHeader{Closed: true}).Write(&w)

	iph := mpeg2.PictureHeader{
		Type: vlc.CodingI, PictureStructure: mpeg2.FramePicture,
		FramePredFrameDCT: true, ProgressiveFrame: true,
		FCode: [2][2]int{{15, 15}, {15, 15}},
	}
	iph.Write(&w)
	iparams := PictureParams(&seq, &iph)
	imb := mpeg2.MB{Addr: 0, QScaleCode: 2, Type: vlc.MBType{Intra: true}}
	for b := 0; b < 6; b++ {
		imb.Blocks[b][0] = 128 + int32(b)
	}
	if err := mpeg2.EncodeSlice(&w, &iparams, 0, 2, []mpeg2.MB{imb}); err != nil {
		t.Fatal(err)
	}

	pph := mpeg2.PictureHeader{
		Type: vlc.CodingP, TemporalReference: 1,
		PictureStructure: mpeg2.FramePicture, FramePredFrameDCT: true,
		ProgressiveFrame: true, FCode: [2][2]int{{1, 1}, {15, 15}},
	}
	pph.Write(&w)
	pparams := PictureParams(&seq, &pph)
	pmb := mpeg2.MB{Addr: 0, QScaleCode: 2, Type: vlc.MBType{MotionForward: true}}
	if err := mpeg2.EncodeSlice(&w, &pparams, 0, 2, []mpeg2.MB{pmb}); err != nil {
		t.Fatal(err)
	}
	w.StartCode(mpeg2.SequenceEndCode)

	d, err := New(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("%d frames", len(frames))
	}
	if !frames[0].Equal(frames[1]) {
		t.Fatal("zero-vector zero-residual P picture must replicate the reference")
	}
}

// TestEncoderDeterminism: the same configuration and source must produce
// byte-identical streams (the whole experiment pipeline depends on it).
func TestEncoderDeterminism(t *testing.T) {
	cfg := encoder.Config{Width: 112, Height: 80, Pictures: 7, GOPSize: 7, BitRate: 2_000_000}
	a, err := encoder.EncodeSequence(cfg, frame.NewSynth(112, 80))
	if err != nil {
		t.Fatal(err)
	}
	b, err := encoder.EncodeSequence(cfg, frame.NewSynth(112, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != len(b.Data) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}

// TestSparseKernelsBitExact decodes the same multi-GOP I/P/B stream with
// the sparsity-aware kernels and with the dense quant.Inverse+dct.Inverse
// reference pair, and requires byte-identical frames — no PSNR tolerance.
// This is the whole-pipeline counterpart of the per-block equivalence
// tests in internal/quant and internal/dct.
func TestSparseKernelsBitExact(t *testing.T) {
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 176, Height: 112, Pictures: 13, GOPSize: 13,
	}, frame.NewSynth(176, 112))
	if err != nil {
		t.Fatal(err)
	}
	decodeAll := func(dense bool) []*frame.Frame {
		t.Helper()
		prev := denseKernels
		denseKernels = dense
		defer func() { denseKernels = prev }()
		d, err := New(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := d.All()
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	sparse := decodeAll(false)
	dense := decodeAll(true)
	if len(sparse) != len(dense) {
		t.Fatalf("sparse decoded %d frames, dense %d", len(sparse), len(dense))
	}
	for i := range sparse {
		if !sparse[i].Equal(dense[i]) {
			t.Fatalf("frame %d: sparse kernels diverge from dense reference", i)
		}
	}
}

// TestSWARKernelsBitExact decodes a multi-GOP I/P/B stream twice — once
// with every fast kernel enabled (SWAR motion compensation, branchless
// stores, word-at-a-time scan, sparse dequant+IDCT) and once with every
// scalar/dense reference forced — and requires byte-identical frames.
// This is the whole-pipeline counterpart of the per-kernel equivalence
// sweeps in internal/motion and internal/bits.
func TestSWARKernelsBitExact(t *testing.T) {
	streams := map[string]encoder.Config{
		"progressive": {Width: 176, Height: 112, Pictures: 13, GOPSize: 13},
		"interlaced":  {Width: 176, Height: 112, Pictures: 13, GOPSize: 13, Interlaced: true},
	}
	for name, cfg := range streams {
		t.Run(name, func(t *testing.T) { testSWARKernelsBitExact(t, cfg) })
	}
}

func testSWARKernelsBitExact(t *testing.T, cfg encoder.Config) {
	var src encoder.Source = frame.NewSynth(cfg.Width, cfg.Height)
	if cfg.Interlaced {
		src = frame.NewInterlacedSynth(cfg.Width, cfg.Height)
	}
	res, err := encoder.EncodeSequence(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	decodeAll := func(scalar bool) []*frame.Frame {
		t.Helper()
		prevMC, prevScan := motion.ScalarKernels, bits.ScalarScan
		prevStore, prevDense := scalarStore, denseKernels
		motion.ScalarKernels, bits.ScalarScan = scalar, scalar
		scalarStore, denseKernels = scalar, scalar
		defer func() {
			motion.ScalarKernels, bits.ScalarScan = prevMC, prevScan
			scalarStore, denseKernels = prevStore, prevDense
		}()
		d, err := New(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := d.All()
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	fast := decodeAll(false)
	ref := decodeAll(true)
	if len(fast) != len(ref) {
		t.Fatalf("fast kernels decoded %d frames, scalar reference %d", len(fast), len(ref))
	}
	for i := range fast {
		if !fast[i].Equal(ref[i]) {
			t.Fatalf("frame %d: SWAR kernels diverge from scalar reference", i)
		}
	}
}
