package decoder

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// PictureDecoder decodes a run of pictures (e.g. one closed GOP) given an
// externally supplied sequence header, managing reference frames and
// display reordering. It is the building block the GOP-level parallel
// decoder gives each worker.
type PictureDecoder struct {
	Seq    *mpeg2.SequenceHeader
	Tracer memtrace.Tracer
	Proc   int
	// Conceal makes slice errors non-fatal: damaged or missing slices
	// are skipped and their macroblocks filled by zero-vector temporal
	// concealment (grey when no reference exists).
	Conceal bool
	// Alloc provides destination frames; nil means frame.New. The GOP
	// workers pass a counting pool allocator here.
	Alloc func() *frame.Frame
	// OnRelease, when non-nil, is called exactly once per reference frame
	// when the decoder stops holding it for prediction (the frame may
	// still be queued for display — callers refcount across consumers).
	OnRelease func(*frame.Frame)

	refOld, refNew *frame.Frame
	held           *frame.Frame
	mbScratch      []mpeg2.MB // macroblock buffer recycled across slices

	Work     WorkStats
	Pictures int
	// Concealed counts macroblocks recovered by concealment.
	Concealed int
}

// Reset clears reference state (for reuse across independent GOPs),
// invoking OnRelease for the references being dropped. It returns any
// still-held reference so the caller can route it to display.
func (pd *PictureDecoder) Reset() *frame.Frame {
	h := pd.held
	if pd.OnRelease != nil {
		if pd.refOld != nil {
			pd.OnRelease(pd.refOld)
		}
		if pd.refNew != nil {
			pd.OnRelease(pd.refNew)
		}
	}
	pd.refOld, pd.refNew, pd.held = nil, nil, nil
	return h
}

// References returns the frames currently retained as references or held
// for display, for lifetime accounting.
func (pd *PictureDecoder) References() []*frame.Frame {
	var fs []*frame.Frame
	for _, f := range []*frame.Frame{pd.refOld, pd.refNew, pd.held} {
		if f != nil {
			fs = append(fs, f)
		}
	}
	return fs
}

func (pd *PictureDecoder) newFrame() *frame.Frame {
	if pd.Alloc != nil {
		return pd.Alloc()
	}
	return frame.New(pd.Seq.Width, pd.Seq.Height)
}

// DecodePicture parses and reconstructs one picture; the reader must be
// positioned just after the picture startcode. It returns the frames that
// became displayable (in display order): zero or one reference frames
// released by reordering, and/or the B frame itself.
func (pd *PictureDecoder) DecodePicture(r *bits.Reader) ([]*frame.Frame, error) {
	ph, err := mpeg2.ParsePictureHeader(r)
	if err != nil {
		return nil, err
	}
	dst := pd.newFrame()
	dst.PictureType = "?IPB"[int(ph.Type)]
	dst.TemporalRef = ph.TemporalReference
	if ph.Type != vlc.CodingB && pd.OnRelease != nil {
		// Reference frames carry one extra retain for the decoder's own
		// prediction use; OnRelease signals the matching release.
		dst.Retain(1)
	}

	refs := Refs{}
	switch ph.Type {
	case vlc.CodingP:
		refs.Fwd = pd.refNew
	case vlc.CodingB:
		refs.Fwd, refs.Bwd = pd.refOld, pd.refNew
	}
	params := PictureParams(pd.Seq, &ph)
	cov := newCoverage(params.MBWidth, params.MBHeight)
	for {
		code, err := r.NextStartCode()
		if err != nil {
			break
		}
		if code < mpeg2.SliceStartMin || code > mpeg2.SliceStartMax {
			break
		}
		r.Skip(32)
		ds, err := mpeg2.DecodeSliceInto(r, &params, int(code)-1, pd.mbScratch)
		pd.mbScratch = ds.MBs // keep the grown buffer for the next slice
		if err == nil {
			var w WorkStats
			w, err = ReconSlice(pd.Seq, &ph, refs, dst, &ds, pd.Proc, pd.Tracer)
			pd.Work.Add(w)
			if err == nil {
				cov.markSlice(&ds)
			}
		}
		if err != nil {
			if !pd.Conceal {
				return nil, err
			}
			// Resynchronize at the next startcode; the damaged slice's
			// macroblocks are concealed after the slice loop.
		}
	}
	if cov.n < params.MBWidth*params.MBHeight {
		if !pd.Conceal {
			return nil, fmt.Errorf("decoder: %s picture %d covered %d of %d macroblocks",
				ph.Type, ph.TemporalReference, cov.n, params.MBWidth*params.MBHeight)
		}
		pd.Concealed += cov.concealMissing(dst, refs)
	}
	pd.Pictures++

	if ph.Type == vlc.CodingB {
		return []*frame.Frame{dst}, nil
	}
	var out []*frame.Frame
	if pd.held != nil {
		out = append(out, pd.held)
	}
	pd.held = dst
	if pd.refOld != nil && pd.OnRelease != nil {
		pd.OnRelease(pd.refOld) // displaced: no future picture references it
	}
	pd.refOld, pd.refNew = pd.refNew, dst
	return out, nil
}

// Flush returns the final held reference frame, if any.
func (pd *PictureDecoder) Flush() *frame.Frame {
	f := pd.held
	pd.held = nil
	return f
}
