// Package decoder implements MPEG-2 video picture reconstruction and a
// sequential elementary-stream decoder.
//
// The slice reconstruction entry point (ReconSlice) is deliberately free
// of decoder state: it takes the picture parameters, the two reference
// frames and a destination frame, so the parallel implementations in
// internal/core can call it concurrently from many workers — slices of one
// picture touch disjoint destination rows, and reference frames are
// read-only by construction.
package decoder

import (
	"encoding/binary"
	"fmt"

	"mpeg2par/internal/dct"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/quant"
	"mpeg2par/internal/vlc"
)

// Refs holds the reference frames for prediction. For P pictures only Fwd
// is used (the most recent reference); for B pictures Fwd is the past and
// Bwd the future reference.
type Refs struct {
	Fwd, Bwd *frame.Frame
}

// WorkStats counts the work a reconstruction performed; the deterministic
// scheduler uses these as its pixie-style "ideal time" work units.
type WorkStats struct {
	MBs         int // macroblocks reconstructed
	IntraBlocks int // intra-coded blocks (full IDCT path)
	CodedBlocks int // non-intra coded blocks (IDCT + add)
	Coefs       int // non-zero coefficients dequantized
	PredMBs     int // motion-compensated macroblocks
	BidirMBs    int // macroblocks averaged from two predictions
}

// Add accumulates other into s.
func (s *WorkStats) Add(other WorkStats) {
	s.MBs += other.MBs
	s.IntraBlocks += other.IntraBlocks
	s.CodedBlocks += other.CodedBlocks
	s.Coefs += other.Coefs
	s.PredMBs += other.PredMBs
	s.BidirMBs += other.BidirMBs
}

// PictureParams derives the slice-layer parameters from the headers.
func PictureParams(seq *mpeg2.SequenceHeader, ph *mpeg2.PictureHeader) mpeg2.PictureParams {
	return mpeg2.PictureParams{
		MBWidth:           seq.MBWidth(),
		MBHeight:          seq.MBHeight(),
		Type:              ph.Type,
		FCode:             ph.FCode,
		IntraDCPrecision:  ph.IntraDCPrecision,
		QScaleType:        ph.QScaleType,
		IntraVLCFormat:    ph.IntraVLCFormat,
		AlternateScan:     ph.AlternateScan,
		FramePredFrameDCT: ph.FramePredFrameDCT,
	}
}

// ReconSlice reconstructs every macroblock of ds into dst. proc and tr are
// the tracing hooks (tr may be nil). It returns the work performed.
func ReconSlice(seq *mpeg2.SequenceHeader, ph *mpeg2.PictureHeader, refs Refs, dst *frame.Frame, ds *mpeg2.DecodedSlice, proc int, tr memtrace.Tracer) (WorkStats, error) {
	var st WorkStats
	if ph.Type != vlc.CodingI && refs.Fwd == nil {
		return st, fmt.Errorf("decoder: %s picture without forward reference", ph.Type)
	}
	if ph.Type == vlc.CodingB && refs.Bwd == nil {
		return st, fmt.Errorf("decoder: B picture without backward reference")
	}
	mbw := seq.MBWidth()
	var pred, pred2 motion.MBPred
	for i := range ds.MBs {
		mb := &ds.MBs[i]
		mbx, mby := mb.Addr%mbw, mb.Addr/mbw
		if err := reconMB(seq, ph, refs, dst, mb, mbx, mby, &pred, &pred2, &st, proc, tr); err != nil {
			return st, fmt.Errorf("decoder: macroblock %d: %w", mb.Addr, err)
		}
		st.MBs++
	}
	return st, nil
}

// denseKernels forces the dense quant.Inverse + dct.Inverse pair in place
// of the sparsity-aware kernels. The golden tests flip it to prove both
// paths reconstruct bit-identical frames; it stays false in production.
var denseKernels = false

// inverseBlock runs dequantization plus IDCT on one coded block. nz must
// be the exact count of nonzero quantized coefficients (it bounds the
// dequant scan and is sourced from the VLC stage when available).
func inverseBlock(blk *[64]int32, p quant.Params, nz int) {
	if denseKernels {
		quant.Inverse(blk, p)
		dct.Inverse(blk)
		return
	}
	rowMask, dcOnly := quant.InverseSparse(blk, p, nz)
	dct.InverseSparse(blk, rowMask, dcOnly)
}

// blockNNZ returns the nonzero-coefficient count of block b, trusting the
// VLC stage's record when present and rescanning otherwise (hand-built
// macroblocks in tests, synthetic streams).
func blockNNZ(mb *mpeg2.MB, b int) int {
	if mb.SparseValid {
		return int(mb.NNZ[b])
	}
	return countNonZero(&mb.Blocks[b])
}

func reconMB(seq *mpeg2.SequenceHeader, ph *mpeg2.PictureHeader, refs Refs, dst *frame.Frame, mb *mpeg2.MB, mbx, mby int, pred, pred2 *motion.MBPred, st *WorkStats, proc int, tr memtrace.Tracer) error {
	scale := quant.Scale(mb.QScaleCode, ph.QScaleType)
	if mb.Type.Intra {
		p := quant.Params{Matrix: &seq.IntraMatrix, Scale: scale, Intra: true, DCPrecision: ph.IntraDCPrecision}
		for b := 0; b < 6; b++ {
			blk := mb.Blocks[b]
			nz := blockNNZ(mb, b)
			st.Coefs += nz
			inverseBlock(&blk, p, nz)
			storeIntraBlock(dst, &blk, mbx, mby, b, mb.FieldDCT)
			st.IntraBlocks++
			traceBlock(proc, true, nz, tr)
		}
		traceMBWrite(dst, mbx, mby, proc, tr)
		return nil
	}

	// Build the prediction. With FieldMotion each direction carries two
	// field vectors (field-unit verticals); trace extents approximate the
	// field reads with the frame-scaled first vector.
	predFwd := func(dst *motion.MBPred) {
		if mb.FieldMotion {
			motion.PredictMBField(dst, refs.Fwd, mbx, mby, mb.FieldSelFwd, mb.MVFwd, mb.MVFwd2)
			traceMCRead(refs.Fwd, mbx, mby, motion.MV{X: mb.MVFwd.X, Y: 2 * mb.MVFwd.Y}, proc, tr)
			return
		}
		motion.PredictMB(dst, refs.Fwd, mbx, mby, mb.MVFwd)
		traceMCRead(refs.Fwd, mbx, mby, mb.MVFwd, proc, tr)
	}
	predBwd := func(dst *motion.MBPred) {
		if mb.FieldMotion {
			motion.PredictMBField(dst, refs.Bwd, mbx, mby, mb.FieldSelBwd, mb.MVBwd, mb.MVBwd2)
			traceMCRead(refs.Bwd, mbx, mby, motion.MV{X: mb.MVBwd.X, Y: 2 * mb.MVBwd.Y}, proc, tr)
			return
		}
		motion.PredictMB(dst, refs.Bwd, mbx, mby, mb.MVBwd)
		traceMCRead(refs.Bwd, mbx, mby, mb.MVBwd, proc, tr)
	}
	switch ph.Type {
	case vlc.CodingP:
		// A P macroblock without a forward vector predicts with the zero
		// vector (mb.MVFwd is zero in that case by construction).
		predFwd(pred)
		st.PredMBs++
	case vlc.CodingB:
		switch {
		case mb.Type.MotionForward && mb.Type.MotionBackward:
			predFwd(pred)
			predBwd(pred2)
			motion.AverageMB(pred, pred, pred2)
			st.PredMBs++
			st.BidirMBs++
		case mb.Type.MotionBackward:
			predBwd(pred)
			st.PredMBs++
		case mb.Type.MotionForward:
			predFwd(pred)
			st.PredMBs++
		default:
			return fmt.Errorf("B macroblock with no prediction direction")
		}
	default:
		return fmt.Errorf("non-intra macroblock in I picture")
	}

	// Add residuals for coded blocks; copy prediction elsewhere.
	p := quant.Params{Matrix: &seq.NonIntraMatrix, Scale: scale, Intra: false}
	tracePred(proc, tr)
	for b := 0; b < 6; b++ {
		coded := mb.CBP&(1<<uint(5-b)) != 0
		if coded {
			blk := mb.Blocks[b]
			nz := blockNNZ(mb, b)
			st.Coefs += nz
			inverseBlock(&blk, p, nz)
			storePredBlock(dst, pred, &blk, mbx, mby, b, mb.FieldDCT)
			st.CodedBlocks++
			traceBlock(proc, false, nz, tr)
		} else {
			storePredBlock(dst, pred, nil, mbx, mby, b, mb.FieldDCT)
		}
	}
	traceMBWrite(dst, mbx, mby, proc, tr)
	return nil
}

func countNonZero(blk *[64]int32) int {
	n := 0
	for _, v := range blk {
		if v != 0 {
			n++
		}
	}
	return n
}

// blockGeometry returns the destination plane, top-left pixel position,
// stride and row step of block b of the macroblock at (mbx, mby). Under
// field DCT the four luma blocks hold one field each: blocks 0/1 the even
// lines, 2/3 the odd lines, stepping two frame lines per block row.
// Chroma blocks are always frame-organized in 4:2:0.
func blockGeometry(dst *frame.Frame, mbx, mby, b int, fieldDCT bool) (plane []uint8, x, y, stride, rowStep int) {
	if b < 4 {
		x = mbx*16 + (b&1)*8
		if fieldDCT {
			return dst.Y, x, mby*16 + (b >> 1), dst.YStride, 2
		}
		return dst.Y, x, mby*16 + (b>>1)*8, dst.YStride, 1
	}
	if b == 4 {
		return dst.Cb, mbx * 8, mby * 8, dst.CStride, 1
	}
	return dst.Cr, mbx * 8, mby * 8, dst.CStride, 1
}

// scalarStore forces the per-pixel branchy store/clamp loops in place of
// the unrolled branchless kernels. Like denseKernels it exists for the
// golden equivalence tests and stays false in production.
var scalarStore = false

func storeIntraBlock(dst *frame.Frame, blk *[64]int32, mbx, mby, b int, fieldDCT bool) {
	plane, x, y, stride, step := blockGeometry(dst, mbx, mby, b, fieldDCT)
	if scalarStore {
		for r := 0; r < 8; r++ {
			row := plane[(y+r*step)*stride+x:]
			for c := 0; c < 8; c++ {
				row[c] = clampPixelRef(blk[r*8+c])
			}
		}
		return
	}
	if asmStore {
		rs := step * stride
		o := y*stride + x
		_ = plane[o+7*rs+7] // one bounds check for the whole block
		storeIntraBlockAsm(&plane[o], rs, &blk[0])
		return
	}
	for r := 0; r < 8; r++ {
		storeIntraRow8(plane[(y+r*step)*stride+x:], blk[r*8:r*8+8])
	}
}

// predBlockView returns the prediction-buffer origin and strides matching
// block b's geometry (field or frame organized for luma).
func predBlockView(pred *motion.MBPred, b int, fieldDCT bool) (psrc []uint8, pstride int) {
	switch {
	case b < 4:
		if fieldDCT {
			return pred.Y[(b>>1)*16+(b&1)*8:], 32
		}
		return pred.Y[(b>>1)*8*16+(b&1)*8:], 16
	case b == 4:
		return pred.Cb[:], 8
	default:
		return pred.Cr[:], 8
	}
}

// storePredBlock writes prediction+residual (or prediction alone when blk
// is nil) for block b.
func storePredBlock(dst *frame.Frame, pred *motion.MBPred, blk *[64]int32, mbx, mby, b int, fieldDCT bool) {
	plane, x, y, stride, step := blockGeometry(dst, mbx, mby, b, fieldDCT)
	psrc, pstride := predBlockView(pred, b, fieldDCT)
	if blk == nil {
		le := binary.LittleEndian
		o, po, rowStep := y*stride+x, 0, step*stride
		for r := 0; r < 8; r++ {
			le.PutUint64(plane[o:o+8:o+8], le.Uint64(psrc[po:po+8]))
			o += rowStep
			po += pstride
		}
		return
	}
	if scalarStore {
		for r := 0; r < 8; r++ {
			row := plane[(y+r*step)*stride+x:]
			prow := psrc[r*pstride:]
			for c := 0; c < 8; c++ {
				row[c] = clampPixelRef(int32(prow[c]) + blk[r*8+c])
			}
		}
		return
	}
	if asmStore {
		rs := step * stride
		o := y*stride + x
		_ = plane[o+7*rs+7]
		_ = psrc[7*pstride+7]
		storePredBlockAsm(&plane[o], rs, &psrc[0], pstride, &blk[0])
		return
	}
	for r := 0; r < 8; r++ {
		storePredRow8(plane[(y+r*step)*stride+x:], psrc[r*pstride:], blk[r*8:r*8+8])
	}
}

// storeIntraRow8 clamps and stores one unrolled row of eight IDCT outputs.
func storeIntraRow8(row []uint8, res []int32) {
	row = row[:8:8]
	res = res[:8:8]
	row[0] = clampPixel(res[0])
	row[1] = clampPixel(res[1])
	row[2] = clampPixel(res[2])
	row[3] = clampPixel(res[3])
	row[4] = clampPixel(res[4])
	row[5] = clampPixel(res[5])
	row[6] = clampPixel(res[6])
	row[7] = clampPixel(res[7])
}

// storePredRow8 adds one unrolled row of eight residuals to the prediction
// and stores the clamped result.
func storePredRow8(row, prow []uint8, res []int32) {
	row = row[:8:8]
	prow = prow[:8:8]
	res = res[:8:8]
	row[0] = clampPixel(int32(prow[0]) + res[0])
	row[1] = clampPixel(int32(prow[1]) + res[1])
	row[2] = clampPixel(int32(prow[2]) + res[2])
	row[3] = clampPixel(int32(prow[3]) + res[3])
	row[4] = clampPixel(int32(prow[4]) + res[4])
	row[5] = clampPixel(int32(prow[5]) + res[5])
	row[6] = clampPixel(int32(prow[6]) + res[6])
	row[7] = clampPixel(int32(prow[7]) + res[7])
}

// clampPixel saturates to [0,255] without branches: the first step zeroes
// negatives (the arithmetic shift spreads the sign bit), the second turns
// any value above 255 into all-ones, which truncates to 255.
func clampPixel(v int32) uint8 {
	v &^= v >> 31
	v |= (255 - v) >> 31
	return uint8(v)
}

// clampPixelRef is the branchy reference clamp the scalar store path and
// the equivalence tests use.
func clampPixelRef(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// --- tracing ---------------------------------------------------------------

// Per-processor scratch regions (coefficient block, prediction buffer,
// VLD state) and the shared read-only tables (quantization matrices, VLC
// lookup tables). These small, hot structures are what forms the
// program's working set — the frame planes mostly stream through the
// cache — so the locality figures need them in the trace.
var (
	scratchKeys [64]byte
	tablesKey   byte
)

const (
	scratchBytes  = 4096
	tablesBytes   = 8192
	scratchCoef   = 0    // 256B coefficient block
	scratchPred   = 512  // 384B prediction buffer
	tabQuantIntra = 0    // 64B
	tabQuantInter = 64   // 64B
	tabVLC        = 1024 // VLC lookup region
)

func scratchBase(tr memtrace.Tracer, proc int) uint64 {
	return tr.Base(&scratchKeys[proc&63], scratchBytes)
}

// traceBlock records the hot-structure traffic of decoding one 8×8 block:
// VLC table lookups during VLD, the quantization matrix read, and the
// dequant + two IDCT passes over the coefficient buffer.
func traceBlock(proc int, intra bool, coefs int, tr memtrace.Tracer) {
	if tr == nil {
		return
	}
	sb := scratchBase(tr, proc)
	tb := tr.Base(&tablesKey, tablesBytes)
	// VLD: one table probe per coded coefficient, spread over the VLC
	// lookup region (positions vary with the code bits).
	for i := 0; i < coefs; i++ {
		tr.Access(proc, tb+tabVLC+uint64(i*37%4096), 4, false)
	}
	// Dequantization reads the weight matrix and scans the block.
	q := uint64(tabQuantInter)
	if intra {
		q = tabQuantIntra
	}
	tr.Access(proc, tb+q, 64, false)
	// Dequant pass + IDCT row and column passes over the 256B block.
	for pass := 0; pass < 3; pass++ {
		tr.Access(proc, sb+scratchCoef, 256, false)
		tr.Access(proc, sb+scratchCoef, 256, true)
	}
}

// tracePred records the prediction buffer traffic of one predicted
// macroblock: motion compensation writes it, reconstruction reads it.
func tracePred(proc int, tr memtrace.Tracer) {
	if tr == nil {
		return
	}
	sb := scratchBase(tr, proc)
	tr.Access(proc, sb+scratchPred, 384, true)
	tr.Access(proc, sb+scratchPred, 384, false)
}

// traceMBWrite records the destination extents of one reconstructed
// macroblock: 16 luma rows of 16 bytes and 8+8 chroma rows of 8 bytes.
func traceMBWrite(dst *frame.Frame, mbx, mby, proc int, tr memtrace.Tracer) {
	if tr == nil {
		return
	}
	yBase := tr.Base(&dst.Y[0], len(dst.Y))
	for r := 0; r < 16; r++ {
		tr.Access(proc, yBase+uint64((mby*16+r)*dst.YStride+mbx*16), 16, true)
	}
	cbBase := tr.Base(&dst.Cb[0], len(dst.Cb))
	crBase := tr.Base(&dst.Cr[0], len(dst.Cr))
	for r := 0; r < 8; r++ {
		off := uint64((mby*8+r)*dst.CStride + mbx*8)
		tr.Access(proc, cbBase+off, 8, true)
		tr.Access(proc, crBase+off, 8, true)
	}
}

// traceMCRead records the reference extents read by motion compensation:
// a (16+hx)×(16+hy) luma region and two half-size chroma regions.
func traceMCRead(ref *frame.Frame, mbx, mby int, mv motion.MV, proc int, tr memtrace.Tracer) {
	if tr == nil {
		return
	}
	yBase := tr.Base(&ref.Y[0], len(ref.Y))
	ix := clampInt(mbx*16+(mv.X>>1), 0, ref.CodedW-17)
	iy := clampInt(mby*16+(mv.Y>>1), 0, ref.CodedH-17)
	w := 16 + mv.X&1
	for r := 0; r < 16+mv.Y&1; r++ {
		tr.Access(proc, yBase+uint64((iy+r)*ref.YStride+ix), w, false)
	}
	c := mv.ChromaMV()
	cw, chH := ref.CodedW/2, ref.CodedH/2
	cx := clampInt(mbx*8+(c.X>>1), 0, cw-9)
	cy := clampInt(mby*8+(c.Y>>1), 0, chH-9)
	cbBase := tr.Base(&ref.Cb[0], len(ref.Cb))
	crBase := tr.Base(&ref.Cr[0], len(ref.Cr))
	cwd := 8 + c.X&1
	for r := 0; r < 8+c.Y&1; r++ {
		off := uint64((cy+r)*ref.CStride + cx)
		tr.Access(proc, cbBase+off, cwd, false)
		tr.Access(proc, crBase+off, cwd, false)
	}
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
