package decoder

// haveStoreAsm reports that this architecture carries assembly store
// kernels (AVX2; the dispatch layer only selects LevelASM after runtime
// CPU detection).
const haveStoreAsm = true

// storeIntraBlockAsm clamps 8 rows of 8 int32 IDCT outputs to [0,255]
// and stores them at dst with rowStride bytes between rows.
//
// Contract (shared with the arm64 version): residuals must lie in
// [-32768, 32512] — far wider than the IDCT output range [-256, 255] the
// decoder produces, but narrower than full int32, where the saturating
// 16-bit pack would diverge from Go's wrapping int32 arithmetic.
//
//go:noescape
func storeIntraBlockAsm(dst *byte, rowStride int, blk *int32)

// storePredBlockAsm adds 8 rows of 8 int32 residuals to the prediction
// rows (pstride apart) and stores the clamped sums at dst. Same residual
// contract as storeIntraBlockAsm.
//
//go:noescape
func storePredBlockAsm(dst *byte, rowStride int, pred *byte, pstride int, blk *int32)
