// AVX2 clamped block-store kernels. Each processes one 8×8 block: two
// rows (16 int32 residuals) per iteration.
//
// Clamp construction: VPACKSSDW saturates int32→int16, VPACKUSWB then
// saturates int16→uint8, which composes to an exact [0,255] clamp for
// any residual that fits int16. The pred path adds the widened
// prediction bytes with a saturating VPADDSW so sums beyond int16 still
// clamp to the correct end. Both packs operate per 128-bit lane, so a
// VPERMQ $0xD8 after the dword pack regroups the qwords row-major.

#include "textflag.h"

// func storeIntraBlockAsm(dst *byte, rowStride int, blk *int32)
TEXT ·storeIntraBlockAsm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ rowStride+8(FP), DX
	MOVQ blk+16(FP), SI
	MOVQ $4, CX

intraPair:
	VMOVDQU      (SI), Y0    // row r:   8 dwords
	VMOVDQU      32(SI), Y1  // row r+1: 8 dwords
	VPACKSSDW    Y1, Y0, Y0
	VPERMQ       $0xD8, Y0, Y0 // lane0 = row r words, lane1 = row r+1 words
	VPACKUSWB    Y0, Y0, Y0
	MOVQ         X0, (DI)
	VEXTRACTI128 $1, Y0, X1
	ADDQ         DX, DI
	MOVQ         X1, (DI)
	ADDQ         DX, DI
	ADDQ         $64, SI
	DECQ         CX
	JNZ          intraPair
	VZEROUPPER
	RET

// func storePredBlockAsm(dst *byte, rowStride int, pred *byte, pstride int, blk *int32)
TEXT ·storePredBlockAsm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ rowStride+8(FP), DX
	MOVQ pred+16(FP), R8
	MOVQ pstride+24(FP), R9
	MOVQ blk+32(FP), SI
	MOVQ $4, CX

predPair:
	VMOVDQU      (SI), Y0
	VMOVDQU      32(SI), Y1
	VPACKSSDW    Y1, Y0, Y0
	VPERMQ       $0xD8, Y0, Y0     // lane0 = row r words, lane1 = row r+1 words
	VPMOVZXBW    (R8), X2          // pred row r → 8 words
	VPMOVZXBW    (R8)(R9*1), X3    // pred row r+1
	VINSERTI128  $1, X3, Y2, Y2
	VPADDSW      Y2, Y0, Y0
	VPACKUSWB    Y0, Y0, Y0
	MOVQ         X0, (DI)
	VEXTRACTI128 $1, Y0, X1
	ADDQ         DX, DI
	MOVQ         X1, (DI)
	ADDQ         DX, DI
	LEAQ         (R8)(R9*2), R8
	ADDQ         $64, SI
	DECQ         CX
	JNZ          predPair
	VZEROUPPER
	RET
