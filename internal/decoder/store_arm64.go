package decoder

// haveStoreAsm reports that this architecture carries assembly store
// kernels (NEON, architecturally mandatory on AArch64).
const haveStoreAsm = true

// See store_amd64.go for the kernel contracts.
//
//go:noescape
func storeIntraBlockAsm(dst *byte, rowStride int, blk *int32)

//go:noescape
func storePredBlockAsm(dst *byte, rowStride int, pred *byte, pstride int, blk *int32)
