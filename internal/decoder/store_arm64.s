// NEON clamped block-store kernels. The Go arm64 assembler lacks signed
// vector min/max and signed shifts, so the [0,255] clamp of a signed
// 32-bit lane is synthesised in the unsigned domain: add the bias
// 0x80000000 (wrapping — matching Go's int32 addition), clamp with
// unsigned VUMAX/VUMIN against bias and bias+255, subtract the bias, and
// narrow twice with same-register VUZP1 (exact: values now fit a byte).
//
// Register plan: V8 = bias in every dword lane, V9 = bias+255.

#include "textflag.h"

// func storeIntraBlockAsm(dst *byte, rowStride int, blk *int32)
TEXT ·storeIntraBlockAsm(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD rowStride+8(FP), R1
	MOVD blk+16(FP), R2
	MOVD $8, R5

	MOVD $0x80000000, R6
	VDUP R6, V8.S4
	MOVD $0x800000FF, R6
	VDUP R6, V9.S4

intraRow:
	VLD1.P 32(R2), [V0.S4, V1.S4]
	VADD   V8.S4, V0.S4, V0.S4
	VADD   V8.S4, V1.S4, V1.S4
	VUMAX  V8.S4, V0.S4, V0.S4
	VUMAX  V8.S4, V1.S4, V1.S4
	VUMIN  V9.S4, V0.S4, V0.S4
	VUMIN  V9.S4, V1.S4, V1.S4
	VSUB   V8.S4, V0.S4, V0.S4
	VSUB   V8.S4, V1.S4, V1.S4
	VUZP1  V1.H8, V0.H8, V0.H8  // even halfwords: 8 lane values
	VUZP1  V0.B16, V0.B16, V0.B16
	VST1   [V0.B8], (R0)
	ADD    R1, R0
	SUBS   $1, R5
	BNE    intraRow
	RET

// func storePredBlockAsm(dst *byte, rowStride int, pred *byte, pstride int, blk *int32)
TEXT ·storePredBlockAsm(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD rowStride+8(FP), R1
	MOVD pred+16(FP), R3
	MOVD pstride+24(FP), R4
	MOVD blk+32(FP), R2
	MOVD $8, R5

	MOVD $0x80000000, R6
	VDUP R6, V8.S4
	MOVD $0x800000FF, R6
	VDUP R6, V9.S4

predRow:
	VLD1.P  32(R2), [V0.S4, V1.S4]
	VLD1    (R3), [V2.B8]
	VUSHLL  $0, V2.B8, V2.H8
	VUSHLL  $0, V2.H4, V3.S4
	VUSHLL2 $0, V2.H8, V4.S4
	VADD    V3.S4, V0.S4, V0.S4 // residual + prediction (wrapping, like Go)
	VADD    V4.S4, V1.S4, V1.S4
	VADD    V8.S4, V0.S4, V0.S4
	VADD    V8.S4, V1.S4, V1.S4
	VUMAX   V8.S4, V0.S4, V0.S4
	VUMAX   V8.S4, V1.S4, V1.S4
	VUMIN   V9.S4, V0.S4, V0.S4
	VUMIN   V9.S4, V1.S4, V1.S4
	VSUB    V8.S4, V0.S4, V0.S4
	VSUB    V8.S4, V1.S4, V1.S4
	VUZP1   V1.H8, V0.H8, V0.H8
	VUZP1   V0.B16, V0.B16, V0.B16
	VST1    [V0.B8], (R0)
	ADD     R1, R0
	ADD     R4, R3
	SUBS    $1, R5
	BNE     predRow
	RET
