package decoder

import (
	"testing"

	"mpeg2par/internal/frame"
	"mpeg2par/internal/kernels"
	"mpeg2par/internal/motion"
)

// storeTiers returns the kernel tiers runnable on this host, restoring
// the dispatch state afterwards.
func storeTiers(t *testing.T) []kernels.Level {
	t.Helper()
	prev := kernels.Active()
	t.Cleanup(func() { kernels.Set(prev) })
	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	} else {
		t.Logf("asm tier not supported on this host (%s); testing scalar+swar only", kernels.CPUFeatures())
	}
	return tiers
}

type storeRNG uint64

func (p *storeRNG) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = storeRNG(x)
	return x
}

// residual draws from the store-kernel contract domain: mostly the IDCT
// output range [-256,255], with occasional wide int16-safe extremes.
func (p *storeRNG) residual(i int) int32 {
	switch p.next() % 8 {
	case 0:
		return 32512 // +extreme of the documented contract
	case 1:
		return -32768 // -extreme
	default:
		return int32(p.next()%512) - 256
	}
}

// TestStoreBlockTierEquivalence reconstructs every block position of one
// macroblock under both frame and field DCT organisation at every kernel
// tier, comparing bit-exactly against the branchy per-pixel reference.
func TestStoreBlockTierEquivalence(t *testing.T) {
	tiers := storeTiers(t)
	rng := storeRNG(0xfeedface12345678)

	const mbw, mbh = 3, 2 // 48×32 frame: interior and edge macroblocks
	for _, fieldDCT := range []bool{false, true} {
		for trial := 0; trial < 6; trial++ {
			var blk [64]int32
			for i := range blk {
				blk[i] = rng.residual(i)
			}
			var pred motion.MBPred
			for i := range pred.Y {
				pred.Y[i] = uint8(rng.next())
			}
			for i := range pred.Cb {
				pred.Cb[i] = uint8(rng.next())
				pred.Cr[i] = uint8(rng.next())
			}

			for mby := 0; mby < mbh; mby++ {
				for mbx := 0; mbx < mbw; mbx++ {
					for b := 0; b < 6; b++ {
						// Reference: the branchy per-pixel loops, computed
						// directly from the geometry helpers.
						wantIntra := frame.New(mbw*16, mbh*16)
						plane, x, y, stride, step := blockGeometry(wantIntra, mbx, mby, b, fieldDCT)
						for r := 0; r < 8; r++ {
							for c := 0; c < 8; c++ {
								plane[(y+r*step)*stride+x+c] = clampPixelRef(blk[r*8+c])
							}
						}

						for _, tier := range tiers {
							kernels.Set(tier)
							got := frame.New(mbw*16, mbh*16)
							storeIntraBlock(got, &blk, mbx, mby, b, fieldDCT)
							if !wantIntra.Equal(got) {
								t.Fatalf("tier=%v fieldDCT=%v mb=(%d,%d) b=%d: intra store mismatch vs reference",
									tier, fieldDCT, mbx, mby, b)
							}
							fPred := frame.New(mbw*16, mbh*16)
							storePredBlock(fPred, &pred, &blk, mbx, mby, b, fieldDCT)
							fCopy := frame.New(mbw*16, mbh*16)
							storePredBlock(fCopy, &pred, nil, mbx, mby, b, fieldDCT)
							checkAgainstScalar(t, tier, fieldDCT, mbx, mby, b, fPred, fCopy, &pred, &blk)
						}
					}
				}
			}
		}
	}
}

// checkAgainstScalar recomputes the pred and copy stores with the branchy
// reference loops and compares.
func checkAgainstScalar(t *testing.T, tier kernels.Level, fieldDCT bool, mbx, mby, b int, gotPred, gotCopy *frame.Frame, pred *motion.MBPred, blk *[64]int32) {
	t.Helper()
	w, h := gotPred.CodedW, gotPred.CodedH

	wantPred := frame.New(w, h)
	plane, x, y, stride, step := blockGeometry(wantPred, mbx, mby, b, fieldDCT)
	psrc, pstride := predBlockView(pred, b, fieldDCT)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			plane[(y+r*step)*stride+x+c] = clampPixelRef(int32(psrc[r*pstride+c]) + blk[r*8+c])
		}
	}
	if !wantPred.Equal(gotPred) {
		t.Fatalf("tier=%v fieldDCT=%v mb=(%d,%d) b=%d: pred store mismatch vs reference",
			tier, fieldDCT, mbx, mby, b)
	}

	wantCopy := frame.New(w, h)
	plane, x, y, stride, step = blockGeometry(wantCopy, mbx, mby, b, fieldDCT)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			plane[(y+r*step)*stride+x+c] = psrc[r*pstride+c]
		}
	}
	if !wantCopy.Equal(gotCopy) {
		t.Fatalf("tier=%v fieldDCT=%v mb=(%d,%d) b=%d: copy store mismatch vs reference",
			tier, fieldDCT, mbx, mby, b)
	}
}

// BenchmarkStoreBlock measures the store kernels per tier.
func BenchmarkStoreBlock(b *testing.B) {
	prev := kernels.Active()
	b.Cleanup(func() { kernels.Set(prev) })
	f := frame.New(64, 64)
	var blk [64]int32
	rng := storeRNG(3)
	for i := range blk {
		blk[i] = int32(rng.next()%512) - 256
	}
	var pred motion.MBPred
	for i := range pred.Y {
		pred.Y[i] = uint8(rng.next())
	}

	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	}
	for _, tier := range tiers {
		kernels.Set(tier)
		b.Run("intra/"+tier.String(), func(b *testing.B) {
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				storeIntraBlock(f, &blk, 1, 1, 0, false)
			}
		})
		kernels.Set(tier)
		b.Run("pred/"+tier.String(), func(b *testing.B) {
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				storePredBlock(f, &pred, &blk, 1, 1, 0, false)
			}
		})
	}
}
