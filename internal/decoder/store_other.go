//go:build !amd64 && !arm64

package decoder

// haveStoreAsm is false on architectures without assembly store kernels;
// the dispatch layer never routes here, so the stubs are unreachable.
const haveStoreAsm = false

func storeIntraBlockAsm(dst *byte, rowStride int, blk *int32) {
	panic("decoder: no assembly store kernels on this architecture")
}

func storePredBlockAsm(dst *byte, rowStride int, pred *byte, pstride int, blk *int32) {
	panic("decoder: no assembly store kernels on this architecture")
}
