package decoder

import (
	"math/rand"
	"testing"

	"mpeg2par/internal/frame"
	"mpeg2par/internal/motion"
)

// TestClampPixelBranchless checks the branchless clamp against the branchy
// reference over the whole IDCT output range and far beyond it.
func TestClampPixelBranchless(t *testing.T) {
	for v := int32(-70000); v <= 70000; v++ {
		if clampPixel(v) != clampPixelRef(v) {
			t.Fatalf("clampPixel(%d) = %d, want %d", v, clampPixel(v), clampPixelRef(v))
		}
	}
	for _, v := range []int32{-1 << 31, -1<<31 + 1, 1<<31 - 1, 1<<31 - 256} {
		if clampPixel(v) != clampPixelRef(v) {
			t.Fatalf("clampPixel(%d) = %d, want %d", v, clampPixel(v), clampPixelRef(v))
		}
	}
}

// withScalarStore runs f with the per-pixel reference store loops forced.
func withScalarStore(t testing.TB, f func()) {
	t.Helper()
	prev := scalarStore
	scalarStore = true
	defer func() { scalarStore = prev }()
	f()
}

// TestStoreBlocksEquivalence drives storeIntraBlock and storePredBlock
// over random residuals (IDCT-saturated range plus out-of-range extremes),
// all six block positions, frame and field DCT, and compares the unrolled
// branchless kernels against the scalar reference byte for byte.
func TestStoreBlocksEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		var blk [64]int32
		for i := range blk {
			switch iter % 3 {
			case 0: // IDCT-conforming
				blk[i] = int32(rng.Intn(512) - 256)
			case 1: // extreme values: the clamp must still agree
				blk[i] = int32(rng.Intn(200000) - 100000)
			default: // sparse-ish
				if rng.Intn(4) == 0 {
					blk[i] = int32(rng.Intn(512) - 256)
				}
			}
		}
		var pred motion.MBPred
		for i := range pred.Y {
			pred.Y[i] = uint8(rng.Intn(256))
		}
		for i := range pred.Cb {
			pred.Cb[i] = uint8(rng.Intn(256))
			pred.Cr[i] = uint8(rng.Intn(256))
		}
		for _, fieldDCT := range []bool{false, true} {
			for b := 0; b < 6; b++ {
				fast := frame.New(32, 32)
				ref := frame.New(32, 32)
				storeIntraBlock(fast, &blk, 0, 0, b, fieldDCT)
				withScalarStore(t, func() { storeIntraBlock(ref, &blk, 0, 0, b, fieldDCT) })
				if !fast.Equal(ref) {
					t.Fatalf("storeIntraBlock b=%d fieldDCT=%v diverges", b, fieldDCT)
				}
				fast, ref = frame.New(32, 32), frame.New(32, 32)
				storePredBlock(fast, &pred, &blk, 1, 1, b, fieldDCT)
				withScalarStore(t, func() { storePredBlock(ref, &pred, &blk, 1, 1, b, fieldDCT) })
				if !fast.Equal(ref) {
					t.Fatalf("storePredBlock b=%d fieldDCT=%v diverges", b, fieldDCT)
				}
				// Prediction-only (uncoded) stores share one path; check
				// it against the coded path with a zero residual.
				var zero [64]int32
				fast, ref = frame.New(32, 32), frame.New(32, 32)
				storePredBlock(fast, &pred, nil, 1, 1, b, fieldDCT)
				storePredBlock(ref, &pred, &zero, 1, 1, b, fieldDCT)
				if !fast.Equal(ref) {
					t.Fatalf("uncoded storePredBlock b=%d fieldDCT=%v differs from zero residual", b, fieldDCT)
				}
			}
		}
	}
}

func BenchmarkStorePredBlock(b *testing.B) {
	var blk [64]int32
	for i := range blk {
		blk[i] = int32((i*37)%512 - 256)
	}
	var pred motion.MBPred
	for i := range pred.Y {
		pred.Y[i] = uint8(i)
	}
	dst := frame.New(352, 240)
	run := func(b *testing.B) {
		b.SetBytes(64)
		for i := 0; i < b.N; i++ {
			storePredBlock(dst, &pred, &blk, 5, 5, i%4, false)
		}
	}
	b.Run("branchless", run)
	b.Run("scalar", func(b *testing.B) { withScalarStore(b, func() { run(b) }) })
}

func BenchmarkStoreIntraBlock(b *testing.B) {
	var blk [64]int32
	for i := range blk {
		blk[i] = int32((i * 3) % 256)
	}
	dst := frame.New(352, 240)
	run := func(b *testing.B) {
		b.SetBytes(64)
		for i := 0; i < b.N; i++ {
			storeIntraBlock(dst, &blk, 5, 5, i%4, false)
		}
	}
	b.Run("branchless", run)
	b.Run("scalar", func(b *testing.B) { withScalarStore(b, func() { run(b) }) })
}
