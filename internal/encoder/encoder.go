// Package encoder implements an MPEG-2 video encoder sufficient to
// regenerate the paper's test streams: I/P/B frame pictures, closed GOPs,
// one slice per macroblock row (matching the MPEG Software Simulation
// Group encoder the authors used), half-pel motion estimation, and a
// simple feedback rate controller.
package encoder

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// Source supplies original pictures in display order.
type Source interface {
	Frame(n int) *frame.Frame
}

// Config selects the stream parameters.
type Config struct {
	Width, Height int
	Pictures      int // total pictures to encode
	GOPSize       int // pictures per GOP (display order), e.g. 4, 13, 16, 31
	IPDistance    int // M: distance between reference pictures (default 3)

	FrameRate float64 // display rate (default 30)
	BitRate   int     // target bits/s; 0 disables rate control

	QScaleI, QScaleP, QScaleB int  // base quantiser scale codes (defaults 8/10/12)
	IntraVLCFormat            bool // use coefficient table one for intra blocks
	AlternateScan             bool
	QScaleType                bool // non-linear quantiser scale
	RepeatSequenceHeader      bool // emit the sequence header before every GOP
	IntraDCPrecision          int  // 0..2 (8..10 bits)

	// SlicesPerRow splits each macroblock row into this many slices
	// (default 1, the paper's streams). More slices per row refine the
	// fine-grained decoder's task granularity — the load-balance knob the
	// paper's §4 discusses between slice and macroblock tasks.
	SlicesPerRow int

	// RowsPerSlice bundles this many consecutive macroblock rows into a
	// single tall slice (the general slice structure): 0 or 1 keeps one
	// slice per row; MBHeight() or more produces one slice per picture —
	// the worst-case geometry for slice-level parallelism and the target
	// of the intra-slice split decoder. Mutually exclusive with
	// SlicesPerRow > 1.
	RowsPerSlice int

	// IntraMatrix / NonIntraMatrix, when non-nil, replace the default
	// quantization matrices (transmitted in the sequence header).
	IntraMatrix    *[64]uint8
	NonIntraMatrix *[64]uint8

	// Interlaced encodes the source as interlaced video: pictures carry
	// progressive_frame=0 and frame_pred_frame_dct=0, and macroblocks may
	// use field prediction and field DCT — the MPEG-2 extension the paper
	// names as its primary future work. Sources should have temporally
	// offset fields (see frame.NewInterlacedSynth).
	Interlaced bool

	// OmitGOPHeaders drops the group_of_pictures headers: the GOP layer
	// is optional in MPEG-2 (the paper's footnote 9 — the sequence layer
	// can serve in the same capacity). Picture grouping is then implied
	// by the I pictures; the scan process synthesizes the groups.
	// Requires RepeatSequenceHeader so each group keeps a random-access
	// point.
	OmitGOPHeaders bool
}

func (c *Config) normalize() error {
	if c.Width < 16 || c.Height < 16 {
		return fmt.Errorf("encoder: picture size %dx%d too small", c.Width, c.Height)
	}
	if c.Pictures < 1 {
		return fmt.Errorf("encoder: need at least one picture")
	}
	if c.GOPSize < 1 {
		c.GOPSize = 13
	}
	if c.IPDistance < 1 {
		c.IPDistance = 3
	}
	if c.FrameRate == 0 {
		c.FrameRate = 30
	}
	if c.QScaleI == 0 {
		c.QScaleI = 8
	}
	if c.QScaleP == 0 {
		c.QScaleP = 10
	}
	if c.QScaleB == 0 {
		c.QScaleB = 12
	}
	if c.IntraDCPrecision < 0 || c.IntraDCPrecision > 2 {
		return fmt.Errorf("encoder: intra DC precision %d unsupported", c.IntraDCPrecision)
	}
	if c.MBHeight() > mpeg2.SliceStartMax {
		return fmt.Errorf("encoder: %d macroblock rows exceed slice addressing", c.MBHeight())
	}
	if c.SlicesPerRow < 0 || c.SlicesPerRow > c.MBWidth() {
		return fmt.Errorf("encoder: %d slices per row impossible with %d macroblock columns",
			c.SlicesPerRow, c.MBWidth())
	}
	if c.RowsPerSlice < 0 {
		return fmt.Errorf("encoder: negative rows per slice")
	}
	if c.RowsPerSlice > 1 && c.SlicesPerRow > 1 {
		return fmt.Errorf("encoder: RowsPerSlice and SlicesPerRow cannot both exceed 1")
	}
	for _, m := range []*[64]uint8{c.IntraMatrix, c.NonIntraMatrix} {
		if m == nil {
			continue
		}
		for i, v := range m {
			if v == 0 {
				return fmt.Errorf("encoder: quantization matrix weight %d is zero", i)
			}
		}
	}
	if c.IntraMatrix != nil && c.IntraMatrix[0] != 8 {
		return fmt.Errorf("encoder: intra matrix weight [0] must be 8 (the DC weight is fixed)")
	}
	return nil
}

// MBWidth returns the width in macroblocks.
func (c *Config) MBWidth() int { return (c.Width + 15) / 16 }

// MBHeight returns the height in macroblocks.
func (c *Config) MBHeight() int { return (c.Height + 15) / 16 }

// PictureInfo describes one encoded picture in decode (stream) order.
type PictureInfo struct {
	DisplayIndex int // position in display order
	TemporalRef  int // display position within its GOP
	Type         byte
	Offset       int // byte offset of the picture startcode
	Bits         int // coded size in bits
	QScale       int // base quantiser scale code used
}

// GOPInfo describes one encoded GOP.
type GOPInfo struct {
	Offset       int // byte offset of the first startcode of the GOP unit
	Pictures     int
	FirstDisplay int
}

// Result is an encoded stream plus its structural metadata.
type Result struct {
	Data     []byte
	Seq      mpeg2.SequenceHeader
	Pictures []PictureInfo
	GOPs     []GOPInfo
}

// BitsPerSecond returns the achieved bitrate at the configured frame rate.
func (r *Result) BitsPerSecond(fps float64) float64 {
	if len(r.Pictures) == 0 {
		return 0
	}
	return float64(len(r.Data)) * 8 * fps / float64(len(r.Pictures))
}

// gopPlan lists the display offsets of the reference pictures of one GOP.
func gopPlan(gopSize, m int) []int {
	refs := []int{0}
	for p := m; p < gopSize; p += m {
		refs = append(refs, p)
	}
	if last := refs[len(refs)-1]; last != gopSize-1 {
		refs = append(refs, gopSize-1)
	}
	return refs
}

// EncodeSequence encodes cfg.Pictures frames from src into an MPEG-2
// elementary stream.
func EncodeSequence(cfg Config, src Source) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e, err := newSeqEncoder(cfg)
	if err != nil {
		return nil, err
	}
	for gopStart := 0; gopStart < cfg.Pictures; gopStart += cfg.GOPSize {
		gopLen := cfg.GOPSize
		if gopStart+gopLen > cfg.Pictures {
			gopLen = cfg.Pictures - gopStart
		}
		if err := e.encodeGOP(src, gopStart, gopLen); err != nil {
			return nil, err
		}
	}
	e.w.StartCode(mpeg2.SequenceEndCode)
	e.res.Data = e.w.Bytes()
	return e.res, nil
}

// seqEncoder carries the cross-picture encoder state.
type seqEncoder struct {
	cfg Config
	w   *bits.Writer
	res *Result

	refOld, refNew *frame.Frame // reconstructed reference pictures
	mvField        []mvEntry    // co-located vectors of the previous P encode
	rate           rateCtl
}

func newSeqEncoder(cfg Config) (*seqEncoder, error) {
	seq := mpeg2.SequenceHeader{
		Width:       cfg.Width,
		Height:      cfg.Height,
		FrameRate:   mpeg2.FrameRateCode(cfg.FrameRate),
		BitRate:     (cfg.BitRate + 399) / 400,
		Progressive: !cfg.Interlaced,
	}
	if cfg.IntraMatrix != nil {
		seq.LoadIntraMatrix = true
		seq.IntraMatrix = *cfg.IntraMatrix
	}
	if cfg.NonIntraMatrix != nil {
		seq.LoadNonIntraMatrix = true
		seq.NonIntraMatrix = *cfg.NonIntraMatrix
	}
	seq.Normalize()
	e := &seqEncoder{
		cfg: cfg,
		w:   bits.NewWriter(1 << 20),
		res: &Result{Seq: seq},
	}
	e.mvField = make([]mvEntry, cfg.MBWidth()*cfg.MBHeight())
	e.rate = newRateCtl(cfg)
	seq.Write(e.w) // leading sequence header even when not repeating
	return e, nil
}

func (e *seqEncoder) encodeGOP(src Source, gopStart, gopLen int) error {
	gopByteOffset := e.w.Len()
	if (e.cfg.RepeatSequenceHeader || e.cfg.OmitGOPHeaders) && gopStart > 0 {
		e.res.Seq.Write(e.w)
	}
	if !e.cfg.OmitGOPHeaders {
		gh := mpeg2.GOPHeader{Closed: true}
		gh.Write(e.w)
	}
	e.res.GOPs = append(e.res.GOPs, GOPInfo{Offset: gopByteOffset, Pictures: gopLen, FirstDisplay: gopStart})

	// Closed GOP: references never cross the GOP boundary.
	e.refOld, e.refNew = nil, nil

	refs := gopPlan(gopLen, e.cfg.IPDistance)
	// Decode order: I, then each P followed by the B pictures it encloses.
	if err := e.encodePicture(src, gopStart, 0, vlc.CodingI); err != nil {
		return err
	}
	for k := 1; k < len(refs); k++ {
		if err := e.encodePicture(src, gopStart, refs[k], vlc.CodingP); err != nil {
			return err
		}
		for b := refs[k-1] + 1; b < refs[k]; b++ {
			if err := e.encodePicture(src, gopStart, b, vlc.CodingB); err != nil {
				return err
			}
		}
	}
	return nil
}
