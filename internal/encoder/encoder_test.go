package encoder

import (
	"testing"

	"mpeg2par/internal/core"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
)

func encodeTestStream(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := EncodeSequence(cfg, frame.NewSynth(cfg.Width, cfg.Height))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGOPPlan(t *testing.T) {
	cases := []struct {
		n, m int
		want []int
	}{
		{4, 3, []int{0, 3}},
		{13, 3, []int{0, 3, 6, 9, 12}},
		{16, 3, []int{0, 3, 6, 9, 12, 15}},
		{31, 3, []int{0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30}},
		{1, 3, []int{0}},
		{2, 3, []int{0, 1}},
		{5, 3, []int{0, 3, 4}},
	}
	for _, c := range cases {
		got := gopPlan(c.n, c.m)
		if len(got) != len(c.want) {
			t.Fatalf("gopPlan(%d,%d) = %v, want %v", c.n, c.m, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("gopPlan(%d,%d) = %v, want %v", c.n, c.m, got, c.want)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := EncodeSequence(Config{Width: 8, Height: 8, Pictures: 1}, frame.NewSynth(8, 8)); err == nil {
		t.Fatal("tiny size must fail")
	}
	if _, err := EncodeSequence(Config{Width: 64, Height: 64, Pictures: 0}, frame.NewSynth(64, 64)); err == nil {
		t.Fatal("zero pictures must fail")
	}
	if _, err := EncodeSequence(Config{Width: 64, Height: 16 * 200, Pictures: 1}, nil); err == nil {
		t.Fatal("too many rows must fail")
	}
}

func TestEncodeDecodeIntraOnly(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, Pictures: 3, GOPSize: 1, QScaleI: 4}
	res := encodeTestStream(t, cfg)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		orig := src.Frame(i)
		p := frame.PSNR(orig, f)
		if p < 30 {
			t.Errorf("frame %d PSNR %.1f dB < 30", i, p)
		}
		if f.PictureType != 'I' {
			t.Errorf("frame %d type %c, want I", i, f.PictureType)
		}
	}
}

func TestEncodeDecodeIPB(t *testing.T) {
	cfg := Config{Width: 112, Height: 80, Pictures: 13, GOPSize: 13, QScaleI: 6, QScaleP: 8, QScaleB: 10}
	res := encodeTestStream(t, cfg)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 13 {
		t.Fatalf("decoded %d frames, want 13", len(frames))
	}
	src := frame.NewSynth(112, 80)
	wantTypes := "IBBPBBPBBPBBP"
	for i, f := range frames {
		if f.PictureType != wantTypes[i] {
			t.Errorf("frame %d type %c, want %c", i, f.PictureType, wantTypes[i])
		}
		p := frame.PSNR(src.Frame(i), f)
		if p < 25 {
			t.Errorf("frame %d (%c) PSNR %.1f dB < 25", i, f.PictureType, p)
		}
	}
}

func TestEncodeMultipleGOPs(t *testing.T) {
	cfg := Config{Width: 80, Height: 48, Pictures: 12, GOPSize: 4, RepeatSequenceHeader: true}
	res := encodeTestStream(t, cfg)
	if len(res.GOPs) != 3 {
		t.Fatalf("%d GOPs, want 3", len(res.GOPs))
	}
	if len(res.Pictures) != 12 {
		t.Fatalf("%d pictures, want 12", len(res.Pictures))
	}
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 12 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	// Display order must be monotone with source order: frame i matches
	// synth picture i best.
	src := frame.NewSynth(80, 48)
	for i, f := range frames {
		self := frame.PSNR(src.Frame(i), f)
		other := frame.PSNR(src.Frame((i+6)%12), f)
		if self <= other {
			t.Errorf("frame %d: PSNR vs own source %.1f <= vs other %.1f — display order broken", i, self, other)
		}
	}
	// Each GOP must start with a sequence header (repeat enabled) and be
	// independently decodable.
	for g, gi := range res.GOPs[1:] {
		sub := res.Data[gi.Offset:]
		d2, err := decoder.New(sub)
		if err != nil {
			t.Fatalf("GOP %d not independently decodable: %v", g+1, err)
		}
		fs, err := d2.All()
		if err != nil {
			t.Fatalf("GOP %d decode: %v", g+1, err)
		}
		// Decoding from a GOP offset continues to the end of the stream.
		if want := 12 - gi.FirstDisplay; len(fs) != want {
			t.Fatalf("GOP %d decoded %d pictures, want %d", g+1, len(fs), want)
		}
	}
}

func TestEncodedStreamStructure(t *testing.T) {
	cfg := Config{Width: 80, Height: 48, Pictures: 4, GOPSize: 4}
	res := encodeTestStream(t, cfg)
	// Decode-order types: I P B B (display I B B P).
	want := []byte{'I', 'P', 'B', 'B'}
	for i, pi := range res.Pictures {
		if pi.Type != want[i] {
			t.Errorf("picture %d type %c, want %c", i, pi.Type, want[i])
		}
		if pi.Bits <= 0 {
			t.Errorf("picture %d has %d bits", i, pi.Bits)
		}
	}
	wantTref := []int{0, 3, 1, 2}
	wantDisp := []int{0, 3, 1, 2}
	for i, pi := range res.Pictures {
		if pi.TemporalRef != wantTref[i] || pi.DisplayIndex != wantDisp[i] {
			t.Errorf("picture %d tref=%d disp=%d, want %d/%d", i, pi.TemporalRef, pi.DisplayIndex, wantTref[i], wantDisp[i])
		}
	}
	// I pictures should be the largest.
	if res.Pictures[0].Bits < res.Pictures[2].Bits {
		t.Errorf("I picture (%d bits) smaller than B picture (%d bits)", res.Pictures[0].Bits, res.Pictures[2].Bits)
	}
}

func TestBPicturesCompressBetter(t *testing.T) {
	cfg := Config{Width: 176, Height: 120, Pictures: 7, GOPSize: 7}
	res := encodeTestStream(t, cfg)
	var iBits, pBits, bBits, nP, nB int
	for _, pi := range res.Pictures {
		switch pi.Type {
		case 'I':
			iBits += pi.Bits
		case 'P':
			pBits += pi.Bits
			nP++
		case 'B':
			bBits += pi.Bits
			nB++
		}
	}
	if nP == 0 || nB == 0 {
		t.Fatal("expected P and B pictures")
	}
	if bBits/nB >= iBits {
		t.Errorf("avg B (%d) not smaller than I (%d)", bBits/nB, iBits)
	}
	if pBits/nP >= iBits {
		t.Errorf("avg P (%d) not smaller than I (%d)", pBits/nP, iBits)
	}
}

func TestRateControlSteersBitrate(t *testing.T) {
	target := 300_000
	cfg := Config{
		Width: 176, Height: 120, Pictures: 26, GOPSize: 13,
		BitRate: target, FrameRate: 30,
	}
	res := encodeTestStream(t, cfg)
	got := res.BitsPerSecond(30)
	if got < float64(target)*0.3 || got > float64(target)*3 {
		t.Errorf("achieved %.0f b/s, target %d — rate control inert", got, target)
	}
	// Against a much smaller budget the controller must shrink the stream.
	cfg2 := cfg
	cfg2.BitRate = target / 4
	res2 := encodeTestStream(t, cfg2)
	if len(res2.Data) >= len(res.Data) {
		t.Errorf("quarter-rate stream (%d B) not smaller than full-rate (%d B)", len(res2.Data), len(res.Data))
	}
}

func TestIntraVLCFormatRoundTrip(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, Pictures: 4, GOPSize: 4, IntraVLCFormat: true, AlternateScan: true, QScaleType: true}
	res := encodeTestStream(t, cfg)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		if p := frame.PSNR(src.Frame(i), f); p < 25 {
			t.Errorf("frame %d PSNR %.1f", i, p)
		}
	}
}

func TestOddDimensions(t *testing.T) {
	// 176x120: 120 is not a multiple of 16 (the paper's smallest size).
	cfg := Config{Width: 176, Height: 120, Pictures: 4, GOPSize: 4}
	res := encodeTestStream(t, cfg)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	if frames[0].Height != 120 || frames[0].CodedH != 128 {
		t.Fatalf("geometry %d/%d", frames[0].Height, frames[0].CodedH)
	}
}

func TestSequenceEndsWithEndCode(t *testing.T) {
	res := encodeTestStream(t, Config{Width: 64, Height: 48, Pictures: 1, GOPSize: 1})
	n := len(res.Data)
	if n < 4 || res.Data[n-1] != mpeg2.SequenceEndCode || res.Data[n-2] != 1 {
		t.Fatalf("stream does not end with sequence_end_code: % x", res.Data[n-4:])
	}
}

func BenchmarkEncodeP352(b *testing.B) {
	cfg := Config{Width: 352, Height: 240, Pictures: 2, GOPSize: 2, IPDistance: 1}
	src := frame.NewSynth(352, 240)
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSequence(cfg, src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCustomQuantMatrices(t *testing.T) {
	var intra, nonIntra [64]uint8
	for i := range intra {
		intra[i] = uint8(16 + i) // steeper than default
		nonIntra[i] = 24
	}
	intra[0] = 8
	cfg := Config{
		Width: 96, Height: 64, Pictures: 4, GOPSize: 4,
		IntraMatrix: &intra, NonIntraMatrix: &nonIntra,
	}
	res := encodeTestStream(t, cfg)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Seq.LoadIntraMatrix || d.Seq.IntraMatrix != intra {
		t.Fatal("custom intra matrix not transmitted")
	}
	if !d.Seq.LoadNonIntraMatrix || d.Seq.NonIntraMatrix != nonIntra {
		t.Fatal("custom non-intra matrix not transmitted")
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	src := frame.NewSynth(96, 64)
	for i, f := range frames {
		if p := frame.PSNR(src.Frame(i), f); p < 22 {
			t.Errorf("frame %d PSNR %.1f with steep matrices", i, p)
		}
	}
	// Steeper matrices must shrink the stream vs defaults at equal scale.
	def := encodeTestStream(t, Config{Width: 96, Height: 64, Pictures: 4, GOPSize: 4})
	if len(res.Data) >= len(def.Data) {
		t.Errorf("steep matrices (%dB) not smaller than defaults (%dB)", len(res.Data), len(def.Data))
	}
}

func TestCustomMatrixValidation(t *testing.T) {
	var bad [64]uint8 // zeros
	if _, err := EncodeSequence(Config{Width: 64, Height: 48, Pictures: 1, IntraMatrix: &bad},
		frame.NewSynth(64, 48)); err == nil {
		t.Fatal("zero weights must be rejected")
	}
	var wrongDC [64]uint8
	for i := range wrongDC {
		wrongDC[i] = 16
	}
	if _, err := EncodeSequence(Config{Width: 64, Height: 48, Pictures: 1, IntraMatrix: &wrongDC},
		frame.NewSynth(64, 48)); err == nil {
		t.Fatal("intra DC weight != 8 must be rejected")
	}
}

func TestSlicesPerRow(t *testing.T) {
	for _, spr := range []int{2, 4} {
		cfg := Config{Width: 112, Height: 64, Pictures: 7, GOPSize: 7, SlicesPerRow: spr}
		res := encodeTestStream(t, cfg)
		m, err := core.Scan(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		// 64px → 4 MB rows, each split into spr slices.
		want := 4 * spr
		for pi, p := range m.GOPs[0].Pictures {
			if len(p.Slices) != want {
				t.Fatalf("spr=%d: picture %d has %d slices, want %d", spr, pi, len(p.Slices), want)
			}
		}
		// Identical pixels to the single-slice-per-row stream.
		base := encodeTestStream(t, Config{Width: 112, Height: 64, Pictures: 7, GOPSize: 7})
		fa, err := decoder.New(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		fsA, err := fa.All()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := decoder.New(base.Data)
		if err != nil {
			t.Fatal(err)
		}
		fsB, err := fb.All()
		if err != nil {
			t.Fatal(err)
		}
		for i := range fsA {
			if !fsA[i].Equal(fsB[i]) {
				t.Fatalf("spr=%d: frame %d differs from single-slice stream", spr, i)
			}
		}
		// Parallel modes stay bit-exact on multi-slice rows.
		for _, mode := range []core.Mode{core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved} {
			var got []*frame.Frame
			if _, err := core.Decode(res.Data, core.Options{Mode: mode, Workers: 3,
				Sink: func(f *frame.Frame) { got = append(got, f.Clone()) }}); err != nil {
				t.Fatalf("spr=%d %v: %v", spr, mode, err)
			}
			for i := range fsA {
				if !got[i].Equal(fsA[i]) {
					t.Fatalf("spr=%d %v: frame %d differs", spr, mode, i)
				}
			}
		}
	}
}

func TestSlicesPerRowValidation(t *testing.T) {
	if _, err := EncodeSequence(Config{Width: 64, Height: 48, Pictures: 1, SlicesPerRow: 99},
		frame.NewSynth(64, 48)); err == nil {
		t.Fatal("more slices than columns must fail")
	}
}
