package encoder

import (
	"testing"

	"mpeg2par/internal/core"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
)

func interlacedStream(t *testing.T, w, h, pics, gop int) *Result {
	t.Helper()
	res, err := EncodeSequence(Config{
		Width: w, Height: h, Pictures: pics, GOPSize: gop,
		Interlaced: true, QScaleI: 6, QScaleP: 8, QScaleB: 10,
	}, frame.NewInterlacedSynth(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInterlacedRoundTrip(t *testing.T) {
	res := interlacedStream(t, 112, 80, 13, 13)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 13 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	src := frame.NewInterlacedSynth(112, 80)
	for i, f := range frames {
		p := frame.PSNR(src.Frame(i), f)
		if p < 24 {
			t.Errorf("frame %d (%c) PSNR %.1f dB", i, f.PictureType, p)
		}
	}
}

func TestInterlacedUsesFieldTools(t *testing.T) {
	// The interlaced stream must actually exercise field prediction and
	// field DCT; otherwise the extension is dead code on this content.
	res := interlacedStream(t, 112, 80, 7, 7)
	m, err := core.Scan(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Decode at the syntax level and count tools.
	stats := countTools(t, res.Data)
	if stats.fieldMotion == 0 {
		t.Error("no field-predicted macroblocks — field search never won")
	}
	if stats.fieldDCT == 0 {
		t.Error("no field-DCT macroblocks — dct_type heuristic never fired")
	}
	t.Logf("interlaced tools: %d field-motion MBs, %d field-DCT MBs of %d",
		stats.fieldMotion, stats.fieldDCT, stats.total)
}

type toolStats struct {
	total, fieldMotion, fieldDCT int
}

func countTools(t *testing.T, data []byte) toolStats {
	t.Helper()
	var st toolStats
	m, err := core.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	err = core.VisitMacroblocks(data, m, func(mb *mpeg2.MB) {
		st.total++
		if mb.FieldMotion {
			st.fieldMotion++
		}
		if mb.FieldDCT {
			st.fieldDCT++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInterlacedParallelEquivalence(t *testing.T) {
	res := interlacedStream(t, 96, 64, 8, 4)
	d, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved} {
		var got []*frame.Frame
		_, err := core.Decode(res.Data, core.Options{
			Mode: mode, Workers: 3,
			Sink: func(f *frame.Frame) { got = append(got, f.Clone()) },
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d frames", mode, len(got))
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("%v: frame %d differs from sequential decode", mode, i)
			}
		}
	}
}

func TestProgressiveStillRejectsFieldTools(t *testing.T) {
	// A progressive encode must not emit field tools (the stream would be
	// malformed: frame_pred_frame_dct=1 forbids them).
	res := encodeTestStream(t, Config{Width: 96, Height: 64, Pictures: 4, GOPSize: 4})
	st := countTools(t, res.Data)
	if st.fieldMotion != 0 || st.fieldDCT != 0 {
		t.Fatalf("progressive stream has field tools: %+v", st)
	}
}

func TestInterlacedSynthHasFieldMotion(t *testing.T) {
	// Adjacent lines of a moving band must differ more in the interlaced
	// source than in the progressive one (comb artifacts).
	w, h := 112, 80
	prog := frame.NewSynth(w, h).Frame(3)
	ilace := frame.NewInterlacedSynth(w, h).Frame(3)
	comb := func(f *frame.Frame) (s int64) {
		for y := h - 20; y < h-2; y++ { // fast-moving bottom band
			for x := 0; x < w; x++ {
				d := int64(f.Y[y*f.CodedW+x]) - int64(f.Y[(y+1)*f.CodedW+x])
				if d < 0 {
					d = -d
				}
				s += d
			}
		}
		return s
	}
	if comb(ilace) <= comb(prog) {
		t.Fatalf("interlaced source shows no combing: %d vs %d", comb(ilace), comb(prog))
	}
}

func TestInterlacedToolsDoNotHurt(t *testing.T) {
	// Coding interlaced content with the field tools must be at least
	// PSNR-neutral versus forcing progressive coding (on real interlaced
	// footage the tools win more; the synthetic pan gives a modest edge).
	w, h := 176, 120
	src := frame.NewInterlacedSynth(w, h)
	avgPSNR := func(interlaced bool) float64 {
		res, err := EncodeSequence(Config{
			Width: w, Height: h, Pictures: 13, GOPSize: 13,
			Interlaced: interlaced, QScaleI: 8, QScaleP: 10, QScaleB: 12,
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := decoder.New(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := d.All()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i, f := range fs {
			sum += frame.PSNR(src.Frame(i), f)
		}
		return sum / float64(len(fs))
	}
	prog := avgPSNR(false)
	tools := avgPSNR(true)
	if tools < prog-0.25 {
		t.Fatalf("field tools cost quality: %.2f dB vs %.2f dB progressive", tools, prog)
	}
	t.Logf("interlaced content: progressive coding %.2f dB, field tools %.2f dB", prog, tools)
}
