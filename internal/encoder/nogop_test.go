package encoder

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/mpeg2"
)

// TestOmitGOPHeaders covers the MPEG-2 option the paper's footnote 9
// describes: the GOP layer is optional and the sequence layer serves as
// the random-access grouping.
func TestOmitGOPHeaders(t *testing.T) {
	cfg := Config{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
		OmitGOPHeaders: true,
	}
	res := encodeTestStream(t, cfg)

	// No group_start_code anywhere in the stream.
	data := res.Data
	for i := 0; i+3 < len(data); i++ {
		if data[i] == 0 && data[i+1] == 0 && data[i+2] == 1 && data[i+3] == mpeg2.GroupStartCode {
			t.Fatalf("group_start_code found at %d", i)
		}
	}
	// A sequence header precedes each group (random access points).
	count := 0
	for i := 0; ; {
		j := bits.FindStartCode(data, i)
		if j < 0 {
			break
		}
		if data[j+3] == mpeg2.SequenceHeaderCode {
			count++
		}
		i = j + 4
	}
	if count != 2 {
		t.Fatalf("%d sequence headers, want 2 (one per group)", count)
	}

	// Decodes identically to the GOP-header version.
	withGOPs := encodeTestStream(t, Config{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4, RepeatSequenceHeader: true,
	})
	d1, err := decoder.New(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := d1.All()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := decoder.New(withGOPs.Data)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != 8 || len(f2) != 8 {
		t.Fatalf("decoded %d/%d frames", len(f1), len(f2))
	}
	for i := range f1 {
		if !f1[i].Equal(f2[i]) {
			t.Fatalf("frame %d differs between GOP-header and headerless streams", i)
		}
	}
	// And the synthetic source is well reconstructed.
	src := frame.NewSynth(96, 64)
	for i, f := range f1 {
		if p := frame.PSNR(src.Frame(i), f); p < 25 {
			t.Errorf("frame %d PSNR %.1f", i, p)
		}
	}
}
