package encoder

import (
	"fmt"

	"mpeg2par/internal/dct"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/quant"
	"mpeg2par/internal/vlc"
)

// mvEntry remembers the vectors used at a macroblock position, seeding the
// next picture's search.
type mvEntry struct {
	fwd, bwd       motion.MV
	hasFwd, hasBwd bool
}

func (e *seqEncoder) encodePicture(src Source, gopStart, tref int, typ vlc.PictureCoding) error {
	cfg := &e.cfg
	display := gopStart + tref
	cur := src.Frame(display)
	if cur == nil || cur.Width != cfg.Width || cur.Height != cfg.Height {
		return fmt.Errorf("encoder: source picture %d missing or wrong size", display)
	}
	cur.Pad()

	// Reference distances decide the f_code: motion grows with both the
	// picture scale and the reference distance.
	vs := float64(cfg.Height) / 240
	if vs < 1 {
		vs = 1
	}
	needHalf := int(10*vs)*cfg.IPDistance + 16
	fcode := mpeg2.FCodeFor(needHalf)
	est := motion.NewEstimator(mpeg2.MVRangeHalf(fcode) - 1)

	ph := mpeg2.PictureHeader{
		TemporalReference: tref,
		Type:              typ,
		VBVDelay:          0xFFFF,
		FCode:             [2][2]int{{15, 15}, {15, 15}},
		IntraDCPrecision:  cfg.IntraDCPrecision,
		PictureStructure:  mpeg2.FramePicture,
		TopFieldFirst:     true,
		FramePredFrameDCT: !cfg.Interlaced,
		QScaleType:        cfg.QScaleType,
		IntraVLCFormat:    cfg.IntraVLCFormat,
		AlternateScan:     cfg.AlternateScan,
		ProgressiveFrame:  !cfg.Interlaced,
	}
	if typ == vlc.CodingP || typ == vlc.CodingB {
		ph.FCode[0] = [2]int{fcode, fcode}
	}
	if typ == vlc.CodingB {
		ph.FCode[1] = [2]int{fcode, fcode}
	}

	offset := e.w.Len()
	startBits := e.w.BitsWritten()
	ph.Write(e.w)

	params := mpeg2.PictureParams{
		MBWidth:           cfg.MBWidth(),
		MBHeight:          cfg.MBHeight(),
		Type:              typ,
		FCode:             ph.FCode,
		IntraDCPrecision:  ph.IntraDCPrecision,
		QScaleType:        ph.QScaleType,
		IntraVLCFormat:    ph.IntraVLCFormat,
		AlternateScan:     ph.AlternateScan,
		FramePredFrameDCT: ph.FramePredFrameDCT,
	}
	qscale := e.rate.qFor(typ)

	var rec *frame.Frame
	if typ != vlc.CodingB {
		rec = frame.New(cfg.Width, cfg.Height)
	}
	pe := &picEncoder{
		interlaced: cfg.Interlaced,
		e:          e, cfg: cfg, cur: cur, rec: rec, typ: typ,
		params: &params, est: est, qscale: qscale,
		seq: &e.res.Seq, ph: &ph,
	}
	switch typ {
	case vlc.CodingP:
		pe.fwdRef = e.refNew
	case vlc.CodingB:
		pe.fwdRef, pe.bwdRef = e.refOld, e.refNew
	}
	if (typ == vlc.CodingP && pe.fwdRef == nil) || (typ == vlc.CodingB && (pe.fwdRef == nil || pe.bwdRef == nil)) {
		return fmt.Errorf("encoder: missing reference for %s picture %d", typ, display)
	}

	slicesPerRow := cfg.SlicesPerRow
	if slicesPerRow < 1 {
		slicesPerRow = 1
	}
	if rows := cfg.RowsPerSlice; rows > 1 {
		// Tall slices: bundle up to rows consecutive macroblock rows into
		// one slice. Rows are encoded independently (B-skip chains and the
		// first/last non-skip rule stay row-local, which remains valid in
		// the taller slice) and emitted under the first row's startcode.
		var acc []mpeg2.MB
		startRow := 0
		for row := 0; row < cfg.MBHeight(); row++ {
			mbs, err := pe.encodeRow(row, 1)
			if err != nil {
				return err
			}
			if len(acc) == 0 {
				startRow = row
			}
			acc = append(acc, mbs...)
			if row-startRow+1 >= rows || row == cfg.MBHeight()-1 {
				if err := mpeg2.EncodeSliceSpan(e.w, &params, startRow, qscale, acc); err != nil {
					return err
				}
				acc = acc[:0]
			}
		}
	} else {
		for row := 0; row < cfg.MBHeight(); row++ {
			mbs, err := pe.encodeRow(row, slicesPerRow)
			if err != nil {
				return err
			}
			// Emit the row as one or more slices (all share the row's
			// startcode; the first macroblock's address increment encodes
			// each slice's starting column).
			per := (len(mbs) + slicesPerRow - 1) / slicesPerRow
			for off := 0; off < len(mbs); off += per {
				end := off + per
				if end > len(mbs) {
					end = len(mbs)
				}
				if err := mpeg2.EncodeSlice(e.w, &params, row, qscale, mbs[off:end]); err != nil {
					return err
				}
			}
		}
	}

	bits := int(e.w.BitsWritten() - startBits)
	e.res.Pictures = append(e.res.Pictures, PictureInfo{
		DisplayIndex: display,
		TemporalRef:  tref,
		Type:         "?IPB"[int(typ)],
		Offset:       offset,
		Bits:         bits,
		QScale:       qscale,
	})
	e.rate.update(bits)

	if typ != vlc.CodingB {
		e.refOld, e.refNew = e.refNew, rec
		copy(e.mvField, pe.newField)
	}
	return nil
}

// picEncoder carries the state of one picture's encode.
type picEncoder struct {
	interlaced     bool
	e              *seqEncoder
	cfg            *Config
	seq            *mpeg2.SequenceHeader
	ph             *mpeg2.PictureHeader
	params         *mpeg2.PictureParams
	cur, rec       *frame.Frame
	fwdRef, bwdRef *frame.Frame
	typ            vlc.PictureCoding
	est            *motion.Estimator
	qscale         int
	newField       []mvEntry
}

func (pe *picEncoder) encodeRow(row, slicesPerRow int) ([]mpeg2.MB, error) {
	mbw := pe.cfg.MBWidth()
	if pe.newField == nil {
		pe.newField = make([]mvEntry, mbw*pe.cfg.MBHeight())
	}
	per := (mbw + slicesPerRow - 1) / slicesPerRow
	mbs := make([]mpeg2.MB, 0, mbw)
	var prev *mpeg2.MB
	for col := 0; col < mbw; col++ {
		addr := row*mbw + col
		// First/last macroblocks of each slice chunk cannot be skipped,
		// and the slice boundary resets prediction state: treat chunk
		// edges like row edges.
		within := col % per
		edge := within == 0 || within == per-1 || col == mbw-1
		if within == 0 {
			prev = nil // slice boundary: B-skip chaining cannot cross it
		}
		mb, err := pe.encodeMB(row, col, addr, prev, edge)
		if err != nil {
			return nil, err
		}
		mbs = append(mbs, mb)
		if !mb.Skipped {
			prev = &mbs[len(mbs)-1]
		}
	}
	return mbs, nil
}

func (pe *picEncoder) encodeMB(row, col, addr int, prev *mpeg2.MB, edge bool) (mpeg2.MB, error) {
	switch pe.typ {
	case vlc.CodingI:
		return pe.encodeIntraMB(row, col, addr), nil
	case vlc.CodingP:
		return pe.encodePMB(row, col, addr, edge), nil
	default:
		return pe.encodeBMB(row, col, addr, prev, edge), nil
	}
}

// extractBlock copies an 8×8 source block into b (step = frame lines per
// block row: 2 under field DCT).
func extractBlock(plane []uint8, stride, x, y, step int, b *[64]int32) {
	for r := 0; r < 8; r++ {
		src := plane[(y+r*step)*stride+x:]
		for c := 0; c < 8; c++ {
			b[r*8+c] = int32(src[c])
		}
	}
}

func (pe *picEncoder) encodeIntraMB(row, col, addr int) mpeg2.MB {
	mb := mpeg2.MB{Addr: addr, QScaleCode: pe.qscale, Type: vlc.MBType{Intra: true}}
	if pe.interlaced {
		mb.FieldDCT = fieldDCTBetter(func(x, y int) int32 {
			return int32(pe.cur.Y[(row*16+y)*pe.cur.YStride+col*16+x])
		})
	}
	p := quant.Params{Matrix: &pe.seq.IntraMatrix, Scale: pe.params.QScale(pe.qscale),
		Intra: true, DCPrecision: pe.ph.IntraDCPrecision}
	for b := 0; b < 6; b++ {
		var blk [64]int32
		plane, x, y, stride, step := blockGeometry(pe.cur, col, row, b, mb.FieldDCT)
		extractBlock(plane, stride, x, y, step, &blk)
		dct.ForwardRef(&blk)
		quant.Forward(&blk, p)
		mb.Blocks[b] = blk
		if pe.rec != nil {
			quant.Inverse(&blk, p)
			dct.Inverse(&blk)
			storeClamped(pe.rec, &blk, col, row, b, nil, mb.FieldDCT)
		}
	}
	pe.noteField(addr, mvEntry{})
	return mb
}

// interCost couples a candidate prediction with its SAD.
func (pe *picEncoder) intraActivity(row, col int) int {
	px, py := col*16, row*16
	var sum int
	for y := 0; y < 16; y++ {
		r := pe.cur.Y[(py+y)*pe.cur.YStride+px:]
		for x := 0; x < 16; x++ {
			sum += int(r[x])
		}
	}
	mean := sum / 256
	var act int
	for y := 0; y < 16; y++ {
		r := pe.cur.Y[(py+y)*pe.cur.YStride+px:]
		for x := 0; x < 16; x++ {
			d := int(r[x]) - mean
			if d < 0 {
				d = -d
			}
			act += d
		}
	}
	return act
}

func (pe *picEncoder) seeds(addr, col int, bwd bool) []motion.MV {
	var cands []motion.MV
	if col > 0 {
		if e := pe.newField[addr-1]; bwd && e.hasBwd {
			cands = append(cands, e.bwd)
		} else if !bwd && e.hasFwd {
			cands = append(cands, e.fwd)
		}
	}
	if e := pe.e.mvField[addr]; bwd && e.hasBwd {
		cands = append(cands, e.bwd)
	} else if !bwd && e.hasFwd {
		cands = append(cands, e.fwd)
	}
	return cands
}

func (pe *picEncoder) noteField(addr int, e mvEntry) {
	pe.newField[addr] = e
}

// fieldBias is the SAD advantage field prediction must show to justify
// its extra side information (two field selects and a second vector).
const fieldBias = 80

// tryFieldPred searches both macroblock fields against ref, seeded from
// the frame vector, and returns the field prediction if it beats the
// frame SAD by the bias.
func (pe *picEncoder) tryFieldPred(ref *frame.Frame, col, row int, frameMV motion.MV, frameSAD int) (mv1, mv2 motion.MV, sel [2]bool, ok bool) {
	cand := motion.MV{X: frameMV.X, Y: halfTrunc(frameMV.Y)}
	v0, s0, sad0 := motion.SearchField(pe.cur, ref, col, row, 0, pe.est.RangeHalf, cand)
	v1, s1, sad1 := motion.SearchField(pe.cur, ref, col, row, 1, pe.est.RangeHalf, cand)
	if sad0+sad1+fieldBias < frameSAD {
		return v0, v1, [2]bool{s0, s1}, true
	}
	return mv1, mv2, sel, false
}

func halfTrunc(v int) int {
	if v < 0 {
		return -(-v / 2)
	}
	return v / 2
}

func (pe *picEncoder) encodePMB(row, col, addr int, edge bool) mpeg2.MB {
	mv, sad := pe.est.Search(pe.cur, pe.fwdRef, col, row, pe.seeds(addr, col, false)...)
	if act := pe.intraActivity(row, col); act+64 < sad {
		mb := pe.encodeIntraMB(row, col, addr)
		return mb
	}
	pe.noteField(addr, mvEntry{fwd: mv, hasFwd: true})

	mb := mpeg2.MB{Addr: addr, QScaleCode: pe.qscale, Type: vlc.MBType{MotionForward: true}, MVFwd: mv}
	var pred motion.MBPred
	if pe.interlaced {
		if v0, v1, sel, ok := pe.tryFieldPred(pe.fwdRef, col, row, mv, sad); ok {
			mb.FieldMotion = true
			mb.MVFwd, mb.MVFwd2, mb.FieldSelFwd = v0, v1, sel
		}
	}
	if mb.FieldMotion {
		motion.PredictMBField(&pred, pe.fwdRef, col, row, mb.FieldSelFwd, mb.MVFwd, mb.MVFwd2)
	} else {
		motion.PredictMB(&pred, pe.fwdRef, col, row, mv)
	}
	cbp := pe.codeResidual(&mb, &pred, col, row)
	switch {
	case cbp == 0 && !mb.FieldMotion && mv == motion.Zero && !edge:
		mb.Skipped = true
		mb.Type = vlc.MBType{MotionForward: true}
	case cbp != 0:
		mb.Type.Pattern = true
	}
	if pe.rec != nil {
		pe.reconInter(&mb, &pred, col, row, cbp)
	}
	return mb
}

func (pe *picEncoder) encodeBMB(row, col, addr int, prev *mpeg2.MB, edge bool) mpeg2.MB {
	fwd, sadF := pe.est.Search(pe.cur, pe.fwdRef, col, row, pe.seeds(addr, col, false)...)
	bwd, sadB := pe.est.Search(pe.cur, pe.bwdRef, col, row, pe.seeds(addr, col, true)...)

	var predF, predB, predI motion.MBPred
	motion.PredictMB(&predF, pe.fwdRef, col, row, fwd)
	motion.PredictMB(&predB, pe.bwdRef, col, row, bwd)
	motion.AverageMB(&predI, &predF, &predB)
	sadI := sadMB(pe.cur, &predI, col, row)

	typ := vlc.MBType{MotionForward: true, MotionBackward: true}
	pred := &predI
	best := sadI
	if sadF < best {
		typ = vlc.MBType{MotionForward: true}
		pred = &predF
		best = sadF
	}
	if sadB < best {
		typ = vlc.MBType{MotionBackward: true}
		pred = &predB
		best = sadB
	}
	if act := pe.intraActivity(row, col); act+64 < best {
		return pe.encodeIntraMB(row, col, addr)
	}

	mb := mpeg2.MB{Addr: addr, QScaleCode: pe.qscale, Type: typ}
	if typ.MotionForward {
		mb.MVFwd = fwd
	}
	if typ.MotionBackward {
		mb.MVBwd = bwd
	}
	pe.noteField(addr, mvEntry{fwd: fwd, bwd: bwd, hasFwd: true, hasBwd: true})

	// Interlaced: try field prediction for the chosen direction mode (a
	// macroblock is either all-frame or all-field predicted).
	if pe.interlaced && !typ.MotionBackward {
		if v0, v1, sel, ok := pe.tryFieldPred(pe.fwdRef, col, row, fwd, best); ok {
			mb.FieldMotion = true
			mb.MVFwd, mb.MVFwd2, mb.FieldSelFwd = v0, v1, sel
			motion.PredictMBField(&predF, pe.fwdRef, col, row, sel, v0, v1)
			pred = &predF
		}
	} else if pe.interlaced && !typ.MotionForward {
		if v0, v1, sel, ok := pe.tryFieldPred(pe.bwdRef, col, row, bwd, best); ok {
			mb.FieldMotion = true
			mb.MVBwd, mb.MVBwd2, mb.FieldSelBwd = v0, v1, sel
			motion.PredictMBField(&predB, pe.bwdRef, col, row, sel, v0, v1)
			pred = &predB
		}
	}

	cbp := pe.codeResidual(&mb, pred, col, row)
	if cbp != 0 {
		mb.Type.Pattern = true
		return mb
	}
	// Skip if this macroblock exactly repeats the previous one with
	// frame prediction (field-predicted macroblocks cannot skip: a skip
	// always means frame prediction from the first PMVs).
	if !edge && prev != nil && !prev.Type.Intra &&
		!mb.FieldMotion && !prev.FieldMotion &&
		prev.Type.MotionForward == typ.MotionForward &&
		prev.Type.MotionBackward == typ.MotionBackward &&
		(!typ.MotionForward || prev.MVFwd == mb.MVFwd) &&
		(!typ.MotionBackward || prev.MVBwd == mb.MVBwd) {
		mb.Skipped = true
		mb.Type.Pattern = false
	}
	return mb
}

// codeResidual transforms and quantizes cur−pred into mb.Blocks (honoring
// mb.FieldDCT, which it decides first when interlaced), returning the
// coded block pattern.
func (pe *picEncoder) codeResidual(mb *mpeg2.MB, pred *motion.MBPred, col, row int) int {
	if pe.interlaced {
		mb.FieldDCT = fieldDCTBetter(func(x, y int) int32 {
			return int32(pe.cur.Y[(row*16+y)*pe.cur.YStride+col*16+x]) - int32(pred.Y[y*16+x])
		})
	}
	p := quant.Params{Matrix: &pe.seq.NonIntraMatrix, Scale: pe.params.QScale(pe.qscale)}
	cbp := 0
	for b := 0; b < 6; b++ {
		var blk [64]int32
		plane, x, y, stride, step := blockGeometry(pe.cur, col, row, b, mb.FieldDCT)
		psrc, pstride := predBlock(pred, b, mb.FieldDCT)
		for r := 0; r < 8; r++ {
			src := plane[(y+r*step)*stride+x:]
			pr := psrc[r*pstride:]
			for c := 0; c < 8; c++ {
				blk[r*8+c] = int32(src[c]) - int32(pr[c])
			}
		}
		dct.ForwardRef(&blk)
		quant.Forward(&blk, p)
		nz := false
		for _, v := range blk {
			if v != 0 {
				nz = true
				break
			}
		}
		if nz {
			cbp |= 1 << uint(5-b)
			mb.Blocks[b] = blk
		}
	}
	if cbp == 0 {
		mb.FieldDCT = false // dct_type is only coded for coded macroblocks
	}
	return cbp
}

// reconInter reconstructs an inter macroblock exactly as the decoder will.
func (pe *picEncoder) reconInter(mb *mpeg2.MB, pred *motion.MBPred, col, row, cbp int) {
	p := quant.Params{Matrix: &pe.seq.NonIntraMatrix, Scale: pe.params.QScale(mb.QScaleCode)}
	for b := 0; b < 6; b++ {
		if cbp&(1<<uint(5-b)) != 0 {
			blk := mb.Blocks[b]
			quant.Inverse(&blk, p)
			dct.Inverse(&blk)
			storeClamped(pe.rec, &blk, col, row, b, pred, mb.FieldDCT)
		} else {
			storeClamped(pe.rec, nil, col, row, b, pred, mb.FieldDCT)
		}
	}
}

// blockGeometry mirrors the decoder's block layout, including the field
// DCT organization (luma blocks hold one field each, stepping two lines).
func blockGeometry(f *frame.Frame, mbx, mby, b int, fieldDCT bool) (plane []uint8, x, y, stride, step int) {
	if b < 4 {
		x = mbx*16 + (b&1)*8
		if fieldDCT {
			return f.Y, x, mby*16 + (b >> 1), f.YStride, 2
		}
		return f.Y, x, mby*16 + (b>>1)*8, f.YStride, 1
	}
	if b == 4 {
		return f.Cb, mbx * 8, mby * 8, f.CStride, 1
	}
	return f.Cr, mbx * 8, mby * 8, f.CStride, 1
}

func predBlock(pred *motion.MBPred, b int, fieldDCT bool) ([]uint8, int) {
	switch {
	case b < 4:
		if fieldDCT {
			return pred.Y[(b>>1)*16+(b&1)*8:], 32
		}
		return pred.Y[(b>>1)*8*16+(b&1)*8:], 16
	case b == 4:
		return pred.Cb[:], 8
	default:
		return pred.Cr[:], 8
	}
}

// fieldDCTBetter reports whether the macroblock's 16×16 luma samples (or
// residual) correlate better within fields than across adjacent lines —
// the standard interlace-detection heuristic for dct_type.
func fieldDCTBetter(get func(x, y int) int32) bool {
	var frameScore, fieldScore int64
	for y := 0; y < 14; y++ {
		for x := 0; x < 16; x++ {
			v := get(x, y)
			d1 := int64(v - get(x, y+1))
			d2 := int64(v - get(x, y+2))
			if d1 < 0 {
				d1 = -d1
			}
			if d2 < 0 {
				d2 = -d2
			}
			frameScore += d1
			fieldScore += d2
		}
	}
	return fieldScore < frameScore
}

// storeClamped writes blk (+ prediction when pred != nil) into f, clamping
// to pixel range — identical arithmetic to the decoder's reconstruction.
func storeClamped(f *frame.Frame, blk *[64]int32, mbx, mby, b int, pred *motion.MBPred, fieldDCT bool) {
	plane, x, y, stride, step := blockGeometry(f, mbx, mby, b, fieldDCT)
	var psrc []uint8
	pstride := 0
	if pred != nil {
		psrc, pstride = predBlock(pred, b, fieldDCT)
	}
	for r := 0; r < 8; r++ {
		row := plane[(y+r*step)*stride+x:]
		for c := 0; c < 8; c++ {
			var v int32
			if blk != nil {
				v = blk[r*8+c]
			}
			if pred != nil {
				v += int32(psrc[r*pstride+c])
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			row[c] = uint8(v)
		}
	}
}

func sadMB(cur *frame.Frame, pred *motion.MBPred, mbx, mby int) int {
	px, py := mbx*16, mby*16
	sad := 0
	for y := 0; y < 16; y++ {
		c := cur.Y[(py+y)*cur.YStride+px:]
		p := pred.Y[y*16:]
		for x := 0; x < 16; x++ {
			d := int(c[x]) - int(p[x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}
