package encoder

import "mpeg2par/internal/vlc"

// rateCtl is a minimal feedback rate controller: it tracks the cumulative
// difference between produced and budgeted bits and nudges the quantiser
// scale to steer the stream toward the configured bitrate. With BitRate=0
// the encoder runs constant-quality at the configured scale codes.
type rateCtl struct {
	enabled      bool
	targetPerPic float64
	debt         float64
	adjust       int
	qI, qP, qB   int
}

func newRateCtl(cfg Config) rateCtl {
	r := rateCtl{qI: cfg.QScaleI, qP: cfg.QScaleP, qB: cfg.QScaleB}
	if cfg.BitRate > 0 {
		r.enabled = true
		r.targetPerPic = float64(cfg.BitRate) / cfg.FrameRate
	}
	return r
}

func (r *rateCtl) qFor(typ vlc.PictureCoding) int {
	q := r.qB
	switch typ {
	case vlc.CodingI:
		q = r.qI
	case vlc.CodingP:
		q = r.qP
	}
	q += r.adjust
	if q < 1 {
		q = 1
	}
	if q > 31 {
		q = 31
	}
	return q
}

func (r *rateCtl) update(bits int) {
	if !r.enabled {
		return
	}
	r.debt += float64(bits) - r.targetPerPic
	// Proportional control with a dead zone of two pictures' budget.
	switch {
	case r.debt > 2*r.targetPerPic:
		r.adjust = int(r.debt / (4 * r.targetPerPic))
	case r.debt < -2*r.targetPerPic:
		r.adjust = int(r.debt / (8 * r.targetPerPic))
	default:
		r.adjust = 0
	}
	if r.adjust > 20 {
		r.adjust = 20
	}
	if r.adjust < -6 {
		r.adjust = -6
	}
}
