// Package faults injects deterministic, seeded damage into MPEG-2
// elementary streams. It is the adversary half of the error-resilience
// story: the decoder's Resilience ladder (internal/core) consumes the
// corruption this package produces, and the sweep harness
// (cmd/mpeg2bench -faults) measures how gracefully quality degrades.
//
// Every fault kind is driven by math/rand's frozen Go-1 generator seeded
// from the caller's seed, so a (Spec, seed, input) triple always yields
// the same corrupted stream — the property the cross-mode golden tests
// and the fuzz corpora depend on.
//
// The first sequence header is never damaged: without it no decoder can
// even size its frame buffers, and transport protocols protect such
// configuration data far more heavily than payload in practice. All
// later bytes — GOP headers, picture headers, slices — are fair game.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mpeg2par/internal/bits"
)

// Kind enumerates the corruption models.
type Kind int

const (
	// None leaves the stream untouched (the sweep's clean baseline).
	None Kind = iota
	// BitFlip flips Count single bits at random unprotected offsets.
	BitFlip
	// ByteBurst overwrites Count runs of Len random bytes.
	ByteBurst
	// Truncate cuts the stream, keeping roughly Rate of its bytes.
	Truncate
	// DropSlice excises Count whole slices (startcode through next
	// startcode), the loss unit the paper's random-access property makes
	// recoverable.
	DropSlice
	// DropPicture excises Count whole pictures (picture startcode
	// through the next picture/GOP/sequence startcode).
	DropPicture
	// PacketLoss models bursty transport loss with a two-state
	// Gilbert-Elliott chain over Len-byte packets: packets arriving in
	// the bad state are excised. Rate is the stationary loss rate and
	// Burst the mean bad-state run length in packets.
	PacketLoss
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BitFlip:
		return "bitflip"
	case ByteBurst:
		return "burst"
	case Truncate:
		return "truncate"
	case DropSlice:
		return "dropslice"
	case DropPicture:
		return "droppic"
	case PacketLoss:
		return "gilbert"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec describes one corruption to apply.
type Spec struct {
	Kind  Kind
	Count int     // BitFlip: bits; ByteBurst: bursts; DropSlice/DropPicture: units
	Len   int     // ByteBurst: bytes per burst; PacketLoss: packet size in bytes
	Rate  float64 // Truncate: fraction of the stream kept; PacketLoss: loss rate
	Burst float64 // PacketLoss: mean bad-state run length in packets
}

// String renders the spec in the form Parse accepts.
func (s Spec) String() string {
	switch s.Kind {
	case None:
		return "none"
	case BitFlip:
		return fmt.Sprintf("bitflip:%d", s.Count)
	case ByteBurst:
		return fmt.Sprintf("burst:count=%d,len=%d", s.Count, s.Len)
	case Truncate:
		return fmt.Sprintf("truncate:%g", s.Rate)
	case DropSlice:
		return fmt.Sprintf("dropslice:%d", s.Count)
	case DropPicture:
		return fmt.Sprintf("droppic:%d", s.Count)
	case PacketLoss:
		return fmt.Sprintf("gilbert:loss=%g,burst=%g,pkt=%d", s.Rate, s.Burst, s.Len)
	}
	return s.Kind.String()
}

// Parse reads a fault spec of the form kind[:params]. Params are either a
// single positional value (the kind's primary knob) or key=value pairs:
//
//	bitflip:8            flip 8 random bits
//	burst:count=2,len=16 two 16-byte random bursts
//	truncate:0.9         keep the first ~90% of the stream
//	dropslice:3          excise 3 random slices
//	droppic:1            excise 1 random picture
//	gilbert:loss=0.02,burst=4,pkt=188   bursty 2% packet loss
func Parse(s string) (Spec, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	var sp Spec
	switch name {
	case "none", "":
		return Spec{Kind: None}, nil
	case "bitflip":
		sp = Spec{Kind: BitFlip, Count: 1}
	case "burst":
		sp = Spec{Kind: ByteBurst, Count: 1, Len: 8}
	case "truncate":
		sp = Spec{Kind: Truncate, Rate: 0.9}
	case "dropslice":
		sp = Spec{Kind: DropSlice, Count: 1}
	case "droppic":
		sp = Spec{Kind: DropPicture, Count: 1}
	case "gilbert":
		sp = Spec{Kind: PacketLoss, Len: 188, Rate: 0.01, Burst: 4}
	default:
		return Spec{}, fmt.Errorf("faults: unknown kind %q", name)
	}
	if rest == "" {
		return sp, nil
	}
	for _, field := range strings.Split(rest, ",") {
		key, val, hasKey := strings.Cut(field, "=")
		if !hasKey {
			// Positional primary knob.
			switch sp.Kind {
			case Truncate:
				key, val = "rate", field
			default:
				key, val = "count", field
			}
		}
		switch key {
		case "count", "n":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("faults: bad count %q", val)
			}
			sp.Count = n
		case "len", "pkt":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("faults: bad length %q", val)
			}
			sp.Len = n
		case "rate", "loss":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f >= 1 {
				return Spec{}, fmt.Errorf("faults: bad rate %q", val)
			}
			sp.Rate = f
		case "burst":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 1 {
				return Spec{}, fmt.Errorf("faults: bad burst length %q", val)
			}
			sp.Burst = f
		default:
			return Spec{}, fmt.Errorf("faults: unknown parameter %q", key)
		}
	}
	return sp, nil
}

// Report describes the damage one Apply call inflicted.
type Report struct {
	Spec           string `json:"spec"`
	Seed           int64  `json:"seed"`
	Events         int    `json:"events"`          // individual faults applied
	BitsFlipped    int    `json:"bits_flipped"`    // BitFlip only
	BytesCorrupted int    `json:"bytes_corrupted"` // overwritten in place
	BytesDropped   int    `json:"bytes_dropped"`   // excised from the stream
	InLen          int    `json:"in_len"`
	OutLen         int    `json:"out_len"`
}

// Apply corrupts a copy of data according to the spec, deterministically
// in (spec, seed, data). The input is never modified.
func (s Spec) Apply(data []byte, seed int64) ([]byte, Report) {
	rep := Report{Spec: s.String(), Seed: seed, InLen: len(data)}
	out := append([]byte(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	protect := protectedPrefix(out)

	switch s.Kind {
	case None:
	case BitFlip:
		if len(out) > protect {
			for i := 0; i < s.Count; i++ {
				off := protect + rng.Intn(len(out)-protect)
				out[off] ^= 1 << uint(rng.Intn(8))
				rep.Events++
				rep.BitsFlipped++
			}
		}
	case ByteBurst:
		n := s.Len
		if n < 1 {
			n = 8
		}
		if len(out) > protect {
			for i := 0; i < s.Count; i++ {
				off := protect + rng.Intn(len(out)-protect)
				end := off + n
				if end > len(out) {
					end = len(out)
				}
				for j := off; j < end; j++ {
					out[j] = byte(rng.Intn(256))
					rep.BytesCorrupted++
				}
				rep.Events++
			}
		}
	case Truncate:
		cut := int(s.Rate * float64(len(out)))
		if cut < protect {
			cut = protect
		}
		if cut < len(out) {
			rep.BytesDropped = len(out) - cut
			rep.Events = 1
			out = out[:cut]
		}
	case DropSlice:
		out = dropRanges(out, sliceRanges(out, protect), s.Count, rng, &rep)
	case DropPicture:
		out = dropRanges(out, pictureRanges(out, protect), s.Count, rng, &rep)
	case PacketLoss:
		out = gilbertLoss(out, protect, s, rng, &rep)
	}
	rep.OutLen = len(out)
	return out, rep
}

// protectedPrefix returns the end of the stream's first sequence header
// (through its immediately following startcode), which faults never
// touch. Streams without a recognizable header get a small fixed guard.
func protectedPrefix(data []byte) int {
	first := bits.FindStartCode(data, 0)
	if first < 0 {
		return min(len(data), 4)
	}
	next := bits.FindStartCode(data, first+4)
	if next < 0 {
		return min(len(data), first+12)
	}
	return next
}

// Range is a half-open byte span within the stream.
type Range struct{ Start, End int }

// sliceRanges indexes every slice (startcode 0x01..0xAF) after the
// protected prefix; each slice extends to the next startcode.
func sliceRanges(data []byte, protect int) []Range {
	var rs []Range
	for pos := protect; ; {
		i := bits.FindStartCode(data, pos)
		if i < 0 || i+3 >= len(data) {
			break
		}
		code := data[i+3]
		pos = i + 4
		if code < 0x01 || code > 0xAF {
			continue
		}
		end := bits.FindStartCode(data, pos)
		if end < 0 {
			end = len(data)
		}
		rs = append(rs, Range{Start: i, End: end})
	}
	return rs
}

// pictureRanges indexes every picture (startcode 0x00) after the
// protected prefix; each extends past its slices to the next
// picture/GOP/sequence startcode.
func pictureRanges(data []byte, protect int) []Range {
	var rs []Range
	for pos := protect; ; {
		i := bits.FindStartCode(data, pos)
		if i < 0 || i+3 >= len(data) {
			break
		}
		code := data[i+3]
		pos = i + 4
		if code != 0x00 {
			continue
		}
		end := len(data)
		for p := pos; ; {
			j := bits.FindStartCode(data, p)
			if j < 0 || j+3 >= len(data) {
				break
			}
			c := data[j+3]
			if c == 0x00 || c >= 0xB0 {
				end = j
				break
			}
			p = j + 4
		}
		rs = append(rs, Range{Start: i, End: end})
	}
	return rs
}

// dropRanges excises count randomly chosen ranges (without replacement).
func dropRanges(data []byte, rs []Range, count int, rng *rand.Rand, rep *Report) []byte {
	if len(rs) == 0 {
		return data
	}
	if count > len(rs) {
		count = len(rs)
	}
	picked := rng.Perm(len(rs))[:count]
	sort.Ints(picked)
	out := make([]byte, 0, len(data))
	prev := 0
	for _, pi := range picked {
		r := rs[pi]
		if r.Start < prev { // overlapping ranges after earlier excisions
			continue
		}
		out = append(out, data[prev:r.Start]...)
		rep.BytesDropped += r.End - r.Start
		rep.Events++
		prev = r.End
	}
	out = append(out, data[prev:]...)
	return out
}

// gilbertLoss walks Len-byte packets through a two-state Gilbert-Elliott
// chain and excises packets arriving in the bad state. With stationary
// loss rate r and mean bad-run length L, P(bad→good) = 1/L and
// P(good→bad) = r / (L·(1−r)).
func gilbertLoss(data []byte, protect int, s Spec, rng *rand.Rand, rep *Report) []byte {
	pkt := s.Len
	if pkt < 1 {
		pkt = 188
	}
	burst := s.Burst
	if burst < 1 {
		burst = 1
	}
	pBG := 1 / burst
	pGB := s.Rate / (burst * (1 - s.Rate))
	if pGB > 1 {
		pGB = 1
	}
	out := append([]byte(nil), data[:protect]...)
	bad := false
	for off := protect; off < len(data); off += pkt {
		end := off + pkt
		if end > len(data) {
			end = len(data)
		}
		if bad {
			if rng.Float64() < pBG {
				bad = false
			}
		} else if rng.Float64() < pGB {
			bad = true
		}
		if bad {
			rep.BytesDropped += end - off
			rep.Events++
			continue
		}
		out = append(out, data[off:end]...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
