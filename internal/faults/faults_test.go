package faults

import (
	"bytes"
	"testing"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

func testStream(t testing.TB) []byte {
	t.Helper()
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 80, Height: 48, Pictures: 8, GOPSize: 4, RepeatSequenceHeader: true,
	}, frame.NewSynth(80, 48))
	if err != nil {
		t.Fatal(err)
	}
	return res.Data
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"bitflip:8",
		"burst:count=2,len=16",
		"truncate:0.9",
		"dropslice:3",
		"droppic:1",
		"gilbert:loss=0.02,burst=4,pkt=188",
		"none",
	} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		sp2, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", s, sp.String(), err)
		}
		if sp != sp2 {
			t.Fatalf("round trip %q: %+v != %+v", s, sp, sp2)
		}
	}
	for _, s := range []string{"explode", "bitflip:x", "truncate:2", "gilbert:burst=0.1", "bitflip:n=0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	data := testStream(t)
	for _, spec := range []string{
		"bitflip:16", "burst:count=3,len=12", "truncate:0.7",
		"dropslice:4", "droppic:2", "gilbert:loss=0.2,burst=3,pkt=32",
	} {
		sp, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, ra := sp.Apply(data, 42)
		b, rb := sp.Apply(data, 42)
		if !bytes.Equal(a, b) || ra != rb {
			t.Fatalf("%s: same seed produced different corruption", spec)
		}
		if ra.Events == 0 {
			t.Errorf("%s: no faults applied", spec)
		}
		if sp.Kind == Truncate {
			continue // the cut point is seed-independent by design
		}
		c, _ := sp.Apply(data, 43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical corruption", spec)
		}
	}
}

func TestApplyLeavesInputAndHeaderIntact(t *testing.T) {
	data := testStream(t)
	orig := append([]byte(nil), data...)
	protect := protectedPrefix(data)
	if protect < 8 {
		t.Fatalf("protected prefix %d suspiciously small", protect)
	}
	for _, spec := range []string{"bitflip:64", "burst:count=8,len=32", "gilbert:loss=0.2,burst=2,pkt=32"} {
		sp, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 8; seed++ {
			out, _ := sp.Apply(data, seed)
			if !bytes.Equal(data, orig) {
				t.Fatalf("%s: Apply mutated its input", spec)
			}
			if len(out) < protect || !bytes.Equal(out[:protect], orig[:protect]) {
				t.Fatalf("%s seed %d: sequence header damaged", spec, seed)
			}
		}
	}
}

func TestDropSliceRemovesSliceBytes(t *testing.T) {
	data := testStream(t)
	slices := sliceRanges(data, protectedPrefix(data))
	if len(slices) == 0 {
		t.Fatal("no slices indexed")
	}
	sp := Spec{Kind: DropSlice, Count: 2}
	out, rep := sp.Apply(data, 7)
	if rep.Events != 2 || rep.BytesDropped == 0 {
		t.Fatalf("drop report %+v", rep)
	}
	if len(out) != len(data)-rep.BytesDropped {
		t.Fatalf("dropped %d bytes but stream shrank by %d", rep.BytesDropped, len(data)-len(out))
	}
}

func TestDropPictureRanges(t *testing.T) {
	data := testStream(t)
	pics := pictureRanges(data, protectedPrefix(data))
	if len(pics) != 8 {
		t.Fatalf("indexed %d pictures, want 8", len(pics))
	}
	for _, r := range pics {
		if r.End <= r.Start {
			t.Fatalf("inverted picture range %+v", r)
		}
	}
	out, rep := Spec{Kind: DropPicture, Count: 1}.Apply(data, 3)
	if rep.Events != 1 {
		t.Fatalf("report %+v", rep)
	}
	if got := pictureRanges(out, protectedPrefix(out)); len(got) != 7 {
		t.Fatalf("%d pictures survive a single-picture drop, want 7", len(got))
	}
}

func TestTruncateKeepsFraction(t *testing.T) {
	data := testStream(t)
	out, rep := Spec{Kind: Truncate, Rate: 0.5}.Apply(data, 1)
	if len(out) != len(data)/2 {
		t.Fatalf("kept %d of %d bytes", len(out), len(data))
	}
	if rep.BytesDropped != len(data)-len(out) {
		t.Fatalf("report %+v", rep)
	}
}

func TestGilbertLossRate(t *testing.T) {
	// Over a long synthetic payload the realized loss rate should land
	// near the configured stationary rate.
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	sp := Spec{Kind: PacketLoss, Len: 188, Rate: 0.10, Burst: 5}
	out, rep := sp.Apply(data, 9)
	lost := float64(rep.BytesDropped) / float64(len(data))
	if lost < 0.05 || lost > 0.20 {
		t.Fatalf("realized loss %.3f, configured 0.10", lost)
	}
	if len(out)+rep.BytesDropped != len(data) {
		t.Fatalf("byte accounting off: %d + %d != %d", len(out), rep.BytesDropped, len(data))
	}
}

func TestNoneIsIdentity(t *testing.T) {
	data := testStream(t)
	out, rep := Spec{Kind: None}.Apply(data, 5)
	if !bytes.Equal(out, data) || rep.Events != 0 {
		t.Fatalf("none corrupted the stream: %+v", rep)
	}
}
