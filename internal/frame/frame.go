// Package frame provides YCbCr 4:2:0 picture buffers, a counting frame
// pool (the memory-requirements experiments need byte-level accounting),
// PSNR measurement, scaling, and a deterministic synthetic video source
// standing in for the paper's flower-garden test clip.
package frame

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Frame is one decoded or source picture in planar YCbCr 4:2:0.
//
// The coded dimensions are the display dimensions rounded up to whole
// macroblocks (16×16); planes are allocated at coded size so slice and
// motion-compensation code never needs edge special cases for the last
// macroblock row/column. Chroma planes are coded-size/2 in each dimension.
type Frame struct {
	Width, Height  int // display size in pixels
	CodedW, CodedH int // coded size, multiples of 16
	// Row strides of the planes. YStride ≥ CodedW and CStride ≥ CodedW/2;
	// they exceed the coded width when the layout pads rows to break
	// cache-set aliasing (see PadStrides). Bytes between CodedW and the
	// stride are slack: never read by reconstruction, undefined after pool
	// reuse, and ignored by Equal.
	YStride, CStride int
	Y, Cb, Cr        []uint8
	TemporalRef    int // display order within its GOP
	DisplayIndex   int // absolute display order within the sequence
	PictureType    byte

	rc int32 // reference count (used by the parallel decoders' pools)
}

// Retain adds n to the frame's reference count. The count starts at zero;
// owners that share a frame between consumers (display queue, prediction
// references) retain once per consumer and Release when done.
func (f *Frame) Retain(n int32) { atomic.AddInt32(&f.rc, n) }

// Release decrements the reference count and reports whether it reached
// zero (the frame may then be recycled).
func (f *Frame) Release() bool { return atomic.AddInt32(&f.rc, -1) <= 0 }

// RefCount returns the current reference count (for tests and accounting).
func (f *Frame) RefCount() int32 { return atomic.LoadInt32(&f.rc) }

// Coded rounds n up to a multiple of 16.
func Coded(n int) int { return (n + 15) &^ 15 }

// PadStrides enables the row-padded plane layout adopted by the cache
// locality study (see DESIGN.md): when a plane's width is a multiple of
// 512 bytes, vertically adjacent rows alias to the same cache sets in the
// power-of-two-indexed caches the paper's SMP hosts used, and the column
// walks of motion compensation and the IDCT thrash those sets. Padding
// each such row by one 64-byte line spreads consecutive rows across sets.
// Widths that are not 512-multiples are left dense — padding them costs
// memory and cachesim showed no benefit.
var PadStrides = true

// planeStride returns the row stride for a plane of width w bytes under
// the current layout policy.
func planeStride(w int) int {
	if PadStrides && w >= 512 && w%512 == 0 {
		return w + 64
	}
	return w
}

// New allocates a frame for a width×height picture.
func New(width, height int) *Frame {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("frame: invalid size %dx%d", width, height))
	}
	cw, ch := Coded(width), Coded(height)
	ys, cs := planeStride(cw), planeStride(cw/2)
	return &Frame{
		Width:   width,
		Height:  height,
		CodedW:  cw,
		CodedH:  ch,
		YStride: ys,
		CStride: cs,
		Y:       make([]uint8, ys*ch),
		Cb:      make([]uint8, cs*ch/2),
		Cr:      make([]uint8, cs*ch/2),
	}
}

// Bytes returns the total plane storage of the frame in bytes.
func (f *Frame) Bytes() int { return len(f.Y) + len(f.Cb) + len(f.Cr) }

// Clone returns a deep copy of the frame with a zero reference count.
// Fields are copied individually — a whole-struct copy would race with
// concurrent atomic Retain/Release on the reference count.
func (f *Frame) Clone() *Frame {
	return &Frame{
		Width:        f.Width,
		Height:       f.Height,
		CodedW:       f.CodedW,
		CodedH:       f.CodedH,
		YStride:      f.YStride,
		CStride:      f.CStride,
		TemporalRef:  f.TemporalRef,
		DisplayIndex: f.DisplayIndex,
		PictureType:  f.PictureType,
		Y:            append([]uint8(nil), f.Y...),
		Cb:           append([]uint8(nil), f.Cb...),
		Cr:           append([]uint8(nil), f.Cr...),
	}
}

// Equal reports whether two frames have identical display dimensions and
// pixel data over the coded area. Row slack beyond CodedW (present under
// padded layouts) is ignored: it is never written by reconstruction and
// holds stale bytes after pool reuse.
func (f *Frame) Equal(g *Frame) bool {
	if f.Width != g.Width || f.Height != g.Height || f.CodedW != g.CodedW || f.CodedH != g.CodedH {
		return false
	}
	return planeEqual(f.Y, g.Y, f.YStride, g.YStride, f.CodedW, f.CodedH) &&
		planeEqual(f.Cb, g.Cb, f.CStride, g.CStride, f.CodedW/2, f.CodedH/2) &&
		planeEqual(f.Cr, g.Cr, f.CStride, g.CStride, f.CodedW/2, f.CodedH/2)
}

func planeEqual(a, b []uint8, aStride, bStride, w, h int) bool {
	for y := 0; y < h; y++ {
		ra := a[y*aStride : y*aStride+w]
		rb := b[y*bStride : y*bStride+w]
		for x := range ra {
			if ra[x] != rb[x] {
				return false
			}
		}
	}
	return true
}

// Fill sets every sample of all three planes to v (mid-grey 128 is the
// error-concealment background when no reference picture exists).
func (f *Frame) Fill(v uint8) {
	for _, pl := range [][]uint8{f.Y, f.Cb, f.Cr} {
		if len(pl) == 0 {
			continue
		}
		pl[0] = v
		for n := 1; n < len(pl); n *= 2 {
			copy(pl[n:], pl[:n])
		}
	}
}

// CopyPixelsFrom copies src's coded-area pixels into f when the coded
// geometries match, reporting whether the copy happened. Whole-picture
// substitution under error resilience uses this to repeat a reference
// frame. The row-wise copy tolerates differing strides.
func (f *Frame) CopyPixelsFrom(src *Frame) bool {
	if src == nil || src.CodedW != f.CodedW || src.CodedH != f.CodedH {
		return false
	}
	copyPlane(f.Y, src.Y, f.YStride, src.YStride, f.CodedW, f.CodedH)
	copyPlane(f.Cb, src.Cb, f.CStride, src.CStride, f.CodedW/2, f.CodedH/2)
	copyPlane(f.Cr, src.Cr, f.CStride, src.CStride, f.CodedW/2, f.CodedH/2)
	return true
}

func copyPlane(dst, src []uint8, dStride, sStride, w, h int) {
	if dStride == sStride && len(dst) == len(src) {
		copy(dst, src)
		return
	}
	for y := 0; y < h; y++ {
		copy(dst[y*dStride:y*dStride+w], src[y*sStride:y*sStride+w])
	}
}

// PSNR returns the luma peak signal-to-noise ratio between two frames of
// identical display size, in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if a.Width != b.Width || a.Height != b.Height {
		return 0
	}
	var se float64
	for y := 0; y < a.Height; y++ {
		ra := a.Y[y*a.YStride : y*a.YStride+a.Width]
		rb := b.Y[y*b.YStride : y*b.YStride+b.Width]
		for x := range ra {
			d := float64(int(ra[x]) - int(rb[x]))
			se += d * d
		}
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(a.Width*a.Height)
	return 10 * math.Log10(255*255/mse)
}

// Scale returns the frame bilinearly resampled to dstW×dstH (the paper
// built its larger test streams by interpolating the base clip the same
// way).
func (f *Frame) Scale(dstW, dstH int) *Frame {
	g := New(dstW, dstH)
	scalePlane(f.Y, f.YStride, f.Width, f.Height, g.Y, g.YStride, g.Width, g.Height)
	scalePlane(f.Cb, f.CStride, f.Width/2, f.Height/2, g.Cb, g.CStride, g.Width/2, g.Height/2)
	scalePlane(f.Cr, f.CStride, f.Width/2, f.Height/2, g.Cr, g.CStride, g.Width/2, g.Height/2)
	g.padEdges()
	return g
}

func scalePlane(src []uint8, srcStride, srcW, srcH int, dst []uint8, dstStride, dstW, dstH int) {
	if srcW < 1 || srcH < 1 {
		return
	}
	for y := 0; y < dstH; y++ {
		sy := float64(y) * float64(srcH-1) / float64(max(dstH-1, 1))
		y0 := int(sy)
		fy := sy - float64(y0)
		y1 := min(y0+1, srcH-1)
		for x := 0; x < dstW; x++ {
			sx := float64(x) * float64(srcW-1) / float64(max(dstW-1, 1))
			x0 := int(sx)
			fx := sx - float64(x0)
			x1 := min(x0+1, srcW-1)
			p00 := float64(src[y0*srcStride+x0])
			p01 := float64(src[y0*srcStride+x1])
			p10 := float64(src[y1*srcStride+x0])
			p11 := float64(src[y1*srcStride+x1])
			v := p00*(1-fy)*(1-fx) + p01*(1-fy)*fx + p10*fy*(1-fx) + p11*fy*fx
			dst[y*dstStride+x] = uint8(v + 0.5)
		}
	}
}

// Pad replicates the last display row/column into the coded margin so
// that motion search and DCT over partial macroblocks see sensible data.
// It is idempotent.
func (f *Frame) Pad() { f.padEdges() }

// padEdges replicates the last display row/column into the coded margin so
// that motion search and DCT over partial macroblocks see sensible data.
func (f *Frame) padEdges() {
	padPlane(f.Y, f.YStride, f.Width, f.Height, f.CodedH)
	padPlane(f.Cb, f.CStride, f.Width/2, f.Height/2, f.CodedH/2)
	padPlane(f.Cr, f.CStride, f.Width/2, f.Height/2, f.CodedH/2)
}

func padPlane(p []uint8, stride, w, h, codedH int) {
	if w < 1 || h < 1 {
		return
	}
	for y := 0; y < h; y++ {
		row := p[y*stride:]
		for x := w; x < stride; x++ {
			row[x] = row[w-1]
		}
	}
	for y := h; y < codedH; y++ {
		copy(p[y*stride:(y+1)*stride], p[(h-1)*stride:h*stride])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
