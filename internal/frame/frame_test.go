package frame

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoded(t *testing.T) {
	cases := map[int]int{1: 16, 16: 16, 17: 32, 120: 128, 240: 240, 352: 352, 1408: 1408, 960: 960}
	for in, want := range cases {
		if got := Coded(in); got != want {
			t.Errorf("Coded(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewGeometry(t *testing.T) {
	f := New(176, 120)
	if f.CodedW != 176 || f.CodedH != 128 {
		t.Fatalf("coded = %dx%d, want 176x128", f.CodedW, f.CodedH)
	}
	if len(f.Y) != 176*128 || len(f.Cb) != 88*64 || len(f.Cr) != 88*64 {
		t.Fatalf("plane sizes wrong: %d %d %d", len(f.Y), len(f.Cb), len(f.Cr))
	}
	if f.Bytes() != 176*128+2*88*64 {
		t.Fatalf("Bytes = %d", f.Bytes())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero size")
		}
	}()
	New(0, 10)
}

func TestCloneAndEqual(t *testing.T) {
	f := NewSynth(64, 48).Frame(0)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal")
	}
	g.Y[0] ^= 0xFF
	if f.Equal(g) {
		t.Fatal("mutated clone still equal")
	}
	h := New(64, 32)
	if f.Equal(h) {
		t.Fatal("different sizes equal")
	}
}

func TestPSNR(t *testing.T) {
	f := NewSynth(64, 48).Frame(0)
	if p := PSNR(f, f); !math.IsInf(p, 1) {
		t.Fatalf("identical frames PSNR = %f", p)
	}
	g := f.Clone()
	for i := range g.Y {
		g.Y[i] = uint8(int(g.Y[i]) ^ 4)
	}
	p := PSNR(f, g)
	if p < 30 || p > 45 {
		t.Fatalf("small-noise PSNR = %f, expected ~36", p)
	}
	// Mismatched sizes.
	if PSNR(f, New(32, 32)) != 0 {
		t.Fatal("mismatched sizes should give 0")
	}
}

func TestScaleFlat(t *testing.T) {
	f := New(32, 32)
	for i := range f.Y {
		f.Y[i] = 77
	}
	for i := range f.Cb {
		f.Cb[i] = 100
		f.Cr[i] = 200
	}
	g := f.Scale(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			if g.Y[y*g.CodedW+x] != 77 {
				t.Fatalf("flat scale broke at %d,%d: %d", x, y, g.Y[y*g.CodedW+x])
			}
		}
	}
	if g.Cb[0] != 100 || g.Cr[0] != 200 {
		t.Fatal("chroma scale broke")
	}
}

func TestScalePreservesGradient(t *testing.T) {
	f := New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f.Y[y*f.CodedW+x] = uint8(4 * x)
		}
	}
	g := f.Scale(128, 128)
	// Gradient must remain monotone along x.
	for x := 1; x < 128; x++ {
		if g.Y[64*g.CodedW+x] < g.Y[64*g.CodedW+x-1] {
			t.Fatalf("gradient not monotone at %d", x)
		}
	}
}

func TestPadEdges(t *testing.T) {
	f := New(20, 20) // coded 32x32
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			f.Y[y*f.CodedW+x] = 9
		}
	}
	f.padEdges()
	if f.Y[19*f.CodedW+31] != 9 || f.Y[31*f.CodedW+31] != 9 {
		t.Fatal("edge padding missing")
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := NewSynth(96, 64).Frame(7)
	b := NewSynth(96, 64).Frame(7)
	if !a.Equal(b) {
		t.Fatal("synth not deterministic")
	}
	c := NewSynth(96, 64).Frame(8)
	if a.Equal(c) {
		t.Fatal("consecutive frames identical — no motion?")
	}
}

func TestSynthHasTextureAndMotion(t *testing.T) {
	s := NewSynth(176, 120)
	f0 := s.Frame(0)
	f1 := s.Frame(1)
	// Texture: luma variance must be substantial.
	var sum, sumSq float64
	for _, v := range f0.Y {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(f0.Y))
	variance := sumSq/n - (sum/n)*(sum/n)
	if variance < 100 {
		t.Fatalf("luma variance %f too low — texture missing", variance)
	}
	// Motion: consecutive frames differ meaningfully but not totally.
	p := PSNR(f0, f1)
	if p > 40 {
		t.Fatalf("frame-to-frame PSNR %f too high — motion too small", p)
	}
	if p < 8 {
		t.Fatalf("frame-to-frame PSNR %f too low — scene incoherent", p)
	}
}

func TestSynthParallax(t *testing.T) {
	// The foreground band must move faster than the sky band: compare
	// horizontal autocorrelation shifts. Row from band 0 (top) should
	// match the next frame at a smaller shift than a bottom row.
	s := NewSynth(352, 240)
	f0, f1 := s.Frame(0), s.Frame(4)
	shift := func(row int) int {
		best, bestSAD := 0, 1<<30
		for d := 0; d < 40; d++ {
			sad := 0
			for x := 0; x < 200; x++ {
				a := int(f0.Y[row*f0.CodedW+x+d])
				b := int(f1.Y[row*f1.CodedW+x])
				if a > b {
					sad += a - b
				} else {
					sad += b - a
				}
			}
			if sad < bestSAD {
				best, bestSAD = d, sad
			}
		}
		return best
	}
	skyShift := shift(20)
	fgShift := shift(230)
	if fgShift <= skyShift {
		t.Fatalf("no parallax: sky shift %d, foreground shift %d", skyShift, fgShift)
	}
}

func TestPoolAccounting(t *testing.T) {
	p := NewPool(64, 48)
	f1 := p.Get()
	f2 := p.Get()
	st := p.Stats()
	if st.InUseBytes != int64(f1.Bytes()+f2.Bytes()) {
		t.Fatalf("in-use %d", st.InUseBytes)
	}
	if st.PeakBytes != st.InUseBytes {
		t.Fatalf("peak %d", st.PeakBytes)
	}
	p.Put(f1)
	st = p.Stats()
	if st.InUseBytes != int64(f2.Bytes()) || st.FreeFrames != 1 {
		t.Fatalf("after put: %+v", st)
	}
	// Recycling must not allocate.
	f3 := p.Get()
	st = p.Stats()
	if st.AllocBytes != int64(2*f3.Bytes()) {
		t.Fatalf("recycling allocated: %+v", st)
	}
	if st.PeakBytes != int64(2*f3.Bytes()) {
		t.Fatalf("peak moved: %+v", st)
	}
	// Foreign frames are rejected.
	p.Put(New(32, 32))
	if p.Stats().FreeFrames != 0 {
		t.Fatal("foreign frame accepted")
	}
	p.Put(nil) // must not panic
}

func TestPoolGetResetsMetadata(t *testing.T) {
	p := NewPool(32, 32)
	f := p.Get()
	f.TemporalRef, f.DisplayIndex, f.PictureType = 5, 9, 'I'
	p.Put(f)
	g := p.Get()
	if g.TemporalRef != 0 || g.DisplayIndex != 0 || g.PictureType != 0 {
		t.Fatal("metadata not reset on reuse")
	}
}

func TestPSNRQuickSymmetry(t *testing.T) {
	f := func(seed uint8) bool {
		a := NewSynth(48, 32).Frame(int(seed))
		b := NewSynth(48, 32).Frame(int(seed) + 1)
		return math.Abs(PSNR(a, b)-PSNR(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSynthFrame352(b *testing.B) {
	s := NewSynth(352, 240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Frame(i)
	}
}

func BenchmarkScale352to704(b *testing.B) {
	f := NewSynth(352, 240).Frame(0)
	for i := 0; i < b.N; i++ {
		f.Scale(704, 480)
	}
}
