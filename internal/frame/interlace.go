package frame

// InterlacedSynth renders the synthetic scene as interlaced video: the
// two fields of each frame are sampled at different instants (top field
// at time 2n, bottom at 2n+1 for top-field-first material), so moving
// content shows the comb artifacts interlaced coding tools exist for.
type InterlacedSynth struct {
	s *Synth
}

// NewInterlacedSynth returns an interlaced source of width×height frames.
func NewInterlacedSynth(width, height int) *InterlacedSynth {
	return &InterlacedSynth{s: NewSynth(width, height)}
}

// Frame renders interlaced picture n: even lines from field time 2n, odd
// lines from 2n+1. Rendering is pure and deterministic.
func (is *InterlacedSynth) Frame(n int) *Frame {
	s := is.s
	f := New(s.Width, s.Height)
	f.DisplayIndex = n
	vs := float64(s.Height) / 240.0
	for y := 0; y < f.CodedH; y++ {
		yy := y
		if yy >= s.Height {
			yy = s.Height - 1
		}
		t := float64(2*n + yy&1) // field time, in field periods
		b := bandAt(float64(yy) / float64(s.Height))
		v := float64(yy) / vs
		row := f.Y[y*f.YStride:]
		for x := 0; x < f.CodedW; x++ {
			// Velocity is per frame period; a field period is half.
			u := float64(x)/vs + t*b.velocity/2
			row[x] = clampU8(b.baseY + b.amp*s.texture(u*b.freq, v*b.freq, 0))
		}
	}
	cw, ch := f.CodedW/2, f.CodedH/2
	for y := 0; y < ch; y++ {
		yy := y * 2
		if yy >= s.Height {
			yy = s.Height - 1
		}
		// 4:2:0 chroma is vertically subsampled across the two fields;
		// sample it at the frame instant like a co-sited camera would.
		b := bandAt(float64(yy) / float64(s.Height))
		v := float64(yy) / vs
		cbRow := f.Cb[y*f.CStride:]
		crRow := f.Cr[y*f.CStride:]
		for x := 0; x < cw; x++ {
			u := float64(x*2)/vs + float64(2*n)*b.velocity/2
			t := s.texture(u*b.freq/2, v*b.freq/2, 1)
			cbRow[x] = clampU8(b.cb + 14*t)
			crRow[x] = clampU8(b.cr + 14*t)
		}
	}
	return f
}
