package frame

import "testing"

// TestPadStridesGeometry pins the layout rule: planes whose width is a
// 512-multiple get one extra cache line per row, everything else stays
// dense.
func TestPadStridesGeometry(t *testing.T) {
	defer func(v bool) { PadStrides = v }(PadStrides)

	PadStrides = true
	cases := []struct {
		w, h           int
		wantYS, wantCS int
	}{
		{176, 112, 176, 88},   // dense: not a 512-multiple
		{704, 480, 704, 352},  // dense: 704 = 64·11 already spreads sets
		{512, 64, 576, 256},   // luma padded, chroma (256) dense
		{1024, 32, 1088, 576}, // both planes padded
	}
	for _, c := range cases {
		f := New(c.w, c.h)
		if f.YStride != c.wantYS || f.CStride != c.wantCS {
			t.Errorf("New(%d,%d): strides %d/%d, want %d/%d",
				c.w, c.h, f.YStride, f.CStride, c.wantYS, c.wantCS)
		}
		if len(f.Y) != f.YStride*f.CodedH || len(f.Cb) != f.CStride*f.CodedH/2 {
			t.Errorf("New(%d,%d): plane sizes %d/%d inconsistent with strides", c.w, c.h, len(f.Y), len(f.Cb))
		}
	}

	PadStrides = false
	f := New(512, 64)
	if f.YStride != 512 || f.CStride != 256 {
		t.Errorf("PadStrides=false: strides %d/%d, want dense 512/256", f.YStride, f.CStride)
	}
}

// TestEqualIgnoresRowSlack pins that Equal compares the coded area only:
// pad-slack bytes hold stale pool data and must not affect equality.
func TestEqualIgnoresRowSlack(t *testing.T) {
	defer func(v bool) { PadStrides = v }(PadStrides)
	PadStrides = true

	a, b := New(512, 48), New(512, 48)
	for i := range a.Y {
		a.Y[i] = uint8(i)
	}
	if !b.CopyPixelsFrom(a) {
		t.Fatal("CopyPixelsFrom refused matching geometry")
	}
	if !a.Equal(b) {
		t.Fatal("copies differ")
	}
	// Scribble on the slack beyond CodedW of row 1: still equal.
	b.Y[b.YStride+a.CodedW] ^= 0xFF
	if !a.Equal(b) {
		t.Fatal("Equal read row slack")
	}
	// A coded-area pixel must still be compared.
	b.Y[b.YStride] ^= 0xFF
	if a.Equal(b) {
		t.Fatal("Equal missed a coded-area difference")
	}
}

// TestCopyPixelsAcrossLayouts pins the row-wise copy between frames of
// the same coded geometry but different strides (padded ↔ dense).
func TestCopyPixelsAcrossLayouts(t *testing.T) {
	defer func(v bool) { PadStrides = v }(PadStrides)

	PadStrides = true
	padded := New(512, 48)
	PadStrides = false
	dense := New(512, 48)
	if padded.YStride == dense.YStride {
		t.Fatal("layouts did not differ; rule broken")
	}
	rng := uint32(1)
	for y := 0; y < padded.CodedH; y++ {
		for x := 0; x < padded.CodedW; x++ {
			rng = rng*1664525 + 1013904223
			padded.Y[y*padded.YStride+x] = uint8(rng >> 24)
		}
	}
	if !dense.CopyPixelsFrom(padded) {
		t.Fatal("CopyPixelsFrom refused cross-layout copy")
	}
	if !dense.Equal(padded) {
		t.Fatal("cross-layout copy lost pixels")
	}
}
