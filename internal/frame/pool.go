package frame

import "sync"

// Pool recycles equally-sized frames and accounts for allocation, which
// the paper's memory-requirement experiments (Figures 8 and 9) measure:
// the GOP-level decoder's footprint grows with workers × GOP size while
// the slice-level decoder's does not.
type Pool struct {
	mu     sync.Mutex
	free   []*Frame
	width  int
	height int

	inUseBytes int64
	peakBytes  int64
	totalAlloc int64 // cumulative bytes ever allocated (not recycled)
	scrub      bool
}

// NewPool returns a pool producing width×height frames.
func NewPool(width, height int) *Pool {
	return &Pool{width: width, height: height}
}

// SetScrub controls whether Get wipes recycled pixel planes to mid-grey
// before handing the frame out. In normal decoding every output pixel is
// overwritten, so the pool skips the clear; with error concealment active
// a damaged picture may legitimately ship partially synthesized content,
// and scrubbing guarantees nothing from a previous group of pictures can
// leak through a recycled buffer.
func (p *Pool) SetScrub(on bool) {
	p.mu.Lock()
	p.scrub = on
	p.mu.Unlock()
}

// Get returns a zeroed-or-recycled frame. Recycled frames keep stale pixel
// data; decoders overwrite every pixel they output, so the pool does not
// pay to clear planes — unless SetScrub(true) opted into the wipe.
func (p *Pool) Get() *Frame {
	p.mu.Lock()
	var f *Frame
	if n := len(p.free); n > 0 {
		f = p.free[n-1]
		p.free = p.free[:n-1]
	}
	scrub := p.scrub && f != nil
	if f == nil {
		f = New(p.width, p.height)
		p.totalAlloc += int64(f.Bytes())
	}
	p.inUseBytes += int64(f.Bytes())
	if p.inUseBytes > p.peakBytes {
		p.peakBytes = p.inUseBytes
	}
	p.mu.Unlock()
	if scrub {
		fillPlane(f.Y, 128)
		fillPlane(f.Cb, 128)
		fillPlane(f.Cr, 128)
	}
	f.TemporalRef = 0
	f.DisplayIndex = 0
	f.PictureType = 0
	f.rc = 0
	return f
}

// fillPlane sets every sample of a plane to v, doubling copies so the cost
// is dominated by memmove rather than a byte loop.
func fillPlane(pl []byte, v byte) {
	if len(pl) == 0 {
		return
	}
	pl[0] = v
	for n := 1; n < len(pl); n *= 2 {
		copy(pl[n:], pl[:n])
	}
}

// Put returns a frame to the pool. Put of a frame not obtained from Get
// (wrong geometry) is rejected silently to keep accounting consistent.
func (p *Pool) Put(f *Frame) {
	if f == nil || f.Width != p.width || f.Height != p.height {
		return
	}
	p.mu.Lock()
	p.inUseBytes -= int64(f.Bytes())
	p.free = append(p.free, f)
	p.mu.Unlock()
}

// Reclaim forcibly returns f to the pool regardless of its reference
// count — the teardown path of a cancelled or failed pipeline, called
// only after every worker has stopped. Frames whose count already
// reached zero were returned through the normal Release path; for them
// Reclaim is a no-op, so a teardown sweep can never double-insert a
// frame into the free list.
func (p *Pool) Reclaim(f *Frame) bool {
	if f == nil || f.RefCount() <= 0 {
		return false
	}
	f.Retain(-f.RefCount())
	p.Put(f)
	return true
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	InUseBytes int64 // bytes currently handed out
	PeakBytes  int64 // high watermark of InUseBytes
	AllocBytes int64 // cumulative fresh allocations
	FreeFrames int   // frames currently idle in the pool
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		InUseBytes: p.inUseBytes,
		PeakBytes:  p.peakBytes,
		AllocBytes: p.totalAlloc,
		FreeFrames: len(p.free),
	}
}
