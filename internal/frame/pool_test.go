package frame

import "testing"

// dirty fills every plane of f with a recognizable non-grey pattern.
func dirty(f *Frame) {
	for i := range f.Y {
		f.Y[i] = byte(i)
	}
	for i := range f.Cb {
		f.Cb[i] = 17
		f.Cr[i] = 201
	}
}

func allEqual(pl []byte, v byte) bool {
	for _, b := range pl {
		if b != v {
			return false
		}
	}
	return true
}

func TestPoolRecyclesWithoutScrub(t *testing.T) {
	p := NewPool(48, 32)
	f := p.Get()
	dirty(f)
	p.Put(f)
	g := p.Get()
	if g != f {
		t.Fatal("expected the recycled frame back")
	}
	// Without scrub the pool documents that stale pixels survive; this
	// pins the cheap default so a regression in either direction is loud.
	if allEqual(g.Y, 128) {
		t.Fatal("non-scrub pool unexpectedly cleared the luma plane")
	}
}

func TestPoolScrubClearsRecycledFrames(t *testing.T) {
	p := NewPool(48, 32)
	p.SetScrub(true)
	f := p.Get()
	dirty(f)
	p.Put(f)
	g := p.Get()
	if g != f {
		t.Fatal("expected the recycled frame back")
	}
	if !allEqual(g.Y, 128) || !allEqual(g.Cb, 128) || !allEqual(g.Cr, 128) {
		t.Fatal("scrub pool handed out stale pixels from a previous use")
	}
	st := p.Stats()
	if st.AllocBytes != int64(f.Bytes()) {
		t.Fatalf("scrub must recycle, not reallocate: alloc=%d want %d",
			st.AllocBytes, f.Bytes())
	}
}

func TestFillPlane(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		pl := make([]byte, n)
		for i := range pl {
			pl[i] = byte(i + 1)
		}
		fillPlane(pl, 128)
		if !allEqual(pl, 128) {
			t.Fatalf("fillPlane failed for n=%d", n)
		}
	}
}
