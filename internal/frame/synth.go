package frame

import "math"

// Synth deterministically renders a panning, textured scene — the stand-in
// for the paper's flower-garden source clip (a camera pan with strong
// texture and layered parallax). Band velocities and spatial frequencies
// are expressed in a virtual 240-line coordinate space, so rendering the
// same scene at a higher resolution behaves like the paper's interpolated
// upscaling of one base clip: content scales, per-picture motion scales,
// and high-frequency energy does not explode with resolution.
type Synth struct {
	Width, Height int
	seed          uint64
}

// NewSynth returns a generator for width×height pictures.
func NewSynth(width, height int) *Synth {
	return &Synth{Width: width, Height: height, seed: 0x9E3779B97F4A7C15}
}

// band describes one parallax layer of the scene.
type band struct {
	top, bottom float64 // fraction of picture height
	velocity    float64 // virtual pixels per frame (positive = pan left)
	baseY       float64
	amp         float64 // texture amplitude
	freq        float64 // texture spatial frequency multiplier
	cb, cr      float64
}

// Sky, distant trees, flower bed, foreground — coarse echo of the real
// flower-garden layout, with the foreground panning fastest.
var bands = []band{
	{0.00, 0.30, 0.6, 170, 40, 1.5, 120, 130},
	{0.30, 0.45, 1.2, 95, 46, 1.7, 115, 125},
	{0.45, 0.75, 2.4, 120, 50, 1.9, 105, 145},
	{0.75, 1.00, 3.6, 100, 55, 2.4, 110, 150},
}

// Frame renders picture n (display order). Rendering is pure: the same
// (generator geometry, n) always produces identical pixels.
func (s *Synth) Frame(n int) *Frame {
	f := New(s.Width, s.Height)
	f.DisplayIndex = n
	// Virtual scale: how many display pixels per virtual pixel.
	vs := float64(s.Height) / 240.0
	for y := 0; y < f.CodedH; y++ {
		yy := y
		if yy >= s.Height {
			yy = s.Height - 1
		}
		b := bandAt(float64(yy) / float64(s.Height))
		v := float64(yy) / vs
		row := f.Y[y*f.YStride:]
		for x := 0; x < f.CodedW; x++ {
			u := float64(x)/vs + float64(n)*b.velocity
			row[x] = clampU8(b.baseY + b.amp*s.texture(u*b.freq, v*b.freq, 0))
		}
	}
	cw, ch := f.CodedW/2, f.CodedH/2
	for y := 0; y < ch; y++ {
		yy := y * 2
		if yy >= s.Height {
			yy = s.Height - 1
		}
		b := bandAt(float64(yy) / float64(s.Height))
		v := float64(yy) / vs
		cbRow := f.Cb[y*f.CStride:]
		crRow := f.Cr[y*f.CStride:]
		for x := 0; x < cw; x++ {
			u := float64(x*2)/vs + float64(n)*b.velocity
			t := s.texture(u*b.freq/2, v*b.freq/2, 1)
			cbRow[x] = clampU8(b.cb + 14*t)
			crRow[x] = clampU8(b.cr + 14*t)
		}
	}
	return f
}

func bandAt(fy float64) band {
	for _, b := range bands {
		if fy < b.bottom {
			return b
		}
	}
	return bands[len(bands)-1]
}

// texture combines two octaves of smooth value noise and a sinusoid,
// returning a value roughly in [-1, 1].
func (s *Synth) texture(u, v float64, channel uint64) float64 {
	n1 := s.valueNoise(u/5, v/5, channel)
	n2 := s.valueNoise(u/17, v/13, channel+2)
	w := math.Sin(u/7.3) * math.Cos(v/9.1)
	return 0.45*n1 + 0.35*n2 + 0.20*w
}

// valueNoise is bilinear interpolation of a hash on the integer lattice,
// in [-1, 1]. Being a pure function of position, it translates exactly
// with the pan, so motion compensation can predict it.
func (s *Synth) valueNoise(u, v float64, channel uint64) float64 {
	u0, v0 := math.Floor(u), math.Floor(v)
	fu, fv := u-u0, v-v0
	// Smoothstep fade for C1 continuity.
	fu = fu * fu * (3 - 2*fu)
	fv = fv * fv * (3 - 2*fv)
	iu, iv := int64(u0), int64(v0)
	h00 := s.lattice(iu, iv, channel)
	h01 := s.lattice(iu+1, iv, channel)
	h10 := s.lattice(iu, iv+1, channel)
	h11 := s.lattice(iu+1, iv+1, channel)
	top := h00*(1-fu) + h01*fu
	bot := h10*(1-fu) + h11*fu
	return top*(1-fv) + bot*fv
}

func (s *Synth) lattice(u, v int64, channel uint64) float64 {
	h := s.seed ^ uint64(u)*0xBF58476D1CE4E5B9 ^ uint64(v)*0x94D049BB133111EB ^ channel*0xD6E8FEB86659FD93
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return float64(int32(h)) / float64(1<<31) // [-1, 1)
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
