package kernels

// CPUID-based feature detection. The assembly tier needs AVX2, which
// requires both the CPUID feature flag and OS support for saving the YMM
// state (OSXSAVE + XCR0 bits 1-2).

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var avx2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be enabled by
	// the OS for YMM registers to be usable.
	xeax, _ := xgetbv()
	if xeax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func hasASM() bool { return avx2 }

func cpuFeatures() string {
	if avx2 {
		return "avx2"
	}
	return "none"
}
