package kernels

// NEON (AdvSIMD) is architecturally mandatory for AArch64 application
// profiles Go targets, so the assembly tier is always available.

func hasASM() bool { return true }

func cpuFeatures() string { return "neon" }
