//go:build !amd64 && !arm64

package kernels

func hasASM() bool { return false }

func cpuFeatures() string { return "none" }
