// Package kernels is the runtime dispatch layer for the decoder's
// reconstruction kernels. Three tiers exist for every hot kernel family
// (motion compensation, prediction/residual stores, IDCT):
//
//   - LevelScalar: byte-at-a-time reference loops — the bit-exactness
//     oracle every other tier is tested against.
//   - LevelSWAR: portable SIMD-within-a-register kernels (8 pixels per
//     uint64), the default on architectures without assembly kernels.
//   - LevelASM: build-tagged Go assembly (AVX2 on amd64, NEON on arm64),
//     selected at init when the CPU supports it.
//
// The package is a leaf: the kernel packages (internal/motion,
// internal/decoder, internal/dct) import it and register an applier;
// Set fans the active level out to every registered applier. Coverage is
// per-kernel: an architecture may implement assembly for only a subset of
// kernel families (each package's applier falls back to SWAR for the
// rest), which Describe reports.
//
// The MPEG2_KERNELS environment variable (scalar | swar | asm) forces a
// tier at process start — CI runs the full golden bit-exactness and fuzz
// suites under each value. Forcing asm on a CPU without the required
// features silently clamps to swar, so a binary is always runnable.
package kernels

import (
	"fmt"
	"os"
	"sync"
)

// Level is a kernel tier.
type Level int

const (
	// LevelScalar forces the reference loops.
	LevelScalar Level = iota
	// LevelSWAR selects the portable uint64 kernels.
	LevelSWAR
	// LevelASM selects the architecture-specific assembly kernels.
	LevelASM
)

func (l Level) String() string {
	switch l {
	case LevelScalar:
		return "scalar"
	case LevelSWAR:
		return "swar"
	case LevelASM:
		return "asm"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel converts a string (scalar | swar | asm) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "scalar":
		return LevelScalar, nil
	case "swar":
		return LevelSWAR, nil
	case "asm":
		return LevelASM, nil
	}
	return 0, fmt.Errorf("kernels: unknown level %q (want scalar, swar or asm)", s)
}

// EnvVar is the environment variable that forces a kernel level at
// process start.
const EnvVar = "MPEG2_KERNELS"

var (
	mu       sync.Mutex
	active   Level
	appliers []func(Level)
)

func init() {
	active = defaultLevel()
}

// defaultLevel resolves the startup tier: the MPEG2_KERNELS override if
// set (clamped to what the host supports), else the best supported tier.
func defaultLevel() Level {
	l := LevelSWAR
	if hasASM() {
		l = LevelASM
	}
	if v := os.Getenv(EnvVar); v != "" {
		if forced, err := ParseLevel(v); err == nil {
			l = forced
		}
	}
	if l == LevelASM && !hasASM() {
		l = LevelSWAR
	}
	return l
}

// Active returns the current kernel level. Kernel packages read their own
// registered copy on the hot path; this is the observability gauge.
func Active() Level {
	mu.Lock()
	defer mu.Unlock()
	return active
}

// Supported returns the highest tier the host CPU can run.
func Supported() Level {
	if hasASM() {
		return LevelASM
	}
	return LevelSWAR
}

// CPUFeatures describes the detected SIMD capability of the host
// ("avx2", "neon", or "none").
func CPUFeatures() string { return cpuFeatures() }

// Set makes l the active level, fanning it out to every registered kernel
// package. Requesting LevelASM on a host without assembly support clamps
// to LevelSWAR. It returns the level actually applied.
func Set(l Level) Level {
	if l == LevelASM && !hasASM() {
		l = LevelSWAR
	}
	mu.Lock()
	active = l
	fns := append([]func(Level){}, appliers...)
	mu.Unlock()
	for _, fn := range fns {
		fn(l)
	}
	return l
}

// Register adds an applier a kernel package uses to switch its internal
// dispatch, calling it immediately with the active level. Packages call
// this from init; the applier must be safe to call between decodes.
func Register(fn func(Level)) {
	mu.Lock()
	appliers = append(appliers, fn)
	l := active
	mu.Unlock()
	fn(l)
}

// Describe returns the active tier with its hardware context, e.g.
// "asm(avx2)" or "swar". This is the string Stats and the perf harness
// record.
func Describe() string {
	l := Active()
	if l == LevelASM {
		return fmt.Sprintf("asm(%s)", cpuFeatures())
	}
	return l.String()
}
