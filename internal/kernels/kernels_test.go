package kernels

import "testing"

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		ok   bool
	}{
		{"scalar", LevelScalar, true},
		{"swar", LevelSWAR, true},
		{"asm", LevelASM, true},
		{"", 0, false},
		{"avx2", 0, false},
	} {
		got, err := ParseLevel(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseLevel(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSetClampsUnsupported(t *testing.T) {
	defer Set(Active())
	got := Set(LevelASM)
	if hasASM() {
		if got != LevelASM {
			t.Fatalf("Set(asm) on asm-capable host = %v", got)
		}
	} else if got != LevelSWAR {
		t.Fatalf("Set(asm) without asm support = %v, want swar clamp", got)
	}
}

func TestRegisterAppliesImmediately(t *testing.T) {
	defer Set(Active())
	Set(LevelScalar)
	var seen []Level
	Register(func(l Level) { seen = append(seen, l) })
	if len(seen) != 1 || seen[0] != LevelScalar {
		t.Fatalf("Register did not apply current level: %v", seen)
	}
	Set(LevelSWAR)
	if len(seen) != 2 || seen[1] != LevelSWAR {
		t.Fatalf("Set did not fan out: %v", seen)
	}
}

func TestDescribe(t *testing.T) {
	defer Set(Active())
	Set(LevelSWAR)
	if Describe() != "swar" {
		t.Fatalf("Describe() = %q", Describe())
	}
	if Set(LevelASM) == LevelASM {
		want := "asm(" + CPUFeatures() + ")"
		if Describe() != want {
			t.Fatalf("Describe() = %q, want %q", Describe(), want)
		}
	}
}

func TestSupportedMatchesDetection(t *testing.T) {
	if hasASM() && Supported() != LevelASM {
		t.Fatal("Supported() disagrees with hasASM")
	}
	if !hasASM() && Supported() != LevelSWAR {
		t.Fatal("Supported() disagrees with hasASM")
	}
	t.Logf("cpu features: %s, supported tier: %s", CPUFeatures(), Supported())
}
