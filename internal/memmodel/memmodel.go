// Package memmodel is the analytical memory-requirements model of the
// GOP-level decoder (the paper's Figure 9): memory over execution time
// decomposed as mem(x) = scan(x) + frames(x), driven by the scan rate,
// the per-worker decode rate and the display rate.
//
// The model reproduces the paper's headline conclusion: the coarse-grained
// decoder's frame memory grows with workers × GOP size × picture size, and
// the (1408×960, 31 pictures/GOP, 11 workers) configuration does not fit
// the machine's 500 MB.
package memmodel

import (
	"fmt"
	"time"
)

// Params describe one GOP-mode decoding run.
type Params struct {
	Workers        int
	GOPs           int
	PicturesPerGOP int
	FrameBytes     int64 // decoded picture size (1.5 bytes/pixel for 4:2:0)
	BytesPerGOP    int64 // coded input bytes per GOP

	ScanGOPsPerSec    float64 // scan process feed rate
	DecodeGOPsPerSec  float64 // one worker's decode rate
	DisplayPicsPerSec float64 // display drain rate (30 for real time)
}

func (p Params) validate() error {
	if p.Workers < 1 || p.GOPs < 1 || p.PicturesPerGOP < 1 {
		return fmt.Errorf("memmodel: bad shape %d/%d/%d", p.Workers, p.GOPs, p.PicturesPerGOP)
	}
	if p.FrameBytes <= 0 || p.DecodeGOPsPerSec <= 0 {
		return fmt.Errorf("memmodel: need positive frame size and decode rate")
	}
	return nil
}

// Point is the modeled memory at one instant: Total = Scan + Frames.
type Point struct {
	T      time.Duration
	Scan   int64 // scanned-but-undecoded input bytes
	Frames int64 // decoded picture buffers
	Total  int64
}

// schedule computes per-GOP start/end times (greedy P-worker queue) and
// per-picture display times.
type schedule struct {
	start, end  []float64 // seconds, per GOP
	displayable []float64 // per GOP: all earlier GOPs done too
	dispTime    []float64 // per display-ordered picture
	makespan    float64
	p           Params
}

func (p Params) build() schedule {
	n := p.GOPs
	s := schedule{
		start:       make([]float64, n),
		end:         make([]float64, n),
		displayable: make([]float64, n),
		p:           p,
	}
	decT := 1 / p.DecodeGOPsPerSec
	free := make([]float64, p.Workers)
	for i := 0; i < n; i++ {
		w := 0
		for j := 1; j < p.Workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		avail := 0.0
		if p.ScanGOPsPerSec > 0 {
			avail = float64(i+1) / p.ScanGOPsPerSec
		}
		st := free[w]
		if avail > st {
			st = avail
		}
		s.start[i] = st
		s.end[i] = st + decT
		free[w] = s.end[i]
		if s.end[i] > s.makespan {
			s.makespan = s.end[i]
		}
	}
	hi := 0.0
	for i := 0; i < n; i++ {
		if s.end[i] > hi {
			hi = s.end[i]
		}
		s.displayable[i] = hi
	}
	// Display times: pictures of GOP i become available at displayable[i]
	// and drain at the display rate.
	total := n * p.PicturesPerGOP
	s.dispTime = make([]float64, total)
	prev := 0.0
	per := 0.0
	if p.DisplayPicsPerSec > 0 {
		per = 1 / p.DisplayPicsPerSec
	}
	for j := 0; j < total; j++ {
		avail := s.displayable[j/p.PicturesPerGOP]
		t := prev + per
		if avail > t {
			t = avail
		}
		s.dispTime[j] = t
		prev = t
		if t > s.makespan {
			s.makespan = t
		}
	}
	return s
}

// eval returns the modeled memory at time t (seconds).
func (s *schedule) eval(t float64) Point {
	p := s.p
	// Scanned GOPs.
	scanned := p.GOPs
	if p.ScanGOPsPerSec > 0 {
		scanned = int(t * p.ScanGOPsPerSec)
		if scanned > p.GOPs {
			scanned = p.GOPs
		}
	}
	var scanBytes int64
	var frames float64
	for i := 0; i < p.GOPs; i++ {
		// Input bytes held from scan until decode completes.
		if i < scanned && t < s.end[i] {
			scanBytes += p.BytesPerGOP
		}
		switch {
		case t < s.start[i]:
		case t < s.end[i]:
			frames += float64(p.PicturesPerGOP) * (t - s.start[i]) / (s.end[i] - s.start[i])
		default:
			frames += float64(p.PicturesPerGOP)
		}
	}
	// Subtract displayed pictures.
	displayed := 0
	for _, dt := range s.dispTime {
		if dt <= t {
			displayed++
		}
	}
	frames -= float64(displayed)
	if frames < 0 {
		frames = 0
	}
	pt := Point{
		T:      time.Duration(t * float64(time.Second)),
		Scan:   scanBytes,
		Frames: int64(frames * float64(p.FrameBytes)),
	}
	pt.Total = pt.Scan + pt.Frames
	return pt
}

// Series evaluates the model at `steps` uniform instants across the run.
func (p Params) Series(steps int) ([]Point, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if steps < 2 {
		steps = 2
	}
	s := p.build()
	pts := make([]Point, steps)
	for i := range pts {
		t := s.makespan * float64(i) / float64(steps-1)
		pts[i] = s.eval(t)
	}
	return pts, nil
}

// Peak returns the maximum modeled memory, sampling at every schedule
// event.
func (p Params) Peak() (int64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	s := p.build()
	peak := int64(0)
	consider := func(t float64) {
		if pt := s.eval(t); pt.Total > peak {
			peak = pt.Total
		}
	}
	for i := range s.end {
		consider(s.start[i])
		consider(s.end[i])
		consider(s.displayable[i])
	}
	for _, t := range s.dispTime {
		consider(t)
	}
	return peak, nil
}

// Feasible reports whether the run fits within the memory budget.
func (p Params) Feasible(budget int64) (bool, error) {
	peak, err := p.Peak()
	if err != nil {
		return false, err
	}
	return peak <= budget, nil
}
