package memmodel

import "testing"

// frame1408 is the decoded size of a 1408×960 4:2:0 picture.
const frame1408 = int64(1408 * 960 * 3 / 2)

func baseParams() Params {
	return Params{
		Workers:           4,
		GOPs:              40,
		PicturesPerGOP:    13,
		FrameBytes:        352 * 240 * 3 / 2,
		BytesPerGOP:       25 << 20 / 86, // ~25MB / #GOPs as in Table 2
		ScanGOPsPerSec:    15,
		DecodeGOPsPerSec:  0.5,
		DisplayPicsPerSec: 30,
	}
}

func TestValidate(t *testing.T) {
	bad := baseParams()
	bad.Workers = 0
	if _, err := bad.Series(10); err == nil {
		t.Fatal("workers=0 must fail")
	}
	bad = baseParams()
	bad.DecodeGOPsPerSec = 0
	if _, err := bad.Peak(); err == nil {
		t.Fatal("zero decode rate must fail")
	}
}

func TestSeriesShape(t *testing.T) {
	pts, err := baseParams().Series(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Total != 0 {
		t.Fatalf("t=0 memory %d, want 0", pts[0].Total)
	}
	for _, p := range pts {
		if p.Total != p.Scan+p.Frames {
			t.Fatalf("decomposition broken: %+v", p)
		}
		if p.Scan < 0 || p.Frames < 0 {
			t.Fatalf("negative component: %+v", p)
		}
	}
	// Memory must rise then fall back near zero at the end of display.
	var peak int64
	for _, p := range pts {
		if p.Total > peak {
			peak = p.Total
		}
	}
	if peak <= 0 {
		t.Fatal("no memory ever used")
	}
	if last := pts[len(pts)-1].Frames; last > peak/4 {
		t.Fatalf("frames do not drain: last %d, peak %d", last, peak)
	}
}

func TestPeakGrowsWithWorkers(t *testing.T) {
	p := baseParams()
	p.Workers = 1
	p1, err := p.Peak()
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 11
	p11, err := p.Peak()
	if err != nil {
		t.Fatal(err)
	}
	if p11 <= p1 {
		t.Fatalf("peak did not grow with workers: %d -> %d", p1, p11)
	}
}

func TestPeakGrowsWithGOPSize(t *testing.T) {
	// Isolate the frames component (the one that scales with GOP size);
	// coded input bytes per GOP would otherwise skew the comparison.
	p := baseParams()
	p.BytesPerGOP = 0
	p.PicturesPerGOP = 4
	p.GOPs = 130
	small, err := p.Peak()
	if err != nil {
		t.Fatal(err)
	}
	p.PicturesPerGOP = 31
	p.GOPs = 17
	p.DecodeGOPsPerSec = 0.5 * 4 / 31 // same per-picture rate
	big, err := p.Peak()
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("peak did not grow with GOP size: %d -> %d", small, big)
	}
}

// TestPaperInfeasibleCase reproduces the paper's observation that the
// (1408×960, 31 pictures/GOP, 11 workers) run exceeds the Challenge's
// 500 MB of usable memory while smaller configurations fit.
func TestPaperInfeasibleCase(t *testing.T) {
	const budget = 500 << 20
	big := Params{
		Workers:           11,
		GOPs:              36, // 1120 pictures / 31
		PicturesPerGOP:    31,
		FrameBytes:        frame1408,
		BytesPerGOP:       45 << 20 / 36,
		ScanGOPsPerSec:    3, // ~90 pics/s scan (Table 2)
		DecodeGOPsPerSec:  0.66 / 31,
		DisplayPicsPerSec: 30,
	}
	ok, err := big.Feasible(budget)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		peak, _ := big.Peak()
		t.Fatalf("1408x960/31/11 should exceed 500MB, peak %d MB", peak>>20)
	}
	// The same machine with 352×240 pictures fits easily.
	small := big
	small.FrameBytes = 352 * 240 * 3 / 2
	small.BytesPerGOP = 25 << 20 / 36
	small.DecodeGOPsPerSec = 5.0 / 31
	ok, err = small.Feasible(budget)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		peak, _ := small.Peak()
		t.Fatalf("352x240 should fit in 500MB, peak %d MB", peak>>20)
	}
}

func TestScanComponentBounded(t *testing.T) {
	// Scan memory can never exceed the whole file.
	p := baseParams()
	p.ScanGOPsPerSec = 1e6 // scan instantly
	pts, err := p.Series(30)
	if err != nil {
		t.Fatal(err)
	}
	total := p.BytesPerGOP * int64(p.GOPs)
	for _, pt := range pts {
		if pt.Scan > total {
			t.Fatalf("scan bytes %d exceed file %d", pt.Scan, total)
		}
	}
}
