// Package memtrace defines the memory-reference trace interface the
// decoder's reconstruction loops emit into, plus a recording implementation
// that feeds the cache simulator.
//
// This substitutes for the paper's TangoLite execution-driven reference
// generator: instead of instrumenting every load/store of a compiled
// binary, the decoder's inner loops report the extents they touch (frame
// plane rows read by motion compensation, rows written by reconstruction,
// coefficient blocks, bitstream bytes). Addresses are synthetic but
// layout-faithful: each buffer gets a contiguous region of a virtual
// address space, so spatial locality (sequential rows, strided plane
// walks) and inter-processor sharing are preserved — which is exactly what
// the paper's Figures 13–15 measure.
package memtrace

import "sync"

// Tracer receives the reconstruction memory-reference stream. A nil
// Tracer everywhere means tracing is off; callers nil-check before use.
type Tracer interface {
	// Base returns a stable virtual base address for the buffer whose
	// backing array starts at key, registering size bytes on first use.
	Base(key *byte, size int) uint64
	// Access records that processor proc touched size bytes at addr.
	Access(proc int, addr uint64, size int, write bool)
}

// Event is one recorded access extent.
type Event struct {
	Proc  int32
	Write bool
	Size  int32
	Addr  uint64
}

// Recorder collects events in memory. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	next   uint64
	bases  map[*byte]uint64
	events []Event
}

// NewRecorder returns an empty Recorder. Virtual addresses start above
// zero and buffers are page-aligned so distinct buffers never share a
// cache line.
func NewRecorder() *Recorder {
	return &Recorder{next: 1 << 12, bases: make(map[*byte]uint64)}
}

// Base implements Tracer.
func (r *Recorder) Base(key *byte, size int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.bases[key]; ok {
		return b
	}
	b := r.next
	r.bases[key] = b
	r.next += (uint64(size) + 4095) &^ 4095
	return b
}

// Access implements Tracer.
func (r *Recorder) Access(proc int, addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Proc: int32(proc), Write: write, Size: int32(size), Addr: addr})
	r.mu.Unlock()
}

// Events returns the recorded stream in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards recorded events but keeps buffer base assignments.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}
