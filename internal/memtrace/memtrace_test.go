package memtrace

import (
	"sync"
	"testing"
)

func TestBaseStableAndAligned(t *testing.T) {
	r := NewRecorder()
	var a, b byte
	ba := r.Base(&a, 100)
	bb := r.Base(&b, 5000)
	if ba == bb {
		t.Fatal("distinct buffers share a base")
	}
	if r.Base(&a, 100) != ba {
		t.Fatal("base not stable")
	}
	if ba%4096 != 0 || bb%4096 != 0 {
		t.Fatalf("bases not page aligned: %d %d", ba, bb)
	}
	// Regions must not overlap: second base is at least size-rounded past
	// the first.
	lo, hi := ba, bb
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo < 100 {
		t.Fatal("regions overlap")
	}
}

func TestAccessRecording(t *testing.T) {
	r := NewRecorder()
	r.Access(2, 4096, 16, true)
	r.Access(0, 8192, 8, false)
	r.Access(0, 8192, 0, false) // zero-size: dropped
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Proc != 2 || !evs[0].Write || evs[0].Size != 16 || evs[0].Addr != 4096 {
		t.Fatalf("event 0: %+v", evs[0])
	}
	if r.Len() != 2 {
		t.Fatalf("Len %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	// Bases survive Reset.
	var k byte
	b1 := r.Base(&k, 64)
	r.Reset()
	if r.Base(&k, 64) != b1 {
		t.Fatal("base lost across Reset")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	keys := make([]byte, 8)
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := r.Base(&keys[p], 4096)
			for i := 0; i < 100; i++ {
				r.Access(p, base+uint64(i), 4, i%2 == 0)
			}
		}(p)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("%d events, want 800", r.Len())
	}
}
