package motion

// haveAsm reports that this build carries assembly kernels (AVX2). The
// dispatch layer additionally requires runtime CPU support via
// internal/kernels before routing to them.
const haveAsm = true

// The prediction kernels fill an h-row block of width w (8 or 16) from
// src, both walked by their strides. Horizontal variants read w+1 bytes
// per row, vertical variants read h+1 rows; the Go wrapper anchors those
// bounds before the call.
//
//go:noescape
func predictCopyAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictHAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictVAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictHVAsm(dst, src *byte, dstStride, srcStride, w, h int)

// avgBytesAsm writes the MPEG rounded average (a+b+1)>>1 of n bytes into
// dst; n must be a positive multiple of 8. dst may alias a or b.
//
//go:noescape
func avgBytesAsm(dst, a, b *byte, n int)
