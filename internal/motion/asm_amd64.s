// AVX2 half-pel motion-compensation kernels. Layout contract (checked by
// the Go wrappers): the source sample region — (w+hx) columns by (h+hy)
// rows at the given stride — lies fully inside the reference plane, and
// the destination holds h rows of w bytes. w is 8 or 16.
//
// Rounding identities used:
//   half-pel H/V:  (a+b+1)>>1      = VPAVGB
//   diagonal:      (a+b+c+d+2)>>2  = widen to 16-bit, sum, +2, >>2, narrow

#include "textflag.h"

// func predictCopyAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictCopyAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ dstStride+16(FP), DX
	MOVQ srcStride+24(FP), BX
	MOVQ w+32(FP), R8
	MOVQ h+40(FP), CX
	CMPQ R8, $16
	JE   copy16

copy8:
	MOVQ (SI), AX
	MOVQ AX, (DI)
	ADDQ BX, SI
	ADDQ DX, DI
	DECQ CX
	JNZ  copy8
	RET

copy16:
	VMOVDQU (SI), X0
	VMOVDQU X0, (DI)
	ADDQ    BX, SI
	ADDQ    DX, DI
	DECQ    CX
	JNZ     copy16
	RET

// func predictHAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictHAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ dstStride+16(FP), DX
	MOVQ srcStride+24(FP), BX
	MOVQ w+32(FP), R8
	MOVQ h+40(FP), CX
	CMPQ R8, $16
	JE   h16

h8:
	MOVQ   (SI), X0
	MOVQ   1(SI), X1
	VPAVGB X1, X0, X0
	MOVQ   X0, (DI)
	ADDQ   BX, SI
	ADDQ   DX, DI
	DECQ   CX
	JNZ    h8
	RET

h16:
	VMOVDQU (SI), X0
	VMOVDQU 1(SI), X1
	VPAVGB  X1, X0, X0
	VMOVDQU X0, (DI)
	ADDQ    BX, SI
	ADDQ    DX, DI
	DECQ    CX
	JNZ     h16
	RET

// func predictVAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictVAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ dstStride+16(FP), DX
	MOVQ srcStride+24(FP), BX
	MOVQ w+32(FP), R8
	MOVQ h+40(FP), CX
	CMPQ R8, $16
	JE   v16

v8:
	MOVQ   (SI), X0
	MOVQ   (SI)(BX*1), X1
	VPAVGB X1, X0, X0
	MOVQ   X0, (DI)
	ADDQ   BX, SI
	ADDQ   DX, DI
	DECQ   CX
	JNZ    v8
	RET

v16:
	VMOVDQU (SI), X0
	VMOVDQU (SI)(BX*1), X1
	VPAVGB  X1, X0, X0
	VMOVDQU X0, (DI)
	ADDQ    BX, SI
	ADDQ    DX, DI
	DECQ    CX
	JNZ     v16
	RET

// func predictHVAsm(dst, src *byte, dstStride, srcStride, w, h int)
//
// Diagonal interpolation: the four neighbours are widened to 16-bit
// lanes so the sum (at most 4*255+2) cannot carry between pixels, then
// (sum+2)>>2 is narrowed back. The 16-wide body packs per 128-bit lane,
// so a VPERMQ reorders the duplicated qwords into the result row.
TEXT ·predictHVAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ dstStride+16(FP), DX
	MOVQ srcStride+24(FP), BX
	MOVQ w+32(FP), R8
	MOVQ h+40(FP), CX

	// Y4 = 0x0002 in every 16-bit lane (the rounding bias).
	MOVQ         $2, AX
	MOVQ         AX, X4
	VPBROADCASTW X4, Y4

	CMPQ R8, $16
	JE   hv16

hv8:
	VPMOVZXBW (SI), X0
	VPMOVZXBW 1(SI), X1
	VPMOVZXBW (SI)(BX*1), X2
	VPMOVZXBW 1(SI)(BX*1), X3
	VPADDW    X1, X0, X0
	VPADDW    X3, X2, X2
	VPADDW    X2, X0, X0
	VPADDW    X4, X0, X0
	VPSRLW    $2, X0, X0
	VPACKUSWB X0, X0, X0
	MOVQ      X0, (DI)
	ADDQ      BX, SI
	ADDQ      DX, DI
	DECQ      CX
	JNZ       hv8
	VZEROUPPER
	RET

hv16:
	VPMOVZXBW (SI), Y0
	VPMOVZXBW 1(SI), Y1
	VPMOVZXBW (SI)(BX*1), Y2
	VPMOVZXBW 1(SI)(BX*1), Y3
	VPADDW    Y1, Y0, Y0
	VPADDW    Y3, Y2, Y2
	VPADDW    Y2, Y0, Y0
	VPADDW    Y4, Y0, Y0
	VPSRLW    $2, Y0, Y0
	VPACKUSWB Y0, Y0, Y0
	VPERMQ    $0xD8, Y0, Y0
	VMOVDQU   X0, (DI)
	ADDQ      BX, SI
	ADDQ      DX, DI
	DECQ      CX
	JNZ       hv16
	VZEROUPPER
	RET

// func avgBytesAsm(dst, a, b *byte, n int)
TEXT ·avgBytesAsm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX

	CMPQ CX, $32
	JL   avgTail

avg32:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VPAVGB  Y1, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	SUBQ    $32, CX
	CMPQ    CX, $32
	JGE     avg32

avgTail:
	TESTQ CX, CX
	JZ    avgDone

avg8:
	MOVQ   (SI), X0
	MOVQ   (DX), X1
	VPAVGB X1, X0, X0
	MOVQ   X0, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	SUBQ   $8, CX
	JNZ    avg8

avgDone:
	VZEROUPPER
	RET
