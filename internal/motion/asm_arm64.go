package motion

// haveAsm reports that this build carries assembly kernels (NEON). NEON
// is architecturally mandatory on AArch64, so runtime detection always
// enables it.
const haveAsm = true

// See asm_amd64.go for the kernel contracts.
//
//go:noescape
func predictCopyAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictHAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictVAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func predictHVAsm(dst, src *byte, dstStride, srcStride, w, h int)

//go:noescape
func avgBytesAsm(dst, a, b *byte, n int)
