// NEON half-pel motion-compensation kernels. Same layout contract as the
// amd64 versions (see asm_amd64.s): the (w+hx)×(h+hy) source sample
// region lies fully inside the reference plane, dst holds h rows of w
// bytes, w is 8 or 16.
//
// The Go arm64 assembler exposes only part of the NEON ISA, so the
// rounded byte average (a+b+1)>>1 (URHADD in hardware) is synthesised
// from supported ops via the identity
//
//	(a+b+1)>>1 = (a|b) - ((a^b)>>1)
//
// and the diagonal (a+b+c+d+2)>>2 widens to 16-bit lanes (VUSHLL),
// sums, biases, shifts, and narrows back with a same-register VUZP1
// (values are <256 so the even bytes of each halfword are the result).

#include "textflag.h"

// func predictCopyAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictCopyAsm(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dstStride+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD h+40(FP), R5
	CMP  $16, R4
	BEQ  copy16

copy8:
	MOVD (R1), R6
	MOVD R6, (R0)
	ADD  R3, R1
	ADD  R2, R0
	SUBS $1, R5
	BNE  copy8
	RET

copy16:
	VLD1 (R1), [V0.B16]
	VST1 [V0.B16], (R0)
	ADD  R3, R1
	ADD  R2, R0
	SUBS $1, R5
	BNE  copy16
	RET

// func predictHAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictHAsm(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dstStride+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD h+40(FP), R5
	CMP  $16, R4
	BEQ  h16

h8:
	ADD   $1, R1, R6
	VLD1  (R1), [V0.B8]
	VLD1  (R6), [V1.B8]
	VORR  V1.B16, V0.B16, V2.B16
	VEOR  V1.B16, V0.B16, V3.B16
	VUSHR $1, V3.B16, V3.B16
	VSUB  V3.B16, V2.B16, V2.B16
	VST1  [V2.B8], (R0)
	ADD   R3, R1
	ADD   R2, R0
	SUBS  $1, R5
	BNE   h8
	RET

h16:
	ADD   $1, R1, R6
	VLD1  (R1), [V0.B16]
	VLD1  (R6), [V1.B16]
	VORR  V1.B16, V0.B16, V2.B16
	VEOR  V1.B16, V0.B16, V3.B16
	VUSHR $1, V3.B16, V3.B16
	VSUB  V3.B16, V2.B16, V2.B16
	VST1  [V2.B16], (R0)
	ADD   R3, R1
	ADD   R2, R0
	SUBS  $1, R5
	BNE   h16
	RET

// func predictVAsm(dst, src *byte, dstStride, srcStride, w, h int)
TEXT ·predictVAsm(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dstStride+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD h+40(FP), R5
	CMP  $16, R4
	BEQ  v16

v8:
	ADD   R3, R1, R6
	VLD1  (R1), [V0.B8]
	VLD1  (R6), [V1.B8]
	VORR  V1.B16, V0.B16, V2.B16
	VEOR  V1.B16, V0.B16, V3.B16
	VUSHR $1, V3.B16, V3.B16
	VSUB  V3.B16, V2.B16, V2.B16
	VST1  [V2.B8], (R0)
	ADD   R3, R1
	ADD   R2, R0
	SUBS  $1, R5
	BNE   v8
	RET

v16:
	ADD   R3, R1, R6
	VLD1  (R1), [V0.B16]
	VLD1  (R6), [V1.B16]
	VORR  V1.B16, V0.B16, V2.B16
	VEOR  V1.B16, V0.B16, V3.B16
	VUSHR $1, V3.B16, V3.B16
	VSUB  V3.B16, V2.B16, V2.B16
	VST1  [V2.B16], (R0)
	ADD   R3, R1
	ADD   R2, R0
	SUBS  $1, R5
	BNE   v16
	RET

// func predictHVAsm(dst, src *byte, dstStride, srcStride, w, h int)
//
// V8 holds the rounding bias 2 in every 16-bit lane.
TEXT ·predictHVAsm(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD dstStride+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD h+40(FP), R5

	MOVD $2, R7
	VDUP R7, V8.H8

	CMP $16, R4
	BEQ hv16

hv8:
	ADD    $1, R1, R6
	ADD    R3, R1, R7
	ADD    $1, R7, R9
	VLD1   (R1), [V0.B8]
	VLD1   (R6), [V1.B8]
	VLD1   (R7), [V2.B8]
	VLD1   (R9), [V3.B8]
	VUSHLL $0, V0.B8, V0.H8
	VUSHLL $0, V1.B8, V1.H8
	VUSHLL $0, V2.B8, V2.H8
	VUSHLL $0, V3.B8, V3.H8
	VADD   V1.H8, V0.H8, V0.H8
	VADD   V3.H8, V2.H8, V2.H8
	VADD   V2.H8, V0.H8, V0.H8
	VADD   V8.H8, V0.H8, V0.H8
	VUSHR  $2, V0.H8, V0.H8
	VUZP1  V0.B16, V0.B16, V0.B16
	VST1   [V0.B8], (R0)
	ADD    R3, R1
	ADD    R2, R0
	SUBS   $1, R5
	BNE    hv8
	RET

hv16:
	ADD     $1, R1, R6
	ADD     R3, R1, R7
	ADD     $1, R7, R9
	VLD1    (R1), [V0.B16]
	VLD1    (R6), [V1.B16]
	VLD1    (R7), [V2.B16]
	VLD1    (R9), [V3.B16]

	// Low eight pixels.
	VUSHLL  $0, V0.B8, V4.H8
	VUSHLL  $0, V1.B8, V5.H8
	VUSHLL  $0, V2.B8, V6.H8
	VUSHLL  $0, V3.B8, V7.H8
	VADD    V5.H8, V4.H8, V4.H8
	VADD    V7.H8, V6.H8, V6.H8
	VADD    V6.H8, V4.H8, V4.H8
	VADD    V8.H8, V4.H8, V4.H8
	VUSHR   $2, V4.H8, V4.H8

	// High eight pixels.
	VUSHLL2 $0, V0.B16, V0.H8
	VUSHLL2 $0, V1.B16, V1.H8
	VUSHLL2 $0, V2.B16, V2.H8
	VUSHLL2 $0, V3.B16, V3.H8
	VADD    V1.H8, V0.H8, V0.H8
	VADD    V3.H8, V2.H8, V2.H8
	VADD    V2.H8, V0.H8, V0.H8
	VADD    V8.H8, V0.H8, V0.H8
	VUSHR   $2, V0.H8, V0.H8

	// Merge: even bytes of V4 (pixels 0-7) into the low half, even
	// bytes of V0 (pixels 8-15) into the high half.
	VUZP1   V0.B16, V4.B16, V4.B16
	VST1    [V4.B16], (R0)
	ADD     R3, R1
	ADD     R2, R0
	SUBS    $1, R5
	BNE     hv16
	RET

// func avgBytesAsm(dst, a, b *byte, n int)
TEXT ·avgBytesAsm(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3

	CMP $16, R3
	BLT avgTail

avg16:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VORR   V1.B16, V0.B16, V2.B16
	VEOR   V1.B16, V0.B16, V3.B16
	VUSHR  $1, V3.B16, V3.B16
	VSUB   V3.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R3
	CMP    $16, R3
	BGE    avg16

avgTail:
	CBZ R3, avgDone

avg8:
	VLD1.P 8(R1), [V0.B8]
	VLD1.P 8(R2), [V1.B8]
	VORR   V1.B16, V0.B16, V2.B16
	VEOR   V1.B16, V0.B16, V3.B16
	VUSHR  $1, V3.B16, V3.B16
	VSUB   V3.B16, V2.B16, V2.B16
	VST1.P [V2.B8], 8(R0)
	SUBS   $8, R3
	BNE    avg8

avgDone:
	RET
