//go:build !amd64 && !arm64

package motion

// haveAsm is false on architectures without assembly kernels; the
// dispatch layer never routes here, so the stubs are unreachable.
const haveAsm = false

func predictCopyAsm(dst, src *byte, dstStride, srcStride, w, h int) {
	panic("motion: no assembly kernels on this architecture")
}

func predictHAsm(dst, src *byte, dstStride, srcStride, w, h int) {
	panic("motion: no assembly kernels on this architecture")
}

func predictVAsm(dst, src *byte, dstStride, srcStride, w, h int) {
	panic("motion: no assembly kernels on this architecture")
}

func predictHVAsm(dst, src *byte, dstStride, srcStride, w, h int) {
	panic("motion: no assembly kernels on this architecture")
}

func avgBytesAsm(dst, a, b *byte, n int) {
	panic("motion: no assembly kernels on this architecture")
}
