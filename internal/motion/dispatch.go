package motion

import "mpeg2par/internal/kernels"

// asmKernels routes the half-pel interpolation and bidirectional-average
// kernels to the architecture-specific assembly implementations. It is
// only ever true when the build provides them (haveAsm) and the active
// kernel level is LevelASM; levels are switched between decodes, so the
// hot paths read it without synchronization.
var asmKernels = false

func init() {
	kernels.Register(func(l kernels.Level) {
		asmKernels = haveAsm && l == kernels.LevelASM
		ScalarKernels = l == kernels.LevelScalar
	})
}

// predictBlockAsm interpolates like predictBlockSWAR but through the
// assembly kernels. The caller guarantees the sample region lies inside
// the plane and w is 8 or 16.
func predictBlockAsm(dst []uint8, dstStride int, src []uint8, srcStride, w, h, hx, hy int) {
	// Anchor the bounds the assembly relies on: h rows (+1 for vertical
	// interpolation) of w (+1 for horizontal) samples from the source,
	// h rows of w into the destination.
	_ = src[(h+hy-1)*srcStride+w+hx-1]
	_ = dst[(h-1)*dstStride+w-1]
	switch {
	case hx == 0 && hy == 0:
		predictCopyAsm(&dst[0], &src[0], dstStride, srcStride, w, h)
	case hx == 1 && hy == 0:
		predictHAsm(&dst[0], &src[0], dstStride, srcStride, w, h)
	case hx == 0 && hy == 1:
		predictVAsm(&dst[0], &src[0], dstStride, srcStride, w, h)
	default:
		predictHVAsm(&dst[0], &src[0], dstStride, srcStride, w, h)
	}
}
