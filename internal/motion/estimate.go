package motion

import "mpeg2par/internal/frame"

// SAD16 returns the sum of absolute differences between the 16×16 block of
// cur at (px, py) and the prediction from ref with half-pel vector mv,
// stopping early once the running sum exceeds limit.
func SAD16(cur, ref *frame.Frame, px, py int, mv MV, limit int) int {
	if mv.X&1 == 0 && mv.Y&1 == 0 {
		// Fast path: integer displacement, no interpolation.
		ix := clamp(px+(mv.X>>1), 0, ref.CodedW-16)
		iy := clamp(py+(mv.Y>>1), 0, ref.CodedH-16)
		sad := 0
		for y := 0; y < 16; y++ {
			c := cur.Y[(py+y)*cur.YStride+px:]
			r := ref.Y[(iy+y)*ref.YStride+ix:]
			for x := 0; x < 16; x++ {
				d := int(c[x]) - int(r[x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
			if sad > limit {
				return sad
			}
		}
		return sad
	}
	var pred [256]uint8
	PredictBlock(pred[:], 16, ref.Y, ref.YStride, ref.CodedW, ref.CodedH,
		px, py, mv.X, mv.Y, 16, 16)
	sad := 0
	for y := 0; y < 16; y++ {
		c := cur.Y[(py+y)*cur.YStride+px:]
		p := pred[y*16:]
		for x := 0; x < 16; x++ {
			d := int(c[x]) - int(p[x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad > limit {
			return sad
		}
	}
	return sad
}

// Estimator performs predictive diamond-search motion estimation. The
// zero value is not usable; construct with NewEstimator.
type Estimator struct {
	// RangeHalf bounds |mv| component magnitude in half-pel units; it must
	// match the f_code the encoder writes.
	RangeHalf int
}

// NewEstimator returns an estimator with the given half-pel search range.
func NewEstimator(rangeHalf int) *Estimator {
	if rangeHalf < 2 {
		rangeHalf = 2
	}
	return &Estimator{RangeHalf: rangeHalf}
}

var largeDiamond = []MV{{0, -4}, {-2, -2}, {2, -2}, {-4, 0}, {4, 0}, {-2, 2}, {2, 2}, {0, 4}}
var smallDiamond = []MV{{0, -2}, {-2, 0}, {2, 0}, {0, 2}}
var halfNeighbors = []MV{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}

// Search finds a motion vector for the macroblock at (mbx, mby) of cur
// predicted from ref. candidates seeds the search (zero vector is always
// tried). It returns the best half-pel vector and its SAD.
func (e *Estimator) Search(cur, ref *frame.Frame, mbx, mby int, candidates ...MV) (MV, int) {
	px, py := mbx*16, mby*16
	best := Zero
	bestSAD := SAD16(cur, ref, px, py, Zero, 1<<30)
	try := func(mv MV) {
		if mv == best {
			return
		}
		if !e.inRange(mv, px, py, ref) {
			return
		}
		if sad := SAD16(cur, ref, px, py, mv, bestSAD); sad < bestSAD {
			best, bestSAD = mv, sad
		}
	}
	for _, c := range candidates {
		try(MV{c.X &^ 1, c.Y &^ 1}) // full-pel version of each candidate
	}
	// Large diamond until the center is best.
	for steps := 0; steps < 64; steps++ {
		center := best
		for _, d := range largeDiamond {
			try(MV{center.X + d.X, center.Y + d.Y})
		}
		if best == center {
			break
		}
	}
	// Small diamond.
	center := best
	for _, d := range smallDiamond {
		try(MV{center.X + d.X, center.Y + d.Y})
	}
	// Half-pel refinement.
	center = best
	for _, d := range halfNeighbors {
		try(MV{center.X + d.X, center.Y + d.Y})
	}
	return best, bestSAD
}

// inRange reports whether mv is within the coded range and predicts
// entirely from inside the reference picture.
func (e *Estimator) inRange(mv MV, px, py int, ref *frame.Frame) bool {
	if mv.X > e.RangeHalf || mv.X < -e.RangeHalf || mv.Y > e.RangeHalf || mv.Y < -e.RangeHalf {
		return false
	}
	ix, iy := px+(mv.X>>1), py+(mv.Y>>1)
	hx, hy := mv.X&1, mv.Y&1
	return ix >= 0 && iy >= 0 && ix+16+hx <= ref.CodedW && iy+16+hy <= ref.CodedH
}
