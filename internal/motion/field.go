package motion

import "mpeg2par/internal/frame"

// Field prediction for frame pictures (§7.6.3.1, frame_motion_type =
// "Field-based"): each field of the macroblock — its even (top) or odd
// (bottom) lines — is predicted separately as a 16×8 block from a chosen
// field of the reference frame, with the vector's vertical component in
// *field* units (one field line = two frame lines).

// fieldView returns the slice, stride and dimensions that present one
// field of a plane as a contiguous-looking picture: same width, half the
// height, double the stride.
func fieldView(plane []uint8, stride, w, codedH int, bottom bool) ([]uint8, int, int, int) {
	off := 0
	if bottom {
		off = stride
	}
	return plane[off:], 2 * stride, w, codedH / 2
}

// PredictMBFieldDir fills the rv-th field lines of pred (rv 0 = top) from
// the sel field of ref using the field-unit half-pel vector mv.
func PredictMBFieldDir(pred *MBPred, ref *frame.Frame, mbx, mby, rv int, sel bool, mv MV) {
	// Luma: a 16×8 block in field coordinates; the macroblock starts at
	// field line mby*8.
	src, srcStride, w, h := fieldView(ref.Y, ref.YStride, ref.CodedW, ref.CodedH, sel)
	PredictBlock(pred.Y[rv*16:], 32, src, srcStride, w, h, mbx*16, mby*8, mv.X, mv.Y, 16, 8)

	// Chroma: 8×4 per field, vector scaled by two (truncating toward
	// zero) like every 4:2:0 chroma vector.
	c := mv.ChromaMV()
	cw, ch := ref.CodedW/2, ref.CodedH/2
	srcCb, cStride, cwv, chv := fieldView(ref.Cb, ref.CStride, cw, ch, sel)
	PredictBlock(pred.Cb[rv*8:], 16, srcCb, cStride, cwv, chv, mbx*8, mby*4, c.X, c.Y, 8, 4)
	srcCr, _, _, _ := fieldView(ref.Cr, ref.CStride, cw, ch, sel)
	PredictBlock(pred.Cr[rv*8:], 16, srcCr, cStride, cwv, chv, mbx*8, mby*4, c.X, c.Y, 8, 4)
}

// PredictMBField fills pred with a full field-predicted macroblock: the
// top field from (sel[0], mv1) and the bottom field from (sel[1], mv2).
func PredictMBField(pred *MBPred, ref *frame.Frame, mbx, mby int, sel [2]bool, mv1, mv2 MV) {
	PredictMBFieldDir(pred, ref, mbx, mby, 0, sel[0], mv1)
	PredictMBFieldDir(pred, ref, mbx, mby, 1, sel[1], mv2)
}

// SADField returns the sum of absolute differences between the rv-th
// field lines of cur's macroblock (mbx, mby) and the prediction from the
// sel field of ref with field-unit vector mv, stopping early past limit.
func SADField(cur, ref *frame.Frame, mbx, mby, rv int, sel bool, mv MV, limit int) int {
	var tmp [16 * 8]uint8
	src, srcStride, w, h := fieldView(ref.Y, ref.YStride, ref.CodedW, ref.CodedH, sel)
	PredictBlock(tmp[:], 16, src, srcStride, w, h, mbx*16, mby*8, mv.X, mv.Y, 16, 8)
	sad := 0
	for y := 0; y < 8; y++ {
		c := cur.Y[(mby*16+rv+2*y)*cur.YStride+mbx*16:]
		p := tmp[y*16:]
		for x := 0; x < 16; x++ {
			d := int(c[x]) - int(p[x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad > limit {
			return sad
		}
	}
	return sad
}

// SearchField finds a field vector for the rv-th field of the macroblock
// by refining candidate vectors (field units) over both reference fields.
// It returns the best vector, field select and SAD.
func SearchField(cur, ref *frame.Frame, mbx, mby, rv, rangeHalf int, cands ...MV) (MV, bool, int) {
	best := MV{}
	bestSel := false
	bestSAD := 1 << 30
	try := func(mv MV, sel bool) {
		if mv.X > rangeHalf || mv.X < -rangeHalf || mv.Y > rangeHalf || mv.Y < -rangeHalf {
			return
		}
		// Stay inside the reference field.
		ix, iy := mbx*16+(mv.X>>1), mby*8+(mv.Y>>1)
		if ix < 0 || iy < 0 || ix+16+(mv.X&1) > ref.CodedW || iy+8+(mv.Y&1) > ref.CodedH/2 {
			return
		}
		if sad := SADField(cur, ref, mbx, mby, rv, sel, mv, bestSAD); sad < bestSAD {
			best, bestSel, bestSAD = mv, sel, sad
		}
	}
	for _, sel := range []bool{false, true} {
		try(MV{}, sel)
		for _, c := range cands {
			base := MV{c.X &^ 1, c.Y &^ 1}
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					try(MV{base.X + dx, base.Y + dy}, sel)
				}
			}
		}
	}
	return best, bestSel, bestSAD
}
