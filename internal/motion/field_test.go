package motion

import (
	"testing"

	"mpeg2par/internal/frame"
)

// fieldsFrame builds a frame whose top field is all a and bottom field
// all b.
func fieldsFrame(w, h int, a, b uint8) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < f.CodedH; y++ {
		v := a
		if y&1 == 1 {
			v = b
		}
		for x := 0; x < f.CodedW; x++ {
			f.Y[y*f.CodedW+x] = v
		}
	}
	for y := 0; y < f.CodedH/2; y++ {
		v := a
		if y&1 == 1 {
			v = b
		}
		for x := 0; x < f.CodedW/2; x++ {
			f.Cb[y*f.CodedW/2+x] = v
			f.Cr[y*f.CodedW/2+x] = v
		}
	}
	return f
}

func TestPredictMBFieldSelects(t *testing.T) {
	ref := fieldsFrame(64, 64, 50, 200)
	var p MBPred
	// Top MB field from the bottom reference field, bottom MB field from
	// the top reference field: the prediction's lines swap values.
	PredictMBField(&p, ref, 1, 1, [2]bool{true, false}, Zero, Zero)
	for y := 0; y < 16; y++ {
		want := uint8(200)
		if y&1 == 1 {
			want = 50
		}
		for x := 0; x < 16; x++ {
			if p.Y[y*16+x] != want {
				t.Fatalf("luma line %d: got %d want %d", y, p.Y[y*16+x], want)
			}
		}
	}
	for y := 0; y < 8; y++ {
		want := uint8(200)
		if y&1 == 1 {
			want = 50
		}
		if p.Cb[y*8] != want || p.Cr[y*8] != want {
			t.Fatalf("chroma line %d: got %d/%d want %d", y, p.Cb[y*8], p.Cr[y*8], want)
		}
	}
}

func TestPredictMBFieldMatchesFrameOnStatic(t *testing.T) {
	// On a frame whose fields are identical, same-parity field prediction
	// with zero vectors equals frame prediction with a zero vector.
	ref := gradFrame(64, 64)
	for y := 0; y < 64; y += 2 { // make fields identical
		copy(ref.Y[(y+1)*ref.CodedW:(y+2)*ref.CodedW], ref.Y[y*ref.CodedW:(y+1)*ref.CodedW])
	}
	for y := 0; y < 32; y += 2 {
		cw := ref.CodedW / 2
		copy(ref.Cb[(y+1)*cw:(y+2)*cw], ref.Cb[y*cw:(y+1)*cw])
		copy(ref.Cr[(y+1)*cw:(y+2)*cw], ref.Cr[y*cw:(y+1)*cw])
	}
	var fp, pp MBPred
	PredictMBField(&fp, ref, 1, 1, [2]bool{false, true}, Zero, Zero)
	PredictMB(&pp, ref, 1, 1, Zero)
	if fp != pp {
		t.Fatal("field prediction differs from frame prediction on field-identical content")
	}
}

func TestSADFieldZeroOnMatch(t *testing.T) {
	ref := fieldsFrame(64, 64, 30, 90)
	cur := ref.Clone()
	if sad := SADField(cur, ref, 1, 1, 0, false, Zero, 1<<30); sad != 0 {
		t.Fatalf("top field SAD %d", sad)
	}
	if sad := SADField(cur, ref, 1, 1, 1, true, Zero, 1<<30); sad != 0 {
		t.Fatalf("bottom field SAD %d", sad)
	}
	// Cross-parity with different field values must mismatch.
	if sad := SADField(cur, ref, 1, 1, 0, true, Zero, 1<<30); sad == 0 {
		t.Fatal("cross-field SAD unexpectedly zero")
	}
}

func TestSearchFieldFindsShift(t *testing.T) {
	// cur's top field is ref's top field shifted right 4 pixels.
	ref := smoothFrame(96, 96)
	cur := frame.New(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			sx := x
			if y&1 == 0 {
				sx = x - 4
				if sx < 0 {
					sx = 0
				}
			}
			cur.Y[y*cur.CodedW+x] = ref.Y[y*ref.CodedW+sx]
		}
	}
	mv, sel, sad := SearchField(cur, ref, 2, 2, 0, 64, MV{X: -8, Y: 0})
	if sad != 0 || sel != false || mv != (MV{X: -8, Y: 0}) {
		t.Fatalf("got mv=%v sel=%v sad=%d, want (-8,0)/top/0", mv, sel, sad)
	}
}

func TestSearchFieldRespectsRange(t *testing.T) {
	ref := smoothFrame(96, 96)
	cur := smoothFrame(96, 96)
	mv, _, _ := SearchField(cur, ref, 1, 1, 0, 4, MV{X: 100, Y: 100})
	if mv.X > 4 || mv.X < -4 || mv.Y > 4 || mv.Y < -4 {
		t.Fatalf("vector %v outside range", mv)
	}
}
