package motion

import (
	"fmt"
	"testing"

	"mpeg2par/internal/kernels"
)

// xorshift PRNG so the sweep is deterministic without a seed flag.
type prng uint64

func (p *prng) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = prng(x)
	return x
}

func (p *prng) fill(b []uint8) {
	for i := range b {
		b[i] = uint8(p.next())
	}
}

// scalarPredictOracle is an independent reference implementation of the
// half-pel prediction, written in the most literal style possible so the
// optimized kernels are checked against the spec, not against each other.
func scalarPredictOracle(dst []uint8, dstStride int, ref []uint8, refStride, src, w, h, hx, hy int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := int(ref[src+y*refStride+x])
			b := int(ref[src+y*refStride+x+hx])
			c := int(ref[src+(y+hy)*refStride+x])
			d := int(ref[src+(y+hy)*refStride+x+hx])
			// (a+b+c+d+2)>>2 is exact for every phase: with hx=hy=0 all
			// four samples coincide so it reduces to a; with one half-pel
			// axis the pairs double up and it reduces to (a+b+1)>>1.
			dst[y*dstStride+x] = uint8((a + b + c + d + 2) >> 2)
		}
	}
}

// kernelTiers returns the tiers runnable on this host, restoring the
// dispatch state afterwards.
func kernelTiers(t *testing.T) []kernels.Level {
	t.Helper()
	prev := kernels.Active()
	t.Cleanup(func() { kernels.Set(prev) })
	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	} else {
		t.Logf("asm tier not supported on this host (%s); testing scalar+swar only", kernels.CPUFeatures())
	}
	return tiers
}

// TestPredictBlockTierEquivalence sweeps every half-pel phase, both block
// widths, multiple heights and strides, and random content, checking each
// kernel tier bit-exactly against the literal oracle.
func TestPredictBlockTierEquivalence(t *testing.T) {
	tiers := kernelTiers(t)
	rng := prng(0x9e3779b97f4a7c15)

	const refStride = 37 // odd stride: catches any alignment assumption
	ref := make([]uint8, refStride*40)

	for _, tier := range tiers {
		kernels.Set(tier)
		for _, w := range []int{8, 16} {
			for _, h := range []int{4, 8, 16} {
				for hy := 0; hy <= 1; hy++ {
					for hx := 0; hx <= 1; hx++ {
						for trial := 0; trial < 8; trial++ {
							rng.fill(ref)
							src := int(rng.next()%8)*refStride + int(rng.next()%8)
							dstStride := w + int(rng.next()%5)
							want := make([]uint8, dstStride*h)
							got := make([]uint8, dstStride*h)
							scalarPredictOracle(want, dstStride, ref, refStride, src, w, h, hx, hy)

							// Drive through the public entry so the
							// dispatch path under test is the real one.
							px := src % refStride
							py := src / refStride
							PredictBlock(got, dstStride, ref, refStride, refStride, 40,
								px, py, hx, hy, w, h)

							for i := range want {
								if i%dstStride < w && got[i] != want[i] {
									t.Fatalf("tier=%v w=%d h=%d hx=%d hy=%d trial=%d: dst[%d]=%d want %d",
										tier, w, h, hx, hy, trial, i, got[i], want[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestPredictBlockExtremes pins the saturation corners (all-0, all-255,
// alternating) where rounding or carry bugs in the byte-average identity
// would surface.
func TestPredictBlockExtremes(t *testing.T) {
	tiers := kernelTiers(t)
	const refStride = 24
	patterns := map[string]func(i int) uint8{
		"zero":  func(i int) uint8 { return 0 },
		"max":   func(i int) uint8 { return 255 },
		"alt":   func(i int) uint8 { return uint8(255 * (i & 1)) },
		"ramp":  func(i int) uint8 { return uint8(i) },
		"edges": func(i int) uint8 { return uint8(254 + i&1) },
	}
	for name, pat := range patterns {
		ref := make([]uint8, refStride*20)
		for i := range ref {
			ref[i] = pat(i)
		}
		for _, tier := range tiers {
			kernels.Set(tier)
			for hy := 0; hy <= 1; hy++ {
				for hx := 0; hx <= 1; hx++ {
					for _, w := range []int{8, 16} {
						h := w
						want := make([]uint8, w*h)
						got := make([]uint8, w*h)
						scalarPredictOracle(want, w, ref, refStride, refStride+1, w, h, hx, hy)
						PredictBlock(got, w, ref, refStride, refStride, 20, 1, 1, hx, hy, w, h)
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("pattern=%s tier=%v w=%d hx=%d hy=%d: dst[%d]=%d want %d",
									name, tier, w, hx, hy, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestAverageMBTierEquivalence checks the bidirectional average across
// tiers, including the aliased dst==a case the decoder uses.
func TestAverageMBTierEquivalence(t *testing.T) {
	tiers := kernelTiers(t)
	rng := prng(0x123456789abcdef)

	for trial := 0; trial < 16; trial++ {
		var a, b MBPred
		rng.fill(a.Y[:])
		rng.fill(a.Cb[:])
		rng.fill(a.Cr[:])
		rng.fill(b.Y[:])
		rng.fill(b.Cb[:])
		rng.fill(b.Cr[:])
		if trial == 0 { // saturation corner
			for i := range a.Y {
				a.Y[i], b.Y[i] = 255, 254
			}
		}

		var want MBPred
		for i := range want.Y {
			want.Y[i] = uint8((int(a.Y[i]) + int(b.Y[i]) + 1) >> 1)
		}
		for i := range want.Cb {
			want.Cb[i] = uint8((int(a.Cb[i]) + int(b.Cb[i]) + 1) >> 1)
			want.Cr[i] = uint8((int(a.Cr[i]) + int(b.Cr[i]) + 1) >> 1)
		}

		for _, tier := range tiers {
			kernels.Set(tier)
			var got MBPred
			ga, gb := a, b
			AverageMB(&got, &ga, &gb)
			if got != want {
				t.Fatalf("tier=%v trial=%d: AverageMB mismatch", tier, trial)
			}
			// Aliased form: dst == a.
			AverageMB(&ga, &ga, &gb)
			if ga != want {
				t.Fatalf("tier=%v trial=%d: aliased AverageMB mismatch", tier, trial)
			}
		}
	}
}

// BenchmarkPredictBlock measures each tier on the 16×16 luma diagonal
// case (the most expensive phase).
func BenchmarkPredictBlock(b *testing.B) {
	prev := kernels.Active()
	b.Cleanup(func() { kernels.Set(prev) })
	const refStride = 720
	ref := make([]uint8, refStride*64)
	rng := prng(7)
	rng.fill(ref)
	dst := make([]uint8, 16*16)

	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	}
	for _, tier := range tiers {
		for _, phase := range []struct{ hx, hy int }{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
			kernels.Set(tier)
			b.Run(fmt.Sprintf("%v/hx%d_hy%d", tier, phase.hx, phase.hy), func(b *testing.B) {
				b.SetBytes(16 * 16)
				for i := 0; i < b.N; i++ {
					PredictBlock(dst, 16, ref, refStride, refStride, 64, 8, 8, phase.hx, phase.hy, 16, 16)
				}
			})
		}
	}
}

// BenchmarkAverageMBTiers measures the bidirectional average across tiers.
func BenchmarkAverageMBTiers(b *testing.B) {
	prev := kernels.Active()
	b.Cleanup(func() { kernels.Set(prev) })
	var dst, x, y MBPred
	rng := prng(11)
	rng.fill(x.Y[:])
	rng.fill(y.Y[:])

	tiers := []kernels.Level{kernels.LevelScalar, kernels.LevelSWAR}
	if kernels.Supported() == kernels.LevelASM {
		tiers = append(tiers, kernels.LevelASM)
	}
	for _, tier := range tiers {
		kernels.Set(tier)
		b.Run(tier.String(), func(b *testing.B) {
			b.SetBytes(384)
			for i := 0; i < b.N; i++ {
				AverageMB(&dst, &x, &y)
			}
		})
	}
}
