// Package motion implements MPEG-2 frame-picture motion compensation with
// half-pel interpolation (ISO/IEC 13818-2 §7.6) and the encoder-side
// motion estimation (predictive diamond search with half-pel refinement).
package motion

import "mpeg2par/internal/frame"

// MV is a motion vector in half-pel units (luma scale).
type MV struct {
	X, Y int
}

// Zero is the zero motion vector.
var Zero = MV{}

// ChromaMV returns the vector applied to 4:2:0 chroma: the luma vector
// divided by two, truncating toward zero (§7.6.3.7).
func (v MV) ChromaMV() MV {
	return MV{X: divTrunc2(v.X), Y: divTrunc2(v.Y)}
}

func divTrunc2(v int) int {
	if v < 0 {
		return -(-v / 2)
	}
	return v / 2
}

// MBPred holds the prediction samples for one macroblock: a 16×16 luma
// block and two 8×8 chroma blocks.
type MBPred struct {
	Y      [256]uint8
	Cb, Cr [64]uint8
}

// PredictBlock fills a w×h destination block (dst with stride dstStride)
// from the reference plane, sampling at pixel position (px, py) displaced
// by the half-pel vector (mvx, mvy). Out-of-range displacements are
// clamped to the plane; conforming encoders never produce them, so this
// only defends against corrupt input.
//
// The edge check happens once here, not per pixel: blocks whose sample
// region (w+hx)×(h+hy) lies fully inside the plane — every block of a
// conforming stream after the clamp — take the SWAR kernels; the rest
// (degenerate planes narrower than the sample region) take the scalar
// path, which tolerates reads that run past a row into the next.
func PredictBlock(dst []uint8, dstStride int, ref []uint8, refStride, refW, refH int, px, py, mvx, mvy, w, h int) {
	ix := px + (mvx >> 1)
	iy := py + (mvy >> 1)
	hx := mvx & 1
	hy := mvy & 1
	// Clamp so that ix..ix+w-1+hx and iy..iy+h-1+hy stay inside the plane.
	ix = clamp(ix, 0, refW-w-hx)
	iy = clamp(iy, 0, refH-h-hy)
	if ix+w+hx > refW || iy+h+hy > refH {
		// The plane is smaller than the sample region (only reachable on
		// degenerate/corrupt geometry): interpolate with per-sample edge
		// replication instead of reading past the plane.
		predictBlockClamped(dst, dstStride, ref, refStride, refW, refH, ix, iy, hx, hy, w, h)
		return
	}
	src := iy*refStride + ix
	if !ScalarKernels && w&7 == 0 {
		if asmKernels && (w == 16 || w == 8) {
			predictBlockAsm(dst, dstStride, ref[src:], refStride, w, h, hx, hy)
			return
		}
		predictBlockSWAR(dst, dstStride, ref[src:], refStride, w, h, hx, hy)
		return
	}
	switch {
	case hx == 0 && hy == 0:
		for y := 0; y < h; y++ {
			copy(dst[y*dstStride:y*dstStride+w], ref[src+y*refStride:])
		}
	case hx == 1 && hy == 0:
		for y := 0; y < h; y++ {
			r := ref[src+y*refStride:]
			d := dst[y*dstStride:]
			for x := 0; x < w; x++ {
				d[x] = uint8((int(r[x]) + int(r[x+1]) + 1) >> 1)
			}
		}
	case hx == 0 && hy == 1:
		for y := 0; y < h; y++ {
			r0 := ref[src+y*refStride:]
			r1 := ref[src+(y+1)*refStride:]
			d := dst[y*dstStride:]
			for x := 0; x < w; x++ {
				d[x] = uint8((int(r0[x]) + int(r1[x]) + 1) >> 1)
			}
		}
	default:
		for y := 0; y < h; y++ {
			r0 := ref[src+y*refStride:]
			r1 := ref[src+(y+1)*refStride:]
			d := dst[y*dstStride:]
			for x := 0; x < w; x++ {
				d[x] = uint8((int(r0[x]) + int(r0[x+1]) + int(r1[x]) + int(r1[x+1]) + 2) >> 2)
			}
		}
	}
}

// predictBlockClamped is the defensive slow path for planes smaller than
// the (w+hx)×(h+hy) sample region: every sample coordinate is clamped to
// the plane edge (replication), so no vector or geometry can read out of
// bounds.
func predictBlockClamped(dst []uint8, dstStride int, ref []uint8, refStride, refW, refH, ix, iy, hx, hy, w, h int) {
	sample := func(yy, xx int) int {
		if xx >= refW {
			xx = refW - 1
		}
		if yy >= refH {
			yy = refH - 1
		}
		return int(ref[yy*refStride+xx])
	}
	for y := 0; y < h; y++ {
		d := dst[y*dstStride:]
		for x := 0; x < w; x++ {
			s := sample(iy+y, ix+x)
			switch {
			case hx == 1 && hy == 1:
				s = (s + sample(iy+y, ix+x+1) + sample(iy+y+1, ix+x) + sample(iy+y+1, ix+x+1) + 2) >> 2
			case hx == 1:
				s = (s + sample(iy+y, ix+x+1) + 1) >> 1
			case hy == 1:
				s = (s + sample(iy+y+1, ix+x) + 1) >> 1
			}
			d[x] = uint8(s)
		}
	}
}

// PredictMB fills pred from ref for the macroblock at (mbx, mby)
// (macroblock coordinates) using the half-pel luma vector mv.
func PredictMB(pred *MBPred, ref *frame.Frame, mbx, mby int, mv MV) {
	PredictBlock(pred.Y[:], 16, ref.Y, ref.YStride, ref.CodedW, ref.CodedH,
		mbx*16, mby*16, mv.X, mv.Y, 16, 16)
	c := mv.ChromaMV()
	cw, ch := ref.CodedW/2, ref.CodedH/2
	PredictBlock(pred.Cb[:], 8, ref.Cb, ref.CStride, cw, ch, mbx*8, mby*8, c.X, c.Y, 8, 8)
	PredictBlock(pred.Cr[:], 8, ref.Cr, ref.CStride, cw, ch, mbx*8, mby*8, c.X, c.Y, 8, 8)
}

// AverageMB sets dst to the rounded average of a and b — bidirectional
// prediction (§7.6.7.1). The SWAR path fuses the whole macroblock into
// 48 eight-pixel averages; dst may alias a or b.
func AverageMB(dst, a, b *MBPred) {
	if ScalarKernels {
		for i := range dst.Y {
			dst.Y[i] = uint8((int(a.Y[i]) + int(b.Y[i]) + 1) >> 1)
		}
		for i := range dst.Cb {
			dst.Cb[i] = uint8((int(a.Cb[i]) + int(b.Cb[i]) + 1) >> 1)
			dst.Cr[i] = uint8((int(a.Cr[i]) + int(b.Cr[i]) + 1) >> 1)
		}
		return
	}
	if asmKernels {
		avgBytesAsm(&dst.Y[0], &a.Y[0], &b.Y[0], len(dst.Y))
		avgBytesAsm(&dst.Cb[0], &a.Cb[0], &b.Cb[0], len(dst.Cb))
		avgBytesAsm(&dst.Cr[0], &a.Cr[0], &b.Cr[0], len(dst.Cr))
		return
	}
	avgBytes8(dst.Y[:], a.Y[:], b.Y[:], len(dst.Y))
	avgBytes8(dst.Cb[:], a.Cb[:], b.Cb[:], len(dst.Cb))
	avgBytes8(dst.Cr[:], a.Cr[:], b.Cr[:], len(dst.Cr))
}

func clamp(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
