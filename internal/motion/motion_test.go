package motion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpeg2par/internal/frame"
)

func TestChromaMV(t *testing.T) {
	cases := []struct{ in, want MV }{
		{MV{0, 0}, MV{0, 0}},
		{MV{2, 4}, MV{1, 2}},
		{MV{3, 5}, MV{1, 2}},
		{MV{-3, -5}, MV{-1, -2}},
		{MV{-2, -4}, MV{-1, -2}},
		{MV{1, -1}, MV{0, 0}},
	}
	for _, c := range cases {
		if got := c.in.ChromaMV(); got != c.want {
			t.Errorf("ChromaMV(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// gradFrame builds a frame whose luma is a known function of position, so
// predictions can be checked analytically.
func gradFrame(w, h int) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < f.CodedH; y++ {
		for x := 0; x < f.CodedW; x++ {
			f.Y[y*f.CodedW+x] = uint8((x*3 + y*7) % 251)
		}
	}
	for y := 0; y < f.CodedH/2; y++ {
		for x := 0; x < f.CodedW/2; x++ {
			f.Cb[y*f.CodedW/2+x] = uint8((x + 2*y) % 251)
			f.Cr[y*f.CodedW/2+x] = uint8((2*x + y) % 251)
		}
	}
	return f
}

func TestPredictBlockIntegerCopy(t *testing.T) {
	ref := gradFrame(64, 64)
	var dst [256]uint8
	// Full-pel vector (+4, +6) in half-pel units is (8, 12).
	PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH, 16, 16, 8, 12, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := ref.Y[(16+6+y)*ref.CodedW+16+4+x]
			if dst[y*16+x] != want {
				t.Fatalf("at %d,%d: got %d want %d", x, y, dst[y*16+x], want)
			}
		}
	}
}

func TestPredictBlockHalfPel(t *testing.T) {
	ref := gradFrame(64, 64)
	var dst [256]uint8
	// Horizontal half-pel.
	PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH, 16, 16, 1, 0, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			a := int(ref.Y[(16+y)*ref.CodedW+16+x])
			b := int(ref.Y[(16+y)*ref.CodedW+17+x])
			want := uint8((a + b + 1) >> 1)
			if dst[y*16+x] != want {
				t.Fatalf("hx at %d,%d: got %d want %d", x, y, dst[y*16+x], want)
			}
		}
	}
	// Diagonal half-pel.
	PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH, 16, 16, 1, 1, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			s := int(ref.Y[(16+y)*ref.CodedW+16+x]) + int(ref.Y[(16+y)*ref.CodedW+17+x]) +
				int(ref.Y[(17+y)*ref.CodedW+16+x]) + int(ref.Y[(17+y)*ref.CodedW+17+x])
			want := uint8((s + 2) >> 2)
			if dst[y*16+x] != want {
				t.Fatalf("hxy at %d,%d: got %d want %d", x, y, dst[y*16+x], want)
			}
		}
	}
}

func TestPredictBlockClampsAtEdges(t *testing.T) {
	ref := gradFrame(32, 32)
	var dst [256]uint8
	// A wildly out-of-range vector must not panic and must read inside.
	PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH, 16, 16, -2000, 4000, 16, 16)
	PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH, 0, 0, 4001, -4001, 16, 16)
}

func TestPredictMBMatchesPlanes(t *testing.T) {
	ref := gradFrame(64, 64)
	var p MBPred
	PredictMB(&p, ref, 1, 1, MV{4, 8}) // full-pel (2,4)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := ref.Y[(16+4+y)*ref.CodedW+16+2+x]
			if p.Y[y*16+x] != want {
				t.Fatalf("luma %d,%d: got %d want %d", x, y, p.Y[y*16+x], want)
			}
		}
	}
	// Chroma vector is (1, 2) full-pel.
	cw := ref.CodedW / 2
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := ref.Cb[(8+2+y)*cw+8+1+x]
			if p.Cb[y*8+x] != want {
				t.Fatalf("cb %d,%d: got %d want %d", x, y, p.Cb[y*8+x], want)
			}
		}
	}
}

func TestAverageMB(t *testing.T) {
	var a, b, d MBPred
	for i := range a.Y {
		a.Y[i] = 10
		b.Y[i] = 13
	}
	for i := range a.Cb {
		a.Cb[i], b.Cb[i] = 0, 255
		a.Cr[i], b.Cr[i] = 4, 4
	}
	AverageMB(&d, &a, &b)
	if d.Y[0] != 12 { // (10+13+1)>>1
		t.Fatalf("avg luma = %d, want 12", d.Y[0])
	}
	if d.Cb[0] != 128 || d.Cr[0] != 4 {
		t.Fatalf("avg chroma = %d/%d", d.Cb[0], d.Cr[0])
	}
}

func TestSADZeroOnPerfectMatch(t *testing.T) {
	ref := gradFrame(64, 64)
	cur := ref.Clone()
	if sad := SAD16(cur, ref, 16, 16, Zero, 1<<30); sad != 0 {
		t.Fatalf("SAD of identical frames = %d", sad)
	}
}

func TestSADEarlyExit(t *testing.T) {
	ref := gradFrame(64, 64)
	cur := frame.New(64, 64) // all zeros vs gradient: big SAD
	sad := SAD16(cur, ref, 16, 16, Zero, 100)
	if sad <= 100 {
		t.Fatalf("early exit should return >limit, got %d", sad)
	}
}

// noiseFrame builds an aperiodic frame (hash noise) so that a given shift
// has a unique zero-SAD match, unlike the linear gradient which aliases.
func noiseFrame(w, h int) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < f.CodedH; y++ {
		for x := 0; x < f.CodedW; x++ {
			v := uint32(x*2654435761) ^ uint32(y*40503)
			v ^= v >> 13
			v *= 2246822519
			f.Y[y*f.CodedW+x] = uint8(v >> 8)
		}
	}
	return f
}

// smoothFrame is aperiodic but smooth (video-like), so descent-based
// search converges without seeding.
func smoothFrame(w, h int) *frame.Frame {
	base := noiseFrame(w/8+4, h/8+4)
	return base.Scale(w, h)
}

func TestSearchFindsKnownShift(t *testing.T) {
	// cur is ref shifted right by 6 pixels: the search must find (-12, 0)
	// half-pel (cur(x) = ref(x-6), so the prediction of cur at px samples
	// ref at px-6 → mv=(-12,0)). Content is smooth-textured (like real
	// video) so the SAD landscape guides the diamond descent.
	ref := smoothFrame(96, 96)
	cur := frame.New(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			sx := x - 6
			if sx < 0 {
				sx = 0
			}
			cur.Y[y*cur.CodedW+x] = ref.Y[y*ref.CodedW+sx]
		}
	}
	e := NewEstimator(32)
	mv, sad := e.Search(cur, ref, 2, 2)
	if mv != (MV{-12, 0}) || sad != 0 {
		t.Fatalf("got mv=%v sad=%d, want (-12,0)/0", mv, sad)
	}
}

func TestSearchHalfPel(t *testing.T) {
	// cur is the half-pel interpolation of ref shifted by 2.5 pixels: the
	// best vector should be (-5, 0) with SAD 0.
	ref := noiseFrame(96, 96)
	cur := frame.New(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			sx := x - 3
			if sx < 0 {
				sx = 0
			}
			a := int(ref.Y[y*ref.CodedW+sx])
			b := int(ref.Y[y*ref.CodedW+sx+1])
			cur.Y[y*cur.CodedW+x] = uint8((a + b + 1) >> 1)
		}
	}
	e := NewEstimator(32)
	mv, sad := e.Search(cur, ref, 2, 2)
	if sad != 0 {
		t.Fatalf("got mv=%v sad=%d, want sad 0", mv, sad)
	}
	if mv.X&1 == 0 {
		t.Fatalf("expected a half-pel horizontal component, got %v", mv)
	}
}

func TestSearchRespectsRange(t *testing.T) {
	ref := noiseFrame(128, 64)
	cur := frame.New(128, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 128; x++ {
			sx := x - 30 // shift way beyond the range
			if sx < 0 {
				sx = 0
			}
			cur.Y[y*cur.CodedW+x] = ref.Y[y*ref.CodedW+sx]
		}
	}
	e := NewEstimator(16) // ±8 full-pel
	mv, _ := e.Search(cur, ref, 4, 1)
	if mv.X < -16 || mv.X > 16 || mv.Y < -16 || mv.Y > 16 {
		t.Fatalf("vector %v outside range", mv)
	}
}

func TestSearchCandidateSeeding(t *testing.T) {
	// With a candidate seeded at the true displacement, even a tiny range
	// around it works when the diamond alone might wander.
	ref := noiseFrame(128, 128)
	cur := frame.New(128, 128)
	const shift = 20
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			sx := x - shift
			if sx < 0 {
				sx = 0
			}
			cur.Y[y*cur.CodedW+x] = ref.Y[y*ref.CodedW+sx]
		}
	}
	e := NewEstimator(64)
	mv, sad := e.Search(cur, ref, 3, 3, MV{-2 * shift, 0})
	if sad != 0 || mv != (MV{-2 * shift, 0}) {
		t.Fatalf("seeded search got mv=%v sad=%d", mv, sad)
	}
}

// TestPredictQuickNoPanic: random vectors and positions never read out of
// bounds (the clamp logic is load-bearing for corrupt-stream safety).
func TestPredictQuickNoPanic(t *testing.T) {
	ref := gradFrame(48, 48)
	f := func(px, py int16, mvx, mvy int16) bool {
		var dst [256]uint8
		PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH,
			int(px%48), int(py%48), int(mvx), int(mvy), 16, 16)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSAD16(b *testing.B) {
	ref := gradFrame(352, 240)
	cur := ref.Clone()
	for i := 0; i < b.N; i++ {
		SAD16(cur, ref, 160, 112, MV{2, 2}, 1<<30)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	s := frame.NewSynth(352, 240)
	ref := s.Frame(0)
	cur := s.Frame(3)
	e := NewEstimator(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbx := rng.Intn(ref.CodedW/16 - 1)
		mby := rng.Intn(ref.CodedH/16 - 1)
		e.Search(cur, ref, mbx, mby)
	}
}

func BenchmarkPredictMBHalfPel(b *testing.B) {
	ref := gradFrame(352, 240)
	var p MBPred
	for i := 0; i < b.N; i++ {
		PredictMB(&p, ref, 5, 5, MV{3, 3})
	}
}
