package motion

import "encoding/binary"

// SWAR (SIMD-within-a-register) pixel kernels: the half-pel interpolation
// and bidirectional-average inner loops process eight pixels per uint64
// instead of one byte at a time. All kernels are bit-exact against the
// scalar reference paths (the equivalence tests in swar_test.go sweep
// every byte pair and every half-pel phase), so flipping ScalarKernels
// must never change a single output pixel.

// ScalarKernels forces the byte-at-a-time reference paths in place of the
// SWAR kernels. The golden tests flip it to prove both paths reconstruct
// bit-identical frames; it stays false in production.
var ScalarKernels = false

const (
	swarByteHi = 0x8080808080808080 // high bit of each byte lane
	swarByteLo = 0x0101010101010101 // low bit of each byte lane
	swarHalfLo = 0x00FF00FF00FF00FF // even byte lanes, widened to 16 bits
)

// avg2u64 returns the per-byte rounded average (a+b+1)>>1 of eight packed
// pixels, using the identity avg_ceil(a,b) = (a|b) - ((a^b)>>1). The
// masked shift keeps lane bits from leaking, and the subtraction cannot
// borrow across lanes because per byte (a|b) >= (a^b)>>1.
func avg2u64(a, b uint64) uint64 {
	return (a | b) - (((a ^ b) & ^uint64(swarByteLo)) >> 1)
}

// avg4u64 returns the per-byte rounded average (a+b+c+d+2)>>2 of eight
// packed pixels. The bytes are widened into 16-bit lanes (evens and odds
// separately) so the four-way sum — at most 4*255+2 = 1022 — cannot carry
// between pixels.
func avg4u64(a, b, c, d uint64) uint64 {
	const two = 0x0002000200020002
	e := (a&swarHalfLo + b&swarHalfLo + c&swarHalfLo + d&swarHalfLo + two) >> 2 & swarHalfLo
	o := (a>>8&swarHalfLo + b>>8&swarHalfLo + c>>8&swarHalfLo + d>>8&swarHalfLo + two) >> 2 & swarHalfLo
	return e | o<<8
}

// predictBlockSWAR interpolates a w×h block whose sample region is known
// to lie fully inside the reference plane (the caller hoists that edge
// check out), with w a multiple of 8. src is the plane at the integer
// sample origin.
//
// The w==16 (luma) and w==8 (chroma) bodies are fully unrolled with
// constant-index row slices so the compiler drops the per-load bounds
// checks; the offsets walk down the planes instead of re-slicing per
// element. Motion compensation is the biggest share of P/B reconstruction,
// so this loop shape is worth its verbosity.
func predictBlockSWAR(dst []uint8, dstStride int, src []uint8, srcStride, w, h, hx, hy int) {
	le := binary.LittleEndian
	so, do := 0, 0
	switch {
	case hx == 0 && hy == 0:
		switch w {
		case 16:
			for y := 0; y < h; y++ {
				r := src[so : so+16]
				d := dst[do : do+16 : do+16]
				le.PutUint64(d[0:8], le.Uint64(r[0:8]))
				le.PutUint64(d[8:16], le.Uint64(r[8:16]))
				so += srcStride
				do += dstStride
			}
		case 8:
			for y := 0; y < h; y++ {
				le.PutUint64(dst[do:do+8:do+8], le.Uint64(src[so:so+8]))
				so += srcStride
				do += dstStride
			}
		default:
			for y := 0; y < h; y++ {
				copy(dst[do:do+w], src[so:])
				so += srcStride
				do += dstStride
			}
		}
	case hx == 1 && hy == 0:
		switch w {
		case 16:
			for y := 0; y < h; y++ {
				r := src[so : so+17]
				d := dst[do : do+16 : do+16]
				le.PutUint64(d[0:8], avg2u64(le.Uint64(r[0:8]), le.Uint64(r[1:9])))
				le.PutUint64(d[8:16], avg2u64(le.Uint64(r[8:16]), le.Uint64(r[9:17])))
				so += srcStride
				do += dstStride
			}
		case 8:
			for y := 0; y < h; y++ {
				r := src[so : so+9]
				le.PutUint64(dst[do:do+8:do+8], avg2u64(le.Uint64(r[0:8]), le.Uint64(r[1:9])))
				so += srcStride
				do += dstStride
			}
		default:
			for y := 0; y < h; y++ {
				r := src[so:]
				d := dst[do:]
				for x := 0; x < w; x += 8 {
					le.PutUint64(d[x:], avg2u64(le.Uint64(r[x:]), le.Uint64(r[x+1:])))
				}
				so += srcStride
				do += dstStride
			}
		}
	case hx == 0 && hy == 1:
		switch w {
		case 16:
			for y := 0; y < h; y++ {
				r0 := src[so : so+16]
				r1 := src[so+srcStride : so+srcStride+16]
				d := dst[do : do+16 : do+16]
				le.PutUint64(d[0:8], avg2u64(le.Uint64(r0[0:8]), le.Uint64(r1[0:8])))
				le.PutUint64(d[8:16], avg2u64(le.Uint64(r0[8:16]), le.Uint64(r1[8:16])))
				so += srcStride
				do += dstStride
			}
		case 8:
			for y := 0; y < h; y++ {
				a := le.Uint64(src[so : so+8])
				b := le.Uint64(src[so+srcStride : so+srcStride+8])
				le.PutUint64(dst[do:do+8:do+8], avg2u64(a, b))
				so += srcStride
				do += dstStride
			}
		default:
			for y := 0; y < h; y++ {
				r0 := src[so:]
				r1 := src[so+srcStride:]
				d := dst[do:]
				for x := 0; x < w; x += 8 {
					le.PutUint64(d[x:], avg2u64(le.Uint64(r0[x:]), le.Uint64(r1[x:])))
				}
				so += srcStride
				do += dstStride
			}
		}
	default:
		switch w {
		case 16:
			for y := 0; y < h; y++ {
				r0 := src[so : so+17]
				r1 := src[so+srcStride : so+srcStride+17]
				d := dst[do : do+16 : do+16]
				le.PutUint64(d[0:8], avg4u64(le.Uint64(r0[0:8]), le.Uint64(r0[1:9]),
					le.Uint64(r1[0:8]), le.Uint64(r1[1:9])))
				le.PutUint64(d[8:16], avg4u64(le.Uint64(r0[8:16]), le.Uint64(r0[9:17]),
					le.Uint64(r1[8:16]), le.Uint64(r1[9:17])))
				so += srcStride
				do += dstStride
			}
		case 8:
			for y := 0; y < h; y++ {
				r0 := src[so : so+9]
				r1 := src[so+srcStride : so+srcStride+9]
				le.PutUint64(dst[do:do+8:do+8], avg4u64(le.Uint64(r0[0:8]), le.Uint64(r0[1:9]),
					le.Uint64(r1[0:8]), le.Uint64(r1[1:9])))
				so += srcStride
				do += dstStride
			}
		default:
			for y := 0; y < h; y++ {
				r0 := src[so:]
				r1 := src[so+srcStride:]
				d := dst[do:]
				for x := 0; x < w; x += 8 {
					le.PutUint64(d[x:], avg4u64(le.Uint64(r0[x:]), le.Uint64(r0[x+1:]),
						le.Uint64(r1[x:]), le.Uint64(r1[x+1:])))
				}
				so += srcStride
				do += dstStride
			}
		}
	}
}

// avgBytes8 averages the n-byte buffers a and b into dst (n a multiple of
// 8) with MPEG rounding, eight pixels per step.
func avgBytes8(dst, a, b []uint8, n int) {
	for i := 0; i < n; i += 8 {
		va := binary.LittleEndian.Uint64(a[i:])
		vb := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], avg2u64(va, vb))
	}
}
