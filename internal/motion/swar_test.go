package motion

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestAvg2Exhaustive checks the SWAR rounded average against the scalar
// formula for every one of the 65536 byte pairs, replicated across all
// eight lanes so a cross-lane borrow in any position would be caught.
func TestAvg2Exhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := uint8((a + b + 1) >> 1)
			va := uint64(a) * swarByteLo
			vb := uint64(b) * swarByteLo
			got := avg2u64(va, vb)
			if got != uint64(want)*swarByteLo {
				t.Fatalf("avg2(%d,%d) lanes = %016x, want all %02x", a, b, got, want)
			}
		}
	}
}

// TestAvg2LaneIsolation fills each lane with an independent random pair and
// checks every lane separately, so neighbours cannot mask each other.
func TestAvg2LaneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b [8]uint8
	for iter := 0; iter < 20000; iter++ {
		for i := range a {
			a[i] = uint8(rng.Intn(256))
			b[i] = uint8(rng.Intn(256))
		}
		got := avg2u64(binary.LittleEndian.Uint64(a[:]), binary.LittleEndian.Uint64(b[:]))
		for i := 0; i < 8; i++ {
			want := uint8((int(a[i]) + int(b[i]) + 1) >> 1)
			if uint8(got>>(8*i)) != want {
				t.Fatalf("lane %d: avg2(%d,%d) = %d, want %d", i, a[i], b[i], uint8(got>>(8*i)), want)
			}
		}
	}
}

// TestAvg4 sweeps the extremes exhaustively (all 4-tuples over a boundary
// value set, where carries live) plus random full-range lanes.
func TestAvg4(t *testing.T) {
	vals := []int{0, 1, 2, 127, 128, 253, 254, 255}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				for _, d := range vals {
					want := uint8((a + b + c + d + 2) >> 2)
					got := avg4u64(uint64(a)*swarByteLo, uint64(b)*swarByteLo, uint64(c)*swarByteLo, uint64(d)*swarByteLo)
					if got != uint64(want)*swarByteLo {
						t.Fatalf("avg4(%d,%d,%d,%d) = %016x, want all %02x", a, b, c, d, got, want)
					}
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	var a, b, c, d [8]uint8
	for iter := 0; iter < 20000; iter++ {
		for i := 0; i < 8; i++ {
			a[i], b[i] = uint8(rng.Intn(256)), uint8(rng.Intn(256))
			c[i], d[i] = uint8(rng.Intn(256)), uint8(rng.Intn(256))
		}
		got := avg4u64(binary.LittleEndian.Uint64(a[:]), binary.LittleEndian.Uint64(b[:]),
			binary.LittleEndian.Uint64(c[:]), binary.LittleEndian.Uint64(d[:]))
		for i := 0; i < 8; i++ {
			want := uint8((int(a[i]) + int(b[i]) + int(c[i]) + int(d[i]) + 2) >> 2)
			if uint8(got>>(8*i)) != want {
				t.Fatalf("lane %d: avg4(%d,%d,%d,%d) = %d, want %d",
					i, a[i], b[i], c[i], d[i], uint8(got>>(8*i)), want)
			}
		}
	}
}

// withScalarKernels runs f with the scalar reference paths forced on.
func withScalarKernels(t testing.TB, f func()) {
	t.Helper()
	prev := ScalarKernels
	ScalarKernels = true
	defer func() { ScalarKernels = prev }()
	f()
}

// TestPredictBlockSWAREquivalence sweeps every half-pel phase over every
// position of a noise plane — interior and all four clamped edges — for
// the block shapes the decoder uses (16×16, 16×8 field luma, 8×8 chroma,
// 8×4 field chroma) and requires the SWAR and scalar paths to agree on
// every output byte.
func TestPredictBlockSWAREquivalence(t *testing.T) {
	ref := noiseFrame(64, 48)
	shapes := []struct{ w, h int }{{16, 16}, {16, 8}, {8, 8}, {8, 4}}
	var swar, scalar [256 + 8]uint8
	for _, sh := range shapes {
		for mvy := -3; mvy <= 3; mvy++ {
			for mvx := -3; mvx <= 3; mvx++ {
				for py := -2; py <= ref.CodedH-sh.h+2; py += 5 {
					for px := -2; px <= ref.CodedW-sh.w+2; px += 5 {
						for i := range swar {
							swar[i], scalar[i] = 0xAA, 0xAA
						}
						PredictBlock(swar[:], sh.w, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH,
							px, py, mvx, mvy, sh.w, sh.h)
						withScalarKernels(t, func() {
							PredictBlock(scalar[:], sh.w, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH,
								px, py, mvx, mvy, sh.w, sh.h)
						})
						if swar != scalar {
							t.Fatalf("%dx%d mv=(%d,%d) at (%d,%d): SWAR diverges from scalar",
								sh.w, sh.h, mvx, mvy, px, py)
						}
					}
				}
			}
		}
	}
}

// TestPredictBlockSWARDegeneratePlane: a plane exactly as wide as the
// sample region forces the scalar fallback; both paths must still agree
// (the fallback is the reference for itself, so this pins the dispatch
// condition rather than the arithmetic).
func TestPredictBlockSWARDegeneratePlane(t *testing.T) {
	ref := gradFrame(16, 16) // chroma planes are 8 wide: w+hx overruns
	var swar, scalar [64]uint8
	cw := ref.CodedW / 2
	for mvx := -1; mvx <= 1; mvx++ {
		for mvy := -1; mvy <= 1; mvy++ {
			PredictBlock(swar[:], 8, ref.Cb, cw, cw, ref.CodedH/2, 0, 0, mvx, mvy, 8, 8)
			withScalarKernels(t, func() {
				PredictBlock(scalar[:], 8, ref.Cb, cw, cw, ref.CodedH/2, 0, 0, mvx, mvy, 8, 8)
			})
			if swar != scalar {
				t.Fatalf("mv=(%d,%d): degenerate-plane outputs diverge", mvx, mvy)
			}
		}
	}
}

// TestAverageMBSWAREquivalence compares the fused SWAR bidirectional
// average against the scalar loop on random predictions, including the
// in-place dst==a form the decoder uses.
func TestAverageMBSWAREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		var a, b MBPred
		for i := range a.Y {
			a.Y[i], b.Y[i] = uint8(rng.Intn(256)), uint8(rng.Intn(256))
		}
		for i := range a.Cb {
			a.Cb[i], b.Cb[i] = uint8(rng.Intn(256)), uint8(rng.Intn(256))
			a.Cr[i], b.Cr[i] = uint8(rng.Intn(256)), uint8(rng.Intn(256))
		}
		var want MBPred
		withScalarKernels(t, func() { AverageMB(&want, &a, &b) })
		var got MBPred
		AverageMB(&got, &a, &b)
		if got != want {
			t.Fatal("AverageMB SWAR diverges from scalar")
		}
		inPlace := a
		AverageMB(&inPlace, &inPlace, &b)
		if inPlace != want {
			t.Fatal("AverageMB in-place SWAR diverges from scalar")
		}
	}
}

// TestPredictMBFieldSWAREquivalence covers the field-prediction strides
// (dstStride 32 luma / 16 chroma) end to end.
func TestPredictMBFieldSWAREquivalence(t *testing.T) {
	ref := noiseFrame(64, 64)
	for mvy := -2; mvy <= 2; mvy++ {
		for mvx := -2; mvx <= 2; mvx++ {
			for _, sel := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
				var swar, scalar MBPred
				PredictMBField(&swar, ref, 1, 1, sel, MV{mvx, mvy}, MV{-mvx, -mvy})
				withScalarKernels(t, func() {
					PredictMBField(&scalar, ref, 1, 1, sel, MV{mvx, mvy}, MV{-mvx, -mvy})
				})
				if swar != scalar {
					t.Fatalf("field mv=(%d,%d) sel=%v: SWAR diverges from scalar", mvx, mvy, sel)
				}
			}
		}
	}
}

func benchPredictBlock(b *testing.B, mvx, mvy int) {
	ref := gradFrame(352, 240)
	var dst [256]uint8
	run := func(b *testing.B) {
		b.SetBytes(256)
		for i := 0; i < b.N; i++ {
			PredictBlock(dst[:], 16, ref.Y, ref.CodedW, ref.CodedW, ref.CodedH,
				160, 112, mvx, mvy, 16, 16)
		}
	}
	b.Run("swar", run)
	b.Run("scalar", func(b *testing.B) { withScalarKernels(b, func() { run(b) }) })
}

func BenchmarkPredictBlockFullPel(b *testing.B) { benchPredictBlock(b, 2, 2) }
func BenchmarkPredictBlockHalfH(b *testing.B)   { benchPredictBlock(b, 3, 2) }
func BenchmarkPredictBlockHalfV(b *testing.B)   { benchPredictBlock(b, 2, 3) }
func BenchmarkPredictBlockHalfHV(b *testing.B)  { benchPredictBlock(b, 3, 3) }

func BenchmarkAverageMB(b *testing.B) {
	var a2, b2, d MBPred
	for i := range a2.Y {
		a2.Y[i] = uint8(i)
		b2.Y[i] = uint8(255 - i)
	}
	run := func(b *testing.B) {
		b.SetBytes(int64(len(d.Y) + len(d.Cb) + len(d.Cr)))
		for i := 0; i < b.N; i++ {
			AverageMB(&d, &a2, &b2)
		}
	}
	b.Run("swar", run)
	b.Run("scalar", func(b *testing.B) { withScalarKernels(b, func() { run(b) }) })
}
