// Package mpeg2 implements the MPEG-2 video bitstream syntax (ISO/IEC
// 13818-2): sequence, GOP, picture and slice headers, and the macroblock/
// block layer as a pure syntax transform between a structured macroblock
// representation and bits.
//
// The scope is the Main Profile subset the paper exercises: progressive
// frame pictures, 4:2:0, I/P/B with frame prediction and half-pel motion,
// frame_pred_frame_dct=1. Pixel reconstruction and coefficient production
// live in the decoder and encoder packages; this package owns all
// bitstream state (DC predictors, motion vector predictors, quantiser
// scale, skipped-macroblock semantics).
package mpeg2

// Startcode values (the byte following the 0x000001 prefix), §6.2.1.
const (
	PictureStartCode   = 0x00
	SliceStartMin      = 0x01
	SliceStartMax      = 0xAF
	UserDataStartCode  = 0xB2
	SequenceHeaderCode = 0xB3
	SequenceErrorCode  = 0xB4
	ExtensionStartCode = 0xB5
	SequenceEndCode    = 0xB7
	GroupStartCode     = 0xB8
)

// Extension identifiers (§6.3.3).
const (
	SequenceExtensionID      = 1
	SequenceDisplayExtID     = 2
	QuantMatrixExtensionID   = 3
	PictureCodingExtensionID = 8
)

// Picture structure codes (§6.3.10).
const (
	TopField     = 1
	BottomField  = 2
	FramePicture = 3
)

// Chroma formats (§6.3.5).
const (
	Chroma420 = 1
	Chroma422 = 2
	Chroma444 = 3
)

// FrameRates maps frame_rate_code to frames per second (Table 6-4).
var FrameRates = [16]float64{
	0, 24000.0 / 1001, 24, 25, 30000.0 / 1001, 30, 50, 60000.0 / 1001, 60,
}

// FrameRateCode returns the code whose rate is closest to fps.
func FrameRateCode(fps float64) int {
	best, bestDiff := 5, 1e18
	for code := 1; code <= 8; code++ {
		d := FrameRates[code] - fps
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = code, d
		}
	}
	return best
}

// ProfileLevel codes (profile_and_level_indication) for streams we write.
// The paper's streams are "main profile at high level".
const (
	MainProfileMainLevel = 0x48
	MainProfileHighLevel = 0x44
)

// MVRangeHalf returns the half-pel motion vector range limit for an
// f_code: vectors must lie in [-16<<(f-1), 16<<(f-1) - 1].
func MVRangeHalf(fcode int) int {
	if fcode < 1 {
		fcode = 1
	}
	return 16 << uint(fcode-1)
}

// FCodeFor returns the smallest legal f_code that can represent half-pel
// vector components of magnitude up to maxHalf.
func FCodeFor(maxHalf int) int {
	for f := 1; f <= 9; f++ {
		if MVRangeHalf(f) > maxHalf {
			return f
		}
	}
	return 9
}
