package mpeg2

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/quant"
	"mpeg2par/internal/vlc"
)

// SequenceHeader carries the sequence header (§6.2.2.1) and the MPEG-2
// sequence extension (§6.2.2.3) we always emit right after it.
type SequenceHeader struct {
	Width, Height int
	AspectRatio   int // aspect_ratio_information code, 1 = square pixels
	FrameRate     int // frame_rate_code
	BitRate       int // in 400 bit/s units
	VBVBufferSize int // in 16 kbit units

	LoadIntraMatrix    bool
	LoadNonIntraMatrix bool
	IntraMatrix        [64]uint8 // valid; defaults filled on parse/normalize
	NonIntraMatrix     [64]uint8

	// Sequence extension fields.
	ProfileLevel uint8
	Progressive  bool
	ChromaFormat int
	LowDelay     bool
}

// Normalize fills default matrices and field defaults for encoding.
func (h *SequenceHeader) Normalize() {
	if !h.LoadIntraMatrix {
		h.IntraMatrix = quant.DefaultIntraMatrix
	}
	if !h.LoadNonIntraMatrix {
		h.NonIntraMatrix = quant.DefaultNonIntraMatrix
	}
	if h.AspectRatio == 0 {
		h.AspectRatio = 1
	}
	if h.FrameRate == 0 {
		h.FrameRate = 5 // 30 fps
	}
	if h.ChromaFormat == 0 {
		h.ChromaFormat = Chroma420
	}
	if h.ProfileLevel == 0 {
		h.ProfileLevel = MainProfileHighLevel
	}
	if h.VBVBufferSize == 0 {
		h.VBVBufferSize = 112
	}
}

// MBWidth returns the picture width in macroblocks.
func (h *SequenceHeader) MBWidth() int { return (h.Width + 15) / 16 }

// MBHeight returns the picture height in macroblocks (frame pictures).
func (h *SequenceHeader) MBHeight() int { return (h.Height + 15) / 16 }

// Write emits the sequence header followed by the sequence extension.
func (h *SequenceHeader) Write(w *bits.Writer) {
	h.Normalize()
	w.StartCode(SequenceHeaderCode)
	w.Put(uint32(h.Width&0xFFF), 12)
	w.Put(uint32(h.Height&0xFFF), 12)
	w.Put(uint32(h.AspectRatio), 4)
	w.Put(uint32(h.FrameRate), 4)
	w.Put(uint32(h.BitRate&0x3FFFF), 18)
	w.Put(1, 1) // marker
	w.Put(uint32(h.VBVBufferSize&0x3FF), 10)
	w.Put(0, 1) // constrained_parameters_flag
	if h.LoadIntraMatrix {
		w.Put(1, 1)
		writeMatrix(w, &h.IntraMatrix)
	} else {
		w.Put(0, 1)
	}
	if h.LoadNonIntraMatrix {
		w.Put(1, 1)
		writeMatrix(w, &h.NonIntraMatrix)
	} else {
		w.Put(0, 1)
	}

	// Sequence extension: its presence is what marks the stream as MPEG-2.
	w.StartCode(ExtensionStartCode)
	w.Put(SequenceExtensionID, 4)
	w.Put(uint32(h.ProfileLevel), 8)
	putFlag(w, h.Progressive)
	w.Put(uint32(h.ChromaFormat), 2)
	w.Put(uint32(h.Width>>12), 2)  // horizontal_size_extension
	w.Put(uint32(h.Height>>12), 2) // vertical_size_extension
	w.Put(uint32(h.BitRate>>18), 12)
	w.Put(1, 1) // marker
	w.Put(uint32(h.VBVBufferSize>>10), 8)
	putFlag(w, h.LowDelay)
	w.Put(0, 2) // frame_rate_extension_n
	w.Put(0, 5) // frame_rate_extension_d
}

// ParseSequenceHeader parses a sequence header; the reader must be
// positioned just after the sequence_header_code. It also parses the
// sequence extension if one follows immediately.
func ParseSequenceHeader(r *bits.Reader) (SequenceHeader, error) {
	var h SequenceHeader
	h.Width = int(r.Read(12))
	h.Height = int(r.Read(12))
	h.AspectRatio = int(r.Read(4))
	h.FrameRate = int(r.Read(4))
	h.BitRate = int(r.Read(18))
	if r.Read(1) != 1 {
		return h, fmt.Errorf("mpeg2: sequence header marker bit missing")
	}
	h.VBVBufferSize = int(r.Read(10))
	r.Skip(1) // constrained_parameters_flag
	h.LoadIntraMatrix = r.ReadBit()
	if h.LoadIntraMatrix {
		readMatrix(r, &h.IntraMatrix)
	} else {
		h.IntraMatrix = quant.DefaultIntraMatrix
	}
	h.LoadNonIntraMatrix = r.ReadBit()
	if h.LoadNonIntraMatrix {
		readMatrix(r, &h.NonIntraMatrix)
	} else {
		h.NonIntraMatrix = quant.DefaultNonIntraMatrix
	}
	if err := r.Err(); err != nil {
		return h, fmt.Errorf("mpeg2: sequence header: %w", err)
	}

	// Peek for the sequence extension.
	save := r.BitPos()
	if code, err := r.NextStartCode(); err == nil && code == ExtensionStartCode {
		r.Skip(32)
		if r.Peek(4) == SequenceExtensionID {
			r.Skip(4)
			h.ProfileLevel = uint8(r.Read(8))
			h.Progressive = r.ReadBit()
			h.ChromaFormat = int(r.Read(2))
			h.Width |= int(r.Read(2)) << 12
			h.Height |= int(r.Read(2)) << 12
			h.BitRate |= int(r.Read(12)) << 18
			r.Skip(1) // marker
			h.VBVBufferSize |= int(r.Read(8)) << 10
			h.LowDelay = r.ReadBit()
			r.Skip(7) // frame rate extensions
		} else {
			r.SeekBit(save)
		}
	} else {
		r.SeekBit(save)
	}
	if h.Width <= 0 || h.Height <= 0 {
		return h, fmt.Errorf("mpeg2: invalid picture size %dx%d", h.Width, h.Height)
	}
	if h.ChromaFormat != 0 && h.ChromaFormat != Chroma420 {
		return h, fmt.Errorf("mpeg2: unsupported chroma format %d", h.ChromaFormat)
	}
	return h, r.Err()
}

func writeMatrix(w *bits.Writer, m *[64]uint8) {
	// Matrices are transmitted in zigzag order.
	for pos := 0; pos < 64; pos++ {
		w.Put(uint32(m[zig(pos)]), 8)
	}
}

func readMatrix(r *bits.Reader, m *[64]uint8) {
	for pos := 0; pos < 64; pos++ {
		m[zig(pos)] = uint8(r.Read(8))
	}
}

// GOPHeader is the group_of_pictures header (§6.2.2.6).
type GOPHeader struct {
	TimeCode   uint32 // 25-bit SMPTE time code
	Closed     bool
	BrokenLink bool
}

// Write emits the GOP header.
func (g *GOPHeader) Write(w *bits.Writer) {
	w.StartCode(GroupStartCode)
	w.Put(g.TimeCode&0x1FFFFFF, 25)
	putFlag(w, g.Closed)
	putFlag(w, g.BrokenLink)
}

// ParseGOPHeader parses a GOP header; the reader must be positioned just
// after the group_start_code.
func ParseGOPHeader(r *bits.Reader) (GOPHeader, error) {
	var g GOPHeader
	g.TimeCode = r.Read(25)
	g.Closed = r.ReadBit()
	g.BrokenLink = r.ReadBit()
	return g, r.Err()
}

// PictureHeader carries the picture header (§6.2.3) and the picture coding
// extension (§6.2.3.1).
type PictureHeader struct {
	TemporalReference int
	Type              vlc.PictureCoding
	VBVDelay          int

	// Picture coding extension.
	FCode             [2][2]int // [s][t]: s 0=forward 1=backward, t 0=horizontal 1=vertical; 15 = unused
	IntraDCPrecision  int
	PictureStructure  int
	TopFieldFirst     bool
	FramePredFrameDCT bool
	ConcealmentMV     bool
	QScaleType        bool // non-linear quantiser scale
	IntraVLCFormat    bool // table one for intra blocks
	AlternateScan     bool
	RepeatFirstField  bool
	ProgressiveFrame  bool
}

// Write emits the picture header and picture coding extension.
func (p *PictureHeader) Write(w *bits.Writer) {
	w.StartCode(PictureStartCode)
	w.Put(uint32(p.TemporalReference&0x3FF), 10)
	w.Put(uint32(p.Type), 3)
	w.Put(uint32(p.VBVDelay&0xFFFF), 16)
	if p.Type == vlc.CodingP || p.Type == vlc.CodingB {
		w.Put(0, 1) // full_pel_forward_vector (MPEG-1 legacy, 0 in MPEG-2)
		w.Put(7, 3) // forward_f_code (unused in MPEG-2, must be 111)
	}
	if p.Type == vlc.CodingB {
		w.Put(0, 1)
		w.Put(7, 3)
	}
	w.Put(0, 1) // extra_bit_picture

	w.StartCode(ExtensionStartCode)
	w.Put(PictureCodingExtensionID, 4)
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			w.Put(uint32(p.FCode[s][t]&0xF), 4)
		}
	}
	w.Put(uint32(p.IntraDCPrecision), 2)
	w.Put(uint32(p.PictureStructure), 2)
	putFlag(w, p.TopFieldFirst)
	putFlag(w, p.FramePredFrameDCT)
	putFlag(w, p.ConcealmentMV)
	putFlag(w, p.QScaleType)
	putFlag(w, p.IntraVLCFormat)
	putFlag(w, p.AlternateScan)
	putFlag(w, p.RepeatFirstField)
	w.Put(0, 1) // chroma_420_type
	putFlag(w, p.ProgressiveFrame)
	w.Put(0, 1) // composite_display_flag
}

// ParsePictureHeader parses a picture header; the reader must be
// positioned just after the picture_start_code. It also parses the
// picture coding extension that must follow in MPEG-2.
func ParsePictureHeader(r *bits.Reader) (PictureHeader, error) {
	var p PictureHeader
	p.TemporalReference = int(r.Read(10))
	p.Type = vlc.PictureCoding(r.Read(3))
	if p.Type < vlc.CodingI || p.Type > vlc.CodingB {
		return p, fmt.Errorf("mpeg2: unsupported picture coding type %d", int(p.Type))
	}
	p.VBVDelay = int(r.Read(16))
	if p.Type == vlc.CodingP || p.Type == vlc.CodingB {
		r.Skip(4)
	}
	if p.Type == vlc.CodingB {
		r.Skip(4)
	}
	// extra_information_picture: skip (extra_bit_picture, extra byte)*.
	for r.ReadBit() {
		r.Skip(8)
	}
	if err := r.Err(); err != nil {
		return p, fmt.Errorf("mpeg2: picture header: %w", err)
	}

	code, err := r.NextStartCode()
	if err != nil || code != ExtensionStartCode {
		return p, fmt.Errorf("mpeg2: picture coding extension missing (next code %#x)", code)
	}
	r.Skip(32)
	if id := r.Read(4); id != PictureCodingExtensionID {
		return p, fmt.Errorf("mpeg2: expected picture coding extension, got id %d", id)
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			p.FCode[s][t] = int(r.Read(4))
		}
	}
	p.IntraDCPrecision = int(r.Read(2))
	p.PictureStructure = int(r.Read(2))
	p.TopFieldFirst = r.ReadBit()
	p.FramePredFrameDCT = r.ReadBit()
	p.ConcealmentMV = r.ReadBit()
	p.QScaleType = r.ReadBit()
	p.IntraVLCFormat = r.ReadBit()
	p.AlternateScan = r.ReadBit()
	p.RepeatFirstField = r.ReadBit()
	r.Skip(1) // chroma_420_type
	p.ProgressiveFrame = r.ReadBit()
	if r.ReadBit() { // composite_display_flag
		r.Skip(20)
	}
	if err := r.Err(); err != nil {
		return p, fmt.Errorf("mpeg2: picture coding extension: %w", err)
	}
	if p.PictureStructure != FramePicture {
		return p, fmt.Errorf("mpeg2: field pictures not supported (structure %d)", p.PictureStructure)
	}
	if p.ConcealmentMV {
		return p, fmt.Errorf("mpeg2: concealment motion vectors not supported")
	}
	return p, nil
}

func putFlag(w *bits.Writer, b bool) {
	if b {
		w.Put(1, 1)
	} else {
		w.Put(0, 1)
	}
}
