package mpeg2

import (
	"testing"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/quant"
	"mpeg2par/internal/vlc"
)

func TestFrameRateCode(t *testing.T) {
	if FrameRateCode(30) != 5 {
		t.Errorf("30fps code = %d, want 5", FrameRateCode(30))
	}
	if FrameRateCode(25) != 3 {
		t.Errorf("25fps code = %d, want 3", FrameRateCode(25))
	}
	if FrameRateCode(23.976) != 1 {
		t.Errorf("23.976fps code = %d, want 1", FrameRateCode(23.976))
	}
}

func TestMVRangeAndFCode(t *testing.T) {
	if MVRangeHalf(1) != 16 || MVRangeHalf(2) != 32 || MVRangeHalf(4) != 128 {
		t.Fatal("MVRangeHalf wrong")
	}
	if MVRangeHalf(0) != 16 {
		t.Fatal("MVRangeHalf should clamp f_code to 1")
	}
	for _, c := range []struct{ maxHalf, want int }{
		{0, 1}, {15, 1}, {16, 2}, {31, 2}, {32, 3}, {100, 4}, {127, 4}, {128, 5},
	} {
		if got := FCodeFor(c.maxHalf); got != c.want {
			t.Errorf("FCodeFor(%d) = %d, want %d", c.maxHalf, got, c.want)
		}
	}
}

func TestSequenceHeaderRoundTrip(t *testing.T) {
	h := SequenceHeader{
		Width:         704,
		Height:        480,
		BitRate:       5_000_000 / 400,
		FrameRate:     5,
		Progressive:   true,
		LowDelay:      false,
		VBVBufferSize: 112,
	}
	var w bits.Writer
	h.Write(&w)
	data := w.Bytes()

	r := bits.NewReader(data)
	code, err := r.ReadStartCode()
	if err != nil || code != SequenceHeaderCode {
		t.Fatalf("startcode %x err %v", code, err)
	}
	got, err := ParseSequenceHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 704 || got.Height != 480 || got.BitRate != h.BitRate {
		t.Fatalf("parsed %+v", got)
	}
	if !got.Progressive || got.ChromaFormat != Chroma420 {
		t.Fatalf("extension fields lost: %+v", got)
	}
	if got.IntraMatrix != quant.DefaultIntraMatrix {
		t.Fatal("default intra matrix not applied")
	}
	if got.MBWidth() != 44 || got.MBHeight() != 30 {
		t.Fatalf("MB geometry %dx%d", got.MBWidth(), got.MBHeight())
	}
}

func TestSequenceHeaderCustomMatrix(t *testing.T) {
	h := SequenceHeader{Width: 176, Height: 120, LoadIntraMatrix: true}
	for i := range h.IntraMatrix {
		h.IntraMatrix[i] = uint8(8 + i%32)
	}
	want := h.IntraMatrix
	var w bits.Writer
	h.Write(&w)
	r := bits.NewReader(w.Bytes())
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSequenceHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.IntraMatrix != want {
		t.Fatal("custom intra matrix mangled")
	}
	if got.NonIntraMatrix != quant.DefaultNonIntraMatrix {
		t.Fatal("non-intra default missing")
	}
}

func TestSequenceHeaderLargeDims(t *testing.T) {
	// 1408x960 exercises the 12-bit base fields; a >4095 width exercises
	// the extension bits.
	for _, dims := range [][2]int{{1408, 960}, {5000, 2000}} {
		h := SequenceHeader{Width: dims[0], Height: dims[1]}
		var w bits.Writer
		h.Write(&w)
		r := bits.NewReader(w.Bytes())
		if _, err := r.ReadStartCode(); err != nil {
			t.Fatal(err)
		}
		got, err := ParseSequenceHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Width != dims[0] || got.Height != dims[1] {
			t.Fatalf("%v parsed as %dx%d", dims, got.Width, got.Height)
		}
	}
}

func TestGOPHeaderRoundTrip(t *testing.T) {
	g := GOPHeader{TimeCode: 12345, Closed: true, BrokenLink: false}
	var w bits.Writer
	g.Write(&w)
	r := bits.NewReader(w.Bytes())
	code, err := r.ReadStartCode()
	if err != nil || code != GroupStartCode {
		t.Fatalf("startcode %x err %v", code, err)
	}
	got, err := ParseGOPHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("got %+v want %+v", got, g)
	}
}

func TestPictureHeaderRoundTrip(t *testing.T) {
	for _, typ := range []vlc.PictureCoding{vlc.CodingI, vlc.CodingP, vlc.CodingB} {
		p := PictureHeader{
			TemporalReference: 7,
			Type:              typ,
			VBVDelay:          0xFFFF,
			FCode:             [2][2]int{{3, 2}, {2, 2}},
			IntraDCPrecision:  1,
			PictureStructure:  FramePicture,
			FramePredFrameDCT: true,
			TopFieldFirst:     true,
			ProgressiveFrame:  true,
			QScaleType:        true,
			IntraVLCFormat:    typ == vlc.CodingI,
		}
		var w bits.Writer
		p.Write(&w)
		r := bits.NewReader(w.Bytes())
		code, err := r.ReadStartCode()
		if err != nil || code != PictureStartCode {
			t.Fatalf("startcode %x err %v", code, err)
		}
		got, err := ParsePictureHeader(r)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if got != p {
			t.Fatalf("%s: got %+v want %+v", typ, got, p)
		}
	}
}

func TestParsePictureHeaderRejectsBadType(t *testing.T) {
	var w bits.Writer
	w.Put(0, 10) // temporal ref
	w.Put(0, 3)  // type 0: invalid
	w.Put(0, 16)
	r := bits.NewReader(w.Bytes())
	if _, err := ParsePictureHeader(r); err == nil {
		t.Fatal("type 0 must be rejected")
	}
}

func TestParsePictureHeaderRequiresExtension(t *testing.T) {
	p := PictureHeader{Type: vlc.CodingI, PictureStructure: FramePicture, FramePredFrameDCT: true}
	var w bits.Writer
	// Write only the picture header part, then a sequence end code.
	w.StartCode(PictureStartCode)
	w.Put(uint32(p.TemporalReference), 10)
	w.Put(uint32(p.Type), 3)
	w.Put(0, 16)
	w.Put(0, 1)
	w.StartCode(SequenceEndCode)
	r := bits.NewReader(w.Bytes())
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePictureHeader(r); err == nil {
		t.Fatal("missing picture coding extension must be rejected")
	}
}

func TestParsePictureHeaderRejectsFieldPictures(t *testing.T) {
	p := PictureHeader{
		Type: vlc.CodingI, PictureStructure: TopField,
		FramePredFrameDCT: true, FCode: [2][2]int{{15, 15}, {15, 15}},
	}
	var w bits.Writer
	p.Write(&w)
	r := bits.NewReader(w.Bytes())
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePictureHeader(r); err == nil {
		t.Fatal("field picture must be rejected")
	}
}

func TestParseSequenceHeaderTruncated(t *testing.T) {
	h := SequenceHeader{Width: 352, Height: 240}
	var w bits.Writer
	h.Write(&w)
	data := w.Bytes()
	r := bits.NewReader(data[:6])
	if _, err := r.ReadStartCode(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSequenceHeader(r); err == nil {
		t.Fatal("truncated header must error")
	}
}
