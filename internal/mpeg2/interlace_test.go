package mpeg2

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/vlc"
)

func interlacedParams(typ vlc.PictureCoding) *PictureParams {
	p := testParams(typ)
	p.FramePredFrameDCT = false
	return p
}

func TestFieldMotionRoundTrip(t *testing.T) {
	p := interlacedParams(vlc.CodingP)
	mb := MB{
		Addr: 0, QScaleCode: 8,
		Type:        vlc.MBType{MotionForward: true, Pattern: true},
		FieldMotion: true,
		MVFwd:       motion.MV{X: 6, Y: -3},
		MVFwd2:      motion.MV{X: -2, Y: 5},
		FieldSelFwd: [2]bool{true, false},
		FieldDCT:    true,
	}
	mb.Blocks[0][9] = 4
	ds := encodeDecodeSlice(t, p, 0, 8, []MB{mb})
	got := ds.MBs[0]
	if !got.FieldMotion || !got.FieldDCT {
		t.Fatalf("field flags lost: %+v", got)
	}
	if got.MVFwd != mb.MVFwd || got.MVFwd2 != mb.MVFwd2 || got.FieldSelFwd != mb.FieldSelFwd {
		t.Fatalf("field vectors mangled: %+v", got)
	}
	if got.Blocks[0][9] != 4 {
		t.Fatal("coefficients lost")
	}
}

func TestFieldMotionPMVChaining(t *testing.T) {
	// Two consecutive field-coded macroblocks: the second's vectors are
	// coded differentially against doubled/halved PMVs; round-trip must
	// return the actual vectors.
	p := interlacedParams(vlc.CodingP)
	mk := func(addr int, v0, v1 motion.MV, sel [2]bool) MB {
		mb := MB{Addr: addr, QScaleCode: 8,
			Type:        vlc.MBType{MotionForward: true, Pattern: true},
			FieldMotion: true, MVFwd: v0, MVFwd2: v1, FieldSelFwd: sel}
		mb.Blocks[1][3] = 2
		return mb
	}
	mbs := []MB{
		mk(0, motion.MV{X: 3, Y: 7}, motion.MV{X: -3, Y: -7}, [2]bool{false, true}),
		mk(1, motion.MV{X: 5, Y: 1}, motion.MV{X: 5, Y: 1}, [2]bool{true, true}),
		// Frame-coded macroblock after field-coded ones.
		{Addr: 2, QScaleCode: 8, Type: vlc.MBType{MotionForward: true, Pattern: true},
			MVFwd: motion.MV{X: 2, Y: 2}},
	}
	mbs[2].Blocks[0][1] = 1
	ds := encodeDecodeSlice(t, p, 0, 8, mbs)
	for i := range mbs {
		got, want := ds.MBs[i], mbs[i]
		if got.MVFwd != want.MVFwd || got.MVFwd2 != want.MVFwd2 {
			t.Fatalf("MB %d vectors: got %v/%v want %v/%v", i, got.MVFwd, got.MVFwd2, want.MVFwd, want.MVFwd2)
		}
		if got.FieldMotion != want.FieldMotion || got.FieldSelFwd != want.FieldSelFwd {
			t.Fatalf("MB %d field info: got %+v", i, got)
		}
	}
}

func TestFieldToolsRejectedWhenProgressive(t *testing.T) {
	p := testParams(vlc.CodingP) // FramePredFrameDCT = true
	mb := MB{Addr: 0, QScaleCode: 8, Type: vlc.MBType{MotionForward: true, Pattern: true}, FieldMotion: true}
	mb.Blocks[0][1] = 1
	var w bits.Writer
	if err := EncodeSlice(&w, p, 0, 8, []MB{mb}); err == nil {
		t.Fatal("field motion with frame_pred_frame_dct=1 must fail")
	}
	mb.FieldMotion = false
	mb.FieldDCT = true
	if err := EncodeSlice(&w, p, 0, 8, []MB{mb}); err == nil {
		t.Fatal("field DCT with frame_pred_frame_dct=1 must fail")
	}
}

func TestDualPrimeRejected(t *testing.T) {
	// Hand-craft a slice whose macroblock announces frame_motion_type
	// '11' (dual prime): the decoder must reject it cleanly.
	p := interlacedParams(vlc.CodingP)
	var w bits.Writer
	w.Put(8, 5) // quantiser_scale_code
	w.Put(0, 1) // extra_bit_slice
	w.Put(1, 1) // macroblock_address_increment = 1
	w.Put(1, 1) // macroblock_type: P 'MC, coded' = '1'
	w.Put(3, 2) // frame_motion_type = '11' dual prime
	r := bits.NewReader(w.Bytes())
	if _, err := DecodeSlice(r, p, 0); err == nil {
		t.Fatal("dual prime must be rejected")
	}
}

// TestInterlacedSliceRoundTripQuick fuzzes interlaced macroblock streams.
func TestInterlacedSliceRoundTripQuick(t *testing.T) {
	f := func(seed int64, typRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := vlc.CodingP
		if typRaw%2 == 1 {
			typ = vlc.CodingB
		}
		p := interlacedParams(typ)
		row := rng.Intn(p.MBHeight)
		base := row * p.MBWidth
		var mbs []MB
		for col := 0; col < 8; col++ {
			mb := MB{Addr: base + col, QScaleCode: 10}
			switch rng.Intn(4) {
			case 0: // intra, possibly field DCT
				mb.Type = vlc.MBType{Intra: true}
				mb.FieldDCT = rng.Intn(2) == 0
				for b := 0; b < 6; b++ {
					mb.Blocks[b][0] = int32(rng.Intn(200) + 1)
				}
			default:
				mb.Type = vlc.MBType{MotionForward: typ == vlc.CodingP || rng.Intn(2) == 0}
				if typ == vlc.CodingB && (!mb.Type.MotionForward || rng.Intn(2) == 0) {
					mb.Type.MotionBackward = true
				}
				rv := func() motion.MV {
					return motion.MV{X: rng.Intn(64) - 32, Y: rng.Intn(64) - 32}
				}
				if rng.Intn(2) == 0 {
					mb.FieldMotion = true
					if mb.Type.MotionForward {
						mb.MVFwd, mb.MVFwd2 = rv(), rv()
						mb.FieldSelFwd = [2]bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
					}
					if mb.Type.MotionBackward {
						mb.MVBwd, mb.MVBwd2 = rv(), rv()
						mb.FieldSelBwd = [2]bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
					}
				} else {
					if mb.Type.MotionForward {
						mb.MVFwd = rv()
					}
					if mb.Type.MotionBackward {
						mb.MVBwd = rv()
					}
				}
				if rng.Intn(2) == 0 {
					mb.Type.Pattern = true
					mb.FieldDCT = rng.Intn(2) == 0
					mb.Blocks[rng.Intn(6)][rng.Intn(63)+1] = int32(rng.Intn(30) + 1)
				}
			}
			mbs = append(mbs, mb)
		}
		var w bits.Writer
		if err := EncodeSlice(&w, p, row, 10, mbs); err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		w.StartCode(SequenceEndCode)
		r := bits.NewReader(w.Bytes())
		if _, err := r.ReadStartCode(); err != nil {
			return false
		}
		ds, err := DecodeSlice(r, p, row)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if len(ds.MBs) != len(mbs) {
			return false
		}
		for i := range mbs {
			got, want := ds.MBs[i], mbs[i]
			expectSparsity(p, &want)
			got.Type.Quant, want.Type.Quant = false, false
			got.CBP, want.CBP = 0, 0
			// dct_type is only carried for intra/coded macroblocks.
			if !want.Type.Intra && !want.Type.Pattern {
				want.FieldDCT = false
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d MB %d:\n got %+v\nwant %+v", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
