package mpeg2

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/quant"
	"mpeg2par/internal/scan"
	"mpeg2par/internal/vlc"
)

func zig(pos int) int { return scan.Zigzag[pos] }

// MB is the structured form of one macroblock. The slice codec translates
// between MB values and bits, absorbing all predictive bitstream state
// (DC predictors, motion vector predictors, quantiser scale, skip rules):
// MVFwd/MVBwd are actual vectors, Blocks[i][0] of an intra block is the
// actual quantized DC value, and QScaleCode is the scale in effect at the
// macroblock.
type MB struct {
	Addr       int // macroblock address: row*mbWidth + column
	Type       vlc.MBType
	QScaleCode int
	MVFwd      motion.MV // half-pel, luma scale
	MVBwd      motion.MV
	CBP        int // derived from Blocks on encode when Type.Pattern
	Skipped    bool
	Blocks     [6][64]int32 // quantized coefficients, raster order

	// Interlaced coding fields (frame pictures with frame_pred_frame_dct
	// = 0). With FieldMotion set, MVFwd/MVBwd are the first (top-field)
	// vectors and MVFwd2/MVBwd2 the second (bottom-field) vectors, all
	// with *field-unit* vertical components; FieldSelFwd/FieldSelBwd give
	// each vector's motion_vertical_field_select.
	FieldMotion bool
	FieldDCT    bool // dct_type: field-organized DCT blocks
	MVFwd2      motion.MV
	MVBwd2      motion.MV
	FieldSelFwd [2]bool
	FieldSelBwd [2]bool

	// Sparsity metadata recorded by the VLC stage, valid only when
	// SparseValid is set (hand-built MBs leave it false and downstream
	// kernels rescan the block instead). NNZ[i] counts the nonzero
	// quantized coefficients in Blocks[i]; Last[i] is the scan position
	// of the final coefficient (0 when the block holds at most a DC
	// term). quant.InverseSparse uses NNZ to stop scanning once every
	// coefficient has been dequantized.
	NNZ         [6]uint8
	Last        [6]uint8
	SparseValid bool
}

// PictureParams bundles everything the slice layer needs about the
// enclosing picture.
type PictureParams struct {
	MBWidth, MBHeight int
	Type              vlc.PictureCoding
	FCode             [2][2]int
	IntraDCPrecision  int
	QScaleType        bool
	IntraVLCFormat    bool
	AlternateScan     bool
	// FramePredFrameDCT mirrors the picture coding extension flag: when
	// false (interlaced coding), macroblocks carry frame_motion_type and
	// dct_type fields and may use field prediction / field DCT.
	FramePredFrameDCT bool
}

func (p *PictureParams) validate() error {
	if p.MBWidth < 1 || p.MBHeight < 1 {
		return fmt.Errorf("mpeg2: bad picture geometry %dx%d MBs", p.MBWidth, p.MBHeight)
	}
	if p.Type < vlc.CodingI || p.Type > vlc.CodingB {
		return fmt.Errorf("mpeg2: bad picture type %d", int(p.Type))
	}
	return nil
}

// sliceState is the predictive state shared by encode and decode.
type sliceState struct {
	p      *PictureParams
	dcPred [3]int32
	// pmv[r][s][t]: r first/second vector, s 0=fwd 1=bwd, t 0=x 1=y.
	// Vertical components are stored at frame scale; field vectors halve
	// the prediction on use and double the result on update (§7.6.3.1).
	pmv    [2][2][2]int
	qscale int // current quantiser_scale_code
}

// init prepares a sliceState for a new slice. Used instead of a
// constructor so decode loops can keep the state on the stack (or embed
// it in per-worker scratch) rather than allocating one per slice.
func (s *sliceState) init(p *PictureParams, qscale int) {
	s.p = p
	s.qscale = qscale
	s.resetDC()
	s.resetPMV()
}

func (s *sliceState) resetDC() {
	reset := int32(1) << uint(s.p.IntraDCPrecision+7)
	s.dcPred[0], s.dcPred[1], s.dcPred[2] = reset, reset, reset
}

func (s *sliceState) resetPMV() {
	s.pmv = [2][2][2]int{}
}

// --- motion vector delta coding (§7.6.3) ---------------------------------

// encodeVector writes motion vector rv (first/second) for direction dir.
// With field set, the vertical component is in field units: its
// prediction is the halved PMV and the PMV update stores the doubled
// value.
func (s *sliceState) encodeVector(w *bits.Writer, rv, dir int, mv motion.MV, field bool) error {
	comps := [2]int{mv.X, mv.Y}
	for t := 0; t < 2; t++ {
		fcode := s.p.FCode[dir][t]
		if fcode < 1 || fcode > 9 {
			return fmt.Errorf("mpeg2: invalid f_code %d", fcode)
		}
		f := 1 << uint(fcode-1)
		high := 16*f - 1
		low := -16 * f
		rng := 32 * f
		if comps[t] > high || comps[t] < low {
			return fmt.Errorf("mpeg2: motion component %d outside f_code %d range", comps[t], fcode)
		}
		pred := s.pmv[rv][dir][t]
		if field && t == 1 {
			pred >>= 1
		}
		delta := comps[t] - pred
		if delta > high {
			delta -= rng
		}
		if delta < low {
			delta += rng
		}
		if delta == 0 {
			if err := vlc.EncodeMotionCode(w, 0); err != nil {
				return err
			}
		} else {
			mag := delta
			if mag < 0 {
				mag = -mag
			}
			code := (mag-1)/f + 1
			residual := (mag - 1) % f
			if delta < 0 {
				code = -code
			}
			if err := vlc.EncodeMotionCode(w, code); err != nil {
				return err
			}
			if f > 1 {
				w.Put(uint32(residual), uint(fcode-1))
			}
		}
		upd := comps[t]
		if field && t == 1 {
			upd = comps[t] * 2
		}
		s.pmv[rv][dir][t] = upd
	}
	return nil
}

// encodeMV writes a frame-prediction motion vector for direction dir
// (vector 0, duplicated into PMV slot 1 per §7.6.3.1).
func (s *sliceState) encodeMV(w *bits.Writer, dir int, mv motion.MV) error {
	if err := s.encodeVector(w, 0, dir, mv, false); err != nil {
		return err
	}
	s.pmv[1][dir] = s.pmv[0][dir]
	return nil
}

// decodeVector reads motion vector rv for direction dir (field semantics
// as in encodeVector).
func (s *sliceState) decodeVector(r *bits.Reader, rv, dir int, field bool) (motion.MV, error) {
	var comps [2]int
	for t := 0; t < 2; t++ {
		fcode := s.p.FCode[dir][t]
		if fcode < 1 || fcode > 9 {
			return motion.MV{}, fmt.Errorf("mpeg2: invalid f_code %d in stream", fcode)
		}
		f := 1 << uint(fcode-1)
		high := 16*f - 1
		low := -16 * f
		rng := 32 * f
		code, err := vlc.DecodeMotionCode(r)
		if err != nil {
			return motion.MV{}, err
		}
		delta := 0
		if code != 0 {
			mag := code
			if mag < 0 {
				mag = -mag
			}
			residual := 0
			if f > 1 {
				residual = int(r.Read(uint(fcode - 1)))
			}
			delta = (mag-1)*f + residual + 1
			if code < 0 {
				delta = -delta
			}
		}
		pred := s.pmv[rv][dir][t]
		if field && t == 1 {
			pred >>= 1
		}
		v := pred + delta
		if v > high {
			v -= rng
		}
		if v < low {
			v += rng
		}
		upd := v
		if field && t == 1 {
			upd = v * 2
		}
		s.pmv[rv][dir][t] = upd
		comps[t] = v
	}
	return motion.MV{X: comps[0], Y: comps[1]}, r.Err()
}

// decodeMV reads a frame-prediction motion vector for direction dir.
func (s *sliceState) decodeMV(r *bits.Reader, dir int) (motion.MV, error) {
	mv, err := s.decodeVector(r, 0, dir, false)
	if err != nil {
		return motion.MV{}, err
	}
	s.pmv[1][dir] = s.pmv[0][dir]
	return mv, nil
}

// --- block coefficient coding (§7.2) --------------------------------------

// encodeBlock writes one coded block. For intra blocks, blk[0] is the
// actual quantized DC; cc selects the DC predictor (0 luma, 1 Cb, 2 Cr).
func (s *sliceState) encodeBlock(w *bits.Writer, blk *[64]int32, intra bool, cc int, luma bool) error {
	tbl := scan.Table(s.p.AlternateScan)
	tableOne := intra && s.p.IntraVLCFormat
	start := 0
	if intra {
		diff := blk[0] - s.dcPred[cc]
		s.dcPred[cc] = blk[0]
		if err := vlc.EncodeDCDifferential(w, diff, luma); err != nil {
			return err
		}
		start = 1
	}
	run := 0
	first := !intra
	for pos := start; pos < 64; pos++ {
		v := blk[tbl[pos]]
		if v == 0 {
			run++
			continue
		}
		if err := vlc.EncodeCoef(w, tableOne, first, run, v); err != nil {
			return err
		}
		first = false
		run = 0
	}
	if !intra && first {
		return fmt.Errorf("mpeg2: non-intra coded block has no coefficients")
	}
	vlc.EncodeEOB(w, tableOne)
	return nil
}

// decodeBlock reads one coded block into blk (raster order, zero-filled).
// It returns the block's sparsity: nnz, the count of nonzero coefficients
// written (DC included when nonzero), and last, the scan position of the
// final coefficient (0 for a DC-only or empty block) — the contract
// quant.InverseSparse consumes.
func (s *sliceState) decodeBlock(r *bits.Reader, blk *[64]int32, intra bool, cc int, luma bool) (nnz, last int, err error) {
	for i := range blk {
		blk[i] = 0
	}
	tbl := scan.Table(s.p.AlternateScan)
	tableOne := intra && s.p.IntraVLCFormat
	pos := 0
	if intra {
		diff, err := vlc.DecodeDCDifferential(r, luma)
		if err != nil {
			return 0, 0, err
		}
		dc := s.dcPred[cc] + diff
		maxDC := int32(1)<<uint(s.p.IntraDCPrecision+8) - 1
		if dc < 0 || dc > maxDC {
			return 0, 0, fmt.Errorf("mpeg2: intra DC %d out of range", dc)
		}
		s.dcPred[cc] = dc
		blk[0] = dc
		if dc != 0 {
			nnz = 1
		}
		pos = 1
	}
	first := !intra
	for {
		run, level, eob, err := vlc.DecodeCoef(r, tableOne, first)
		if err != nil {
			return nnz, last, err
		}
		if eob {
			if !intra && first {
				return nnz, last, fmt.Errorf("mpeg2: empty non-intra block")
			}
			return nnz, last, nil
		}
		first = false
		pos += run
		if pos > 63 {
			return nnz, last, fmt.Errorf("mpeg2: coefficient run overflows block (pos %d)", pos)
		}
		blk[tbl[pos]] = level // levels are never zero
		nnz++
		last = pos
		pos++
	}
}

// QScale returns the quantiser scale value for a scale code under the
// picture's q_scale_type.
func (p *PictureParams) QScale(code int) int32 { return quant.Scale(code, p.QScaleType) }
