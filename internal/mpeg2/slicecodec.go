package mpeg2

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/vlc"
)

// cbpBit returns the coded_block_pattern mask bit for block i (0..5).
func cbpBit(i int) int { return 1 << uint(5-i) }

// deriveCBP computes the coded block pattern from non-zero blocks.
func deriveCBP(blocks *[6][64]int32) int {
	cbp := 0
	for i := 0; i < 6; i++ {
		for _, v := range blocks[i] {
			if v != 0 {
				cbp |= cbpBit(i)
				break
			}
		}
	}
	return cbp
}

// EncodeSlice writes one slice: the slice startcode for row, the slice
// header with qscaleCode, and the given macroblocks. mbs must be sorted by
// Addr, all within row, with the first and last not skipped. Macroblocks
// marked Skipped are encoded as address gaps; the caller must have built
// them to satisfy the skip semantics (validated here).
func EncodeSlice(w *bits.Writer, p *PictureParams, row, qscaleCode int, mbs []MB) error {
	return encodeSliceMBs(w, p, row, qscaleCode, mbs, false)
}

// EncodeSliceSpan writes one slice whose macroblocks may continue past
// row into the rows below (the general slice structure of §6.1.2.2):
// the startcode still names the first row, but addresses only have to
// stay inside the picture and increase. This is how tall slices — up to
// one slice per picture — are produced.
func EncodeSliceSpan(w *bits.Writer, p *PictureParams, row, qscaleCode int, mbs []MB) error {
	return encodeSliceMBs(w, p, row, qscaleCode, mbs, true)
}

func encodeSliceMBs(w *bits.Writer, p *PictureParams, row, qscaleCode int, mbs []MB, span bool) error {
	if err := p.validate(); err != nil {
		return err
	}
	if row < 0 || row >= p.MBHeight || row+1 > SliceStartMax {
		return fmt.Errorf("mpeg2: slice row %d not encodable", row)
	}
	if len(mbs) == 0 {
		return fmt.Errorf("mpeg2: empty slice at row %d", row)
	}
	if qscaleCode < 1 || qscaleCode > 31 {
		return fmt.Errorf("mpeg2: slice quantiser_scale_code %d out of range", qscaleCode)
	}
	if mbs[0].Skipped || mbs[len(mbs)-1].Skipped {
		return fmt.Errorf("mpeg2: first/last macroblock of a slice cannot be skipped")
	}

	w.StartCode(byte(row + 1))
	w.Put(uint32(qscaleCode), 5)
	w.Put(0, 1) // extra_bit_slice

	var st sliceState
	st.init(p, qscaleCode)
	prevAddr := row*p.MBWidth - 1
	prevDir := vlc.MBType{}
	for i := range mbs {
		mb := &mbs[i]
		if span {
			if mb.Addr/p.MBWidth < row || mb.Addr >= p.MBWidth*p.MBHeight {
				return fmt.Errorf("mpeg2: macroblock %d outside slice span starting at row %d", mb.Addr, row)
			}
		} else if mb.Addr/p.MBWidth != row {
			return fmt.Errorf("mpeg2: macroblock %d outside slice row %d", mb.Addr, row)
		}
		if mb.Addr <= prevAddr {
			return fmt.Errorf("mpeg2: macroblock addresses not increasing at %d", mb.Addr)
		}
		if mb.Skipped {
			if err := validateSkip(p, &st, prevDir, mb); err != nil {
				return err
			}
			// Decoder-visible state for a skipped macroblock.
			st.resetDC()
			if p.Type == vlc.CodingP {
				st.resetPMV()
			}
			continue
		}
		if err := vlc.EncodeMBAddrInc(w, mb.Addr-prevAddr); err != nil {
			return err
		}
		prevAddr = mb.Addr
		if err := encodeMB(w, p, &st, mb); err != nil {
			return fmt.Errorf("mpeg2: macroblock %d: %w", mb.Addr, err)
		}
		prevDir = vlc.MBType{MotionForward: mb.Type.MotionForward, MotionBackward: mb.Type.MotionBackward}
	}
	return nil
}

func validateSkip(p *PictureParams, st *sliceState, prevDir vlc.MBType, mb *MB) error {
	if mb.FieldMotion || mb.FieldDCT {
		return fmt.Errorf("mpeg2: skipped macroblocks always use frame prediction and carry no DCT")
	}
	switch p.Type {
	case vlc.CodingI:
		return fmt.Errorf("mpeg2: skipped macroblock in I picture")
	case vlc.CodingP:
		if mb.MVFwd != motion.Zero || mb.Type.Intra || mb.Type.Pattern {
			return fmt.Errorf("mpeg2: P-picture skip requires zero vector and no residual")
		}
	case vlc.CodingB:
		if mb.Type.Intra || mb.Type.Pattern {
			return fmt.Errorf("mpeg2: B-picture skip cannot carry residual")
		}
		if !prevDir.MotionForward && !prevDir.MotionBackward {
			return fmt.Errorf("mpeg2: B-picture skip after non-predicted macroblock")
		}
		if mb.Type.MotionForward != prevDir.MotionForward || mb.Type.MotionBackward != prevDir.MotionBackward {
			return fmt.Errorf("mpeg2: B-picture skip must repeat previous prediction mode")
		}
		if prevDir.MotionForward && mb.MVFwd != (motion.MV{X: st.pmv[0][0][0], Y: st.pmv[0][0][1]}) {
			return fmt.Errorf("mpeg2: B-picture skip must repeat forward vector")
		}
		if prevDir.MotionBackward && mb.MVBwd != (motion.MV{X: st.pmv[0][1][0], Y: st.pmv[0][1][1]}) {
			return fmt.Errorf("mpeg2: B-picture skip must repeat backward vector")
		}
	}
	return nil
}

func encodeMB(w *bits.Writer, p *PictureParams, st *sliceState, mb *MB) error {
	t := mb.Type
	cbp := 0
	if t.Pattern {
		cbp = deriveCBP(&mb.Blocks)
		if cbp == 0 {
			return fmt.Errorf("mpeg2: pattern flag set but no coded blocks")
		}
	}
	t.Quant = mb.QScaleCode != st.qscale
	if err := vlc.EncodeMBType(w, p.Type, t); err != nil {
		return err
	}
	// Macroblock modes (§6.3.17.1). With frame_pred_frame_dct=1 there is
	// no motion_type or dct_type field: frame prediction and frame DCT
	// are implied.
	hasMotion := t.MotionForward || t.MotionBackward
	if !p.FramePredFrameDCT {
		if hasMotion {
			if mb.FieldMotion {
				w.Put(0b01, 2) // frame_motion_type: field-based
			} else {
				w.Put(0b10, 2) // frame_motion_type: frame-based
			}
		}
		if t.Intra || t.Pattern {
			putFlag(w, mb.FieldDCT)
		}
	} else if mb.FieldMotion || mb.FieldDCT {
		return fmt.Errorf("mpeg2: field coding requires frame_pred_frame_dct=0")
	}
	if t.Quant {
		if mb.QScaleCode < 1 || mb.QScaleCode > 31 {
			return fmt.Errorf("mpeg2: quantiser_scale_code %d out of range", mb.QScaleCode)
		}
		w.Put(uint32(mb.QScaleCode), 5)
		st.qscale = mb.QScaleCode
	}
	writeVectors := func(dir int, mv1, mv2 motion.MV, sel [2]bool) error {
		if !mb.FieldMotion {
			return st.encodeMV(w, dir, mv1)
		}
		for rv, v := range [2]motion.MV{mv1, mv2} {
			putFlag(w, sel[rv])
			if err := st.encodeVector(w, rv, dir, v, true); err != nil {
				return err
			}
		}
		return nil
	}
	if t.MotionForward {
		if err := writeVectors(0, mb.MVFwd, mb.MVFwd2, mb.FieldSelFwd); err != nil {
			return err
		}
	}
	if t.MotionBackward {
		if err := writeVectors(1, mb.MVBwd, mb.MVBwd2, mb.FieldSelBwd); err != nil {
			return err
		}
	}
	if t.Pattern {
		if err := vlc.EncodeCBP(w, cbp); err != nil {
			return err
		}
	}

	// State side effects mirrored from the decoder.
	if !t.Intra {
		st.resetDC()
	}
	if t.Intra {
		st.resetPMV()
	} else if p.Type == vlc.CodingP && !t.MotionForward {
		if mb.MVFwd != motion.Zero {
			return fmt.Errorf("mpeg2: P macroblock without forward vector must carry zero vector")
		}
		st.resetPMV()
	}

	if t.Intra {
		for i := 0; i < 6; i++ {
			cc, luma := blockComponent(i)
			if err := st.encodeBlock(w, &mb.Blocks[i], true, cc, luma); err != nil {
				return err
			}
		}
	} else if t.Pattern {
		for i := 0; i < 6; i++ {
			if cbp&cbpBit(i) == 0 {
				continue
			}
			cc, luma := blockComponent(i)
			if err := st.encodeBlock(w, &mb.Blocks[i], false, cc, luma); err != nil {
				return err
			}
		}
	}
	return nil
}

// blockComponent maps block index to DC-predictor component and luma flag.
func blockComponent(i int) (cc int, luma bool) {
	switch {
	case i < 4:
		return 0, true
	case i == 4:
		return 1, false
	default:
		return 2, false
	}
}

// DecodedSlice is the result of decoding one slice.
type DecodedSlice struct {
	Row        int
	QScaleCode int  // slice header value
	MBs        []MB // includes synthesized entries for skipped macroblocks
}

// DecodeSlice parses one slice. The reader must be positioned just after
// the slice startcode; row is derived from that startcode (value-1).
// Skipped macroblocks are materialized in the result with their resolved
// prediction semantics so the reconstruction layer needs no bitstream
// state.
func DecodeSlice(r *bits.Reader, p *PictureParams, row int) (DecodedSlice, error) {
	return DecodeSliceInto(r, p, row, nil)
}

// DecodeSliceInto is DecodeSlice decoding into buf (length-reset first,
// capacity reused), so a decode worker can recycle one macroblock buffer
// across slices instead of allocating per slice. The returned
// DecodedSlice.MBs aliases buf's backing array. When a slot is recycled,
// its Blocks are NOT cleared: block contents are defined only for intra
// macroblocks and for blocks whose CBP bit is set (which decodeBlock
// zero-fills before writing) — exactly the blocks reconstruction reads.
func DecodeSliceInto(r *bits.Reader, p *PictureParams, row int, buf []MB) (DecodedSlice, error) {
	return DecodeSliceBounded(r, p, row, p.MBWidth*p.MBHeight-1, buf)
}

// DecodeSliceBounded is DecodeSliceInto with an explicit inclusive
// macroblock address bound. Parallel slice decoders derive the bound
// from the scanned stream geometry so concurrently decoded slices write
// disjoint address ranges even on damaged streams; maxAddr may extend
// past the startcode row for tall (multi-row) slices.
func DecodeSliceBounded(r *bits.Reader, p *PictureParams, row, maxAddr int, buf []MB) (DecodedSlice, error) {
	ds, _, err := DecodeSliceHead(r, p, row, maxAddr, 0, nil, buf)
	return ds, err
}

// DecodeSliceHead is the general slice decode entry point: the reader
// must be positioned just after the slice startcode whose value is
// row+1. Decoding stops cleanly when the bit position reaches endBit
// (0 decodes to the end of the slice). capture, when non-nil, is called
// at every coded-macroblock boundary after the first with the bit
// offset and predictive state there — the hook the split-index builder
// records row crossings through. The returned SegmentEnd carries the
// exit state, exit bit offset, and whether the slice's end was reached.
func DecodeSliceHead(r *bits.Reader, p *PictureParams, row, maxAddr int, endBit int64, capture func(bitOff int64, s SplitState), buf []MB) (DecodedSlice, SegmentEnd, error) {
	ds := DecodedSlice{Row: row, MBs: buf[:0]}
	if err := p.validate(); err != nil {
		return ds, SegmentEnd{}, err
	}
	if row < 0 || row >= p.MBHeight {
		return ds, SegmentEnd{}, fmt.Errorf("mpeg2: slice row %d outside picture", row)
	}
	if maxAddr < row*p.MBWidth || maxAddr > p.MBWidth*p.MBHeight-1 {
		return ds, SegmentEnd{}, fmt.Errorf("mpeg2: slice address bound %d not decodable for row %d", maxAddr, row)
	}
	qs := int(r.Read(5))
	if qs == 0 {
		return ds, SegmentEnd{}, fmt.Errorf("mpeg2: slice quantiser_scale_code 0 is forbidden")
	}
	ds.QScaleCode = qs
	for r.ReadBit() { // extra_information_slice
		r.Skip(8)
	}
	var st sliceState
	st.init(p, qs)
	run := sliceRun{maxAddr: maxAddr, endBit: endBit, capture: capture}
	mbs, end, err := decodeSliceRun(r, p, &st, row*p.MBWidth-1, true, vlc.MBType{}, ds.MBs, run)
	ds.MBs = mbs
	return ds, end, err
}

// sliceRun bounds one invocation of the shared macroblock decode loop.
type sliceRun struct {
	maxAddr int   // inclusive macroblock address bound
	endBit  int64 // >0: stop cleanly when the bit position reaches it
	maxMBs  int   // >0: stop after this many coded macroblocks (probing)
	capture func(bitOff int64, s SplitState)
}

// decodeSliceRun is the macroblock loop shared by whole-slice, bounded,
// and mid-slice segment decodes.
func decodeSliceRun(r *bits.Reader, p *PictureParams, st *sliceState, prevAddr int, firstMB bool, prevDir vlc.MBType, mbs []MB, run sliceRun) ([]MB, SegmentEnd, error) {
	coded := 0
	for {
		if run.endBit > 0 && r.BitPos() >= run.endBit {
			return mbs, SegmentEnd{State: snapshotSplit(st, prevAddr, prevDir), BitOff: r.BitPos()}, nil
		}
		if run.maxMBs > 0 && coded >= run.maxMBs {
			return mbs, SegmentEnd{State: snapshotSplit(st, prevAddr, prevDir), BitOff: r.BitPos()}, nil
		}
		if run.capture != nil && !firstMB {
			run.capture(r.BitPos(), snapshotSplit(st, prevAddr, prevDir))
		}
		inc, err := vlc.DecodeMBAddrInc(r)
		if err != nil {
			return mbs, SegmentEnd{}, err
		}
		if !firstMB && inc > 1 {
			// Materialize skipped macroblocks.
			for k := 1; k < inc; k++ {
				addr := prevAddr + k
				if addr > run.maxAddr {
					return mbs, SegmentEnd{}, fmt.Errorf("mpeg2: skipped macroblock address %d outside slice bounds", addr)
				}
				mbs = growMBs(mbs)
				if err := synthesizeSkip(p, st, prevDir, addr, &mbs[len(mbs)-1]); err != nil {
					return mbs, SegmentEnd{}, err
				}
			}
			st.resetDC()
			if p.Type == vlc.CodingP {
				st.resetPMV()
			}
		}
		addr := prevAddr + inc
		if addr > run.maxAddr {
			return mbs, SegmentEnd{}, fmt.Errorf("mpeg2: macroblock address %d outside slice bounds (max %d)", addr, run.maxAddr)
		}
		mbs = growMBs(mbs)
		mb := &mbs[len(mbs)-1]
		mb.Addr, mb.QScaleCode = addr, st.qscale
		if err := decodeMB(r, p, st, mb); err != nil {
			return mbs, SegmentEnd{}, fmt.Errorf("mpeg2: macroblock %d: %w", addr, err)
		}
		prevAddr = addr
		firstMB = false
		coded++
		prevDir = vlc.MBType{MotionForward: mb.Type.MotionForward, MotionBackward: mb.Type.MotionBackward}
		if err := r.Err(); err != nil {
			return mbs, SegmentEnd{}, err
		}
		// End of slice: 23 zero bits signal byte stuffing + the next
		// startcode prefix (§6.2.4).
		if r.Peek(23) == 0 || r.Remaining() == 0 {
			return mbs, SegmentEnd{State: snapshotSplit(st, prevAddr, prevDir), BitOff: r.BitPos(), AtEnd: true}, nil
		}
	}
}

// growMBs extends mbs by one element. Within capacity, the recycled
// slot's header fields are cleared but its Blocks are left stale (see
// DecodeSliceInto for why that is safe); past capacity, append provides
// a fully zeroed element.
func growMBs(mbs []MB) []MB {
	if len(mbs) < cap(mbs) {
		mbs = mbs[:len(mbs)+1]
		mbs[len(mbs)-1].resetHeader()
		return mbs
	}
	return append(mbs, MB{})
}

// resetHeader clears every MB field except Blocks.
func (mb *MB) resetHeader() {
	mb.Addr = 0
	mb.Type = vlc.MBType{}
	mb.QScaleCode = 0
	mb.MVFwd, mb.MVBwd = motion.MV{}, motion.MV{}
	mb.CBP = 0
	mb.Skipped = false
	mb.FieldMotion, mb.FieldDCT = false, false
	mb.MVFwd2, mb.MVBwd2 = motion.MV{}, motion.MV{}
	mb.FieldSelFwd, mb.FieldSelBwd = [2]bool{}, [2]bool{}
	mb.NNZ = [6]uint8{}
	mb.Last = [6]uint8{}
	mb.SparseValid = false
}

func synthesizeSkip(p *PictureParams, st *sliceState, prevDir vlc.MBType, addr int, mb *MB) error {
	mb.Addr, mb.QScaleCode, mb.Skipped = addr, st.qscale, true
	mb.SparseValid = true // no coded blocks, so the zero NNZ is exact
	switch p.Type {
	case vlc.CodingP:
		mb.Type = vlc.MBType{MotionForward: true}
		mb.MVFwd = motion.Zero
	case vlc.CodingB:
		if !prevDir.MotionForward && !prevDir.MotionBackward {
			return fmt.Errorf("mpeg2: B skip at %d follows unpredicted macroblock", addr)
		}
		// A skipped B macroblock predicts frame-based from the first
		// PMVs regardless of how the previous macroblock was coded.
		mb.Type = prevDir
		if prevDir.MotionForward {
			mb.MVFwd = motion.MV{X: st.pmv[0][0][0], Y: st.pmv[0][0][1]}
		}
		if prevDir.MotionBackward {
			mb.MVBwd = motion.MV{X: st.pmv[0][1][0], Y: st.pmv[0][1][1]}
		}
	default:
		return fmt.Errorf("mpeg2: skipped macroblock at %d in I picture", addr)
	}
	return nil
}

func decodeMB(r *bits.Reader, p *PictureParams, st *sliceState, mb *MB) error {
	t, err := vlc.DecodeMBType(r, p.Type)
	if err != nil {
		return err
	}
	mb.Type = t
	hasMotion := t.MotionForward || t.MotionBackward
	if !p.FramePredFrameDCT {
		if hasMotion {
			switch r.Read(2) {
			case 0b10:
				// frame-based
			case 0b01:
				mb.FieldMotion = true
			case 0b11:
				return fmt.Errorf("mpeg2: dual-prime prediction not supported")
			default:
				return fmt.Errorf("mpeg2: reserved frame_motion_type")
			}
		}
		if t.Intra || t.Pattern {
			mb.FieldDCT = r.ReadBit()
		}
	}
	if t.Quant {
		qs := int(r.Read(5))
		if qs == 0 {
			return fmt.Errorf("mpeg2: macroblock quantiser_scale_code 0")
		}
		st.qscale = qs
	}
	mb.QScaleCode = st.qscale
	readVectors := func(dir int) (mv1, mv2 motion.MV, sel [2]bool, err error) {
		if !mb.FieldMotion {
			mv1, err = st.decodeMV(r, dir)
			return mv1, mv2, sel, err
		}
		for rv := 0; rv < 2; rv++ {
			sel[rv] = r.ReadBit()
			var v motion.MV
			v, err = st.decodeVector(r, rv, dir, true)
			if err != nil {
				return mv1, mv2, sel, err
			}
			if rv == 0 {
				mv1 = v
			} else {
				mv2 = v
			}
		}
		return mv1, mv2, sel, nil
	}
	if t.MotionForward {
		mb.MVFwd, mb.MVFwd2, mb.FieldSelFwd, err = readVectors(0)
		if err != nil {
			return err
		}
	}
	if t.MotionBackward {
		mb.MVBwd, mb.MVBwd2, mb.FieldSelBwd, err = readVectors(1)
		if err != nil {
			return err
		}
	}
	cbp := 0
	if t.Pattern {
		cbp, err = vlc.DecodeCBP(r)
		if err != nil {
			return err
		}
		if cbp == 0 {
			return fmt.Errorf("mpeg2: coded_block_pattern 0 in 4:2:0")
		}
	}
	mb.CBP = cbp

	if !t.Intra {
		st.resetDC()
	}
	if t.Intra {
		st.resetPMV()
	} else if p.Type == vlc.CodingP && !t.MotionForward {
		st.resetPMV()
	}

	mb.SparseValid = true
	if t.Intra {
		for i := 0; i < 6; i++ {
			cc, luma := blockComponent(i)
			nnz, last, err := st.decodeBlock(r, &mb.Blocks[i], true, cc, luma)
			if err != nil {
				return err
			}
			mb.NNZ[i], mb.Last[i] = uint8(nnz), uint8(last)
		}
		mb.CBP = 0x3F
	} else if t.Pattern {
		for i := 0; i < 6; i++ {
			if cbp&cbpBit(i) == 0 {
				continue
			}
			cc, luma := blockComponent(i)
			nnz, last, err := st.decodeBlock(r, &mb.Blocks[i], false, cc, luma)
			if err != nil {
				return err
			}
			mb.NNZ[i], mb.Last[i] = uint8(nnz), uint8(last)
		}
	}
	return r.Err()
}
