package mpeg2

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/motion"
	"mpeg2par/internal/scan"
	"mpeg2par/internal/vlc"
)

// expectSparsity fills mb's sparsity metadata from its Blocks the way the
// decoder records it, serving as an independent oracle for round-trip
// comparisons: NNZ counts nonzero coefficients per coded block, Last is
// the scan position of the final VLC-coded coefficient (DC excluded for
// intra blocks).
func expectSparsity(p *PictureParams, mb *MB) {
	mb.NNZ, mb.Last = [6]uint8{}, [6]uint8{}
	mb.SparseValid = true
	if mb.Skipped {
		return
	}
	cbp := mb.CBP
	if mb.Type.Intra {
		cbp = 0x3F
	} else if mb.Type.Pattern {
		cbp = deriveCBP(&mb.Blocks)
	}
	tbl := scan.Table(p.AlternateScan)
	for i := 0; i < 6; i++ {
		if cbp&cbpBit(i) == 0 {
			continue
		}
		start := 0
		if mb.Type.Intra {
			if mb.Blocks[i][0] != 0 {
				mb.NNZ[i]++
			}
			start = 1
		}
		for pos := start; pos < 64; pos++ {
			if mb.Blocks[i][tbl[pos]] != 0 {
				mb.NNZ[i]++
				mb.Last[i] = uint8(pos)
			}
		}
	}
}

func testParams(typ vlc.PictureCoding) *PictureParams {
	return &PictureParams{
		MBWidth:           22,
		MBHeight:          15,
		Type:              typ,
		FCode:             [2][2]int{{3, 3}, {3, 3}},
		IntraDCPrecision:  0,
		FramePredFrameDCT: true,
	}
}

// encodeDecodeSlice runs a slice through the codec and returns the decoded
// result, failing the test on error.
func encodeDecodeSlice(t *testing.T, p *PictureParams, row, qs int, mbs []MB) DecodedSlice {
	t.Helper()
	var w bits.Writer
	if err := EncodeSlice(&w, p, row, qs, mbs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	w.StartCode(SequenceEndCode) // terminator so Peek(23)==0 triggers
	r := bits.NewReader(w.Bytes())
	code, err := r.ReadStartCode()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DecodeSlice(r, p, int(code)-1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return ds
}

func intraMB(addr, qs int, dc int32) MB {
	mb := MB{Addr: addr, QScaleCode: qs, Type: vlc.MBType{Intra: true}}
	for i := 0; i < 6; i++ {
		mb.Blocks[i][0] = dc + int32(i)
		mb.Blocks[i][1] = 3
		mb.Blocks[i][9] = -2
	}
	return mb
}

func TestSliceRoundTripIntra(t *testing.T) {
	p := testParams(vlc.CodingI)
	row := 3
	var mbs []MB
	for c := 0; c < p.MBWidth; c++ {
		mbs = append(mbs, intraMB(row*p.MBWidth+c, 10, int32(100+c)))
	}
	ds := encodeDecodeSlice(t, p, row, 10, mbs)
	if len(ds.MBs) != len(mbs) {
		t.Fatalf("decoded %d MBs, want %d", len(ds.MBs), len(mbs))
	}
	for i := range mbs {
		if ds.MBs[i].Addr != mbs[i].Addr {
			t.Fatalf("MB %d addr %d want %d", i, ds.MBs[i].Addr, mbs[i].Addr)
		}
		if ds.MBs[i].Blocks != mbs[i].Blocks {
			t.Fatalf("MB %d blocks differ", i)
		}
		if !ds.MBs[i].Type.Intra {
			t.Fatalf("MB %d lost intra flag", i)
		}
	}
}

func TestSliceRoundTripPWithMotionAndSkips(t *testing.T) {
	p := testParams(vlc.CodingP)
	row := 0
	mk := func(addr int, mv motion.MV, coded bool) MB {
		mb := MB{Addr: addr, QScaleCode: 8, Type: vlc.MBType{MotionForward: true}, MVFwd: mv}
		if coded {
			mb.Type.Pattern = true
			mb.Blocks[0][5] = 7
			mb.Blocks[4][0] = -3
		}
		return mb
	}
	mbs := []MB{
		mk(0, motion.MV{X: 4, Y: -6}, true),
		mk(1, motion.MV{X: 5, Y: -6}, false),
		{Addr: 2, QScaleCode: 8, Type: vlc.MBType{MotionForward: true}, Skipped: true}, // zero-vector skip
		{Addr: 3, QScaleCode: 8, Type: vlc.MBType{MotionForward: true}, Skipped: true},
		mk(4, motion.MV{X: -31, Y: 2}, true),
		intraMB(5, 8, 200),
		mk(6, motion.MV{X: 0, Y: 0}, true),
	}
	ds := encodeDecodeSlice(t, p, row, 8, mbs)
	if len(ds.MBs) != len(mbs) {
		t.Fatalf("decoded %d MBs, want %d", len(ds.MBs), len(mbs))
	}
	for i := range mbs {
		got, want := ds.MBs[i], mbs[i]
		if got.Addr != want.Addr || got.Skipped != want.Skipped {
			t.Fatalf("MB %d: got addr=%d skip=%v", i, got.Addr, got.Skipped)
		}
		if got.Type.MotionForward != want.Type.MotionForward || got.Type.Intra != want.Type.Intra {
			t.Fatalf("MB %d type %+v want %+v", i, got.Type, want.Type)
		}
		if got.MVFwd != want.MVFwd {
			t.Fatalf("MB %d mv %v want %v", i, got.MVFwd, want.MVFwd)
		}
		if got.Blocks != want.Blocks {
			t.Fatalf("MB %d blocks differ", i)
		}
	}
}

func TestSliceRoundTripBWithSkips(t *testing.T) {
	p := testParams(vlc.CodingB)
	row := 2
	base := row * p.MBWidth
	interp := vlc.MBType{MotionForward: true, MotionBackward: true}
	mbs := []MB{
		{Addr: base, QScaleCode: 12, Type: interp, MVFwd: motion.MV{X: 2, Y: 2}, MVBwd: motion.MV{X: -4, Y: 0}},
		// Skipped B macroblocks repeat the previous mode and vectors.
		{Addr: base + 1, QScaleCode: 12, Type: interp, MVFwd: motion.MV{X: 2, Y: 2}, MVBwd: motion.MV{X: -4, Y: 0}, Skipped: true},
		{Addr: base + 2, QScaleCode: 12, Type: interp, MVFwd: motion.MV{X: 2, Y: 2}, MVBwd: motion.MV{X: -4, Y: 0}, Skipped: true},
		{Addr: base + 3, QScaleCode: 12, Type: vlc.MBType{MotionBackward: true, Pattern: true}, MVBwd: motion.MV{X: -4, Y: 2}},
	}
	mbs[3].Blocks[2][17] = -9
	ds := encodeDecodeSlice(t, p, row, 12, mbs)
	if len(ds.MBs) != 4 {
		t.Fatalf("decoded %d MBs", len(ds.MBs))
	}
	for i := range mbs {
		got, want := ds.MBs[i], mbs[i]
		if got.Skipped != want.Skipped || got.MVFwd != want.MVFwd || got.MVBwd != want.MVBwd {
			t.Fatalf("MB %d: got %+v want %+v", i, got, want)
		}
		if got.Type != want.Type {
			t.Fatalf("MB %d type: got %+v want %+v", i, got.Type, want.Type)
		}
	}
}

func TestSliceQScaleChange(t *testing.T) {
	p := testParams(vlc.CodingI)
	mbs := []MB{intraMB(0, 10, 128), intraMB(1, 20, 129), intraMB(2, 20, 130)}
	ds := encodeDecodeSlice(t, p, 0, 10, mbs)
	if ds.MBs[0].QScaleCode != 10 || ds.MBs[1].QScaleCode != 20 || ds.MBs[2].QScaleCode != 20 {
		t.Fatalf("qscale sequence %d %d %d", ds.MBs[0].QScaleCode, ds.MBs[1].QScaleCode, ds.MBs[2].QScaleCode)
	}
}

func TestSliceColumnOffsetStart(t *testing.T) {
	// A slice whose first macroblock is not at column 0.
	p := testParams(vlc.CodingI)
	mbs := []MB{intraMB(p.MBWidth+5, 6, 90), intraMB(p.MBWidth+6, 6, 91)}
	ds := encodeDecodeSlice(t, p, 1, 6, mbs)
	if len(ds.MBs) != 2 || ds.MBs[0].Addr != p.MBWidth+5 {
		t.Fatalf("column offset lost: %+v", ds.MBs)
	}
}

func TestSliceEncodeErrors(t *testing.T) {
	p := testParams(vlc.CodingI)
	var w bits.Writer
	if err := EncodeSlice(&w, p, 0, 10, nil); err == nil {
		t.Fatal("empty slice must fail")
	}
	if err := EncodeSlice(&w, p, -1, 10, []MB{intraMB(0, 10, 1)}); err == nil {
		t.Fatal("negative row must fail")
	}
	if err := EncodeSlice(&w, p, 0, 0, []MB{intraMB(0, 10, 1)}); err == nil {
		t.Fatal("qscale 0 must fail")
	}
	// MB outside the row.
	if err := EncodeSlice(&w, p, 0, 10, []MB{intraMB(p.MBWidth, 10, 1)}); err == nil {
		t.Fatal("MB outside row must fail")
	}
	// Skipped first MB.
	sk := MB{Addr: 0, Skipped: true, Type: vlc.MBType{MotionForward: true}}
	if err := EncodeSlice(&w, testParams(vlc.CodingP), 0, 10, []MB{sk, intraMB(1, 10, 1)}); err == nil {
		t.Fatal("skipped first MB must fail")
	}
	// Skip in I picture.
	bad := []MB{intraMB(0, 10, 1), {Addr: 1, Skipped: true}, intraMB(2, 10, 1)}
	if err := EncodeSlice(&w, p, 0, 10, bad); err == nil {
		t.Fatal("skip in I picture must fail")
	}
	// P skip with non-zero vector.
	pp := testParams(vlc.CodingP)
	mbs := []MB{
		{Addr: 0, QScaleCode: 10, Type: vlc.MBType{MotionForward: true}, MVFwd: motion.MV{X: 2, Y: 0}},
		{Addr: 1, QScaleCode: 10, Type: vlc.MBType{MotionForward: true}, MVFwd: motion.MV{X: 2, Y: 0}, Skipped: true},
		{Addr: 2, QScaleCode: 10, Type: vlc.MBType{MotionForward: true}, MVFwd: motion.MV{X: 2, Y: 0}},
	}
	if err := EncodeSlice(&w, pp, 0, 10, mbs); err == nil {
		t.Fatal("P skip with non-zero vector must fail")
	}
	// Pattern flag without coefficients.
	pm := MB{Addr: 0, QScaleCode: 10, Type: vlc.MBType{MotionForward: true, Pattern: true}}
	if err := EncodeSlice(&w, pp, 0, 10, []MB{pm}); err == nil {
		t.Fatal("pattern without coefficients must fail")
	}
	// Motion vector outside f_code range.
	far := MB{Addr: 0, QScaleCode: 10, Type: vlc.MBType{MotionForward: true, Pattern: true}, MVFwd: motion.MV{X: 4000, Y: 0}}
	far.Blocks[0][1] = 1
	if err := EncodeSlice(&w, pp, 0, 10, []MB{far}); err == nil {
		t.Fatal("out-of-range vector must fail")
	}
}

func TestDecodeSliceErrors(t *testing.T) {
	p := testParams(vlc.CodingI)
	// quantiser_scale_code 0.
	var w bits.Writer
	w.Put(0, 5)
	w.Put(0, 1)
	if _, err := DecodeSlice(bits.NewReader(w.Bytes()), p, 0); err == nil {
		t.Fatal("qscale 0 must fail")
	}
	// Garbage macroblock data.
	w.Reset()
	w.Put(10, 5)
	w.Put(0, 1)
	w.Put(0xFFFFFFFF, 32)
	w.Put(0xFFFFFFFF, 32)
	if _, err := DecodeSlice(bits.NewReader(w.Bytes()), p, 0); err == nil {
		t.Fatal("garbage must fail")
	}
	// Slice row outside picture.
	if _, err := DecodeSlice(bits.NewReader([]byte{0x50, 0}), p, 99); err == nil {
		t.Fatal("row outside picture must fail")
	}
}

func TestDecodeSliceTruncatedNoHangNoPanic(t *testing.T) {
	// Encode a valid slice then truncate at every byte boundary: decode
	// must terminate (error or short result), never hang or panic.
	p := testParams(vlc.CodingI)
	var mbs []MB
	for c := 0; c < 8; c++ {
		mbs = append(mbs, intraMB(c, 9, int32(120+c)))
	}
	var w bits.Writer
	if err := EncodeSlice(&w, p, 0, 9, mbs); err != nil {
		t.Fatal(err)
	}
	data := w.Bytes()
	for cut := 1; cut < len(data); cut++ {
		r := bits.NewReader(data[:cut])
		if _, err := r.ReadStartCode(); err != nil {
			continue
		}
		_, _ = DecodeSlice(r, p, 0) // must return
	}
}

// TestSliceRoundTripQuick feeds randomized macroblock streams through the
// codec for every picture type.
func TestSliceRoundTripQuick(t *testing.T) {
	f := func(seed int64, typRaw uint8, qsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := vlc.PictureCoding(typRaw%3) + vlc.CodingI
		p := testParams(typ)
		qs := int(qsRaw%31) + 1
		row := rng.Intn(p.MBHeight)
		base := row * p.MBWidth

		var mbs []MB
		col := 0
		prev := MB{}
		hasPrev := false
		for col < p.MBWidth {
			mb := MB{Addr: base + col, QScaleCode: qs}
			r := rng.Intn(10)
			switch {
			case typ == vlc.CodingI || r < 3:
				mb.Type = vlc.MBType{Intra: true}
				for b := 0; b < 6; b++ {
					mb.Blocks[b][0] = int32(rng.Intn(255) + 1)
					for k := 0; k < rng.Intn(6); k++ {
						mb.Blocks[b][1+rng.Intn(63)] = int32(rng.Intn(100) - 50)
					}
				}
			case typ == vlc.CodingP:
				mb.Type = vlc.MBType{MotionForward: true}
				mb.MVFwd = motion.MV{X: rng.Intn(128) - 64, Y: rng.Intn(128) - 64}
				if rng.Intn(2) == 0 {
					mb.Type.Pattern = true
					mb.Blocks[rng.Intn(6)][rng.Intn(64)] = int32(rng.Intn(50) + 1)
				}
				// Occasionally a skippable macroblock (not first/last).
				if hasPrev && col < p.MBWidth-1 && rng.Intn(4) == 0 {
					mb.Type = vlc.MBType{MotionForward: true}
					mb.MVFwd = motion.Zero
					mb.Skipped = true
					mb.Blocks = [6][64]int32{}
				}
			default: // B
				dir := rng.Intn(3)
				mb.Type = vlc.MBType{
					MotionForward:  dir != 1,
					MotionBackward: dir != 0,
				}
				if mb.Type.MotionForward {
					mb.MVFwd = motion.MV{X: rng.Intn(128) - 64, Y: rng.Intn(128) - 64}
				}
				if mb.Type.MotionBackward {
					mb.MVBwd = motion.MV{X: rng.Intn(128) - 64, Y: rng.Intn(128) - 64}
				}
				if rng.Intn(2) == 0 {
					mb.Type.Pattern = true
					mb.Blocks[rng.Intn(6)][rng.Intn(64)] = int32(rng.Intn(50) + 1)
				}
				if hasPrev && col < p.MBWidth-1 && rng.Intn(4) == 0 &&
					(prev.Type.MotionForward || prev.Type.MotionBackward) && !prev.Type.Intra {
					mb.Type = vlc.MBType{MotionForward: prev.Type.MotionForward, MotionBackward: prev.Type.MotionBackward}
					mb.Type.Pattern = false
					mb.MVFwd, mb.MVBwd = prev.MVFwd, prev.MVBwd
					mb.Skipped = true
					mb.Blocks = [6][64]int32{}
				}
			}
			if !mb.Skipped {
				prev = mb
				hasPrev = true
			}
			mbs = append(mbs, mb)
			col++
		}
		// Ensure a non-intra "pattern" MB always has a coefficient.
		for i := range mbs {
			if mbs[i].Type.Pattern {
				any := false
				for b := range mbs[i].Blocks {
					for _, v := range mbs[i].Blocks[b] {
						if v != 0 {
							any = true
						}
					}
				}
				if !any {
					mbs[i].Blocks[0][1] = 5
				}
			}
		}

		var w bits.Writer
		if err := EncodeSlice(&w, p, row, qs, mbs); err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		w.StartCode(SequenceEndCode)
		r := bits.NewReader(w.Bytes())
		if _, err := r.ReadStartCode(); err != nil {
			return false
		}
		ds, err := DecodeSlice(r, p, row)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if len(ds.MBs) != len(mbs) {
			t.Logf("seed %d: %d MBs decoded, want %d", seed, len(ds.MBs), len(mbs))
			return false
		}
		for i := range mbs {
			want := mbs[i]
			got := ds.MBs[i]
			expectSparsity(p, &want)
			// Quant flag is derived; ignore in comparison.
			got.Type.Quant = false
			want.Type.Quant = false
			got.CBP = 0
			want.CBP = 0
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d MB %d:\n got %+v\nwant %+v", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSliceEncode(b *testing.B) {
	p := testParams(vlc.CodingI)
	var mbs []MB
	for c := 0; c < p.MBWidth; c++ {
		mbs = append(mbs, intraMB(c, 10, int32(100+c)))
	}
	var w bits.Writer
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := EncodeSlice(&w, p, 0, 10, mbs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceDecode(b *testing.B) {
	p := testParams(vlc.CodingI)
	var mbs []MB
	for c := 0; c < p.MBWidth; c++ {
		mbs = append(mbs, intraMB(c, 10, int32(100+c)))
	}
	var w bits.Writer
	if err := EncodeSlice(&w, p, 0, 10, mbs); err != nil {
		b.Fatal(err)
	}
	w.StartCode(SequenceEndCode)
	data := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bits.NewReader(data)
		if _, err := r.ReadStartCode(); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeSlice(r, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeSliceIntoReuse recycles one MB buffer across two different
// slices and checks the second decode against a fresh one: every header
// field must match exactly, and block contents must match wherever the
// contract defines them (intra or CBP-set blocks). Stale Blocks in
// non-coded slots are explicitly permitted.
func TestDecodeSliceIntoReuse(t *testing.T) {
	p := testParams(vlc.CodingI)
	encode := func(row int, mbs []MB) []byte {
		var w bits.Writer
		if err := EncodeSlice(&w, p, row, 10, mbs); err != nil {
			t.Fatalf("encode: %v", err)
		}
		w.StartCode(SequenceEndCode)
		return w.Bytes()
	}
	var longMBs, shortMBs []MB
	for c := 0; c < p.MBWidth; c++ {
		longMBs = append(longMBs, intraMB(c, 10, int32(200+c)))
	}
	for c := 0; c < 5; c++ {
		shortMBs = append(shortMBs, intraMB(p.MBWidth+c, 10, int32(50+c)))
	}
	long, short := encode(0, longMBs), encode(1, shortMBs)

	decodeAfterCode := func(data []byte, buf []MB) DecodedSlice {
		r := bits.NewReader(data)
		code, err := r.ReadStartCode()
		if err != nil {
			t.Fatal(err)
		}
		ds, err := DecodeSliceInto(r, p, int(code)-1, buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return ds
	}

	// Fill the buffer with the long slice, then recycle it for the short
	// one so every reused slot carries stale Blocks from the first pass.
	first := decodeAfterCode(long, nil)
	reused := decodeAfterCode(short, first.MBs)
	fresh := decodeAfterCode(short, nil)

	if len(reused.MBs) != len(fresh.MBs) {
		t.Fatalf("reused decode yielded %d MBs, fresh %d", len(reused.MBs), len(fresh.MBs))
	}
	for i := range fresh.MBs {
		got, want := reused.MBs[i], fresh.MBs[i]
		for b := 0; b < 6; b++ {
			if want.Type.Intra || want.CBP&cbpBit(b) != 0 {
				if got.Blocks[b] != want.Blocks[b] {
					t.Fatalf("MB %d coded block %d differs after reuse", i, b)
				}
			}
			// Non-coded slots are undefined: normalize before the
			// header comparison below.
			got.Blocks[b], want.Blocks[b] = [64]int32{}, [64]int32{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MB %d header differs after reuse:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
