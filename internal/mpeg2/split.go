package mpeg2

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/vlc"
)

// SplitState is the complete predictive state of the slice-layer VLD at
// a macroblock boundary inside a slice: everything a decoder needs to
// resume parsing mid-slice as if it had decoded every earlier macroblock
// itself. It is the predictor-state contract of the intra-slice split
// index (internal/vldsplit): macroblock parse *lengths* depend only on
// the picture parameters, but reconstructed *values* depend on this
// state, so a split point records it exactly.
type SplitState struct {
	// PrevAddr is the address of the last macroblock (coded or skipped)
	// before the boundary; the next address increment is relative to it.
	PrevAddr int
	// QScale is the quantiser_scale_code in effect.
	QScale int
	// DCPred holds the intra DC predictors (luma, Cb, Cr).
	DCPred [3]int32
	// PMV holds the motion vector predictors (§7.6.3), vertical
	// components at frame scale.
	PMV [2][2][2]int
	// PrevFwd/PrevBwd record the previous macroblock's prediction
	// directions — the state B-picture skip runs chain on.
	PrevFwd bool
	PrevBwd bool
}

// snapshotSplit captures the running slice state as a SplitState.
func snapshotSplit(st *sliceState, prevAddr int, prevDir vlc.MBType) SplitState {
	return SplitState{
		PrevAddr: prevAddr,
		QScale:   st.qscale,
		DCPred:   st.dcPred,
		PMV:      st.pmv,
		PrevFwd:  prevDir.MotionForward,
		PrevBwd:  prevDir.MotionBackward,
	}
}

// restore loads the split state into a running slice state, returning
// the loop variables the decode resumes with.
func (s *SplitState) restore(st *sliceState, p *PictureParams) (prevAddr int, prevDir vlc.MBType) {
	st.p = p
	st.qscale = s.QScale
	st.dcPred = s.DCPred
	st.pmv = s.PMV
	return s.PrevAddr, vlc.MBType{MotionForward: s.PrevFwd, MotionBackward: s.PrevBwd}
}

// SegmentEnd describes where and how a (partial) slice decode stopped.
type SegmentEnd struct {
	// State is the predictive state at the stop point — what the next
	// segment's recorded (or guessed) entry state must equal exactly for
	// a split decode to be valid.
	State SplitState
	// BitOff is the reader's absolute bit position at the stop point.
	BitOff int64
	// AtEnd reports that the slice's end (23-zero-bit next-startcode
	// sentinel or end of data) was reached, rather than the endBit limit.
	AtEnd bool
}

// DecodeSliceSegment resumes a slice mid-stream: the reader must be
// positioned at a macroblock boundary (a split point's bit offset) and
// entry must be the predictive state recorded or guessed for that
// boundary. Decoding stops cleanly once the bit position reaches endBit
// (0 decodes to the end of the slice); macroblock addresses above
// maxAddr are an error, which confines a segment decoded from a wrong
// guess to its own address range. The returned end state is compared
// against the next split point's entry state to verify the split.
func DecodeSliceSegment(r *bits.Reader, p *PictureParams, entry SplitState, maxAddr int, endBit int64, buf []MB) (DecodedSlice, SegmentEnd, error) {
	ds := DecodedSlice{MBs: buf[:0]}
	if err := p.validate(); err != nil {
		return ds, SegmentEnd{}, err
	}
	if entry.QScale < 1 || entry.QScale > 31 {
		return ds, SegmentEnd{}, fmt.Errorf("mpeg2: split entry quantiser_scale_code %d out of range", entry.QScale)
	}
	if entry.PrevAddr < 0 || entry.PrevAddr >= maxAddr {
		return ds, SegmentEnd{}, fmt.Errorf("mpeg2: split entry address %d outside segment bounds", entry.PrevAddr)
	}
	var st sliceState
	prevAddr, prevDir := entry.restore(&st, p)
	ds.Row = (prevAddr + 1) / p.MBWidth
	ds.QScaleCode = entry.QScale
	mbs, end, err := decodeSliceRun(r, p, &st, prevAddr, false, prevDir, ds.MBs, sliceRun{maxAddr: maxAddr, endBit: endBit})
	ds.MBs = mbs
	return ds, end, err
}

// ProbeSliceSegment trial-parses up to maxMBs macroblocks from the
// current reader position under the given entry state, reporting only
// whether the bits parse cleanly — the speculative split's candidate
// filter. buf is recycled scratch; the parsed macroblocks are discarded.
func ProbeSliceSegment(r *bits.Reader, p *PictureParams, entry SplitState, maxAddr, maxMBs int, buf []MB) ([]MB, error) {
	if entry.QScale < 1 || entry.QScale > 31 || entry.PrevAddr < 0 || entry.PrevAddr >= maxAddr {
		return buf, fmt.Errorf("mpeg2: bad probe entry state")
	}
	var st sliceState
	prevAddr, prevDir := entry.restore(&st, p)
	mbs, _, err := decodeSliceRun(r, p, &st, prevAddr, false, prevDir, buf[:0], sliceRun{maxAddr: maxAddr, maxMBs: maxMBs})
	return mbs, err
}
