package obs_test

import (
	"bytes"
	"context"
	"testing"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/stream"
)

// End-to-end: tracing must observe without perturbing. Every mode, batch
// and streaming, decodes bit-identically with a tracer attached, and the
// timeline it produces is non-trivial and exports to a valid trace file.

func testStream(t testing.TB) []byte {
	t.Helper()
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 96, Height: 64, Pictures: 12, GOPSize: 4,
		BitRate: 2_000_000, FrameRate: 30,
	}, frame.NewSynth(96, 64))
	if err != nil {
		t.Fatal(err)
	}
	return res.Data
}

func collectFrames(frames *[]*frame.Frame) func(*frame.Frame) {
	return func(f *frame.Frame) { *frames = append(*frames, f.Clone()) }
}

func TestTracedDecodeBitExact(t *testing.T) {
	data := testStream(t)

	var want []*frame.Frame
	if _, err := core.Decode(data, core.Options{
		Mode: core.ModeSequential, Workers: 1, Sink: collectFrames(&want),
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline decoded no frames")
	}

	modes := []core.Mode{
		core.ModeSequential, core.ModeGOP,
		core.ModeSliceSimple, core.ModeSliceImproved,
	}
	check := func(name string, got []*frame.Frame, tl *obs.Timeline, streaming bool) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d frames, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: frame %d differs from untraced sequential decode", name, i)
			}
		}
		if tl.Dropped != 0 {
			t.Fatalf("%s: dropped %d events on a small stream", name, tl.Dropped)
		}
		counts := map[obs.Kind]int{}
		for _, e := range tl.Events {
			counts[e.Kind]++
		}
		if counts[obs.KindTask] == 0 {
			t.Fatalf("%s: no task events recorded", name)
		}
		if counts[obs.KindDisplay] != len(want) {
			t.Fatalf("%s: %d display events, want %d", name, counts[obs.KindDisplay], len(want))
		}
		if counts[obs.KindScan] == 0 {
			t.Fatalf("%s: no scan events recorded", name)
		}
		if streaming && counts[obs.KindFeed] == 0 {
			t.Fatalf("%s: streaming decode recorded no feed events", name)
		}
		var buf bytes.Buffer
		if err := tl.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: export: %v", name, err)
		}
		if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
			t.Fatalf("%s: exported trace invalid: %v", name, err)
		}
		sum := tl.Summary()
		if sum.Displayed != len(want) {
			t.Fatalf("%s: summary displayed %d, want %d", name, sum.Displayed, len(want))
		}
	}

	for _, mode := range modes {
		// Batch path.
		var got []*frame.Frame
		rec := obs.New(0)
		st, err := core.Decode(data, core.Options{
			Mode: mode, Workers: 3, Sink: collectFrames(&got), Obs: rec,
		})
		if err != nil {
			t.Fatalf("batch %v: %v", mode, err)
		}
		tl := rec.Snapshot()
		if tl.Mode != mode.String() || tl.Workers != st.Workers {
			t.Fatalf("batch %v: timeline meta %q/%d, stats %q/%d",
				mode, tl.Mode, tl.Workers, mode.String(), st.Workers)
		}
		check("batch "+mode.String(), got, tl, false)

		// Streaming pipeline.
		got = nil
		rec = obs.New(0)
		if _, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
			Options: core.Options{
				Mode: mode, Workers: 3, Sink: collectFrames(&got), Obs: rec,
			},
			ChunkSize: 777,
		}); err != nil {
			t.Fatalf("streaming %v: %v", mode, err)
		}
		check("streaming "+mode.String(), got, rec.Snapshot(), true)
	}
}

// TestTracedResilientDecode: the tracer also covers the resilient plan
// executors (batch, all grains), without changing their output.
func TestTracedResilientDecode(t *testing.T) {
	data := testStream(t)
	var want []*frame.Frame
	if _, err := core.Decode(data, core.Options{
		Mode: core.ModeSequential, Workers: 1,
		Resilience: core.ConcealSlice, Sink: collectFrames(&want),
	}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved} {
		var got []*frame.Frame
		rec := obs.New(0)
		if _, err := core.Decode(data, core.Options{
			Mode: mode, Workers: 3,
			Resilience: core.ConcealSlice, Sink: collectFrames(&got), Obs: rec,
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: decoded %d frames, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%v: frame %d differs from traced-free sequential", mode, i)
			}
		}
		tl := rec.Snapshot()
		hasTask := false
		for _, e := range tl.Events {
			if e.Kind == obs.KindTask {
				hasTask = true
				break
			}
		}
		if !hasTask {
			t.Fatalf("%v: resilient decode recorded no task events", mode)
		}
	}
}

// BenchmarkDecodeTracer measures the tracer's overhead on the decode
// hot path: "off" (nil tracer, the default) vs "on". The disabled cost
// must be a pointer test per hook — the acceptance bound is <2%.
func BenchmarkDecodeTracer(b *testing.B) {
	data := testStream(b)
	for _, bc := range []struct {
		name string
		mk   func() *obs.Tracer
	}{
		{"off", func() *obs.Tracer { return nil }},
		{"on", func() *obs.Tracer { return obs.New(0) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decode(data, core.Options{
					Mode: core.ModeSliceImproved, Workers: 2, Obs: bc.mk(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
