package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the Timeline serialized in the JSON object
// format understood by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Spans become complete ("X") events, zero-duration deliveries become
// instants ("i"), and each lane gets a named thread row. Timestamps are
// microseconds, the format's unit.

// chromeEvent is one trace-event record. The field set is the common
// subset Perfetto and chrome://tracing both accept.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Thread ids of the non-worker lanes in the export (workers use their
// ids directly; large values keep scan/display sorted below them, and
// per-stream service lanes sort below those).
const (
	tidScan       = 1000
	tidDisplay    = 1001
	tidStreamBase = 2000
)

func laneTID(lane int) int {
	if id, ok := StreamOf(lane); ok {
		return tidStreamBase + id
	}
	switch lane {
	case LaneScan:
		return tidScan
	case LaneDisplay:
		return tidDisplay
	default:
		return lane
	}
}

func laneName(lane int) string {
	if id, ok := StreamOf(lane); ok {
		return fmt.Sprintf("stream %d", id)
	}
	switch lane {
	case LaneScan:
		return "scan"
	case LaneDisplay:
		return "display"
	default:
		return fmt.Sprintf("worker %d", lane)
	}
}

// WriteChromeTrace writes the timeline as Chrome trace-event JSON. Load
// the output in Perfetto (ui.perfetto.dev, "Open trace file") or
// chrome://tracing to see the per-worker timeline the paper's Figure 5
// summarizes.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{DisplayTimeUnit: "ms"}

	lanes := map[int]bool{}
	for _, e := range tl.Events {
		lanes[e.Lane] = true
	}
	// Named, sort-ordered thread rows for every lane.
	for lane := range lanes {
		tid := laneTID(lane)
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", TID: tid,
				Args: map[string]any{"name": laneName(lane)}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", TID: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "mpeg2par " + tl.Mode},
	})

	spans := 0
	for _, e := range tl.Events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.String(),
			TID:  laneTID(e.Lane),
			TS:   float64(e.Start) / 1e3,
			Args: map[string]any{},
		}
		if e.GOP >= 0 {
			ce.Args["gop"] = e.GOP
		}
		if e.Pic >= 0 {
			ce.Args["pic"] = e.Pic
		}
		if e.Slice >= 0 {
			ce.Args["slice"] = e.Slice
		}
		if e.Kind == KindDisplay && e.Dur == 0 {
			ce.Ph, ce.S = "i", "t"
		} else {
			d := float64(e.Dur) / 1e3
			ce.Ph, ce.Dur = "X", &d
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
		spans++
	}
	// Self-consistency record: validators check the span count against
	// what the file actually carries ("events balanced").
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "mpeg2par_counts", Ph: "M",
		Args: map[string]any{"spans": spans, "dropped": tl.Dropped},
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ValidateChromeTrace checks an exported trace document: well-formed
// JSON in the trace-event object format, every span with a non-negative
// timestamp and duration, timestamps monotonically non-decreasing in
// file order (the exporter emits them sorted), a named thread row for
// every lane that has events, and the span count balanced against the
// embedded mpeg2par_counts record.
func ValidateChromeTrace(data []byte) error {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	named := map[int]bool{}
	spanTIDs := map[int]int{}
	spans := 0
	declared := -1
	lastTS := -1.0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.TID] = true
			}
			if e.Name == "mpeg2par_counts" {
				if v, ok := e.Args["spans"].(float64); ok {
					declared = int(v)
				}
			}
		case "X", "i":
			if e.TS < 0 {
				return fmt.Errorf("obs: event %d (%s): negative timestamp %v", i, e.Name, e.TS)
			}
			if e.TS < lastTS {
				return fmt.Errorf("obs: event %d (%s): timestamp %v before predecessor %v", i, e.Name, e.TS, lastTS)
			}
			lastTS = e.TS
			if e.Ph == "X" {
				if e.Dur == nil || *e.Dur < 0 {
					return fmt.Errorf("obs: event %d (%s): complete event without non-negative dur", i, e.Name)
				}
			}
			spans++
			spanTIDs[e.TID]++
		default:
			return fmt.Errorf("obs: event %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	if declared < 0 {
		return fmt.Errorf("obs: trace lacks the mpeg2par_counts record")
	}
	if spans != declared {
		return fmt.Errorf("obs: unbalanced trace: %d spans in file, %d declared", spans, declared)
	}
	for tid, n := range spanTIDs {
		if !named[tid] {
			return fmt.Errorf("obs: %d events on unnamed thread %d", n, tid)
		}
	}
	return nil
}
