package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// Do runs fn on the current goroutine under pprof labels identifying a
// decode worker, so CPU profiles (`go tool pprof -tagfocus`) attribute
// samples per worker and per scheduling mode. Labels cost one map setup
// per goroutine launch — nothing per task — so every worker path applies
// them unconditionally.
func Do(mode string, worker int, fn func()) {
	pprof.Do(context.Background(),
		pprof.Labels("mpeg2par_mode", mode, "mpeg2par_worker", strconv.Itoa(worker)),
		func(context.Context) { fn() })
}
