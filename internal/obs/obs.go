// Package obs is the decoder's structured event tracer: the
// observability layer that makes the paper's evaluation — where time
// goes, per processor, across scheduling modes — measurable from a live
// run instead of the deterministic simulator.
//
// Every process of a decode (workers, scan, display) records completed
// events into its own fixed-capacity ring buffer: task begin/end spans,
// queue waits, barrier waits, scan spans, feed (backpressure) spans, and
// display deliveries, each stamped with worker id and GOP/picture/slice
// coordinates. Recording is lock-per-lane and allocation-free in the
// steady state; a nil *Tracer disables every hook, so the decode hot
// paths pay only a pointer test when observability is off.
//
// A Snapshot merges the lanes into a Timeline, which exports to the
// Chrome trace-event JSON format (viewable in Perfetto or
// chrome://tracing) and derives the paper's Figures 5–7 style reports:
// per-worker utilization, barrier-wait histograms, load-imbalance
// factor, and the synchronization-overhead fraction.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Kind classifies one recorded event.
type Kind uint8

// The event vocabulary. Task/Wait/Barrier events live on worker lanes;
// Scan and Feed on the scan lane; Display on the display lane.
const (
	// KindTask is one completed decode task: a GOP, a picture, or a
	// slice/row-group, depending on the scheduling mode.
	KindTask Kind = iota
	// KindWait is time a worker spent blocked on an empty task queue
	// (starvation: nothing was ready to decode).
	KindWait
	// KindBarrier is time a worker spent blocked on a picture or
	// reference barrier (a task existed but its dependencies were not
	// complete) — the synchronization cost the paper's improved slice
	// variant exists to reduce.
	KindBarrier
	// KindFeed is the scan process blocking to hand a unit to the
	// worker pool: the streaming pipeline's backpressure span.
	KindFeed
	// KindScan is a span of the scan process indexing stream bytes.
	KindScan
	// KindDisplay is the display process delivering one frame, in
	// display order, to the sink.
	KindDisplay

	// Multi-stream service events (internal/server). They live on
	// per-stream lanes (StreamLane) so the timeline shows every stream's
	// admission, shedding, and degradation history alongside the shared
	// worker pool's task lanes.

	// KindAdmit is a stream's admission: the span covers the time it
	// waited in the admission queue (zero for an immediate admit). GOP
	// carries the stream's priority class.
	KindAdmit
	// KindReject is an admission rejection (queue full, capacity
	// exceeded, or the degradation ladder's final rung).
	KindReject
	// KindShed is one picture sacrificed by the degradation ladder:
	// substituted instead of decoded. Pic is the display index; Slice
	// carries the shed level that claimed it (ShedLevel).
	KindShed
	// KindDegrade is a change of a stream's degradation rung; Slice
	// carries the new rung.
	KindDegrade
	// KindPause is a span a stream spent paused by the overload ladder
	// (lowest-priority streams park under bounded backoff).
	KindPause
	// KindResume is a paused stream re-admitted to scheduling.
	KindResume

	// Intra-slice split-decode events (internal/core split path). They
	// live on worker lanes like KindTask.

	// KindSegment is one completed row-segment task of a split slice —
	// the intra-slice parallel grain. Pic is the display index; Slice is
	// the task index within the picture.
	KindSegment
	// KindVerify is a split slice's join verdict: Slice carries 1 for a
	// verify hit (parallel result adopted) and 0 for a miss (sequential
	// fallback).
	KindVerify

	// KindSlack is a deadline-aware scheduling decision at feed time,
	// on the stream's lane. Pic carries the predicted slack in
	// microseconds (signed — durations clamp negatives, coordinates
	// don't); Slice carries the action taken: 0 none, 1 shed B, 2 shed
	// refs, 3 split-assist candidate. GOP is the unit's group index.
	KindSlack
)

func (k Kind) String() string {
	switch k {
	case KindTask:
		return "task"
	case KindWait:
		return "queue-wait"
	case KindBarrier:
		return "barrier-wait"
	case KindFeed:
		return "feed"
	case KindScan:
		return "scan"
	case KindDisplay:
		return "display"
	case KindAdmit:
		return "admit"
	case KindReject:
		return "reject"
	case KindShed:
		return "shed"
	case KindDegrade:
		return "degrade"
	case KindPause:
		return "pause"
	case KindResume:
		return "resume"
	case KindSegment:
		return "segment"
	case KindVerify:
		return "verify"
	case KindSlack:
		return "slack"
	}
	return "unknown"
}

// Lane ids of the non-worker processes. Worker lanes are the worker
// ids themselves (>= 0); per-stream service lanes occupy the ids below
// LaneDisplay (see StreamLane).
const (
	LaneScan    = -1
	LaneDisplay = -2

	// laneStreamBase is the first per-stream lane; stream id n maps to
	// laneStreamBase - n.
	laneStreamBase = -3
)

// StreamLane returns the lane id of service stream id (>= 0): each
// stream of a multi-stream decode service records its admission, shed,
// degradation, pause, and display events on its own lane.
func StreamLane(id int) int { return laneStreamBase - id }

// StreamOf reports whether lane is a per-stream service lane, and which
// stream it belongs to.
func StreamOf(lane int) (int, bool) {
	if lane <= laneStreamBase {
		return laneStreamBase - lane, true
	}
	return 0, false
}

// Event is one completed, timestamped span of decoder activity.
// Coordinates that do not apply to the event carry -1 (a slice task of
// the legacy fine-grained path, for example, has no GOP coordinate).
type Event struct {
	Kind Kind `json:"kind"`
	// Lane is the worker id, or LaneScan / LaneDisplay.
	Lane int `json:"lane"`
	// Start is nanoseconds since the tracer was created.
	Start int64 `json:"start_ns"`
	// Dur is the span length in nanoseconds (0 for instants).
	Dur int64 `json:"dur_ns"`
	// GOP, Pic, Slice locate the work: group index, picture display
	// index, and slice row / task-group index; -1 where not applicable.
	GOP   int `json:"gop"`
	Pic   int `json:"pic"`
	Slice int `json:"slice"`
}

// End returns the span's end, nanoseconds since the tracer was created.
func (e Event) End() int64 { return e.Start + e.Dur }

// DefaultLaneCap is the per-lane ring capacity when New is given zero.
const DefaultLaneCap = 1 << 13

// ring is one lane's fixed-capacity event log. The oldest events are
// overwritten once the lane wraps; dropped counts them.
type ring struct {
	mu      sync.Mutex
	ev      []Event
	next    int
	full    bool
	dropped int64
}

func (r *ring) add(e Event, sink func(Event)) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.ev[r.next] = e
	r.next++
	if r.next == len(r.ev) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// events returns the lane's events oldest-first, plus the drop count.
func (r *ring) events() ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.ev[:r.next]...), r.dropped
	}
	out := make([]Event, 0, len(r.ev))
	out = append(out, r.ev[r.next:]...)
	out = append(out, r.ev[:r.next]...)
	return out, r.dropped
}

// Tracer collects events from a decode. One tracer observes one decode
// at a time (its meta records the mode and worker count of the last
// decode it was attached to); Snapshot may be called after the decode
// returns, or concurrently for a live partial view.
//
// All methods are safe on a nil receiver and discard — the decode paths
// call them unconditionally, and a nil tracer is the disabled state.
type Tracer struct {
	start   time.Time
	laneCap int

	mu      sync.RWMutex
	lanes   map[int]*ring
	sink    func(Event)
	mode    string
	workers int
}

// New returns a tracer whose per-lane rings hold laneCap events each
// (0 selects DefaultLaneCap). The tracer's clock starts now: event
// timestamps are nanoseconds since this call.
func New(laneCap int) *Tracer {
	if laneCap <= 0 {
		laneCap = DefaultLaneCap
	}
	return &Tracer{start: time.Now(), laneCap: laneCap, lanes: make(map[int]*ring)}
}

// SetSink forwards every subsequently recorded event to fn, in addition
// to the ring buffers. fn is called from the recording goroutine and
// must be safe for concurrent use; keep it fast — it runs inside the
// decode's scheduling paths.
func (t *Tracer) SetSink(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// SetMeta stamps the decode's mode and worker count (the decode paths
// call it; the values surface in Snapshot and the exports).
func (t *Tracer) SetMeta(mode string, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mode = mode
	t.workers = workers
	t.mu.Unlock()
}

func (t *Tracer) lane(id int) (*ring, func(Event)) {
	t.mu.RLock()
	r, ok := t.lanes[id]
	sink := t.sink
	t.mu.RUnlock()
	if ok {
		return r, sink
	}
	t.mu.Lock()
	if r, ok = t.lanes[id]; !ok {
		r = &ring{ev: make([]Event, t.laneCap)}
		t.lanes[id] = r
	}
	sink = t.sink
	t.mu.Unlock()
	return r, sink
}

// Record logs one completed span: it started at start (wall clock),
// ran for dur, on the given lane. Negative durations are clamped to
// zero (a coarse monotonic clock can report them). Nil tracers discard.
func (t *Tracer) Record(kind Kind, lane int, start time.Time, dur time.Duration, gop, pic, slice int) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	r, sink := t.lane(lane)
	r.add(Event{
		Kind:  kind,
		Lane:  lane,
		Start: start.Sub(t.start).Nanoseconds(),
		Dur:   dur.Nanoseconds(),
		GOP:   gop,
		Pic:   pic,
		Slice: slice,
	}, sink)
}

// Snapshot merges every lane into a Timeline sorted by start time.
func (t *Tracer) Snapshot() *Timeline {
	if t == nil {
		return &Timeline{}
	}
	t.mu.RLock()
	tl := &Timeline{Mode: t.mode, Workers: t.workers, Start: t.start}
	lanes := make([]*ring, 0, len(t.lanes))
	for _, r := range t.lanes {
		lanes = append(lanes, r)
	}
	t.mu.RUnlock()
	for _, r := range lanes {
		ev, dropped := r.events()
		tl.Events = append(tl.Events, ev...)
		tl.Dropped += dropped
	}
	sort.Slice(tl.Events, func(i, j int) bool {
		a, b := tl.Events[i], tl.Events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Lane < b.Lane
	})
	return tl
}

// Timeline is a merged, start-ordered view of a tracer's events.
type Timeline struct {
	Mode    string    `json:"mode"`
	Workers int       `json:"workers"`
	Start   time.Time `json:"start"`
	// Dropped counts events lost to ring wraparound (0 on any run that
	// fits the lane capacity).
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// Span returns the wall span covered by the events: first start to last
// end.
func (tl *Timeline) Span() time.Duration {
	if len(tl.Events) == 0 {
		return 0
	}
	lo := tl.Events[0].Start
	hi := lo
	for _, e := range tl.Events {
		if e.Start < lo {
			lo = e.Start
		}
		if end := e.End(); end > hi {
			hi = end
		}
	}
	return time.Duration(hi - lo)
}
