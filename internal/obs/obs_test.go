package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// rec is a test shorthand: record an event dur nanoseconds long starting
// at off nanoseconds past the tracer's epoch.
func rec(t *Tracer, kind Kind, lane int, off, dur int64, gop, pic, slice int) {
	t.Record(kind, lane, t.start.Add(time.Duration(off)), time.Duration(dur), gop, pic, slice)
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(KindTask, 0, time.Now(), time.Millisecond, 0, 0, 0)
	tr.SetMeta("gop", 4)
	tr.SetSink(func(Event) {})
	tl := tr.Snapshot()
	if len(tl.Events) != 0 || tl.Dropped != 0 {
		t.Fatalf("nil tracer snapshot: %+v", tl)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 10; i++ {
		rec(tr, KindTask, 0, i*100, 50, int(i), -1, -1)
	}
	tl := tr.Snapshot()
	if len(tl.Events) != 4 {
		t.Fatalf("kept %d events, want lane cap 4", len(tl.Events))
	}
	if tl.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tl.Dropped)
	}
	// Oldest-first after wraparound: the survivors are the last 4 records.
	for i, e := range tl.Events {
		if want := 6 + i; e.GOP != want {
			t.Fatalf("event %d has gop %d, want %d", i, e.GOP, want)
		}
	}
}

func TestSnapshotMergesAndSorts(t *testing.T) {
	tr := New(0)
	rec(tr, KindTask, 1, 300, 10, -1, -1, -1)
	rec(tr, KindTask, 0, 100, 10, -1, -1, -1)
	rec(tr, KindScan, LaneScan, 200, 10, -1, -1, -1)
	rec(tr, KindDisplay, LaneDisplay, 100, 0, -1, 0, -1)
	tl := tr.Snapshot()
	if len(tl.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(tl.Events))
	}
	for i := 1; i < len(tl.Events); i++ {
		a, b := tl.Events[i-1], tl.Events[i]
		if a.Start > b.Start || (a.Start == b.Start && a.Lane > b.Lane) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
	if tl.Span() != time.Duration(310-100) {
		t.Fatalf("span = %v, want 210ns", tl.Span())
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New(0)
	tr.Record(KindTask, 0, time.Now(), -time.Second, -1, -1, -1)
	if d := tr.Snapshot().Events[0].Dur; d != 0 {
		t.Fatalf("negative duration recorded as %d, want 0", d)
	}
}

func TestSinkReceivesEvents(t *testing.T) {
	tr := New(0)
	var got []Event
	tr.SetSink(func(e Event) { got = append(got, e) })
	rec(tr, KindTask, 0, 0, 10, -1, -1, -1)
	rec(tr, KindWait, 0, 10, 5, -1, -1, -1)
	if len(got) != 2 || got[0].Kind != KindTask || got[1].Kind != KindWait {
		t.Fatalf("sink saw %+v", got)
	}
}

func TestSummaryMath(t *testing.T) {
	tr := New(0)
	tr.SetMeta("slice-improved", 3)
	// Worker 0: 60ns busy over 2 tasks, 20ns queue wait, 20ns barrier.
	rec(tr, KindTask, 0, 0, 40, 0, 0, 0)
	rec(tr, KindWait, 0, 40, 20, -1, -1, -1)
	rec(tr, KindBarrier, 0, 60, 20, -1, -1, -1)
	rec(tr, KindTask, 0, 80, 20, 0, 1, 0)
	// Worker 1: 20ns busy, no waits. Worker 2: silent.
	rec(tr, KindTask, 1, 0, 20, 0, 0, 1)
	// Pipeline lanes.
	rec(tr, KindScan, LaneScan, 0, 30, 0, -1, -1)
	rec(tr, KindFeed, LaneScan, 30, 10, 0, -1, -1)
	rec(tr, KindDisplay, LaneDisplay, 90, 0, -1, 0, -1)
	rec(tr, KindDisplay, LaneDisplay, 95, 0, -1, 1, -1)

	s := tr.Snapshot().Summary()
	if s.Mode != "slice-improved" || s.Workers != 3 {
		t.Fatalf("meta %q/%d", s.Mode, s.Workers)
	}
	if len(s.PerWorker) != 3 {
		t.Fatalf("%d worker rows, want 3 (silent worker still gets one)", len(s.PerWorker))
	}
	w0 := s.PerWorker[0]
	if w0.Busy != 60 || w0.QueueWait != 20 || w0.BarrierWait != 20 || w0.Tasks != 2 {
		t.Fatalf("worker 0 load %+v", w0)
	}
	if w0.Utilization != 0.6 {
		t.Fatalf("worker 0 utilization %v, want 0.6", w0.Utilization)
	}
	if s.PerWorker[2].Busy != 0 || s.PerWorker[2].Utilization != 0 {
		t.Fatalf("silent worker row %+v", s.PerWorker[2])
	}
	// Imbalance: max busy 60 over mean busy (60+20+0)/3.
	if want := 60.0 / (80.0 / 3); !floatNear(s.ImbalanceFactor, want) {
		t.Fatalf("imbalance %v, want %v", s.ImbalanceFactor, want)
	}
	// Sync overhead: 40ns blocked of 120ns accounted.
	if want := 40.0 / 120.0; !floatNear(s.SyncOverhead, want) {
		t.Fatalf("sync overhead %v, want %v", s.SyncOverhead, want)
	}
	if s.QueueHist.Count != 1 || s.BarrierHist.Count != 1 {
		t.Fatalf("hists %d/%d, want 1/1", s.QueueHist.Count, s.BarrierHist.Count)
	}
	if s.ScanSpans != 1 || s.ScanTime != 30 || s.Feeds != 1 || s.FeedBlocked != 10 || s.Displayed != 2 {
		t.Fatalf("pipeline gauges %+v", s)
	}
}

func floatNear(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestSummaryEmpty(t *testing.T) {
	s := New(0).Snapshot().Summary()
	if s.ImbalanceFactor != 0 || s.SyncOverhead != 0 || s.Span != 0 {
		t.Fatalf("empty summary has non-zero derived values: %+v", s)
	}
	var buf bytes.Buffer
	s.WriteText(&buf) // must not panic or divide by zero
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	for _, d := range []time.Duration{0, 500 * time.Nanosecond, 5 * time.Microsecond,
		50 * time.Millisecond, 2 * time.Second} {
		h.add(d)
	}
	if h.Count != 5 || h.Max != 2*time.Second {
		t.Fatalf("count %d max %v", h.Count, h.Max)
	}
	if h.Buckets[0].Count != 2 { // 0 and 500ns fall below 1µs
		t.Fatalf("sub-µs bucket %d, want 2", h.Buckets[0].Count)
	}
	if last := h.Buckets[len(h.Buckets)-1]; last.Count != 1 {
		t.Fatalf("unbounded top bucket %d, want 1 (the 2s span)", last.Count)
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	tr := New(0)
	tr.SetMeta("gop", 2)
	rec(tr, KindTask, 0, 100, 50, 0, -1, -1)
	rec(tr, KindWait, 1, 100, 25, -1, -1, -1)
	rec(tr, KindTask, 1, 125, 50, 1, -1, -1)
	rec(tr, KindScan, LaneScan, 0, 80, -1, -1, -1)
	rec(tr, KindDisplay, LaneDisplay, 160, 0, -1, 0, -1)
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	// Spot-check the document shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		kinds[e["ph"].(string)]++
	}
	if kinds["X"] != 4 || kinds["i"] != 1 {
		t.Fatalf("phases %v, want 4 X spans and 1 instant", kinds)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	valid := func() *Timeline {
		tr := New(0)
		rec(tr, KindTask, 0, 100, 50, -1, -1, -1)
		return tr.Snapshot()
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"not-json", func(b []byte) []byte { return []byte("{") }, "not valid JSON"},
		{"empty", func(b []byte) []byte { return []byte(`{"traceEvents":[]}`) }, "no events"},
		{"bad-phase", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"ph": "X"`), []byte(`"ph": "B"`), 1)
		}, "unsupported phase"},
		{"unbalanced", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"spans": 1`), []byte(`"spans": 7`), 1)
		}, "unbalanced"},
		{"no-counts", func(b []byte) []byte {
			return bytes.Replace(b, []byte("mpeg2par_counts"), []byte("renamed_counts"), 1)
		}, "mpeg2par_counts"},
		{"negative-ts", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"ts": 0.1`), []byte(`"ts": -0.1`), 1)
		}, "negative timestamp"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := valid().WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		data := tc.mutate(buf.Bytes())
		err := ValidateChromeTrace(data)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateChromeTraceMonotonic(t *testing.T) {
	// Hand-build a document whose spans run backwards in time.
	doc := `{"traceEvents":[
		{"name":"thread_name","ph":"M","pid":0,"tid":0,"ts":0,"args":{"name":"worker 0"}},
		{"name":"task","ph":"X","pid":0,"tid":0,"ts":5,"dur":1},
		{"name":"task","ph":"X","pid":0,"tid":0,"ts":2,"dur":1},
		{"name":"mpeg2par_counts","ph":"M","pid":0,"tid":0,"ts":0,"args":{"spans":2,"dropped":0}}
	]}`
	err := ValidateChromeTrace([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "before predecessor") {
		t.Fatalf("error %v, want monotonicity violation", err)
	}
}
