package obs

import (
	"fmt"
	"io"
	"time"
)

// Derived reports: the paper's load-balance and synchronization-overhead
// figures (Figures 5–7) computed from a live run's event stream instead
// of the deterministic simulator.

// WorkerLoad is one worker's time breakdown derived from its events.
type WorkerLoad struct {
	Worker      int           `json:"worker"`
	Busy        time.Duration `json:"busy_ns"`
	QueueWait   time.Duration `json:"queue_wait_ns"`
	BarrierWait time.Duration `json:"barrier_wait_ns"`
	Tasks       int           `json:"tasks"`
	// Utilization is busy over the worker's accounted time
	// (busy + queue wait + barrier wait); 0 when nothing was recorded.
	Utilization float64 `json:"utilization"`
}

// HistBucket is one decade bucket of the barrier-wait histogram.
type HistBucket struct {
	// Lo is the bucket's inclusive lower bound; the last bucket is
	// unbounded above.
	Lo    time.Duration `json:"lo_ns"`
	Count int           `json:"count"`
}

// Histogram is a decade histogram of wait durations (1µs, 10µs, …, 1s).
type Histogram struct {
	Buckets []HistBucket  `json:"buckets"`
	Count   int           `json:"count"`
	Total   time.Duration `json:"total_ns"`
	Max     time.Duration `json:"max_ns"`
}

func newHistogram() Histogram {
	bounds := []time.Duration{0, time.Microsecond, 10 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
		100 * time.Millisecond, time.Second}
	h := Histogram{Buckets: make([]HistBucket, len(bounds))}
	for i, b := range bounds {
		h.Buckets[i] = HistBucket{Lo: b}
	}
	return h
}

func (h *Histogram) add(d time.Duration) {
	h.Count++
	h.Total += d
	if d > h.Max {
		h.Max = d
	}
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if d >= h.Buckets[i].Lo {
			h.Buckets[i].Count++
			return
		}
	}
}

// Summary is the derived load-balance and synchronization report of one
// traced decode.
type Summary struct {
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Span is first event start to last event end across all lanes.
	Span      time.Duration `json:"span_ns"`
	PerWorker []WorkerLoad  `json:"per_worker"`

	// ImbalanceFactor is max worker busy time over mean worker busy
	// time: 1.0 is a perfectly balanced load (the paper's Figure 6
	// quantity). 0 when no worker recorded busy time.
	ImbalanceFactor float64 `json:"imbalance_factor"`
	// SyncOverhead is the fraction of accounted worker time spent
	// blocked (queue + barrier waits) — the paper's Figure 7 quantity.
	SyncOverhead float64 `json:"sync_overhead"`

	// BarrierHist buckets individual barrier-wait spans; QueueHist the
	// task-queue starvation spans.
	BarrierHist Histogram `json:"barrier_hist"`
	QueueHist   Histogram `json:"queue_hist"`

	// Intra-slice split decode (zero unless a split source was
	// configured and tall slices were fanned out as row-segments).
	Segments     int `json:"segments"`
	VerifyHits   int `json:"verify_hits"`
	VerifyMisses int `json:"verify_misses"`

	// Pipeline lanes (zero when the batch paths produced the trace).
	ScanSpans   int           `json:"scan_spans"`
	ScanTime    time.Duration `json:"scan_ns"`
	Feeds       int           `json:"feeds"`
	FeedBlocked time.Duration `json:"feed_blocked_ns"`
	Displayed   int           `json:"displayed"`

	// Dropped mirrors the timeline's ring-wraparound loss; a non-zero
	// value means the report undercounts.
	Dropped int64 `json:"dropped"`
}

// Summary derives the report from the timeline's events.
func (tl *Timeline) Summary() *Summary {
	s := &Summary{
		Mode:        tl.Mode,
		Workers:     tl.Workers,
		Span:        tl.Span(),
		BarrierHist: newHistogram(),
		QueueHist:   newHistogram(),
		Dropped:     tl.Dropped,
	}
	loads := map[int]*WorkerLoad{}
	workerLoad := func(id int) *WorkerLoad {
		l, ok := loads[id]
		if !ok {
			l = &WorkerLoad{Worker: id}
			loads[id] = l
		}
		return l
	}
	for _, e := range tl.Events {
		d := time.Duration(e.Dur)
		switch e.Kind {
		case KindTask:
			l := workerLoad(e.Lane)
			l.Busy += d
			l.Tasks++
		case KindSegment:
			l := workerLoad(e.Lane)
			l.Busy += d
			l.Tasks++
			s.Segments++
		case KindVerify:
			if e.Slice == 1 {
				s.VerifyHits++
			} else {
				s.VerifyMisses++
			}
		case KindWait:
			workerLoad(e.Lane).QueueWait += d
			s.QueueHist.add(d)
		case KindBarrier:
			workerLoad(e.Lane).BarrierWait += d
			s.BarrierHist.add(d)
		case KindScan:
			s.ScanSpans++
			s.ScanTime += d
		case KindFeed:
			s.Feeds++
			s.FeedBlocked += d
		case KindDisplay:
			s.Displayed++
		}
	}
	maxID := -1
	for id := range loads {
		if id > maxID {
			maxID = id
		}
	}
	if n := tl.Workers; n > maxID+1 {
		maxID = n - 1 // workers that never recorded still get a row
	}
	var busySum, accountedSum, maxBusy time.Duration
	for id := 0; id <= maxID; id++ {
		l := workerLoad(id)
		accounted := l.Busy + l.QueueWait + l.BarrierWait
		if accounted > 0 {
			l.Utilization = l.Busy.Seconds() / accounted.Seconds()
		}
		busySum += l.Busy
		accountedSum += accounted
		if l.Busy > maxBusy {
			maxBusy = l.Busy
		}
		s.PerWorker = append(s.PerWorker, *l)
	}
	if busySum > 0 && len(s.PerWorker) > 0 {
		mean := busySum.Seconds() / float64(len(s.PerWorker))
		s.ImbalanceFactor = maxBusy.Seconds() / mean
	}
	if accountedSum > 0 {
		s.SyncOverhead = (accountedSum - busySum).Seconds() / accountedSum.Seconds()
	}
	return s
}

// WriteText renders the report as the human-readable table mpeg2dec and
// mpeg2bench print.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "timeline: mode %s, %d workers, span %v (%d events dropped)\n",
		s.Mode, s.Workers, s.Span.Round(time.Microsecond), s.Dropped)
	fmt.Fprintf(w, "  %-8s %-12s %-12s %-12s %6s  %s\n",
		"worker", "busy", "queue-wait", "barrier", "tasks", "util")
	for _, l := range s.PerWorker {
		fmt.Fprintf(w, "  %-8d %-12v %-12v %-12v %6d  %4.1f%%\n",
			l.Worker, l.Busy.Round(time.Microsecond), l.QueueWait.Round(time.Microsecond),
			l.BarrierWait.Round(time.Microsecond), l.Tasks, 100*l.Utilization)
	}
	fmt.Fprintf(w, "  load imbalance factor: %.3f (max busy / mean busy)\n", s.ImbalanceFactor)
	fmt.Fprintf(w, "  sync overhead: %.1f%% of accounted worker time\n", 100*s.SyncOverhead)
	writeHist(w, "barrier waits", s.BarrierHist)
	writeHist(w, "queue waits", s.QueueHist)
	if s.Segments > 0 || s.VerifyHits+s.VerifyMisses > 0 {
		fmt.Fprintf(w, "  split decode: %d segments, %d verify hits, %d misses\n",
			s.Segments, s.VerifyHits, s.VerifyMisses)
	}
	if s.Feeds > 0 || s.ScanSpans > 0 {
		fmt.Fprintf(w, "  pipeline: %d scan spans (%v), %d feeds (blocked %v), %d displayed\n",
			s.ScanSpans, s.ScanTime.Round(time.Microsecond),
			s.Feeds, s.FeedBlocked.Round(time.Microsecond), s.Displayed)
	}
}

func writeHist(w io.Writer, name string, h Histogram) {
	if h.Count == 0 {
		fmt.Fprintf(w, "  %s: none\n", name)
		return
	}
	fmt.Fprintf(w, "  %s: %d spans, total %v, max %v\n", name, h.Count,
		h.Total.Round(time.Microsecond), h.Max.Round(time.Microsecond))
	for i, b := range h.Buckets {
		if b.Count == 0 {
			continue
		}
		hi := "+"
		if i+1 < len(h.Buckets) {
			hi = fmt.Sprintf("-%v", h.Buckets[i+1].Lo)
		}
		fmt.Fprintf(w, "    %10s%-8s %d\n", fmt.Sprintf("%v", b.Lo), hi, b.Count)
	}
}
