// Package quant implements MPEG-2 quantization and inverse quantization
// (ISO/IEC 13818-2 §7.4), including the default quantization matrices, the
// linear and non-linear quantiser_scale mappings, coefficient saturation
// and mismatch control.
package quant

// DefaultIntraMatrix is the default intra quantization matrix in raster
// order (§6.3.11).
var DefaultIntraMatrix = [64]uint8{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 24, 27, 29, 32, 35, 38, 40,
	26, 27, 29, 32, 35, 40, 43, 46,
	27, 29, 34, 34, 40, 46, 46, 56,
	29, 34, 34, 37, 40, 48, 56, 69,
	34, 37, 38, 40, 48, 58, 69, 83,
}

// DefaultNonIntraMatrix is the default non-intra quantization matrix: a
// flat 16 (§6.3.11).
var DefaultNonIntraMatrix = [64]uint8{
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
}

// nonLinearScale is the q_scale_type=1 mapping from quantiser_scale_code
// (1..31) to quantiser_scale (Table 7-6). Index 0 is unused.
var nonLinearScale = [32]int32{
	0, 1, 2, 3, 4, 5, 6, 7, 8,
	10, 12, 14, 16, 18, 20, 22,
	24, 28, 32, 36, 40, 44, 48,
	52, 56, 64, 72, 80, 88, 96, 104, 112,
}

// Scale returns quantiser_scale for a quantiser_scale_code under the given
// q_scale_type (picture coding extension flag).
func Scale(code int, nonLinear bool) int32 {
	if code < 1 || code > 31 {
		code = 1
	}
	if nonLinear {
		return nonLinearScale[code]
	}
	return int32(code) * 2
}

// ScaleCode returns the quantiser_scale_code whose Scale is closest to
// (and not above, where possible) the requested scale. Used by the encoder.
func ScaleCode(scale int32, nonLinear bool) int {
	best, bestDiff := 1, int32(1<<30)
	for code := 1; code <= 31; code++ {
		s := Scale(code, nonLinear)
		d := s - scale
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = code, d
		}
	}
	return best
}

// IntraDCMult returns the intra DC multiplier for intra_dc_precision
// (0..3 coding 8..11 bits): 8, 4, 2, 1.
func IntraDCMult(precision int) int32 {
	switch precision {
	case 0:
		return 8
	case 1:
		return 4
	case 2:
		return 2
	default:
		return 1
	}
}

// Params bundles everything inverse quantization needs for one block.
type Params struct {
	Matrix      *[64]uint8 // weight matrix W, raster order
	Scale       int32      // quantiser_scale
	Intra       bool
	DCPrecision int // intra_dc_precision code 0..3 (intra blocks only)
}

// Inverse dequantizes the block of quantized coefficients QF (raster order)
// in place, applying saturation to [-2048, 2047] and mismatch control
// (§7.4.4). For intra blocks, block[0] must hold the differential-decoded
// DC value (dc_dct_pred applied); it is scaled by the intra DC multiplier.
func Inverse(block *[64]int32, p Params) {
	InverseSparse(block, p, 64)
}

// InverseSparse is Inverse with a sparsity contract for the IDCT that
// follows: nnz is the number of nonzero quantized coefficients in block
// (pass 64 when unknown; it only bounds the scan). It returns rowMask,
// whose bit r is set when frequency row r of the dequantized block may
// hold a nonzero coefficient, and dcOnly, which is true only when every
// AC coefficient is exactly zero after mismatch control. rowMask is a
// safe superset (a set bit for an all-zero row costs time, not
// correctness), but a clear bit guarantees the row is all zero, and
// dcOnly is exact — both as dct.InverseSparse requires. The block
// contents produced are bit-identical to Inverse.
func InverseSparse(block *[64]int32, p Params, nnz int) (rowMask uint8, dcOnly bool) {
	var sum int32
	acLive := false
	seen := 0
	start := 0
	if p.Intra {
		if block[0] != 0 {
			seen++
		}
		block[0] *= IntraDCMult(p.DCPrecision)
		block[0] = saturate(block[0])
		sum = block[0]
		if block[0] != 0 {
			rowMask = 1
		}
		start = 1
	}
	for i := start; i < 64 && seen < nnz; i++ {
		qf := block[i]
		if qf == 0 {
			continue
		}
		seen++
		var f int32
		if p.Intra {
			f = (2 * qf * p.Scale * int32(p.Matrix[i])) / 32
		} else {
			k := int32(1)
			if qf < 0 {
				k = -1
			}
			f = ((2*qf + k) * p.Scale * int32(p.Matrix[i])) / 32
		}
		f = saturate(f)
		block[i] = f
		sum += f
		if f != 0 {
			rowMask |= 1 << uint(i>>3)
			acLive = true
		}
	}
	// Mismatch control: if the coefficient sum is even, toggle the LSB of
	// the highest-frequency coefficient. The toggle can turn a zero
	// block[63] nonzero (row 7 must join the mask) or a one back to zero
	// (bit 7 may stay set; supersets are harmless).
	if sum&1 == 0 {
		if block[63]&1 != 0 {
			block[63]--
		} else {
			block[63]++
		}
		if block[63] != 0 {
			rowMask |= 0x80
			acLive = true
		}
	}
	return rowMask, !acLive
}

// Forward quantizes the block of DCT coefficients F (raster order) in
// place, producing quantized levels QF. Intra AC terms round to nearest;
// non-intra terms truncate toward zero (dead zone), the conventional
// encoder choice. The intra DC term is divided by the DC multiplier with
// rounding. Levels are clamped to [-2047, 2047] so they remain codable.
func Forward(block *[64]int32, p Params) {
	start := 0
	if p.Intra {
		mult := IntraDCMult(p.DCPrecision)
		block[0] = divRound(block[0], mult)
		dcMax := int32(1)<<(uint(p.DCPrecision)+8) - 1
		block[0] = clampTo(block[0], 0, dcMax) // intra DC of a pixel block is non-negative after +1024 bias upstream
		start = 1
	}
	for i := start; i < 64; i++ {
		f := block[i]
		d := 2 * p.Scale * int32(p.Matrix[i])
		if d == 0 {
			block[i] = 0
			continue
		}
		var qf int32
		if p.Intra {
			qf = divRound(32*f, d)
		} else {
			// Truncation toward zero.
			qf = 32 * f / d
		}
		block[i] = clampTo(qf, -2047, 2047)
	}
}

func saturate(v int32) int32 { return clampTo(v, -2048, 2047) }

func clampTo(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// divRound divides with rounding to nearest, halves away from zero.
func divRound(n, d int32) int32 {
	if d < 0 {
		n, d = -n, -d
	}
	if n >= 0 {
		return (n + d/2) / d
	}
	return -((-n + d/2) / d)
}
