package quant

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScaleLinear(t *testing.T) {
	for code := 1; code <= 31; code++ {
		if got := Scale(code, false); got != int32(code*2) {
			t.Fatalf("Scale(%d, linear) = %d", code, got)
		}
	}
}

func TestScaleNonLinearTable(t *testing.T) {
	// Spot values from Table 7-6.
	want := map[int]int32{1: 1, 8: 8, 9: 10, 16: 24, 17: 28, 24: 56, 25: 64, 31: 112}
	for code, s := range want {
		if got := Scale(code, true); got != s {
			t.Errorf("Scale(%d, nonlinear) = %d, want %d", code, got, s)
		}
	}
}

func TestScaleOutOfRange(t *testing.T) {
	if Scale(0, false) != 2 || Scale(40, false) != 2 {
		t.Fatal("out-of-range codes must clamp to code 1")
	}
}

func TestScaleCodeRoundTrip(t *testing.T) {
	for _, nl := range []bool{false, true} {
		for code := 1; code <= 31; code++ {
			s := Scale(code, nl)
			back := ScaleCode(s, nl)
			if Scale(back, nl) != s {
				t.Fatalf("ScaleCode(Scale(%d)) mismatch (nl=%v)", code, nl)
			}
		}
	}
}

func TestIntraDCMult(t *testing.T) {
	want := []int32{8, 4, 2, 1}
	for p, m := range want {
		if got := IntraDCMult(p); got != m {
			t.Errorf("IntraDCMult(%d) = %d, want %d", p, got, m)
		}
	}
}

func TestDefaultMatrices(t *testing.T) {
	if DefaultIntraMatrix[0] != 8 || DefaultIntraMatrix[63] != 83 {
		t.Fatal("intra matrix corners wrong")
	}
	for i, v := range DefaultNonIntraMatrix {
		if v != 16 {
			t.Fatalf("non-intra[%d] = %d", i, v)
		}
	}
}

func TestInverseIntraDC(t *testing.T) {
	var b [64]int32
	b[0] = 128 // quantized DC
	Inverse(&b, Params{Matrix: &DefaultIntraMatrix, Scale: 16, Intra: true, DCPrecision: 0})
	if b[0] != 1024 {
		t.Fatalf("DC dequant = %d, want 1024", b[0])
	}
}

func TestInverseNonIntraZeroStaysZero(t *testing.T) {
	var b [64]int32
	Inverse(&b, Params{Matrix: &DefaultNonIntraMatrix, Scale: 4, Intra: false})
	// Mismatch control toggles block[63] because the sum (0) is even.
	for i := 0; i < 63; i++ {
		if b[i] != 0 {
			t.Fatalf("b[%d] = %d", i, b[i])
		}
	}
	if b[63] != 1 {
		t.Fatalf("mismatch control should set b[63]=1, got %d", b[63])
	}
}

func TestMismatchControlOddSum(t *testing.T) {
	var b [64]int32
	b[0] = 1 // after intra scaling with mult 8 -> 8: even, so toggle happens
	Inverse(&b, Params{Matrix: &DefaultIntraMatrix, Scale: 2, Intra: true, DCPrecision: 0})
	sum := int32(0)
	for _, v := range b {
		sum += v
	}
	if sum&1 == 0 {
		t.Fatalf("post-mismatch sum must be odd, got %d", sum)
	}
}

func TestMismatchControlTogglesDown(t *testing.T) {
	var b [64]int32
	b[63] = 1 // non-intra: f = (2+1)*2*16/32 = 3 -> sum 3 odd, no toggle
	Inverse(&b, Params{Matrix: &DefaultNonIntraMatrix, Scale: 2, Intra: false})
	if b[63] != 3 {
		t.Fatalf("b[63] = %d, want 3 (odd sum, untouched)", b[63])
	}
	var c [64]int32
	c[62], c[63] = 1, 1 // both become 3, sum 6 even -> b[63] toggles to 2
	Inverse(&c, Params{Matrix: &DefaultNonIntraMatrix, Scale: 2, Intra: false})
	if c[63] != 2 {
		t.Fatalf("c[63] = %d, want 2 after downward toggle", c[63])
	}
}

func TestInverseSaturation(t *testing.T) {
	var b [64]int32
	b[1] = 2047
	Inverse(&b, Params{Matrix: &DefaultIntraMatrix, Scale: 112, Intra: true, DCPrecision: 3})
	if b[1] != 2047 {
		t.Fatalf("saturation failed: %d", b[1])
	}
	var c [64]int32
	c[1] = -2047
	Inverse(&c, Params{Matrix: &DefaultIntraMatrix, Scale: 112, Intra: true, DCPrecision: 3})
	if c[1] != -2048 {
		t.Fatalf("negative saturation failed: %d", c[1])
	}
}

// TestRoundTripAccuracy: quantize then dequantize must reconstruct within
// one quantization step for every coefficient.
func TestRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, intra := range []bool{true, false} {
		m := &DefaultNonIntraMatrix
		if intra {
			m = &DefaultIntraMatrix
		}
		for trial := 0; trial < 300; trial++ {
			scaleCode := 1 + rng.Intn(31)
			p := Params{Matrix: m, Scale: Scale(scaleCode, false), Intra: intra, DCPrecision: 0}
			var orig [64]int32
			if intra {
				orig[0] = int32(rng.Intn(2040)) // biased DC, non-negative
			} else {
				orig[0] = int32(rng.Intn(2000) - 1000)
			}
			for i := 1; i < 64; i++ {
				orig[i] = int32(rng.Intn(2000) - 1000)
			}
			b := orig
			Forward(&b, p)
			Inverse(&b, p)
			for i := range b {
				step := 2 * p.Scale * int32(m[i]) / 32
				if intra && i == 0 {
					step = IntraDCMult(p.DCPrecision)
				}
				if step < 1 {
					step = 1
				}
				d := b[i] - orig[i]
				if d < 0 {
					d = -d
				}
				// Mismatch control can add 1 to coefficient 63.
				slack := step + 1
				if d > slack {
					t.Fatalf("intra=%v trial %d coef %d: orig %d got %d (step %d)",
						intra, trial, i, orig[i], b[i], step)
				}
			}
		}
	}
}

// TestForwardQuick: quantized levels are always codable.
func TestForwardQuick(t *testing.T) {
	f := func(raw [64]int16, scaleCode uint8, intra bool) bool {
		var b [64]int32
		for i := range raw {
			b[i] = int32(raw[i]) % 2048
		}
		if intra && b[0] < 0 {
			b[0] = -b[0]
		}
		m := &DefaultNonIntraMatrix
		if intra {
			m = &DefaultIntraMatrix
		}
		p := Params{Matrix: m, Scale: Scale(int(scaleCode%31)+1, false), Intra: intra}
		Forward(&b, p)
		for i, v := range b {
			if v < -2047 || v > 2047 {
				return false
			}
			if intra && i == 0 && v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDivRound(t *testing.T) {
	cases := []struct{ n, d, want int32 }{
		{7, 2, 4}, {-7, 2, -4}, {6, 4, 2}, {-6, 4, -2}, {5, 10, 1}, {-5, 10, -1}, {4, 10, 0},
	}
	for _, c := range cases {
		if got := divRound(c.n, c.d); got != c.want {
			t.Errorf("divRound(%d,%d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var blk [64]int32
	for i := range blk {
		blk[i] = int32(rng.Intn(64) - 32)
	}
	p := Params{Matrix: &DefaultIntraMatrix, Scale: 16, Intra: true}
	for i := 0; i < b.N; i++ {
		tmp := blk
		Inverse(&tmp, p)
	}
}

// inverseDenseRef is the pre-sparsity Inverse, kept verbatim as the oracle:
// InverseSparse must produce bit-identical blocks for every input.
func inverseDenseRef(block *[64]int32, p Params) {
	var sum int32
	start := 0
	if p.Intra {
		block[0] *= IntraDCMult(p.DCPrecision)
		block[0] = saturate(block[0])
		sum = block[0]
		start = 1
	}
	for i := start; i < 64; i++ {
		qf := block[i]
		if qf == 0 && !p.Intra {
			continue
		}
		var f int32
		if p.Intra {
			f = (2 * qf * p.Scale * int32(p.Matrix[i])) / 32
		} else {
			k := int32(0)
			if qf > 0 {
				k = 1
			} else if qf < 0 {
				k = -1
			}
			f = ((2*qf + k) * p.Scale * int32(p.Matrix[i])) / 32
		}
		f = saturate(f)
		block[i] = f
		sum += f
	}
	if sum&1 == 0 {
		if block[63]&1 != 0 {
			block[63]--
		} else {
			block[63]++
		}
	}
}

// randQuantBlock returns a block with nnz nonzero levels at random raster
// positions (plus, for intra, a DC term that may be zero) and the matching
// Params.
func randQuantBlock(rng *rand.Rand, intra bool) ([64]int32, Params, int) {
	var b [64]int32
	nnz := 0
	if intra {
		b[0] = int32(rng.Intn(512) - 128) // may be negative or zero pre-mult
		if b[0] != 0 {
			nnz++
		}
	}
	for n := rng.Intn(12); n > 0; n-- {
		i := 1 + rng.Intn(63)
		if b[i] != 0 {
			continue
		}
		v := int32(rng.Intn(401) - 200)
		if v == 0 {
			v = 1
		}
		b[i] = v
		nnz++
	}
	m := &DefaultNonIntraMatrix
	if intra {
		m = &DefaultIntraMatrix
	}
	p := Params{
		Matrix:      m,
		Scale:       Scale(1+rng.Intn(31), rng.Intn(2) == 1),
		Intra:       intra,
		DCPrecision: rng.Intn(4),
	}
	return b, p, nnz
}

// TestInverseSparseMatchesDense: identical block contents, a rowMask that
// covers every live row, and an exact dcOnly — for both intra and
// non-intra blocks, with nnz passed both exactly and as the unknown 64.
func TestInverseSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4000; trial++ {
		intra := trial%2 == 0
		b, p, nnz := randQuantBlock(rng, intra)
		if trial%3 == 0 {
			nnz = 64 // callers without a count must still be exact
		}

		dense := b
		inverseDenseRef(&dense, p)

		sparse := b
		rowMask, dcOnly := InverseSparse(&sparse, p, nnz)

		if sparse != dense {
			t.Fatalf("trial %d (intra=%v): block mismatch\nin:     %v\nsparse: %v\ndense:  %v",
				trial, intra, b, sparse, dense)
		}
		for i, v := range dense {
			if v != 0 && rowMask&(1<<uint(i>>3)) == 0 {
				t.Fatalf("trial %d: nonzero at %d but row %d not in mask %02x",
					trial, i, i>>3, rowMask)
			}
			if i > 0 && v != 0 && dcOnly {
				t.Fatalf("trial %d: dcOnly with nonzero AC at %d", trial, i)
			}
		}
	}
}

// TestInverseSparseMismatchToggle pins the two mismatch-control corners:
// the toggle creating a nonzero block[63] from an otherwise DC-even block
// (so dcOnly must be false), and a DC-odd block staying genuinely DC-only.
func TestInverseSparseMismatchToggle(t *testing.T) {
	p := Params{Matrix: &DefaultIntraMatrix, Scale: 2, Intra: true, DCPrecision: 3}

	var even [64]int32
	even[0] = 4 // DC mult 1 -> sum 4, even -> block[63] becomes 1
	rowMask, dcOnly := InverseSparse(&even, p, 1)
	if even[63] != 1 || dcOnly || rowMask&0x80 == 0 {
		t.Fatalf("even DC: block[63]=%d dcOnly=%v mask=%02x", even[63], dcOnly, rowMask)
	}

	var odd [64]int32
	odd[0] = 5 // sum odd -> no toggle -> truly DC-only
	rowMask, dcOnly = InverseSparse(&odd, p, 1)
	if odd[63] != 0 || !dcOnly || rowMask != 1 {
		t.Fatalf("odd DC: block[63]=%d dcOnly=%v mask=%02x", odd[63], dcOnly, rowMask)
	}
}
