// Package scan defines the MPEG-2 coefficient scan orders (ISO/IEC 13818-2
// Figures 7-2 and 7-3).
//
// A scan order maps the position of a coefficient in the coded (run-length)
// stream to its index in the 8×8 block in raster order. Zigzag is the
// classic MPEG-1/JPEG order; Alternate was added in MPEG-2 for interlaced
// material but is legal for any picture.
package scan

// Zigzag maps scan position -> raster block index (Figure 7-2).
var Zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Alternate maps scan position -> raster block index (Figure 7-3).
var Alternate = [64]int{
	0, 8, 16, 24, 1, 9, 2, 10,
	17, 25, 32, 40, 48, 56, 57, 49,
	41, 33, 26, 18, 3, 11, 4, 12,
	19, 27, 34, 42, 50, 58, 35, 43,
	51, 59, 20, 28, 5, 13, 6, 14,
	21, 29, 36, 44, 52, 60, 37, 45,
	53, 61, 22, 30, 7, 15, 23, 31,
	38, 46, 54, 62, 39, 47, 55, 63,
}

// Table returns the scan table selected by the alternate_scan picture
// coding extension flag.
func Table(alternate bool) *[64]int {
	if alternate {
		return &Alternate
	}
	return &Zigzag
}

// Inverse returns the inverse permutation of t: raster index -> scan
// position.
func Inverse(t *[64]int) [64]int {
	var inv [64]int
	for pos, idx := range t {
		inv[idx] = pos
	}
	return inv
}

// InverseZigzag and InverseAlternate are the precomputed inverse
// permutations (raster index -> scan position), used by the encoder.
var (
	InverseZigzag    = Inverse(&Zigzag)
	InverseAlternate = Inverse(&Alternate)
)

// InverseTable returns the inverse scan table selected by alternate_scan.
func InverseTable(alternate bool) *[64]int {
	if alternate {
		return &InverseAlternate
	}
	return &InverseZigzag
}
