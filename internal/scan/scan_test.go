package scan

import (
	"testing"
	"testing/quick"
)

func isPermutation(t *testing.T, name string, tab *[64]int) {
	t.Helper()
	var seen [64]bool
	for pos, idx := range tab {
		if idx < 0 || idx > 63 {
			t.Fatalf("%s[%d] = %d out of range", name, pos, idx)
		}
		if seen[idx] {
			t.Fatalf("%s: duplicate index %d", name, idx)
		}
		seen[idx] = true
	}
}

func TestPermutations(t *testing.T) {
	isPermutation(t, "Zigzag", &Zigzag)
	isPermutation(t, "Alternate", &Alternate)
}

func TestZigzagKnownEntries(t *testing.T) {
	// Spot checks against Figure 7-2: first row of the scan and the tail.
	want := map[int]int{0: 0, 1: 1, 2: 8, 3: 16, 4: 9, 5: 2, 62: 62, 63: 63}
	for pos, idx := range want {
		if Zigzag[pos] != idx {
			t.Errorf("Zigzag[%d] = %d, want %d", pos, Zigzag[pos], idx)
		}
	}
}

func TestZigzagDiagonalProperty(t *testing.T) {
	// Along the zigzag, consecutive entries differ by a move to an adjacent
	// anti-diagonal or along one; the sum row+col never decreases by more
	// than 1 and positions 0..63 cover diagonals in order.
	prevDiag := 0
	for pos := 1; pos < 64; pos++ {
		idx := Zigzag[pos]
		diag := idx/8 + idx%8
		if diag < prevDiag-1 || diag > prevDiag+1 {
			t.Fatalf("pos %d: diagonal jumps from %d to %d", pos, prevDiag, diag)
		}
		prevDiag = diag
	}
}

func TestAlternateKnownEntries(t *testing.T) {
	want := map[int]int{0: 0, 1: 8, 2: 16, 3: 24, 4: 1, 13: 56, 63: 63}
	for pos, idx := range want {
		if Alternate[pos] != idx {
			t.Errorf("Alternate[%d] = %d, want %d", pos, Alternate[pos], idx)
		}
	}
}

func TestInverseIsInverse(t *testing.T) {
	for _, tab := range []*[64]int{&Zigzag, &Alternate} {
		inv := Inverse(tab)
		for pos := 0; pos < 64; pos++ {
			if inv[tab[pos]] != pos {
				t.Fatalf("inverse broken at pos %d", pos)
			}
		}
	}
}

func TestTableSelect(t *testing.T) {
	if Table(false) != &Zigzag || Table(true) != &Alternate {
		t.Fatal("Table selection wrong")
	}
	if InverseTable(false) != &InverseZigzag || InverseTable(true) != &InverseAlternate {
		t.Fatal("InverseTable selection wrong")
	}
}

func TestScanRoundTripQuick(t *testing.T) {
	// Scanning then inverse-scanning any block is the identity.
	f := func(block [64]int32, alt bool) bool {
		tab := Table(alt)
		inv := InverseTable(alt)
		var scanned, back [64]int32
		for pos := 0; pos < 64; pos++ {
			scanned[pos] = block[tab[pos]]
		}
		for idx := 0; idx < 64; idx++ {
			back[idx] = scanned[inv[idx]]
		}
		return back == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
