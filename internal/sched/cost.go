// Package sched is the cost-model-driven adaptive scheduler: it turns
// the scan process's structural index into decode-cost estimates and
// uses them to (a) pack task queues in longest-processing-time-first
// order, (b) choose a parallelization mode and worker count for a
// workload up front, and (c) adapt the active worker count online from
// observed utilization.
//
// The paper's Figures 5-7 attribute the gap between ideal and achieved
// speedup to load imbalance and synchronization overhead; both are
// scheduling artifacts of FIFO dispatch over tasks of very uneven cost.
// Compressed size is an excellent proxy for decode cost — variable-length
// decoding is the sequential bottleneck and its time is proportional to
// bits consumed — so per-slice and per-GOP byte sizes, which the scan
// produces for free, are the cost model's inputs. Observed (bytes,
// duration) pairs from completed tasks refine the estimates into
// absolute time via CostModel.
//
// The package deliberately knows nothing about the decoder: it operates
// on abstract int64 costs and indices so internal/core can depend on it
// without a cycle.
package sched

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// CostModel calibrates byte-size cost estimates into predicted decode
// time: an exponentially weighted moving average of observed
// nanoseconds-per-byte over completed tasks. The zero value is a valid,
// uncalibrated model (Predict returns 0 until the first Observe). All
// methods are safe for concurrent use and safe on a nil receiver, so
// decode hot paths can call Observe unconditionally behind a pointer
// test.
type CostModel struct {
	rate atomic.Uint64 // float64 bits of the EWMA ns/byte
	obs  atomic.Int64  // observations folded in
}

// ewmaAlpha weights each new observation. Tasks arrive by the hundred
// per stream, so a fairly fast-moving average adapts to content changes
// while still smoothing single-task jitter.
const ewmaAlpha = 0.2

// Observe folds one completed task — bytes of compressed input, wall
// duration — into the model. Non-positive sizes or durations are
// ignored.
func (m *CostModel) Observe(bytes int64, d time.Duration) {
	if m == nil || bytes <= 0 || d <= 0 {
		return
	}
	r := float64(d.Nanoseconds()) / float64(bytes)
	for {
		old := m.rate.Load()
		cur := math.Float64frombits(old)
		next := r
		if cur > 0 {
			next = cur*(1-ewmaAlpha) + r*ewmaAlpha
		}
		if m.rate.CompareAndSwap(old, math.Float64bits(next)) {
			m.obs.Add(1)
			return
		}
	}
}

// calibrationMin is how many observations the model needs before its
// predictions may be used for control decisions (admission, slack,
// mode choice). A single observation is dominated by cold-cache and
// first-allocation noise; three smooths the worst of it while still
// calibrating within one stream's first GOPs.
const calibrationMin = 3

// Calibrated reports whether the model has folded in enough
// observations for Predict to be trusted in control decisions. Callers
// that multiply or compare against Predict must treat an uncalibrated
// model as "cost unknown — be conservative", never as "free": Predict
// returns 0 until the first Observe, and 0 reads as a free task to any
// naive comparison.
func (m *CostModel) Calibrated() bool {
	return m.Observations() >= calibrationMin
}

// NsPerByte returns the calibrated rate, 0 while uncalibrated.
func (m *CostModel) NsPerByte() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.rate.Load())
}

// Observations returns how many tasks have been folded in.
func (m *CostModel) Observations() int64 {
	if m == nil {
		return 0
	}
	return m.obs.Load()
}

// Predict converts a byte-size cost estimate into predicted decode
// time; 0 while the model is uncalibrated.
func (m *CostModel) Predict(bytes int64) time.Duration {
	r := m.NsPerByte()
	if r <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(r * float64(bytes))
}

// LPT returns the indices of costs in longest-processing-time-first
// order: a permutation of [0, len(costs)) sorted by descending cost,
// stable (equal costs keep their original relative order, so the
// packing is deterministic for a given cost vector).
func LPT(costs []int64) []int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	return order
}

// Makespan list-schedules the costs, longest first, onto the given
// number of workers (each task goes to the least-loaded worker) and
// returns the finish time of the most-loaded worker — the classic LPT
// makespan, used to predict how well a task set balances at a worker
// count. workers < 1 is treated as 1.
func Makespan(costs []int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	if len(costs) == 0 {
		return 0
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	loads := make([]int64, workers)
	for _, i := range LPT(costs) {
		min := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += costs[i]
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Sum totals a cost vector (the one-worker makespan).
func Sum(costs []int64) int64 {
	var s int64
	for _, c := range costs {
		s += c
	}
	return s
}
