package sched

import (
	"fmt"
	"time"
)

// ModeHint is the policy's verdict on a workload's parallelization
// strategy. It is sched-local (not core.Mode) so the dependency points
// from core to sched only; core maps hints back onto its modes.
type ModeHint int

const (
	// HintSequential: the stream is too short, or the predicted parallel
	// gain too small, to pay for worker coordination.
	HintSequential ModeHint = iota
	// HintGOP: coarse-grained tasks balance well — enough groups of
	// similar cost to keep the workers fed.
	HintGOP
	// HintSlice: fine-grained slice tasks balance better than whole
	// groups (few or very uneven GOPs, or per-picture parallelism is
	// what the worker count can actually use). Maps to the improved
	// slice variant, the paper's best-scaling discipline.
	HintSlice
)

func (h ModeHint) String() string {
	switch h {
	case HintSequential:
		return "sequential"
	case HintGOP:
		return "gop"
	case HintSlice:
		return "slice-improved"
	}
	return fmt.Sprintf("ModeHint(%d)", int(h))
}

// Geometry is the scan-derived shape of a workload: the byte-size cost
// estimates the policy predicts balance from. SliceBytes may cover only
// a prefix of the stream's pictures (cost detail is capped for very
// long streams); the policy normalizes by predicted speedup, not
// absolute time, so partial detail stays comparable.
type Geometry struct {
	GOPs     int
	Pictures int
	// GOPBytes is the per-group cost estimate (bytes spanned by each
	// group of pictures).
	GOPBytes []int64
	// SliceBytes is the per-picture slice cost detail: one vector of
	// per-slice byte sizes per sampled picture.
	SliceBytes [][]int64
	// TotalBytes is the whole stream's size (the sequential cost).
	TotalBytes int64
}

// Choice is the policy's resolved schedule for a workload.
type Choice struct {
	Mode    ModeHint
	Workers int
	// Reason is a one-line human-readable justification, surfaced
	// through Stats so an auto-tuned run can explain itself.
	Reason string
}

// Tunables of Choose. The efficiency knee mirrors the paper's
// observation that speedup flattens once load imbalance dominates:
// workers that buy <5% more predicted speedup are not worth their
// synchronization cost.
const (
	// kneeFrac: the smallest worker count within this fraction of the
	// best predicted speedup wins.
	kneeFrac = 0.95
	// minParallelGain: below this predicted speedup, decode sequentially.
	minParallelGain = 1.05
	// minParallelPictures: streams shorter than this never parallelize
	// (worker startup dwarfs the work).
	minParallelPictures = 3
)

// Choose picks a mode and worker count for the workload from its
// predicted balance: for every candidate worker count it computes the
// LPT-packed makespan of the GOP task set and of the per-picture slice
// task sets, converts both to predicted speedups over sequential, and
// takes the best — then walks the worker count back to the efficiency
// knee. model, when calibrated, is only used to phrase the Reason in
// absolute time; the choice itself is scale-invariant.
func Choose(g Geometry, maxWorkers int, model *CostModel) Choice {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	if g.TotalBytes <= 0 || g.Pictures <= 0 {
		return Choice{HintSequential, 1, "empty workload"}
	}
	if maxWorkers == 1 {
		return Choice{HintSequential, 1, "one worker available"}
	}
	if g.Pictures < minParallelPictures {
		return Choice{HintSequential, 1,
			fmt.Sprintf("%d pictures: too short to parallelize", g.Pictures)}
	}

	gopTotal := Sum(g.GOPBytes)
	var sliceTotal int64
	for _, pic := range g.SliceBytes {
		sliceTotal += Sum(pic)
	}

	speedup := func(hint ModeHint, w int) float64 {
		switch hint {
		case HintGOP:
			if len(g.GOPBytes) < 2 || gopTotal <= 0 {
				return 0
			}
			return float64(gopTotal) / float64(Makespan(g.GOPBytes, w))
		case HintSlice:
			if sliceTotal <= 0 {
				return 0
			}
			// The simple slice variant barriers after every picture, so
			// its makespan is the sum of per-picture makespans. The
			// improved variant overlaps B pictures with the next
			// reference, so this is a (slightly pessimistic) lower bound
			// on its speedup — safe to choose by.
			var span int64
			for _, pic := range g.SliceBytes {
				span += Makespan(pic, w)
			}
			if span <= 0 {
				return 0
			}
			return float64(sliceTotal) / float64(span)
		}
		return 1
	}

	best := Choice{Mode: HintSequential, Workers: 1}
	bestGain := 1.0
	for _, hint := range []ModeHint{HintGOP, HintSlice} {
		for w := 2; w <= maxWorkers; w++ {
			if gain := speedup(hint, w); gain > bestGain {
				bestGain = gain
				best = Choice{Mode: hint, Workers: w}
			}
		}
	}
	if bestGain < minParallelGain {
		return Choice{HintSequential, 1,
			fmt.Sprintf("predicted parallel speedup only %.2fx", bestGain)}
	}
	// Efficiency knee: smallest worker count of the winning mode within
	// kneeFrac of the best predicted speedup.
	for w := 2; w < best.Workers; w++ {
		if speedup(best.Mode, w) >= kneeFrac*bestGain {
			best.Workers = w
			break
		}
	}
	kept := speedup(best.Mode, best.Workers)
	best.Reason = fmt.Sprintf("%s x%d: predicted speedup %.2fx over %d GOPs / %d pictures",
		best.Mode, best.Workers, kept, g.GOPs, g.Pictures)
	// Quote an absolute-time estimate only once the model is calibrated:
	// one noisy observation would phrase a confident-looking but junk
	// number into the reason string.
	if model.Calibrated() {
		if t := model.Predict(g.TotalBytes); t > 0 {
			best.Reason += fmt.Sprintf(" (~%v sequential)", t.Round(100*time.Microsecond))
		}
	}
	return best
}
