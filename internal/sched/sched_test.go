package sched

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestLPTOrderIsPermutationSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		costs := make([]int64, n)
		for i := range costs {
			costs[i] = int64(rng.Intn(1000))
		}
		order := LPT(costs)
		if len(order) != n {
			t.Fatalf("trial %d: order has %d entries, want %d", trial, len(order), n)
		}
		seen := make([]bool, n)
		for k, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("trial %d: not a permutation: %v", trial, order)
			}
			seen[i] = true
			if k > 0 && costs[i] > costs[order[k-1]] {
				t.Fatalf("trial %d: order not descending at %d: %v", trial, k, order)
			}
		}
	}
}

func TestLPTStableOnTies(t *testing.T) {
	costs := []int64{5, 7, 5, 7, 5}
	got := LPT(costs)
	want := []int{1, 3, 0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LPT(%v) = %v, want %v", costs, got, want)
		}
	}
}

// TestMakespanBounds pins the list-scheduling guarantees: the makespan
// is at least both lower bounds (max task, total/workers) and at most
// total/workers + max task.
func TestMakespanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		w := 1 + rng.Intn(16)
		costs := make([]int64, n)
		var sum, max int64
		for i := range costs {
			costs[i] = int64(1 + rng.Intn(5000))
			sum += costs[i]
			if costs[i] > max {
				max = costs[i]
			}
		}
		ms := Makespan(costs, w)
		lb := sum / int64(w)
		if ms < max || ms < lb {
			t.Fatalf("trial %d: makespan %d below lower bounds (max %d, avg %d)", trial, ms, max, lb)
		}
		if ms > lb+max {
			t.Fatalf("trial %d: makespan %d above avg+max bound %d", trial, ms, lb+max)
		}
		if w == 1 && ms != sum {
			t.Fatalf("trial %d: one-worker makespan %d != sum %d", trial, ms, sum)
		}
	}
}

func TestMakespanSkewedExample(t *testing.T) {
	// One huge task plus many small ones: LPT packing overlaps the small
	// tasks with the huge one, so the makespan is the huge task itself.
	costs := []int64{100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	if ms := Makespan(costs, 2); ms != 100 {
		t.Fatalf("makespan %d, want 100 (small tasks hide behind the large)", ms)
	}
}

func TestCostModelCalibration(t *testing.T) {
	var m CostModel
	if m.Predict(1000) != 0 {
		t.Fatal("uncalibrated model must predict 0")
	}
	for i := 0; i < 50; i++ {
		m.Observe(1000, 2*time.Microsecond) // 2 ns/byte
	}
	if r := m.NsPerByte(); r < 1.9 || r > 2.1 {
		t.Fatalf("rate %.3f ns/byte, want ~2", r)
	}
	if p := m.Predict(10_000); p < 19*time.Microsecond || p > 21*time.Microsecond {
		t.Fatalf("predict %v, want ~20µs", p)
	}
	if m.Observations() != 50 {
		t.Fatalf("observations %d, want 50", m.Observations())
	}
	// Nil and junk observations are discarded.
	var nilModel *CostModel
	nilModel.Observe(10, time.Second)
	if nilModel.Predict(10) != 0 || nilModel.NsPerByte() != 0 {
		t.Fatal("nil model must stay inert")
	}
	m.Observe(-5, time.Second)
	m.Observe(5, -time.Second)
	if m.Observations() != 50 {
		t.Fatal("invalid observations must be ignored")
	}
}

func TestChooseSequentialCases(t *testing.T) {
	g := Geometry{GOPs: 4, Pictures: 40, TotalBytes: 1 << 20,
		GOPBytes: []int64{1 << 18, 1 << 18, 1 << 18, 1 << 18}}
	if c := Choose(g, 1, nil); c.Mode != HintSequential || c.Workers != 1 {
		t.Fatalf("one worker: got %+v", c)
	}
	short := Geometry{GOPs: 1, Pictures: 2, TotalBytes: 4096, GOPBytes: []int64{4096}}
	if c := Choose(short, 8, nil); c.Mode != HintSequential {
		t.Fatalf("2-picture stream: got %+v", c)
	}
	if c := Choose(Geometry{}, 8, nil); c.Mode != HintSequential {
		t.Fatalf("empty workload: got %+v", c)
	}
	// A single GOP with a single slice per picture has no parallelism
	// either way.
	flat := Geometry{GOPs: 1, Pictures: 8, TotalBytes: 8000,
		GOPBytes:   []int64{8000},
		SliceBytes: [][]int64{{1000}, {1000}, {1000}, {1000}, {1000}, {1000}, {1000}, {1000}}}
	if c := Choose(flat, 8, nil); c.Mode != HintSequential {
		t.Fatalf("no-parallelism stream: got %+v", c)
	}
}

func TestChooseBalancedGOPsPicksParallel(t *testing.T) {
	gops := make([]int64, 12)
	var pics [][]int64
	for i := range gops {
		gops[i] = 100_000
		for p := 0; p < 12; p++ {
			pics = append(pics, []int64{700, 700, 700, 700, 700, 700, 700, 700, 700, 700})
		}
	}
	g := Geometry{GOPs: 12, Pictures: 144, TotalBytes: 1_200_000,
		GOPBytes: gops, SliceBytes: pics}
	c := Choose(g, 4, nil)
	if c.Mode == HintSequential || c.Workers < 2 {
		t.Fatalf("balanced 12-GOP stream at 4 workers: got %+v", c)
	}
	if c.Reason == "" {
		t.Fatal("choice must carry a reason")
	}
}

func TestChooseSkewedGOPsPrefersSlices(t *testing.T) {
	// One GOP dwarfs the rest: GOP-grain cannot balance, slice grain can.
	gops := []int64{1_000_000, 10_000, 10_000, 10_000}
	var pics [][]int64
	for p := 0; p < 40; p++ {
		row := make([]int64, 16)
		for s := range row {
			row[s] = 1600
		}
		pics = append(pics, row)
	}
	g := Geometry{GOPs: 4, Pictures: 40, TotalBytes: 1_030_000,
		GOPBytes: gops, SliceBytes: pics}
	c := Choose(g, 8, nil)
	if c.Mode != HintSlice {
		t.Fatalf("skewed GOPs must choose slice grain: got %+v", c)
	}
}

func TestChooseEfficiencyKnee(t *testing.T) {
	// Two equal GOPs: two workers already reach the best GOP-grain
	// speedup; slice detail absent. More workers must not be chosen.
	g := Geometry{GOPs: 2, Pictures: 24, TotalBytes: 200_000,
		GOPBytes: []int64{100_000, 100_000}}
	c := Choose(g, 16, nil)
	if c.Mode != HintGOP || c.Workers != 2 {
		t.Fatalf("two equal GOPs: want gop x2, got %+v", c)
	}
}

func TestChooseReasonUsesModel(t *testing.T) {
	var m CostModel
	m.Observe(1000, time.Millisecond)
	g := Geometry{GOPs: 4, Pictures: 48, TotalBytes: 400_000,
		GOPBytes: []int64{100_000, 100_000, 100_000, 100_000}}
	c := Choose(g, 4, &m)
	if c.Mode == HintSequential {
		t.Fatalf("got %+v", c)
	}
	if c.Reason == "" {
		t.Fatal("want a reason mentioning predicted time")
	}
}

// TestCostModelColdStart pins the cold-start contract the scheduling
// and slack layers depend on: a model below the calibration floor
// reports Calibrated() false and predicts 0 — "cost unknown", which
// every consumer must treat as "be conservative", never as "free".
func TestCostModelColdStart(t *testing.T) {
	var m CostModel
	for i := 0; i < 3; i++ {
		if m.Calibrated() {
			t.Fatalf("calibrated after %d observations, floor is 3", i)
		}
		m.Observe(1000, 2*time.Microsecond)
	}
	if !m.Calibrated() {
		t.Fatal("not calibrated after 3 observations")
	}
	if m.Predict(1000) == 0 {
		t.Fatal("calibrated model must predict nonzero for nonzero bytes")
	}
	var nilModel *CostModel
	if nilModel.Calibrated() {
		t.Fatal("nil model must report uncalibrated")
	}
}

// TestChooseReasonGatedOnCalibration: a single noisy observation must
// not phrase an absolute-time estimate into the reason string — the
// suffix appears only once the model passes the calibration floor.
func TestChooseReasonGatedOnCalibration(t *testing.T) {
	g := Geometry{GOPs: 4, Pictures: 48, TotalBytes: 400_000,
		GOPBytes: []int64{100_000, 100_000, 100_000, 100_000}}
	var m CostModel
	m.Observe(1000, time.Millisecond) // one observation: below the floor
	if c := Choose(g, 4, &m); strings.Contains(c.Reason, "sequential)") {
		t.Fatalf("uncalibrated model quoted a time estimate: %q", c.Reason)
	}
	for i := 0; i < 3; i++ {
		m.Observe(1000, time.Millisecond)
	}
	if c := Choose(g, 4, &m); !strings.Contains(c.Reason, "sequential)") {
		t.Fatalf("calibrated model quoted no time estimate: %q", c.Reason)
	}
}

func TestTunerStepsDownOnStarvation(t *testing.T) {
	tu := NewTuner(4, 8)
	for i := 0; i < 3; i++ {
		tu.NoteTask(1 * time.Millisecond)
		tu.NoteWait(9 * time.Millisecond)
		lim, changed := tu.Reevaluate()
		if !changed || lim != 3-i {
			t.Fatalf("step %d: limit %d changed=%v, want %d", i, lim, changed, 3-i)
		}
	}
	// Never below one worker.
	for i := 0; i < 5; i++ {
		tu.NoteTask(1 * time.Millisecond)
		tu.NoteWait(9 * time.Millisecond)
		tu.Reevaluate()
	}
	if tu.Limit() < 1 {
		t.Fatalf("limit %d fell below 1", tu.Limit())
	}
}

func TestTunerStepsUpWhenSaturated(t *testing.T) {
	tu := NewTuner(2, 4)
	for i := 0; i < 4; i++ {
		tu.NoteTask(10 * time.Millisecond)
		tu.Reevaluate()
	}
	if tu.Limit() != 4 {
		t.Fatalf("limit %d, want ceiling 4", tu.Limit())
	}
}

func TestTunerDeadBandAndMinWindow(t *testing.T) {
	tu := NewTuner(3, 8)
	// Mid utilization: inside the dead band, no movement.
	tu.NoteTask(7 * time.Millisecond)
	tu.NoteWait(3 * time.Millisecond)
	if lim, changed := tu.Reevaluate(); changed || lim != 3 {
		t.Fatalf("dead band moved the limit: %d changed=%v", lim, changed)
	}
	// Window too small to decide.
	tu.NoteTask(10 * time.Microsecond)
	tu.NoteWait(90 * time.Microsecond)
	if _, changed := tu.Reevaluate(); changed {
		t.Fatal("sub-minimum window must not move the limit")
	}
	// The tiny window was still consumed.
	tu.NoteTask(time.Millisecond)
	tu.NoteWait(9 * time.Millisecond)
	if lim, _ := tu.Reevaluate(); lim != 2 {
		t.Fatalf("limit %d, want 2", lim)
	}
}

func TestNewTunerClamps(t *testing.T) {
	if tu := NewTuner(0, 0); tu.Limit() != 1 || tu.Max() != 1 {
		t.Fatalf("got limit %d max %d", tu.Limit(), tu.Max())
	}
	if tu := NewTuner(9, 4); tu.Limit() != 4 {
		t.Fatalf("initial above max: limit %d", tu.Limit())
	}
}
