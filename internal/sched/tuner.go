package sched

import (
	"sync/atomic"
	"time"
)

// Tuner adapts the active worker count of a running decode online. The
// workers feed it the same busy/wait signal the observability layer
// records (task spans and queue/barrier waits); at each group-of-pictures
// boundary the scan process calls Reevaluate, which inspects the window
// of time since the previous boundary and moves the limit one step:
//
//   - utilization below lowWater: workers are starving — the stream has
//     less parallelism than workers, so park one (cutting the
//     synchronization overhead of the paper's Figure 7);
//   - utilization above highWater with headroom: the workload can use
//     another worker, wake one.
//
// The limit moves one worker per boundary, so a single anomalous group
// cannot swing the pool; the decision signal is exactly the utilization
// quantity Timeline.Summary derives after the fact.
//
// NoteTask/NoteWait are lock-free atomic adds, safe from any worker;
// Reevaluate must be called from a single goroutine (the scan process).
type Tuner struct {
	max   int
	limit atomic.Int32
	busy  atomic.Int64 // ns decoding since the last Reevaluate
	wait  atomic.Int64 // ns blocked since the last Reevaluate
}

// Tuner thresholds. The dead band between them keeps the limit stable
// on well-balanced workloads.
const (
	lowWater  = 0.55
	highWater = 0.90
	// minWindow is the least accounted time a window must hold before a
	// decision is made; tiny groups carry too little signal.
	minWindow = 200 * time.Microsecond
)

// NewTuner returns a tuner starting at the given active-worker limit,
// never exceeding max. initial is clamped into [1, max].
func NewTuner(initial, max int) *Tuner {
	if max < 1 {
		max = 1
	}
	if initial < 1 {
		initial = 1
	}
	if initial > max {
		initial = max
	}
	t := &Tuner{max: max}
	t.limit.Store(int32(initial))
	return t
}

// Limit returns the current active-worker limit.
func (t *Tuner) Limit() int { return int(t.limit.Load()) }

// Max returns the worker-count ceiling.
func (t *Tuner) Max() int { return t.max }

// NoteTask records time a worker spent decoding.
func (t *Tuner) NoteTask(d time.Duration) {
	if t != nil && d > 0 {
		t.busy.Add(int64(d))
	}
}

// NoteWait records time a worker spent blocked on the task queue or a
// barrier.
func (t *Tuner) NoteWait(d time.Duration) {
	if t != nil && d > 0 {
		t.wait.Add(int64(d))
	}
}

// Reevaluate closes the observation window and moves the limit at most
// one step. It returns the (possibly unchanged) limit and whether it
// changed.
func (t *Tuner) Reevaluate() (limit int, changed bool) {
	b := t.busy.Swap(0)
	w := t.wait.Swap(0)
	limit = int(t.limit.Load())
	if b+w < int64(minWindow) {
		return limit, false
	}
	util := float64(b) / float64(b+w)
	switch {
	case util < lowWater && limit > 1:
		limit--
	case util > highWater && limit < t.max:
		limit++
	default:
		return limit, false
	}
	t.limit.Store(int32(limit))
	return limit, true
}
