package server_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/sched"
	"mpeg2par/internal/server"
)

// slowModel returns a calibrated cost model that prices every byte at
// one microsecond — absurdly slow, so every deadline-bearing frame is
// predicted doomed the moment it is fed.
func slowModel() *sched.CostModel {
	m := &sched.CostModel{}
	for i := 0; i < 4; i++ {
		m.Observe(1000, time.Millisecond)
	}
	return m
}

// TestSlackShedDisjointFromMisses is the accounting half of the bugfix
// sweep: with a cost model that predicts every frame doomed and a
// deadline nothing can make, the slack planner sheds B and reference
// pictures at plan time, the surviving anchors are all delivered late —
// and the two ledgers stay disjoint: misses count exactly the
// non-shed survivors, never the shed frames, and none of it leaks into
// the error stats.
func TestSlackShedDisjointFromMisses(t *testing.T) {
	data := testStream(t, 96, 64, 16, 4)
	srv := server.NewServer(server.Config{
		Workers: 1, DisableAutoDegrade: true, Cost: slowModel(),
	})
	defer srv.Close()

	ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
		Resilience: core.ConcealSlice, MaxInFlight: 1,
		Deadline: time.Nanosecond, // nothing delivers in a nanosecond
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ss.Stats
	if st.Errors.Any() {
		t.Fatalf("slack shedding leaked into error stats: %+v", st.Errors)
	}
	shed := st.Shed.Total()
	if ss.SlackShedPictures == 0 || ss.SlackShedPictures != shed {
		t.Fatalf("slack shed %d pictures, total shed %d — ladder is off, they must match and be nonzero",
			ss.SlackShedPictures, shed)
	}
	if st.Displayed != st.Pictures {
		t.Fatalf("displayed %d of %d", st.Displayed, st.Pictures)
	}
	// Every non-shed frame was delivered past the nanosecond deadline;
	// every shed frame is excluded. Exact disjointness:
	if want := st.Pictures - shed; ss.DeadlineMisses != want {
		t.Fatalf("misses %d, want %d (pictures %d − shed %d): shed frames must not count as misses",
			ss.DeadlineMisses, want, st.Pictures, shed)
	}
	m := srv.Metrics()
	if m.SlackSheds != int64(ss.SlackShedPictures) || m.Misses != int64(ss.DeadlineMisses) {
		t.Fatalf("server metrics (sheds %d, misses %d) disagree with stream stats (%d, %d)",
			m.SlackSheds, m.Misses, ss.SlackShedPictures, ss.DeadlineMisses)
	}
}

// TestUndeliveredMissesCountedOnCancel is the undercount half: a
// cancelled deadline stream used to vanish from the miss statistics —
// frames fed but never delivered got no verdict at all. Teardown now
// settles them: any non-shed frame already past its deadline is a miss.
func TestUndeliveredMissesCountedOnCancel(t *testing.T) {
	data := testStream(t, 96, 64, 24, 4)
	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{Workers: 1, DisableAutoDegrade: true})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		// Wedge confirmed → wait out several deadlines so the frames fed
		// behind the wedge are unambiguously expired, then cancel.
		<-started
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	ss, err := srv.Decode(ctx, bytes.NewReader(data), server.StreamConfig{
		Resilience: core.ConcealSlice, MaxInFlight: 2,
		Deadline: time.Millisecond,
		Sink: func(f *frame.Frame) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			<-ctx.Done() // wedge delivery until the caller cancels
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ss.DeadlineMisses == 0 {
		t.Fatal("cancelled stream reported zero misses: fed-but-undelivered frames past deadline were not settled")
	}
	if ss.Stats != nil && ss.Stats.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", ss.Stats.LeakedFrameBytes)
	}
	srv.Close()
	waitGoroutines(t, base)
}

// TestEDFBitExactCleanAndFaulted: dispatch order is a scheduling
// decision, never a pixel decision. Streams decoded under EDF with
// deadlines generous enough that no slack action fires must reproduce
// the sequential oracle bit for bit — on clean and on damaged bytes,
// with identical error accounting.
func TestEDFBitExactCleanAndFaulted(t *testing.T) {
	clean := testStream(t, 96, 64, 12, 4)
	sp, err := faults.Parse("burst:count=2,len=24")
	if err != nil {
		t.Fatal(err)
	}
	faulted, _ := sp.Apply(clean, 7)

	for _, tc := range []struct {
		name string
		data []byte
	}{{"clean", clean}, {"faulted", faulted}} {
		t.Run(tc.name, func(t *testing.T) {
			refSt, refFrames := seqOracle(t, tc.data, core.ConcealSlice)
			srv := server.NewServer(server.Config{
				Workers: 2, DisableAutoDegrade: true, Dispatch: server.DispatchEDF,
			})
			defer srv.Close()

			const n = 4
			type result struct {
				ss     *server.StreamStats
				frames []*frame.Frame
				err    error
			}
			results := make(chan result, n)
			for i := 0; i < n; i++ {
				go func() {
					var sink collectSink
					ss, err := srv.Decode(context.Background(), bytes.NewReader(tc.data), server.StreamConfig{
						Resilience: core.ConcealSlice, MaxInFlight: 2,
						Deadline: 10 * time.Second, // generous: EDF order, no slack pressure
						Sink:     sink.add,
					})
					results <- result{ss, sink.frames, err}
				}()
			}
			for i := 0; i < n; i++ {
				r := <-results
				if r.err != nil {
					t.Fatal(r.err)
				}
				if r.ss.Stats.Shed.Any() {
					t.Fatalf("generous deadline shed pictures: %+v", r.ss.Stats.Shed)
				}
				if r.ss.Stats.Errors != refSt.Errors {
					t.Fatalf("errors %+v, oracle %+v", r.ss.Stats.Errors, refSt.Errors)
				}
				if len(r.frames) != len(refFrames) {
					t.Fatalf("%d frames, oracle %d", len(r.frames), len(refFrames))
				}
				for j := range refFrames {
					if !r.frames[j].Equal(refFrames[j]) {
						t.Fatalf("frame %d differs from sequential oracle under EDF", j)
					}
				}
			}
		})
	}
}

// TestEDFNoStarvationAtTopRung extends PR 8's anti-livelock guarantee
// to the EDF order: with the ladder held at the top rung, a stream
// resumed from a pause is owed one completed task even while a
// deadline-bearing stream would win every EDF comparison. Without the
// mustServe tier in pickEDFLocked, the low-priority stream gets zero
// service until the overload ends.
func TestEDFNoStarvationAtTopRung(t *testing.T) {
	loData := testStream(t, 48, 32, 32, 4)
	hiData := testStream(t, 48, 32, 256, 4)
	srv := server.NewServer(server.Config{
		Workers: 1, Dispatch: server.DispatchEDF,
		Tick: time.Millisecond, Dwell: 2 * time.Millisecond,
		HighWater: 0.5, LowWater: 0.25,
		PauseBase: 5 * time.Millisecond, PauseMax: 20 * time.Millisecond,
	})
	defer srv.Close()

	type result struct {
		ss  *server.StreamStats
		err error
	}
	var hiDone atomic.Bool
	hiC := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(hiData), server.StreamConfig{
			Priority: 1, MaxInFlight: 2,
			Deadline: 5 * time.Millisecond, // real deadline: EDF always prefers this stream
			Sink:     func(f *frame.Frame) { time.Sleep(2 * time.Millisecond) },
		})
		hiDone.Store(true)
		hiC <- result{ss, err}
	}()
	loC := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(loData), server.StreamConfig{
			Priority: 0, MaxInFlight: 2,
			Sink: func(f *frame.Frame) { time.Sleep(time.Millisecond) },
		})
		loC <- result{ss, err}
	}()

	rlo := <-loC
	hiStillRunning := !hiDone.Load()
	rhi := <-hiC
	if rlo.err != nil || rhi.err != nil {
		t.Fatalf("lo=%v hi=%v", rlo.err, rhi.err)
	}
	if rlo.ss.Paused == 0 {
		t.Fatal("ladder never paused the low-priority stream — overload did not reach the top rung")
	}
	if rlo.ss.Stats.Displayed != rlo.ss.Stats.Pictures {
		t.Fatalf("low stream displayed %d of %d", rlo.ss.Stats.Displayed, rlo.ss.Stats.Pictures)
	}
	if !hiStillRunning {
		t.Fatal("low stream starved under EDF: it only finished after the high stream's overload ended")
	}
}

// TestAssistOnTightSlack: a tight-but-makeable frame on an indexed
// stream fans its tall slices out across idle workers at dispatch —
// the assist fires (Metrics.Assists, Split.SlicesSplit) and the output
// is still bit-exact against the sequential oracle.
func TestAssistOnTightSlack(t *testing.T) {
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 96, Height: 64, Pictures: 16, GOPSize: 4,
		RepeatSequenceHeader: true,
		RowsPerSlice:         (64 + 15) / 16, // tall slices: the split geometry
	}, frame.NewSynth(96, 64))
	if err != nil {
		t.Fatal(err)
	}
	data := res.Data
	m, err := core.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndexScanned(data, m)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Slices() == 0 {
		t.Fatal("index covered no slices on a tall-slice stream")
	}
	// A synthetic model priced far above any real decode rate — 10µs per
	// byte — keeps the classification deterministic under host load: the
	// in-run observations the session folds back are orders of magnitude
	// cheaper, so the EWMA only ever decays. Costs that only shrink can
	// turn a tight unit comfortable (no assist, harmless) but never
	// doomed (a shed would break the bit-exactness assertion).
	model := &sched.CostModel{}
	for i := 0; i < 4; i++ {
		model.Observe(1000, 10*time.Millisecond)
	}

	// Pick a deadline the first unit classifies as tight: at least the
	// priciest GOP's predicted cost (no unit doomed even before any
	// decay), at most twice the cheapest's (within the slack<=cost
	// window). With MaxInFlight 1 the queue-delay term is exactly zero
	// at each feed.
	minB, maxB := int64(1<<62), int64(0)
	for _, g := range m.GOPs {
		b := int64(g.End - g.Offset)
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	deadline := 2 * model.Predict(minB)
	if deadline < model.Predict(maxB) {
		t.Fatalf("GOP sizes too skewed for one tight deadline: min %d max %d bytes", minB, maxB)
	}

	_, refFrames := seqOracle(t, data, core.ConcealSlice)
	srv := server.NewServer(server.Config{
		Workers: 4, DisableAutoDegrade: true, Cost: model,
	})
	defer srv.Close()

	var sink collectSink
	ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
		Resilience: core.ConcealSlice, MaxInFlight: 1,
		Deadline: deadline,
		Index:    ix,
		Sink:     sink.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Stats.Shed.Any() {
		t.Fatalf("tight (not doomed) slack shed pictures: %+v", ss.Stats.Shed)
	}
	if got := srv.Metrics().Assists; got == 0 {
		t.Fatal("no task was granted assist despite tight slack, an index, and three idle workers")
	}
	if ss.Stats.Split.SlicesSplit == 0 {
		t.Fatalf("assist granted but no slice was split: %+v", ss.Stats.Split)
	}
	if len(sink.frames) != len(refFrames) {
		t.Fatalf("%d frames, oracle %d", len(sink.frames), len(refFrames))
	}
	for i := range refFrames {
		if !sink.frames[i].Equal(refFrames[i]) {
			t.Fatalf("frame %d differs from sequential oracle under assist", i)
		}
	}
}
