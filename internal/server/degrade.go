package server

import (
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/obs"
)

// The degradation ladder. Each rung subsumes the ones below it; the
// monitor climbs one rung per Dwell while overloaded and descends one
// per Dwell once the pressure clears.
const (
	// rungNormal: full decode for every stream.
	rungNormal = 0
	// rungShedB: every stream sheds B pictures (substituted from the
	// nearest reference at plan time; survivors stay bit-identical).
	rungShedB = 1
	// rungShedRef: P pictures shed too — only intra anchors decode —
	// and every stream's resilience is floored at conceal-picture so
	// damage keeps streams alive instead of failing them.
	rungShedRef = 2
	// rungReject: additionally, the lowest-priority class is paused
	// with bounded backoff and new streams are rejected outright.
	rungReject = 3
)

// applyRung pushes one rung's shed/degrade settings into a session.
// Called with s.mu held (rung moves and stream registration serialize
// on it); takes effect at the stream's next planned unit.
func applyRung(st *stream, rung int) {
	switch {
	case rung >= rungShedRef:
		st.sess.SetShed(core.ShedRef)
		st.sess.SetDegraded(true)
	case rung == rungShedB:
		st.sess.SetShed(core.ShedB)
		st.sess.SetDegraded(false)
	default:
		st.sess.SetShed(core.ShedNone)
		st.sess.SetDegraded(false)
	}
}

// SetDegradation forces the ladder to a rung (clamped to 0..3) — the
// deterministic control the forced-degradation tests and the harness
// use, typically with Config.DisableAutoDegrade. Safe at any time; the
// monitor keeps adjusting from the new position unless auto-degrade is
// off.
func (s *Server) SetDegradation(rung int) {
	if rung < rungNormal {
		rung = rungNormal
	}
	if rung > rungReject {
		rung = rungReject
	}
	s.mu.Lock()
	s.setRungLocked(rung, time.Now())
	s.mu.Unlock()
	s.cond.Broadcast()
}

// setRungLocked moves the ladder and applies the new rung to every
// admitted stream, recording a KindDegrade event on each stream's lane.
func (s *Server) setRungLocked(rung int, now time.Time) {
	if rung == s.rung {
		return
	}
	s.rung = rung
	s.lastMove = now
	for _, st := range s.streams {
		applyRung(st, rung)
		s.obs.Record(obs.KindDegrade, st.lane, now, 0, -1, -1, rung)
	}
	if rung < rungReject {
		// Leaving the pause rung: release everyone immediately and let
		// the backoff exponents heal.
		for _, st := range s.streams {
			if st.paused {
				s.resumeLocked(st, now)
			}
			st.pauseExp = 0
		}
	}
}

// monitor is the overload controller: a periodic tick that expires
// pauses, runs the watchdog, and (unless frozen) moves the ladder from
// two observed signals — queued tasks per worker, and the
// deadline-miss rate EWMA.
func (s *Server) monitor() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-s.stopMon:
			return
		case now := <-tick.C:
			s.tick(now)
		}
	}
}

func (s *Server) tick(now time.Time) {
	// Miss-rate EWMA over this tick's displays.
	disp, miss := s.displays.Load(), s.misses.Load()
	dd, dm := disp-s.seenDisp, miss-s.seenMiss
	s.seenDisp, s.seenMiss = disp, miss

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if dd > 0 {
		rate := float64(dm) / float64(dd)
		s.missEWMA += 0.3 * (rate - s.missEWMA)
	}

	// Pause expiry and watchdog.
	pausedPending := 0
	for _, st := range s.streams {
		if st.paused {
			if now.After(st.pauseUntil) {
				s.resumeLocked(st, now)
			} else {
				pausedPending += len(st.pending)
			}
			continue
		}
		if s.cfg.Watchdog > 0 && (len(st.pending) > 0 || st.inFlight > 0) &&
			now.Sub(st.progress()) > s.cfg.Watchdog && st.sess.Err() == nil {
			s.wedged.Add(1)
			st.fail(ErrWedged)
		}
	}

	// Ladder moves. Paused streams' queued tasks are held, not offered
	// load — counting them would keep the ladder pinned at the top rung
	// for as long as anyone stays paused, so only runnable backlog feeds
	// the signal.
	if !s.cfg.DisableAutoDegrade {
		load := float64(s.backlog-pausedPending) / float64(s.cfg.Workers)
		hot := load > s.cfg.HighWater || s.missEWMA > s.cfg.MissHigh
		cold := load < s.cfg.LowWater && s.missEWMA < s.cfg.MissLow
		if now.Sub(s.lastMove) >= s.cfg.Dwell {
			switch {
			case hot && s.rung < rungReject:
				s.setRungLocked(s.rung+1, now)
			case cold && s.rung > rungNormal:
				s.setRungLocked(s.rung-1, now)
			}
		}
	}
	if s.rung >= rungReject {
		s.pauseLowestLocked(now)
	}
	s.mu.Unlock()
	// Wake workers: resumed streams' queues are runnable again, and a
	// drained-but-parked worker re-checks the exit condition.
	s.cond.Broadcast()
}

// pauseLowestLocked pauses every unpaused stream of the lowest priority
// class — but only when more than one class is present: with a single
// class there is nobody to yield to, and pausing everyone would only
// add idle gaps. Each pause episode doubles the stream's backoff
// (capped), so a stream re-paused under sustained overload still
// resumes on a bounded schedule — re-admission is guaranteed, never
// starved. A stream that has not completed a task since its last
// resume (mustServe) is exempt: without that window, a pause expiring
// in the same tick that stays at the top rung would re-pause the
// stream before any worker could pick its tasks, and the lowest class
// would see zero service for as long as the overload lasts.
func (s *Server) pauseLowestLocked(now time.Time) {
	lo, hi := -1, -1
	for _, st := range s.streams {
		if st.sess.Err() != nil {
			continue
		}
		if lo < 0 || st.prio < lo {
			lo = st.prio
		}
		if st.prio > hi {
			hi = st.prio
		}
	}
	if lo < 0 || lo == hi {
		return
	}
	for _, st := range s.streams {
		if st.prio != lo || st.paused || st.mustServe || st.sess.Err() != nil {
			continue
		}
		backoff := s.cfg.PauseBase << st.pauseExp
		if backoff > s.cfg.PauseMax || backoff <= 0 {
			backoff = s.cfg.PauseMax
		}
		if st.pauseExp < 30 {
			st.pauseExp++
		}
		st.paused = true
		st.pauseUntil = now.Add(backoff)
		st.pausedCount++
		s.pauses.Add(1)
		s.obs.Record(obs.KindPause, st.lane, now, backoff, -1, -1, s.rung)
	}
}

// resumeLocked lifts one stream's pause and restarts its progress
// clock (paused time must not count against the watchdog). The stream
// is owed one completed task (mustServe) before it may be paused
// again — the guaranteed service window that keeps bounded backoff an
// actual progress bound rather than a pause/resume livelock.
func (s *Server) resumeLocked(st *stream, now time.Time) {
	st.paused = false
	st.mustServe = true
	st.touch()
	s.obs.Record(obs.KindResume, st.lane, now, 0, -1, -1, s.rung)
}
