package server

import (
	"fmt"
	"runtime"
	"time"

	"mpeg2par/internal/core"
)

// Deadline-aware dispatch. PR 8's pool ordered tasks by weighted fair
// share alone — correct for throughput fairness, blind to the fact
// that some streams carry per-frame latency budgets the cost model can
// already price at feed time. This file adds the two halves of the
// deadline story:
//
//   - EDF dispatch: each queued task carries an absolute deadline (feed
//     time + the stream's Deadline; best-effort tasks get feed time +
//     BestEffortLag as a virtual one) and the pool runs the earliest
//     effective deadline first within priority bands. When no admitted
//     stream has a deadline the pool falls back to the exact weighted
//     fair order, byte for byte.
//
//   - Slack actions at feed time: predicted slack = deadline − queue
//     delay − predicted cost. A frame with negative slack is already
//     doomed, so its unit sheds B (or, if that can't close the gap,
//     reference) pictures at plan time — one stream's frame, before the
//     global ladder would have escalated everyone. A frame with
//     positive-but-tight slack on an indexed stream becomes an assist
//     candidate: at dispatch, if workers are idle, the task fans its
//     tall slices out as parallel row segments (core's split chain,
//     bit-exact by construction).
//
// Both halves stand down while the cost model is uncalibrated
// (sched.CostModel.Calibrated): an unknown cost must read as "be
// conservative", never as "free".

// DispatchPolicy selects the pool's task ordering.
type DispatchPolicy int

const (
	// DispatchAuto (the default) runs EDF while any admitted stream has
	// a frame deadline and weighted fair otherwise.
	DispatchAuto DispatchPolicy = iota
	// DispatchFair always runs the weighted fair order (PR 8 behavior) —
	// the baseline arm of the deadline benchmarks.
	DispatchFair
	// DispatchEDF always runs earliest-effective-deadline-first, giving
	// best-effort streams virtual deadlines of feed time + BestEffortLag.
	DispatchEDF
)

func (d DispatchPolicy) String() string {
	switch d {
	case DispatchFair:
		return "fair"
	case DispatchEDF:
		return "edf"
	}
	return "auto"
}

// ParseDispatch maps the CLI spelling to a policy.
func ParseDispatch(s string) (DispatchPolicy, error) {
	switch s {
	case "", "auto":
		return DispatchAuto, nil
	case "fair":
		return DispatchFair, nil
	case "edf":
		return DispatchEDF, nil
	}
	return DispatchAuto, fmt.Errorf("server: unknown dispatch policy %q (want auto, fair, or edf)", s)
}

// edfActiveLocked reports whether the pool should order by deadline
// right now. Under DispatchAuto that is "any admitted stream has one":
// tracked as a count on register/unregister so the per-pick cost stays
// O(1).
func (s *Server) edfActiveLocked() bool {
	switch s.cfg.Dispatch {
	case DispatchFair:
		return false
	case DispatchEDF:
		return true
	}
	return s.nDeadline > 0
}

// effDeadline is a queued task's EDF key: its real absolute deadline,
// or the virtual one a best-effort task ages under (enqueue time +
// BestEffortLag — so best-effort work is late-but-never-last and keeps
// flowing even while deadline streams dominate).
func (tk *task) effDeadline(lag time.Duration) time.Time {
	if !tk.deadline.IsZero() {
		return tk.deadline
	}
	return tk.enq.Add(lag)
}

// pickEDFLocked returns the next task in deadline order, or nil. Three
// tiers, highest first:
//
//  1. mustServe: a stream just resumed from a rung-3 pause is owed one
//     completed task before anything else — the PR 8 anti-livelock
//     guarantee, extended to this dispatch order (EDF would otherwise
//     keep selecting a deadline-bearing stream forever and re-starve
//     the resumed one; the regression test pins it at rung 3).
//  2. Starvation guard: the head task waiting longest, once past
//     StarveWindow, runs regardless of band or deadline.
//  3. EDF: highest priority band first, earliest effective deadline
//     within the band, stream id as the deterministic tiebreak.
//
// Paused streams are skipped unless failed (teardown drain), exactly
// like the fair path.
func (s *Server) pickEDFLocked(now time.Time) *task {
	var (
		must     *stream
		mustKey  float64
		starve   *stream
		edf      *stream
		edfDl    time.Time
		starveAt time.Time
	)
	for _, st := range s.streams {
		if len(st.pending) == 0 {
			continue
		}
		if st.paused && st.sess.Err() == nil {
			continue
		}
		if st.mustServe {
			key := st.served / st.weight
			if must == nil || key < mustKey || (key == mustKey && st.id < must.id) {
				must, mustKey = st, key
			}
		}
		head := st.pending[0]
		if now.Sub(head.enq) > s.cfg.StarveWindow {
			if starve == nil || head.enq.Before(starveAt) || (head.enq.Equal(starveAt) && st.id < starve.id) {
				starve, starveAt = st, head.enq
			}
		}
		dl := head.effDeadline(s.cfg.BestEffortLag)
		if edf == nil {
			edf, edfDl = st, dl
			continue
		}
		switch {
		case st.prio != edf.prio:
			if st.prio > edf.prio {
				edf, edfDl = st, dl
			}
		case dl.Before(edfDl), dl.Equal(edfDl) && st.id < edf.id:
			edf, edfDl = st, dl
		}
	}
	best := edf
	if starve != nil {
		best = starve
	}
	if must != nil {
		best = must
	}
	if best == nil {
		return nil
	}
	return s.takeLocked(best)
}

// takeLocked pops a stream's head task and settles the queue gauges.
func (s *Server) takeLocked(st *stream) *task {
	tk := st.pending[0]
	st.pending = st.pending[1:]
	s.backlog--
	s.pendingCost -= tk.cost
	if s.pendingCost < 0 {
		s.pendingCost = 0
	}
	return tk
}

// queueDelayLocked estimates how long a newly fed task waits before a
// worker starts it: the queued predicted cost spread across the pool.
// An approximation — EDF may run the new task earlier or later than
// FIFO would — but it is the same one the paper's admission math uses,
// and the slack histograms report how well it tracks reality.
//
// The divisor is the pool's *effective* parallelism: workers beyond
// GOMAXPROCS time-slice one another instead of draining the queue
// faster, so dividing by the configured count would understate the wait
// by exactly that oversubscription factor — and a slack predictor that
// understates wait sheds too little, too late.
func (s *Server) queueDelayLocked() time.Duration {
	w := s.cfg.Workers
	if p := runtime.GOMAXPROCS(0); p < w {
		w = p
	}
	return time.Duration(int64(s.pendingCost) / int64(w))
}

// classifySlack turns one unit's predicted slack into an action.
// slack = deadline − wait − cost; bSave / refSave are the predicted
// decode time shedding B / B+P pictures would buy back.
//
//   - slack < 0: the frame is doomed as planned. Shed B pictures if
//     that closes the gap, otherwise shed references too (even when
//     anchors alone still miss, it is the closest the plan can get and
//     the survivors stay bit-exact).
//   - 0 ≤ slack ≤ cost on an indexed stream: tight — one worker will
//     barely make it, so mark the task an assist (split fan-out)
//     candidate for dispatch to act on if workers are idle.
func classifySlack(deadline, wait, cost, bSave, refSave time.Duration, indexed bool) (floor core.ShedLevel, tight bool) {
	slack := deadline - wait - cost
	switch {
	case slack < 0:
		if deadline-wait-(cost-bSave) >= 0 {
			return core.ShedB, false
		}
		return core.ShedRef, false
	case slack <= cost && indexed:
		return core.ShedNone, true
	}
	return core.ShedNone, false
}

// slackPlan is one unit's feed-time slack verdict.
type slackPlan struct {
	floor  core.ShedLevel // per-unit plan-time shed floor
	cost   time.Duration  // predicted decode cost (0 = model uncalibrated)
	pred   time.Duration  // predicted slack (valid when known)
	known  bool           // deadline set and model calibrated
	tight  bool           // assist candidate
	action int            // obs.KindSlack action code: 0 none, 1 shed B, 2 shed refs, 3 assist
}

// planSlack prices one unit about to be fed: predicted cost from the
// calibrated model, queue delay from the pool's pending-cost gauge, and
// the action classifySlack picks. With slack actions disabled the
// prediction is still made (the histograms and bench arms want it) but
// no action is taken. Uncalibrated or best-effort: everything stands
// down — unknown cost is not free cost.
func (s *Server) planSlack(st *stream, u *core.Unit) slackPlan {
	var sp slackPlan
	sp.cost = s.cost.Predict(int64(len(u.Data)))
	if st.deadline <= 0 || !s.cost.Calibrated() {
		return sp
	}
	s.mu.Lock()
	wait := s.queueDelayLocked()
	s.mu.Unlock()
	sp.pred = st.deadline - wait - sp.cost
	sp.known = true
	if s.cfg.DisableSlackActions {
		return sp
	}
	bSave := s.cost.Predict(u.ShedSavings(core.ShedB))
	refSave := s.cost.Predict(u.ShedSavings(core.ShedRef))
	sp.floor, sp.tight = classifySlack(st.deadline, wait, sp.cost, bSave, refSave, st.index != nil)
	switch {
	case sp.floor == core.ShedB:
		sp.action = 1
	case sp.floor == core.ShedRef:
		sp.action = 2
	case sp.tight:
		sp.action = 3
	}
	return sp
}

// slackBucketsMS are the SlackHist bucket upper bounds in milliseconds
// (exclusive); the last bucket is open-ended. Negative slack — a missed
// prediction or delivery — lands in the first buckets.
var slackBucketsMS = [...]int{-100, -50, -20, -10, 0, 10, 20, 50, 100, 250}

// SlackHist is a fixed-bucket histogram of slack durations (predicted
// at feed, or actual at delivery: deadline − latency). Bucket i counts
// samples < slackBucketsMS[i] (and ≥ the previous bound); the final
// bucket counts everything ≥ 250ms.
type SlackHist struct {
	Counts [len(slackBucketsMS) + 1]int64
}

// Add files one slack sample.
func (h *SlackHist) Add(d time.Duration) {
	ms := d.Milliseconds()
	for i, ub := range slackBucketsMS {
		if ms < int64(ub) {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(slackBucketsMS)]++
}

// Total returns the sample count.
func (h *SlackHist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Negative returns how many samples had negative slack (a predicted or
// actual deadline miss).
func (h *SlackHist) Negative() int64 {
	var n int64
	for i, ub := range slackBucketsMS {
		if ub <= 0 {
			n += h.Counts[i]
		}
	}
	return n
}

// Merge accumulates o into h.
func (h *SlackHist) Merge(o *SlackHist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// String renders the non-empty buckets compactly, e.g.
// "[-10,0)ms:3 [0,10)ms:41 >=250ms:2".
func (h *SlackHist) String() string {
	out := ""
	lo := "-inf"
	for i := range h.Counts {
		var label string
		if i < len(slackBucketsMS) {
			label = fmt.Sprintf("[%s,%d)ms", lo, slackBucketsMS[i])
			lo = fmt.Sprintf("%d", slackBucketsMS[i])
		} else {
			label = fmt.Sprintf(">=%dms", slackBucketsMS[len(slackBucketsMS)-1])
		}
		if h.Counts[i] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", label, h.Counts[i])
	}
	if out == "" {
		return "(empty)"
	}
	return out
}
