package server

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/sched"
)

func TestParseDispatch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DispatchPolicy
	}{
		{"", DispatchAuto},
		{"auto", DispatchAuto},
		{"fair", DispatchFair},
		{"edf", DispatchEDF},
	} {
		got, err := ParseDispatch(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseDispatch(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseDispatch("bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestEDFActive(t *testing.T) {
	s := &Server{}
	s.cfg.Dispatch = DispatchFair
	s.nDeadline = 5
	if s.edfActiveLocked() {
		t.Fatal("DispatchFair must never run EDF")
	}
	s.cfg.Dispatch = DispatchEDF
	s.nDeadline = 0
	if !s.edfActiveLocked() {
		t.Fatal("DispatchEDF must always run EDF")
	}
	s.cfg.Dispatch = DispatchAuto
	if s.edfActiveLocked() {
		t.Fatal("auto with no deadline streams must fall back to fair")
	}
	s.nDeadline = 1
	if !s.edfActiveLocked() {
		t.Fatal("auto with a deadline stream must run EDF")
	}
}

func TestClassifySlack(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, tc := range []struct {
		name                 string
		deadline, wait, cost time.Duration
		bSave, refSave       time.Duration
		indexed              bool
		wantFloor            core.ShedLevel
		wantTight            bool
	}{
		{"comfortable", ms(100), ms(10), ms(20), ms(5), ms(10), false, core.ShedNone, false},
		{"comfortable-indexed", ms(100), ms(10), ms(20), ms(5), ms(10), true, core.ShedNone, false},
		{"tight-indexed", ms(40), ms(10), ms(20), ms(5), ms(10), true, core.ShedNone, true},
		{"tight-unindexed-cannot-assist", ms(40), ms(10), ms(20), ms(5), ms(10), false, core.ShedNone, false},
		{"doomed-b-saves-it", ms(30), ms(10), ms(30), ms(15), ms(25), true, core.ShedB, false},
		{"doomed-needs-refs", ms(30), ms(10), ms(30), ms(5), ms(25), true, core.ShedRef, false},
		{"doomed-beyond-saving-still-sheds-refs", ms(10), ms(10), ms(50), ms(5), ms(10), false, core.ShedRef, false},
		{"zero-slack-is-tight-not-doomed", ms(30), ms(10), ms(20), ms(5), ms(10), true, core.ShedNone, true},
	} {
		floor, tight := classifySlack(tc.deadline, tc.wait, tc.cost, tc.bSave, tc.refSave, tc.indexed)
		if floor != tc.wantFloor || tight != tc.wantTight {
			t.Errorf("%s: classifySlack = (%v, %v), want (%v, %v)",
				tc.name, floor, tight, tc.wantFloor, tc.wantTight)
		}
	}
}

func TestSlackHist(t *testing.T) {
	var h SlackHist
	if h.String() != "(empty)" {
		t.Fatalf("empty histogram renders %q", h.String())
	}
	h.Add(-200 * time.Millisecond) // < -100
	h.Add(-5 * time.Millisecond)   // [-10, 0)
	h.Add(0)                       // [0, 10)
	h.Add(5 * time.Millisecond)    // [0, 10)
	h.Add(300 * time.Millisecond)  // >= 250
	if got := h.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if got := h.Negative(); got != 2 {
		t.Fatalf("Negative = %d, want 2 (zero slack makes the deadline)", got)
	}
	var o SlackHist
	o.Add(-5 * time.Millisecond)
	h.Merge(&o)
	if h.Total() != 6 || h.Negative() != 3 {
		t.Fatalf("after merge: total %d negative %d, want 6 and 3", h.Total(), h.Negative())
	}
	s := h.String()
	for _, want := range []string{"[-10,0)ms:2", "[0,10)ms:2", ">=250ms:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// qstream builds a stream with a queued task per given (enq, deadline)
// pair, for driving pickEDFLocked without a running server.
func qstream(id, prio int, heads ...*task) *stream {
	st := &stream{id: id, prio: prio, weight: float64(prio + 1)}
	for _, tk := range heads {
		tk.st = st
		st.pending = append(st.pending, tk)
	}
	return st
}

// edfServer wires streams into a bare Server the way register would,
// minus the goroutines — pickEDFLocked and takeLocked only touch the
// queue gauges.
func edfServer(streams ...*stream) *Server {
	s := &Server{streams: make(map[int]*stream)}
	s.cfg.Dispatch = DispatchEDF
	s.cfg.StarveWindow = 2 * time.Second
	s.cfg.BestEffortLag = 500 * time.Millisecond
	for _, st := range streams {
		s.streams[st.id] = st
		s.backlog += len(st.pending)
		for _, tk := range st.pending {
			s.pendingCost += tk.cost
		}
	}
	return s
}

func TestPickEDFOrdering(t *testing.T) {
	now := time.Unix(1000, 0)
	ms := func(n int) time.Time { return now.Add(time.Duration(n) * time.Millisecond) }

	t.Run("priority band beats earlier deadline", func(t *testing.T) {
		s := edfServer(
			qstream(1, 0, &task{enq: now, deadline: ms(10)}),
			qstream(2, 1, &task{enq: now, deadline: ms(100)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 2 {
			t.Fatalf("picked %+v, want stream 2 (higher band)", tk)
		}
	})

	t.Run("earliest deadline within a band", func(t *testing.T) {
		s := edfServer(
			qstream(1, 0, &task{enq: now, deadline: ms(50)}),
			qstream(2, 0, &task{enq: now, deadline: ms(10)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 2 {
			t.Fatalf("picked %+v, want stream 2 (earlier deadline)", tk)
		}
	})

	t.Run("best-effort ages under a virtual deadline", func(t *testing.T) {
		// Best-effort head enqueued 400ms ago: virtual deadline is
		// enq+500ms = now+100ms, earlier than the real 200ms one.
		s := edfServer(
			qstream(1, 0, &task{enq: now.Add(-400 * time.Millisecond)}),
			qstream(2, 0, &task{enq: now, deadline: ms(200)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 1 {
			t.Fatalf("picked %+v, want stream 1 (aged virtual deadline)", tk)
		}
	})

	t.Run("deadline tie breaks to the lowest id", func(t *testing.T) {
		s := edfServer(
			qstream(7, 0, &task{enq: now, deadline: ms(10)}),
			qstream(3, 0, &task{enq: now, deadline: ms(10)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 3 {
			t.Fatalf("picked %+v, want stream 3 (id tiebreak)", tk)
		}
	})

	t.Run("starvation guard overrides bands and deadlines", func(t *testing.T) {
		s := edfServer(
			qstream(1, 1, &task{enq: now, deadline: ms(1)}),
			qstream(2, 0, &task{enq: now.Add(-3 * time.Second)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 2 {
			t.Fatalf("picked %+v, want stream 2 (past StarveWindow)", tk)
		}
	})

	t.Run("mustServe overrides everything", func(t *testing.T) {
		starved := qstream(2, 0, &task{enq: now.Add(-3 * time.Second)})
		resumed := qstream(3, 0, &task{enq: now})
		resumed.mustServe = true
		s := edfServer(
			qstream(1, 1, &task{enq: now, deadline: ms(1)}),
			starved,
			resumed,
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 3 {
			t.Fatalf("picked %+v, want stream 3 (post-resume service owed)", tk)
		}
	})

	t.Run("paused streams are skipped", func(t *testing.T) {
		sess, err := core.NewSession(core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		paused := qstream(1, 1, &task{enq: now, deadline: ms(1)})
		paused.paused = true
		paused.sess = sess
		s := edfServer(
			paused,
			qstream(2, 0, &task{enq: now, deadline: ms(100)}),
		)
		if tk := s.pickEDFLocked(now); tk == nil || tk.st.id != 2 {
			t.Fatalf("picked %+v, want stream 2 (stream 1 paused)", tk)
		}
	})

	t.Run("take settles the queue gauges", func(t *testing.T) {
		s := edfServer(
			qstream(1, 0, &task{enq: now, deadline: ms(10), cost: 5 * time.Millisecond}),
			qstream(2, 0, &task{enq: now, deadline: ms(50), cost: 7 * time.Millisecond}),
		)
		if s.backlog != 2 || s.pendingCost != 12*time.Millisecond {
			t.Fatalf("setup: backlog %d pendingCost %v", s.backlog, s.pendingCost)
		}
		tk := s.pickEDFLocked(now)
		if tk == nil || tk.st.id != 1 {
			t.Fatalf("picked %+v, want stream 1", tk)
		}
		if s.backlog != 1 || s.pendingCost != 7*time.Millisecond {
			t.Fatalf("after take: backlog %d pendingCost %v", s.backlog, s.pendingCost)
		}
		if len(tk.st.pending) != 0 {
			t.Fatal("task not popped from its stream queue")
		}
	})

	t.Run("empty queues pick nothing", func(t *testing.T) {
		s := edfServer(qstream(1, 0))
		if tk := s.pickEDFLocked(now); tk != nil {
			t.Fatalf("picked %+v from empty queues", tk)
		}
	})
}

// TestQueueDelayEffectiveWorkers pins the slack predictor's divisor to
// the pool's effective parallelism: workers beyond GOMAXPROCS
// time-slice one another, so the wait estimate must divide by the
// smaller of the two or it understates the queue by the
// oversubscription factor.
func TestQueueDelayEffectiveWorkers(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	s := &Server{pendingCost: 80 * time.Millisecond}
	s.cfg.Workers = 4 * p
	if got, want := s.queueDelayLocked(), 80*time.Millisecond/time.Duration(p); got != want {
		t.Fatalf("oversubscribed pool: delay %v, want %v (divide by GOMAXPROCS=%d, not workers=%d)",
			got, want, p, s.cfg.Workers)
	}
	s.cfg.Workers = 1
	if got := s.queueDelayLocked(); got != 80*time.Millisecond {
		t.Fatalf("one worker: delay %v, want 80ms", got)
	}
}

// TestAccountUndeliveredCountsOnlyExpiredNonShed drives the teardown
// accounting directly: of the frames still marked fed when a stream
// tears down, only non-shed frames already past their deadline are
// misses — shed frames were a degradation decision (disjoint counters),
// and frames whose budget hadn't expired got no verdict.
func TestAccountUndeliveredCountsOnlyExpiredNonShed(t *testing.T) {
	srv := &Server{}
	now := time.Now()
	st := &stream{
		srv:      srv,
		deadline: 50 * time.Millisecond,
		feedAt: map[int]feedMark{
			0: {at: now.Add(-time.Second)},             // expired, not shed: miss
			1: {at: now},                               // budget not yet expired: no verdict
			2: {at: now.Add(-time.Second), shed: true}, // expired but shed: not a miss
		},
	}
	st.accountUndelivered()
	if st.misses != 1 || srv.misses.Load() != 1 {
		t.Fatalf("misses %d (server %d), want exactly 1", st.misses, srv.misses.Load())
	}
	if len(st.feedAt) != 0 {
		t.Fatalf("%d frames still marked fed after teardown", len(st.feedAt))
	}

	// Best-effort streams have no deadline and no misses, ever.
	be := &stream{srv: srv, feedAt: map[int]feedMark{0: {at: now.Add(-time.Hour)}}}
	be.accountUndelivered()
	if be.misses != 0 || srv.misses.Load() != 1 {
		t.Fatalf("best-effort teardown changed miss counters: %d / %d", be.misses, srv.misses.Load())
	}
}

// TestDemandForUncalibratedIsConservative pins the admission half of
// the cold-start fix: until the cost model passes its calibration
// floor, a paced stream is charged the flat default demand — unknown
// cost must never read as free.
func TestDemandForUncalibratedIsConservative(t *testing.T) {
	model := &sched.CostModel{}
	model.Observe(1000, time.Millisecond) // one sample: below the floor
	s := &Server{cost: model}
	s.cfg.Workers = 4
	s.cfg.TargetUtilization = 0.75
	s.cfg.DefaultDemand = 0.25
	s.avgPicBytes = 1000

	if d := s.demandFor(30); d != 0.25 {
		t.Fatalf("uncalibrated demand %v, want the 0.25 default", d)
	}
	for i := 0; i < 3; i++ {
		model.Observe(1000, time.Millisecond)
	}
	// Calibrated: 30 pics/s x ~1ms/pic = 0.03 workers.
	d := s.demandFor(30)
	if d < 0.02 || d > 0.05 {
		t.Fatalf("calibrated demand %v, want ~0.03 from the model", d)
	}
	// And the estimate is clamped to pool capacity.
	if d := s.demandFor(1e9); d != s.capacity() {
		t.Fatalf("runaway demand %v, want capacity clamp %v", d, s.capacity())
	}
}
